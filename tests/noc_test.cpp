// NoC / machine model tests: XY routing, cost monotonicity, barrier
// scaling, and the platform presets used by the benches.
#include <gtest/gtest.h>

#include "noc/machines.hpp"
#include "noc/mesh.hpp"
#include "noc/uniform.hpp"

namespace {

using lol::noc::MeshModel;
using lol::noc::MeshParams;
using lol::noc::UniformModel;
using lol::noc::UniformParams;

TEST(Mesh, CoordsRowMajor) {
  MeshModel m;  // 4x4 Epiphany-III default
  EXPECT_EQ(m.coords(0), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(m.coords(3), (std::pair<int, int>{0, 3}));
  EXPECT_EQ(m.coords(4), (std::pair<int, int>{1, 0}));
  EXPECT_EQ(m.coords(15), (std::pair<int, int>{3, 3}));
}

TEST(Mesh, HopsAreManhattanDistance) {
  MeshModel m;
  EXPECT_EQ(m.hops(0, 0), 0);
  EXPECT_EQ(m.hops(0, 1), 1);
  EXPECT_EQ(m.hops(0, 5), 2);   // (0,0) -> (1,1)
  EXPECT_EQ(m.hops(0, 15), 6);  // corner to corner = diameter
  EXPECT_EQ(m.hops(0, 15), m.diameter());
  // Symmetric.
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
  }
}

TEST(Mesh, OversubscriptionWrapsAround) {
  MeshModel m;
  EXPECT_EQ(m.coords(16), m.coords(0));
  EXPECT_EQ(m.hops(16, 1), m.hops(0, 1));
}

TEST(Mesh, PutCostGrowsWithHops) {
  MeshModel m;
  double near = m.put_ns(0, 1, 8);
  double far = m.put_ns(0, 15, 8);
  EXPECT_GT(far, near);
  // Exact linearity in hop count at fixed payload.
  double d1 = m.put_ns(0, 1, 8) - m.put_ns(0, 0, 8);
  (void)d1;
  double h2 = m.put_ns(0, 2, 8);
  double h4 = m.put_ns(0, 3, 8);
  EXPECT_NEAR(h4 - h2, h2 - near, 1e-9);  // +1 hop each step along a row
}

TEST(Mesh, PutCostGrowsWithBytes) {
  MeshModel m;
  EXPECT_GT(m.put_ns(0, 1, 4096), m.put_ns(0, 1, 8));
}

TEST(Mesh, ReadsCostMoreThanWrites) {
  // Epiphany remote reads are round trips; writes are fire-and-forget.
  MeshModel m;
  EXPECT_GT(m.get_ns(0, 15, 8), m.put_ns(0, 15, 8));
}

TEST(Mesh, SelfAccessIsLocalCost) {
  MeshModel m;
  EXPECT_DOUBLE_EQ(m.put_ns(3, 3, 64), m.local_ns(64));
  EXPECT_DOUBLE_EQ(m.get_ns(3, 3, 64), m.local_ns(64));
}

TEST(Mesh, BarrierScalesLogarithmically) {
  MeshModel m;
  double b2 = m.barrier_ns(2);
  double b4 = m.barrier_ns(4);
  double b16 = m.barrier_ns(16);
  EXPECT_EQ(m.barrier_ns(1), 0.0);
  EXPECT_GT(b2, 0.0);
  EXPECT_NEAR(b4 / b2, 2.0, 1e-9);    // ceil(log2): 1 vs 2 rounds
  EXPECT_NEAR(b16 / b2, 4.0, 1e-9);   // 4 rounds
}

TEST(Mesh, TreeBarrierDepthTracksRadix) {
  MeshModel m;
  EXPECT_EQ(m.tree_barrier_ns(1, 8), 0.0);
  // Radix 2 climbs ceil(log2 n) levels — the dissemination-round count
  // the flat model already charges.
  EXPECT_DOUBLE_EQ(m.tree_barrier_ns(16, 2), m.barrier_ns(16));
  // Wider fan-in, shallower tree, cheaper crossing.
  EXPECT_LT(m.tree_barrier_ns(4096, 16), m.tree_barrier_ns(4096, 2));
  EXPECT_LT(m.tree_barrier_ns(4096, 64), m.tree_barrier_ns(4096, 16));
  // Radix >= n is one combining round, never free.
  EXPECT_GT(m.tree_barrier_ns(4096, 4096), 0.0);
  EXPECT_DOUBLE_EQ(m.tree_barrier_ns(16, 16), m.tree_barrier_ns(16, 4096));
}

TEST(Uniform, TreeBarrierDepthTracksRadix) {
  UniformModel m;
  EXPECT_EQ(m.tree_barrier_ns(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.tree_barrier_ns(1024, 2), m.barrier_ns(1024));
  EXPECT_DOUBLE_EQ(m.tree_barrier_ns(4096, 8),
                   4.0 * m.params().barrier_round_ns);  // log8(4096) = 4
  EXPECT_LT(m.tree_barrier_ns(4096, 64), m.tree_barrier_ns(4096, 8));
}

TEST(Mesh, LockCostGrowsWithDistanceToHome) {
  MeshModel m;
  EXPECT_GT(m.lock_ns(15, 0), m.lock_ns(1, 0));
}

TEST(Mesh, RejectsBadParams) {
  MeshParams p;
  p.rows = 0;
  EXPECT_THROW(MeshModel{p}, std::invalid_argument);
  MeshParams q;
  q.clock_ghz = 0.0;
  EXPECT_THROW(MeshModel{q}, std::invalid_argument);
}

TEST(Uniform, DistanceIndependent) {
  UniformModel u;
  EXPECT_DOUBLE_EQ(u.put_ns(0, 1, 64), u.put_ns(0, 99, 64));
  EXPECT_DOUBLE_EQ(u.get_ns(3, 7, 8), u.get_ns(9, 2, 8));
}

TEST(Uniform, SelfAccessIsLocal) {
  UniformModel u;
  EXPECT_DOUBLE_EQ(u.put_ns(5, 5, 64), u.local_ns(64));
}

TEST(Uniform, BandwidthTermScalesWithBytes) {
  UniformModel u;
  double small = u.put_ns(0, 1, 8);
  double big = u.put_ns(0, 1, 1 << 20);
  EXPECT_GT(big, small);
}

TEST(Presets, PlatformShapeMatchesThePaper) {
  // The paper demonstrates the same program on a $99 Parallella
  // (Epiphany-III mesh: tiny latencies, topology-dependent) and a Cray
  // XC40 (Aries: flat but ~microsecond latency). The presets must keep
  // that qualitative contrast.
  auto epi = lol::noc::epiphany3();
  auto xc = lol::noc::xc40_aries();
  auto smp = lol::noc::shared_memory();

  // Neighbour put on the mesh is far cheaper than on Aries.
  EXPECT_LT(epi->put_ns(0, 1, 8), xc->put_ns(0, 1, 8) / 10.0);
  // Aries is distance-flat; the mesh is not.
  EXPECT_DOUBLE_EQ(xc->put_ns(0, 1, 8), xc->put_ns(0, 15, 8));
  EXPECT_LT(epi->put_ns(0, 1, 8), epi->put_ns(0, 15, 8));
  // For large payloads the XC40's bandwidth advantage shows.
  double big = 1 << 22;
  EXPECT_LT(xc->put_ns(0, 1, static_cast<std::size_t>(big)) -
                xc->put_ns(0, 1, 8),
            epi->put_ns(0, 1, static_cast<std::size_t>(big)));
  // Shared-memory baseline sits between them on latency.
  EXPECT_LT(smp->put_ns(0, 1, 8), xc->put_ns(0, 1, 8));
}

TEST(Presets, ByNameLookup) {
  EXPECT_NE(lol::noc::by_name("epiphany3"), nullptr);
  EXPECT_NE(lol::noc::by_name("parallella"), nullptr);
  EXPECT_NE(lol::noc::by_name("xc40"), nullptr);
  EXPECT_NE(lol::noc::by_name("smp"), nullptr);
  EXPECT_EQ(lol::noc::by_name("cray-2"), nullptr);
}

TEST(Presets, CustomMeshSizes) {
  auto big = lol::noc::epiphany_mesh(8, 8);
  auto* mesh = dynamic_cast<const MeshModel*>(big.get());
  ASSERT_NE(mesh, nullptr);
  EXPECT_EQ(mesh->diameter(), 14);
}

// Parameterized sweep: on the mesh, put cost is strictly monotone in hop
// count for every (src, dst) pair at fixed payload.
class MeshMonotone : public ::testing::TestWithParam<int> {};

TEST_P(MeshMonotone, CostOrdersByHops) {
  MeshModel m;
  int src = GetParam();
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      if (m.hops(src, a) < m.hops(src, b)) {
        EXPECT_LE(m.put_ns(src, a, 8), m.put_ns(src, b, 8));
        EXPECT_LE(m.get_ns(src, a, 8), m.get_ns(src, b, 8));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSources, MeshMonotone,
                         ::testing::Values(0, 3, 5, 10, 15));

}  // namespace

// LOLCODE-1.2 specification conformance sweeps (paper Table I, in
// depth): parameterized operator matrices over value grids, cast-matrix
// behaviour, and the spec's darker corners, executed end-to-end through
// both in-process backends so semantics stay pinned.
#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;

std::string run_both(const std::string& body) {
  // Returns interp output when both backends agree; "<mismatch>" text
  // otherwise — so every conformance expectation doubles as a parity
  // check.
  std::string src = "HAI 1.2\n" + body + "KTHXBYE\n";
  RunConfig ci;
  ci.backend = Backend::kInterp;
  RunConfig cv;
  cv.backend = Backend::kVm;
  auto ri = lol::run_source(src, ci);
  auto rv = lol::run_source(src, cv);
  if (!ri.ok || !rv.ok) {
    return "<error " + ri.first_error() + rv.first_error() + ">";
  }
  if (ri.pe_output[0] != rv.pe_output[0]) {
    return "<mismatch interp='" + ri.pe_output[0] + "' vm='" +
           rv.pe_output[0] + "'>";
  }
  return ri.pe_output[0];
}

// ---------------------------------------------------------------------------
// Operator matrix over a representative value grid.
// ---------------------------------------------------------------------------

struct OpCase {
  const char* expr;
  const char* expect;  // expected VISIBLE output (without newline)
};

class OperatorMatrix : public ::testing::TestWithParam<OpCase> {};

TEST_P(OperatorMatrix, EvaluatesPerSpec) {
  const OpCase& c = GetParam();
  EXPECT_EQ(run_both("VISIBLE " + std::string(c.expr) + "\n"),
            std::string(c.expect) + "\n")
      << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, OperatorMatrix,
    ::testing::Values(
        OpCase{"SUM OF 3 AN 4", "7"},
        OpCase{"SUM OF -3 AN 4", "1"},
        OpCase{"SUM OF 3 AN 4.5", "7.50"},
        OpCase{"SUM OF \"3\" AN \"4\"", "7"},
        OpCase{"SUM OF \"3.5\" AN 1", "4.50"},
        OpCase{"DIFF OF 10 AN 4", "6"},
        OpCase{"DIFF OF 4 AN 10", "-6"},
        OpCase{"PRODUKT OF 6 AN 7", "42"},
        OpCase{"PRODUKT OF -2 AN 2.5", "-5.00"},
        OpCase{"QUOSHUNT OF 7 AN 2", "3"},
        OpCase{"QUOSHUNT OF -7 AN 2", "-3"},
        OpCase{"QUOSHUNT OF 7.0 AN 2", "3.50"},
        OpCase{"MOD OF 7 AN 3", "1"},
        OpCase{"MOD OF -7 AN 3", "-1"},
        OpCase{"BIGGR OF 3 AN 9", "9"},
        OpCase{"BIGGR OF -3 AN -9", "-3"},
        OpCase{"SMALLR OF 3 AN 9", "3"},
        OpCase{"SQUAR OF -4", "16"},
        OpCase{"UNSQUAR OF 2.25", "1.50"},
        OpCase{"FLIP OF 0.25", "4.00"}));

INSTANTIATE_TEST_SUITE_P(
    Comparison, OperatorMatrix,
    ::testing::Values(
        OpCase{"BOTH SAEM 3 AN 3", "WIN"},
        OpCase{"BOTH SAEM 3 AN 3.0", "WIN"},
        OpCase{"BOTH SAEM 3 AN \"3\"", "FAIL"},
        OpCase{"BOTH SAEM \"x\" AN \"x\"", "WIN"},
        OpCase{"BOTH SAEM WIN AN 1", "FAIL"},
        OpCase{"BOTH SAEM NOOB AN NOOB", "WIN"},
        OpCase{"DIFFRINT 3 AN 4", "WIN"},
        OpCase{"BIGGER 4 AN 3", "WIN"},
        OpCase{"BIGGER 3 AN 3", "FAIL"},
        OpCase{"BIGGER 3.5 AN 3", "WIN"},
        OpCase{"SMALLR 3 AN 4", "WIN"},
        OpCase{"SMALLR \"10\" AN \"9\"", "FAIL"}));

INSTANTIATE_TEST_SUITE_P(
    Boolean, OperatorMatrix,
    ::testing::Values(
        OpCase{"BOTH OF WIN AN WIN", "WIN"},
        OpCase{"BOTH OF WIN AN 0", "FAIL"},
        OpCase{"EITHER OF FAIL AN \"x\"", "WIN"},
        OpCase{"EITHER OF FAIL AN NOOB", "FAIL"},
        OpCase{"WON OF WIN AN FAIL", "WIN"},
        OpCase{"WON OF 1 AN 2", "FAIL"},
        OpCase{"NOT NOOB", "WIN"},
        OpCase{"NOT \"\"", "WIN"},
        OpCase{"NOT -1", "FAIL"},
        OpCase{"ALL OF WIN AN 1 AN 2.5 AN \"y\" MKAY", "WIN"},
        OpCase{"ALL OF WIN AN 0 AN WIN MKAY", "FAIL"},
        OpCase{"ANY OF FAIL AN 0 AN \"\" MKAY", "FAIL"},
        OpCase{"ANY OF FAIL AN 7 MKAY", "WIN"}));

INSTANTIATE_TEST_SUITE_P(
    StringsAndCasts, OperatorMatrix,
    ::testing::Values(
        OpCase{"SMOOSH 1 \" \" 2.5 \" \" WIN MKAY", "1 2.50 WIN"},
        OpCase{"MAEK \"42\" A NUMBR", "42"},
        OpCase{"MAEK \" -7 \" A NUMBR", "-7"},
        OpCase{"MAEK 3.99 A NUMBR", "3"},
        OpCase{"MAEK -3.99 A NUMBR", "-3"},
        OpCase{"MAEK 42 A NUMBAR", "42.00"},
        OpCase{"MAEK WIN A NUMBR", "1"},
        OpCase{"MAEK NOOB A NUMBR", "0"},
        OpCase{"MAEK NOOB A YARN", ""},
        OpCase{"MAEK 0 A TROOF", "FAIL"},
        OpCase{"MAEK \"\" A TROOF", "FAIL"},
        OpCase{"MAEK \"FAIL\" A TROOF", "WIN"}));  // non-empty YARN is WIN

// ---------------------------------------------------------------------------
// Error-condition matrix: these must fail on both backends.
// ---------------------------------------------------------------------------

class ErrorMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(ErrorMatrix, FailsOnBothBackends) {
  std::string src = "HAI 1.2\nVISIBLE " + std::string(GetParam()) +
                    "\nKTHXBYE\n";
  for (Backend b : {Backend::kInterp, Backend::kVm}) {
    RunConfig cfg;
    cfg.backend = b;
    auto r = lol::run_source(src, cfg);
    EXPECT_FALSE(r.ok) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Errors, ErrorMatrix,
    ::testing::Values("QUOSHUNT OF 1 AN 0", "MOD OF 1 AN 0",
                      "QUOSHUNT OF 1.0 AN 0.0", "SUM OF WIN AN 1",
                      "SUM OF NOOB AN 1", "SUM OF \"cat\" AN 1",
                      "UNSQUAR OF -1", "FLIP OF 0", "MAEK \"x\" A NUMBR",
                      "MAEK \"3.5.1\" A NUMBAR"));

// ---------------------------------------------------------------------------
// Spec corners.
// ---------------------------------------------------------------------------

TEST(SpecCorners, ItHoldsLastBareExpression) {
  EXPECT_EQ(run_both("SUM OF 1 AN 1\nSUM OF IT AN IT\nVISIBLE IT\n"),
            "4\n");
}

TEST(SpecCorners, VisibleCastsImplicitly) {
  // NUMBAR prints with two decimals; TROOF prints WIN/FAIL.
  EXPECT_EQ(run_both("VISIBLE 1.0 \" \" 0.125 \" \" FAIL\n"),
            "1.00 0.12 FAIL\n");
}

TEST(SpecCorners, VisibleNoobIsError) {
  std::string out = run_both("I HAS A x\nVISIBLE x\n");
  EXPECT_NE(out.find("<error"), std::string::npos);
}

TEST(SpecCorners, NestedSrsChains) {
  EXPECT_EQ(run_both("I HAS A deep ITZ 42\n"
                     "I HAS A mid ITZ \"deep\"\n"
                     "I HAS A top ITZ \"mid\"\n"
                     "VISIBLE SRS SRS top\n"),
            "42\n");
}

TEST(SpecCorners, WtfOnYarnSubject) {
  EXPECT_EQ(run_both("I HAS A w ITZ \"b\"\nw, WTF?\n"
                     "OMG \"a\"\n  VISIBLE 1\n  GTFO\n"
                     "OMG \"b\"\n  VISIBLE 2\n  GTFO\n"
                     "OIC\n"),
            "2\n");
}

TEST(SpecCorners, WtfNoMatchNoDefaultFallsThrough) {
  EXPECT_EQ(run_both("9, WTF?\nOMG 1\n  VISIBLE 1\nOIC\nVISIBLE \"after\"\n"),
            "after\n");
}

TEST(SpecCorners, MebbeSetsIt) {
  // After a MEBBE chain, IT holds the last evaluated condition.
  EXPECT_EQ(run_both("FAIL, O RLY?\nYA RLY\n  VISIBLE \"a\"\n"
                     "MEBBE SUM OF 1 AN 1\n  VISIBLE IT\nOIC\n"),
            "2\n");
}

TEST(SpecCorners, OrlyWithoutYaRly) {
  // The paper's §V fragment shape: O RLY? straight to NO WAI.
  EXPECT_EQ(run_both("FAIL, O RLY?\nNO WAI\n  VISIBLE \"nope\"\nOIC\n"),
            "nope\n");
}

TEST(SpecCorners, LoopConditionSeesLoopVariable) {
  EXPECT_EQ(run_both("IM IN YR l UPPIN YR i WILE SMALLR i AN 3\n"
                     "  VISIBLE i\nIM OUTTA YR l\n"),
            "0\n1\n2\n");
}

TEST(SpecCorners, FunctionItIsIndependent) {
  // A function's bare expressions must not clobber the caller's IT.
  EXPECT_EQ(run_both("HOW IZ I f\n  99\n  FOUND YR 1\nIF U SAY SO\n"
                     "42\nI HAS A r ITZ I IZ f MKAY\nVISIBLE IT\n"),
            "42\n");
}

TEST(SpecCorners, InterpolationInsideSmoosh) {
  EXPECT_EQ(run_both("I HAS A n ITZ 5\n"
                     "VISIBLE SMOOSH \"a:{n}b\" \"c\" MKAY\n"),
            "a5bc\n");
}

TEST(SpecCorners, EscapesRoundTripThroughVisible) {
  EXPECT_EQ(run_both("VISIBLE \"q::r:)s:>t:\"u\"\n"),
            "q:r\ns\tt\"u\n");
}

TEST(SpecCorners, DeepExpressionNesting) {
  // 40-deep prefix nesting exercises parser and both executors.
  std::string expr = "0";
  for (int i = 1; i <= 40; ++i) {
    expr = "SUM OF " + expr + " AN 1";
  }
  EXPECT_EQ(run_both("VISIBLE " + expr + "\n"), "40\n");
}

TEST(SpecCorners, ManyVariables) {
  // 200 declarations in one scope: stresses slot allocation in the VM.
  std::string body;
  for (int i = 0; i < 200; ++i) {
    body += "I HAS A v" + std::to_string(i) + " ITZ " + std::to_string(i) +
            "\n";
  }
  body += "VISIBLE SUM OF v0 AN SUM OF v99 AN v199\n";
  EXPECT_EQ(run_both(body), "298\n");
}

TEST(SpecCorners, BigLoopCounts) {
  EXPECT_EQ(run_both("I HAS A s ITZ 0\n"
                     "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10000\n"
                     "  s R SUM OF s AN 1\nIM OUTTA YR l\nVISIBLE s\n"),
            "10000\n");
}

TEST(SpecCorners, GimmehThenNumericUse) {
  RunConfig cfg;
  cfg.stdin_lines = {"21"};
  auto r = lol::run_source(
      "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE PRODUKT OF x AN 2\nKTHXBYE\n",
      cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_EQ(r.pe_output[0], "42\n");  // YARN "21" coerces in math
}

}  // namespace

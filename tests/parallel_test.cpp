// Parallel semantics tests: PE enumeration, symmetric data, thread
// predication, barriers and implicit locks — the paper's Table II —
// across PE counts and both backends.
#include <gtest/gtest.h>

#include <set>

#include "core/engine.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;
using lol::RunResult;
using lol::run_source;

RunResult runp(const std::string& body, int n_pes,
               Backend backend = Backend::kInterp) {
  RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = backend;
  return run_source("HAI 1.2\n" + body + "KTHXBYE\n", cfg);
}

TEST(Parallel, MeAndMahFrenz) {
  auto r = runp("VISIBLE ME \"/\" MAH FRENZ\n", 4);
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)],
              std::to_string(pe) + "/4\n");
  }
}

TEST(Parallel, SymmetricScalarRemoteReadViaPredication) {
  // Every PE publishes its id+100 and reads its neighbour's value.
  auto r = runp(
      "WE HAS A x ITZ SRSLY A NUMBR\n"
      "x R SUM OF ME AN 100\n"
      "HUGZ\n"
      "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
      "I HAS A got ITZ A NUMBR\n"
      "TXT MAH BFF nxt, got R UR x\n"
      "VISIBLE got\n",
      4);
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)],
              std::to_string((pe + 1) % 4 + 100) + "\n");
  }
}

TEST(Parallel, RemoteWriteWithUr) {
  // Paper §VI.C: TXT MAH BFF k, UR b R MAH a; HUGZ; c R SUM OF a AN b.
  auto r = runp(
      "WE HAS A a ITZ SRSLY A NUMBR\n"
      "WE HAS A b ITZ SRSLY A NUMBR\n"
      "a R SUM OF ME AN 1\n"
      "HUGZ\n"
      "I HAS A k ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
      "TXT MAH BFF k, UR b R MAH a\n"
      "HUGZ\n"
      "I HAS A c ITZ A NUMBR AN ITZ SUM OF a AN b\n"
      "VISIBLE c\n",
      4);
  ASSERT_TRUE(r.ok) << r.first_error();
  // PE p has a = p+1 and receives b from its predecessor = pred+1.
  for (int pe = 0; pe < 4; ++pe) {
    int pred = (pe + 3) % 4;
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)],
              std::to_string((pe + 1) + (pred + 1)) + "\n");
  }
}

TEST(Parallel, PredicatedBlockForm) {
  auto r = runp(
      "WE HAS A v ITZ SRSLY A NUMBR\n"
      "v R ME\n"
      "HUGZ\n"
      "I HAS A sum ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR l UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n"
      "  TXT MAH BFF k AN STUFF\n"
      "    sum R SUM OF sum AN UR v\n"
      "  TTYL\n"
      "IM OUTTA YR l\n"
      "VISIBLE sum\n",
      4);
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)], "6\n");  // 0+1+2+3
  }
}

TEST(Parallel, NestedPredicationInnerWins) {
  auto r = runp(
      "WE HAS A x ITZ SRSLY A NUMBR\n"
      "x R ME\n"
      "HUGZ\n"
      "I HAS A got ITZ A NUMBR\n"
      "TXT MAH BFF 1 AN STUFF\n"
      "  TXT MAH BFF 2, got R UR x\n"
      "TTYL\n"
      "VISIBLE got\n",
      3);
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_EQ(r.pe_output[0], "2\n");
}

TEST(Parallel, SymmetricArrayRingCopy) {
  // Paper §VI.A: circular whole-array transfer. The copy lands in a
  // separate inbox array — copying into `array` itself races with the
  // predecessor's concurrent read (see ring_listing()).
  auto r = runp(
      "I HAS A pe ITZ A NUMBR AN ITZ ME\n"
      "I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ\n"
      "WE HAS A array ITZ SRSLY LOTZ A NUMBRS ...\n"
      "  AN THAR IZ 32\n"
      "I HAS A inbox ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32\n"
      "I HAS A next_pe ITZ A NUMBR ...\n"
      "  AN ITZ SUM OF pe AN 1\n"
      "next_pe R MOD OF next_pe AN n_pes\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 32\n"
      "  array'Z i R SUM OF PRODUKT OF pe AN 100 AN i\n"
      "IM OUTTA YR l\n"
      "HUGZ\n"
      "TXT MAH BFF next_pe, MAH inbox R UR array\n"
      "HUGZ\n"
      "VISIBLE inbox'Z 0 \" \" inbox'Z 31\n",
      4);
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int pe = 0; pe < 4; ++pe) {
    int next = (pe + 1) % 4;
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)],
              std::to_string(next * 100) + " " +
                  std::to_string(next * 100 + 31) + "\n");
  }
}

TEST(Parallel, RemoteArrayElementAccess) {
  auto r = runp(
      "WE HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 8\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8\n"
      "  a'Z i R SUM OF PRODUKT OF ME AN 10.0 AN i\n"
      "IM OUTTA YR l\n"
      "HUGZ\n"
      "I HAS A got ITZ A NUMBAR\n"
      "TXT MAH BFF 0, got R UR a'Z 3\n"
      "VISIBLE got\n",
      3);
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int pe = 0; pe < 3; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)], "3.00\n");
  }
}

TEST(Parallel, HugzSynchronizesDataMovement) {
  // Without the barrier this would be racy; with HUGZ it must always see
  // fresh values. Run several rounds to stress the generation barrier.
  auto r = runp(
      "WE HAS A x ITZ SRSLY A NUMBR\n"
      "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
      "IM IN YR l UPPIN YR round TIL BOTH SAEM round AN 20\n"
      "  TXT MAH BFF nxt, UR x R SUM OF PRODUKT OF ME AN 100 AN round\n"
      "  HUGZ\n"
      "  I HAS A prev ITZ A NUMBR ...\n"
      "    AN ITZ MOD OF SUM OF ME AN DIFF OF MAH FRENZ AN 1 AN MAH FRENZ\n"
      "  DIFFRINT x AN SUM OF PRODUKT OF prev AN 100 AN round, O RLY?\n"
      "  YA RLY\n    VISIBLE \"STALE\"\n  OIC\n"
      "  HUGZ\n"
      "IM OUTTA YR l\n"
      "VISIBLE \"ok\"\n",
      4);
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)], "ok\n");
  }
}

TEST(Parallel, ImplicitLockPreventsLostUpdates) {
  // Paper §VI.B: protect a remote read-modify-write with the implicit
  // lock. Every PE increments PE 0's counter 50 times.
  auto r = runp(
      "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "HUGZ\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 50\n"
      "  TXT MAH BFF 0 AN STUFF\n"
      "    IM SRSLY MESIN WIF UR x\n"
      "    UR x R SUM OF UR x AN 1\n"
      "    DUN MESIN WIF UR x\n"
      "  TTYL\n"
      "IM OUTTA YR l\n"
      "HUGZ\n"
      "BOTH SAEM ME AN 0, O RLY?\n"
      "YA RLY\n  VISIBLE x\nOIC\n",
      4);
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_EQ(r.pe_output[0], "200\n");
}

TEST(Parallel, TrylockFallbackPattern) {
  // The paper's §V fragment: try, then block, then mutate, then release.
  auto r = runp(
      "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "HUGZ\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 25\n"
      "  IM MESIN WIF x, O RLY?\n"
      "  NO WAI\n"
      "    IM SRSLY MESIN WIF x\n"
      "  OIC\n"
      "  x R SUM OF x AN 1\n"
      "  DUN MESIN WIF x\n"
      "IM OUTTA YR l\n"
      "HUGZ\n"
      "BOTH SAEM ME AN 0, O RLY?\n"
      "YA RLY\n  VISIBLE x\nOIC\n",
      4,
      Backend::kInterp);
  ASSERT_TRUE(r.ok) << r.first_error();
  // x is symmetric but unqualified: each PE increments ITS OWN copy under
  // the global lock; PE 0 sees its own 25.
  EXPECT_EQ(r.pe_output[0], "25\n");
}

TEST(Parallel, BadPeTargetFailsCleanly) {
  auto r = runp("TXT MAH BFF 9, VISIBLE UR x\n", 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("no such PE"), std::string::npos);
}

TEST(Parallel, FailingPeDoesNotDeadlockHugz) {
  auto r = runp(
      "BOTH SAEM ME AN 0, O RLY?\n"
      "YA RLY\n  VISIBLE QUOSHUNT OF 1 AN 0\n"
      "OIC\n"
      "HUGZ\n",
      4);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("division by zero"), std::string::npos);
}

TEST(Parallel, PerPeRandomStreamsDiffer) {
  auto r = runp("VISIBLE WHATEVR\n", 4);
  ASSERT_TRUE(r.ok) << r.first_error();
  std::set<std::string> distinct(r.pe_output.begin(), r.pe_output.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Parallel, SymmetricHeapSizeConfigurable) {
  RunConfig cfg;
  cfg.n_pes = 2;
  cfg.heap_bytes = 256;
  auto r = run_source(
      "HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 1000\n"
      "KTHXBYE\n",
      cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("symmetric heap exhausted"),
            std::string::npos);
}

// The same Table-II semantics must hold on every backend and PE count.
struct ParallelCase {
  const char* name;
  Backend backend;
  int n_pes;
};

class ParallelMatrix : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelMatrix, BarrierSumMatchesClosedForm) {
  const auto& p = GetParam();
  auto r = runp(
      "WE HAS A v ITZ SRSLY A NUMBR\n"
      "v R SUM OF ME AN 1\n"
      "HUGZ\n"
      "I HAS A total ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR l UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n"
      "  TXT MAH BFF k, total R SUM OF total AN UR v\n"
      "IM OUTTA YR l\n"
      "VISIBLE total\n",
      p.n_pes, p.backend);
  ASSERT_TRUE(r.ok) << r.first_error();
  int expect = p.n_pes * (p.n_pes + 1) / 2;
  for (int pe = 0; pe < p.n_pes; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)],
              std::to_string(expect) + "\n");
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndPeCounts, ParallelMatrix,
    ::testing::Values(ParallelCase{"interp1", Backend::kInterp, 1},
                      ParallelCase{"interp2", Backend::kInterp, 2},
                      ParallelCase{"interp4", Backend::kInterp, 4},
                      ParallelCase{"interp16", Backend::kInterp, 16},
                      ParallelCase{"vm1", Backend::kVm, 1},
                      ParallelCase{"vm2", Backend::kVm, 2},
                      ParallelCase{"vm4", Backend::kVm, 4},
                      ParallelCase{"vm16", Backend::kVm, 16}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return info.param.name;
    });

}  // namespace

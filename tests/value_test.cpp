// Value model tests: the LOLCODE-1.2 cast matrix and BOTH SAEM equality.
#include <gtest/gtest.h>

#include "rt/value.hpp"

namespace {

using lol::ast::TypeKind;
using lol::rt::Value;
using lol::support::RuntimeError;

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value::noob().type(), TypeKind::kNoob);
  EXPECT_EQ(Value::troof(true).type(), TypeKind::kTroof);
  EXPECT_EQ(Value::numbr(3).type(), TypeKind::kNumbr);
  EXPECT_EQ(Value::numbar(0.5).type(), TypeKind::kNumbar);
  EXPECT_EQ(Value::yarn("x").type(), TypeKind::kYarn);
  EXPECT_TRUE(Value().is_noob());
}

TEST(Value, ZeroOf) {
  EXPECT_EQ(Value::zero_of(TypeKind::kNumbr), Value::numbr(0));
  EXPECT_EQ(Value::zero_of(TypeKind::kNumbar), Value::numbar(0.0));
  EXPECT_EQ(Value::zero_of(TypeKind::kTroof), Value::troof(false));
  EXPECT_EQ(Value::zero_of(TypeKind::kYarn), Value::yarn(""));
  EXPECT_TRUE(Value::zero_of(TypeKind::kNoob).is_noob());
}

// Truthiness: FAIL for NOOB, FAIL, 0, 0.0, ""; WIN otherwise.
TEST(Value, Truthiness) {
  EXPECT_FALSE(Value::noob().to_troof());
  EXPECT_FALSE(Value::troof(false).to_troof());
  EXPECT_FALSE(Value::numbr(0).to_troof());
  EXPECT_FALSE(Value::numbar(0.0).to_troof());
  EXPECT_FALSE(Value::yarn("").to_troof());
  EXPECT_TRUE(Value::troof(true).to_troof());
  EXPECT_TRUE(Value::numbr(-1).to_troof());
  EXPECT_TRUE(Value::numbar(0.001).to_troof());
  EXPECT_TRUE(Value::yarn("0").to_troof());  // non-empty YARN is WIN
}

TEST(Value, ToNumbr) {
  EXPECT_EQ(Value::troof(true).to_numbr(), 1);
  EXPECT_EQ(Value::troof(false).to_numbr(), 0);
  EXPECT_EQ(Value::numbr(7).to_numbr(), 7);
  EXPECT_EQ(Value::numbar(2.9).to_numbr(), 2);   // truncation
  EXPECT_EQ(Value::numbar(-2.9).to_numbr(), -2); // toward zero
  EXPECT_EQ(Value::yarn("42").to_numbr(), 42);
  EXPECT_EQ(Value::yarn("-5").to_numbr(), -5);
}

TEST(Value, ToNumbrErrors) {
  EXPECT_THROW(Value::noob().to_numbr(), RuntimeError);
  EXPECT_EQ(Value::noob().to_numbr(/*explicit_cast=*/true), 0);
  EXPECT_THROW(Value::yarn("abc").to_numbr(), RuntimeError);
  EXPECT_THROW(Value::yarn("").to_numbr(), RuntimeError);
  EXPECT_THROW(Value::yarn("3.5").to_numbr(), RuntimeError);
}

TEST(Value, ToNumbar) {
  EXPECT_DOUBLE_EQ(Value::troof(true).to_numbar(), 1.0);
  EXPECT_DOUBLE_EQ(Value::numbr(7).to_numbar(), 7.0);
  EXPECT_DOUBLE_EQ(Value::numbar(0.25).to_numbar(), 0.25);
  EXPECT_DOUBLE_EQ(Value::yarn("2.5").to_numbar(), 2.5);
  EXPECT_DOUBLE_EQ(Value::yarn("10").to_numbar(), 10.0);
}

TEST(Value, ToNumbarErrors) {
  EXPECT_THROW(Value::noob().to_numbar(), RuntimeError);
  EXPECT_DOUBLE_EQ(Value::noob().to_numbar(true), 0.0);
  EXPECT_THROW(Value::yarn("nope").to_numbar(), RuntimeError);
}

TEST(Value, ToYarn) {
  EXPECT_EQ(Value::troof(true).to_yarn(), "WIN");
  EXPECT_EQ(Value::troof(false).to_yarn(), "FAIL");
  EXPECT_EQ(Value::numbr(42).to_yarn(), "42");
  EXPECT_EQ(Value::numbar(3.14159).to_yarn(), "3.14");  // two decimals
  EXPECT_EQ(Value::yarn("hai").to_yarn(), "hai");
  EXPECT_THROW(Value::noob().to_yarn(), RuntimeError);
  EXPECT_EQ(Value::noob().to_yarn(true), "");
}

TEST(Value, CastToFullMatrix) {
  Value v = Value::yarn("7");
  EXPECT_EQ(v.cast_to(TypeKind::kNumbr, true), Value::numbr(7));
  EXPECT_EQ(v.cast_to(TypeKind::kTroof, true), Value::troof(true));
  EXPECT_TRUE(v.cast_to(TypeKind::kNoob, true).is_noob());
  EXPECT_EQ(Value::numbr(0).cast_to(TypeKind::kTroof, true),
            Value::troof(false));
  EXPECT_EQ(Value::numbar(1.5).cast_to(TypeKind::kYarn, true),
            Value::yarn("1.50"));
}

TEST(Value, SaemSameTypes) {
  EXPECT_TRUE(Value::saem(Value::numbr(3), Value::numbr(3)));
  EXPECT_FALSE(Value::saem(Value::numbr(3), Value::numbr(4)));
  EXPECT_TRUE(Value::saem(Value::yarn("x"), Value::yarn("x")));
  EXPECT_FALSE(Value::saem(Value::yarn("x"), Value::yarn("y")));
  EXPECT_TRUE(Value::saem(Value::troof(true), Value::troof(true)));
  EXPECT_TRUE(Value::saem(Value::noob(), Value::noob()));
}

TEST(Value, SaemNumericCrossType) {
  EXPECT_TRUE(Value::saem(Value::numbr(3), Value::numbar(3.0)));
  EXPECT_TRUE(Value::saem(Value::numbar(3.0), Value::numbr(3)));
  EXPECT_FALSE(Value::saem(Value::numbr(3), Value::numbar(3.5)));
}

TEST(Value, SaemOtherCrossTypesAreFail) {
  // No implicit casting in BOTH SAEM outside NUMBR<->NUMBAR.
  EXPECT_FALSE(Value::saem(Value::numbr(1), Value::troof(true)));
  EXPECT_FALSE(Value::saem(Value::yarn("3"), Value::numbr(3)));
  EXPECT_FALSE(Value::saem(Value::noob(), Value::troof(false)));
  EXPECT_FALSE(Value::saem(Value::yarn(""), Value::noob()));
}

TEST(Value, DebugStr) {
  EXPECT_EQ(Value::numbr(42).debug_str(), "NUMBR:42");
  EXPECT_EQ(Value::troof(false).debug_str(), "TROOF:FAIL");
  EXPECT_EQ(Value::yarn("q").debug_str(), "YARN:\"q\"");
  EXPECT_EQ(Value::noob().debug_str(), "NOOB");
}

// Parameterized cast round trips: explicit cast to YARN and back preserves
// numeric values that are exactly representable at two decimals.
class CastRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CastRoundTrip, NumbarThroughYarn) {
  Value v = Value::numbar(GetParam());
  Value y = v.cast_to(TypeKind::kYarn, true);
  Value back = y.cast_to(TypeKind::kNumbar, true);
  EXPECT_DOUBLE_EQ(back.numbar_raw(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(TwoDecimalValues, CastRoundTrip,
                         ::testing::Values(0.0, 1.25, -3.5, 42.75, 100.0,
                                           -0.25, 7.1, 1e6));

class NumbrRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(NumbrRoundTrip, NumbrThroughYarn) {
  Value v = Value::numbr(GetParam());
  Value y = v.cast_to(TypeKind::kYarn, true);
  EXPECT_EQ(y.cast_to(TypeKind::kNumbr, true).numbr_raw(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Integers, NumbrRoundTrip,
                         ::testing::Values(0, 1, -1, 42, -1000000,
                                           std::int64_t{1} << 40));

}  // namespace

// Differential cross-backend conformance harness.
//
// The paper's pedagogical claim — and this repo's north star — is that
// one parallel LOLCODE program means the same thing on every execution
// substrate. This harness makes that claim testable: run one program
// through the interpreter, the VM and (when the host has a C compiler)
// the lcc native path under *identical* RunConfigs, then require
//
//   * the same outcome classification (ok / compile error / runtime
//     error / step-limited / aborted), and
//   * byte-identical per-PE stdout and stderr.
//
// Per-PE comparison sidesteps SPMD interleaving: scheduling may order
// PEs differently between runs, but what each PE prints is deterministic
// given the program, the seed and the barriers it contains.
//
// Step-budget caveat: a "step" is a statement in the interpreter and the
// native code but an instruction in the VM, so budgets near the edge can
// classify differently by design. Differential cases therefore use
// budgets that are either clearly exhausted (tiny budget, infinite loop)
// or clearly generous; the classification must then agree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lol::difftest {

/// How a run ended, collapsed to the classification every backend must
/// agree on (the same partition JobStatus uses, minus service-only
/// states).
enum class Outcome {
  kOk,
  kCompileError,
  kRuntimeError,
  kStepLimit,
  kAborted,
};

[[nodiscard]] const char* to_string(Outcome o);

/// One differential case: a program plus the RunConfig knobs under test.
struct Spec {
  std::string name;
  std::string source;
  int n_pes = 1;
  std::uint64_t seed = 20170529;
  std::uint64_t max_steps = 0;          // 0 = unlimited
  std::vector<std::string> stdin_lines; // GIMMEH input
  std::uint64_t abort_after_ms = 0;     // >0: request abort from a timer
};

/// What one backend did with a Spec.
struct BackendRun {
  Backend backend = Backend::kInterp;
  std::string label;  // "interp" / "vm" / "native"
  Outcome outcome = Outcome::kOk;
  std::vector<std::string> pe_output;
  std::vector<std::string> pe_errout;
  std::string error;   // first error (diagnostic only, not compared)
  double wall_ms = 0.0;
};

/// True when Backend::kNative can run here (host cc + dlopen). Tests
/// GTEST_SKIP the native column when false; interp-vs-VM still runs.
bool native_available();

/// The backends this host can compare: interp and VM always, native when
/// available.
std::vector<Backend> backends_under_test();

[[nodiscard]] const char* backend_label(Backend b);

/// Runs one spec on one backend.
BackendRun run_one(const Spec& spec, Backend backend);

/// Runs the spec on every available backend and reports divergence:
/// empty string when all backends agree on classification and per-PE
/// output, else a human-readable report naming the disagreeing backends.
std::string divergence(const Spec& spec);

/// Loads every *.lol file under `dir` (sorted by name) as a Spec with
/// the given PE count. Empty when the directory is missing.
std::vector<Spec> load_lol_dir(const std::string& dir, int n_pes);

}  // namespace lol::difftest

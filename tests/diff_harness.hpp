// Differential cross-backend conformance harness.
//
// The paper's pedagogical claim — and this repo's north star — is that
// one parallel LOLCODE program means the same thing on every execution
// substrate. This harness makes that claim testable: run one program
// through the interpreter, the VM and (when the host has a C compiler)
// the lcc native path under *identical* RunConfigs, then require
//
//   * the same outcome classification (ok / compile error / runtime
//     error / step-limited / aborted), and
//   * byte-identical per-PE stdout and stderr.
//
// Per-PE comparison sidesteps SPMD interleaving: scheduling may order
// PEs differently between runs, but what each PE prints is deterministic
// given the program, the seed and the barriers it contains.
//
// The same program is also run under every PE executor (thread-per-PE,
// the persistent pool and fiber carriers), so the full conformance
// matrix is {interp, vm, native, jit} x {thread, pool, fiber}:
// multiplexing virtual PEs on fibers — or executing emitted x86-64
// instead of dispatching bytecode — must not change what any PE
// computes or prints.
//
// Step-budget caveat: a "step" is a statement in the interpreter and the
// native code but an instruction in the VM, so budgets near the edge can
// classify differently by design. Differential cases therefore use
// budgets that are either clearly exhausted (tiny budget, infinite loop)
// or clearly generous; the classification must then agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lol::difftest {

/// How a run ended, collapsed to the classification every backend must
/// agree on (the same partition JobStatus uses, minus service-only
/// states).
enum class Outcome {
  kOk,
  kCompileError,
  kRuntimeError,
  kStepLimit,
  kAborted,
};

[[nodiscard]] const char* to_string(Outcome o);

/// One differential case: a program plus the RunConfig knobs under test.
struct Spec {
  std::string name;
  std::string source;
  int n_pes = 1;
  std::uint64_t seed = 20170529;
  std::uint64_t max_steps = 0;          // 0 = unlimited
  std::vector<std::string> stdin_lines; // GIMMEH input
  std::uint64_t abort_after_ms = 0;     // >0: request abort from a timer
  /// Fiber column only: virtual PEs per carrier (0 = auto).
  int pes_per_thread = 0;
  /// Combining-tree barrier fan-in (0 = auto). The LOL_BARRIER_RADIX
  /// environment variable overrides this for every spec — CI uses it to
  /// run the whole suite under a non-default radix and prove outputs
  /// are radix-invariant.
  int barrier_radix = 0;
  /// Symmetric heap per PE; high-PE specs shrink it so a 512-PE case
  /// does not allocate half a gigabyte of arenas.
  std::size_t heap_bytes = 1 << 20;
  /// Optimizing middle-end level: -1 (the default) resolves to the
  /// LOL_OPT_LEVEL environment variable, else 2 — CI uses the variable
  /// to run the whole suite at -O0 and -O2 and prove the optimizer is
  /// output-invariant across the full backend x executor matrix. A spec
  /// naming an explicit level is testing that level and ignores the
  /// override. Specs with step budgets near the edge must pin a level:
  /// folding and unrolling legitimately change step counts.
  int opt_level = -1;
};

/// What one (backend, executor) cell did with a Spec.
struct BackendRun {
  Backend backend = Backend::kInterp;
  shmem::ExecutorKind executor = shmem::ExecutorKind::kThread;
  std::string label;  // "interp/thread", "vm/fiber", ...
  Outcome outcome = Outcome::kOk;
  std::vector<std::string> pe_output;
  std::vector<std::string> pe_errout;
  std::string error;   // first error (diagnostic only, not compared)
  double wall_ms = 0.0;
};

/// True when Backend::kNative can run here (host cc + dlopen). Tests
/// GTEST_SKIP the native column when false; interp-vs-VM still runs.
bool native_available();

/// True when Backend::kJit can run here (x86-64, executable mmap).
bool jit_available();

/// The backends this host can compare: interp and VM always, native and
/// jit when available.
std::vector<Backend> backends_under_test();

/// The executor axis: thread-per-PE and the persistent pool always,
/// fibers where ucontext exists (everywhere we build, today).
std::vector<shmem::ExecutorKind> executors_under_test();

[[nodiscard]] const char* backend_label(Backend b);

/// Runs one spec on one (backend, executor) cell.
BackendRun run_one(const Spec& spec, Backend backend,
                   shmem::ExecutorKind executor = shmem::ExecutorKind::kThread);

/// Runs the spec on every available backend x executor cell and reports
/// divergence: empty string when all cells agree on classification and
/// per-PE output, else a human-readable report naming the disagreeing
/// cells.
std::string divergence(const Spec& spec);

/// Loads every *.lol file under `dir` (sorted by name) as a Spec with
/// the given PE count. Empty when the directory is missing.
std::vector<Spec> load_lol_dir(const std::string& dir, int n_pes);

}  // namespace lol::difftest

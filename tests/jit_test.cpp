// JIT backend + native compile-path tests: x86-64 availability and
// parity with the VM, single-flight deduplication of concurrent cold
// compiles on both the cc+dlopen path (pinned against the
// lol_native_cc_invocations_total counter — the regression this PR
// fixes) and the JIT emit path, private scratch-directory hygiene,
// wait-status decoding of compiler deaths, and compile-cache recharging
// of sealed JIT code bytes.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "codegen/jit_backend.hpp"
#include "codegen/native_backend.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "service/compile_cache.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;
using lol::RunResult;

// A program with enough structure to exercise most emitted ops:
// functions and calls, loops, conditionals. The salt rides in a string
// *literal* (not a comment — comments don't survive into the bytecode
// chunk or the emitted C), so every backend cache key derived from the
// program is unique per test and cold-compile tests are not poisoned by
// other tests that compiled the same semantics earlier in the process.
std::string salted_source(const std::string& salt) {
  return "HAI 1.2\n"
         "I HAS A salt ITZ \"" + salt + "\"\n"
         "HOW IZ I fib YR n\n"
         "  DIFFRINT n AN SMALLR OF n AN 1, O RLY?\n"
         "  YA RLY\n"
         "    FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY AN I IZ "
         "fib YR DIFF OF n AN 2 MKAY\n"
         "  OIC\n"
         "  FOUND YR n\n"
         "IF U SAY SO\n"
         "I HAS A r ITZ I IZ fib YR 10 MKAY\n"
         "VISIBLE SMOOSH \"fib=\" AN r MKAY\n"
         "KTHXBYE\n";
}

RunResult run_backend(const lol::CompiledProgram& prog, Backend b,
                      int n_pes = 1) {
  RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = b;
  return lol::run(prog, cfg);
}

TEST(Jit, AvailabilityIsReported) {
#if defined(__x86_64__)
  const char* env = std::getenv("LOL_JIT");
  if (env != nullptr && std::string(env) == "0") {
    EXPECT_FALSE(lol::codegen::jit_available());
  } else if (!lol::codegen::jit_available()) {
    GTEST_SKIP() << "x86-64 host but no executable mmap (hardened "
                    "kernel?): jit column skipped";
  }
#else
  EXPECT_FALSE(lol::codegen::jit_available());
#endif
}

TEST(Jit, ByteIdenticalToVmAndChargesCodeBytes) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  auto prog = lol::compile(salted_source("parity"));
  EXPECT_EQ(prog.jit_code_bytes(), 0u) << "charged before any jit run";

  RunResult vm = run_backend(prog, Backend::kVm, 2);
  RunResult jit = run_backend(prog, Backend::kJit, 2);
  ASSERT_TRUE(vm.ok) << vm.first_error();
  ASSERT_TRUE(jit.ok) << jit.first_error();
  EXPECT_EQ(jit.pe_output, vm.pe_output);
  EXPECT_EQ(jit.pe_errout, vm.pe_errout);
  EXPECT_NE(jit.pe_output.at(0).find("fib=55"), std::string::npos);

  // The run memoized the sealed code on the program; the compile cache
  // uses this to charge JIT code against its byte budget.
  EXPECT_GT(prog.jit_code_bytes(), 0u);
}

// The headline regression: N concurrent cold submissions of one source
// must fork the host C compiler exactly once. Distinct CompiledProgram
// instances defeat the per-program NativeSlot memo, so this exercises
// the process-wide single-flight cache itself.
TEST(Jit, ConcurrentColdNativeCompilesInvokeCcExactlyOnce) {
  if (!lol::codegen::native_available()) {
    GTEST_SKIP() << "no host C compiler";
  }
  const std::string source = salted_source("native-single-flight");
  constexpr int kThreads = 8;
  std::vector<lol::CompiledProgram> programs;
  programs.reserve(kThreads);
  // -O0: the salt declaration is dead code the optimizer would remove,
  // and cold-compile tests depend on per-test-unique compiled shapes.
  lol::CompileOptions copts;
  copts.opt_level = 0;
  for (int i = 0; i < kThreads; ++i) {
    programs.push_back(lol::compile(source, copts));
  }

  lol::obs::Counter& invocations = lol::obs::Registry::global().counter(
      "lol_native_cc_invocations_total",
      "Host C compiler invocations by the native backend");
  const std::uint64_t before = invocations.value();

  std::latch start(kThreads);
  std::vector<std::thread> threads;
  std::vector<RunResult> results(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();  // maximize overlap of the cold misses
      results[i] = run_backend(programs[i], Backend::kNative);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].first_error();
    EXPECT_EQ(results[i].pe_output, results[0].pe_output);
  }
  EXPECT_EQ(invocations.value() - before, 1u)
      << "concurrent identical cold jobs must share one cc invocation";
}

// Same dedup discipline on the JIT path: one emit per distinct chunk,
// no matter how many programs race to it cold.
TEST(Jit, ConcurrentColdJitCompilesEmitExactlyOnce) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  const std::string source = salted_source("jit-single-flight");
  constexpr int kThreads = 8;
  std::vector<lol::CompiledProgram> programs;
  programs.reserve(kThreads);
  // -O0: the salt declaration is dead code the optimizer would remove,
  // and cold-compile tests depend on per-test-unique compiled shapes.
  lol::CompileOptions copts;
  copts.opt_level = 0;
  for (int i = 0; i < kThreads; ++i) {
    programs.push_back(lol::compile(source, copts));
  }

  lol::obs::Counter& compiles = lol::obs::Registry::global().counter(
      "lol_jit_compiles_total", "Bytecode-to-x86-64 JIT compilations");
  const std::uint64_t before = compiles.value();

  std::latch start(kThreads);
  std::vector<std::thread> threads;
  std::vector<RunResult> results(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();
      results[i] = run_backend(programs[i], Backend::kJit);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].first_error();
    EXPECT_EQ(results[i].pe_output, results[0].pe_output);
  }
  EXPECT_EQ(compiles.value() - before, 1u)
      << "concurrent identical cold jobs must share one JIT emit";
}

TEST(Jit, NativeScratchDirIsPrivateAndOwnerOnly) {
  if (!lol::codegen::native_available()) {
    GTEST_SKIP() << "no host C compiler";
  }
  const std::string& dir = lol::codegen::native_scratch_dir();
  ASSERT_FALSE(dir.empty());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  // mkdtemp randomizes the suffix: the predictable lolnative_<pid>_<n>
  // scheme this replaced was guessable by other local users.
  EXPECT_NE(dir.find("lolnative_"), std::string::npos);

  struct stat st{};
  ASSERT_EQ(::stat(dir.c_str(), &st), 0);
  EXPECT_EQ(st.st_mode & 0777, static_cast<mode_t>(0700))
      << "scratch dir must be owner-only";
  EXPECT_EQ(st.st_uid, ::getuid());
}

TEST(Jit, DescribeCcFailureDistinguishesSignalFromExit) {
  // Linux wait-status encoding: low 7 bits = terminating signal (0 for
  // a normal exit), bits 8..15 = exit code. Sanity-check the macros see
  // the statuses the way the test intends before pinning the strings.
  const int killed_by_9 = 9;           // SIGKILL death
  const int exited_1 = 1 << 8;         // exit(1)
  ASSERT_TRUE(WIFSIGNALED(killed_by_9));
  ASSERT_TRUE(WIFEXITED(exited_1));

  EXPECT_EQ(lol::codegen::describe_cc_failure(killed_by_9),
            "host C compiler killed by signal 9");
  EXPECT_EQ(lol::codegen::describe_cc_failure(exited_1),
            "host C compiler failed (exit 1)");
  EXPECT_EQ(lol::codegen::describe_cc_failure(-1),
            "could not spawn the host C compiler");
}

TEST(Jit, CcExitFailureIsReportedWithExitStatus) {
  if (!lol::codegen::native_available()) {
    GTEST_SKIP() << "no host C compiler";
  }
  // native_available() is memoized above with the real compiler; from
  // here $CC only affects the compile command itself. /bin/false "builds"
  // nothing and exits 1 — the diagnostic must carry the decoded status.
  const char* old_cc = std::getenv("CC");
  std::string saved = old_cc != nullptr ? old_cc : "";
  ::setenv("CC", "/bin/false", 1);
  lol::CompileOptions copts;
  copts.opt_level = 0;  // keep the salt: this build must be cold
  auto prog = lol::compile(salted_source("cc-exit-failure"), copts);
  RunResult r = run_backend(prog, Backend::kNative);
  if (old_cc != nullptr) {
    ::setenv("CC", saved.c_str(), 1);
  } else {
    ::unsetenv("CC");
  }
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("failed (exit 1)"), std::string::npos)
      << r.first_error();
}

TEST(Jit, CompileCacheRechargesJitCodeBytes) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  lol::service::CompileCache cache(8, 32u << 20);
  const std::string source = salted_source("cache-recharge");
  auto compiled = cache.get_or_compile(source);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const std::size_t charged = cache.resident_bytes();
  EXPECT_EQ(charged,
            lol::service::CompileCache::charged_bytes(source.size()));

  // Before any JIT run the recharge is a no-op...
  cache.recharge(source);
  EXPECT_EQ(cache.resident_bytes(), charged);

  // ...after one it folds the sealed code into the budget, exactly as
  // the program reports it.
  RunResult r = run_backend(*compiled.program, Backend::kJit);
  ASSERT_TRUE(r.ok) << r.first_error();
  ASSERT_GT(compiled.program->jit_code_bytes(), 0u);
  cache.recharge(source);
  EXPECT_EQ(cache.resident_bytes(),
            charged + compiled.program->jit_code_bytes());

  // Recharging twice does not double-charge.
  cache.recharge(source);
  EXPECT_EQ(cache.resident_bytes(),
            charged + compiled.program->jit_code_bytes());
}

// The typed kBinary fast path inlines integer/double arithmetic when the
// emitter proves both operands' types from SRSLY declarations. Parity
// must hold not just on output but on step *accounting*: the prep
// charges exactly the one step the generic helper would, so at every
// budget the two backends agree on whether the run step-limits.
TEST(Jit, TypedArithmeticFastPathMatchesVmStepsExactly) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  const std::string src =
      "HAI 1.2\n"
      "I HAS A salt ITZ \"binfast\"\n"
      "I HAS A s ITZ SRSLY A NUMBR AN ITZ 1\n"
      "I HAS A f ITZ SRSLY A NUMBAR AN ITZ 1.5\n"
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 20\n"
      "  s R SUM OF s AN 3\n"
      "  s R PRODUKT OF s AN 2\n"
      "  s R SMALLR OF s AN 100000\n"
      "  s R BIGGR OF s AN 7\n"
      "  s R DIFF OF s AN 1\n"
      "  f R SUM OF f AN 0.25\n"
      "  f R PRODUKT OF f AN 1.01\n"
      "  f R DIFF OF f AN 0.125\n"
      "IM OUTTA YR lp\n"
      "VISIBLE SMOOSH s AN \" \" AN f MKAY\n"
      "KTHXBYE\n";
  // Level 0 keeps the loop (and its typed kBinary ops) in the bytecode
  // instead of letting the optimizer fold the whole thing.
  lol::CompileOptions copts;
  copts.opt_level = 0;
  auto prog = lol::compile(src, copts);

  for (std::uint64_t budget : {40u, 120u, 400u, 0u}) {
    RunConfig cfg;
    cfg.n_pes = 2;
    cfg.max_steps = budget;
    cfg.backend = Backend::kVm;
    RunResult vm = lol::run(prog, cfg);
    cfg.backend = Backend::kJit;
    RunResult jit = lol::run(prog, cfg);
    EXPECT_EQ(jit.ok, vm.ok) << "budget " << budget;
    EXPECT_EQ(jit.step_limited, vm.step_limited) << "budget " << budget;
    EXPECT_EQ(jit.pe_output, vm.pe_output) << "budget " << budget;
    EXPECT_EQ(jit.pe_errout, vm.pe_errout) << "budget " << budget;
  }
}

}  // namespace

// Differential cross-backend conformance suite: every program must mean
// the same thing on the interpreter, the VM, the lcc native path and the
// direct x86-64 JIT (Tables 1–3 of the source paper frame conformance
// exactly this way). Cases cover the example programs shipped in
// examples/lol/, the paper's §VI listings, and a table of edge-case
// snippets — including deterministic-seed multi-PE programs, step-limit
// budgets, external aborts and record/replay trace identity, so the
// *classification* parity the service relies on is pinned down, not just
// happy-path output.
//
// When the host has no C compiler the native column is skipped, and on
// non-x86-64 hosts (or under LOL_JIT=0) the jit column is skipped; the
// harness still cross-checks the remaining backends. CI runs all four.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/paper_programs.hpp"
#include "diff_harness.hpp"
#include "replay/trace.hpp"

#ifndef LOL_EXAMPLES_DIR
#define LOL_EXAMPLES_DIR "examples/lol"
#endif

namespace {

using lol::difftest::Outcome;
using lol::difftest::Spec;

Spec make(std::string name, const std::string& body, int n_pes = 1) {
  Spec s;
  s.name = std::move(name);
  s.source = "HAI 1.2\n" + body + "KTHXBYE\n";
  s.n_pes = n_pes;
  return s;
}

void expect_agreement(const Spec& spec) {
  std::string report = lol::difftest::divergence(spec);
  EXPECT_EQ(report, "") << report;
}

TEST(Differential, BackendAvailabilityIsReported) {
  // A visible record in the test log of which optional columns ran on
  // this host, plus a pin that the count matches the availability probes
  // (a backend silently falling out of backends_under_test() would
  // otherwise shrink the matrix without failing anything).
  std::size_t expected = 2;  // interp + vm, always
  if (lol::difftest::native_available()) ++expected;
  if (lol::difftest::jit_available()) ++expected;
  EXPECT_EQ(lol::difftest::backends_under_test().size(), expected);
  if (!lol::difftest::native_available()) {
    GTEST_SKIP() << "no host C compiler: native column skipped";
  }
  if (!lol::difftest::jit_available()) {
    GTEST_SKIP() << "no x86-64 executable mmap (or LOL_JIT=0): jit "
                    "column skipped";
  }
}

// The teaching-scale acceptance case: the §VI programs at PE counts far
// beyond this host's cores, fiber vs thread, byte-identical per PE. The
// full backend matrix already runs above at 4 PEs; this pins the scale
// the paper's machines had (256-512 of the Parallella cluster's 4,096)
// on the one executor that can reach it, against the thread executor as
// the reference. VM backend: one backend keeps 512-OS-thread reference
// runs affordable, and backend parity is covered by the matrix tests.
TEST(Differential, HighPeFiberMatchesThreadExecutor) {
  std::vector<Spec> specs;

  Spec heat;
  heat.name = "heat_1d-256pe";
  heat.n_pes = 256;
  heat.heap_bytes = 64 << 10;
  {
    auto loaded = lol::difftest::load_lol_dir(LOL_EXAMPLES_DIR, heat.n_pes);
    for (auto& s : loaded) {
      if (s.name == "heat_1d.lol") heat.source = s.source;
    }
  }
  ASSERT_FALSE(heat.source.empty()) << "heat_1d.lol not found";
  specs.push_back(heat);

  Spec ring;
  ring.name = "paper-ring-512pe";
  ring.source = lol::paper::ring_listing();
  ring.n_pes = 512;
  ring.heap_bytes = 16 << 10;
  specs.push_back(ring);

  Spec bsum;
  bsum.name = "paper-barrier-sum-512pe";
  bsum.source = lol::paper::barrier_sum_listing();
  bsum.n_pes = 512;
  bsum.heap_bytes = 16 << 10;
  specs.push_back(bsum);

  for (Spec& spec : specs) {
    SCOPED_TRACE(spec.name);
    spec.pes_per_thread = 64;  // force real multiplexing on any host
    auto thread_run =
        lol::difftest::run_one(spec, lol::Backend::kVm,
                               lol::shmem::ExecutorKind::kThread);
    auto fiber_run =
        lol::difftest::run_one(spec, lol::Backend::kVm,
                               lol::shmem::ExecutorKind::kFiber);
    EXPECT_EQ(lol::difftest::to_string(thread_run.outcome),
              std::string(lol::difftest::to_string(fiber_run.outcome)));
    ASSERT_EQ(thread_run.outcome, lol::difftest::Outcome::kOk)
        << thread_run.error;
    EXPECT_EQ(thread_run.pe_output, fiber_run.pe_output);
    EXPECT_EQ(thread_run.pe_errout, fiber_run.pe_errout);
  }
}

// The barrier radix is a pure performance knob: the same program at the
// same PE count must print byte-identical output for a binary tree, the
// auto radix, and the flat degenerate — on both executors. (CI also
// runs the entire suite under LOL_BARRIER_RADIX=3 in one matrix leg.)
TEST(Differential, BarrierRadixIsOutputInvariant) {
  Spec bsum;
  bsum.name = "paper-barrier-sum-256pe";
  bsum.source = lol::paper::barrier_sum_listing();
  bsum.n_pes = 256;
  bsum.heap_bytes = 16 << 10;
  bsum.pes_per_thread = 64;

  Spec ref = bsum;  // radix 0 = auto, thread executor
  auto ref_run = lol::difftest::run_one(ref, lol::Backend::kVm,
                                        lol::shmem::ExecutorKind::kThread);
  ASSERT_EQ(ref_run.outcome, lol::difftest::Outcome::kOk) << ref_run.error;

  for (int radix : {2, 16, 256}) {
    for (auto executor : {lol::shmem::ExecutorKind::kThread,
                          lol::shmem::ExecutorKind::kFiber}) {
      SCOPED_TRACE(std::string("radix ") + std::to_string(radix) + " on " +
                   lol::shmem::to_string(executor));
      Spec spec = bsum;
      spec.barrier_radix = radix;
      auto run = lol::difftest::run_one(spec, lol::Backend::kVm, executor);
      ASSERT_EQ(run.outcome, lol::difftest::Outcome::kOk) << run.error;
      EXPECT_EQ(run.pe_output, ref_run.pe_output);
      EXPECT_EQ(run.pe_errout, ref_run.pe_errout);
    }
  }
}

// The optimizer is a pure performance transform: -O0, -O1 and -O2 must
// print byte-identical per-PE output on every backend x executor cell.
// Workloads chosen to actually exercise the passes — heat_1d unrolls
// both stencil loops and folds the indices, the n-body listing hoists
// loop invariants, barrier-sum is the straight-line control. (CI also
// runs the entire suite under LOL_OPT_LEVEL=0 in one matrix leg.)
TEST(Differential, OptimizedMatchesUnoptimizedAcrossTheMatrix) {
  std::vector<Spec> workloads;
  workloads.push_back(
      lol::difftest::load_lol_dir(LOL_EXAMPLES_DIR, 4).empty()
          ? make("fallback", "VISIBLE SUM OF 1 AN 2\n")
          : [] {
              auto all = lol::difftest::load_lol_dir(LOL_EXAMPLES_DIR, 4);
              for (auto& s : all) {
                if (s.name == "heat_1d.lol") return s;
              }
              return all.front();
            }());
  Spec nbody;
  nbody.name = "paper-nbody";
  nbody.source = lol::paper::nbody_program(6, 2, true);
  nbody.n_pes = 2;
  workloads.push_back(nbody);
  Spec bsum;
  bsum.name = "paper-barrier-sum";
  bsum.source = lol::paper::barrier_sum_listing();
  bsum.n_pes = 4;
  workloads.push_back(bsum);

  for (Spec& spec : workloads) {
    SCOPED_TRACE(spec.name);
    spec.opt_level = 0;
    auto ref = lol::difftest::run_one(spec, lol::Backend::kVm);
    ASSERT_EQ(ref.outcome, Outcome::kOk) << ref.error;
    for (int level : {1, 2}) {
      Spec opt = spec;
      opt.opt_level = level;
      for (lol::Backend b : lol::difftest::backends_under_test()) {
        for (auto e : lol::difftest::executors_under_test()) {
          SCOPED_TRACE(std::string("-O") + std::to_string(level) + " on " +
                       lol::difftest::backend_label(b) + "/" +
                       lol::shmem::to_string(e));
          auto run = lol::difftest::run_one(opt, b, e);
          ASSERT_EQ(run.outcome, Outcome::kOk) << run.error;
          EXPECT_EQ(run.pe_output, ref.pe_output);
          EXPECT_EQ(run.pe_errout, ref.pe_errout);
        }
      }
    }
  }
}

TEST(Differential, ExamplePrograms) {
  std::vector<Spec> specs = lol::difftest::load_lol_dir(LOL_EXAMPLES_DIR, 4);
  ASSERT_FALSE(specs.empty())
      << "no .lol programs found under " << LOL_EXAMPLES_DIR;
  for (const Spec& spec : specs) {
    SCOPED_TRACE(spec.name);
    expect_agreement(spec);
  }
}

TEST(Differential, PaperListings) {
  std::vector<Spec> specs;
  Spec ring;
  ring.name = "paper-ring";
  ring.source = lol::paper::ring_listing();
  ring.n_pes = 4;
  specs.push_back(ring);

  Spec locks;
  locks.name = "paper-lock-counter";
  locks.source = lol::paper::lock_counter_listing(25);
  locks.n_pes = 4;
  specs.push_back(locks);

  Spec bsum;
  bsum.name = "paper-barrier-sum";
  bsum.source = lol::paper::barrier_sum_listing();
  bsum.n_pes = 4;
  specs.push_back(bsum);

  // The full §VI.D n-body listing on one PE (exact stdout ordering) and
  // a smaller configuration across PEs (per-PE trajectories must still
  // agree byte for byte — the barriers make them deterministic).
  Spec nbody1;
  nbody1.name = "paper-nbody-1pe";
  nbody1.source = lol::paper::nbody_program(8, 3, true);
  nbody1.n_pes = 1;
  specs.push_back(nbody1);

  Spec nbody4;
  nbody4.name = "paper-nbody-4pe";
  nbody4.source = lol::paper::nbody_program(6, 2, true);
  nbody4.n_pes = 4;
  specs.push_back(nbody4);

  for (const Spec& spec : specs) {
    SCOPED_TRACE(spec.name);
    expect_agreement(spec);
  }
}

TEST(Differential, EdgeCaseTable) {
  std::vector<Spec> specs;

  specs.push_back(make(
      "arith-mixed",
      "VISIBLE SUM OF 2 AN PRODUKT OF 3 AN 4\n"
      "VISIBLE DIFF OF 1.5 AN 0.25\n"
      "VISIBLE QUOSHUNT OF 7 AN 2\n"
      "VISIBLE QUOSHUNT OF 7.0 AN 2\n"
      "VISIBLE MOD OF 17 AN 5\n"
      "VISIBLE BIGGR OF 3 AN 9\n"
      "VISIBLE SMALLR OF 3.5 AN 9\n"
      "VISIBLE SQUAR OF 12\n"
      "VISIBLE UNSQUAR OF 2.25\n"
      "VISIBLE FLIP OF 4.0\n"));

  specs.push_back(make(
      "compare-and-bool",
      "VISIBLE BOTH SAEM 3 AN 3.0\n"
      "VISIBLE DIFFRINT \"a\" AN \"b\"\n"
      "VISIBLE BIGGER 4 AN 2\n"
      "VISIBLE SMALLR 4 AN 2\n"
      "VISIBLE BOTH OF WIN AN FAIL\n"
      "VISIBLE EITHER OF WIN AN FAIL\n"
      "VISIBLE WON OF WIN AN WIN\n"
      "VISIBLE NOT FAIL\n"
      "VISIBLE ALL OF WIN AN 1 AN \"x\" MKAY\n"
      "VISIBLE ANY OF FAIL AN 0 AN \"\" MKAY\n"));

  specs.push_back(make(
      "yarn-smoosh-interp",
      "I HAS A who ITZ \"WORLD\"\n"
      "I HAS A n ITZ 3.5\n"
      "VISIBLE SMOOSH \"HAI \" who \"!\" MKAY\n"
      "VISIBLE \"n=:{n} who=:{who}\"\n"));

  specs.push_back(make(
      "casts",
      "I HAS A x ITZ \"42\"\n"
      "VISIBLE SUM OF MAEK x A NUMBR AN 1\n"
      "I HAS A y ITZ 3.99\n"
      "y IS NOW A NUMBR\n"
      "VISIBLE y\n"
      "I HAS A z ITZ SRSLY A NUMBR\n"
      "z R \"17\"\n"
      "VISIBLE z\n"
      "VISIBLE MAEK WIN A NUMBR\n"));

  specs.push_back(make(
      "orly-mebbe-chain",
      "I HAS A x ITZ 7\n"
      "BOTH SAEM x AN 1, O RLY?\n"
      "YA RLY\n  VISIBLE \"one\"\n"
      "MEBBE BOTH SAEM x AN 7\n  VISIBLE \"seven\"\n"
      "MEBBE BOTH SAEM x AN 9\n  VISIBLE \"nine\"\n"
      "NO WAI\n  VISIBLE \"other\"\n"
      "OIC\n"));

  specs.push_back(make(
      "wtf-fallthrough-gtfo",
      "I HAS A x ITZ 2\n"
      "x, WTF?\n"
      "OMG 1\n  VISIBLE \"one\"\n  GTFO\n"
      "OMG 2\n  VISIBLE \"two\"\n"
      "OMG 3\n  VISIBLE \"three\"\n  GTFO\n"
      "OMGWTF\n  VISIBLE \"other\"\n"
      "OIC\n"));

  specs.push_back(make(
      "loops-uppin-nerfin-gtfo",
      "IM IN YR up UPPIN YR i TIL BOTH SAEM i AN 4\n"
      "  VISIBLE i\n"
      "IM OUTTA YR up\n"
      "I HAS A k ITZ 2\n"
      "IM IN YR down NERFIN YR j WILE BIGGER SUM OF j AN k AN 0\n"
      "  VISIBLE j\n"
      "IM OUTTA YR down\n"
      "I HAS A c ITZ 0\n"
      "IM IN YR spin\n"
      "  c R SUM OF c AN 1\n"
      "  BOTH SAEM c AN 3, O RLY?\n  YA RLY\n    GTFO\n  OIC\n"
      "IM OUTTA YR spin\n"
      "VISIBLE c\n"));

  specs.push_back(make(
      "functions-recursion",
      "HOW IZ I fib YR n\n"
      "  SMALLR n AN 2, O RLY?\n"
      "  YA RLY\n    FOUND YR n\n"
      "  OIC\n"
      "  FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY ...\n"
      "    AN I IZ fib YR DIFF OF n AN 2 MKAY\n"
      "IF U SAY SO\n"
      "HOW IZ I doublin YR x\n"
      "  FOUND YR PRODUKT OF BIGGR OF x AN 1 AN 2\n"
      "IF U SAY SO\n"
      "VISIBLE I IZ fib YR 10 MKAY\n"
      "IM IN YR loop doublin YR i TIL BIGGER i AN 10\n"
      "  VISIBLE i\n"
      "IM OUTTA YR loop\n"));

  specs.push_back(make(
      "arrays-dyn-and-srsly",
      "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
      "a'Z 0 R 10\n"
      "a'Z 3 R SUM OF a'Z 0 AN 5\n"
      "VISIBLE a'Z 0\nVISIBLE a'Z 1\nVISIBLE a'Z 3\n"
      "I HAS A f ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 2\n"
      "f'Z 0 R 1.5\nf'Z 1 R PRODUKT OF f'Z 0 AN 4\n"
      "VISIBLE f'Z 1\n"
      "I HAS A b ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
      "b R a\n"
      "VISIBLE b'Z 3\n"));

  specs.push_back(make(
      "invisible-stderr",
      "VISIBLE \"to stdout\"\n"
      "INVISIBLE \"to stderr\"\n"));

  specs.push_back(make(
      "gimmeh-lines-and-eof",
      "I HAS A x\nI HAS A y\nI HAS A z\n"
      "GIMMEH x\nGIMMEH y\nGIMMEH z\n"
      "VISIBLE SMOOSH \"[\" x \"|\" y \"|\" z \"]\" MKAY\n"));
  specs.back().stdin_lines = {"first line", "second line"};

  // Runtime errors must classify identically (messages may differ in
  // location detail; the harness compares classification only).
  specs.push_back(make("err-div-by-zero", "VISIBLE QUOSHUNT OF 1 AN 0\n"));
  specs.back().n_pes = 2;
  specs.push_back(make("err-negative-sqrt", "VISIBLE UNSQUAR OF -4.0\n"));
  specs.push_back(make(
      "err-array-oob",
      "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\nVISIBLE a'Z 5\n"));
  specs.push_back(make("err-bad-cast", "VISIBLE SUM OF \"nope\" AN 1\n"));

  for (const Spec& spec : specs) {
    SCOPED_TRACE(spec.name);
    expect_agreement(spec);
  }
}

TEST(Differential, MultiPeDeterministicSeedPrograms) {
  // Scheduling nondeterminism is exercised (4 PEs racing through locks
  // and barriers) but per-PE output stays comparable: WHATEVR streams
  // are seeded per PE, and the reductions are order-independent.
  std::vector<Spec> specs;

  specs.push_back(make(
      "whatevr-streams",
      "VISIBLE \"PE \" ME \" DRAWS \" WHATEVR \" \" WHATEVR\n"
      "VISIBLE \"PE \" ME \" REAL \" WHATEVAR\n",
      4));
  specs.back().seed = 123456789;

  specs.push_back(make(
      "bff-ring-exchange",
      "WE HAS A slot ITZ SRSLY A NUMBR\n"
      "HUGZ\n"
      "I HAS A nxt ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
      "TXT MAH BFF nxt\n"
      "  UR slot R PRODUKT OF ME AN 100\n"
      "TTYL\n"
      "HUGZ\n"
      "VISIBLE \"PE \" ME \" HAZ \" slot\n",
      4));

  specs.push_back(make(
      "atomic-ish-lock-sum",
      "WE HAS A total ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "HUGZ\n"
      "IM IN YR add UPPIN YR i TIL BOTH SAEM i AN 10\n"
      "  TXT MAH BFF 0 AN STUFF\n"
      "    IM SRSLY MESIN WIF UR total\n"
      "    UR total R SUM OF UR total AN 1\n"
      "    DUN MESIN WIF UR total\n"
      "  TTYL\n"
      "IM OUTTA YR add\n"
      "HUGZ\n"
      "BOTH SAEM ME AN 0, O RLY?\n"
      "YA RLY\n  VISIBLE \"TOTAL \" total\nOIC\n",
      4));

  for (const Spec& spec : specs) {
    SCOPED_TRACE(spec.name);
    expect_agreement(spec);
  }
}

TEST(Differential, StepLimitClassifiesIdentically) {
  // A tiny budget against an infinite loop: every backend must report
  // step-limited (a step is backend-defined, so the budget is orders of
  // magnitude away from the edge in both directions).
  Spec spin = make("spin-steplimit", "IM IN YR l\nIM OUTTA YR l\n", 2);
  spin.max_steps = 500;
  {
    SCOPED_TRACE(spin.name);
    expect_agreement(spin);
    auto r = lol::difftest::run_one(spin, lol::Backend::kInterp);
    EXPECT_EQ(r.outcome, Outcome::kStepLimit);
  }

  // A generous budget over a bounded program: nobody may trip.
  Spec ok = make("bounded-generous-budget",
                 "I HAS A s ITZ 0\n"
                 "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 50\n"
                 "  s R SUM OF s AN i\n"
                 "IM OUTTA YR l\n"
                 "VISIBLE s\n");
  ok.max_steps = 1'000'000;
  {
    SCOPED_TRACE(ok.name);
    expect_agreement(ok);
    auto r = lol::difftest::run_one(ok, lol::Backend::kVm);
    EXPECT_EQ(r.outcome, Outcome::kOk);
  }
}

TEST(Differential, ExternalAbortClassifiesIdentically) {
  // A spinning program with no step budget, killed from outside — the
  // path the service's deadline reaper and cancel() use. Every backend
  // must die promptly and classify as aborted.
  Spec spin = make("spin-abort", "IM IN YR l\nIM OUTTA YR l\n", 2);
  spin.abort_after_ms = 50;
  for (lol::Backend b : lol::difftest::backends_under_test()) {
    SCOPED_TRACE(lol::difftest::backend_label(b));
    auto r = lol::difftest::run_one(spin, b);
    EXPECT_EQ(r.outcome, Outcome::kAborted);
    EXPECT_LT(r.wall_ms, 5000.0);
  }
}

TEST(Differential, RecordedTraceReplaysIdenticallyOnEveryBackend) {
  // Record/replay closes the conformance loop: a schedule recorded on
  // one backend must drive every other backend to byte-identical output.
  // This is stronger than free-running agreement — the replayed schedule
  // pins the exact interleaving, so a backend that sequences its shared
  // stores or barrier arrivals differently from the recorded semantics
  // is diagnosed as divergence instead of hiding behind determinism.
  const std::string source =
      "HAI 1.2\n"
      "WE HAS A count ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "HUGZ\n"
      "TXT MAH BFF 0 AN STUFF\n"
      "  IM SRSLY MESIN WIF UR count\n"
      "  UR count R SUM OF UR count AN 1\n"
      "  DUN MESIN WIF UR count\n"
      "TTYL\n"
      "HUGZ\n"
      "BOTH SAEM ME AN 0, O RLY?\n"
      "YA RLY\n  VISIBLE count\nOIC\n"
      "KTHXBYE\n";
  auto prog = lol::compile(source);

  for (lol::Backend rec_backend : lol::difftest::backends_under_test()) {
    SCOPED_TRACE(std::string("recorded on ") +
                 lol::difftest::backend_label(rec_backend));
    lol::RunConfig rec_cfg;
    rec_cfg.n_pes = 4;
    rec_cfg.backend = rec_backend;
    rec_cfg.schedule = lol::replay::ScheduleMode::kRecord;
    lol::RunResult rec = lol::run(prog, rec_cfg);
    ASSERT_TRUE(rec.ok) << rec.first_error();
    ASSERT_FALSE(rec.schedule_trace.empty());
    std::string err;
    auto trace = lol::replay::Trace::parse(rec.schedule_trace, &err);
    ASSERT_TRUE(trace.has_value()) << err;
    auto shared =
        std::make_shared<lol::replay::Trace>(std::move(*trace));

    for (lol::Backend rep_backend : lol::difftest::backends_under_test()) {
      SCOPED_TRACE(std::string("replayed on ") +
                   lol::difftest::backend_label(rep_backend));
      lol::RunConfig cfg;
      cfg.n_pes = 4;
      cfg.backend = rep_backend;
      cfg.schedule = lol::replay::ScheduleMode::kReplay;
      cfg.replay_trace = shared;
      lol::RunResult rep = lol::run(prog, cfg);
      ASSERT_TRUE(rep.ok) << rep.first_error();
      EXPECT_FALSE(rep.replay_diverged);
      EXPECT_EQ(rep.pe_output, rec.pe_output);
      EXPECT_EQ(rep.pe_errout, rec.pe_errout);
    }
  }
}

}  // namespace

// Unit tests for the optimizing middle-end (src/opt): golden
// before/after AST dumps per pass, level gating, and the cache-key hash
// mixing. Each case parses + analyzes a small program, runs the
// pipeline, and asserts on the structural dump — the same s-expression
// shape the parser golden tests use — plus the Stats counters, so a
// pass silently not firing fails loudly rather than vacuously passing.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "ast/printer.hpp"
#include "opt/opt.hpp"
#include "parse/parser.hpp"
#include "sema/analyzer.hpp"

namespace {

using lol::opt::Options;
using lol::opt::Stats;

/// Wraps `body` in HAI/KTHXBYE, analyzes, optimizes at `level`, and
/// returns the structural dump of the whole program. Stats land in
/// *stats when given.
std::string opt_dump(std::string_view body, int level = 2,
                     Stats* stats = nullptr) {
  std::string src = "HAI 1.2\n" + std::string(body) + "\nKTHXBYE\n";
  lol::ast::Program p = lol::parse::parse_program(src);
  (void)lol::sema::analyze(p);
  Options opts;
  opts.level = level;
  lol::opt::optimize(p, opts, stats);
  return lol::ast::dump(p);
}

bool contains(const std::string& hay, std::string_view needle) {
  return hay.find(needle) != std::string::npos;
}

// -- fold ---------------------------------------------------------------------

TEST(OptFold, FoldsNestedConstantArithmetic) {
  Stats st;
  std::string d = opt_dump("VISIBLE SUM OF 3 AN SUM OF 2 AN 2", 2, &st);
  EXPECT_EQ(d, "(program\n  (visible (numbr 7)))");
  EXPECT_GT(st.folded, 0u);
}

TEST(OptFold, FoldsCastChains) {
  // MAEK over a literal folds through the runtime's own cast ops, so
  // the folded YARN is bit-identical to what run time would print.
  std::string d = opt_dump("VISIBLE MAEK 2 A YARN");
  EXPECT_EQ(d, "(program\n  (visible (yarn \"2\")))");
}

TEST(OptFold, NeverFoldsThrowingExpressions) {
  // Division by zero throws at run time; folding it would turn a
  // runtime error into a compile-time one (or worse, a wrong value).
  std::string d = opt_dump("VISIBLE QUOSHUNT OF 1 AN 0");
  EXPECT_TRUE(contains(d, "(quoshunt (numbr 1) (numbr 0))")) << d;
}

// -- prop + dce ---------------------------------------------------------------

TEST(OptProp, PropagatesAndRemovesDeadScalar) {
  Stats st;
  std::string d = opt_dump("I HAS A x ITZ 5\nVISIBLE SUM OF x AN 1", 2, &st);
  EXPECT_EQ(d, "(program\n  (visible (numbr 6)))");
  EXPECT_GT(st.propagated, 0u);
  EXPECT_GT(st.dead, 0u);
}

TEST(OptProp, InterpolationKeepsDeclarationAlive) {
  // `:{x}` reads the environment by name at print time, so the
  // declaration must survive even though every expression read of x
  // was propagated away.
  std::string d = opt_dump("I HAS A x ITZ 5\nVISIBLE \":{x}\"");
  EXPECT_TRUE(contains(d, "(decl i x")) << d;
}

// -- unroll -------------------------------------------------------------------

TEST(OptUnroll, UnrollsSmallCountingLoop) {
  Stats st;
  std::string d = opt_dump(
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 3\n"
      "  VISIBLE i\n"
      "IM OUTTA YR lp",
      2, &st);
  EXPECT_EQ(d,
            "(program\n"
            "  (visible (numbr 0))\n"
            "  (visible (numbr 1))\n"
            "  (visible (numbr 2)))");
  EXPECT_EQ(st.unrolled, 1u);
}

TEST(OptUnroll, LeavesLargeTripCountAlone) {
  // Trip count above unroll_max_trip (default 16) stays a loop.
  Stats st;
  std::string d = opt_dump(
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 100\n"
      "  VISIBLE i\n"
      "IM OUTTA YR lp",
      2, &st);
  EXPECT_TRUE(contains(d, "(loop lp uppin:i")) << d;
  EXPECT_EQ(st.unrolled, 0u);
}

TEST(OptUnroll, RenamesBodyDeclarationsPerCopy) {
  // Sibling unrolled copies share one VM scope, so a declaration in the
  // body must get a fresh name per copy. WHATEVR keeps prop from
  // erasing the declarations (rng is never propagated).
  std::string d = opt_dump(
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 2\n"
      "  I HAS A t ITZ WHATEVR\n"
      "  VISIBLE t\n"
      "IM OUTTA YR lp");
  EXPECT_FALSE(contains(d, "(loop")) << d;
  EXPECT_TRUE(contains(d, "t_u0")) << d;
  EXPECT_TRUE(contains(d, "t_u1")) << d;
}

// -- select -------------------------------------------------------------------

TEST(OptSelect, SelectsTakenBranchOfLiteralORly) {
  Stats st;
  std::string d = opt_dump(
      "WIN\n"
      "O RLY?\n"
      "  YA RLY\n"
      "    VISIBLE \"yes\"\n"
      "  NO WAI\n"
      "    VISIBLE \"no\"\n"
      "OIC",
      2, &st);
  // The condition expression statement survives (it sets IT); only the
  // dead branch is dropped.
  EXPECT_EQ(d,
            "(program\n"
            "  (expr (troof WIN))\n"
            "  (visible (yarn \"yes\")))");
  EXPECT_EQ(st.selected, 1u);
  EXPECT_FALSE(contains(d, "no")) << d;
}

TEST(OptSelect, NonLiteralConditionKeepsBranch) {
  std::string d = opt_dump(
      "I HAS A x ITZ WHATEVR\n"
      "BOTH SAEM x AN 1\n"
      "O RLY?\n"
      "  YA RLY\n"
      "    VISIBLE \"yes\"\n"
      "OIC");
  EXPECT_TRUE(contains(d, "(orly")) << d;
}

// -- licm ---------------------------------------------------------------------

TEST(OptLicm, HoistsInvariantProduct) {
  // a and b are mutated before the loop, so prop cannot erase them —
  // but SRSLY typing proves them NUMBR, making PRODUKT total and
  // hoistable.
  Stats st;
  std::string d = opt_dump(
      "I HAS A a ITZ SRSLY A NUMBR AN ITZ 5\n"
      "I HAS A b ITZ SRSLY A NUMBR AN ITZ 7\n"
      "a R SUM OF a AN 2\n"
      "b R SUM OF b AN 1\n"
      "I HAS A s ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 20\n"
      "  s R SUM OF s AN PRODUKT OF a AN b\n"
      "IM OUTTA YR lp\n"
      "VISIBLE s",
      2, &st);
  EXPECT_TRUE(contains(d, "(decl i licm_t0 init=(produkt (var a) (var b)))"))
      << d;
  EXPECT_TRUE(contains(d, "(sum (var s) (var licm_t0))")) << d;
  EXPECT_GT(st.hoisted, 0u);
}

TEST(OptLicm, NeverHoistsCounterDependentExpressions) {
  Stats st;
  std::string d = opt_dump(
      "I HAS A a ITZ SRSLY A NUMBR AN ITZ 5\n"
      "a R SUM OF a AN 2\n"
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 20\n"
      "  VISIBLE SUM OF i AN a\n"
      "IM OUTTA YR lp",
      2, &st);
  EXPECT_FALSE(contains(d, "licm_t")) << d;
  EXPECT_EQ(st.hoisted, 0u);
}

// -- strength -----------------------------------------------------------------

TEST(OptStrength, ReducesCounterTimesConstant) {
  Stats st;
  std::string d = opt_dump(
      "I HAS A s ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 100\n"
      "  s R SUM OF s AN PRODUKT OF i AN 3\n"
      "IM OUTTA YR lp\n"
      "VISIBLE s",
      2, &st);
  EXPECT_TRUE(contains(d, "(decl i sr_acc0 init=(numbr 0))")) << d;
  EXPECT_TRUE(contains(d, "(assign (var sr_acc0) (sum (var sr_acc0) "
                          "(numbr 3)))"))
      << d;
  EXPECT_GT(st.reduced, 0u);
}

// -- SRS gating ---------------------------------------------------------------

TEST(OptSrs, DynamicNamesDisableNameSensitivePasses) {
  // SRS can read or write any variable by computed name, so prop/dce/
  // licm must all stand down; only the never-mutated literal fold of
  // pure arithmetic could still fire, and x's declaration must stay.
  Stats st;
  std::string d = opt_dump(
      "I HAS A x ITZ 5\n"
      "I HAS A n ITZ \"x\"\n"
      "SRS n R 9\n"
      "VISIBLE x",
      2, &st);
  EXPECT_TRUE(contains(d, "(decl i x")) << d;
  EXPECT_EQ(st.propagated, 0u);
  EXPECT_EQ(st.dead, 0u);
}

// -- squaring rewrite ---------------------------------------------------------

TEST(OptFold, RewritesSelfProductOfTypedScalarToSquar) {
  // PRODUKT OF x AN x reads x twice; SQUAR OF x squares through the same
  // rt::to_num coercion, so on a provably numeric scalar the value is
  // bit-identical and one of the two name lookups disappears.
  Stats st;
  std::string d = opt_dump(
      "I HAS A x ITZ SRSLY A NUMBAR AN ITZ 1.5\n"
      "x R WHATEVAR\n"
      "VISIBLE PRODUKT OF x AN x",
      2, &st);
  EXPECT_TRUE(contains(d, "(visible (squar (var x)))")) << d;
}

TEST(OptFold, KeepsSelfProductOfUntypedScalar) {
  // An untyped x could hold a YARN at run time, and the PRODUKT and
  // SQUAR type errors carry different messages — no rewrite.
  std::string d = opt_dump(
      "I HAS A y\n"
      "y R WHATEVR\n"
      "VISIBLE PRODUKT OF y AN y");
  EXPECT_TRUE(contains(d, "(produkt (var y) (var y))")) << d;
}

// -- dead IT writes -----------------------------------------------------------

TEST(OptDce, RemovesLiteralItWriteOverwrittenBeforeRead) {
  // Branch selection leaves the literal condition as an ExprStmt so IT
  // still holds its value; when a later selection residue overwrites IT
  // before anything reads it, the earlier write is dead.
  Stats st;
  std::string d = opt_dump(
      "WIN, O RLY?\n  YA RLY, VISIBLE \"a\"\nOIC\n"
      "FAIL, O RLY?\n  YA RLY, VISIBLE \"b\"\n  NO WAI, VISIBLE \"c\"\nOIC\n"
      "VISIBLE IT",
      2, &st);
  EXPECT_FALSE(contains(d, "(expr (troof WIN))")) << d;
  EXPECT_TRUE(contains(d, "(expr (troof FAIL))")) << d;  // read by VISIBLE IT
  EXPECT_EQ(st.dead, 1u);
}

// -- region merging -----------------------------------------------------------

TEST(OptRegions, MergesBackToBackRegionsWithSameTarget) {
  // Two predications of the same literal target, separated only by a
  // private-scalar assignment, become one region: one target eval and
  // one entry instead of two. The rng keeps prop from erasing t.
  Stats st;
  std::string d = opt_dump(
      "WE HAS A s ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "I HAS A t ITZ 0\n"
      "TXT MAH BFF 0 AN STUFF,\n  UR s R 1\nTTYL\n"
      "t R WHATEVR\n"
      "TXT MAH BFF 0 AN STUFF,\n  UR s R t\nTTYL",
      2, &st);
  EXPECT_EQ(st.merged, 1u);
  EXPECT_TRUE(contains(
      d,
      "(txt block (numbr 0) (assign (var ur s) (numbr 1)) "
      "(assign (var t) (whatevr)) (assign (var ur s) (var t))))"))
      << d;
}

TEST(OptRegions, KeepsRegionsWithDifferentTargets) {
  Stats st;
  std::string d = opt_dump(
      "WE HAS A s ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "TXT MAH BFF 0 AN STUFF,\n  UR s R 1\nTTYL\n"
      "TXT MAH BFF 1 AN STUFF,\n  UR s R 2\nTTYL",
      2, &st);
  EXPECT_EQ(st.merged, 0u);
  EXPECT_TRUE(contains(d, "(txt block (numbr 0)")) << d;
  EXPECT_TRUE(contains(d, "(txt block (numbr 1)")) << d;
}

// -- forward substitution -----------------------------------------------------

TEST(OptFuse, FusesDefsIntoSelfUpdatesAcrossEachOther) {
  // The nbody interaction shape: two defs from typed-array reads, then
  // the self-squarings. b's def crosses a's (local-pure) square to reach
  // its use; that leaves a's def adjacent to its own. Both fuse, so each
  // pair costs one statement, one store and one lookup instead of two.
  Stats st;
  std::string d = opt_dump(
      "I HAS A a ITZ SRSLY A NUMBAR AN ITZ 0.0\n"
      "I HAS A b ITZ SRSLY A NUMBAR AN ITZ 0.0\n"
      "I HAS A p ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4\n"
      "a R DIFF OF p'Z 0 AN p'Z 1\n"
      "b R DIFF OF p'Z 2 AN p'Z 3\n"
      "a R PRODUKT OF a AN a\n"
      "b R PRODUKT OF b AN b\n"
      "VISIBLE SUM OF a AN b",
      2, &st);
  EXPECT_EQ(st.fused, 2u);
  EXPECT_TRUE(contains(d,
                       "(assign (var a) (squar (diff (index (var p) "
                       "(numbr 0)) (index (var p) (numbr 1)))))"))
      << d;
  EXPECT_TRUE(contains(d,
                       "(assign (var b) (squar (diff (index (var p) "
                       "(numbr 2)) (index (var p) (numbr 3)))))"))
      << d;
}

TEST(OptFuse, InterveningReadBlocksFusion) {
  // c reads a between a's def and a's self-update: fusing would hand c
  // the stale value.
  Stats st;
  std::string d = opt_dump(
      "I HAS A a ITZ SRSLY A NUMBR AN ITZ 0\n"
      "I HAS A c ITZ SRSLY A NUMBR AN ITZ 0\n"
      "a R SUM OF 2 AN 2\n"
      "c R SUM OF a AN 1\n"
      "a R SUM OF a AN 1\n"
      "VISIBLE SMOOSH a AN c MKAY",
      2, &st);
  EXPECT_EQ(st.fused, 0u);
  EXPECT_TRUE(contains(d, "(assign (var a) (numbr 4))")) << d;
}

TEST(OptFuse, OutOfBoundsIndexBlocksFusion) {
  // p'Z 9 throws at the def's location; moving the read to the use site
  // would move the reported error. The def must stay put.
  Stats st;
  std::string d = opt_dump(
      "I HAS A a ITZ SRSLY A NUMBAR AN ITZ 0.0\n"
      "I HAS A p ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4\n"
      "a R DIFF OF p'Z 0 AN p'Z 9\n"
      "a R PRODUKT OF a AN a\n"
      "VISIBLE a",
      2, &st);
  EXPECT_EQ(st.fused, 0u);
}

TEST(OptFuse, SymmetricTargetBlocksFusion) {
  // A symmetric scalar's store is observable by other PEs; dropping it
  // is never sound.
  Stats st;
  std::string d = opt_dump(
      "WE HAS A g ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "g R 4\n"
      "g R SUM OF g AN 1\n"
      "VISIBLE g",
      2, &st);
  EXPECT_EQ(st.fused, 0u);
}

// -- level gating -------------------------------------------------------------

TEST(OptLevels, LevelZeroIsANoOp) {
  Stats st;
  std::string d = opt_dump("VISIBLE SUM OF 3 AN 4", 0, &st);
  EXPECT_TRUE(contains(d, "(sum (numbr 3) (numbr 4))")) << d;
  EXPECT_EQ(st.total(), 0u);
}

TEST(OptLevels, LevelOneFoldsButDoesNotUnroll) {
  Stats st;
  std::string d = opt_dump(
      "VISIBLE SUM OF 3 AN 4\n"
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 3\n"
      "  VISIBLE i\n"
      "IM OUTTA YR lp",
      1, &st);
  EXPECT_TRUE(contains(d, "(visible (numbr 7))")) << d;
  EXPECT_TRUE(contains(d, "(loop lp uppin:i")) << d;
  EXPECT_GT(st.folded, 0u);
  EXPECT_EQ(st.unrolled, 0u);
}

// -- hash mixing --------------------------------------------------------------

TEST(OptHash, LevelZeroLeavesHashUntouched) {
  EXPECT_EQ(lol::opt::mix_hash(0x1234u, 0, 16), 0x1234u);
}

TEST(OptHash, DistinguishesLevelsAndTripLimits) {
  std::uint64_t h = 0xdeadbeefu;
  std::uint64_t h1 = lol::opt::mix_hash(h, 1, 16);
  std::uint64_t h2 = lol::opt::mix_hash(h, 2, 16);
  std::uint64_t h2b = lol::opt::mix_hash(h, 2, 8);
  EXPECT_NE(h1, h);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h2, h2b);
  // Deterministic: same inputs, same key.
  EXPECT_EQ(h2, lol::opt::mix_hash(h, 2, 16));
}

}  // namespace

// PeExecutor semantics: the executor strategies must preserve the shmem
// runtime's synchronization contract at PE counts far beyond the host's
// hardware threads, stay abortable while wedged, and (for the pool)
// survive many launches without spawning threads per launch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"
#include "shmem/executor.hpp"
#include "shmem/runtime.hpp"

namespace {

using namespace lol::shmem;

Config high_pe_config(int n_pes, ExecutorPtr exec, int n_locks = 0) {
  Config cfg;
  cfg.n_pes = n_pes;
  cfg.heap_bytes = 4096;
  cfg.n_locks = n_locks;
  cfg.executor = std::move(exec);
  return cfg;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(ExecutorNames, RoundTripAndUnknown) {
  for (ExecutorKind k :
       {ExecutorKind::kThread, ExecutorKind::kPool, ExecutorKind::kFiber}) {
    auto back = executor_from_name(to_string(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(executor_from_name("warp").has_value());
  EXPECT_FALSE(executor_from_name("").has_value());
}

// 512 virtual PEs on however few cores this host has: the barrier must
// still rank-order phases and the ring exchange must still be exact.
TEST(FiberExecutor, BarrierAndRingAt512Pes) {
  Runtime rt(high_pe_config(512, make_executor(ExecutorKind::kFiber, 64)));
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    int next = (pe.id() + 1) % pe.n_pes();
    pe.put_i64(next, off, pe.id());
    pe.barrier_all();
    std::int64_t prev = (pe.id() + pe.n_pes() - 1) % pe.n_pes();
    if (pe.get_i64(pe.id(), off) != prev) {
      throw std::runtime_error("ring value lost");
    }
    // Second phase reuses the slot; the barrier must order it.
    pe.barrier_all();
    pe.put_i64(next, off, pe.id() * 2);
    pe.barrier_all();
    if (pe.get_i64(pe.id(), off) != prev * 2) {
      throw std::runtime_error("second phase raced the first");
    }
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

// Locks at 512 PEs with forced multiplexing: every increment of the
// shared counter must survive (the CAS wait-queue must neither deadlock
// the carriers nor lose mutual exclusion between sibling fibers).
TEST(FiberExecutor, LockMutualExclusionAt512Pes) {
  Runtime rt(high_pe_config(512, make_executor(ExecutorKind::kFiber, 128),
                            /*n_locks=*/1));
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    pe.barrier_all();
    pe.set_lock(0);
    // Non-atomic read-modify-write on PE 0's slot: only the lock
    // protects it.
    std::int64_t v = pe.get_i64(0, off);
    pe.put_i64(0, off, v + 1);
    pe.clear_lock(0);
    pe.barrier_all();
    if (pe.id() == 0 && pe.get_i64(0, off) != pe.n_pes()) {
      throw std::runtime_error("lost update under lock");
    }
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

// Collectives (allreduce/broadcast) are barrier-built; prove them at
// high PE counts where many virtual PEs share each carrier.
TEST(FiberExecutor, CollectivesAt512Pes) {
  Runtime rt(high_pe_config(512, make_executor(ExecutorKind::kFiber, 64)));
  auto r = rt.launch([&](Pe& pe) {
    std::int64_t n = pe.n_pes();
    if (pe.all_reduce_sum_i64(pe.id()) != n * (n - 1) / 2) {
      throw std::runtime_error("allreduce sum wrong");
    }
    if (pe.all_reduce_max_i64(pe.id()) != n - 1) {
      throw std::runtime_error("allreduce max wrong");
    }
    if (pe.broadcast_i64(pe.id() * 7, 3) != 21) {
      throw std::runtime_error("broadcast wrong");
    }
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

// Abort reaches fibers wedged in a barrier: PE 0 spins (yielding at its
// own pace), everyone else waits in HUGZ on shared carriers; an external
// abort must unwedge the whole gang promptly.
TEST(FiberExecutor, AbortUnwedgesBarrierWaiters) {
  Runtime rt(high_pe_config(64, make_executor(ExecutorKind::kFiber, 16)));
  auto t0 = std::chrono::steady_clock::now();
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rt.abort();
  });
  auto r = rt.launch([&](Pe& pe) {
    if (pe.id() == 0) {
      // Never joins the barrier; the cooperative preempt in real
      // backends is modeled by an explicit yield through the scheduler.
      while (!pe.runtime().aborted()) {
        pe.runtime().preempt(pe.id());
      }
      throw std::runtime_error("aborted while spinning");
    }
    pe.barrier_all();
  });
  killer.join();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("abort"), std::string::npos)
      << r.first_error();
  EXPECT_LT(ms_since(t0), 5000.0);
}

// Abort reaches fibers waiting on a lock another fiber will never
// release (it is wedged spinning on the same carrier).
TEST(FiberExecutor, AbortUnwedgesLockWaiters) {
  Runtime rt(high_pe_config(8, make_executor(ExecutorKind::kFiber, 8),
                            /*n_locks=*/1));
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rt.abort();
  });
  auto r = rt.launch([&](Pe& pe) {
    if (pe.id() == 0) {
      pe.set_lock(0);
      while (!pe.runtime().aborted()) {
        pe.runtime().preempt(pe.id());
      }
      throw std::runtime_error("aborted holding the lock");
    }
    pe.set_lock(0);  // unreachable acquisition
    pe.clear_lock(0);
  });
  killer.join();
  EXPECT_FALSE(r.ok);
  EXPECT_LT(r.first_error().size(), 200u);  // sane message, not garbage
}

// A failing PE aborts fiber peers exactly like thread peers do.
TEST(FiberExecutor, FailingPeAbortsFiberPeers) {
  Runtime rt(high_pe_config(32, make_executor(ExecutorKind::kFiber, 32)));
  auto r = rt.launch([&](Pe& pe) {
    if (pe.id() == 7) throw std::runtime_error("PE 7 exploded");
    pe.barrier_all();
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("PE 7 exploded"), std::string::npos)
      << r.first_error();
}

// Carriers are claimed from the persistent process-wide pool, not
// spawned per launch: after the first launch has grown the pool to this
// gang's carrier demand, further launches must create zero threads.
TEST(FiberExecutor, CarriersPersistAcrossLaunches) {
  Runtime rt(high_pe_config(64, make_executor(ExecutorKind::kFiber, 16)));
  auto warm = [&] {
    auto r = rt.launch([&](Pe& pe) {
      if (pe.all_reduce_sum_i64(1) != pe.n_pes()) {
        throw std::runtime_error("lost a PE");
      }
    });
    ASSERT_TRUE(r.ok) << r.first_error();
  };
  warm();  // may grow the pool to 3 parked carriers (carrier 0 = launcher)
  const std::uint64_t after_first = fiber_carrier_pool().threads_created();
  for (int round = 0; round < 50; ++round) warm();
  EXPECT_EQ(fiber_carrier_pool().threads_created(), after_first)
      << "fiber launches spawned carrier threads instead of reusing the pool";
}

// The launching thread carries a fiber block itself, so a Runtime with
// a fiber executor must be reusable across launches like any other.
TEST(FiberExecutor, RuntimeIsReusableAcrossLaunches) {
  Runtime rt(high_pe_config(128, make_executor(ExecutorKind::kFiber, 32)));
  for (int round = 0; round < 5; ++round) {
    auto r = rt.launch([&](Pe& pe) {
      if (pe.all_reduce_sum_i64(1) != pe.n_pes()) {
        throw std::runtime_error("round lost a PE");
      }
    });
    ASSERT_TRUE(r.ok) << "round " << round << ": " << r.first_error();
  }
}

// The pooled executor must reuse its workers: many launches, thread
// count pinned at gang width (PE 0 rides the launcher, so a gang of 8
// parks 7 workers), and nothing leaks launch over launch.
TEST(PoolExecutor, ReusesWorkersAcrossManyLaunches) {
  auto pool = std::make_shared<ThreadPoolExecutor>();
  Config cfg = high_pe_config(8, pool);
  Runtime rt(cfg);
  for (int round = 0; round < 100; ++round) {
    auto r = rt.launch([&](Pe& pe) {
      std::size_t off = pe.shmalloc(8);
      pe.put_i64((pe.id() + 1) % pe.n_pes(), off, pe.id());
      pe.barrier_all();
    });
    ASSERT_TRUE(r.ok) << r.first_error();
  }
  EXPECT_EQ(pool->threads_created(), 7u)
      << "pool spawned threads per launch instead of reusing";
  EXPECT_EQ(pool->idle_count(), 7u);
}

// One pool shared by concurrent launches from different runtimes (the
// service picture: several workers running jobs at once) must give each
// gang all its PEs — no cross-launch queueing deadlock.
TEST(PoolExecutor, ConcurrentLaunchesShareThePool) {
  auto pool = std::make_shared<ThreadPoolExecutor>();
  constexpr int kLaunchers = 4;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> launchers;
  launchers.reserve(kLaunchers);
  for (int i = 0; i < kLaunchers; ++i) {
    launchers.emplace_back([&] {
      Runtime rt(high_pe_config(4, pool));
      for (int round = 0; round < 10; ++round) {
        auto r = rt.launch([&](Pe& pe) {
          if (pe.all_reduce_sum_i64(1) != pe.n_pes()) {
            throw std::runtime_error("gang lost a PE");
          }
        });
        if (!r.ok) return;
      }
      ok_count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : launchers) t.join();
  EXPECT_EQ(ok_count.load(), kLaunchers);
}

// Engine-level: a full LOLCODE program at 256 PEs on the fiber executor
// produces exactly the per-PE output the thread executor produces.
TEST(FiberExecutor, EngineRunMatchesThreadExecutorAt256Pes) {
  lol::CompiledProgram prog =
      lol::compile(lol::paper::barrier_sum_listing());

  lol::RunConfig thread_cfg;
  thread_cfg.n_pes = 256;
  thread_cfg.heap_bytes = 16 << 10;
  thread_cfg.backend = lol::Backend::kVm;
  lol::RunConfig fiber_cfg = thread_cfg;
  fiber_cfg.executor = ExecutorKind::kFiber;
  fiber_cfg.pes_per_thread = 64;

  lol::RunResult a = lol::run(prog, thread_cfg);
  lol::RunResult b = lol::run(prog, fiber_cfg);
  ASSERT_TRUE(a.ok) << a.first_error();
  ASSERT_TRUE(b.ok) << b.first_error();
  EXPECT_EQ(a.pe_output, b.pe_output);
  // PE 255: a = 255*10+1, b = neighbour 254's a = 2541, c = 5092.
  EXPECT_EQ(b.pe_output[255], "PE 255 C IZ 5092\n");
}

}  // namespace

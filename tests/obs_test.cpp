// Observability tests: the metrics registry (atomicity, histogram
// bucket semantics, label-cardinality cap, Prometheus exposition), the
// per-PE runtime profile surfaced through the engine, and job-lifecycle
// traces assembled by the service.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"

namespace {

using lol::obs::CounterFamily;
using lol::obs::Registry;

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
  Registry reg;
  auto& c = reg.counter("test_total", "concurrent increments");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsRegistry, InstrumentsAreFoundNotDuplicated) {
  Registry reg;
  auto& a = reg.counter("same_total", "one");
  auto& b = reg.counter("same_total", "two");
  EXPECT_EQ(&a, &b);
  auto& g1 = reg.gauge("g", "gauge");
  auto& g2 = reg.gauge("g", "gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, HistogramBucketBoundariesAreInclusive) {
  Registry reg;
  auto& h = reg.histogram("lat_ms", "latency", {1.0, 5.0, 20.0});
  h.observe(0.5);   // <= 1        -> bucket 0
  h.observe(1.0);   // == bound    -> bucket 0 (le semantics)
  h.observe(1.01);  // > 1, <= 5   -> bucket 1
  h.observe(5.0);   // == bound    -> bucket 1
  h.observe(19.9);  // bucket 2
  h.observe(20.1);  // +Inf bucket
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 2u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  EXPECT_EQ(h.bucket_value(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.01 + 5.0 + 19.9 + 20.1, 1e-9);
}

TEST(ObsRegistry, FamilyCapsCardinalityIntoOther) {
  Registry reg;
  auto& fam = reg.counter_family("jobs_total", "per-tenant jobs", "tenant");
  for (int i = 0; i < 100; ++i) {
    fam.with("tenant-" + std::to_string(i)).inc();
  }
  // At most kMaxChildren real series plus the "_other" overflow child.
  EXPECT_LE(fam.n_children(), CounterFamily::kMaxChildren + 1);
  // The overflow series absorbed everything past the cap.
  std::string text = reg.expose();
  EXPECT_NE(text.find("jobs_total{tenant=\"_other\"} "), std::string::npos);
  EXPECT_NE(text.find("jobs_total{tenant=\"tenant-0\"} 1"),
            std::string::npos);
  // Known labels keep resolving to their own series even after the cap.
  std::uint64_t before = fam.with("tenant-0").value();
  fam.with("tenant-0").inc();
  EXPECT_EQ(fam.with("tenant-0").value(), before + 1);
}

TEST(ObsRegistry, ExposeIsParseablePrometheusText) {
  Registry reg;
  reg.counter("c_total", "a counter").inc(3);
  reg.gauge("g_depth", "a gauge").set(-2);
  reg.counter_family("f_total", "a family", "status").with("ok").inc(2);
  reg.histogram("h_ms", "a histogram", {10.0}).observe(4.0);

  std::string text = reg.expose();
  EXPECT_NE(text.find("# HELP c_total a counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE c_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("c_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("g_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("f_total{status=\"ok\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_count 1\n"), std::string::npos);

  // Every line is either a comment or `name{labels} value` — no blank
  // or truncated lines a scraper would choke on.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "unterminated last line";
    std::string line = text.substr(start, nl - start);
    ASSERT_FALSE(line.empty());
    if (line[0] != '#') {
      std::size_t sp = line.rfind(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      ASSERT_GT(sp, 0u) << line;
    }
    start = nl + 1;
  }
}

TEST(ObsRegistry, LabelValuesAreEscaped) {
  Registry reg;
  reg.counter_family("e_total", "escaping", "tenant")
      .with("a\"b\\c\nd")
      .inc();
  std::string text = reg.expose();
  EXPECT_NE(text.find("e_total{tenant=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-PE runtime profiles through the engine
// ---------------------------------------------------------------------------

TEST(ObsProfile, EngineReturnsPerPeProfiles) {
  lol::RunConfig cfg;
  cfg.n_pes = 4;
  cfg.profile = true;
  auto r = lol::run_source(
      "HAI 1.2\nVISIBLE ME\nHUGZ\nVISIBLE ME\nKTHXBYE\n", cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  ASSERT_EQ(r.pe_profiles.size(), 4u);
  for (const auto& p : r.pe_profiles) {
    EXPECT_GT(p.steps, 0u);
    // Every PE crossed the explicit HUGZ barrier (plus any implicit
    // collectives); crossings are a gang-wide property.
    EXPECT_GE(p.barrier_crossings, 1u);
    EXPECT_EQ(p.barrier_crossings, r.pe_profiles[0].barrier_crossings);
    EXPECT_EQ(p.steps, r.pe_profiles[0].steps);  // uniform program
  }
  EXPECT_GE(r.claim_ms, 0.0);
  EXPECT_GE(r.exec_ms, 0.0);
}

TEST(ObsProfile, ProfiledStepsMatchTheStepBudgetAccounting) {
  // The profile's `steps` is denominated in the same unit the step
  // budget spends: a budget of exactly `steps` passes, one less trips
  // the limit. This pins the two accountings together.
  const char* src = "HAI 1.2\nVISIBLE ME\nVISIBLE SUM OF ME AN 1\nKTHXBYE\n";
  lol::RunConfig cfg;
  cfg.n_pes = 2;
  cfg.profile = true;
  auto baseline = lol::run_source(src, cfg);
  ASSERT_TRUE(baseline.ok) << baseline.first_error();
  ASSERT_EQ(baseline.pe_profiles.size(), 2u);
  std::uint64_t steps = 0;
  for (const auto& p : baseline.pe_profiles) {
    steps = std::max(steps, p.steps);
  }
  ASSERT_GT(steps, 1u);

  lol::RunConfig exact = cfg;
  exact.max_steps = steps;
  auto ok = lol::run_source(src, exact);
  EXPECT_TRUE(ok.ok) << ok.first_error();
  EXPECT_FALSE(ok.step_limited);

  lol::RunConfig tight = cfg;
  tight.max_steps = steps - 1;
  auto limited = lol::run_source(src, tight);
  EXPECT_FALSE(limited.ok);
  EXPECT_TRUE(limited.step_limited);
}

TEST(ObsProfile, LockCountersSeeContendedAcquisitions) {
  // All PEs hammer one lock; every PE must record its acquisitions, and
  // with 4 PEs on one lock at least one acquisition somewhere found it
  // held.
  lol::RunConfig cfg;
  cfg.n_pes = 4;
  cfg.profile = true;
  auto r = lol::run_source(
      "HAI 1.2\n"
      "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 25\n"
      "  IM SRSLY MESIN WIF x\n"
      "  x R SUM OF x AN 1\n"
      "  DUN MESIN WIF x\n"
      "IM OUTTA YR l\n"
      "KTHXBYE\n",
      cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;
  for (const auto& p : r.pe_profiles) {
    EXPECT_EQ(p.lock_acquires, 25u);
    acquires += p.lock_acquires;
    contended += p.lock_contended;
  }
  EXPECT_EQ(acquires, 100u);
  EXPECT_LE(contended, acquires);
}

// ---------------------------------------------------------------------------
// Job-lifecycle traces through the service
// ---------------------------------------------------------------------------

TEST(ObsTrace, CompletedJobCarriesOrderedSpans) {
  lol::service::Service svc({.workers = 1});
  lol::service::Job job;
  job.name = "traced";
  job.source = "HAI 1.2\nVISIBLE ME\nKTHXBYE\n";
  job.n_pes = 2;
  auto r = svc.submit(job).get();
  ASSERT_EQ(r.status, lol::service::JobStatus::kOk);

  std::vector<std::string> names;
  names.reserve(r.trace.size());
  for (const auto& sp : r.trace) names.push_back(sp.name);
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "queued");
  EXPECT_EQ(names[1], "compile");  // first submission: not cached
  EXPECT_EQ(names[2], "claim");
  EXPECT_EQ(names[3], "run");
  EXPECT_EQ(names[4], "drain");
  // Spans are contiguous offsets from submission.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i].start_ms, r.trace[i - 1].start_ms - 1e-9);
  }
  for (const auto& sp : r.trace) EXPECT_GE(sp.dur_ms, 0.0);

  // A cache hit is labelled as such.
  auto r2 = svc.submit(job).get();
  ASSERT_EQ(r2.status, lol::service::JobStatus::kOk);
  ASSERT_GE(r2.trace.size(), 2u);
  EXPECT_EQ(r2.trace[1].name, "compile[cached]");
}

TEST(ObsTrace, RefusedJobCarriesOnlyTheQueuedSpan) {
  lol::service::ServiceOptions opts;
  opts.workers = 1;
  opts.max_queued_per_tenant = 1;
  opts.start_paused = true;  // jobs stay queued -> second one is refused
  lol::service::Service svc(opts);
  lol::service::Job job;
  job.source = "HAI 1.2\nKTHXBYE\n";
  job.tenant = "flood";
  auto first = svc.submit(job);
  auto r = svc.submit(job).get();
  ASSERT_EQ(r.status, lol::service::JobStatus::kQuotaExceeded);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0].name, "queued");
  svc.start();
  first.get();
}

}  // namespace

// Shmem substrate tests: symmetric allocation, one-sided put/get,
// barriers, global locks, atomics, collectives, abort behaviour, and
// simulated-time accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "noc/machines.hpp"
#include "noc/uniform.hpp"
#include "shmem/executor.hpp"
#include "shmem/runtime.hpp"

namespace {

using lol::shmem::Config;
using lol::shmem::LaunchResult;
using lol::shmem::Pe;
using lol::shmem::Runtime;
using lol::support::RuntimeError;

TEST(Shmem, LaunchRunsEveryPe) {
  Config cfg;
  cfg.n_pes = 4;
  Runtime rt(cfg);
  std::atomic<int> count{0};
  std::atomic<int> id_sum{0};
  auto r = rt.launch([&](Pe& pe) {
    count.fetch_add(1);
    id_sum.fetch_add(pe.id());
    EXPECT_EQ(pe.n_pes(), 4);
  });
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(id_sum.load(), 0 + 1 + 2 + 3);
}

TEST(Shmem, SymmetricAllocationGivesIdenticalOffsets) {
  Config cfg;
  cfg.n_pes = 4;
  Runtime rt(cfg);
  std::array<std::size_t, 4> first{}, second{};
  auto r = rt.launch([&](Pe& pe) {
    first[static_cast<std::size_t>(pe.id())] = pe.shmalloc(32);
    second[static_cast<std::size_t>(pe.id())] = pe.shmalloc(100);
  });
  ASSERT_TRUE(r.ok);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)], first[0]);
    EXPECT_EQ(second[static_cast<std::size_t>(i)], second[0]);
  }
  EXPECT_EQ(second[0] % 8, 0u);  // 8-byte aligned bump
  EXPECT_GE(second[0], first[0] + 32);
}

TEST(Shmem, HeapExhaustionThrows) {
  Config cfg;
  cfg.n_pes = 1;
  cfg.heap_bytes = 64;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    pe.shmalloc(32);
    pe.shmalloc(64);  // 32 + 64 > 64
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("symmetric heap exhausted"),
            std::string::npos);
}

TEST(Shmem, PutGetRoundTrip) {
  Config cfg;
  cfg.n_pes = 2;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    pe.put_i64(pe.id(), off, 100 + pe.id());
    pe.barrier_all();
    // Each PE reads its neighbour's value.
    int other = 1 - pe.id();
    EXPECT_EQ(pe.get_i64(other, off), 100 + other);
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Shmem, RemotePutIsVisibleAfterBarrier) {
  Config cfg;
  cfg.n_pes = 4;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    int next = (pe.id() + 1) % pe.n_pes();
    pe.put_f64(next, off, 2.5 * pe.id());
    pe.barrier_all();
    int prev = (pe.id() + pe.n_pes() - 1) % pe.n_pes();
    EXPECT_DOUBLE_EQ(pe.get_f64(pe.id(), off), 2.5 * prev);
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Shmem, BulkTransferSweep) {
  // Round-trip a range of payload sizes, including non-multiples of 8.
  Config cfg;
  cfg.n_pes = 2;
  cfg.heap_bytes = 1 << 20;
  Runtime rt(cfg);
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u, 1000u, 4096u, 65536u}) {
    auto r = rt.launch([&](Pe& pe) {
      std::size_t off = pe.shmalloc(n);
      std::vector<std::byte> src(n);
      for (std::size_t i = 0; i < n; ++i) {
        src[i] = static_cast<std::byte>((i + pe.id() * 13) & 0xFF);
      }
      pe.put(1 - pe.id(), off, src.data(), n);
      pe.barrier_all();
      std::vector<std::byte> got(n);
      pe.get(got.data(), pe.id(), off, n);
      std::vector<std::byte> expect(n);
      for (std::size_t i = 0; i < n; ++i) {
        expect[i] =
            static_cast<std::byte>((i + (1 - pe.id()) * 13) & 0xFF);
      }
      EXPECT_EQ(got, expect);
    });
    EXPECT_TRUE(r.ok) << "n=" << n << ": " << r.first_error();
  }
}

TEST(Shmem, OutOfRangeTargetThrows) {
  Config cfg;
  cfg.n_pes = 2;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    if (pe.id() == 0) pe.put_i64(5, off, 1);
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("out of range"), std::string::npos);
}

TEST(Shmem, OutOfHeapAccessThrows) {
  Config cfg;
  cfg.n_pes = 1;
  cfg.heap_bytes = 64;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) { pe.put_i64(0, 1024, 1); });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("exceeds the symmetric heap"),
            std::string::npos);
}

TEST(Shmem, BarrierOrdersPhases) {
  Config cfg;
  cfg.n_pes = 4;
  Runtime rt(cfg);
  // Classic Figure-2 pattern: put, barrier, read — must never see stale 0.
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    for (int round = 1; round <= 50; ++round) {
      int next = (pe.id() + 1) % pe.n_pes();
      pe.put_i64(next, off, round);
      pe.barrier_all();
      EXPECT_EQ(pe.get_i64(pe.id(), off), round);
      pe.barrier_all();
    }
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Shmem, AtomicFetchAddIsLossless) {
  Config cfg;
  cfg.n_pes = 8;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    pe.barrier_all();
    for (int i = 0; i < 1000; ++i) pe.atomic_fetch_add_i64(0, off, 1);
    pe.barrier_all();
    if (pe.id() == 0) EXPECT_EQ(pe.get_i64(0, off), 8000);
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Shmem, GlobalLockMutualExclusion) {
  Config cfg;
  cfg.n_pes = 8;
  cfg.n_locks = 1;
  Runtime rt(cfg);
  // Unprotected RMW would lose updates; the global lock must not.
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    pe.barrier_all();
    for (int i = 0; i < 200; ++i) {
      pe.set_lock(0);
      pe.put_i64(0, off, pe.get_i64(0, off) + 1);
      pe.clear_lock(0);
    }
    pe.barrier_all();
    if (pe.id() == 0) EXPECT_EQ(pe.get_i64(0, off), 1600);
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Shmem, TestLockIsNonBlocking) {
  Config cfg;
  cfg.n_pes = 2;
  cfg.n_locks = 1;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    if (pe.id() == 0) {
      pe.set_lock(0);
      pe.barrier_all();  // 1: lock held by 0
      pe.barrier_all();  // 2: PE 1 tested
      pe.clear_lock(0);
      pe.barrier_all();  // 3: released
    } else {
      pe.barrier_all();  // 1
      EXPECT_FALSE(pe.test_lock(0));
      pe.barrier_all();  // 2
      pe.barrier_all();  // 3
      EXPECT_TRUE(pe.test_lock(0));
      pe.clear_lock(0);
    }
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Shmem, LockMisuseDetected) {
  Config cfg;
  cfg.n_pes = 1;
  cfg.n_locks = 1;
  Runtime rt(cfg);
  // Releasing a lock you don't hold.
  auto r = rt.launch([&](Pe& pe) { pe.clear_lock(0); });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("does not hold"), std::string::npos);
  // Recursive acquisition.
  r = rt.launch([&](Pe& pe) {
    pe.set_lock(0);
    pe.set_lock(0);
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("already holds"), std::string::npos);
  // Bad lock id.
  r = rt.launch([&](Pe& pe) { pe.set_lock(7); });
  EXPECT_FALSE(r.ok);
}

TEST(Shmem, Collectives) {
  Config cfg;
  cfg.n_pes = 4;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    EXPECT_EQ(pe.all_reduce_sum_i64(pe.id() + 1), 1 + 2 + 3 + 4);
    EXPECT_DOUBLE_EQ(pe.all_reduce_sum_f64(0.5), 2.0);
    EXPECT_EQ(pe.all_reduce_max_i64(pe.id() * 10), 30);
    EXPECT_DOUBLE_EQ(pe.all_reduce_max_f64(-1.0 * pe.id()), 0.0);
    EXPECT_EQ(pe.broadcast_i64(pe.id() == 2 ? 99 : -1, 2), 99);
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Shmem, FailingPeAbortsPeersInBarrier) {
  Config cfg;
  cfg.n_pes = 4;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    if (pe.id() == 0) throw RuntimeError("deliberate failure");
    pe.barrier_all();  // would deadlock without abort propagation
  });
  EXPECT_FALSE(r.ok);
  int failures = 0;
  for (const auto& e : r.errors) {
    if (!e.empty()) ++failures;
  }
  EXPECT_EQ(failures, 4);  // the thrower plus three aborted peers
  EXPECT_NE(r.errors[0].find("deliberate failure"), std::string::npos);
}

TEST(Shmem, FailingPeAbortsPeersWaitingOnLock) {
  Config cfg;
  cfg.n_pes = 2;
  cfg.n_locks = 1;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    if (pe.id() == 0) {
      pe.set_lock(0);
      throw RuntimeError("dies holding the lock");
    }
    pe.barrier_all();  // never completes; abort wakes us
  });
  EXPECT_FALSE(r.ok);
}

TEST(Shmem, RuntimeIsReusableAcrossLaunches) {
  Config cfg;
  cfg.n_pes = 2;
  cfg.n_locks = 1;
  Runtime rt(cfg);
  for (int i = 0; i < 3; ++i) {
    auto r = rt.launch([&](Pe& pe) {
      std::size_t off = pe.shmalloc(8);
      EXPECT_EQ(pe.get_i64(pe.id(), off), 0);  // arena zeroed per launch
      pe.put_i64(pe.id(), off, 7);
      pe.set_lock(0);
      pe.clear_lock(0);
    });
    EXPECT_TRUE(r.ok) << r.first_error();
  }
}

TEST(Shmem, SimulatedTimeChargesRemoteOps) {
  Config cfg;
  cfg.n_pes = 4;
  cfg.model = lol::noc::epiphany3();
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    if (pe.id() == 0) {
      pe.put_i64(1, off, 42);     // 1 hop
      pe.get_i64(3, off);         // 3 hops, round trip
    }
    pe.barrier_all();
  });
  ASSERT_TRUE(r.ok) << r.first_error();
  // All PEs leave the final barrier at the same simulated instant.
  for (int i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r.sim_ns[static_cast<std::size_t>(i)], r.sim_ns[0]);
  }
  EXPECT_GT(r.max_sim_ns(), 0.0);
}

TEST(Shmem, SimulatedBarrierAlignsClocks) {
  Config cfg;
  cfg.n_pes = 2;
  cfg.model = lol::noc::xc40_aries();
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    if (pe.id() == 0) {
      // PE 0 does ten expensive remote reads; PE 1 does nothing.
      for (int i = 0; i < 10; ++i) pe.get_i64(1, off);
    }
    pe.barrier_all();
    EXPECT_GT(pe.sim_ns(), 0.0);
  });
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_DOUBLE_EQ(r.sim_ns[0], r.sim_ns[1]);
  // The joint clock includes PE 0's reads plus the barrier.
  auto model = lol::noc::xc40_aries();
  EXPECT_GE(r.sim_ns[0], 10 * model->get_ns(0, 1, 8));
}

TEST(Shmem, NoModelMeansZeroSimTime) {
  Config cfg;
  cfg.n_pes = 2;
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    pe.put_i64(1 - pe.id(), off, 1);
    pe.barrier_all();
  });
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.max_sim_ns(), 0.0);
}

TEST(Shmem, RejectsBadConfig) {
  Config cfg;
  cfg.n_pes = 0;
  EXPECT_THROW(Runtime{cfg}, RuntimeError);
  cfg.n_pes = 5000;
  EXPECT_THROW(Runtime{cfg}, RuntimeError);
}

// Parameterized: put/get round trips hold for every PE count we care
// about (the paper uses 16 on the Epiphany).
class ShmemPeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShmemPeSweep, RingExchange) {
  Config cfg;
  cfg.n_pes = GetParam();
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) {
    std::size_t off = pe.shmalloc(8);
    int next = (pe.id() + 1) % pe.n_pes();
    pe.put_i64(next, off, pe.id());
    pe.barrier_all();
    int prev = (pe.id() + pe.n_pes() - 1) % pe.n_pes();
    EXPECT_EQ(pe.get_i64(pe.id(), off), prev);
  });
  EXPECT_TRUE(r.ok) << r.first_error();
}

INSTANTIATE_TEST_SUITE_P(PeCounts, ShmemPeSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// ---------------------------------------------------------------------------
// Combining-tree barrier: the hierarchical synchronization core must be
// invisible to programs — any radix, any executor, same results — and
// stay abortable wherever in the tree a PE happens to be wedged.
// ---------------------------------------------------------------------------

TEST(TreeBarrier, ResolvesAutoRadixAndDepth) {
  Config cfg;
  cfg.n_pes = 4096;
  cfg.heap_bytes = 4096;  // accessor test; default arenas would be 4 GiB
  Runtime rt(cfg);
  EXPECT_EQ(rt.barrier_radix(), 8);  // auto
  EXPECT_EQ(rt.barrier_levels(), 4);  // 4096 -> 512 -> 64 -> 8 -> 1

  cfg.barrier_radix = 2;
  cfg.n_pes = 8;
  Runtime rt2(cfg);
  EXPECT_EQ(rt2.barrier_radix(), 2);
  EXPECT_EQ(rt2.barrier_levels(), 3);  // 8 -> 4 -> 2 -> 1

  // A fan-in wider than the gang degenerates to one flat node.
  cfg.barrier_radix = 4096;
  Runtime rt3(cfg);
  EXPECT_EQ(rt3.barrier_levels(), 1);
}

// Barriers, reductions and broadcast agree for every radix, including
// ragged trees (37 is not a power of anything) and the flat degenerate.
TEST(TreeBarrier, CollectivesAgreeAcrossRadices) {
  for (int radix : {0, 2, 3, 5, 8, 37, 64}) {
    Config cfg;
    cfg.n_pes = 37;
    cfg.barrier_radix = radix;
    Runtime rt(cfg);
    auto r = rt.launch([&](Pe& pe) {
      std::int64_t n = pe.n_pes();
      std::size_t off = pe.shmalloc(8);
      int next = (pe.id() + 1) % pe.n_pes();
      pe.put_i64(next, off, pe.id());
      pe.barrier_all();
      std::int64_t prev = (pe.id() + n - 1) % n;
      if (pe.get_i64(pe.id(), off) != prev) {
        throw RuntimeError("ring value lost at radix " +
                           std::to_string(radix));
      }
      if (pe.all_reduce_sum_i64(pe.id()) != n * (n - 1) / 2) {
        throw RuntimeError("allreduce sum wrong");
      }
      if (pe.all_reduce_max_i64(pe.id() * 3 - n) != 2 * n - 3) {
        throw RuntimeError("allreduce max wrong");
      }
      if (pe.all_reduce_max_f64(static_cast<double>(pe.id()) * 0.25) !=
          (n - 1) * 0.25) {
        throw RuntimeError("allreduce f64 max wrong");
      }
      if (pe.broadcast_i64(pe.id() * 7, 5) != 35) {
        throw RuntimeError("broadcast wrong");
      }
      // Back-to-back crossings reuse generation-parity slots; make the
      // double buffering earn its keep.
      if (pe.all_reduce_sum_i64(1) != n || pe.all_reduce_sum_i64(2) != 2 * n) {
        throw RuntimeError("consecutive reductions interfered");
      }
    });
    EXPECT_TRUE(r.ok) << "radix " << radix << ": " << r.first_error();
  }
}

/// One f64 allreduce over rounding-sensitive values; returns the bit
/// pattern every PE observed (asserting they all agree).
std::uint64_t f64_sum_bits(int n_pes, int radix, bool fiber) {
  Config cfg;
  cfg.n_pes = n_pes;
  cfg.barrier_radix = radix;
  if (fiber) {
    cfg.executor =
        lol::shmem::make_executor(lol::shmem::ExecutorKind::kFiber, 16);
  }
  Runtime rt(cfg);
  std::vector<double> results(static_cast<std::size_t>(n_pes));
  auto r = rt.launch([&](Pe& pe) {
    // Mixed magnitudes: any re-bracketing of the sum changes the bits.
    double v = 1.0 / (pe.id() + 1) + pe.id() * 1e-13;
    results[static_cast<std::size_t>(pe.id())] = pe.all_reduce_sum_f64(v);
  });
  EXPECT_TRUE(r.ok) << r.first_error();
  std::uint64_t bits = 0;
  std::memcpy(&bits, &results[0], sizeof bits);
  for (int i = 1; i < n_pes; ++i) {
    std::uint64_t other = 0;
    std::memcpy(&other, &results[static_cast<std::size_t>(i)], sizeof other);
    EXPECT_EQ(other, bits) << "PE " << i << " saw a different f64 sum";
  }
  return bits;
}

// The determinism contract the differential suite leans on: f64 sums
// are byte-identical across executors AND radices, because the root
// folds the contributions in canonical index order regardless of tree
// shape. The expected bits are the plain sequential fold.
TEST(TreeBarrier, F64SumByteIdenticalAcrossExecutorsAndRadices) {
  const int n = 48;
  double expect = 0.0;
  for (int i = 0; i < n; ++i) expect += 1.0 / (i + 1) + i * 1e-13;
  std::uint64_t expect_bits = 0;
  std::memcpy(&expect_bits, &expect, sizeof expect_bits);

  for (int radix : {0, 2, 7, 48}) {
    EXPECT_EQ(f64_sum_bits(n, radix, /*fiber=*/false), expect_bits)
        << "thread executor, radix " << radix;
    EXPECT_EQ(f64_sum_bits(n, radix, /*fiber=*/true), expect_bits)
        << "fiber executor, radix " << radix;
  }
}

// Abort lands on PEs wedged at every position in the tree. With radix 2
// and PE 7 never arriving: groups (0,1), (2,3), (4,5) completed (their
// winners climbed and are parked mid-tree or one arrival short of the
// root), PE 6 is a leaf waiter. All of them must die promptly.
void abort_wedged_tree(bool fiber) {
  Config cfg;
  cfg.n_pes = 8;
  cfg.barrier_radix = 2;
  if (fiber) {
    cfg.executor =
        lol::shmem::make_executor(lol::shmem::ExecutorKind::kFiber, 8);
  }
  Runtime rt(cfg);
  auto t0 = std::chrono::steady_clock::now();
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rt.abort();
  });
  auto r = rt.launch([&](Pe& pe) {
    if (pe.id() == 7) {
      while (!pe.runtime().aborted()) pe.runtime().preempt(pe.id());
      throw RuntimeError("aborted while spinning");
    }
    pe.barrier_all();
  });
  killer.join();
  EXPECT_FALSE(r.ok);
  int aborted = 0;
  for (const auto& e : r.errors) {
    if (e.find("abort") != std::string::npos) ++aborted;
  }
  EXPECT_EQ(aborted, 8) << r.first_error();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_LT(wall_ms, 5000.0);
}

TEST(TreeBarrier, AbortWakesEveryTreePositionThreads) {
  abort_wedged_tree(/*fiber=*/false);
}
TEST(TreeBarrier, AbortWakesEveryTreePositionFibers) {
  abort_wedged_tree(/*fiber=*/true);
}

// The modeled barrier cost understands tree depth: radix 4 over 16 PEs
// is exactly two combining rounds of the uniform fabric.
TEST(TreeBarrier, SimChargesTreeDepth) {
  lol::noc::UniformParams p;
  Config cfg;
  cfg.n_pes = 16;
  cfg.barrier_radix = 4;
  cfg.model = std::make_shared<lol::noc::UniformModel>(p);
  Runtime rt(cfg);
  auto r = rt.launch([&](Pe& pe) { pe.barrier_all(); });
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(r.sim_ns[static_cast<std::size_t>(i)],
                     2.0 * p.barrier_round_ns);
  }
}

// Whatever the radix, all PEs leave a crossing at one simulated instant
// and the reduction results match — the radix only moves the modeled
// depth, never the data.
TEST(TreeBarrier, SimClocksAlignForEveryRadix) {
  for (int radix : {0, 2, 16}) {
    Config cfg;
    cfg.n_pes = 16;
    cfg.barrier_radix = radix;
    cfg.model = lol::noc::epiphany3();
    Runtime rt(cfg);
    auto r = rt.launch([&](Pe& pe) {
      std::size_t off = pe.shmalloc(8);
      if (pe.id() == 0) pe.put_i64(5, off, 1);  // skew PE 0's clock
      pe.barrier_all();
    });
    ASSERT_TRUE(r.ok) << r.first_error();
    for (int i = 1; i < 16; ++i) {
      EXPECT_DOUBLE_EQ(r.sim_ns[static_cast<std::size_t>(i)], r.sim_ns[0])
          << "radix " << radix;
    }
    EXPECT_GT(r.max_sim_ns(), 0.0);
  }
}

}  // namespace

// C code generator tests: structural checks on the emitted translation
// unit. Full compile-and-run coverage lives in lcc_e2e_test.cpp.
#include <gtest/gtest.h>

#include "codegen/c_emitter.hpp"
#include "core/engine.hpp"

namespace {

std::string emit(const std::string& body) {
  // -O0: these tests pin the lowering of specific source shapes, which
  // the optimizer would otherwise fold away.
  lol::CompileOptions copts;
  copts.opt_level = 0;
  lol::CompiledProgram prog =
      lol::compile("HAI 1.2\n" + body + "KTHXBYE\n", copts);
  return lol::codegen::emit_c(prog.program, prog.analysis);
}

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "missing: " << needle << "\nin:\n"
      << haystack;
}

TEST(Codegen, EmitsEntryPointsAndDriver) {
  std::string c = emit("VISIBLE \"HAI\"\n");
  expect_contains(c, "#include \"lolrt_c.h\"");
  expect_contains(c, "void lol_user_main(lolrt_pe* pe)");
  expect_contains(c, "lolrt_run_main(argc, argv, lol_user_main, 0)");
  expect_contains(c, "lolrt_visible(pe, 1");
}

TEST(Codegen, LockCountFlowsToDriver) {
  std::string c = emit(
      "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "WE HAS A y ITZ SRSLY A NUMBR AN IM SHARIN IT\n");
  expect_contains(c, "lolrt_run_main(argc, argv, lol_user_main, 2)");
}

TEST(Codegen, SrslyNumbarsLowerToNativeDoubles) {
  std::string c = emit(
      "I HAS A little_time ITZ SRSLY A NUMBAR AN ITZ 0.001\n"
      "I HAS A x ITZ SRSLY A NUMBAR\n"
      "x R PRODUKT OF x AN little_time\n");
  expect_contains(c, "double v_little_time");
  // Native multiply, not a boxed lolrt_binary call.
  expect_contains(c, ") * (");
}

TEST(Codegen, SrslyNumbrArraysLowerToNativeArrays) {
  std::string c = emit(
      "I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n"
      "a'Z 2 R 5\nVISIBLE a'Z 2\n");
  expect_contains(c, "long long* v_a");
  expect_contains(c, "lolrt_idx(pe, ");
}

TEST(Codegen, SymmetricObjectsUseShmalloc) {
  std::string c = emit(
      "WE HAS A pos ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT\n"
      "pos'Z 0 R 1.5\n");
  expect_contains(c, "G->v_pos_off = lolrt_shmalloc(pe, ");
  expect_contains(c, "lolrt_sym_store_f64(pe, G->v_pos_off");
}

TEST(Codegen, PredicationUsesBffStack) {
  std::string c = emit(
      "WE HAS A x ITZ SRSLY A NUMBR\n"
      "TXT MAH BFF 0, x R UR x\n");
  expect_contains(c, "lolrt_bff_push(pe, ");
  expect_contains(c, "lolrt_bff_pop(pe, 1);");
  expect_contains(c, "lolrt_sym_load_i64(pe, G->v_x_off, 1, 0, 1)");
}

TEST(Codegen, HugzAndLocks) {
  std::string c = emit(
      "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "HUGZ\nIM SRSLY MESIN WIF x\nIM MESIN WIF x\nDUN MESIN WIF x\n");
  expect_contains(c, "lolrt_hugz(pe);");
  expect_contains(c, "lolrt_lock(pe, 0);");
  expect_contains(c, "lolrt_trylock(pe, 0)");
  expect_contains(c, "lolrt_unlock(pe, 0);");
}

TEST(Codegen, FunctionsBecomeStaticCFunctions) {
  std::string c = emit(
      "HOW IZ I addtwo YR a AN YR b\n  FOUND YR SUM OF a AN b\n"
      "IF U SAY SO\n"
      "VISIBLE I IZ addtwo YR 1 AN YR 2 MKAY\n");
  expect_contains(c, "static lolv f_addtwo(lolrt_pe* pe, lolv v_a, lolv v_b)");
  expect_contains(c, "f_addtwo(pe, ");
}

TEST(Codegen, GlobalsLiveInStructVisibleToFunctions) {
  std::string c = emit(
      "I HAS A g ITZ 7\n"
      "HOW IZ I readg\n  FOUND YR g\nIF U SAY SO\n"
      "VISIBLE I IZ readg MKAY\n");
  expect_contains(c, "typedef struct lol_globals");
  expect_contains(c, "lolv v_g;");
  expect_contains(c, "G->v_g");
}

TEST(Codegen, WholeArrayCopyUsesSymCopy) {
  std::string c = emit(
      "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n"
      "TXT MAH BFF 0, MAH a R UR a\n");
  expect_contains(c, "lolrt_sym_copy(pe, G->v_a_off, 0, G->v_a_off, 1, ");
}

TEST(Codegen, RandomBuiltins) {
  std::string c = emit("VISIBLE WHATEVR\nVISIBLE WHATEVAR\n");
  expect_contains(c, "lolrt_whatevr(pe)");
  expect_contains(c, "lolrt_whatevar(pe)");
}

TEST(Codegen, SrsIsRejectedWithClearMessage) {
  try {
    emit("I HAS A x ITZ 1\nI HAS A n ITZ \"x\"\nVISIBLE SRS n\n");
    FAIL() << "expected SemaError";
  } catch (const lol::support::SemaError& e) {
    EXPECT_NE(std::string(e.what()).find("SRS is not supported"),
              std::string::npos);
  }
}

TEST(Codegen, PaperNBodyListingEmits) {
  // The full §VI.D listing must lower (structure only; execution is
  // covered by the e2e test and nbody_test).
  std::string c = emit(
      "I HAS A little_time ITZ SRSLY A NUMBAR AN ITZ 0.001\n"
      "I HAS A x ITZ SRSLY A NUMBAR\n"
      "I HAS A vx ITZ SRSLY A NUMBAR\n"
      "I HAS A ax ITZ SRSLY A NUMBAR\n"
      "I HAS A dx ITZ SRSLY A NUMBAR\n"
      "I HAS A inv_d ITZ SRSLY A NUMBAR\n"
      "I HAS A f ITZ SRSLY A NUMBAR\n"
      "I HAS A vel_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32\n"
      "WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS ...\n"
      "  AN THAR IZ 32 AN IM SHARIN IT\n"
      "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32\n"
      "  pos_x'Z i R SUM OF ME AN WHATEVAR\n"
      "  vel_x'Z i R QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000\n"
      "IM OUTTA YR loop\n"
      "HUGZ\n"
      "IM IN YR loop UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n"
      "  DIFFRINT k AN ME, O RLY?\n"
      "  YA RLY\n"
      "    TXT MAH BFF k AN STUFF\n"
      "      dx R DIFF OF pos_x'Z 0 AN UR pos_x'Z 0\n"
      "    TTYL\n"
      "  OIC\n"
      "IM OUTTA YR loop\n");
  expect_contains(c, "lol_user_main");
  expect_contains(c, "lolrt_sym_load_f64");
}

}  // namespace

// Service-layer tests: compile-cache accounting, concurrent-vs-sequential
// output equivalence, bounded-queue backpressure (both policies),
// step-budget enforcement keeping the pool alive under hostile jobs,
// wall-clock deadlines (spin / GIMMEH-blocked / barrier-wedged jobs),
// cancellation of queued and in-flight jobs, and two-tenant DRR fairness.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "codegen/native_backend.hpp"
#include "core/engine.hpp"
#include "core/paper_programs.hpp"
#include "obs/metrics.hpp"
#include "opt/tuner.hpp"
#include "replay/trace.hpp"
#include "service/compile_cache.hpp"
#include "service/service.hpp"
#include "shmem/executor.hpp"

namespace {

using lol::Backend;
using lol::service::CompileCache;
using lol::service::Job;
using lol::service::JobResult;
using lol::service::JobStatus;
using lol::service::QueueFullPolicy;
using lol::service::Service;
using lol::service::ServiceOptions;

const char* kHello = "HAI 1.2\nVISIBLE \"O HAI\" ME\nKTHXBYE\n";
const char* kSum =
    "HAI 1.2\nI HAS A n ITZ 0\n"
    "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 200\n"
    "  n R SUM OF n AN i\nIM OUTTA YR l\nVISIBLE n\nKTHXBYE\n";
const char* kSpin = "HAI 1.2\nIM IN YR forever\nIM OUTTA YR forever\nKTHXBYE\n";

Job make_job(std::string name, std::string source, int n_pes,
             Backend backend = Backend::kVm) {
  Job j;
  j.name = std::move(name);
  j.source = std::move(source);
  j.n_pes = n_pes;
  j.backend = backend;
  return j;
}

// ---------------------------------------------------------------------------
// CompileCache
// ---------------------------------------------------------------------------

TEST(CompileCache, HitAndMissAccounting) {
  CompileCache cache(8);
  bool hit = true;
  auto a = cache.get_or_compile(kHello, &hit);
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(hit);

  auto b = cache.get_or_compile(kHello, &hit);
  EXPECT_TRUE(hit);
  // The same immutable CompiledProgram is shared, not recompiled.
  EXPECT_EQ(a.program.get(), b.program.get());

  cache.get_or_compile(kSum, &hit);
  EXPECT_FALSE(hit);

  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CompileCache, LruEvictionPrefersHotEntries) {
  CompileCache cache(2);
  std::string a = "HAI 1.2\nVISIBLE 1\nKTHXBYE\n";
  std::string b = "HAI 1.2\nVISIBLE 2\nKTHXBYE\n";
  std::string c = "HAI 1.2\nVISIBLE 3\nKTHXBYE\n";
  cache.get_or_compile(a);
  cache.get_or_compile(b);
  cache.get_or_compile(a);  // refresh a: b is now LRU
  cache.get_or_compile(c);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool hit = false;
  cache.get_or_compile(a, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_compile(b, &hit);  // evicted, so a miss again
  EXPECT_FALSE(hit);
}

TEST(CompileCache, CompileErrorsAreCachedToo) {
  CompileCache cache(4);
  std::string broken = "HAI 1.2\nFOUND YR 1\nKTHXBYE\n";  // sema error
  bool hit = true;
  auto a = cache.get_or_compile(broken, &hit);
  EXPECT_FALSE(hit);
  EXPECT_FALSE(a.ok());
  EXPECT_FALSE(a.error.empty());

  auto b = cache.get_or_compile(broken, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CompileCache, ConcurrentRequestsCompileOnce) {
  CompileCache cache(8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<const lol::CompiledProgram*> seen(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      seen[static_cast<std::size_t>(i)] =
          cache.get_or_compile(kSum).program.get();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(i)]);
  }
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(CompileCache, ByteBudgetEvictsBeforeEntryBudget) {
  // Entry capacity 8, but a byte budget sized for roughly two of these
  // sources: memory pressure, not entry count, must drive eviction.
  std::string a = "HAI 1.2\nVISIBLE 1\nKTHXBYE\n";
  std::string b = "HAI 1.2\nVISIBLE 2\nKTHXBYE\n";
  std::string c = "HAI 1.2\nVISIBLE 3\nKTHXBYE\n";
  CompileCache cache(8, CompileCache::charged_bytes(a.size()) * 2 + 64);
  cache.get_or_compile(a);
  cache.get_or_compile(b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.get_or_compile(c);  // over the byte budget: a (LRU) is evicted
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.resident_bytes(), cache.capacity_bytes());

  bool hit = false;
  cache.get_or_compile(c, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_compile(a, &hit);  // evicted earlier, so a miss
  EXPECT_FALSE(hit);
}

TEST(CompileCache, OversizedSourceStaysResidentUntilReplaced) {
  // A single source over the whole byte budget must still be cached
  // (requests for it would otherwise recompile every time); it goes
  // when something newer lands.
  std::string big = "HAI 1.2\nBTW " + std::string(4096, 'x') +
                    "\nVISIBLE 1\nKTHXBYE\n";
  std::string small = "HAI 1.2\nVISIBLE 2\nKTHXBYE\n";
  CompileCache cache(8, 1024);
  bool hit = false;
  cache.get_or_compile(big, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_compile(big, &hit);
  EXPECT_TRUE(hit) << "over-budget source must not thrash";

  cache.get_or_compile(small);  // newer entry evicts the oversized one
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.get_or_compile(big, &hit);
  EXPECT_FALSE(hit);
}

TEST(CompileCache, ZeroByteBudgetDisablesByteEviction) {
  CompileCache cache(8, 0);
  for (int i = 0; i < 8; ++i) {
    cache.get_or_compile("HAI 1.2\nVISIBLE " + std::to_string(i) +
                         "\nKTHXBYE\n");
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CompileCache, OptLevelsGetDistinctEntries) {
  // Optimization levels produce different compiled shapes (and
  // different step counts), so the same source at -O0 and -O2 must be
  // two cache entries, never an aliased hit.
  CompileCache cache(8);
  lol::CompileOptions o0;
  o0.opt_level = 0;
  lol::CompileOptions o2;  // default: -O2

  EXPECT_NE(lol::service::cache_key(kSum, o0),
            lol::service::cache_key(kSum, o2));

  bool hit = true;
  auto a = cache.get_or_compile(kSum, o0, &hit);
  EXPECT_FALSE(hit);
  auto b = cache.get_or_compile(kSum, o2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(a.program.get(), b.program.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);

  // Re-requesting each level hits its own entry.
  auto a2 = cache.get_or_compile(kSum, o0, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a2.program.get(), a.program.get());
  auto b2 = cache.get_or_compile(kSum, o2, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(b2.program.get(), b.program.get());
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

TEST(Service, ConcurrentJobsMatchSequentialRuns) {
  // Mixed sources, PE counts and backends, several copies of each (108
  // jobs) — the service on 4 workers must produce byte-identical per-PE
  // output to plain sequential lol::run.
  std::vector<Job> jobs;
  int id = 0;
  for (int copy = 0; copy < 6; ++copy) {
    for (int n_pes : {1, 2, 4}) {
      for (Backend b : {Backend::kInterp, Backend::kVm}) {
        jobs.push_back(make_job("hello#" + std::to_string(id++), kHello,
                                n_pes, b));
        jobs.push_back(
            make_job("sum#" + std::to_string(id++), kSum, n_pes, b));
        jobs.push_back(make_job("ring#" + std::to_string(id++),
                                lol::paper::ring_listing(), n_pes, b));
      }
    }
  }

  std::vector<std::vector<std::string>> expected;
  for (const auto& job : jobs) {
    lol::RunConfig cfg;
    cfg.n_pes = job.n_pes;
    cfg.backend = job.backend;
    auto r = lol::run_source(job.source, cfg);
    ASSERT_TRUE(r.ok) << job.name << ": " << r.first_error();
    expected.push_back(r.pe_output);
  }

  ServiceOptions opts;
  opts.workers = 4;
  Service svc(opts);
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (const auto& job : jobs) futures.push_back(svc.submit(job));

  for (std::size_t i = 0; i < futures.size(); ++i) {
    JobResult r = futures[i].get();
    ASSERT_EQ(r.status, JobStatus::kOk) << jobs[i].name << ": " << r.error;
    EXPECT_EQ(r.pe_output, expected[i]) << jobs[i].name;
  }

  auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.ok, jobs.size());
  // 3 distinct sources; every later submission of each is a cache hit.
  EXPECT_EQ(stats.cache.misses, 3u);
  EXPECT_EQ(stats.cache.hits, jobs.size() - 3);
}

TEST(Service, RejectPolicyBoundsTheQueue) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.queue_full = QueueFullPolicy::kReject;
  opts.start_paused = true;  // fill the queue deterministically
  Service svc(opts);

  auto f1 = svc.submit(make_job("a", kHello, 1));
  auto f2 = svc.submit(make_job("b", kSum, 1));
  auto f3 = svc.submit(make_job("c", kHello, 1));  // queue full -> rejected

  JobResult rejected = f3.get();  // resolves without any worker running
  EXPECT_EQ(rejected.status, JobStatus::kRejected);
  EXPECT_EQ(rejected.error, "queue full");

  svc.start();
  EXPECT_EQ(f1.get().status, JobStatus::kOk);
  EXPECT_EQ(f2.get().status, JobStatus::kOk);

  auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Service, BlockPolicyAppliesBackpressure) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.queue_full = QueueFullPolicy::kBlock;
  opts.start_paused = true;
  Service svc(opts);

  auto f1 = svc.submit(make_job("a", kHello, 1));
  ASSERT_EQ(svc.queue_depth(), 1u);

  // The second submit must block until a worker frees queue space.
  std::atomic<bool> submitted{false};
  std::future<JobResult> f2;
  std::thread submitter([&] {
    f2 = svc.submit(make_job("b", kSum, 1));
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(submitted.load());  // still parked on the full queue

  svc.start();  // workers drain the queue; the blocked submit proceeds
  submitter.join();
  EXPECT_TRUE(submitted.load());
  EXPECT_EQ(f1.get().status, JobStatus::kOk);
  EXPECT_EQ(f2.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().rejected, 0u);
}

TEST(Service, TenantQuotaRejectsFloodWithoutTouchingOthers) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 64;
  opts.max_queued_per_tenant = 2;
  opts.start_paused = true;  // keep everything queued deterministically
  Service svc(opts);

  auto flood_job = [&](const char* name) {
    Job j = make_job(name, kHello, 1);
    j.tenant = "flooder";
    return svc.submit(std::move(j));
  };
  auto f1 = flood_job("a");
  auto f2 = flood_job("b");
  auto f3 = flood_job("c");  // over quota -> refused immediately

  JobResult refused = f3.get();  // resolves without any worker running
  EXPECT_EQ(refused.status, JobStatus::kQuotaExceeded);
  EXPECT_NE(refused.error.find("tenant quota exceeded"), std::string::npos)
      << refused.error;

  // A different tenant is untouched by the flooder's quota.
  Job other = make_job("other", kHello, 1);
  other.tenant = "polite";
  auto f4 = svc.submit(std::move(other));
  EXPECT_EQ(svc.queue_depth(), 3u);  // a, b, other — never c

  svc.start();
  EXPECT_EQ(f1.get().status, JobStatus::kOk);
  EXPECT_EQ(f2.get().status, JobStatus::kOk);
  EXPECT_EQ(f4.get().status, JobStatus::kOk);

  auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.quota_rejected, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // distinguishable from queue-full
  EXPECT_EQ(stats.completed, 3u);
}

TEST(Service, TenantQuotaFreesUpAsTheQueueDrains) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_queued_per_tenant = 1;
  Service svc(opts);  // workers running: queued jobs drain promptly

  // Sequential submits never see the quota: each job leaves the queue
  // before the next submit (quota counts queued jobs, not running ones).
  for (int i = 0; i < 4; ++i) {
    JobResult r = svc.submit(make_job("seq", kHello, 1)).get();
    ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
  }
  EXPECT_EQ(svc.stats().quota_rejected, 0u);
}

TEST(Service, StepBudgetKillsLoopingJobWithoutStallingThePool) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.default_max_steps = 100'000;  // the hostile job dies fast
  Service svc(opts);

  auto hostile = svc.submit(make_job("spin", kSpin, 2));
  std::vector<std::future<JobResult>> rest;
  for (int i = 0; i < 8; ++i) {
    rest.push_back(svc.submit(make_job("ok#" + std::to_string(i),
                                       i % 2 == 0 ? kHello : kSum, 2)));
  }

  JobResult h = hostile.get();
  EXPECT_EQ(h.status, JobStatus::kStepLimit);
  EXPECT_NE(h.error.find("step budget"), std::string::npos) << h.error;

  // Every well-behaved job still completes: the pool survived.
  for (auto& f : rest) {
    JobResult r = f.get();
    EXPECT_EQ(r.status, JobStatus::kOk) << r.name << ": " << r.error;
  }
  auto stats = svc.stats();
  EXPECT_EQ(stats.step_limited, 1u);
  EXPECT_EQ(stats.ok, 8u);
}

TEST(Service, PerJobMaxStepsOverridesTheDefault) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;  // unlimited default...
  Service svc(opts);

  Job j = make_job("spin", kSpin, 1);
  j.max_steps = 5'000;  // ...but this job brings its own budget
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit);
}

TEST(Service, OptLevelChangesStepAccountingAsDocumented) {
  // The optimizer preserves output but not step counts: a fully
  // unrolled loop no longer pays per-iteration condition checks. A
  // budget sized between the two costs classifies differently by
  // level — the documented divergence the per-level cache keying
  // exists to keep honest.
  const char* kSmallLoop =
      "HAI 1.2\n"
      "IM IN YR lp UPPIN YR i TIL BOTH SAEM i AN 4\n"
      "  VISIBLE i\n"
      "IM OUTTA YR lp\n"
      "KTHXBYE\n";
  ServiceOptions opts;
  opts.workers = 1;
  Service svc(opts);

  Job fast = make_job("o2", kSmallLoop, 1);
  fast.opt_level = 2;
  fast.max_steps = 20;
  JobResult r2 = svc.submit(std::move(fast)).get();
  ASSERT_EQ(r2.status, JobStatus::kOk) << r2.error;
  ASSERT_EQ(r2.pe_output.size(), 1u);
  EXPECT_EQ(r2.pe_output[0], "0\n1\n2\n3\n");

  Job slow = make_job("o0", kSmallLoop, 1);
  slow.opt_level = 0;
  slow.max_steps = 20;
  JobResult r0 = svc.submit(std::move(slow)).get();
  EXPECT_EQ(r0.status, JobStatus::kStepLimit);

  // Two distinct compiles, no cross-level cache aliasing.
  EXPECT_EQ(svc.stats().cache.misses, 2u);
}

TEST(Service, TunerAppliesPersistedKnobsOnWarmRuns) {
  // Seed a tuner store with a fiber-executor choice for kSum, then
  // submit a job that leaves every knob at default. The service must
  // actually run it on fibers (pinned by the fiber-switch counter, not
  // just the report string) and say so in JobResult::tuned.
  if (!lol::shmem::fiber_executor_available()) {
    GTEST_SKIP() << "no fiber executor on this host";
  }
  std::string path =
      "/tmp/lol_tuner_test_" + std::to_string(::getpid()) + ".knobs";
  std::remove(path.c_str());
  {
    lol::opt::TunerStore store(path);
    lol::opt::TunedKnobs k;
    k.executor = "fiber";
    k.pes_per_thread = 2;
    store.store(lol::replay::fnv1a(kSum), 4, k);
  }

  auto& fiber_switches = lol::obs::Registry::global().counter(
      "lol_fiber_switches_total",
      "Fiber context switches performed by the fiber executor");
  std::uint64_t before = fiber_switches.value();

  ServiceOptions opts;
  opts.workers = 1;
  opts.tuner_cache_path = path;
  Service svc(opts);

  Job j = make_job("tuned", kSum, 4);  // defaults: pool executor
  JobResult r = svc.submit(std::move(j)).get();
  ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_NE(r.tuned.find("executor=fiber"), std::string::npos) << r.tuned;
  EXPECT_NE(r.tuned.find("pes_per_thread=2"), std::string::npos) << r.tuned;
  EXPECT_GT(fiber_switches.value(), before)
      << "tuned executor was reported but not actually used";

  // A job that names its own executor keeps it: tuning never overrides
  // an explicit request.
  Job explicit_job = make_job("explicit", kSum, 4);
  explicit_job.executor = lol::shmem::ExecutorKind::kThread;
  JobResult r2 = svc.submit(std::move(explicit_job)).get();
  ASSERT_EQ(r2.status, JobStatus::kOk) << r2.error;
  EXPECT_EQ(r2.tuned.find("executor="), std::string::npos) << r2.tuned;
  EXPECT_EQ(r.pe_output, r2.pe_output);

  std::remove(path.c_str());
}

TEST(Service, MaxStepsCapClampsGreedyJobs) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_steps_cap = 10'000;
  Service svc(opts);

  Job j = make_job("spin", kSpin, 1);
  j.max_steps = 1'000'000'000;  // asks for far more than the cap
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit);
  EXPECT_NE(r.error.find("step budget of 10000"), std::string::npos)
      << r.error;
}

TEST(Service, MaxStepsCapAlsoClampsUnlimitedRequests) {
  // default_max_steps = 0 (unlimited) must not let a job slip past the
  // operator's hard cap by simply not asking for a budget.
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  opts.max_steps_cap = 10'000;
  Service svc(opts);

  JobResult r = svc.submit(make_job("spin", kSpin, 1)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit);
  EXPECT_NE(r.error.find("step budget of 10000"), std::string::npos)
      << r.error;
}

TEST(Service, HeapCapClampsGreedyJobs) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.heap_bytes_cap = 128;
  Service svc(opts);

  Job j = make_job("alloc",
                   "HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ "
                   "64\nKTHXBYE\n",
                   1);
  j.heap_bytes = 1 << 20;  // request is clamped to the 128-byte cap
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kRuntimeError);
  EXPECT_NE(r.error.find("symmetric heap"), std::string::npos) << r.error;
}

TEST(Service, CompileErrorsAreReportedAndCached) {
  ServiceOptions opts;
  opts.workers = 2;
  Service svc(opts);

  std::string broken = "HAI 1.2\nx R\nKTHXBYE\n";  // parse error
  auto f1 = svc.submit(make_job("bad1", broken, 1));
  auto f2 = svc.submit(make_job("bad2", broken, 1));
  JobResult r1 = f1.get();
  JobResult r2 = f2.get();
  EXPECT_EQ(r1.status, JobStatus::kCompileError);
  EXPECT_EQ(r2.status, JobStatus::kCompileError);
  EXPECT_FALSE(r1.error.empty());
  EXPECT_EQ(r1.error, r2.error);

  auto stats = svc.stats();
  EXPECT_EQ(stats.compile_errors, 2u);
  EXPECT_EQ(stats.cache.misses, 1u);  // the broken source compiled once
}

TEST(Service, ShutdownDrainsQueuedJobs) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  Service svc(opts);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(svc.submit(make_job("q#" + std::to_string(i), kSum, 1)));
  }
  // Never started explicitly: shutdown must still run everything queued.
  svc.shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::kOk);
  }
  EXPECT_EQ(svc.stats().completed, 6u);
}

TEST(Service, SubmitAfterShutdownIsRejected) {
  Service svc(ServiceOptions{});
  svc.shutdown();
  JobResult r = svc.submit(make_job("late", kHello, 1)).get();
  EXPECT_EQ(r.status, JobStatus::kRejected);
}

// ---------------------------------------------------------------------------
// Wall-clock deadlines (the reaper)
// ---------------------------------------------------------------------------

/// An input source that blocks until released (or forever): the
/// GIMMEH-on-real-stdin shape the step budget cannot see. try_read_line
/// honors the bounded wait so deadlines/cancel can interrupt it, and
/// the first poll flips `started` so tests know the job is in flight.
class BlockingInput final : public lol::rt::InputSource {
 public:
  std::optional<std::string> read_line(int pe) override {
    // Only reached through try_read_line in these tests.
    return try_read_line(pe, std::chrono::hours(24)).line;
  }

  lol::rt::TryRead try_read_line(int /*pe*/,
                                 std::chrono::milliseconds wait) override {
    std::unique_lock<std::mutex> g(m_);
    started_ = true;
    started_cv_.notify_all();
    if (cv_.wait_for(g, wait, [&] { return released_; })) {
      return {std::optional<std::string>("released"), false};
    }
    return {std::nullopt, true};
  }

  void release() {
    std::lock_guard<std::mutex> g(m_);
    released_ = true;
    cv_.notify_all();
  }

  void wait_started() {
    std::unique_lock<std::mutex> g(m_);
    started_cv_.wait(g, [&] { return started_; });
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable started_cv_;
  bool released_ = false;
  bool started_ = false;
};

const char* kGimmeh = "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE\n";
// PE 0 enters HUGZ, every other PE exits: a wedged barrier no step
// budget can see (the waiting PE makes no steps at all).
const char* kWedge =
    "HAI 1.2\nBOTH SAEM ME AN 0, O RLY?\nYA RLY\n  HUGZ\nOIC\nKTHXBYE\n";

TEST(Service, DeadlineKillsSpinningJobInUnderOneSecond) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;  // unlimited steps: only the clock can kill it
  Service svc(opts);

  Job j = make_job("spin", kSpin, 2);
  j.deadline_ms = 200;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(std::move(j)).get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(r.error.find("deadline of 200 ms"), std::string::npos) << r.error;
  EXPECT_LT(wall_ms, 1000.0) << "deadline took " << wall_ms << " ms to fire";
  EXPECT_EQ(svc.stats().deadline_exceeded, 1u);
}

TEST(Service, DeadlineKillsGimmehBlockedJob) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  Service svc(opts);

  BlockingInput input;  // never released: stdin that never delivers
  Job j = make_job("blocked", kGimmeh, 1);
  j.input = &input;
  j.deadline_ms = 200;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(std::move(j)).get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_LT(wall_ms, 1000.0);
}

TEST(Service, DeadlineKillsBarrierWedgedJob) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  Service svc(opts);

  Job j = make_job("wedge", kWedge, 2);
  j.deadline_ms = 200;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(std::move(j)).get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_LT(wall_ms, 1000.0);

  // The worker survived: a normal job still runs afterwards.
  EXPECT_EQ(svc.submit(make_job("after", kHello, 2)).get().status,
            JobStatus::kOk);
}

// The combining-tree barrier keeps the deadline contract: PEs wedged
// mid-tree (leaf waiters and climbed group winners alike, radix 2 makes
// the tree as deep as it gets) die by the wall clock on fibers too.
TEST(Service, DeadlineKillsTreeWedgedFiberJob) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  opts.max_pes = 64;
  Service svc(opts);

  Job j = make_job("tree-wedge", kWedge, 16);
  j.executor = lol::shmem::ExecutorKind::kFiber;
  j.pes_per_thread = 8;
  j.barrier_radix = 2;
  j.deadline_ms = 200;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(std::move(j)).get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_LT(wall_ms, 1000.0);
}

// And cancel() reaches the same wedge through the same abort path.
TEST(Service, CancelKillsTreeWedgedFiberJob) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  opts.max_pes = 64;
  Service svc(opts);

  Job j = make_job("tree-wedge", kWedge, 16);
  j.executor = lol::shmem::ExecutorKind::kFiber;
  j.pes_per_thread = 8;
  j.barrier_radix = 3;
  auto sub = svc.submit_job(std::move(j));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(svc.cancel(sub.id));
  JobResult r = sub.result.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
}

TEST(Service, DefaultDeadlineAppliesWhenJobDoesNotAsk) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  opts.default_deadline_ms = 200;
  Service svc(opts);

  JobResult r = svc.submit(make_job("spin", kSpin, 1)).get();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
}

TEST(Service, DeadlineCapClampsGreedyJobs) {
  // A job asking for a huge deadline is clamped to the operator's cap —
  // and a job asking for none at all gets the cap too.
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  opts.deadline_ms_cap = 200;
  Service svc(opts);

  Job greedy = make_job("greedy", kSpin, 1);
  greedy.deadline_ms = 60'000;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(std::move(greedy)).get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(r.error.find("deadline of 200 ms"), std::string::npos) << r.error;
  EXPECT_LT(wall_ms, 1000.0);

  JobResult silent = svc.submit(make_job("silent", kSpin, 1)).get();
  EXPECT_EQ(silent.status, JobStatus::kDeadlineExceeded);
}

TEST(Service, DeadlineLeavesFastJobsAlone) {
  ServiceOptions opts;
  opts.workers = 2;
  Service svc(opts);

  Job j = make_job("quick", kSum, 2);
  j.deadline_ms = 5'000;
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_EQ(svc.stats().deadline_exceeded, 0u);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(Service, CancelQueuedJobNeverRuns) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.start_paused = true;  // hold both jobs in the queue
  Service svc(opts);

  auto keep = svc.submit_job(make_job("keep", kHello, 1));
  auto drop = svc.submit_job(make_job("drop", kHello, 1));
  EXPECT_TRUE(svc.cancel(drop.id));

  // Resolves immediately, before any worker exists.
  JobResult r = drop.result.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(r.id, drop.id);
  EXPECT_NE(r.error.find("queued"), std::string::npos);
  EXPECT_EQ(svc.queue_depth(), 1u);

  svc.start();
  EXPECT_EQ(keep.result.get().status, JobStatus::kOk);
  auto stats = svc.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);  // the cancelled job never ran
}

TEST(Service, CancelInFlightJobAbortsItsRuntime) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;  // no step budget, no deadline: only cancel
  Service svc(opts);

  BlockingInput input;
  Job j = make_job("inflight", kGimmeh, 2);
  j.input = &input;
  auto sub = svc.submit_job(std::move(j));
  input.wait_started();  // the job is provably executing now

  EXPECT_TRUE(svc.cancel(sub.id));
  JobResult r = sub.result.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_NE(r.error.find("running"), std::string::npos);
  EXPECT_EQ(svc.stats().cancelled, 1u);

  // Pool healthy afterwards.
  EXPECT_EQ(svc.submit(make_job("after", kHello, 1)).get().status,
            JobStatus::kOk);
}

TEST(Service, CancelUnknownOrFinishedJobReturnsFalse) {
  Service svc(ServiceOptions{});
  EXPECT_FALSE(svc.cancel(424242));

  auto sub = svc.submit_job(make_job("done", kHello, 1));
  EXPECT_EQ(sub.result.get().status, JobStatus::kOk);
  EXPECT_FALSE(svc.cancel(sub.id));
}

TEST(Service, CancelledSpinningJobDiesWithoutStepBudget) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  Service svc(opts);

  auto sub = svc.submit_job(make_job("spin", kSpin, 2));
  // Wait until the worker picked it up, then cancel.
  while (svc.running_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(svc.cancel(sub.id));
  EXPECT_EQ(sub.result.get().status, JobStatus::kCancelled);
}

// ---------------------------------------------------------------------------
// Per-tenant fair queueing (deficit round robin)
// ---------------------------------------------------------------------------

TEST(Service, LightTenantIsNotStarvedByHeavyTenant) {
  ServiceOptions opts;
  opts.workers = 1;       // sequential dispatch => deterministic order
  opts.start_paused = true;
  Service svc(opts);

  std::mutex order_m;
  std::vector<std::string> order;
  auto track = [&](const JobResult& r) {
    std::lock_guard<std::mutex> g(order_m);
    order.push_back(r.tenant);
  };

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 10; ++i) {
    Job j = make_job("heavy#" + std::to_string(i), kHello, 1);
    j.tenant = "heavy";
    futures.push_back(svc.submit_job(std::move(j), track).result);
  }
  for (int i = 0; i < 2; ++i) {
    Job j = make_job("light#" + std::to_string(i), kHello, 1);
    j.tenant = "light";
    futures.push_back(svc.submit_job(std::move(j), track).result);
  }

  svc.start();
  for (auto& f : futures) f.get();

  // Equal weights: strict alternation until light drains — despite the
  // heavy tenant having submitted its whole burst first.
  ASSERT_EQ(order.size(), 12u);
  EXPECT_EQ(order[0], "heavy");
  EXPECT_EQ(order[1], "light");
  EXPECT_EQ(order[2], "heavy");
  EXPECT_EQ(order[3], "light");
  for (std::size_t i = 4; i < order.size(); ++i) {
    EXPECT_EQ(order[i], "heavy") << i;
  }
}

TEST(Service, TenantWeightsShapeTheSchedule) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  opts.tenant_weights = {{"paid", 3}, {"free", 1}};
  Service svc(opts);

  std::mutex order_m;
  std::vector<std::string> order;
  auto track = [&](const JobResult& r) {
    std::lock_guard<std::mutex> g(order_m);
    order.push_back(r.tenant);
  };

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    Job j = make_job("paid#" + std::to_string(i), kHello, 1);
    j.tenant = "paid";
    futures.push_back(svc.submit_job(std::move(j), track).result);
  }
  for (int i = 0; i < 2; ++i) {
    Job j = make_job("free#" + std::to_string(i), kHello, 1);
    j.tenant = "free";
    futures.push_back(svc.submit_job(std::move(j), track).result);
  }

  svc.start();
  for (auto& f : futures) f.get();

  // DRR with weights 3:1 — paid dispatches 3 jobs per round, free 1.
  std::vector<std::string> expect = {"paid", "paid", "paid", "free",
                                     "paid", "paid", "paid", "free"};
  EXPECT_EQ(order, expect);
}

TEST(Service, TenantsShareWorkersUnderConcurrentLoad) {
  // Sanity under real concurrency (no paused start): both tenants'
  // jobs all complete and the ids/tenants round-trip.
  ServiceOptions opts;
  opts.workers = 4;
  Service svc(opts);

  std::vector<std::pair<std::string, std::future<JobResult>>> subs;
  for (int i = 0; i < 24; ++i) {
    Job j = make_job("job#" + std::to_string(i), i % 3 == 0 ? kSum : kHello,
                     1 + i % 4);
    j.tenant = i % 2 == 0 ? "even" : "odd";
    std::string tenant = j.tenant;
    subs.emplace_back(std::move(tenant), svc.submit_job(std::move(j)).result);
  }
  for (auto& [tenant, fut] : subs) {
    JobResult r = fut.get();
    EXPECT_EQ(r.status, JobStatus::kOk) << r.error;
    EXPECT_EQ(r.tenant, tenant);
    EXPECT_NE(r.id, 0u);
  }
  EXPECT_EQ(svc.stats().ok, 24u);
}

// ---------------------------------------------------------------------------
// Native-backend parity: the same deadline / cancel / step-budget
// guarantees the interp and VM paths have, on lcc-generated code running
// in-process. Skipped (not failed) on hosts without a C compiler.
// ---------------------------------------------------------------------------

#define SKIP_WITHOUT_NATIVE()                                       \
  if (!lol::codegen::native_available()) {                          \
    GTEST_SKIP() << "no host C compiler for the native backend";    \
  }

TEST(Service, NativeBackendMatchesVmOutput) {
  SKIP_WITHOUT_NATIVE();
  Service svc({.workers = 2});
  JobResult vm = svc.submit(make_job("vm", kSum, 2, Backend::kVm)).get();
  JobResult nat =
      svc.submit(make_job("native", kSum, 2, Backend::kNative)).get();
  ASSERT_EQ(vm.status, JobStatus::kOk) << vm.error;
  ASSERT_EQ(nat.status, JobStatus::kOk) << nat.error;
  EXPECT_EQ(nat.pe_output, vm.pe_output);
}

TEST(Service, NativeBackendStepLimitKillsSpinningJob) {
  SKIP_WITHOUT_NATIVE();
  ServiceOptions opts;
  opts.workers = 1;
  Service svc(opts);
  Job j = make_job("native-spin", kSpin, 2, Backend::kNative);
  j.max_steps = 50'000;
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit);
  EXPECT_NE(r.error.find("step budget"), std::string::npos) << r.error;
}

TEST(Service, NativeBackendDeadlineKillsSpinningJobInUnderOneSecond) {
  SKIP_WITHOUT_NATIVE();
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;  // unlimited steps: only the clock can kill it
  Service svc(opts);

  // Warm the native compile cache so the host-cc invocation is not billed
  // against the wall-clock assertion below.
  Job warm = make_job("native-warm", kSpin, 1, Backend::kNative);
  warm.deadline_ms = 100;
  (void)svc.submit(std::move(warm)).get();

  Job j = make_job("native-spin", kSpin, 2, Backend::kNative);
  j.deadline_ms = 200;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(std::move(j)).get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(r.error.find("deadline of 200 ms"), std::string::npos) << r.error;
  EXPECT_LT(wall_ms, 1000.0) << "native deadline took " << wall_ms << " ms";
}

TEST(Service, NativeBackendCancelAbortsInFlightJob) {
  SKIP_WITHOUT_NATIVE();
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  Service svc(opts);

  auto sub = svc.submit_job(make_job("native-spin", kSpin, 2,
                                     Backend::kNative));
  // Let the job reach the worker (compile may need one cc invocation on
  // a cold cache), then cancel mid-spin.
  while (svc.running_depth() == 0 && svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(svc.cancel(sub.id));
  JobResult r = sub.result.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
}

// ---------------------------------------------------------------------------
// Fairness under randomized (seeded) submission order — the service-side
// counterpart of `lolserve --shuffle`: DRR must deliver the same
// alternation guarantee no matter how arrivals interleave.
// ---------------------------------------------------------------------------

TEST(Service, DrrFairnessHoldsUnderShuffledSubmissionOrder) {
  ServiceOptions opts;
  opts.workers = 1;  // sequential dispatch => deterministic order
  opts.start_paused = true;
  Service svc(opts);

  std::mutex order_m;
  std::vector<std::string> order;
  auto track = [&](const JobResult& r) {
    std::lock_guard<std::mutex> g(order_m);
    order.push_back(r.tenant);
  };

  // 6 jobs each for tenants a/b, submitted in a seeded-shuffled order.
  std::vector<std::string> submissions;
  for (int i = 0; i < 6; ++i) {
    submissions.push_back("a");
    submissions.push_back("b");
  }
  std::mt19937_64 rng(20170529);
  std::shuffle(submissions.begin(), submissions.end(), rng);

  std::vector<std::future<JobResult>> futures;
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    Job j = make_job(submissions[i] + "#" + std::to_string(i), kHello, 1);
    j.tenant = submissions[i];
    futures.push_back(svc.submit_job(std::move(j), track).result);
  }

  svc.start();
  for (auto& f : futures) f.get();

  // Equal weights and equal totals: once both tenants are queued the
  // DRR schedule must alternate regardless of the arrival permutation.
  // The first few dispatches may be single-tenant (the shuffle can front-
  // load one tenant), so assert the alternation property instead of one
  // fixed sequence: no tenant ever gets 2+ more dispatches than the
  // other had chances for, i.e. within any prefix the counts differ by
  // at most the imbalance of what had been submitted.
  ASSERT_EQ(order.size(), 12u);
  int a_done = 0;
  int b_done = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (order[i] == "a" ? a_done : b_done)++;
    // All jobs are queued before start(): with weight 1 each, DRR hands
    // out at most one job per tenant per round, so the running counts
    // can never drift more than 1 apart until one tenant drains.
    if (a_done < 6 && b_done < 6) {
      EXPECT_LE(std::abs(a_done - b_done), 1)
          << "unfair prefix at dispatch " << i;
    }
  }
  EXPECT_EQ(a_done, 6);
  EXPECT_EQ(b_done, 6);
}

// ---------------------------------------------------------------------------
// Executor selection (pool default, fiber jobs, deadline/cancel parity)
// ---------------------------------------------------------------------------

TEST(Service, FiberJobAtHighPeCountMatchesPooledOutput) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.max_pes = 256;
  Service svc(opts);

  Job pooled = make_job("pooled", lol::paper::barrier_sum_listing(), 128);
  pooled.heap_bytes = 16 << 10;
  Job fiber = pooled;
  fiber.name = "fiber";
  fiber.executor = lol::shmem::ExecutorKind::kFiber;
  fiber.pes_per_thread = 32;

  JobResult a = svc.submit(std::move(pooled)).get();
  JobResult b = svc.submit(std::move(fiber)).get();
  ASSERT_EQ(a.status, JobStatus::kOk) << a.error;
  ASSERT_EQ(b.status, JobStatus::kOk) << b.error;
  EXPECT_EQ(a.pe_output, b.pe_output);
}

// The acceptance bar from the executor refactor: a fiber-executor job
// wedged in a barrier (or spinning) dies by deadline_ms in under a
// second, exactly like a thread-executor job — the reaper's abort must
// reach fibers parked in the cooperative barrier.
TEST(Service, DeadlineKillsFiberExecutorJobInUnderOneSecond) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;  // only the clock can kill it
  opts.max_pes = 256;
  Service svc(opts);

  // 15 PEs wait in HUGZ across 2 carriers, PE 0 spins forever; a gang
  // this size stays inside the 1 s bound even under TSan's slowdown.
  Job j = make_job("fiber-wedge", kWedge, 16);
  j.executor = lol::shmem::ExecutorKind::kFiber;
  j.pes_per_thread = 8;
  j.deadline_ms = 200;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(std::move(j)).get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded) << r.error;
  EXPECT_LT(wall_ms, 1000.0) << "fiber deadline took " << wall_ms << " ms";

  // The worker survived: a fiber job still runs afterwards.
  Job after = make_job("after", kHello, 32);
  after.executor = lol::shmem::ExecutorKind::kFiber;
  EXPECT_EQ(svc.submit(std::move(after)).get().status, JobStatus::kOk);
}

TEST(Service, CancelKillsInFlightFiberExecutorJobInUnderOneSecond) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  Service svc(opts);

  BlockingInput input;
  Job j = make_job("fiber-blocked", kGimmeh, 4);
  j.executor = lol::shmem::ExecutorKind::kFiber;
  j.pes_per_thread = 4;
  j.input = &input;
  auto sub = svc.submit_job(std::move(j));
  input.wait_started();  // in flight, blocked in GIMMEH on a carrier
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(svc.cancel(sub.id));
  JobResult r = sub.result.get();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  EXPECT_EQ(r.status, JobStatus::kCancelled) << r.error;
  EXPECT_LT(wall_ms, 1000.0);
}

TEST(Service, FiberStepBudgetKillsSpinningJob) {
  ServiceOptions opts;
  opts.workers = 1;
  Service svc(opts);

  Job j = make_job("fiber-spin", kSpin, 8);
  j.executor = lol::shmem::ExecutorKind::kFiber;
  j.pes_per_thread = 8;
  j.max_steps = 20'000;
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit) << r.error;
}

}  // namespace

// Service-layer tests: compile-cache accounting, concurrent-vs-sequential
// output equivalence, bounded-queue backpressure (both policies), and
// step-budget enforcement keeping the pool alive under hostile jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"
#include "service/compile_cache.hpp"
#include "service/service.hpp"

namespace {

using lol::Backend;
using lol::service::CompileCache;
using lol::service::Job;
using lol::service::JobResult;
using lol::service::JobStatus;
using lol::service::QueueFullPolicy;
using lol::service::Service;
using lol::service::ServiceOptions;

const char* kHello = "HAI 1.2\nVISIBLE \"O HAI\" ME\nKTHXBYE\n";
const char* kSum =
    "HAI 1.2\nI HAS A n ITZ 0\n"
    "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 200\n"
    "  n R SUM OF n AN i\nIM OUTTA YR l\nVISIBLE n\nKTHXBYE\n";
const char* kSpin = "HAI 1.2\nIM IN YR forever\nIM OUTTA YR forever\nKTHXBYE\n";

Job make_job(std::string name, std::string source, int n_pes,
             Backend backend = Backend::kVm) {
  Job j;
  j.name = std::move(name);
  j.source = std::move(source);
  j.n_pes = n_pes;
  j.backend = backend;
  return j;
}

// ---------------------------------------------------------------------------
// CompileCache
// ---------------------------------------------------------------------------

TEST(CompileCache, HitAndMissAccounting) {
  CompileCache cache(8);
  bool hit = true;
  auto a = cache.get_or_compile(kHello, &hit);
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(hit);

  auto b = cache.get_or_compile(kHello, &hit);
  EXPECT_TRUE(hit);
  // The same immutable CompiledProgram is shared, not recompiled.
  EXPECT_EQ(a.program.get(), b.program.get());

  cache.get_or_compile(kSum, &hit);
  EXPECT_FALSE(hit);

  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CompileCache, LruEvictionPrefersHotEntries) {
  CompileCache cache(2);
  std::string a = "HAI 1.2\nVISIBLE 1\nKTHXBYE\n";
  std::string b = "HAI 1.2\nVISIBLE 2\nKTHXBYE\n";
  std::string c = "HAI 1.2\nVISIBLE 3\nKTHXBYE\n";
  cache.get_or_compile(a);
  cache.get_or_compile(b);
  cache.get_or_compile(a);  // refresh a: b is now LRU
  cache.get_or_compile(c);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool hit = false;
  cache.get_or_compile(a, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_compile(b, &hit);  // evicted, so a miss again
  EXPECT_FALSE(hit);
}

TEST(CompileCache, CompileErrorsAreCachedToo) {
  CompileCache cache(4);
  std::string broken = "HAI 1.2\nFOUND YR 1\nKTHXBYE\n";  // sema error
  bool hit = true;
  auto a = cache.get_or_compile(broken, &hit);
  EXPECT_FALSE(hit);
  EXPECT_FALSE(a.ok());
  EXPECT_FALSE(a.error.empty());

  auto b = cache.get_or_compile(broken, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CompileCache, ConcurrentRequestsCompileOnce) {
  CompileCache cache(8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<const lol::CompiledProgram*> seen(kThreads, nullptr);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      seen[static_cast<std::size_t>(i)] =
          cache.get_or_compile(kSum).program.get();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(i)]);
  }
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

TEST(Service, ConcurrentJobsMatchSequentialRuns) {
  // Mixed sources, PE counts and backends, several copies of each (108
  // jobs) — the service on 4 workers must produce byte-identical per-PE
  // output to plain sequential lol::run.
  std::vector<Job> jobs;
  int id = 0;
  for (int copy = 0; copy < 6; ++copy) {
    for (int n_pes : {1, 2, 4}) {
      for (Backend b : {Backend::kInterp, Backend::kVm}) {
        jobs.push_back(make_job("hello#" + std::to_string(id++), kHello,
                                n_pes, b));
        jobs.push_back(
            make_job("sum#" + std::to_string(id++), kSum, n_pes, b));
        jobs.push_back(make_job("ring#" + std::to_string(id++),
                                lol::paper::ring_listing(), n_pes, b));
      }
    }
  }

  std::vector<std::vector<std::string>> expected;
  for (const auto& job : jobs) {
    lol::RunConfig cfg;
    cfg.n_pes = job.n_pes;
    cfg.backend = job.backend;
    auto r = lol::run_source(job.source, cfg);
    ASSERT_TRUE(r.ok) << job.name << ": " << r.first_error();
    expected.push_back(r.pe_output);
  }

  ServiceOptions opts;
  opts.workers = 4;
  Service svc(opts);
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (const auto& job : jobs) futures.push_back(svc.submit(job));

  for (std::size_t i = 0; i < futures.size(); ++i) {
    JobResult r = futures[i].get();
    ASSERT_EQ(r.status, JobStatus::kOk) << jobs[i].name << ": " << r.error;
    EXPECT_EQ(r.pe_output, expected[i]) << jobs[i].name;
  }

  auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.ok, jobs.size());
  // 3 distinct sources; every later submission of each is a cache hit.
  EXPECT_EQ(stats.cache.misses, 3u);
  EXPECT_EQ(stats.cache.hits, jobs.size() - 3);
}

TEST(Service, RejectPolicyBoundsTheQueue) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.queue_full = QueueFullPolicy::kReject;
  opts.start_paused = true;  // fill the queue deterministically
  Service svc(opts);

  auto f1 = svc.submit(make_job("a", kHello, 1));
  auto f2 = svc.submit(make_job("b", kSum, 1));
  auto f3 = svc.submit(make_job("c", kHello, 1));  // queue full -> rejected

  JobResult rejected = f3.get();  // resolves without any worker running
  EXPECT_EQ(rejected.status, JobStatus::kRejected);
  EXPECT_EQ(rejected.error, "queue full");

  svc.start();
  EXPECT_EQ(f1.get().status, JobStatus::kOk);
  EXPECT_EQ(f2.get().status, JobStatus::kOk);

  auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Service, BlockPolicyAppliesBackpressure) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.queue_full = QueueFullPolicy::kBlock;
  opts.start_paused = true;
  Service svc(opts);

  auto f1 = svc.submit(make_job("a", kHello, 1));
  ASSERT_EQ(svc.queue_depth(), 1u);

  // The second submit must block until a worker frees queue space.
  std::atomic<bool> submitted{false};
  std::future<JobResult> f2;
  std::thread submitter([&] {
    f2 = svc.submit(make_job("b", kSum, 1));
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(submitted.load());  // still parked on the full queue

  svc.start();  // workers drain the queue; the blocked submit proceeds
  submitter.join();
  EXPECT_TRUE(submitted.load());
  EXPECT_EQ(f1.get().status, JobStatus::kOk);
  EXPECT_EQ(f2.get().status, JobStatus::kOk);
  EXPECT_EQ(svc.stats().rejected, 0u);
}

TEST(Service, StepBudgetKillsLoopingJobWithoutStallingThePool) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.default_max_steps = 100'000;  // the hostile job dies fast
  Service svc(opts);

  auto hostile = svc.submit(make_job("spin", kSpin, 2));
  std::vector<std::future<JobResult>> rest;
  for (int i = 0; i < 8; ++i) {
    rest.push_back(svc.submit(make_job("ok#" + std::to_string(i),
                                       i % 2 == 0 ? kHello : kSum, 2)));
  }

  JobResult h = hostile.get();
  EXPECT_EQ(h.status, JobStatus::kStepLimit);
  EXPECT_NE(h.error.find("step budget"), std::string::npos) << h.error;

  // Every well-behaved job still completes: the pool survived.
  for (auto& f : rest) {
    JobResult r = f.get();
    EXPECT_EQ(r.status, JobStatus::kOk) << r.name << ": " << r.error;
  }
  auto stats = svc.stats();
  EXPECT_EQ(stats.step_limited, 1u);
  EXPECT_EQ(stats.ok, 8u);
}

TEST(Service, PerJobMaxStepsOverridesTheDefault) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;  // unlimited default...
  Service svc(opts);

  Job j = make_job("spin", kSpin, 1);
  j.max_steps = 5'000;  // ...but this job brings its own budget
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit);
}

TEST(Service, MaxStepsCapClampsGreedyJobs) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_steps_cap = 10'000;
  Service svc(opts);

  Job j = make_job("spin", kSpin, 1);
  j.max_steps = 1'000'000'000;  // asks for far more than the cap
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit);
  EXPECT_NE(r.error.find("step budget of 10000"), std::string::npos)
      << r.error;
}

TEST(Service, MaxStepsCapAlsoClampsUnlimitedRequests) {
  // default_max_steps = 0 (unlimited) must not let a job slip past the
  // operator's hard cap by simply not asking for a budget.
  ServiceOptions opts;
  opts.workers = 1;
  opts.default_max_steps = 0;
  opts.max_steps_cap = 10'000;
  Service svc(opts);

  JobResult r = svc.submit(make_job("spin", kSpin, 1)).get();
  EXPECT_EQ(r.status, JobStatus::kStepLimit);
  EXPECT_NE(r.error.find("step budget of 10000"), std::string::npos)
      << r.error;
}

TEST(Service, HeapCapClampsGreedyJobs) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.heap_bytes_cap = 128;
  Service svc(opts);

  Job j = make_job("alloc",
                   "HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ "
                   "64\nKTHXBYE\n",
                   1);
  j.heap_bytes = 1 << 20;  // request is clamped to the 128-byte cap
  JobResult r = svc.submit(std::move(j)).get();
  EXPECT_EQ(r.status, JobStatus::kRuntimeError);
  EXPECT_NE(r.error.find("symmetric heap"), std::string::npos) << r.error;
}

TEST(Service, CompileErrorsAreReportedAndCached) {
  ServiceOptions opts;
  opts.workers = 2;
  Service svc(opts);

  std::string broken = "HAI 1.2\nx R\nKTHXBYE\n";  // parse error
  auto f1 = svc.submit(make_job("bad1", broken, 1));
  auto f2 = svc.submit(make_job("bad2", broken, 1));
  JobResult r1 = f1.get();
  JobResult r2 = f2.get();
  EXPECT_EQ(r1.status, JobStatus::kCompileError);
  EXPECT_EQ(r2.status, JobStatus::kCompileError);
  EXPECT_FALSE(r1.error.empty());
  EXPECT_EQ(r1.error, r2.error);

  auto stats = svc.stats();
  EXPECT_EQ(stats.compile_errors, 2u);
  EXPECT_EQ(stats.cache.misses, 1u);  // the broken source compiled once
}

TEST(Service, ShutdownDrainsQueuedJobs) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  Service svc(opts);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(svc.submit(make_job("q#" + std::to_string(i), kSum, 1)));
  }
  // Never started explicitly: shutdown must still run everything queued.
  svc.shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::kOk);
  }
  EXPECT_EQ(svc.stats().completed, 6u);
}

TEST(Service, SubmitAfterShutdownIsRejected) {
  Service svc(ServiceOptions{});
  svc.shutdown();
  JobResult r = svc.submit(make_job("late", kHello, 1)).get();
  EXPECT_EQ(r.status, JobStatus::kRejected);
}

}  // namespace

// VM tests: bytecode compilation shape, disassembly, and — most
// importantly — output parity with the interpreter over a program corpus.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "parse/parser.hpp"
#include "vm/compiler.hpp"
#include "vm/vm.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;
using lol::run_source;

std::string run_backend(const std::string& src, Backend b, int n_pes = 1,
                        std::uint64_t seed = 1) {
  RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = b;
  cfg.seed = seed;
  auto r = run_source(src, cfg);
  if (!r.ok) return "<error: " + r.first_error() + ">";
  std::string all;
  for (const auto& o : r.pe_output) all += o + "|";
  return all;
}

void expect_parity(const std::string& body, int n_pes = 1) {
  std::string src = "HAI 1.2\n" + body + "KTHXBYE\n";
  std::string i = run_backend(src, Backend::kInterp, n_pes);
  std::string v = run_backend(src, Backend::kVm, n_pes);
  EXPECT_EQ(i, v) << "program:\n" << src;
  EXPECT_EQ(i.find("<error"), std::string::npos) << i;
}

TEST(VmCompile, ProducesHaltTerminatedMain) {
  auto prog = lol::parse::parse_program("HAI 1.2\nVISIBLE 1\nKTHXBYE\n");
  auto analysis = lol::sema::analyze(prog);
  auto chunk = lol::vm::compile_program(prog, analysis);
  ASSERT_FALSE(chunk.code.empty());
  bool has_halt = false;
  for (const auto& in : chunk.code) {
    if (in.op == lol::vm::Op::kHalt) has_halt = true;
  }
  EXPECT_TRUE(has_halt);
  EXPECT_EQ(chunk.funcs.size(), 0u);
}

TEST(VmCompile, FunctionsGetEntriesAndSlots) {
  auto prog = lol::parse::parse_program(
      "HAI 1.2\nHOW IZ I f YR a AN YR b\n  I HAS A c ITZ 1\n"
      "  FOUND YR c\nIF U SAY SO\nKTHXBYE\n");
  auto analysis = lol::sema::analyze(prog);
  auto chunk = lol::vm::compile_program(prog, analysis);
  ASSERT_EQ(chunk.funcs.size(), 1u);
  EXPECT_EQ(chunk.funcs[0].argc, 2);
  EXPECT_EQ(chunk.funcs[0].n_slots, 3);  // a, b, c
  EXPECT_GT(chunk.funcs[0].entry, 0u);
}

TEST(VmCompile, UndeclaredVariableRejectedStatically) {
  auto prog = lol::parse::parse_program("HAI 1.2\nVISIBLE ghost\nKTHXBYE\n");
  auto analysis = lol::sema::analyze(prog);
  EXPECT_THROW(lol::vm::compile_program(prog, analysis),
               lol::support::SemaError);
}

TEST(VmCompile, DisassemblyMentionsOpsAndNames) {
  auto prog = lol::parse::parse_program(
      "HAI 1.2\nI HAS A x ITZ 5\nVISIBLE SUM OF x AN 1\nKTHXBYE\n");
  auto analysis = lol::sema::analyze(prog);
  auto chunk = lol::vm::compile_program(prog, analysis);
  std::string dis = lol::vm::disassemble(chunk);
  EXPECT_NE(dis.find("DECLARE x"), std::string::npos);
  EXPECT_NE(dis.find("BINARY SUM OF"), std::string::npos);
  EXPECT_NE(dis.find("VISIBLE"), std::string::npos);
  EXPECT_NE(dis.find("HALT"), std::string::npos);
}

// -- parity corpus -----------------------------------------------------------

TEST(VmParity, Arithmetic) {
  expect_parity(
      "VISIBLE SUM OF 2 AN 3\nVISIBLE DIFF OF 2 AN 3\n"
      "VISIBLE PRODUKT OF 2.5 AN 4\nVISIBLE QUOSHUNT OF 7 AN 2\n"
      "VISIBLE MOD OF 7 AN 3\nVISIBLE BIGGR OF 2 AN 5\n"
      "VISIBLE SMALLR OF 2 AN 5\nVISIBLE SQUAR OF 6\n"
      "VISIBLE UNSQUAR OF 81\nVISIBLE FLIP OF 8\n");
}

TEST(VmParity, BooleansAndComparisons) {
  expect_parity(
      "VISIBLE BOTH SAEM 3 AN 3.0\nVISIBLE DIFFRINT 1 AN 2\n"
      "VISIBLE BIGGER 3 AN 2\nVISIBLE SMALLR 3 AN 2\n"
      "VISIBLE BOTH OF WIN AN FAIL\nVISIBLE EITHER OF WIN AN FAIL\n"
      "VISIBLE WON OF WIN AN WIN\nVISIBLE NOT FAIL\n"
      "VISIBLE ALL OF WIN AN 1 AN \"x\" MKAY\n"
      "VISIBLE ANY OF FAIL AN 0 MKAY\n");
}

TEST(VmParity, StringsAndCasts) {
  expect_parity(
      "VISIBLE SMOOSH \"a\" 1 2.5 WIN MKAY\n"
      "VISIBLE MAEK \"42\" A NUMBR\nVISIBLE MAEK 3.99 A NUMBR\n"
      "VISIBLE MAEK 42 A YARN\nVISIBLE MAEK NOOB A TROOF\n"
      "I HAS A x ITZ 7\nx IS NOW A YARN\nVISIBLE SMOOSH x x MKAY\n"
      "I HAS A who ITZ \"CAT\"\nVISIBLE \"HAI :{who}\"\n");
}

TEST(VmParity, ControlFlow) {
  expect_parity(
      "I HAS A x ITZ 2\n"
      "BOTH SAEM x AN 1, O RLY?\nYA RLY\n  VISIBLE \"one\"\n"
      "MEBBE BOTH SAEM x AN 2\n  VISIBLE \"two\"\n"
      "NO WAI\n  VISIBLE \"many\"\nOIC\n"
      "x, WTF?\nOMG 1\n  VISIBLE \"c1\"\n  GTFO\n"
      "OMG 2\n  VISIBLE \"c2\"\nOMG 3\n  VISIBLE \"c3\"\n  GTFO\n"
      "OMGWTF\n  VISIBLE \"cd\"\nOIC\n");
}

TEST(VmParity, Loops) {
  expect_parity(
      "IM IN YR a UPPIN YR i TIL BOTH SAEM i AN 4\n"
      "  IM IN YR b UPPIN YR j TIL BOTH SAEM j AN 3\n"
      "    VISIBLE SMOOSH i \",\" j MKAY\n"
      "  IM OUTTA YR b\n"
      "IM OUTTA YR a\n"
      "I HAS A n ITZ 0\n"
      "IM IN YR c\n  n R SUM OF n AN 1\n"
      "  BOTH SAEM n AN 3, O RLY?\n  YA RLY\n    GTFO\n  OIC\n"
      "IM OUTTA YR c\nVISIBLE n\n");
}

TEST(VmParity, LoopScopedDeclarations) {
  expect_parity(
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n"
      "  I HAS A tmp ITZ PRODUKT OF i AN 2\n"
      "  VISIBLE tmp\n"
      "IM OUTTA YR l\n");
}

TEST(VmParity, Functions) {
  expect_parity(
      "HOW IZ I fib YR n\n"
      "  SMALLR n AN 2, O RLY?\n"
      "  YA RLY\n    FOUND YR n\n  OIC\n"
      "  FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY ...\n"
      "    AN I IZ fib YR DIFF OF n AN 2 MKAY\n"
      "IF U SAY SO\n"
      "VISIBLE I IZ fib YR 12 MKAY\n"
      "HOW IZ I greet\n  VISIBLE \"hi\"\nIF U SAY SO\n"
      "I IZ greet MKAY\n"
      "HOW IZ I implicit\n  41\nIF U SAY SO\n"
      "VISIBLE I IZ implicit MKAY\n");
}

TEST(VmParity, FunctionsSeeGlobals) {
  expect_parity(
      "I HAS A g ITZ 10\n"
      "HOW IZ I bump\n  g R SUM OF g AN 1\n  FOUND YR g\nIF U SAY SO\n"
      "VISIBLE I IZ bump MKAY\nVISIBLE I IZ bump MKAY\nVISIBLE g\n");
}

TEST(VmParity, Arrays) {
  expect_parity(
      "I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 5\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n"
      "  a'Z i R QUOSHUNT OF i AN 2.0\n"
      "IM OUTTA YR l\n"
      "VISIBLE a'Z 0 \" \" a'Z 4\n"
      "I HAS A b ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 5\n"
      "b R a\nVISIBLE b'Z 3\n");
}

TEST(VmParity, SrsIndirection) {
  expect_parity(
      "I HAS A cat ITZ 1\nI HAS A dog ITZ 2\n"
      "I HAS A pick ITZ \"dog\"\n"
      "VISIBLE SRS pick\nSRS pick R 5\nVISIBLE dog\n"
      "pick R \"cat\"\nVISIBLE SRS pick\n");
}

TEST(VmParity, Gimmeh) {
  RunConfig cfg;
  cfg.n_pes = 1;
  cfg.stdin_lines = {"alpha", "beta"};
  std::string src =
      "HAI 1.2\nI HAS A x\nGIMMEH x\nGIMMEH x\nVISIBLE x\nKTHXBYE\n";
  cfg.backend = Backend::kInterp;
  auto ri = run_source(src, cfg);
  cfg.backend = Backend::kVm;
  cfg.stdin_lines = {"alpha", "beta"};
  auto rv = run_source(src, cfg);
  ASSERT_TRUE(ri.ok && rv.ok);
  EXPECT_EQ(ri.pe_output[0], rv.pe_output[0]);
  EXPECT_EQ(rv.pe_output[0], "beta\n");
}

TEST(VmParity, RandomStreamsMatch) {
  std::string src =
      "HAI 1.2\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n"
      "  VISIBLE WHATEVR \" \" WHATEVAR\n"
      "IM OUTTA YR l\nKTHXBYE\n";
  EXPECT_EQ(run_backend(src, Backend::kInterp, 2, 99),
            run_backend(src, Backend::kVm, 2, 99));
}

TEST(VmParity, ParallelConstructs) {
  expect_parity(
      "WE HAS A v ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "v R PRODUKT OF ME AN 3\n"
      "HUGZ\n"
      "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n"
      "I HAS A got ITZ A NUMBR\n"
      "TXT MAH BFF nxt, got R UR v\n"
      "VISIBLE got\n"
      "HUGZ\n"
      "IM SRSLY MESIN WIF v\nv R SUM OF v AN 1\nDUN MESIN WIF v\n"
      "HUGZ\nVISIBLE v\n",
      4);
}

TEST(VmParity, ErrorBehaviourMatches) {
  // Both backends must fail (messages may carry different location info).
  std::string src = "HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE\n";
  std::string i = run_backend(src, Backend::kInterp);
  std::string v = run_backend(src, Backend::kVm);
  EXPECT_NE(i.find("<error"), std::string::npos);
  EXPECT_NE(v.find("<error"), std::string::npos);
  EXPECT_NE(v.find("division by zero"), std::string::npos);
}

TEST(VmParity, GtfoInsideTxtInsideLoopRestoresPredication) {
  expect_parity(
      "WE HAS A v ITZ SRSLY A NUMBR\n"
      "v R ME\nHUGZ\n"
      "I HAS A hits ITZ 0\n"
      "IM IN YR l UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n"
      "  TXT MAH BFF k AN STUFF\n"
      "    BOTH SAEM UR v AN 1, O RLY?\n"
      "    YA RLY\n      hits R SUM OF hits AN 1\n      GTFO\n    OIC\n"
      "  TTYL\n"
      "IM OUTTA YR l\n"
      "VISIBLE hits\n",
      3);
}

}  // namespace

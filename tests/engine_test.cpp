// Public-API (core facade) tests: RunConfig knobs, sinks, simulated
// time through the engine, error surfaces, and compile() diagnostics.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/engine.hpp"
#include "noc/machines.hpp"
#include "rt/io.hpp"
#include "vm/compiler.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;

TEST(Engine, CompileThrowsTypedErrors) {
  EXPECT_THROW(lol::compile("\"unterminated"), lol::support::LexError);
  EXPECT_THROW(lol::compile("HAI 1.2\nx R\nKTHXBYE\n"),
               lol::support::ParseError);
  EXPECT_THROW(lol::compile("HAI 1.2\nFOUND YR 1\nKTHXBYE\n"),
               lol::support::SemaError);
}

TEST(Engine, CompiledProgramIsReusableAcrossRuns) {
  auto prog = lol::compile("HAI 1.2\nVISIBLE ME\nKTHXBYE\n");
  for (int n : {1, 2, 4}) {
    RunConfig cfg;
    cfg.n_pes = n;
    auto r = lol::run(prog, cfg);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(static_cast<int>(r.pe_output.size()), n);
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(n - 1)],
              std::to_string(n - 1) + "\n");
  }
}

TEST(Engine, CompiledProgramIsMovable) {
  // Analysis borrows AST nodes; moving the CompiledProgram must keep the
  // borrowed pointers valid (nodes live behind unique_ptrs).
  auto prog = lol::compile(
      "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "HOW IZ I f\n  FOUND YR 1\nIF U SAY SO\n"
      "VISIBLE I IZ f MKAY\nKTHXBYE\n");
  lol::CompiledProgram moved = std::move(prog);
  auto r = lol::run(moved, RunConfig{});
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_EQ(r.pe_output[0], "1\n");
}

TEST(Engine, ExternalSinkReceivesOutput) {
  lol::rt::CaptureSink sink(2);
  RunConfig cfg;
  cfg.n_pes = 2;
  cfg.sink = &sink;
  auto r = lol::run_source("HAI 1.2\nVISIBLE ME\nKTHXBYE\n", cfg);
  ASSERT_TRUE(r.ok);
  // With an external sink, the result buffers stay empty...
  EXPECT_EQ(r.pe_output[0], "");
  // ...and the sink got the text.
  EXPECT_EQ(sink.out(0), "0\n");
  EXPECT_EQ(sink.out(1), "1\n");
}

TEST(Engine, SimulatedTimeFlowsThroughRunResult) {
  RunConfig cfg;
  cfg.n_pes = 4;
  cfg.backend = Backend::kVm;
  cfg.machine = lol::noc::epiphany3();
  auto r = lol::run_source(
      "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\n"
      "TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, UR x R ME\n"
      "HUGZ\nKTHXBYE\n",
      cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_GT(r.max_sim_ns(), 0.0);
  // All PEs leave the final barrier at the same simulated time.
  for (double v : r.sim_ns) EXPECT_DOUBLE_EQ(v, r.sim_ns[0]);
}

TEST(Engine, MachineModelChangesModeledCost) {
  const char* src =
      "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\n"
      "I HAS A g ITZ A NUMBR\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 50\n"
      "  TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, g R UR x\n"
      "IM OUTTA YR l\nHUGZ\nKTHXBYE\n";
  RunConfig epi;
  epi.n_pes = 4;
  epi.machine = lol::noc::epiphany3();
  RunConfig xc = epi;
  xc.machine = lol::noc::xc40_aries();
  auto re = lol::run_source(src, epi);
  auto rx = lol::run_source(src, xc);
  ASSERT_TRUE(re.ok && rx.ok);
  // The XC40's flat ~1.7us get dwarfs the mesh's tens of ns.
  EXPECT_GT(rx.max_sim_ns(), 10.0 * re.max_sim_ns());
}

TEST(Engine, SeedControlsRandomStreams) {
  const char* src = "HAI 1.2\nVISIBLE WHATEVR\nKTHXBYE\n";
  RunConfig a;
  a.seed = 1;
  RunConfig b;
  b.seed = 2;
  auto ra1 = lol::run_source(src, a);
  auto ra2 = lol::run_source(src, a);
  auto rb = lol::run_source(src, b);
  ASSERT_TRUE(ra1.ok && ra2.ok && rb.ok);
  EXPECT_EQ(ra1.pe_output[0], ra2.pe_output[0]);
  EXPECT_NE(ra1.pe_output[0], rb.pe_output[0]);
}

TEST(Engine, PerPeErrorsAreReported) {
  RunConfig cfg;
  cfg.n_pes = 4;
  auto r = lol::run_source(
      "HAI 1.2\n"
      "BOTH SAEM ME AN 2, O RLY?\n"
      "YA RLY\n  VISIBLE QUOSHUNT OF 1 AN 0\nOIC\n"
      "HUGZ\nKTHXBYE\n",
      cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.errors[2].find("division by zero"), std::string::npos);
  EXPECT_NE(r.errors[2].find("PE 2"), std::string::npos);
}

TEST(Engine, VersionIsExposed) { EXPECT_EQ(lol::version(), "1.0.0"); }

TEST(Engine, HeapSizeKnobWorks) {
  RunConfig small;
  small.heap_bytes = 128;
  auto r = lol::run_source(
      "HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 64\n"
      "KTHXBYE\n",
      small);
  EXPECT_FALSE(r.ok);
  RunConfig big;
  big.heap_bytes = 1024;
  r = lol::run_source(
      "HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 64\n"
      "KTHXBYE\n",
      big);
  EXPECT_TRUE(r.ok) << r.first_error();
}

TEST(Engine, MaxStepsKillsInfiniteLoopOnBothBackends) {
  const char* spin = "HAI 1.2\nIM IN YR forever\nIM OUTTA YR forever\nKTHXBYE\n";
  for (Backend b : {Backend::kInterp, Backend::kVm}) {
    RunConfig cfg;
    cfg.backend = b;
    cfg.max_steps = 10'000;
    auto r = lol::run_source(spin, cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.step_limited);
    EXPECT_NE(r.first_error().find("step budget of 10000 exceeded"),
              std::string::npos)
        << r.first_error();
  }
}

TEST(Engine, MaxStepsLeavesTerminatingProgramsAlone) {
  for (Backend b : {Backend::kInterp, Backend::kVm}) {
    RunConfig cfg;
    cfg.backend = b;
    cfg.max_steps = 100'000;
    auto r = lol::run_source(
        "HAI 1.2\nI HAS A n ITZ 0\n"
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n"
        "  n R SUM OF n AN i\nIM OUTTA YR l\nVISIBLE n\nKTHXBYE\n",
        cfg);
    ASSERT_TRUE(r.ok) << r.first_error();
    EXPECT_FALSE(r.step_limited);
    EXPECT_EQ(r.pe_output[0], "4950\n");
  }
}

TEST(Engine, MaxStepsZeroMeansUnlimited) {
  RunConfig cfg;
  cfg.max_steps = 0;
  auto r = lol::run_source(
      "HAI 1.2\nI HAS A n ITZ 0\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 20000\n"
      "  n R SUM OF n AN 1\nIM OUTTA YR l\nVISIBLE n\nKTHXBYE\n",
      cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_EQ(r.pe_output[0], "20000\n");
}

TEST(Engine, StdinLinesHavePerPeCursors) {
  RunConfig cfg;
  cfg.n_pes = 2;
  cfg.stdin_lines = {"first", "second"};
  auto r = lol::run_source(
      "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE ME \"::\" x\nKTHXBYE\n", cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  // Each PE reads from its own cursor over the same lines (SPMD).
  EXPECT_EQ(r.pe_output[0], "0:first\n");
  EXPECT_EQ(r.pe_output[1], "1:first\n");
}

TEST(Engine, ExternalInputSourceOverridesStdinLines) {
  lol::rt::VectorInput input({"live"}, 2);
  RunConfig cfg;
  cfg.n_pes = 2;
  cfg.stdin_lines = {"ignored"};
  cfg.input = &input;
  auto r = lol::run_source("HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE\n",
                           cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_EQ(r.pe_output[0], "live\n");
}

TEST(Engine, AbortRequestedBeforeRunSkipsLaunch) {
  lol::AbortToken token;
  token.request();
  RunConfig cfg;
  cfg.n_pes = 2;
  cfg.abort = &token;
  auto r = lol::run_source("HAI 1.2\nVISIBLE ME\nKTHXBYE\n", cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.first_error().find("aborted before launch"), std::string::npos);
}

TEST(Engine, AbortTokenKillsSpinningRunOnBothBackends) {
  // An unlimited-step spin evades the step budget; the external token is
  // the only way to stop it (this is the service's deadline/cancel path).
  for (Backend b : {Backend::kInterp, Backend::kVm}) {
    lol::AbortToken token;
    RunConfig cfg;
    cfg.backend = b;
    cfg.n_pes = 2;
    cfg.abort = &token;
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      token.request();
    });
    auto r = lol::run_source(
        "HAI 1.2\nIM IN YR forever\nIM OUTTA YR forever\nKTHXBYE\n", cfg);
    killer.join();
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.aborted);
    EXPECT_FALSE(r.step_limited);
    EXPECT_NE(r.first_error().find("SPMD aborted"), std::string::npos)
        << r.first_error();
  }
}

TEST(Engine, AbortTokenWakesBarrierWaiters) {
  // PE 0 waits in HUGZ; PE 1 exits immediately — a wedged barrier no
  // step budget can see. The token must wake and kill the waiter.
  lol::AbortToken token;
  RunConfig cfg;
  cfg.n_pes = 2;
  cfg.abort = &token;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.request();
  });
  auto r = lol::run_source(
      "HAI 1.2\nBOTH SAEM ME AN 0, O RLY?\nYA RLY\n  HUGZ\nOIC\nKTHXBYE\n",
      cfg);
  killer.join();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.aborted);
}

TEST(Engine, VmChunkIsCompiledOncePerCompiledProgram) {
  auto prog = lol::compile("HAI 1.2\nVISIBLE ME\nKTHXBYE\n");
  ASSERT_NE(prog.vm_slot, nullptr);
  EXPECT_EQ(prog.vm_slot->chunk, nullptr) << "chunk built before any run";

  RunConfig cfg;
  cfg.backend = lol::Backend::kVm;
  ASSERT_TRUE(lol::run(prog, cfg).ok);
  auto first = prog.vm_slot->chunk;
  ASSERT_NE(first, nullptr) << "first VM run must memoize the chunk";

  ASSERT_TRUE(lol::run(prog, cfg).ok);
  EXPECT_EQ(prog.vm_slot->chunk.get(), first.get())
      << "warm run recompiled the bytecode";
}

TEST(Engine, ExecutorKindsProduceIdenticalResults) {
  auto prog = lol::compile(
      "HAI 1.2\nVISIBLE \"PE \" ME \" OF \" MAH FRENZ\nKTHXBYE\n");
  lol::RunResult ref;
  bool have_ref = false;
  for (auto kind : {lol::shmem::ExecutorKind::kThread,
                    lol::shmem::ExecutorKind::kPool,
                    lol::shmem::ExecutorKind::kFiber}) {
    RunConfig cfg;
    cfg.n_pes = 8;
    cfg.executor = kind;
    auto r = lol::run(prog, cfg);
    ASSERT_TRUE(r.ok) << lol::shmem::to_string(kind) << ": "
                      << r.first_error();
    if (!have_ref) {
      ref = std::move(r);
      have_ref = true;
    } else {
      EXPECT_EQ(r.pe_output, ref.pe_output) << lol::shmem::to_string(kind);
    }
  }
}

}  // namespace

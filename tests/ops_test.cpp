// Operator semantics tests (shared by every backend): numeric promotion,
// YARN coercion, error conditions, boolean/variadic operators.
#include <gtest/gtest.h>

#include "rt/ops.hpp"

namespace {

using lol::ast::BinOp;
using lol::ast::NaryOp;
using lol::ast::UnOp;
using lol::rt::op_binary;
using lol::rt::op_nary;
using lol::rt::op_unary;
using lol::rt::Value;
using lol::support::RuntimeError;

TEST(BinaryOps, IntegerMathStaysInteger) {
  EXPECT_EQ(op_binary(BinOp::kSum, Value::numbr(2), Value::numbr(3)),
            Value::numbr(5));
  EXPECT_EQ(op_binary(BinOp::kDiff, Value::numbr(2), Value::numbr(3)),
            Value::numbr(-1));
  EXPECT_EQ(op_binary(BinOp::kProdukt, Value::numbr(4), Value::numbr(3)),
            Value::numbr(12));
  EXPECT_EQ(op_binary(BinOp::kQuoshunt, Value::numbr(7), Value::numbr(2)),
            Value::numbr(3));  // integer division
  EXPECT_EQ(op_binary(BinOp::kMod, Value::numbr(7), Value::numbr(3)),
            Value::numbr(1));
}

TEST(BinaryOps, FloatContaminates) {
  Value r = op_binary(BinOp::kSum, Value::numbr(2), Value::numbar(0.5));
  ASSERT_TRUE(r.is_numbar());
  EXPECT_DOUBLE_EQ(r.numbar_raw(), 2.5);
  r = op_binary(BinOp::kQuoshunt, Value::numbar(7.0), Value::numbr(2));
  EXPECT_DOUBLE_EQ(r.numbar_raw(), 3.5);  // float division
}

TEST(BinaryOps, YarnsCoerceToNumbers) {
  EXPECT_EQ(op_binary(BinOp::kSum, Value::yarn("2"), Value::yarn("3")),
            Value::numbr(5));
  Value r = op_binary(BinOp::kSum, Value::yarn("2.5"), Value::numbr(1));
  ASSERT_TRUE(r.is_numbar());
  EXPECT_DOUBLE_EQ(r.numbar_raw(), 3.5);
}

TEST(BinaryOps, NonNumericYarnIsError) {
  EXPECT_THROW(op_binary(BinOp::kSum, Value::yarn("x"), Value::numbr(1)),
               RuntimeError);
}

TEST(BinaryOps, TroofAndNoobInMathAreErrors) {
  EXPECT_THROW(op_binary(BinOp::kSum, Value::troof(true), Value::numbr(1)),
               RuntimeError);
  EXPECT_THROW(op_binary(BinOp::kProdukt, Value::noob(), Value::numbr(1)),
               RuntimeError);
}

TEST(BinaryOps, DivisionByZero) {
  EXPECT_THROW(op_binary(BinOp::kQuoshunt, Value::numbr(1), Value::numbr(0)),
               RuntimeError);
  EXPECT_THROW(op_binary(BinOp::kMod, Value::numbr(1), Value::numbr(0)),
               RuntimeError);
  EXPECT_THROW(
      op_binary(BinOp::kQuoshunt, Value::numbar(1.0), Value::numbar(0.0)),
      RuntimeError);
}

TEST(BinaryOps, BiggrSmallrAreMaxMin) {
  EXPECT_EQ(op_binary(BinOp::kBiggr, Value::numbr(2), Value::numbr(5)),
            Value::numbr(5));
  EXPECT_EQ(op_binary(BinOp::kSmallr, Value::numbr(2), Value::numbr(5)),
            Value::numbr(2));
  Value r = op_binary(BinOp::kBiggr, Value::numbar(2.5), Value::numbr(2));
  EXPECT_DOUBLE_EQ(r.numbar_raw(), 2.5);
}

TEST(BinaryOps, PaperComparisons) {
  // Paper Table I: BIGGER / SMALLR as strict comparisons -> TROOF.
  EXPECT_EQ(op_binary(BinOp::kBigger, Value::numbr(3), Value::numbr(2)),
            Value::troof(true));
  EXPECT_EQ(op_binary(BinOp::kBigger, Value::numbr(2), Value::numbr(2)),
            Value::troof(false));
  EXPECT_EQ(op_binary(BinOp::kSmallrCmp, Value::numbr(1), Value::numbr(2)),
            Value::troof(true));
  EXPECT_EQ(
      op_binary(BinOp::kSmallrCmp, Value::numbar(1.5), Value::numbr(1)),
      Value::troof(false));
}

TEST(BinaryOps, EqualityOperators) {
  EXPECT_EQ(op_binary(BinOp::kBothSaem, Value::numbr(3), Value::numbar(3.0)),
            Value::troof(true));
  EXPECT_EQ(op_binary(BinOp::kDiffrint, Value::numbr(3), Value::numbr(3)),
            Value::troof(false));
  EXPECT_EQ(
      op_binary(BinOp::kBothSaem, Value::yarn("3"), Value::numbr(3)),
      Value::troof(false));  // no implicit cast in equality
}

TEST(BinaryOps, BooleanOperators) {
  Value win = Value::troof(true);
  Value fail = Value::troof(false);
  EXPECT_EQ(op_binary(BinOp::kBothOf, win, fail), Value::troof(false));
  EXPECT_EQ(op_binary(BinOp::kEitherOf, win, fail), Value::troof(true));
  EXPECT_EQ(op_binary(BinOp::kWonOf, win, fail), Value::troof(true));
  EXPECT_EQ(op_binary(BinOp::kWonOf, win, win), Value::troof(false));
  // Truthiness coercion applies to any type.
  EXPECT_EQ(op_binary(BinOp::kBothOf, Value::numbr(1), Value::yarn("x")),
            Value::troof(true));
  EXPECT_EQ(op_binary(BinOp::kBothOf, Value::numbr(1), Value::noob()),
            Value::troof(false));
}

TEST(UnaryOps, Not) {
  EXPECT_EQ(op_unary(UnOp::kNot, Value::troof(true)), Value::troof(false));
  EXPECT_EQ(op_unary(UnOp::kNot, Value::numbr(0)), Value::troof(true));
  EXPECT_EQ(op_unary(UnOp::kNot, Value::yarn("")), Value::troof(true));
}

TEST(UnaryOps, PaperTable3Extensions) {
  // SQUAR OF = x*x (keeps integer-ness); UNSQUAR OF = sqrt; FLIP OF = 1/x.
  EXPECT_EQ(op_unary(UnOp::kSquar, Value::numbr(5)), Value::numbr(25));
  Value sq = op_unary(UnOp::kSquar, Value::numbar(1.5));
  EXPECT_DOUBLE_EQ(sq.numbar_raw(), 2.25);
  Value root = op_unary(UnOp::kUnsquar, Value::numbr(16));
  ASSERT_TRUE(root.is_numbar());
  EXPECT_DOUBLE_EQ(root.numbar_raw(), 4.0);
  Value flip = op_unary(UnOp::kFlip, Value::numbr(4));
  EXPECT_DOUBLE_EQ(flip.numbar_raw(), 0.25);
}

TEST(UnaryOps, MathExtensionErrors) {
  EXPECT_THROW(op_unary(UnOp::kUnsquar, Value::numbr(-1)), RuntimeError);
  EXPECT_THROW(op_unary(UnOp::kFlip, Value::numbr(0)), RuntimeError);
  EXPECT_THROW(op_unary(UnOp::kSquar, Value::troof(true)), RuntimeError);
}

TEST(NaryOps, AllAnySmoosh) {
  std::vector<Value> all_true = {Value::troof(true), Value::numbr(1),
                                 Value::yarn("x")};
  std::vector<Value> one_false = {Value::troof(true), Value::numbr(0)};
  EXPECT_EQ(op_nary(NaryOp::kAllOf, all_true), Value::troof(true));
  EXPECT_EQ(op_nary(NaryOp::kAllOf, one_false), Value::troof(false));
  EXPECT_EQ(op_nary(NaryOp::kAnyOf, one_false), Value::troof(true));
  std::vector<Value> all_false = {Value::numbr(0), Value::yarn("")};
  EXPECT_EQ(op_nary(NaryOp::kAnyOf, all_false), Value::troof(false));

  std::vector<Value> parts = {Value::yarn("x="), Value::numbr(3),
                              Value::yarn(" y="), Value::numbar(1.5)};
  EXPECT_EQ(op_nary(NaryOp::kSmoosh, parts), Value::yarn("x=3 y=1.50"));
}

// Property sweep: SUM/PRODUKT commute, DIFF anti-commutes, BIGGR/SMALLR
// bracket their operands, SQUAR matches PRODUKT of self.
class ArithProperties
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(ArithProperties, AlgebraicIdentities) {
  auto [a, b] = GetParam();
  Value va = Value::numbr(a);
  Value vb = Value::numbr(b);
  EXPECT_EQ(op_binary(BinOp::kSum, va, vb), op_binary(BinOp::kSum, vb, va));
  EXPECT_EQ(op_binary(BinOp::kProdukt, va, vb),
            op_binary(BinOp::kProdukt, vb, va));
  Value d1 = op_binary(BinOp::kDiff, va, vb);
  Value d2 = op_binary(BinOp::kDiff, vb, va);
  EXPECT_EQ(d1.numbr_raw(), -d2.numbr_raw());
  Value mx = op_binary(BinOp::kBiggr, va, vb);
  Value mn = op_binary(BinOp::kSmallr, va, vb);
  EXPECT_GE(mx.numbr_raw(), mn.numbr_raw());
  EXPECT_EQ(op_unary(UnOp::kSquar, va),
            op_binary(BinOp::kProdukt, va, va));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ArithProperties,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 0},
                      std::pair<std::int64_t, std::int64_t>{1, 2},
                      std::pair<std::int64_t, std::int64_t>{-5, 3},
                      std::pair<std::int64_t, std::int64_t>{100, -100},
                      std::pair<std::int64_t, std::int64_t>{7, 7},
                      std::pair<std::int64_t, std::int64_t>{-1, -9}));

// FLIP OF FLIP OF x ~= x for nonzero x.
class FlipProperties : public ::testing::TestWithParam<double> {};

TEST_P(FlipProperties, DoubleFlipIsIdentity) {
  Value v = Value::numbar(GetParam());
  Value ff = op_unary(UnOp::kFlip, op_unary(UnOp::kFlip, v));
  EXPECT_NEAR(ff.numbar_raw(), GetParam(), 1e-12 * std::abs(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(NonZero, FlipProperties,
                         ::testing::Values(1.0, -2.0, 0.5, 123.456, -0.125));

}  // namespace

// Interpreter semantics tests: whole programs on one PE via the public
// API. Parallel behaviour is covered in parallel_test.cpp.
#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;
using lol::RunResult;
using lol::run_source;

/// Runs `body` (wrapped in HAI/KTHXBYE) on one PE; returns PE 0 stdout.
std::string out1(const std::string& body,
                 std::vector<std::string> stdin_lines = {}) {
  RunConfig cfg;
  cfg.n_pes = 1;
  cfg.backend = Backend::kInterp;
  cfg.stdin_lines = std::move(stdin_lines);
  RunResult r = run_source("HAI 1.2\n" + body + "KTHXBYE\n", cfg);
  EXPECT_TRUE(r.ok) << r.first_error();
  return r.pe_output.empty() ? "" : r.pe_output[0];
}

/// Runs and returns the first error string (empty when the program ran).
std::string err1(const std::string& body) {
  RunConfig cfg;
  cfg.n_pes = 1;
  cfg.backend = Backend::kInterp;
  RunResult r = run_source("HAI 1.2\n" + body + "KTHXBYE\n", cfg);
  return r.first_error();
}

TEST(Interp, VisibleBasics) {
  EXPECT_EQ(out1("VISIBLE \"HAI WORLD!\"\n"), "HAI WORLD!\n");
  EXPECT_EQ(out1("VISIBLE 42\n"), "42\n");
  EXPECT_EQ(out1("VISIBLE 3.14159\n"), "3.14\n");
  EXPECT_EQ(out1("VISIBLE WIN\n"), "WIN\n");
  EXPECT_EQ(out1("VISIBLE \"a\" \"b\" 1\n"), "ab1\n");
  EXPECT_EQ(out1("VISIBLE \"no newline\"!\n"), "no newline");
}

TEST(Interp, InvisibleGoesToStderr) {
  RunConfig cfg;
  cfg.n_pes = 1;
  auto r = run_source("HAI 1.2\nINVISIBLE \"oops\"\nKTHXBYE\n", cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.pe_output[0], "");
  EXPECT_EQ(r.pe_errout[0], "oops\n");
}

TEST(Interp, VariablesAndAssignment) {
  EXPECT_EQ(out1("I HAS A x ITZ 5\nVISIBLE x\n"), "5\n");
  EXPECT_EQ(out1("I HAS A x\nx R \"later\"\nVISIBLE x\n"), "later\n");
  EXPECT_EQ(out1("I HAS A x ITZ 1\nI HAS A y ITZ x\nx R 2\nVISIBLE y\n"),
            "1\n");
}

TEST(Interp, UndeclaredVariableIsRuntimeError) {
  EXPECT_NE(err1("VISIBLE nope\n").find("has not been declared"),
            std::string::npos);
  EXPECT_NE(err1("nope R 1\n").find("has not been declared"),
            std::string::npos);
}

TEST(Interp, RedeclareInSameScopeIsError) {
  EXPECT_NE(err1("I HAS A x\nI HAS A x\n").find("already declared"),
            std::string::npos);
}

TEST(Interp, TypedDeclarationsZeroInitialize) {
  EXPECT_EQ(out1("I HAS A n ITZ A NUMBR\nVISIBLE n\n"), "0\n");
  EXPECT_EQ(out1("I HAS A f ITZ A NUMBAR\nVISIBLE f\n"), "0.00\n");
  EXPECT_EQ(out1("I HAS A t ITZ A TROOF\nVISIBLE t\n"), "FAIL\n");
  EXPECT_EQ(out1("I HAS A s ITZ A YARN\nVISIBLE SMOOSH \"[\" s \"]\" MKAY\n"),
            "[]\n");
}

TEST(Interp, SrslyStaticTypingCoercesAssignments) {
  // Paper: static typing as a transition to a compiled language.
  EXPECT_EQ(out1("I HAS A x ITZ SRSLY A NUMBR\nx R \"42\"\nVISIBLE x\n"),
            "42\n");
  EXPECT_EQ(out1("I HAS A x ITZ SRSLY A NUMBAR AN ITZ 0.001\nVISIBLE x\n"),
            "0.00\n");
  // Assigning a non-numeric YARN to a SRSLY NUMBR errors.
  EXPECT_NE(err1("I HAS A x ITZ SRSLY A NUMBR\nx R \"nah\"\n")
                .find("cannot cast"),
            std::string::npos);
}

TEST(Interp, ItAndBareExpressions) {
  EXPECT_EQ(out1("SUM OF 1 AN 2\nVISIBLE IT\n"), "3\n");
  EXPECT_EQ(out1("IT R 9\nVISIBLE IT\n"), "9\n");
}

TEST(Interp, OrlyBranches) {
  std::string prog =
      "BOTH SAEM x AN 1, O RLY?\n"
      "YA RLY\n  VISIBLE \"one\"\n"
      "MEBBE BOTH SAEM x AN 2\n  VISIBLE \"two\"\n"
      "NO WAI\n  VISIBLE \"many\"\n"
      "OIC\n";
  EXPECT_EQ(out1("I HAS A x ITZ 1\n" + prog), "one\n");
  EXPECT_EQ(out1("I HAS A x ITZ 2\n" + prog), "two\n");
  EXPECT_EQ(out1("I HAS A x ITZ 3\n" + prog), "many\n");
}

TEST(Interp, OrlyWithoutElse) {
  EXPECT_EQ(out1("FAIL, O RLY?\nYA RLY\n  VISIBLE \"yes\"\nOIC\n"
                 "VISIBLE \"after\"\n"),
            "after\n");
}

TEST(Interp, WtfSwitchWithFallthroughAndBreak) {
  std::string prog =
      "x, WTF?\n"
      "OMG 1\n  VISIBLE \"one\"\n  GTFO\n"
      "OMG 2\n  VISIBLE \"two\"\n"
      "OMG 3\n  VISIBLE \"three\"\n  GTFO\n"
      "OMGWTF\n  VISIBLE \"other\"\n"
      "OIC\n";
  EXPECT_EQ(out1("I HAS A x ITZ 1\n" + prog), "one\n");
  // Case 2 falls through into case 3.
  EXPECT_EQ(out1("I HAS A x ITZ 2\n" + prog), "two\nthree\n");
  EXPECT_EQ(out1("I HAS A x ITZ 9\n" + prog), "other\n");
}

TEST(Interp, WtfComparesWithSaem) {
  // YARN "1" does not match NUMBR 1.
  std::string prog =
      "x, WTF?\nOMG 1\n  VISIBLE \"num\"\n  GTFO\n"
      "OMG \"1\"\n  VISIBLE \"yarn\"\n  GTFO\nOIC\n";
  EXPECT_EQ(out1("I HAS A x ITZ \"1\"\n" + prog), "yarn\n");
}

TEST(Interp, LoopUppinTil) {
  EXPECT_EQ(out1("IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 3\n"
                 "  VISIBLE i\n"
                 "IM OUTTA YR loop\n"),
            "0\n1\n2\n");
}

TEST(Interp, LoopNerfinWile) {
  EXPECT_EQ(out1("I HAS A k ITZ 3\n"
                 "IM IN YR loop NERFIN YR i WILE BIGGER SUM OF i AN k AN 0\n"
                 "  VISIBLE i\n"
                 "IM OUTTA YR loop\n"),
            "0\n-1\n-2\n");
}

TEST(Interp, InfiniteLoopWithGtfo) {
  EXPECT_EQ(out1("I HAS A n ITZ 0\n"
                 "IM IN YR loop\n"
                 "  n R SUM OF n AN 1\n"
                 "  BOTH SAEM n AN 4, O RLY?\n"
                 "  YA RLY\n    GTFO\n  OIC\n"
                 "IM OUTTA YR loop\n"
                 "VISIBLE n\n"),
            "4\n");
}

TEST(Interp, LoopFuncUpdate) {
  EXPECT_EQ(out1("HOW IZ I doublin YR x\n"
                 "  FOUND YR PRODUKT OF BIGGR OF x AN 1 AN 2\n"
                 "IF U SAY SO\n"
                 "IM IN YR loop doublin YR i TIL BIGGER i AN 10\n"
                 "  VISIBLE i\n"
                 "IM OUTTA YR loop\n"),
            "0\n2\n4\n8\n");
}

TEST(Interp, LoopVariableIsScopedToLoop) {
  EXPECT_NE(
      err1("IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 2\n  VISIBLE i\n"
           "IM OUTTA YR l\nVISIBLE i\n")
          .find("has not been declared"),
      std::string::npos);
}

TEST(Interp, NestedLoopsWithSameLabel) {
  EXPECT_EQ(out1("IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 2\n"
                 "  IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 2\n"
                 "    VISIBLE SMOOSH i j MKAY\n"
                 "  IM OUTTA YR loop\n"
                 "IM OUTTA YR loop\n"),
            "00\n01\n10\n11\n");
}

TEST(Interp, FunctionsReturnValues) {
  EXPECT_EQ(out1("HOW IZ I addtwo YR a AN YR b\n"
                 "  FOUND YR SUM OF a AN b\n"
                 "IF U SAY SO\n"
                 "VISIBLE I IZ addtwo YR 40 AN YR 2 MKAY\n"),
            "42\n");
}

TEST(Interp, FunctionGtfoReturnsNoob) {
  EXPECT_EQ(out1("HOW IZ I nuffin\n  GTFO\nIF U SAY SO\n"
                 "I HAS A r ITZ I IZ nuffin MKAY\n"
                 "BOTH SAEM r AN NOOB, O RLY?\n"
                 "YA RLY\n  VISIBLE \"noob\"\nOIC\n"),
            "noob\n");
}

TEST(Interp, FunctionImplicitReturnIsIt) {
  EXPECT_EQ(out1("HOW IZ I implicit\n  SUM OF 20 AN 1\nIF U SAY SO\n"
                 "VISIBLE I IZ implicit MKAY\n"),
            "21\n");
}

TEST(Interp, FunctionsSeeGlobals) {
  EXPECT_EQ(out1("I HAS A g ITZ 7\n"
                 "HOW IZ I readg\n  FOUND YR g\nIF U SAY SO\n"
                 "VISIBLE I IZ readg MKAY\n"),
            "7\n");
}

TEST(Interp, FunctionLocalsDontLeak) {
  EXPECT_NE(err1("HOW IZ I f\n  I HAS A secret ITZ 1\n  GTFO\nIF U SAY SO\n"
                 "I IZ f MKAY\nVISIBLE secret\n")
                .find("has not been declared"),
            std::string::npos);
}

TEST(Interp, Recursion) {
  EXPECT_EQ(out1("HOW IZ I fac YR n\n"
                 "  BOTH SAEM n AN 0, O RLY?\n"
                 "  YA RLY\n    FOUND YR 1\n"
                 "  OIC\n"
                 "  FOUND YR PRODUKT OF n AN I IZ fac YR DIFF OF n AN 1 "
                 "MKAY\n"
                 "IF U SAY SO\n"
                 "VISIBLE I IZ fac YR 10 MKAY\n"),
            "3628800\n");
}

TEST(Interp, RunawayRecursionIsCaught) {
  EXPECT_NE(err1("HOW IZ I f YR n\n  FOUND YR I IZ f YR n MKAY\n"
                 "IF U SAY SO\nI IZ f YR 1 MKAY\n")
                .find("call depth exceeded"),
            std::string::npos);
}

TEST(Interp, PrivateArrays) {
  EXPECT_EQ(out1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
                 "a'Z 0 R 10\na'Z 3 R 13\n"
                 "VISIBLE a'Z 0\nVISIBLE a'Z 1\nVISIBLE a'Z 3\n"),
            "10\n0\n13\n");
}

TEST(Interp, ArrayIndexExpressions) {
  EXPECT_EQ(out1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 4\n"
                 "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\n"
                 "  a'Z i R PRODUKT OF i AN i\n"
                 "IM OUTTA YR l\n"
                 "VISIBLE a'Z SUM OF 1 AN 2\n"),
            "9\n");
}

TEST(Interp, ArrayBoundsChecked) {
  EXPECT_NE(err1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\nVISIBLE a'Z 5\n")
                .find("out of bounds"),
            std::string::npos);
  EXPECT_NE(
      err1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\na'Z -1 R 0\n")
          .find("out of bounds"),
      std::string::npos);
}

TEST(Interp, SrslyArraysCoerceElements) {
  EXPECT_EQ(out1("I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 2\n"
                 "a'Z 0 R 7\nVISIBLE a'Z 0\n"),
            "7.00\n");
}

TEST(Interp, ArrayAsScalarIsError) {
  EXPECT_NE(err1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\nVISIBLE a\n")
                .find("index it with 'Z"),
            std::string::npos);
  EXPECT_NE(err1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\na R 1\n")
                .find("index it with 'Z"),
            std::string::npos);
}

TEST(Interp, WholeArrayCopyPrivate) {
  EXPECT_EQ(out1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 3\n"
                 "I HAS A b ITZ LOTZ A NUMBRS AN THAR IZ 3\n"
                 "a'Z 1 R 42\n"
                 "b R a\n"
                 "VISIBLE b'Z 1\n"),
            "42\n");
  EXPECT_NE(err1("I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 3\n"
                 "I HAS A b ITZ LOTZ A NUMBRS AN THAR IZ 2\nb R a\n")
                .find("size mismatch"),
            std::string::npos);
}

TEST(Interp, MaekAndIsNowA) {
  EXPECT_EQ(out1("VISIBLE MAEK \"3.5\" A NUMBAR\n"), "3.50\n");
  EXPECT_EQ(out1("I HAS A x ITZ 42\nx IS NOW A YARN\n"
                 "VISIBLE SMOOSH x \"!\" MKAY\n"),
            "42!\n");
  EXPECT_EQ(out1("VISIBLE MAEK NOOB A NUMBR\n"), "0\n");
}

TEST(Interp, SrsIndirection) {
  EXPECT_EQ(out1("I HAS A cat ITZ 9\nI HAS A name ITZ \"cat\"\n"
                 "VISIBLE SRS name\n"),
            "9\n");
  EXPECT_EQ(out1("I HAS A cat ITZ 0\nI HAS A name ITZ \"cat\"\n"
                 "SRS name R 5\nVISIBLE cat\n"),
            "5\n");
}

TEST(Interp, YarnInterpolation) {
  EXPECT_EQ(out1("I HAS A who ITZ \"WORLD\"\nVISIBLE \"HAI :{who}!\"\n"),
            "HAI WORLD!\n");
  EXPECT_EQ(out1("I HAS A n ITZ 3.5\nVISIBLE \"n=:{n}\"\n"), "n=3.50\n");
  EXPECT_NE(err1("VISIBLE \":{ghost}\"\n").find("has not been declared"),
            std::string::npos);
}

TEST(Interp, GimmehReadsLines) {
  EXPECT_EQ(out1("I HAS A x\nGIMMEH x\nVISIBLE SMOOSH \">\" x MKAY\n",
                 {"hello"}),
            ">hello\n");
  // EOF yields an empty YARN.
  EXPECT_EQ(out1("I HAS A x\nGIMMEH x\nVISIBLE SMOOSH \"[\" x \"]\" MKAY\n"),
            "[]\n");
  // GIMMEH into an array element.
  EXPECT_EQ(out1("I HAS A a ITZ LOTZ A YARNS AN THAR IZ 2\nGIMMEH a'Z 1\n"
                 "VISIBLE a'Z 1\n",
                 {"row"}),
            "row\n");
}

TEST(Interp, CanHasIsNoOp) {
  EXPECT_EQ(out1("CAN HAS STDIO?\nVISIBLE \"ok\"\n"), "ok\n");
}

TEST(Interp, WhatevrIsDeterministicPerSeed) {
  RunConfig cfg;
  cfg.n_pes = 1;
  cfg.seed = 7;
  auto r1 = run_source("HAI 1.2\nVISIBLE WHATEVR\nVISIBLE WHATEVAR\nKTHXBYE\n",
                       cfg);
  auto r2 = run_source("HAI 1.2\nVISIBLE WHATEVR\nVISIBLE WHATEVAR\nKTHXBYE\n",
                       cfg);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.pe_output[0], r2.pe_output[0]);
  cfg.seed = 8;
  auto r3 = run_source("HAI 1.2\nVISIBLE WHATEVR\nVISIBLE WHATEVAR\nKTHXBYE\n",
                       cfg);
  ASSERT_TRUE(r3.ok);
  EXPECT_NE(r1.pe_output[0], r3.pe_output[0]);
}

TEST(Interp, ConditionalScopesDropDeclarations) {
  EXPECT_NE(err1("WIN, O RLY?\nYA RLY\n  I HAS A tmp ITZ 1\nOIC\n"
                 "VISIBLE tmp\n")
                .find("has not been declared"),
            std::string::npos);
}

TEST(Interp, MathErrorsCarryMessages) {
  EXPECT_NE(err1("VISIBLE QUOSHUNT OF 1 AN 0\n").find("division by zero"),
            std::string::npos);
  EXPECT_NE(err1("VISIBLE UNSQUAR OF -4\n").find("negative"),
            std::string::npos);
  EXPECT_NE(err1("VISIBLE FLIP OF 0\n").find("reciprocal of zero"),
            std::string::npos);
  EXPECT_NE(err1("VISIBLE SUM OF WIN AN 1\n").find("TROOF"),
            std::string::npos);
}

// Single-PE sanity for the parallel leaves: ME is 0, MAH FRENZ is 1, and
// locks work uncontended.
TEST(Interp, ParallelLeavesOnOnePe) {
  EXPECT_EQ(out1("VISIBLE ME\nVISIBLE MAH FRENZ\n"), "0\n1\n");
  EXPECT_EQ(out1("WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
                 "IM SRSLY MESIN WIF x\nx R 5\nDUN MESIN WIF x\n"
                 "VISIBLE x\n"),
            "5\n");
}

TEST(Interp, UrOutsidePredicationIsError) {
  EXPECT_NE(err1("WE HAS A x ITZ SRSLY A NUMBR\nVISIBLE UR x\n")
                .find("outside TXT MAH BFF"),
            std::string::npos);
}

TEST(Interp, UrOnPrivateVariableIsError) {
  EXPECT_NE(err1("I HAS A x ITZ 1\nTXT MAH BFF 0, VISIBLE UR x\n")
                .find("requires a symmetric variable"),
            std::string::npos);
}

TEST(Interp, LockOnUnsharedVariableIsError) {
  EXPECT_NE(err1("WE HAS A x ITZ SRSLY A NUMBR\nIM SRSLY MESIN WIF x\n")
                .find("no lock"),
            std::string::npos);
}

TEST(Interp, TrylockSetsIt) {
  EXPECT_EQ(out1("WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
                 "IM MESIN WIF x\n"
                 "IT, O RLY?\nYA RLY\n  VISIBLE \"got it\"\nOIC\n"
                 "DUN MESIN WIF x\n"),
            "got it\n");
}

}  // namespace

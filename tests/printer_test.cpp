// Pretty-printer property tests: to_lolcode() output re-parses to a
// structurally identical AST (dump equality) over a program corpus, and
// printing is stable (printing the re-parse prints the same text).
#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "core/paper_programs.hpp"
#include "parse/parser.hpp"

namespace {

void expect_round_trip(const std::string& src) {
  auto p1 = lol::parse::parse_program(src);
  std::string printed = lol::ast::to_lolcode(p1);
  auto p2 = lol::parse::parse_program(printed);
  EXPECT_EQ(lol::ast::dump(p1), lol::ast::dump(p2)) << printed;
  // Fixed point: printing the reparse yields the same text.
  EXPECT_EQ(printed, lol::ast::to_lolcode(p2));
}

class PrinterCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterCorpus, RoundTrips) {
  expect_round_trip(std::string("HAI 1.2\n") + GetParam() + "KTHXBYE\n");
}

INSTANTIATE_TEST_SUITE_P(
    Programs, PrinterCorpus,
    ::testing::Values(
        "",
        "VISIBLE \"HAI\"\n",
        "VISIBLE \"x\" 1 2.5!\n",
        "I HAS A x\n",
        "I HAS A x ITZ 5\n",
        "I HAS A x ITZ A NUMBR AN ITZ ME\n",
        "I HAS A x ITZ SRSLY A NUMBAR AN ITZ 0.001\n",
        "I HAS A a ITZ LOTZ A YARNS AN THAR IZ 4\n",
        "WE HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN "
        "IT\n",
        "x R SUM OF 1 AN 2\nI HAS A x\n",
        "I HAS A a ITZ LOTZ A NUMBRS AN THAR IZ 2\na'Z 0 R a'Z 1\n",
        "SUM OF 1 AN 1\nO RLY?\nYA RLY\n  VISIBLE 1\nMEBBE FAIL\n"
        "  VISIBLE 2\nNO WAI\n  VISIBLE 3\nOIC\n",
        "1, WTF?\nOMG 1\n  GTFO\nOMGWTF\n  VISIBLE 0\nOIC\n",
        "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\n  VISIBLE i\n"
        "IM OUTTA YR l\n",
        "IM IN YR l NERFIN YR i WILE BIGGER i AN -3\n  VISIBLE i\n"
        "IM OUTTA YR l\n",
        "IM IN YR l\n  GTFO\nIM OUTTA YR l\n",
        "HOW IZ I f YR a AN YR b\n  FOUND YR SUM OF a AN b\nIF U SAY SO\n"
        "VISIBLE I IZ f YR 1 AN YR 2 MKAY\n",
        "CAN HAS STDIO?\nGIMMEH x\nI HAS A x\n",
        "I HAS A x ITZ 1\nx IS NOW A YARN\n",
        "I HAS A x ITZ 1\nVISIBLE MAEK x A TROOF\n",
        "I HAS A n ITZ \"x\"\nI HAS A x\nSRS n R 5\nVISIBLE SRS n\n",
        "HUGZ\nVISIBLE ME\nVISIBLE MAH FRENZ\n",
        "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
        "IM SRSLY MESIN WIF x\nIM MESIN WIF x\nDUN MESIN WIF x\n",
        "WE HAS A x ITZ SRSLY A NUMBR\nTXT MAH BFF 0, x R UR x\n",
        "WE HAS A x ITZ SRSLY A NUMBR\nTXT MAH BFF 1 AN STUFF\n"
        "  x R UR x\n  HUGZ\nTTYL\n",
        "VISIBLE SMOOSH \"a\" AN \"b\" MKAY\n",
        "VISIBLE ALL OF WIN AN FAIL MKAY\n",
        "VISIBLE NOT SQUAR OF UNSQUAR OF FLIP OF 2\n",
        "I HAS A w ITZ \"x\"\nVISIBLE \"hai :{w} bye\"\n"));

TEST(Printer, PaperListingsRoundTrip) {
  expect_round_trip(lol::paper::ring_listing());
  expect_round_trip(lol::paper::lock_counter_listing());
  expect_round_trip(lol::paper::barrier_sum_listing());
  expect_round_trip(lol::paper::nbody_listing());
}

TEST(Printer, DumpIsStableForLiterals) {
  auto e = lol::parse::parse_expression("SUM OF 1 AN \"x:)y\"");
  EXPECT_EQ(lol::ast::dump(*e), "(sum (numbr 1) (yarn \"x\\ny\"))");
}

TEST(Printer, EscapesRegenerateInYarnSource) {
  auto p = lol::parse::parse_program(
      "HAI 1.2\nVISIBLE \"a:)b:>c:\"d::e\"\nKTHXBYE\n");
  std::string printed = lol::ast::to_lolcode(p);
  EXPECT_NE(printed.find(":)"), std::string::npos);
  EXPECT_NE(printed.find(":>"), std::string::npos);
  EXPECT_NE(printed.find("::"), std::string::npos);
}

}  // namespace

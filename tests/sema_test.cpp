// Semantic analysis tests: function table, symmetric registry, placement
// and legality rules.
#include <gtest/gtest.h>

#include "parse/parser.hpp"
#include "sema/analyzer.hpp"

namespace {

using lol::parse::parse_program;
using lol::sema::analyze;
using lol::support::SemaError;

lol::sema::Analysis analyze_src(const std::string& body) {
  static std::vector<std::unique_ptr<lol::ast::Program>> keep_alive;
  keep_alive.push_back(std::make_unique<lol::ast::Program>(
      parse_program("HAI 1.2\n" + body + "KTHXBYE\n")));
  return analyze(*keep_alive.back());
}

void expect_sema_error(const std::string& body) {
  lol::ast::Program p = parse_program("HAI 1.2\n" + body + "KTHXBYE\n");
  EXPECT_THROW(analyze(p), SemaError) << body;
}

TEST(Sema, CollectsFunctions) {
  auto a = analyze_src(
      "HOW IZ I foo YR x\n  FOUND YR x\nIF U SAY SO\n"
      "HOW IZ I bar\n  FOUND YR 1\nIF U SAY SO\n");
  EXPECT_EQ(a.functions.size(), 2u);
  EXPECT_TRUE(a.functions.count("foo"));
  EXPECT_EQ(a.functions.at("foo").def->params.size(), 1u);
}

TEST(Sema, CallsMayPrecedeDefinition) {
  EXPECT_NO_THROW(analyze_src(
      "I HAS A r ITZ I IZ later YR 1 MKAY\n"
      "HOW IZ I later YR x\n  FOUND YR x\nIF U SAY SO\n"));
}

TEST(Sema, DuplicateFunctionIsError) {
  expect_sema_error(
      "HOW IZ I f\n  GTFO\nIF U SAY SO\n"
      "HOW IZ I f\n  GTFO\nIF U SAY SO\n");
}

TEST(Sema, DuplicateParamIsError) {
  expect_sema_error("HOW IZ I f YR a AN YR a\n  GTFO\nIF U SAY SO\n");
}

TEST(Sema, UnknownCallIsError) {
  expect_sema_error("I HAS A x ITZ I IZ nah MKAY\n");
}

TEST(Sema, ArityMismatchIsError) {
  expect_sema_error(
      "HOW IZ I f YR a\n  FOUND YR a\nIF U SAY SO\n"
      "I HAS A x ITZ I IZ f YR 1 AN YR 2 MKAY\n");
}

TEST(Sema, SymmetricRegistryAssignsSlotsInOrder) {
  auto a = analyze_src(
      "WE HAS A x ITZ SRSLY A NUMBR\n"
      "WE HAS A y ITZ SRSLY A NUMBAR AN IM SHARIN IT\n"
      "WE HAS A z ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4 AN IM SHARIN IT\n");
  ASSERT_EQ(a.symmetric.size(), 3u);
  EXPECT_EQ(a.symmetric[0].slot, 0);
  EXPECT_EQ(a.symmetric[1].slot, 1);
  EXPECT_EQ(a.symmetric[2].slot, 2);
  EXPECT_EQ(a.symmetric[0].lock_id, -1);
  EXPECT_EQ(a.symmetric[1].lock_id, 0);
  EXPECT_EQ(a.symmetric[2].lock_id, 1);
  EXPECT_EQ(a.lock_count, 2);
}

TEST(Sema, SymmetricNeedsType) {
  expect_sema_error("WE HAS A x\n");
  expect_sema_error("WE HAS A x ITZ 5\n");
}

TEST(Sema, SymmetricYarnRejected) {
  expect_sema_error("WE HAS A x ITZ SRSLY A YARN\n");
}

TEST(Sema, SymmetricMustBeTopLevel) {
  expect_sema_error(
      "IM IN YR l\n  WE HAS A x ITZ SRSLY A NUMBR\n  GTFO\nIM OUTTA YR l\n");
  expect_sema_error(
      "WIN, O RLY?\nYA RLY\n  WE HAS A x ITZ SRSLY A NUMBR\nOIC\n");
  expect_sema_error(
      "HOW IZ I f\n  WE HAS A x ITZ SRSLY A NUMBR\nIF U SAY SO\n");
}

TEST(Sema, SharinRequiresSymmetric) {
  expect_sema_error("I HAS A x ITZ A NUMBR AN IM SHARIN IT\n");
}

TEST(Sema, SymmetricArrayWithInitRejected) {
  expect_sema_error(
      "WE HAS A x ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4 AN ITZ 3\n");
}

TEST(Sema, GtfoPlacement) {
  EXPECT_NO_THROW(
      analyze_src("IM IN YR l\n  GTFO\nIM OUTTA YR l\n"));
  EXPECT_NO_THROW(analyze_src(
      "WTF?\nOMG 1\n  GTFO\nOIC\n"));
  EXPECT_NO_THROW(analyze_src("HOW IZ I f\n  GTFO\nIF U SAY SO\n"));
  expect_sema_error("GTFO\n");
}

TEST(Sema, FoundYrOnlyInFunctions) {
  expect_sema_error("FOUND YR 1\n");
  EXPECT_NO_THROW(analyze_src("HOW IZ I f\n  FOUND YR 1\nIF U SAY SO\n"));
}

TEST(Sema, NestedFunctionDefRejected) {
  expect_sema_error(
      "IM IN YR l\n  HOW IZ I f\n    GTFO\n  IF U SAY SO\nIM OUTTA YR l\n");
}

TEST(Sema, LoopFuncUpdateMustExist) {
  expect_sema_error(
      "IM IN YR l doubleit YR i TIL BOTH SAEM i AN 8\n  GTFO\n"
      "IM OUTTA YR l\n");
  EXPECT_NO_THROW(analyze_src(
      "HOW IZ I doubleit YR i\n  FOUND YR PRODUKT OF i AN 2\nIF U SAY SO\n"
      "IM IN YR l doubleit YR i TIL BIGGER i AN 8\n  VISIBLE i\n"
      "IM OUTTA YR l\n"));
}

TEST(Sema, PaperNBodyDeclarationsAnalyze) {
  EXPECT_NO_THROW(analyze_src(
      "I HAS A little_time ITZ SRSLY A NUMBAR AN ITZ 0.001\n"
      "I HAS A vel_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32\n"
      "WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS ...\n"
      "  AN THAR IZ 32 AN IM SHARIN IT\n"));
}

}  // namespace

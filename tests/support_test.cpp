// Unit tests for the support layer: string utilities, diagnostics
// rendering, and the deterministic per-PE RNG.
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace ls = lol::support;

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = ls::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, JoinRoundTrips) {
  EXPECT_EQ(ls::join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(ls::join({}, ","), "");
}

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(ls::trim("  hai \t"), "hai");
  EXPECT_EQ(ls::trim(""), "");
  EXPECT_EQ(ls::trim(" \t\n "), "");
}

TEST(StringUtil, IsAllUpper) {
  EXPECT_TRUE(ls::is_all_upper("HUGZ"));
  EXPECT_FALSE(ls::is_all_upper("Hugz"));
  EXPECT_FALSE(ls::is_all_upper(""));
  EXPECT_FALSE(ls::is_all_upper("HUGZ1"));
}

TEST(StringUtil, ParseNumbr) {
  EXPECT_EQ(ls::parse_numbr("42"), 42);
  EXPECT_EQ(ls::parse_numbr("-17"), -17);
  EXPECT_EQ(ls::parse_numbr(" 7 "), 7);
  EXPECT_FALSE(ls::parse_numbr("3.5").has_value());
  EXPECT_FALSE(ls::parse_numbr("abc").has_value());
  EXPECT_FALSE(ls::parse_numbr("").has_value());
  EXPECT_FALSE(ls::parse_numbr("12x").has_value());
}

TEST(StringUtil, ParseNumbar) {
  EXPECT_DOUBLE_EQ(ls::parse_numbar("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ls::parse_numbar("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(ls::parse_numbar("42").value(), 42.0);
  EXPECT_FALSE(ls::parse_numbar("x").has_value());
  EXPECT_FALSE(ls::parse_numbar("").has_value());
}

TEST(StringUtil, FormatNumbarTwoDecimals) {
  // LOLCODE-1.2: NUMBAR -> YARN keeps two decimal places.
  EXPECT_EQ(ls::format_numbar(3.14159), "3.14");
  EXPECT_EQ(ls::format_numbar(-0.5), "-0.50");
  EXPECT_EQ(ls::format_numbar(2.0), "2.00");
}

TEST(StringUtil, CEscape) {
  EXPECT_EQ(ls::c_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ls::c_escape("line\n"), "line\\n");
  EXPECT_EQ(ls::c_escape("tab\t"), "tab\\t");
  EXPECT_EQ(ls::c_escape("back\\slash"), "back\\\\slash");
}

TEST(Diagnostics, RendersCaretAtColumn) {
  std::string src = "HAI 1.2\nI HAS A x\nKTHXBYE\n";
  ls::DiagnosticEngine diags(src, "test.lol");
  diags.error({2, 9, 0}, "boom");
  std::string rendered = diags.render();
  EXPECT_NE(rendered.find("test.lol:2:9: error: boom"), std::string::npos);
  EXPECT_NE(rendered.find("I HAS A x"), std::string::npos);
  EXPECT_NE(rendered.find("        ^"), std::string::npos);
}

TEST(Diagnostics, CountsErrorsOnly) {
  ls::DiagnosticEngine diags("x", "t");
  diags.warning({1, 1, 0}, "w");
  diags.note({1, 1, 0}, "n");
  EXPECT_FALSE(diags.has_errors());
  diags.error({1, 1, 0}, "e");
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 3u);
}

TEST(Rng, DeterministicPerSeedAndPe) {
  ls::PeRng a(42, 0);
  ls::PeRng b(42, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_numbr(), b.next_numbr());
    EXPECT_DOUBLE_EQ(a.next_numbar(), b.next_numbar());
  }
}

TEST(Rng, DistinctPesProduceDistinctStreams) {
  ls::PeRng a(42, 0);
  ls::PeRng b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_numbr() == b.next_numbr()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NumbarInUnitInterval) {
  ls::PeRng r(7, 3);
  for (int i = 0; i < 1000; ++i) {
    double v = r.next_numbar();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NumbrNonNegativeAndBelow2To31) {
  ls::PeRng r(7, 3);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.next_numbr();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, std::int64_t{1} << 31);
  }
}

// Daemon-mode tests: NDJSON over a real loopback socket — submit with
// streamed completion events, cancel by id, stats, malformed input, and
// deadline enforcement observed from outside the process.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <optional>
#include <random>
#include <string>
#include <thread>

#include "service/daemon.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace {

using lol::service::Daemon;
using lol::service::DaemonOptions;
using lol::service::Service;
using lol::service::ServiceOptions;
namespace wire = lol::service::wire;

/// A minimal NDJSON client: connect to the daemon's loopback port, send
/// request lines, read event lines with a timeout.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    std::string data = line + "\n";
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  /// Next line, or nullopt after `timeout_ms` of silence.
  std::optional<std::string> read_line(int timeout_ms = 5000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    for (;;) {
      std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr <= 0) return std::nullopt;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads lines until one whose parsed "event" matches, skipping others
  /// (submit responses can interleave with completion events).
  std::optional<wire::Json> read_event(const std::string& event,
                                       int timeout_ms = 5000) {
    for (;;) {
      auto line = read_line(timeout_ms);
      if (!line) return std::nullopt;
      auto doc = wire::parse_json(*line);
      if (!doc) continue;
      const wire::Json* e = doc->find("event");
      if (e != nullptr && e->str == event) return doc;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

struct DaemonFixture {
  DaemonFixture() : svc(make_opts()), daemon(svc, DaemonOptions{"", 0}) {
    std::string err;
    started = daemon.start(&err);
  }
  ~DaemonFixture() {
    daemon.stop();
    svc.shutdown();
  }
  static ServiceOptions make_opts() {
    ServiceOptions o;
    o.workers = 2;
    o.default_max_steps = 0;  // deadline/cancel tests need unlimited steps
    return o;
  }
  Service svc;
  Daemon daemon;
  bool started = false;
};

const char* kHelloSubmit =
    R"({"op":"submit","name":"hi","source":"HAI 1.2\nVISIBLE \"O HAI\" ME\nKTHXBYE\n","n_pes":2,"tenant":"alice"})";
const char* kSpinSubmit =
    R"({"op":"submit","name":"spin","source":"HAI 1.2\nIM IN YR l\nIM OUTTA YR l\nKTHXBYE\n","n_pes":1)";

TEST(Daemon, PingPong) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  ASSERT_TRUE(c.connected());
  c.send_line(R"({"op":"ping"})");
  auto pong = c.read_event("pong");
  ASSERT_TRUE(pong.has_value());
}

TEST(Daemon, SubmitStreamsAcceptedThenDone) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  ASSERT_TRUE(c.connected());

  c.send_line(kHelloSubmit);
  auto accepted = c.read_event("accepted");
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->find("name")->str, "hi");
  EXPECT_EQ(accepted->find("tenant")->str, "alice");
  double id = accepted->find("id")->num;
  EXPECT_GT(id, 0.0);

  auto done = c.read_event("done");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->find("id")->num, id);
  EXPECT_EQ(done->find("status")->str, "ok");
  const wire::Json* output = done->find("output");
  ASSERT_NE(output, nullptr);
  ASSERT_EQ(output->arr.size(), 2u);
  EXPECT_EQ(output->arr[0].str, "O HAI0\n");
  EXPECT_EQ(output->arr[1].str, "O HAI1\n");
}

TEST(Daemon, DeadlineExceededIsVisibleOnTheWire) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  ASSERT_TRUE(c.connected());

  c.send_line(std::string(kSpinSubmit) + R"(,"deadline_ms":200})");
  auto done = c.read_event("done");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->find("status")->str, "deadline-exceeded");
}

TEST(Daemon, CancelInFlightJobFromTheWire) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  ASSERT_TRUE(c.connected());

  c.send_line(std::string(kSpinSubmit) + "}");  // no deadline: spins forever
  auto accepted = c.read_event("accepted");
  ASSERT_TRUE(accepted.has_value());
  auto id = static_cast<std::uint64_t>(accepted->find("id")->num);

  // Wait until the worker picked it up, then cancel over the wire.
  while (fx.svc.running_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  c.send_line(R"({"op":"cancel","id":)" + std::to_string(id) + "}");
  auto cancel = c.read_event("cancel");
  ASSERT_TRUE(cancel.has_value());
  EXPECT_TRUE(cancel->find("ok")->b);

  auto done = c.read_event("done");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->find("status")->str, "cancelled");
}

TEST(Daemon, CancelIsScopedToTheSubmittingConnection) {
  // Ids are sequential, so without scoping any client could walk the id
  // space and kill other tenants' jobs.
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client owner(fx.daemon.tcp_port());
  Client attacker(fx.daemon.tcp_port());

  owner.send_line(std::string(kSpinSubmit) + "}");  // spins forever
  auto accepted = owner.read_event("accepted");
  ASSERT_TRUE(accepted.has_value());
  auto id = static_cast<std::uint64_t>(accepted->find("id")->num);
  while (fx.svc.running_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  attacker.send_line(R"({"op":"cancel","id":)" + std::to_string(id) + "}");
  auto denied = attacker.read_event("cancel");
  ASSERT_TRUE(denied.has_value());
  EXPECT_FALSE(denied->find("ok")->b);

  // The owner can still cancel its own job.
  owner.send_line(R"({"op":"cancel","id":)" + std::to_string(id) + "}");
  auto ok = owner.read_event("cancel");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->find("ok")->b);
  auto done = owner.read_event("done");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->find("status")->str, "cancelled");
}

TEST(Daemon, CancelUnknownIdReportsFalse) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  c.send_line(R"({"op":"cancel","id":99999})");
  auto cancel = c.read_event("cancel");
  ASSERT_TRUE(cancel.has_value());
  EXPECT_FALSE(cancel->find("ok")->b);
}

TEST(Daemon, MalformedLinesYieldErrorsButKeepTheConnection) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());

  c.send_line("this is not json");
  auto err1 = c.read_event("error");
  ASSERT_TRUE(err1.has_value());

  c.send_line(R"({"op":"frobnicate"})");
  auto err2 = c.read_event("error");
  ASSERT_TRUE(err2.has_value());
  EXPECT_NE(err2->find("message")->str.find("unknown op"), std::string::npos);

  c.send_line(R"({"op":"submit"})");  // missing source
  auto err3 = c.read_event("error");
  ASSERT_TRUE(err3.has_value());

  // Still alive.
  c.send_line(R"({"op":"ping"})");
  EXPECT_TRUE(c.read_event("pong").has_value());
}

TEST(Daemon, StatsReflectServedJobs) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());

  c.send_line(kHelloSubmit);
  ASSERT_TRUE(c.read_event("done").has_value());
  c.send_line(R"({"op":"stats"})");
  auto stats = c.read_event("stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->find("submitted")->num, 1.0);
  EXPECT_GE(stats->find("ok")->num, 1.0);
}

TEST(Daemon, DoneEventsCarryLifecycleTraces) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  ASSERT_TRUE(c.connected());

  c.send_line(kHelloSubmit);
  auto done = c.read_event("done");
  ASSERT_TRUE(done.has_value());
  const wire::Json* trace = done->find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is(wire::Json::Kind::kArray));
  ASSERT_GE(trace->arr.size(), 2u);
  EXPECT_EQ(trace->arr[0].find("span")->str, "queued");
  for (const auto& sp : trace->arr) {
    EXPECT_GE(sp.find("start_ms")->num, 0.0);
    EXPECT_GE(sp.find("dur_ms")->num, 0.0);
  }
}

TEST(Daemon, MetricsScrapeMidBurstIsParseableAndMonotonic) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  ASSERT_TRUE(c.connected());

  auto scrape = [&]() -> std::string {
    c.send_line(R"({"op":"metrics"})");
    auto event = c.read_event("metrics");
    EXPECT_TRUE(event.has_value());
    if (!event) return "";
    const wire::Json* text = event->find("text");
    EXPECT_NE(text, nullptr);
    return text != nullptr ? text->str : "";
  };
  auto counter_value = [](const std::string& text,
                          const std::string& name) -> double {
    std::size_t pos = text.find("\n" + name + " ");
    if (pos == std::string::npos) return -1.0;
    return std::atof(text.c_str() + pos + 1 + name.size());
  };

  // First burst, first scrape.
  for (int i = 0; i < 8; ++i) c.send_line(kHelloSubmit);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(c.read_event("done").has_value());
  std::string first = scrape();
  ASSERT_FALSE(first.empty());
  double submitted1 = counter_value(first, "lol_jobs_submitted_total");
  EXPECT_GE(submitted1, 8.0);

  // Every line is a comment or `name[{labels}] value`.
  std::size_t start = 0;
  while (start < first.size()) {
    std::size_t nl = first.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "unterminated exposition line";
    std::string line = first.substr(start, nl - start);
    ASSERT_FALSE(line.empty());
    if (line[0] != '#') {
      EXPECT_NE(line.rfind(' '), std::string::npos) << line;
    }
    start = nl + 1;
  }

  // Second burst: counters are monotonic between scrapes.
  for (int i = 0; i < 8; ++i) c.send_line(kHelloSubmit);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(c.read_event("done").has_value());
  std::string second = scrape();
  double submitted2 = counter_value(second, "lol_jobs_submitted_total");
  EXPECT_GE(submitted2, submitted1 + 8.0);
  EXPECT_GE(counter_value(second, "lol_barrier_crossings_total"),
            counter_value(first, "lol_barrier_crossings_total"));
}

TEST(Daemon, ShutdownOpUnblocksWait) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client c(fx.daemon.tcp_port());
  c.send_line(R"({"op":"shutdown"})");
  ASSERT_TRUE(c.read_event("bye").has_value());
  fx.daemon.wait();  // returns because the client asked for shutdown
}

TEST(Daemon, TwoClientsInterleave) {
  DaemonFixture fx;
  ASSERT_TRUE(fx.started);
  Client a(fx.daemon.tcp_port());
  Client b(fx.daemon.tcp_port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  a.send_line(kHelloSubmit);
  b.send_line(kHelloSubmit);
  auto done_a = a.read_event("done");
  auto done_b = b.read_event("done");
  ASSERT_TRUE(done_a.has_value());
  ASSERT_TRUE(done_b.has_value());
  // Each client only sees its own job's events.
  EXPECT_NE(done_a->find("id")->num, done_b->find("id")->num);
}

TEST(Daemon, UnixSocketListens) {
  ServiceOptions sopts;
  sopts.workers = 1;
  Service svc(sopts);
  std::string path = "/tmp/lol_daemon_test_" + std::to_string(::getpid()) +
                     ".sock";
  Daemon daemon(svc, DaemonOptions{path, -1});
  std::string err;
  ASSERT_TRUE(daemon.start(&err)) << err;
  EXPECT_EQ(daemon.unix_path(), path);
  // Connectable via AF_UNIX.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char* ping = "{\"op\":\"ping\"}\n";
  ASSERT_GT(::send(fd, ping, std::strlen(ping), MSG_NOSIGNAL), 0);
  char buf[128];
  ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string(buf, static_cast<std::size_t>(n)).find("pong"),
            std::string::npos);
  ::close(fd);
  daemon.stop();
  svc.shutdown();
}

// ---------------------------------------------------------------------------
// Wire codec unit tests
// ---------------------------------------------------------------------------

TEST(Wire, ParsesNestedJson) {
  auto doc = wire::parse_json(
      R"({"a":[1,2.5,-3],"b":{"c":"x\ny"},"d":true,"e":null})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a")->arr.size(), 3u);
  EXPECT_EQ(doc->find("a")->arr[1].num, 2.5);
  EXPECT_EQ(doc->find("b")->find("c")->str, "x\ny");
  EXPECT_TRUE(doc->find("d")->b);
  EXPECT_TRUE(doc->find("e")->is(wire::Json::Kind::kNull));
}

TEST(Wire, RejectsMalformedJson) {
  std::string err;
  EXPECT_FALSE(wire::parse_json("{", &err).has_value());
  EXPECT_FALSE(wire::parse_json("{\"a\":}", &err).has_value());
  EXPECT_FALSE(wire::parse_json("[1,2]trailing", &err).has_value());
  EXPECT_FALSE(wire::parse_json("\"dangling\\", &err).has_value());
}

TEST(Wire, QuoteEscapesControlCharacters) {
  EXPECT_EQ(wire::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(wire::quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Wire, QuoteRoundTripsEveryControlCharacter) {
  // All of U+0000..U+001F must survive quote() -> parse_json() exactly
  // (RFC 8259 requires them escaped; a raw control byte in the output
  // would also break NDJSON framing for \n).
  for (int c = 0; c < 0x20; ++c) {
    std::string s = "a";
    s += static_cast<char>(c);
    s += "b";
    std::string quoted = wire::quote(s);
    for (char q : quoted) {
      EXPECT_GE(static_cast<unsigned char>(q), 0x20u)
          << "raw control byte " << c << " in: " << quoted;
    }
    auto doc = wire::parse_json(quoted);
    ASSERT_TRUE(doc.has_value()) << "char " << c << ": " << quoted;
    EXPECT_EQ(doc->str, s) << "char " << c;
  }
}

TEST(Wire, RequestRoundTripsJobFields) {
  std::string err;
  auto req = wire::parse_request(
      R"({"op":"submit","source":"HAI","name":"n","tenant":"t",)"
      R"("n_pes":4,"deadline_ms":250,"max_steps":1000,"backend":"interp",)"
      R"("opt_level":1,"stdin":["a","b"]})",
      &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->job.source, "HAI");
  EXPECT_EQ(req->job.name, "n");
  EXPECT_EQ(req->job.tenant, "t");
  EXPECT_EQ(req->job.n_pes, 4);
  EXPECT_EQ(req->job.deadline_ms, 250u);
  EXPECT_EQ(req->job.max_steps, 1000u);
  EXPECT_EQ(req->job.backend, lol::Backend::kInterp);
  EXPECT_EQ(req->job.opt_level, 1);
  ASSERT_EQ(req->job.stdin_lines.size(), 2u);
  EXPECT_EQ(req->job.stdin_lines[1], "b");
}

TEST(Wire, OptLevelDefaultsAndRejectsMalformedValues) {
  // Absent field: the default -O2 applies.
  std::string err;
  auto req =
      wire::parse_request(R"({"op":"submit","source":"HAI"})", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->job.opt_level, 2);

  // opt_level changes what a job computes per step budget, so unlike
  // the lenient numeric knobs it is validated strictly: anything but an
  // integer 0..2 is a protocol error, never silently clamped.
  const char* bad[] = {
      R"({"op":"submit","source":"HAI","opt_level":3})",
      R"({"op":"submit","source":"HAI","opt_level":-1})",
      R"({"op":"submit","source":"HAI","opt_level":1.5})",
      R"({"op":"submit","source":"HAI","opt_level":"max"})",
      R"({"op":"submit","source":"HAI","opt_level":1e400})",
  };
  for (const char* line : bad) {
    std::string e;
    auto r = wire::parse_request(line, &e);
    EXPECT_FALSE(r.has_value()) << "accepted: " << line;
    EXPECT_NE(e.find("opt_level"), std::string::npos) << e;
  }
}

// ---------------------------------------------------------------------------
// Property-style round-trips: serialize -> parse must be the identity for
// random requests and events (the protocol is NDJSON over IEEE doubles,
// so generated u64s stay below 2^50 — larger values are not representable
// on the wire by design). Seeded from the hostile-number hardening in the
// daemon: the same u64_or bounds that reject inf/1e400 must not clip
// legitimate payloads.
// ---------------------------------------------------------------------------

namespace {

std::string random_text(std::mt19937_64& rng, std::size_t max_len) {
  // Deliberately hostile strings: quotes, backslashes, control bytes,
  // UTF-8 fragments — everything quote()/parse_string must round-trip.
  static const char* pool[] = {"a",  "Z",  "0",   " ",    "\"", "\\",
                               "\n", "\t", "\r",  "\x01", "{",  "}",
                               ":",  ",",  "\xc3\xa9", "lol"};
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  std::uniform_int_distribution<std::size_t> pick(0, std::size(pool) - 1);
  std::string out;
  for (std::size_t i = 0, n = len(rng); i < n; ++i) out += pool[pick(rng)];
  return out;
}

std::uint64_t random_u64(std::mt19937_64& rng) {
  // Wire numbers are doubles: keep below 2^50 so the value is exact.
  return rng() & ((1ULL << 50) - 1);
}

}  // namespace

TEST(Wire, SubmitRoundTripsRandomJobs) {
  std::mt19937_64 rng(20170529);
  for (int iter = 0; iter < 200; ++iter) {
    lol::service::Job job;
    job.name = random_text(rng, 12);
    job.source = random_text(rng, 64);
    job.tenant = random_text(rng, 8);
    job.n_pes = static_cast<int>(1 + rng() % 1024);
    job.seed = random_u64(rng);
    job.max_steps = random_u64(rng);
    job.deadline_ms = random_u64(rng);
    job.heap_bytes = static_cast<std::size_t>(random_u64(rng));
    job.backend = iter % 3 == 0   ? lol::Backend::kInterp
                  : iter % 3 == 1 ? lol::Backend::kVm
                                  : lol::Backend::kNative;
    job.executor = iter % 3 == 0   ? lol::shmem::ExecutorKind::kThread
                   : iter % 3 == 1 ? lol::shmem::ExecutorKind::kPool
                                   : lol::shmem::ExecutorKind::kFiber;
    job.pes_per_thread = static_cast<int>(rng() % 256);
    job.barrier_radix = static_cast<int>(rng() % 64);
    job.opt_level = static_cast<int>(rng() % 3);
    for (std::size_t i = 0, n = rng() % 4; i < n; ++i) {
      job.stdin_lines.push_back(random_text(rng, 16));
    }

    std::string line = wire::submit_line(job);
    std::string err;
    auto req = wire::parse_request(line, &err);
    ASSERT_TRUE(req.has_value()) << "iter " << iter << ": " << err
                                 << "\nline: " << line;
    EXPECT_EQ(req->op, wire::Request::Op::kSubmit);
    EXPECT_EQ(req->job.name, job.name) << line;
    EXPECT_EQ(req->job.source, job.source) << line;
    EXPECT_EQ(req->job.tenant, job.tenant) << line;
    EXPECT_EQ(req->job.n_pes, job.n_pes);
    EXPECT_EQ(req->job.seed, job.seed);
    EXPECT_EQ(req->job.max_steps, job.max_steps);
    EXPECT_EQ(req->job.deadline_ms, job.deadline_ms);
    EXPECT_EQ(req->job.heap_bytes, job.heap_bytes);
    EXPECT_EQ(req->job.backend, job.backend);
    EXPECT_EQ(req->job.executor, job.executor);
    EXPECT_EQ(req->job.pes_per_thread, job.pes_per_thread);
    EXPECT_EQ(req->job.barrier_radix, job.barrier_radix);
    EXPECT_EQ(req->job.opt_level, job.opt_level);
    EXPECT_EQ(req->job.stdin_lines, job.stdin_lines);
  }
}

TEST(Wire, CancelAndControlRequestsRoundTrip) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    lol::service::JobId id = 1 + random_u64(rng);
    std::string err;
    auto req = wire::parse_request(wire::cancel_request_line(id), &err);
    ASSERT_TRUE(req.has_value()) << err;
    EXPECT_EQ(req->op, wire::Request::Op::kCancel);
    EXPECT_EQ(req->id, id);
  }
  for (auto op : {wire::Request::Op::kStats, wire::Request::Op::kMetrics,
                  wire::Request::Op::kPing, wire::Request::Op::kShutdown}) {
    wire::Request r;
    r.op = op;
    std::string err;
    auto parsed = wire::parse_request(wire::request_line(r), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->op, op);
  }
}

TEST(Wire, ResultEventsRoundTripThroughTheJsonParser) {
  std::mt19937_64 rng(42);
  using lol::service::JobStatus;
  const JobStatus statuses[] = {
      JobStatus::kOk,           JobStatus::kCompileError,
      JobStatus::kRuntimeError, JobStatus::kStepLimit,
      JobStatus::kDeadlineExceeded, JobStatus::kCancelled,
      JobStatus::kRejected};
  for (int iter = 0; iter < 100; ++iter) {
    lol::service::JobResult r;
    r.id = 1 + random_u64(rng);
    r.name = random_text(rng, 10);
    r.tenant = random_text(rng, 6);
    r.status = statuses[rng() % std::size(statuses)];
    r.error = random_text(rng, 20);
    r.compile_cache_hit = rng() % 2 == 0;
    if (rng() % 2 == 0) r.tuned = "barrier_radix=4 executor=fiber";
    r.queue_ms = static_cast<double>(rng() % 100000) / 1000.0;
    r.run_ms = static_cast<double>(rng() % 100000) / 1000.0;
    for (std::size_t i = 0, n = rng() % 3; i < n; ++i) {
      r.pe_output.push_back(random_text(rng, 24));
      r.pe_errout.push_back(random_text(rng, 8));
    }

    std::string err;
    auto doc = wire::parse_json(wire::result_line(r), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->find("event")->str, "done");
    EXPECT_EQ(doc->find("id")->num, static_cast<double>(r.id));
    EXPECT_EQ(doc->find("name")->str, r.name);
    EXPECT_EQ(doc->find("tenant")->str, r.tenant);
    EXPECT_EQ(doc->find("status")->str, lol::service::to_string(r.status));
    EXPECT_EQ(doc->find("error")->str, r.error);
    EXPECT_EQ(doc->find("cached")->b, r.compile_cache_hit);
    EXPECT_NEAR(doc->find("queue_ms")->num, r.queue_ms, 0.0005);
    EXPECT_NEAR(doc->find("run_ms")->num, r.run_ms, 0.0005);
    // "tuned" is only on the wire when knobs were actually applied.
    const wire::Json* tuned = doc->find("tuned");
    if (r.tuned.empty()) {
      EXPECT_EQ(tuned, nullptr);
    } else {
      ASSERT_NE(tuned, nullptr);
      EXPECT_EQ(tuned->str, r.tuned);
    }
    const wire::Json* out = doc->find("output");
    ASSERT_EQ(out->arr.size(), r.pe_output.size());
    for (std::size_t i = 0; i < r.pe_output.size(); ++i) {
      EXPECT_EQ(out->arr[i].str, r.pe_output[i]);
    }
  }
}

TEST(Wire, MalformedRequestsAreRejectedWithErrors) {
  const char* cases[] = {
      "",                                       // empty line
      "{",                                      // truncated object
      "[1,2]",                                  // not an object
      "42",                                     // not an object
      "{\"op\":\"submit\"}",                    // missing source
      "{\"op\":\"submit\",\"source\":42}",      // source wrong type
      "{\"op\":\"submit\",\"source\":\"HAI\",\"backend\":\"turbo\"}",
      "{\"op\":\"submit\",\"source\":\"HAI\",\"executor\":\"warp\"}",
      "{\"op\":\"nope\"}",                      // unknown op
      "{\"op\":\"cancel\"}",                    // missing id
      "{\"op\":\"cancel\",\"id\":0}",           // id must be nonzero
      "{\"op\":\"cancel\",\"id\":1e400}",       // overflows to inf
      "{\"op\":\"cancel\",\"id\":-7}",          // negative
      "{\"op\":\"ping\"}trailing",              // trailing garbage
      "{\"op\":\"ping\"",                       // unterminated
      "{\"op\":\"pi\\qng\"}",                   // unknown escape
      "{\"op\":\"ping\\u00g1\"}",               // bad \u escape
      "{\"op\":nan}",                           // bad literal
  };
  for (const char* line : cases) {
    std::string err;
    auto req = wire::parse_request(line, &err);
    EXPECT_FALSE(req.has_value()) << "accepted: " << line;
    EXPECT_FALSE(err.empty()) << "no diagnostic for: " << line;
  }

  // Nesting deeper than the parser's bound is rejected, not recursed.
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  std::string err;
  EXPECT_FALSE(wire::parse_json(deep, &err).has_value());
  EXPECT_FALSE(err.empty());
}

}  // namespace

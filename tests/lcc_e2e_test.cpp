// End-to-end tests of the paper's toolchain (§VI.E): lcc translates
// LOLCODE to C, the host C compiler builds it against the lolrt runtime,
// and the executable runs SPMD with -np N — exactly the
// `lcc code.lol -o executable.x && coprsh -np 16 ./executable.x` flow.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"
#include "driver/cli.hpp"

#ifndef LCC_BIN
#define LCC_BIN "lcc"
#endif

namespace {

struct CmdResult {
  int status = -1;
  std::string output;  // stdout only
};

CmdResult run_cmd(const std::string& cmd) {
  CmdResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  r.status = pclose(pipe);
  return r;
}

std::string temp_dir() {
  static std::string dir = [] {
    std::string tmpl = "/tmp/parallol_e2e_XXXXXX";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s", tmpl.c_str());
    char* made = mkdtemp(buf);
    return std::string(made != nullptr ? made : "/tmp");
  }();
  return dir;
}

/// Compiles `src` with lcc and runs the result with `-np n_pes`.
CmdResult compile_and_run(const std::string& name, const std::string& src,
                          int n_pes, const std::string& extra_args = "") {
  std::string dir = temp_dir();
  std::string lol_path = dir + "/" + name + ".lol";
  std::string exe_path = dir + "/" + name + ".x";
  EXPECT_TRUE(lol::driver::write_file(lol_path, src));
  CmdResult build = run_cmd(std::string(LCC_BIN) + " '" + lol_path +
                            "' -o '" + exe_path + "' 2>&1");
  EXPECT_EQ(build.status, 0) << "lcc failed:\n" << build.output;
  if (build.status != 0) return build;
  return run_cmd("'" + exe_path + "' -np " + std::to_string(n_pes) + " " +
                 extra_args + " 2>/dev/null");
}

TEST(LccE2E, HelloWorld) {
  auto r = compile_and_run("hello",
                           "HAI 1.2\nVISIBLE \"HAI WORLD!\"\nKTHXBYE\n", 1);
  EXPECT_EQ(r.status, 0);
  EXPECT_EQ(r.output, "HAI WORLD!\n");
}

TEST(LccE2E, EmitCProducesCompilableSource) {
  std::string dir = temp_dir();
  std::string lol_path = dir + "/emit.lol";
  std::string c_path = dir + "/emit.c";
  ASSERT_TRUE(lol::driver::write_file(
      lol_path, "HAI 1.2\nVISIBLE SUM OF 1 AN 2\nKTHXBYE\n"));
  auto r = run_cmd(std::string(LCC_BIN) + " '" + lol_path + "' --emit-c -o '" +
                   c_path + "' 2>&1");
  ASSERT_EQ(r.status, 0) << r.output;
  auto c = lol::driver::read_file(c_path);
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(c->find("lol_user_main"), std::string::npos);
}

TEST(LccE2E, SpmdVisibleRunsOnEveryPe) {
  auto r = compile_and_run(
      "spmd", "HAI 1.2\nVISIBLE \"PE \" ME \" OF \" MAH FRENZ\nKTHXBYE\n", 4);
  EXPECT_EQ(r.status, 0);
  // Output interleaving across PEs is unspecified; count the lines.
  int lines = 0;
  for (char ch : r.output) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(r.output.find("OF 4"), std::string::npos);
}

TEST(LccE2E, PaperRingListing) {
  auto r = compile_and_run("ring", lol::paper::ring_listing(), 4);
  EXPECT_EQ(r.status, 0);
  // All four per-PE lines must appear with the rotated contents.
  for (int pe = 0; pe < 4; ++pe) {
    int next = (pe + 1) % 4;
    std::string expect = "PE " + std::to_string(pe) + " HAZ " +
                         std::to_string(next * 1000) + " THRU " +
                         std::to_string(next * 1000 + 31);
    EXPECT_NE(r.output.find(expect), std::string::npos) << r.output;
  }
}

TEST(LccE2E, PaperLockCounterListing) {
  auto r = compile_and_run("locks", lol::paper::lock_counter_listing(25), 4);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("KOUNTER IZ 100"), std::string::npos) << r.output;
}

TEST(LccE2E, PaperBarrierSumListing) {
  auto r = compile_and_run("bsum", lol::paper::barrier_sum_listing(), 4);
  EXPECT_EQ(r.status, 0);
  for (int pe = 0; pe < 4; ++pe) {
    int prev = (pe + 3) % 4;
    int c = (10 * pe + 1) + (10 * prev + 1);
    EXPECT_NE(r.output.find("PE " + std::to_string(pe) + " C IZ " +
                            std::to_string(c)),
              std::string::npos)
        << r.output;
  }
}

TEST(LccE2E, PaperNBodyListingMatchesInProcessBackends) {
  // The generated-C backend must produce the same trajectories as the VM
  // (same substrate, same RNG). One PE keeps stdout ordering exact.
  auto r = compile_and_run("nbody", lol::paper::nbody_program(8, 3, true), 1,
                           "--seed 20170529");
  ASSERT_EQ(r.status, 0);

  lol::RunConfig cfg;
  cfg.n_pes = 1;
  cfg.backend = lol::Backend::kVm;
  cfg.seed = 20170529;
  auto vm = lol::run_source(lol::paper::nbody_program(8, 3, true), cfg);
  ASSERT_TRUE(vm.ok) << vm.first_error();
  EXPECT_EQ(r.output, vm.pe_output[0]);
}

TEST(LccE2E, RuntimeErrorsExitNonZero) {
  std::string dir = temp_dir();
  std::string lol_path = dir + "/bad.lol";
  std::string exe_path = dir + "/bad.x";
  ASSERT_TRUE(lol::driver::write_file(
      lol_path, "HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE\n"));
  auto build = run_cmd(std::string(LCC_BIN) + " '" + lol_path + "' -o '" +
                       exe_path + "' 2>&1");
  ASSERT_EQ(build.status, 0) << build.output;
  auto run = run_cmd("'" + exe_path + "' 2>&1");
  EXPECT_NE(run.status, 0);
  EXPECT_NE(run.output.find("division by zero"), std::string::npos);
}

TEST(LccE2E, StepLimitExitsWithDistinctStatus) {
  // ROADMAP parity item: lcc-generated binaries honor the step budget
  // with an exit status (3) callers can tell apart from runtime errors.
  std::string dir = temp_dir();
  std::string lol_path = dir + "/spin.lol";
  std::string exe_path = dir + "/spin.x";
  ASSERT_TRUE(lol::driver::write_file(
      lol_path, "HAI 1.2\nIM IN YR l\nIM OUTTA YR l\nKTHXBYE\n"));
  auto build = run_cmd(std::string(LCC_BIN) + " '" + lol_path + "' -o '" +
                       exe_path + "' 2>&1");
  ASSERT_EQ(build.status, 0) << build.output;

  auto run = run_cmd("'" + exe_path + "' -np 2 --max-steps 10000 2>&1");
  ASSERT_TRUE(WIFEXITED(run.status));
  EXPECT_EQ(WEXITSTATUS(run.status), 3) << run.output;
  EXPECT_NE(run.output.find("step budget"), std::string::npos) << run.output;

  // A generous budget on a terminating program exits 0.
  std::string ok_path = dir + "/okstep.lol";
  std::string ok_exe = dir + "/okstep.x";
  ASSERT_TRUE(lol::driver::write_file(
      ok_path, "HAI 1.2\nVISIBLE \"DUN\"\nKTHXBYE\n"));
  auto build2 = run_cmd(std::string(LCC_BIN) + " '" + ok_path + "' -o '" +
                        ok_exe + "' 2>&1");
  ASSERT_EQ(build2.status, 0) << build2.output;
  auto ok = run_cmd("'" + ok_exe + "' --max-steps 100000 2>&1");
  EXPECT_EQ(ok.status, 0) << ok.output;
}

TEST(LccE2E, PipedStdinFeedsGimmeh) {
  std::string dir = temp_dir();
  std::string lol_path = dir + "/gimmeh_pipe.lol";
  std::string exe_path = dir + "/gimmeh_pipe.x";
  ASSERT_TRUE(lol::driver::write_file(
      lol_path,
      "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE \"GOT \" x\nKTHXBYE\n"));
  auto build = run_cmd(std::string(LCC_BIN) + " '" + lol_path + "' -o '" +
                       exe_path + "' 2>&1");
  ASSERT_EQ(build.status, 0) << build.output;
  auto piped = run_cmd("printf 'cheezburger\\n' | '" + exe_path + "'");
  EXPECT_EQ(piped.status, 0);
  EXPECT_NE(piped.output.find("GOT cheezburger"), std::string::npos)
      << piped.output;
}

TEST(LccE2E, CompileErrorsAreReported) {
  std::string dir = temp_dir();
  std::string lol_path = dir + "/syntax.lol";
  ASSERT_TRUE(lol::driver::write_file(lol_path, "HAI 1.2\nx R\nKTHXBYE\n"));
  auto r = run_cmd(std::string(LCC_BIN) + " '" + lol_path + "' -o /tmp/x 2>&1");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("expected"), std::string::npos);
}

}  // namespace

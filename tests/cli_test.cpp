// End-to-end tests for the lolrun CLI (the in-process `coprsh -np N`
// analogue): flag handling, backend/machine selection, AST/bytecode
// dumps, and failure exit codes.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "driver/cli.hpp"

#ifndef LOLRUN_BIN
#define LOLRUN_BIN "lolrun"
#endif

namespace {

struct CmdResult {
  int status = -1;
  std::string output;  // stdout + stderr
};

CmdResult run_cmd(const std::string& cmd) {
  CmdResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  r.status = pclose(pipe);
  return r;
}

std::string write_program(const char* name, const std::string& src) {
  std::string path = std::string("/tmp/parallol_cli_") + name + ".lol";
  EXPECT_TRUE(lol::driver::write_file(path, src));
  return path;
}

TEST(LolrunCli, RunsHelloOnNPes) {
  std::string path = write_program(
      "hello", "HAI 1.2\nVISIBLE \"PE \" ME \"/\" MAH FRENZ\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " -np 3 " + path);
  EXPECT_EQ(r.status, 0);
  int lines = 0;
  for (char c : r.output) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(r.output.find("/3"), std::string::npos);
}

TEST(LolrunCli, BackendSelection) {
  std::string path =
      write_program("backend", "HAI 1.2\nVISIBLE SUM OF 1 AN 2\nKTHXBYE\n");
  auto vm = run_cmd(std::string(LOLRUN_BIN) + " --backend vm " + path);
  auto in = run_cmd(std::string(LOLRUN_BIN) + " --backend interp " + path);
  EXPECT_EQ(vm.status, 0);
  EXPECT_EQ(in.status, 0);
  EXPECT_EQ(vm.output, in.output);
  auto bad = run_cmd(std::string(LOLRUN_BIN) + " --backend turbo " + path);
  EXPECT_NE(bad.status, 0);
}

TEST(LolrunCli, MachineSimReportsModeledTime) {
  std::string path = write_program(
      "sim",
      "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\n"
      "TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, UR x R ME\n"
      "HUGZ\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) +
                   " -np 4 --machine epiphany3 --sim " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("[sim] machine=mesh4x4"), std::string::npos);
  auto bad =
      run_cmd(std::string(LOLRUN_BIN) + " --machine cray-2 " + path);
  EXPECT_NE(bad.status, 0);
}

TEST(LolrunCli, DumpAstPrintsStructure) {
  std::string path =
      write_program("ast", "HAI 1.2\nVISIBLE SUM OF 1 AN 2\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " --dump-ast " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("(program"), std::string::npos);
  EXPECT_NE(r.output.find("(sum (numbr 1) (numbr 2))"), std::string::npos);
}

TEST(LolrunCli, DumpBytecodePrintsDisassembly) {
  std::string path =
      write_program("bc", "HAI 1.2\nI HAS A x ITZ 5\nVISIBLE x\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " --dump-bytecode " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("DECLARE x"), std::string::npos);
  EXPECT_NE(r.output.find("HALT"), std::string::npos);
}

TEST(LolrunCli, TagPrefixesPeIds) {
  std::string path =
      write_program("tag", "HAI 1.2\nVISIBLE \"yo\"\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " -np 2 --tag " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("[pe0] yo"), std::string::npos);
  EXPECT_NE(r.output.find("[pe1] yo"), std::string::npos);
}

TEST(LolrunCli, CompileErrorsExitNonZeroWithLocation) {
  std::string path = write_program("bad", "HAI 1.2\nx R\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " " + path);
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("2:"), std::string::npos);  // line number
}

TEST(LolrunCli, RuntimeErrorsExitNonZero) {
  std::string path = write_program(
      "rt", "HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " " + path);
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("division by zero"), std::string::npos);
}

TEST(LolrunCli, MissingFileIsReported) {
  auto r = run_cmd(std::string(LOLRUN_BIN) + " /tmp/does_not_exist.lol");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos);
}

TEST(LolrunCli, UsageOnBadArgs) {
  auto r = run_cmd(std::string(LOLRUN_BIN));
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(LolrunCli, SeedFlagControlsWhatevr) {
  std::string path =
      write_program("seed", "HAI 1.2\nVISIBLE WHATEVR\nKTHXBYE\n");
  auto a1 = run_cmd(std::string(LOLRUN_BIN) + " --seed 7 " + path);
  auto a2 = run_cmd(std::string(LOLRUN_BIN) + " --seed 7 " + path);
  auto b = run_cmd(std::string(LOLRUN_BIN) + " --seed 8 " + path);
  EXPECT_EQ(a1.output, a2.output);
  EXPECT_NE(a1.output, b.output);
}

}  // namespace

// End-to-end tests for the lolrun CLI (the in-process `coprsh -np N`
// analogue): flag handling, backend/machine selection, AST/bytecode
// dumps, and failure exit codes.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "driver/cli.hpp"

#ifndef LOLRUN_BIN
#define LOLRUN_BIN "lolrun"
#endif

namespace {

struct CmdResult {
  int status = -1;
  std::string output;  // stdout + stderr
};

CmdResult run_cmd(const std::string& cmd) {
  CmdResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  r.status = pclose(pipe);
  return r;
}

std::string write_program(const char* name, const std::string& src) {
  std::string path = std::string("/tmp/parallol_cli_") + name + ".lol";
  EXPECT_TRUE(lol::driver::write_file(path, src));
  return path;
}

TEST(LolrunCli, RunsHelloOnNPes) {
  std::string path = write_program(
      "hello", "HAI 1.2\nVISIBLE \"PE \" ME \"/\" MAH FRENZ\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " -np 3 " + path);
  EXPECT_EQ(r.status, 0);
  int lines = 0;
  for (char c : r.output) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(r.output.find("/3"), std::string::npos);
}

TEST(LolrunCli, BackendSelection) {
  std::string path =
      write_program("backend", "HAI 1.2\nVISIBLE SUM OF 1 AN 2\nKTHXBYE\n");
  auto vm = run_cmd(std::string(LOLRUN_BIN) + " --backend vm " + path);
  auto in = run_cmd(std::string(LOLRUN_BIN) + " --backend interp " + path);
  EXPECT_EQ(vm.status, 0);
  EXPECT_EQ(in.status, 0);
  EXPECT_EQ(vm.output, in.output);
  auto bad = run_cmd(std::string(LOLRUN_BIN) + " --backend turbo " + path);
  EXPECT_NE(bad.status, 0);
}

TEST(LolrunCli, MachineSimReportsModeledTime) {
  std::string path = write_program(
      "sim",
      "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\n"
      "TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, UR x R ME\n"
      "HUGZ\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) +
                   " -np 4 --machine epiphany3 --sim " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("[sim] machine=mesh4x4"), std::string::npos);
  auto bad =
      run_cmd(std::string(LOLRUN_BIN) + " --machine cray-2 " + path);
  EXPECT_NE(bad.status, 0);
}

TEST(LolrunCli, DumpAstPrintsStructure) {
  std::string path =
      write_program("ast", "HAI 1.2\nVISIBLE SUM OF 1 AN 2\nKTHXBYE\n");
  auto r =
      run_cmd(std::string(LOLRUN_BIN) + " --dump-ast --opt-level 0 " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("(program"), std::string::npos);
  EXPECT_NE(r.output.find("(sum (numbr 1) (numbr 2))"), std::string::npos);
}

TEST(LolrunCli, DumpAstShowsOptimizedTreeByDefault) {
  std::string path =
      write_program("ast_opt", "HAI 1.2\nVISIBLE SUM OF 1 AN 2\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " --dump-ast " + path);
  EXPECT_EQ(r.status, 0);
  // The default -O2 pipeline folds the constant expression.
  EXPECT_NE(r.output.find("(numbr 3)"), std::string::npos);
  EXPECT_EQ(r.output.find("(sum"), std::string::npos);
}

TEST(LolrunCli, BadOptLevelIsRejected) {
  std::string path =
      write_program("ast_bad", "HAI 1.2\nVISIBLE 1\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " --opt-level 3 " + path);
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("opt-level"), std::string::npos);
}

TEST(LolrunCli, DumpBytecodePrintsDisassembly) {
  std::string path =
      write_program("bc", "HAI 1.2\nI HAS A x ITZ 5\nVISIBLE x\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) +
                   " --dump-bytecode --opt-level 0 " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("DECLARE x"), std::string::npos);
  EXPECT_NE(r.output.find("HALT"), std::string::npos);
}

TEST(LolrunCli, TagPrefixesPeIds) {
  std::string path =
      write_program("tag", "HAI 1.2\nVISIBLE \"yo\"\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " -np 2 --tag " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("[pe0] yo"), std::string::npos);
  EXPECT_NE(r.output.find("[pe1] yo"), std::string::npos);
}

TEST(LolrunCli, CompileErrorsExitNonZeroWithLocation) {
  std::string path = write_program("bad", "HAI 1.2\nx R\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " " + path);
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("2:"), std::string::npos);  // line number
}

TEST(LolrunCli, RuntimeErrorsExitNonZero) {
  std::string path = write_program(
      "rt", "HAI 1.2\nVISIBLE QUOSHUNT OF 1 AN 0\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " " + path);
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("division by zero"), std::string::npos);
}

TEST(LolrunCli, MissingFileIsReported) {
  auto r = run_cmd(std::string(LOLRUN_BIN) + " /tmp/does_not_exist.lol");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos);
}

TEST(LolrunCli, UsageOnBadArgs) {
  auto r = run_cmd(std::string(LOLRUN_BIN));
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(LolrunCli, SeedFlagControlsWhatevr) {
  std::string path =
      write_program("seed", "HAI 1.2\nVISIBLE WHATEVR\nKTHXBYE\n");
  auto a1 = run_cmd(std::string(LOLRUN_BIN) + " --seed 7 " + path);
  auto a2 = run_cmd(std::string(LOLRUN_BIN) + " --seed 7 " + path);
  auto b = run_cmd(std::string(LOLRUN_BIN) + " --seed 8 " + path);
  EXPECT_EQ(a1.output, a2.output);
  EXPECT_NE(a1.output, b.output);
}

TEST(LolrunCli, PipedStdinFeedsGimmeh) {
  // Regression: lolrun used to drop piped input (GIMMEH read the empty
  // stdin_lines vector) while lcc-compiled binaries read real stdin.
  std::string path = write_program(
      "gimmeh", "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE \"GOT \" x\nKTHXBYE\n");
  auto r = run_cmd("printf 'cheezburger\\n' | " + std::string(LOLRUN_BIN) +
                   " " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("GOT cheezburger"), std::string::npos) << r.output;
}

TEST(LolrunCli, NoStdinFlagDropsPipedInput) {
  std::string path = write_program(
      "nostdin", "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE \"[\" x \"]\"\nKTHXBYE\n");
  auto r = run_cmd("printf 'ignored\\n' | " + std::string(LOLRUN_BIN) +
                   " --no-stdin " + path);
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.output.find("[]"), std::string::npos) << r.output;
}

TEST(LolrunCli, ProfileFlagPrintsPerPeTable) {
  std::string path = write_program(
      "prof", "HAI 1.2\nVISIBLE ME\nHUGZ\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " -np 2 --profile " + path);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("[profile]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("steps"), std::string::npos) << r.output;
  // One table row per PE.
  int rows = 0;
  std::istringstream lines(r.output);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("[profile]", 0) == 0 &&
        line.find("steps") == std::string::npos &&
        line.find("claim") == std::string::npos) {
      ++rows;
    }
  }
  EXPECT_EQ(rows, 2) << r.output;
}

TEST(LolrunCli, ProfiledStepsAgreeWithTheStepBudget) {
  // The per-PE steps column is denominated in budget units: running
  // again with --max-steps set to exactly that count succeeds, one
  // less dies with the step-limit exit status (3).
  std::string path = write_program(
      "profsteps", "HAI 1.2\nVISIBLE ME\nVISIBLE MAH FRENZ\nKTHXBYE\n");
  auto prof = run_cmd(std::string(LOLRUN_BIN) + " --profile " + path);
  ASSERT_EQ(prof.status, 0) << prof.output;
  // Parse the steps column of the single PE row:
  //   [profile]      0        <steps> ...
  std::uint64_t steps = 0;
  std::istringstream lines(prof.output);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("[profile]", 0) != 0 ||
        line.find("steps") != std::string::npos ||
        line.find("claim") != std::string::npos) {
      continue;
    }
    std::istringstream row(line.substr(std::strlen("[profile]")));
    std::uint64_t pe = 0;
    row >> pe >> steps;
    break;
  }
  ASSERT_GT(steps, 1u) << prof.output;

  auto exact = run_cmd(std::string(LOLRUN_BIN) + " --max-steps " +
                       std::to_string(steps) + " " + path);
  EXPECT_EQ(exact.status, 0) << exact.output;
  auto tight = run_cmd(std::string(LOLRUN_BIN) + " --max-steps " +
                       std::to_string(steps - 1) + " " + path);
  ASSERT_TRUE(WIFEXITED(tight.status));
  EXPECT_EQ(WEXITSTATUS(tight.status), 3) << tight.output;
}

TEST(LolrunCli, StepLimitUsesDistinctExitStatus) {
  // Exit-status parity with lcc binaries: 3 = step-limited, 1 = error.
  std::string path = write_program(
      "spincli", "HAI 1.2\nIM IN YR l\nIM OUTTA YR l\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " --max-steps 10000 " + path);
  ASSERT_TRUE(WIFEXITED(r.status));
  EXPECT_EQ(WEXITSTATUS(r.status), 3) << r.output;
}

#ifdef LOLSERVE_BIN

/// Runs lolserve over `n` one-line jobs with the given extra flags and
/// returns the job names in completion order (one worker => completion
/// order is submission order).
std::vector<std::string> lolserve_order(int n, const std::string& flags) {
  std::string files;
  for (int i = 0; i < n; ++i) {
    std::string path = write_program(("shuf" + std::to_string(i)).c_str(),
                                     "HAI 1.2\nVISIBLE " + std::to_string(i) +
                                         "\nKTHXBYE\n");
    files += " " + path;
  }
  auto r = run_cmd(std::string(LOLSERVE_BIN) + " --workers 1 " + flags +
                   files);
  EXPECT_EQ(r.status, 0) << r.output;
  std::vector<std::string> order;
  std::istringstream in(r.output);
  std::string line;
  while (std::getline(in, line)) {
    auto pos = line.find("/tmp/parallol_cli_shuf");
    if (line.rfind("[ok]", 0) != 0 || pos == std::string::npos) continue;
    order.push_back(line.substr(pos, line.find(".lol", pos) + 4 - pos));
  }
  EXPECT_EQ(order.size(), static_cast<std::size_t>(n));
  return order;
}

TEST(LolrunCli, FiberExecutorRunsManyMorePesThanCores) {
  std::string path = write_program(
      "fiber", "HAI 1.2\nVISIBLE \"PE \" ME \" OF \" MAH FRENZ\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) +
                   " --executor fiber --pes-per-thread 64 -np 256"
                   " --heap-bytes 65536 " +
                   path);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("PE 0 OF 256"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("PE 255 OF 256"), std::string::npos) << r.output;
  // Exactly one line per virtual PE (count only program output —
  // sanitizer builds interleave their own stderr banners).
  int pe_lines = 0;
  std::istringstream lines(r.output);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("PE ", 0) == 0) ++pe_lines;
  }
  EXPECT_EQ(pe_lines, 256);
}

TEST(LolrunCli, UnknownExecutorIsRejected) {
  std::string path = write_program("badexec", "HAI 1.2\nKTHXBYE\n");
  auto r = run_cmd(std::string(LOLRUN_BIN) + " --executor warp " + path);
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("unknown executor"), std::string::npos) << r.output;
}

TEST(LolserveCli, ClientSpeaksTheWireProtocolToADaemon) {
  // Spawn a daemon on a unix socket, drive it entirely through
  // `lolserve --client` (ping, submit incl. a fiber job, bogus cancel,
  // shutdown), and let the shell reap the daemon so nothing leaks.
  std::string job = write_program(
      "client", "HAI 1.2\nVISIBLE \"HAI FRUM \" ME\nKTHXBYE\n");
  std::string sock = "/tmp/parallol_cli_client.sock";
  std::string bin = LOLSERVE_BIN;
  std::string client = bin + " --client --connect unix:" + sock;
  // popen runs the whole thing under sh -c; group it so run_cmd's
  // appended 2>&1 covers every command.
  std::string script =
      "{ rm -f " + sock + "; " + bin + " --daemon --listen unix:" + sock +
      " --workers 2 >/dev/null 2>&1 & pid=$!; "
      "i=0; while [ $i -lt 50 ] && [ ! -S " + sock + " ]; do "
      "sleep 0.1; i=$((i+1)); done; " +
      client + " --ping; " +
      client + " -np 4 --executor fiber " + job + "; echo submit_rc=$?; " +
      client + " --metrics; echo metrics_rc=$?; " +
      client + " --cancel 424242; " +
      client + " --shutdown; "
      "wait $pid; }";
  auto r = run_cmd(script);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("\"event\":\"pong\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"event\":\"accepted\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"status\":\"ok\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("HAI FRUM 3"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("submit_rc=0"), std::string::npos) << r.output;
  // --metrics prints the decoded Prometheus exposition, scraper-ready.
  EXPECT_NE(r.output.find("metrics_rc=0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("# TYPE lol_jobs_submitted_total counter"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("lol_jobs_done_total{status=\"ok\"}"),
            std::string::npos)
      << r.output;
  // Cancel of an unknown id is answered (ok:false), not dropped.
  EXPECT_NE(r.output.find("\"event\":\"cancel\",\"id\":424242,\"ok\":false"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"event\":\"bye\""), std::string::npos)
      << r.output;
}

TEST(LolserveCli, ClientCancelAfterMsKillsItsOwnSpinningJob) {
  // The daemon only honors cancels from the submitting connection, so
  // the useful client form is --cancel-after-ms: submit, then cancel
  // whatever is still running on the same connection. A spinning job
  // with no step budget must come back "cancelled" and the client must
  // treat that as the expected outcome (exit 0).
  std::string job = write_program(
      "cancelme", "HAI 1.2\nIM IN YR l\nIM OUTTA YR l\nKTHXBYE\n");
  std::string sock = "/tmp/parallol_cli_cancel.sock";
  std::string bin = LOLSERVE_BIN;
  std::string client = bin + " --client --connect unix:" + sock;
  std::string script =
      "{ rm -f " + sock + "; " + bin + " --daemon --listen unix:" + sock +
      " --workers 1 --max-steps 0 >/dev/null 2>&1 & pid=$!; "
      "i=0; while [ $i -lt 50 ] && [ ! -S " + sock + " ]; do "
      "sleep 0.1; i=$((i+1)); done; " +
      client + " --cancel-after-ms 200 " + job + "; echo cancel_rc=$?; " +
      client + " --shutdown >/dev/null; "
      "wait $pid; }";
  auto r = run_cmd(script);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("\"ok\":true"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"status\":\"cancelled\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("cancel_rc=0"), std::string::npos) << r.output;
}

TEST(LolserveCli, ClientFailsCleanlyWithNoDaemon) {
  auto r = run_cmd(std::string(LOLSERVE_BIN) +
                   " --client --connect unix:/tmp/parallol_no_such.sock "
                   "--ping");
  EXPECT_NE(r.status, 0);
  EXPECT_NE(r.output.find("cannot connect"), std::string::npos) << r.output;
}

TEST(LolserveCli, ShuffleIsSeededAndDeterministic) {
  // --shuffle randomizes the submission order for scheduling-fairness
  // experiments; the same seed must reproduce the same permutation.
  auto plain = lolserve_order(10, "");
  auto s7a = lolserve_order(10, "--shuffle --shuffle-seed 7");
  auto s7b = lolserve_order(10, "--shuffle --shuffle-seed 7");
  EXPECT_EQ(s7a, s7b) << "same seed must give the same order";
  EXPECT_NE(s7a, plain) << "a 10-element shuffle landing on the identity "
                           "permutation means the seed is being ignored";
  // All jobs ran exactly once, whatever the order.
  auto sorted_plain = plain;
  auto sorted_shuf = s7a;
  std::sort(sorted_plain.begin(), sorted_plain.end());
  std::sort(sorted_shuf.begin(), sorted_shuf.end());
  EXPECT_EQ(sorted_shuf, sorted_plain);
}

#endif  // LOLSERVE_BIN

}  // namespace

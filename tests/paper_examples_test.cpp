// Integration tests for the paper's §VI worked examples, run exactly as
// published on multiple PE counts and on both in-process backends.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;
using lol::RunResult;

RunResult run_listing(const std::string& src, int n_pes, Backend backend) {
  RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = backend;
  return lol::run_source(src, cfg);
}

class PaperExamples : public ::testing::TestWithParam<Backend> {};

TEST_P(PaperExamples, RingTransferSectionA) {
  auto r = run_listing(lol::paper::ring_listing(), 4, GetParam());
  ASSERT_TRUE(r.ok) << r.first_error();
  // After the circular copy PE p holds PE (p+1)%4's array.
  for (int pe = 0; pe < 4; ++pe) {
    int next = (pe + 1) % 4;
    std::string expect = "PE " + std::to_string(pe) + " HAZ " +
                         std::to_string(next * 1000) + " THRU " +
                         std::to_string(next * 1000 + 31) + "\n";
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)], expect);
  }
}

TEST_P(PaperExamples, LockCounterSectionB) {
  auto r = run_listing(lol::paper::lock_counter_listing(50), 4, GetParam());
  ASSERT_TRUE(r.ok) << r.first_error();
  EXPECT_EQ(r.pe_output[0], "KOUNTER IZ 200\n");  // 4 PEs x 50, none lost
  for (int pe = 1; pe < 4; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)], "");
  }
}

TEST_P(PaperExamples, BarrierSumSectionC) {
  auto r = run_listing(lol::paper::barrier_sum_listing(), 4, GetParam());
  ASSERT_TRUE(r.ok) << r.first_error();
  // a_p = 10p+1; b_p receives a from predecessor; c_p = a_p + b_prev.
  for (int pe = 0; pe < 4; ++pe) {
    int prev = (pe + 3) % 4;
    int c = (10 * pe + 1) + (10 * prev + 1);
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)],
              "PE " + std::to_string(pe) + " C IZ " + std::to_string(c) +
                  "\n");
  }
}

TEST_P(PaperExamples, NBodySectionDRunsAndMoves) {
  // The verbatim paper listing: 32 particles per PE, 10 steps. Verify it
  // runs on 2 PEs, prints the banner plus 32 positions per PE, and that
  // positions are finite numbers.
  auto r = run_listing(lol::paper::nbody_listing(), 2, GetParam());
  ASSERT_TRUE(r.ok) << r.first_error();
  for (int pe = 0; pe < 2; ++pe) {
    const std::string& out = r.pe_output[static_cast<std::size_t>(pe)];
    EXPECT_NE(out.find("HAI ITZ " + std::to_string(pe) +
                       " I HAS PARTICLZ 2 MUV"),
              std::string::npos);
    EXPECT_NE(out.find("MAH PARTICLZ IZ:"), std::string::npos);
    // 2 banner lines + 32 position lines.
    int lines = 0;
    for (char c : out) {
      if (c == '\n') ++lines;
    }
    EXPECT_EQ(lines, 2 + 32);
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_EQ(out.find("inf"), std::string::npos);
  }
}

TEST_P(PaperExamples, NBodyIsDeterministicAcrossRuns) {
  auto r1 = run_listing(lol::paper::nbody_program(8, 4, true), 2, GetParam());
  auto r2 = run_listing(lol::paper::nbody_program(8, 4, true), 2, GetParam());
  ASSERT_TRUE(r1.ok && r2.ok) << r1.first_error() << r2.first_error();
  EXPECT_EQ(r1.pe_output, r2.pe_output);
}

INSTANTIATE_TEST_SUITE_P(Backends, PaperExamples,
                         ::testing::Values(Backend::kInterp, Backend::kVm),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kInterp ? "interp"
                                                                 : "vm";
                         });

TEST(PaperExamples, BackendsAgreeOnNBodyTrajectories) {
  auto ri = run_listing(lol::paper::nbody_program(8, 5, true), 2,
                        Backend::kInterp);
  auto rv =
      run_listing(lol::paper::nbody_program(8, 5, true), 2, Backend::kVm);
  ASSERT_TRUE(ri.ok && rv.ok) << ri.first_error() << rv.first_error();
  EXPECT_EQ(ri.pe_output, rv.pe_output);
}

}  // namespace

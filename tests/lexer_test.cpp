// Lexer tests: word scanning, multi-word keyword phrases, YARN escapes
// and interpolation, comments, and line continuation.
#include <gtest/gtest.h>

#include "lex/lexer.hpp"

namespace {

using lol::lex::Keyword;
using lol::lex::Token;
using lol::lex::TokKind;
using lol::lex::tokenize;

std::vector<Token> lex_strip(std::string_view src) {
  std::vector<Token> all = tokenize(src);
  std::vector<Token> out;
  for (auto& t : all) {
    if (t.kind != TokKind::kNewline && t.kind != TokKind::kEof) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

TEST(Lexer, SingleWordKeywords) {
  auto toks = lex_strip("HAI KTHXBYE HUGZ GTFO");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kHai));
  EXPECT_TRUE(toks[1].is_keyword(Keyword::kKthxbye));
  EXPECT_TRUE(toks[2].is_keyword(Keyword::kHugz));
  EXPECT_TRUE(toks[3].is_keyword(Keyword::kGtfo));
}

TEST(Lexer, MultiWordPhrasesMergeLongest) {
  auto toks = lex_strip("I HAS A pe ITZ A NUMBR AN ITZ ME");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kIHasA));
  EXPECT_EQ(toks[1].text, "pe");
  EXPECT_TRUE(toks[2].is_keyword(Keyword::kItzA));
  EXPECT_TRUE(toks[3].is_keyword(Keyword::kNumbr));
  EXPECT_TRUE(toks[4].is_keyword(Keyword::kAn));
  EXPECT_TRUE(toks[5].is_keyword(Keyword::kItz));
  EXPECT_TRUE(toks[6].is_keyword(Keyword::kMe));
}

TEST(Lexer, FourWordPhrases) {
  auto toks = lex_strip("IM SRSLY MESIN WIF x");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kImSrslyMesinWif));
  EXPECT_EQ(toks[1].text, "x");

  toks = lex_strip("ITZ SRSLY LOTZ A NUMBARS");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kItzSrslyLotzA));
  EXPECT_TRUE(toks[1].is_keyword(Keyword::kNumbars));
}

TEST(Lexer, PhrasePrefixFallsBackToShorterKeyword) {
  // "IM MESIN WIF" vs "IM SRSLY MESIN WIF"; "MAH" vs "MAH FRENZ".
  auto toks = lex_strip("IM MESIN WIF x MAH FRENZ MAH y");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kImMesinWif));
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_TRUE(toks[2].is_keyword(Keyword::kMahFrenz));
  EXPECT_TRUE(toks[3].is_keyword(Keyword::kMah));
  EXPECT_EQ(toks[4].text, "y");
}

TEST(Lexer, UnknownWordsAreIdentifiers) {
  auto toks = lex_strip("pos_x next_pe loop I");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[3].text, "I");  // bare "I" is no phrase by itself
}

TEST(Lexer, NumbrAndNumbarLiterals) {
  auto toks = lex_strip("42 -17 0.001 -2.5 1.2");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokKind::kNumbr);
  EXPECT_EQ(toks[0].numbr, 42);
  EXPECT_EQ(toks[1].numbr, -17);
  EXPECT_EQ(toks[2].kind, TokKind::kNumbar);
  EXPECT_DOUBLE_EQ(toks[2].numbar, 0.001);
  EXPECT_DOUBLE_EQ(toks[3].numbar, -2.5);
  EXPECT_DOUBLE_EQ(toks[4].numbar, 1.2);
}

TEST(Lexer, CommaIsSoftNewline) {
  auto toks = tokenize("HUGZ, HUGZ");
  // HUGZ newline HUGZ newline EOF
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1].kind, TokKind::kNewline);
}

TEST(Lexer, TickZIndexToken) {
  auto toks = lex_strip("pos_x'Z i");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "pos_x");
  EXPECT_EQ(toks[1].kind, TokKind::kTickZ);
  EXPECT_EQ(toks[2].text, "i");
}

TEST(Lexer, QuestionAndBang) {
  auto toks = lex_strip("O RLY? WTF? VISIBLE x!");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kORly));
  EXPECT_EQ(toks[1].kind, TokKind::kQuestion);
  EXPECT_TRUE(toks[2].is_keyword(Keyword::kWtf));
  EXPECT_EQ(toks[3].kind, TokKind::kQuestion);
  EXPECT_EQ(toks[6].kind, TokKind::kBang);
}

TEST(Lexer, YarnEscapes) {
  auto toks = lex_strip(R"("a:)b:>c:"d::e:o")");
  ASSERT_EQ(toks.size(), 1u);
  ASSERT_EQ(toks[0].kind, TokKind::kYarn);
  ASSERT_EQ(toks[0].segments.size(), 1u);
  EXPECT_EQ(toks[0].segments[0].text, "a\nb\tc\"d:e\a");
}

TEST(Lexer, YarnInterpolation) {
  auto toks = lex_strip(R"("hai :{name} bye")");
  ASSERT_EQ(toks.size(), 1u);
  ASSERT_EQ(toks[0].segments.size(), 3u);
  EXPECT_FALSE(toks[0].segments[0].is_var);
  EXPECT_EQ(toks[0].segments[0].text, "hai ");
  EXPECT_TRUE(toks[0].segments[1].is_var);
  EXPECT_EQ(toks[0].segments[1].text, "name");
  EXPECT_EQ(toks[0].segments[2].text, " bye");
}

TEST(Lexer, YarnUnicodeEscape) {
  auto toks = lex_strip(R"x(":(41):(1F63A)")x");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].segments[0].text, "A\xF0\x9F\x98\xBA");
}

TEST(Lexer, EmptyYarn) {
  auto toks = lex_strip(R"("")");
  ASSERT_EQ(toks.size(), 1u);
  ASSERT_EQ(toks[0].segments.size(), 1u);
  EXPECT_EQ(toks[0].segments[0].text, "");
}

TEST(Lexer, LineCommentBtw) {
  auto toks = lex_strip("HUGZ BTW this is ignored\nGTFO");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kHugz));
  EXPECT_TRUE(toks[1].is_keyword(Keyword::kGtfo));
}

TEST(Lexer, BlockCommentObtwTldr) {
  auto toks = lex_strip("HUGZ\nOBTW\nanything * at all\nTLDR\nGTFO");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kHugz));
  EXPECT_TRUE(toks[1].is_keyword(Keyword::kGtfo));
}

TEST(Lexer, ContinuationJoinsLines) {
  auto toks = lex_strip("SUM OF a ...\n  AN b");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kSumOf));
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_TRUE(toks[2].is_keyword(Keyword::kAn));
  EXPECT_EQ(toks[3].text, "b");
}

TEST(Lexer, ContinuationAllowsTrailingComment) {
  auto toks = lex_strip("SUM OF a ... BTW wrapped\nAN b");
  ASSERT_EQ(toks.size(), 4u);
}

TEST(Lexer, PhraseDoesNotCrossLineBreak) {
  // "SUM" then newline then "OF" must NOT merge to SUM OF.
  auto toks = tokenize("SUM\nOF");
  // SUM ident, newline, OF ident, newline, eof
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "SUM");
  EXPECT_EQ(toks[2].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[2].text, "OF");
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = tokenize("HAI 1.2\nVISIBLE x");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  // VISIBLE on line 2.
  const lol::lex::Token* vis = nullptr;
  for (const auto& t : toks) {
    if (t.is_keyword(Keyword::kVisible)) vis = &t;
  }
  ASSERT_NE(vis, nullptr);
  EXPECT_EQ(vis->loc.line, 2u);
  EXPECT_EQ(vis->loc.col, 1u);
}

TEST(LexerErrors, UnterminatedYarn) {
  EXPECT_THROW(tokenize("\"abc"), lol::support::LexError);
  EXPECT_THROW(tokenize("\"abc\nx\""), lol::support::LexError);
}

TEST(LexerErrors, BadEscape) {
  EXPECT_THROW(tokenize("\":q\""), lol::support::LexError);
}

TEST(LexerErrors, UnterminatedInterpolation) {
  EXPECT_THROW(tokenize("\":{name\""), lol::support::LexError);
}

TEST(LexerErrors, StrayCharacter) {
  EXPECT_THROW(tokenize("x @ y"), lol::support::LexError);
}

TEST(LexerErrors, StrayDot) {
  EXPECT_THROW(tokenize("x . y"), lol::support::LexError);
}

TEST(LexerErrors, ContinuationWithTrailingJunk) {
  EXPECT_THROW(tokenize("a ... junk\nb"), lol::support::LexError);
}

TEST(LexerErrors, UnclosedObtw) {
  EXPECT_THROW(tokenize("OBTW never closed"), lol::support::LexError);
}

TEST(Lexer, PaperNBodyHeaderLexes) {
  // The first lines of the paper's §VI.D listing.
  const char* src =
      "HAI 1.2\n"
      "OBTW\n"
      "* 2D N-Body algorithm: propagate particles\n"
      "TLDR\n"
      "I HAS A little_time ITZ SRSLY A NUMBAR ...\n"
      "  AN ITZ 0.001\n"
      "WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS ...\n"
      "  AN THAR IZ 32 AN IM SHARIN IT\n"
      "KTHXBYE\n";
  auto toks = lex_strip(src);
  ASSERT_GT(toks.size(), 10u);
  EXPECT_TRUE(toks[0].is_keyword(Keyword::kHai));
  EXPECT_TRUE(toks.back().is_keyword(Keyword::kKthxbye));
}

}  // namespace

#include "diff_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "codegen/jit_backend.hpp"
#include "codegen/native_backend.hpp"
#include "core/abort.hpp"
#include "driver/cli.hpp"
#include "support/error.hpp"

namespace lol::difftest {

namespace fs = std::filesystem;

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kCompileError: return "compile-error";
    case Outcome::kRuntimeError: return "runtime-error";
    case Outcome::kStepLimit: return "step-limit";
    case Outcome::kAborted: return "aborted";
  }
  return "?";
}

bool native_available() { return codegen::native_available(); }

bool jit_available() { return codegen::jit_available(); }

std::vector<Backend> backends_under_test() {
  std::vector<Backend> out = {Backend::kInterp, Backend::kVm};
  if (native_available()) out.push_back(Backend::kNative);
  if (jit_available()) out.push_back(Backend::kJit);
  return out;
}

std::vector<shmem::ExecutorKind> executors_under_test() {
  std::vector<shmem::ExecutorKind> out = {shmem::ExecutorKind::kThread,
                                          shmem::ExecutorKind::kPool};
  if (shmem::fiber_executor_available()) {
    out.push_back(shmem::ExecutorKind::kFiber);
  }
  return out;
}

const char* backend_label(Backend b) { return lol::to_string(b); }

BackendRun run_one(const Spec& spec, Backend backend,
                   shmem::ExecutorKind executor) {
  BackendRun out;
  out.backend = backend;
  out.executor = executor;
  out.label =
      std::string(backend_label(backend)) + "/" + shmem::to_string(executor);

  // Resolve the optimization level: explicit spec value, else the
  // LOL_OPT_LEVEL environment override (the CI opt-matrix leg), else
  // the default -O2.
  CompileOptions copts;
  if (spec.opt_level >= 0) {
    copts.opt_level = spec.opt_level;
  } else if (const char* env = std::getenv("LOL_OPT_LEVEL");
             env != nullptr && env[0] != '\0') {
    copts.opt_level = std::atoi(env);
  }

  CompiledProgram prog;
  try {
    prog = compile(spec.source, copts);
  } catch (const support::LolError& e) {
    out.outcome = Outcome::kCompileError;
    out.error = e.what();
    return out;
  }

  RunConfig cfg;
  cfg.n_pes = spec.n_pes;
  cfg.backend = backend;
  cfg.seed = spec.seed;
  cfg.max_steps = spec.max_steps;
  cfg.stdin_lines = spec.stdin_lines;
  cfg.executor = executor;
  cfg.pes_per_thread = spec.pes_per_thread;
  cfg.heap_bytes = spec.heap_bytes;
  cfg.barrier_radix = spec.barrier_radix;
  // CI exports the variable (possibly empty) on every matrix leg. Only
  // a non-empty value overrides, and only for specs that left the radix
  // at auto — a spec naming an explicit radix is testing that radix
  // (BarrierRadixIsOutputInvariant must not collapse to a tautology in
  // the radix-override leg).
  if (const char* env = std::getenv("LOL_BARRIER_RADIX");
      env != nullptr && env[0] != '\0' && spec.barrier_radix == 0) {
    cfg.barrier_radix = std::atoi(env);
  }

  // Mid-run abort: fire the token from a timer thread, like the
  // service's deadline reaper does. The thread always joins before the
  // result is read.
  AbortToken token;
  std::thread timer;
  if (spec.abort_after_ms > 0) {
    cfg.abort = &token;
    timer = std::thread([&] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.abort_after_ms));
      token.request();
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  RunResult r = run(prog, cfg);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (timer.joinable()) timer.join();

  out.pe_output = std::move(r.pe_output);
  out.pe_errout = std::move(r.pe_errout);
  out.error = r.first_error();
  if (r.step_limited) {
    out.outcome = Outcome::kStepLimit;
  } else if (r.aborted) {
    out.outcome = Outcome::kAborted;
  } else if (r.ok) {
    out.outcome = Outcome::kOk;
  } else {
    out.outcome = Outcome::kRuntimeError;
  }
  return out;
}

namespace {

/// Output comparison applies only to runs that completed: a killed run
/// (step limit, abort) stops PEs at backend-dependent points, so partial
/// output legitimately differs.
bool compare_output(Outcome o) { return o == Outcome::kOk; }

void describe(std::ostringstream& os, const Spec& spec,
              const BackendRun& r) {
  os << "  [" << r.label << "] outcome=" << to_string(r.outcome);
  if (!r.error.empty()) os << " error=\"" << r.error << "\"";
  os << "\n";
  if (compare_output(r.outcome)) {
    for (std::size_t pe = 0; pe < r.pe_output.size(); ++pe) {
      os << "    pe" << pe << " stdout: "
         << (r.pe_output[pe].size() > 200
                 ? r.pe_output[pe].substr(0, 200) + "..."
                 : r.pe_output[pe])
         << "\n";
    }
  }
  (void)spec;
}

}  // namespace

std::string divergence(const Spec& spec) {
  std::vector<BackendRun> runs;
  runs.reserve(6);
  for (Backend b : backends_under_test()) {
    for (shmem::ExecutorKind e : executors_under_test()) {
      runs.push_back(run_one(spec, b, e));
    }
  }

  const BackendRun& ref = runs.front();
  bool diverged = false;
  std::ostringstream why;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const BackendRun& r = runs[i];
    if (r.outcome != ref.outcome) {
      diverged = true;
      why << "classification differs: " << ref.label << "="
          << to_string(ref.outcome) << " vs " << r.label << "="
          << to_string(r.outcome) << "\n";
      continue;
    }
    if (!compare_output(ref.outcome)) continue;
    if (r.pe_output != ref.pe_output) {
      diverged = true;
      why << "per-PE stdout differs between " << ref.label << " and "
          << r.label << "\n";
    }
    if (r.pe_errout != ref.pe_errout) {
      diverged = true;
      why << "per-PE stderr differs between " << ref.label << " and "
          << r.label << "\n";
    }
  }
  if (!diverged) return "";

  std::ostringstream os;
  os << "spec '" << spec.name << "' (n_pes=" << spec.n_pes
     << ", seed=" << spec.seed << ", max_steps=" << spec.max_steps
     << ") diverged:\n"
     << why.str();
  for (const BackendRun& r : runs) describe(os, spec, r);
  return os.str();
}

std::vector<Spec> load_lol_dir(const std::string& dir, int n_pes) {
  std::vector<Spec> out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return out;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".lol") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& p : files) {
    auto text = driver::read_file(p.string());
    if (!text) continue;
    Spec s;
    s.name = p.filename().string();
    s.source = std::move(*text);
    s.n_pes = n_pes;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace lol::difftest

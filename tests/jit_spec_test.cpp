// Type-specialized JIT tier tests: golden type-lattice plans (guard
// placement, spill-at-materialization exits), deopt on a mid-loop
// NUMBR -> YARN flip, step-budget exactness at region boundaries, and
// record -> replay schedule-trace identity through the specialized
// symmetric-array path.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "codegen/jit_analysis.hpp"
#include "codegen/jit_backend.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "replay/trace.hpp"
#include "vm/compiler.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;
using lol::RunResult;

std::string plan_for(const std::string& source) {
  // -O0: the golden plans pin the lattice itself, not the optimizer
  // (at -O2 these toy bodies fold away to bare VISIBLEs).
  lol::CompileOptions copts;
  copts.opt_level = 0;
  auto prog = lol::compile(source, copts);
  lol::vm::Chunk chunk =
      lol::vm::compile_program(prog.program, prog.analysis);
  lol::codegen::SpecPlan plan = lol::codegen::analyze_chunk(chunk);
  return lol::codegen::describe_plan(chunk, plan);
}

RunResult run_backend(const lol::CompiledProgram& prog, Backend b,
                      int n_pes, std::uint64_t max_steps = 0) {
  RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = b;
  cfg.max_steps = max_steps;
  return lol::run(prog, cfg);
}

// ---- golden type-lattice plans ----------------------------------------

TEST(JitSpec, LatticePlansDeclaresAndArithmeticAsOneRegion) {
  std::string d = plan_for(
      "HAI 1.2\n"
      "I HAS A a ITZ A NUMBR AN ITZ 3\n"
      "I HAS A b ITZ A NUMBR AN ITZ 4\n"
      "I HAS A c ITZ A NUMBR AN ITZ SUM OF PRODUKT OF a AN a AN "
      "PRODUKT OF b AN b\n"
      "VISIBLE c\n"
      "KTHXBYE\n");
  // In-region declares are guarded as still-unbound, lower to declare
  // acts, and the unprovable VISIBLE ends the region with the printed
  // value spilled at the materialization point.
  EXPECT_NE(d.find("unbound"), std::string::npos) << d;
  EXPECT_NE(d.find("=> declare"), std::string::npos) << d;
  EXPECT_NE(d.find("materialize 1"), std::string::npos) << d;
  EXPECT_NE(d.find("writeback"), std::string::npos) << d;
}

TEST(JitSpec, LatticeGuardsPreexistingLocalByDeclaredHint) {
  std::string d = plan_for(
      "HAI 1.2\n"
      "I HAS A x ITZ A NUMBR AN ITZ 7\n"
      "VISIBLE \"GO\"\n"
      "x R SUM OF x AN 1\n"
      "VISIBLE x\n"
      "KTHXBYE\n");
  // The second region reads x before writing it: the entry guard must
  // prove the cell still holds a NUMBR (payload parked in the bank).
  EXPECT_NE(d.find("scalar-numbr"), std::string::npos) << d;
}

TEST(JitSpec, LatticePromotesMixedNumbrNumbarBinaries) {
  std::string d = plan_for(
      "HAI 1.2\n"
      "I HAS A j ITZ A NUMBR AN ITZ 3\n"
      "I HAS A x ITZ A NUMBAR AN ITZ PRODUKT OF 0.5 AN j\n"
      "VISIBLE x\n"
      "KTHXBYE\n");
  // NUMBR-op-NUMBAR takes rt::arith's float path, so the int operand
  // converts in place and the op proceeds as a double op — without this
  // every mixed expression would end its region mid-statement.
  EXPECT_NE(d.find("bin PRODUKT OF numbar (promote rhs)"),
            std::string::npos)
      << d;
  // Parity with the VM on the same mix.
  lol::RunConfig vm_cfg, jit_cfg;
  vm_cfg.backend = lol::Backend::kVm;
  jit_cfg.backend = lol::Backend::kJit;
  jit_cfg.jit_spec = true;
  auto prog = lol::compile(
      "HAI 1.2\n"
      "I HAS A acc ITZ A NUMBAR AN ITZ 0.0\n"
      "IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 9\n"
      "  acc R SUM OF acc AN PRODUKT OF 0.25 AN j\n"
      "  BOTH SAEM j AN SMALLR OF 4.5 AN j\n"  // mixed compare, mixed min
      "IM OUTTA YR loop\n"
      "VISIBLE acc\n"
      "KTHXBYE\n");
  auto vm = lol::run(prog, vm_cfg);
  auto jit = lol::run(prog, jit_cfg);
  ASSERT_TRUE(vm.ok) << vm.first_error();
  ASSERT_TRUE(jit.ok) << jit.first_error();
  EXPECT_EQ(vm.pe_output, jit.pe_output);
}

TEST(JitSpec, LatticeSpecializesSymmetricArraysBehindGuards) {
  std::string d = plan_for(
      "HAI 1.2\n"
      "WE HAS A v ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
      "v'Z 0 R 5\n"
      "VISIBLE v'Z 0\n"
      "KTHXBYE\n");
  // Symmetric lanes are raw typed slots: indexed local access lowers to
  // arr acts behind a sym-array guard (the helper preserves the
  // schedule-yield token order and the sim-time charge).
  EXPECT_NE(d.find("sym-array-numbr"), std::string::npos) << d;
  EXPECT_NE(d.find("=> arr-store"), std::string::npos) << d;
  EXPECT_NE(d.find("=> arr-load"), std::string::npos) << d;
}

TEST(JitSpec, EmitterCoversRegionsAndCountsSpecializedOps) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  auto prog = lol::compile(
      "HAI 1.2\n"
      "I HAS A spec_cover_salt ITZ \"emit-info\"\n"
      "I HAS A acc ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 100\n"
      "  acc R SUM OF acc AN i\n"
      "IM OUTTA YR loop\n"
      "VISIBLE acc\n"
      "KTHXBYE\n");
  auto chunk = std::make_shared<lol::vm::Chunk>(
      lol::vm::compile_program(prog.program, prog.analysis));
  std::string err;
  auto jit = lol::codegen::JitProgram::get_or_build(chunk, &err);
  ASSERT_NE(jit, nullptr) << err;
  if (!lol::codegen::jit_spec_enabled()) GTEST_SKIP() << "spec off";
  EXPECT_GT(jit->emit_info().regions, 0u);
  EXPECT_GT(jit->emit_info().spec_pcs, 0u);

  auto& spec_ops = lol::obs::Registry::global().counter(
      "lol_jit_specialized_ops_total",
      "Bytecode ops retired by the type-specialized JIT tier");
  std::uint64_t before = spec_ops.value();
  RunResult vm = run_backend(prog, Backend::kVm, 1);
  RunResult jr = run_backend(prog, Backend::kJit, 1);
  ASSERT_TRUE(jr.ok) << jr.first_error();
  EXPECT_EQ(vm.pe_output, jr.pe_output);
  EXPECT_GT(spec_ops.value(), before)
      << "specialized tier reported coverage but retired no ops";
}

// ---- deopt: guard failure falls back to the generic tier --------------

TEST(JitSpec, DeoptsOnNumbrToYarnFlipMidLoop) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  if (!lol::codegen::jit_spec_enabled()) GTEST_SKIP() << "spec off";
  // x is NUMBR-hinted and read in the loop's hot region every
  // iteration; halfway through it flips to a YARN, so every later
  // guarded entry must fail, count a deopt, and resume generically
  // (where SUM coerces the YARN) — output byte-identical to the VM.
  auto prog = lol::compile(
      "HAI 1.2\n"
      "I HAS A spec_deopt_salt ITZ \"flip\"\n"
      "I HAS A x ITZ 0\n"
      "I HAS A acc ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 40\n"
      "  BOTH SAEM i AN 20, O RLY?\n"
      "  YA RLY\n"
      "    x R \"9\"\n"
      "  OIC\n"
      "  acc R SUM OF acc AN x\n"
      "IM OUTTA YR loop\n"
      "VISIBLE acc\n"
      "VISIBLE x\n"
      "KTHXBYE\n");
  auto& deopts = lol::obs::Registry::global().counter(
      "lol_jit_deopts_total",
      "Specialized-region guard failures (fell back to the generic "
      "call-threaded tier)");
  std::uint64_t before = deopts.value();
  RunResult vm = run_backend(prog, Backend::kVm, 1);
  RunResult jr = run_backend(prog, Backend::kJit, 1);
  ASSERT_TRUE(vm.ok) << vm.first_error();
  ASSERT_TRUE(jr.ok) << jr.first_error();
  EXPECT_EQ(vm.pe_output, jr.pe_output);
  EXPECT_GT(deopts.value(), before)
      << "type flip crossed a guarded region entry without deopting";
}

// ---- step-budget exactness at region boundaries -----------------------

TEST(JitSpec, StepBudgetIsExactAcrossRegionBoundaries) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  // The loop body is one specialized region charged in batches; the
  // budget edge must land on exactly the same step as the VM's
  // per-op accounting: S steps pass, S-1 trip the limit.
  auto prog = lol::compile(
      "HAI 1.2\n"
      "I HAS A spec_budget_salt ITZ \"edge\"\n"
      "I HAS A acc ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 50\n"
      "  acc R SUM OF PRODUKT OF acc AN 1 AN i\n"
      "IM OUTTA YR loop\n"
      "VISIBLE acc\n"
      "KTHXBYE\n");
  RunResult base = run_backend(prog, Backend::kVm, 1);
  ASSERT_TRUE(base.ok) << base.first_error();
  ASSERT_EQ(base.pe_profiles.size(), 1u);
  std::uint64_t steps = base.pe_profiles[0].steps;
  ASSERT_GT(steps, 0u);

  for (Backend b : {Backend::kVm, Backend::kJit}) {
    RunResult exact = run_backend(prog, b, 1, steps);
    EXPECT_TRUE(exact.ok) << lol::to_string(b) << ": "
                          << exact.first_error();
    EXPECT_FALSE(exact.step_limited) << lol::to_string(b);
    RunResult tight = run_backend(prog, b, 1, steps - 1);
    EXPECT_FALSE(tight.ok) << lol::to_string(b);
    EXPECT_TRUE(tight.step_limited)
        << lol::to_string(b) << " ran past a budget one below exact";
  }
}

// ---- record -> replay trace identity ----------------------------------

TEST(JitSpec, RecordedScheduleReplaysAcrossTiers) {
  if (!lol::codegen::jit_available()) GTEST_SKIP() << "jit unavailable";
  // Symmetric stores are schedule-yield token events even when they run
  // specialized; a schedule recorded under the JIT must replay exactly
  // under both the VM and the JIT.
  auto prog = lol::compile(
      "HAI 1.2\n"
      "I HAS A spec_replay_salt ITZ \"trace\"\n"
      "WE HAS A ring ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n"
      "IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN 4\n"
      "  ring'Z i R PRODUKT OF SUM OF ME AN 1 AN i\n"
      "IM OUTTA YR fill\n"
      "HUGZ\n"
      "I HAS A nxt ITZ A NUMBR AN ITZ SUM OF ME AN 1\n"
      "BOTH SAEM nxt AN MAH FRENZ, O RLY?\n"
      "YA RLY\n"
      "  nxt R 0\n"
      "OIC\n"
      "I HAS A total ITZ A NUMBR AN ITZ 0\n"
      "IM IN YR gather UPPIN YR i TIL BOTH SAEM i AN 4\n"
      "  TXT MAH BFF nxt, total R SUM OF total AN UR ring'Z i\n"
      "IM OUTTA YR gather\n"
      "VISIBLE \"PE \" ME \" TOTAL \" total\n"
      "KTHXBYE\n");
  RunConfig rec;
  rec.n_pes = 4;
  rec.backend = Backend::kJit;
  rec.schedule = lol::replay::ScheduleMode::kRecord;
  RunResult recorded = lol::run(prog, rec);
  ASSERT_TRUE(recorded.ok) << recorded.first_error();
  ASSERT_FALSE(recorded.schedule_trace.empty());
  std::string terr;
  auto trace =
      lol::replay::Trace::parse(recorded.schedule_trace, &terr);
  ASSERT_TRUE(trace.has_value()) << terr;

  for (Backend b : {Backend::kVm, Backend::kJit}) {
    RunConfig rep;
    rep.n_pes = 4;
    rep.backend = b;
    rep.schedule = lol::replay::ScheduleMode::kReplay;
    rep.replay_trace =
        std::make_shared<lol::replay::Trace>(*trace);
    RunResult replayed = lol::run(prog, rep);
    EXPECT_TRUE(replayed.ok)
        << lol::to_string(b) << ": " << replayed.first_error();
    EXPECT_FALSE(replayed.replay_diverged) << lol::to_string(b);
    EXPECT_EQ(recorded.pe_output, replayed.pe_output)
        << lol::to_string(b);
  }
}

}  // namespace

// Record/replay + fault-injection tests: trace round-trip and hostile
// parsing, record -> replay byte-identity across every backend x
// executor, seeded schedule perturbation exposing a real race and the
// failing seed replaying exactly, kill/NoC/input fault injection, the
// controller's deadlock diagnosis, and the service/wire plumbing
// (pe-failed status, sched_trace delivery, bad-trace rejection).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "codegen/jit_backend.hpp"
#include "codegen/native_backend.hpp"
#include "core/engine.hpp"
#include "noc/machines.hpp"
#include "replay/controller.hpp"
#include "replay/fault.hpp"
#include "replay/trace.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;
using lol::RunResult;
using lol::replay::FaultPlan;
using lol::replay::ScheduleMode;
using lol::replay::Trace;
using lol::service::Job;
using lol::service::JobResult;
using lol::service::JobStatus;
using lol::service::Service;
using lol::service::ServiceOptions;
using lol::shmem::ExecutorKind;

// Locked counter + a WHATEVR draw: exercises barriers, locks, remote
// writes and the RNG choice point in one program.
const char* kCounter =
    "HAI 1.2\n"
    "WE HAS A count ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
    "HUGZ\n"
    "TXT MAH BFF 0 AN STUFF\n"
    "  IM SRSLY MESIN WIF UR count\n"
    "  UR count R SUM OF UR count AN 1\n"
    "  DUN MESIN WIF UR count\n"
    "TTYL\n"
    "HUGZ\n"
    "BOTH SAEM ME AN 0, O RLY?\n"
    "YA RLY\n  VISIBLE count\n  VISIBLE WHATEVR\nOIC\n"
    "KTHXBYE\n";

// The acceptance fixture: an nbody-style init race — every PE adds its
// id into PE 0's slot, but the HUGZ between the writes and the read has
// been removed, so what PE 0 prints depends on the schedule.
const char* kRace =
    "HAI 1.2\n"
    "WE HAS A slot ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
    "TXT MAH BFF 0 AN STUFF\n"
    "  UR slot R SUM OF UR slot AN ME\n"
    "TTYL\n"
    "BOTH SAEM ME AN 0, O RLY?\n"
    "YA RLY\n  VISIBLE slot\nOIC\n"
    "KTHXBYE\n";

RunResult record_run(const lol::CompiledProgram& prog, int n_pes,
                     ScheduleMode mode = ScheduleMode::kRecord,
                     std::uint64_t perturb_seed = 0) {
  RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.schedule = mode;
  cfg.perturb_seed = perturb_seed;
  return lol::run(prog, cfg);
}

std::shared_ptr<const Trace> parse_trace(const std::string& text) {
  std::string err;
  auto t = Trace::parse(text, &err);
  EXPECT_TRUE(t.has_value()) << err;
  return t ? std::make_shared<Trace>(std::move(*t)) : nullptr;
}

// ---------------------------------------------------------------------------
// Trace serialization
// ---------------------------------------------------------------------------

TEST(Trace, SerializeParseRoundTrip) {
  Trace t;
  t.n_pes = 4;
  t.seed = 42;
  t.perturb_seed = 7;
  t.program_hash = 0xdeadbeefcafe1234ull;
  t.perturbed = true;
  t.schedule = {0, 1, 1, 1, 2, 3, 0, 0};
  t.rng_draws = {2, 0, 0, 1};
  std::string text = t.serialize();
  std::string err;
  auto back = Trace::parse(text, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->n_pes, t.n_pes);
  EXPECT_EQ(back->seed, t.seed);
  EXPECT_EQ(back->perturb_seed, t.perturb_seed);
  EXPECT_EQ(back->program_hash, t.program_hash);
  EXPECT_EQ(back->perturbed, t.perturbed);
  EXPECT_EQ(back->schedule, t.schedule);
  EXPECT_EQ(back->rng_draws, t.rng_draws);
  // Round-trip is exact: re-serializing yields the same bytes.
  EXPECT_EQ(back->serialize(), text);
}

TEST(Trace, HostileInputsRejectedCleanly) {
  Trace t;
  t.n_pes = 2;
  t.seed = 1;
  t.schedule = {0, 1, 0};
  t.rng_draws = {0, 0};
  const std::string good = t.serialize();
  ASSERT_TRUE(Trace::parse(good, nullptr).has_value());

  auto rejected = [](const std::string& text) {
    std::string err;
    bool ok = Trace::parse(text, &err).has_value();
    EXPECT_FALSE(ok) << "parsed: " << text;
    if (!ok) EXPECT_FALSE(err.empty());
    return !ok;
  };

  EXPECT_TRUE(rejected(""));
  EXPECT_TRUE(rejected("not a trace"));
  EXPECT_TRUE(rejected(good.substr(0, good.size() / 2)));  // truncated
  EXPECT_TRUE(rejected(good + "extra line\n"));            // trailing junk
  // Corrupt the schedule: PE id out of range.
  {
    std::string bad = good;
    bad.replace(bad.find("\n0,"), 3, "\n9,");
    EXPECT_TRUE(rejected(bad));
  }
  // Corrupt the checksum.
  {
    std::string bad = good;
    auto fnv = bad.rfind("\"fnv\":\"");
    ASSERT_NE(fnv, std::string::npos);
    bad[fnv + 7] = bad[fnv + 7] == '0' ? '1' : '0';
    EXPECT_TRUE(rejected(bad));
  }
  // Event count disagreeing with the schedule line.
  {
    std::string bad = good;
    auto ev = bad.find("\"events\":3");
    ASSERT_NE(ev, std::string::npos);
    bad.replace(ev, 10, "\"events\":4");
    EXPECT_TRUE(rejected(bad));
  }
  // Hostile sizes: n_pes beyond the cap.
  EXPECT_TRUE(rejected(
      "{\"parallol_trace\":1,\"mode\":\"record\",\"n_pes\":65536,"
      "\"seed\":1,\"perturb_seed\":0,\"program_hash\":\"0\",\"events\":0}"
      "\n\n{\"rng_draws\":[],\"fnv\":\"84222325cbf29ce4\"}\n"));
}

TEST(Trace, MatchesChecksShape) {
  Trace t;
  t.n_pes = 4;
  t.seed = 9;
  t.program_hash = 1234;
  std::string err;
  EXPECT_TRUE(t.matches(4, 9, 1234, &err));
  EXPECT_TRUE(t.matches(4, 9, 0, &err));  // unknown hash: check skipped
  EXPECT_FALSE(t.matches(8, 9, 1234, &err));
  EXPECT_FALSE(t.matches(4, 10, 1234, &err));
  EXPECT_FALSE(t.matches(4, 9, 5678, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Record -> replay determinism
// ---------------------------------------------------------------------------

TEST(Replay, ByteIdenticalAcrossBackendsAndExecutors) {
  auto prog = lol::compile(kCounter);
  RunResult rec = record_run(prog, 4);
  ASSERT_TRUE(rec.ok) << rec.first_error();
  ASSERT_FALSE(rec.schedule_trace.empty());
  auto trace = parse_trace(rec.schedule_trace);
  ASSERT_NE(trace, nullptr);

  std::vector<Backend> backends = {Backend::kInterp, Backend::kVm};
  if (lol::codegen::native_available()) backends.push_back(Backend::kNative);
  if (lol::codegen::jit_available()) backends.push_back(Backend::kJit);
  for (Backend be : backends) {
    for (ExecutorKind ex :
         {ExecutorKind::kThread, ExecutorKind::kPool, ExecutorKind::kFiber}) {
      RunConfig cfg;
      cfg.n_pes = 4;
      cfg.backend = be;
      cfg.executor = ex;
      cfg.schedule = ScheduleMode::kReplay;
      cfg.replay_trace = trace;
      RunResult rep = lol::run(prog, cfg);
      ASSERT_TRUE(rep.ok) << lol::to_string(be) << "/"
                          << lol::shmem::to_string(ex) << ": "
                          << rep.first_error();
      EXPECT_FALSE(rep.replay_diverged);
      EXPECT_EQ(rep.pe_output, rec.pe_output)
          << lol::to_string(be) << "/" << lol::shmem::to_string(ex);
      EXPECT_EQ(rep.pe_errout, rec.pe_errout);
    }
  }
}

TEST(Replay, PerturbSeedIsReproducibleAndRecordsReplayably) {
  auto prog = lol::compile(kCounter);
  RunResult a = record_run(prog, 4, ScheduleMode::kPerturb, 99);
  RunResult b = record_run(prog, 4, ScheduleMode::kPerturb, 99);
  ASSERT_TRUE(a.ok) << a.first_error();
  EXPECT_EQ(a.schedule_trace, b.schedule_trace);
  EXPECT_EQ(a.pe_output, b.pe_output);

  RunConfig cfg;
  cfg.n_pes = 4;
  cfg.schedule = ScheduleMode::kReplay;
  cfg.replay_trace = parse_trace(a.schedule_trace);
  ASSERT_NE(cfg.replay_trace, nullptr);
  RunResult rep = lol::run(prog, cfg);
  ASSERT_TRUE(rep.ok) << rep.first_error();
  EXPECT_EQ(rep.pe_output, a.pe_output);
}

TEST(Replay, PerturbationExposesRaceAndFailingSeedReplaysExactly) {
  // The acceptance fixture: shake the race until some seed's output
  // differs from the round-robin baseline, then replay that seed's trace
  // on every executor and get the racy output byte-for-byte again.
  auto prog = lol::compile(kRace);
  RunResult base = record_run(prog, 8);
  ASSERT_TRUE(base.ok) << base.first_error();

  RunResult divergent;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 16 && !found; ++seed) {
    RunResult r = record_run(prog, 8, ScheduleMode::kPerturb, seed);
    ASSERT_TRUE(r.ok) << r.first_error();
    if (r.pe_output != base.pe_output) {
      divergent = std::move(r);
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..16 exposed the missing-HUGZ race";

  auto trace = parse_trace(divergent.schedule_trace);
  ASSERT_NE(trace, nullptr);
  for (ExecutorKind ex :
       {ExecutorKind::kThread, ExecutorKind::kPool, ExecutorKind::kFiber}) {
    RunConfig cfg;
    cfg.n_pes = 8;
    cfg.executor = ex;
    cfg.schedule = ScheduleMode::kReplay;
    cfg.replay_trace = trace;
    RunResult rep = lol::run(prog, cfg);
    ASSERT_TRUE(rep.ok) << rep.first_error();
    EXPECT_EQ(rep.pe_output, divergent.pe_output)
        << "executor " << lol::shmem::to_string(ex);
  }
}

TEST(Replay, DivergenceDetectedAgainstWrongProgram) {
  // A trace recorded from the counter program cannot drive the racy
  // program: the schedules disagree, and the run must fail as a
  // diagnosed divergence rather than hang or silently succeed.
  auto counter = lol::compile(kCounter);
  RunResult rec = record_run(counter, 4);
  ASSERT_TRUE(rec.ok);
  RunConfig cfg;
  cfg.n_pes = 4;
  cfg.schedule = ScheduleMode::kReplay;
  cfg.replay_trace = parse_trace(rec.schedule_trace);
  ASSERT_NE(cfg.replay_trace, nullptr);
  auto race = lol::compile(kRace);
  RunResult rep = lol::run(race, cfg);
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.replay_diverged) << rep.first_error();
  EXPECT_NE(rep.first_error().find("diverg"), std::string::npos)
      << rep.first_error();
}

TEST(Replay, ReplayWithoutTraceIsAnError) {
  auto prog = lol::compile(kCounter);
  RunConfig cfg;
  cfg.n_pes = 2;
  cfg.schedule = ScheduleMode::kReplay;
  RunResult r = lol::run(prog, cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("trace"), std::string::npos);
}

TEST(Replay, ControllerDiagnosesScheduleDeadlock) {
  // PE 0 enters the barrier holding the lock PE 1 needs: a genuine
  // deadlock. Free-running this would wedge until an external deadline;
  // under the controller it aborts with a diagnosis.
  const char* deadlock =
      "HAI 1.2\n"
      "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n"
      "IM SRSLY MESIN WIF UR x\n"
      "HUGZ\n"
      "DUN MESIN WIF UR x\n"
      "KTHXBYE\n";
  auto prog = lol::compile(deadlock);
  RunResult r = record_run(prog, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("deadlock"), std::string::npos)
      << r.first_error();
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(Fault, SpecParsingAndRoundTrip) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(
      lol::replay::parse_fault_spec("pe=3@step=100,noc=4.5,input=2", &plan,
                                    &err))
      << err;
  EXPECT_EQ(plan.kill_pe, 3);
  EXPECT_EQ(plan.kill_step, 100u);
  EXPECT_DOUBLE_EQ(plan.noc_factor, 4.5);
  EXPECT_EQ(plan.input_fail_after, 2);
  // to_spec output parses back to the same plan.
  FaultPlan back;
  ASSERT_TRUE(
      lol::replay::parse_fault_spec(lol::replay::to_spec(plan), &back, &err));
  EXPECT_EQ(back.kill_pe, plan.kill_pe);
  EXPECT_EQ(back.kill_step, plan.kill_step);

  for (const char* bad :
       {"pe=1", "pe=@step=2", "pe=1@step=0", "pe=9999@step=1", "noc=0.5",
        "noc=x", "input=-1", "wat=1", "pe=1@step=2,,noc=2"}) {
    EXPECT_FALSE(lol::replay::parse_fault_spec(bad, nullptr, &err)) << bad;
  }
  // An empty spec is a valid no-fault plan.
  FaultPlan none;
  EXPECT_TRUE(lol::replay::parse_fault_spec("", &none, &err));
  EXPECT_FALSE(none.any());
}

TEST(Fault, KillPeMidBarrierFlagsPeFailed) {
  auto prog = lol::compile(kCounter);
  RunConfig cfg;
  cfg.n_pes = 4;
  std::string err;
  ASSERT_TRUE(lol::replay::parse_fault_spec("pe=2@step=3", &cfg.fault, &err));
  RunResult r = lol::run(prog, cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.pe_failed);
  EXPECT_FALSE(r.step_limited);
  EXPECT_NE(r.first_error().find("killed by fault injection"),
            std::string::npos)
      << r.first_error();
}

TEST(Fault, NocSpikeScalesSimulatedTime) {
  auto prog = lol::compile(kCounter);
  RunConfig cfg;
  cfg.n_pes = 4;
  cfg.machine = lol::noc::by_name("epiphany3");
  ASSERT_NE(cfg.machine, nullptr);
  RunResult base = lol::run(prog, cfg);
  ASSERT_TRUE(base.ok) << base.first_error();

  std::string err;
  ASSERT_TRUE(lol::replay::parse_fault_spec("noc=10", &cfg.fault, &err));
  RunResult spiked = lol::run(prog, cfg);
  ASSERT_TRUE(spiked.ok) << spiked.first_error();
  EXPECT_NEAR(spiked.max_sim_ns(), 10.0 * base.max_sim_ns(),
              1e-6 * spiked.max_sim_ns());
}

TEST(Fault, NocSpikeWithoutMachineModelIsAnError) {
  auto prog = lol::compile(kCounter);
  RunConfig cfg;
  cfg.n_pes = 2;
  std::string err;
  ASSERT_TRUE(lol::replay::parse_fault_spec("noc=10", &cfg.fault, &err));
  RunResult r = lol::run(prog, cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("machine"), std::string::npos);
}

TEST(Fault, InputSourceDiesMidStream) {
  const char* reader =
      "HAI 1.2\n"
      "I HAS A a\nI HAS A b\nI HAS A c\n"
      "GIMMEH a\nVISIBLE a\nGIMMEH b\nVISIBLE b\nGIMMEH c\nVISIBLE c\n"
      "KTHXBYE\n";
  auto prog = lol::compile(reader);
  RunConfig cfg;
  cfg.n_pes = 1;
  cfg.stdin_lines = {"one", "two", "three"};
  std::string err;
  ASSERT_TRUE(lol::replay::parse_fault_spec("input=2", &cfg.fault, &err));
  RunResult r = lol::run(prog, cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.first_error().find("fault injection"), std::string::npos)
      << r.first_error();
  // The first two reads succeeded before the source died.
  EXPECT_EQ(r.pe_output[0], "one\ntwo\n");
}

// ---------------------------------------------------------------------------
// Service + wire plumbing
// ---------------------------------------------------------------------------

TEST(ReplayService, RecordThenReplayThroughJobs) {
  Service svc(ServiceOptions{});
  Job rec;
  rec.name = "rec";
  rec.source = kCounter;
  rec.n_pes = 4;
  rec.schedule = ScheduleMode::kRecord;
  JobResult rr = svc.submit(rec).get();
  ASSERT_EQ(rr.status, JobStatus::kOk) << rr.error;
  ASSERT_FALSE(rr.schedule_trace.empty());

  Job rep = rec;
  rep.name = "rep";
  rep.schedule = ScheduleMode::kReplay;
  rep.replay_trace = rr.schedule_trace;
  JobResult pr = svc.submit(rep).get();
  EXPECT_EQ(pr.status, JobStatus::kOk) << pr.error;
  EXPECT_EQ(pr.pe_output, rr.pe_output);
  EXPECT_TRUE(pr.schedule_trace.empty());  // replay does not re-record
}

TEST(ReplayService, BadTraceAndBadFaultSpecAreRejected) {
  Service svc(ServiceOptions{});
  Job bad;
  bad.name = "bad-trace";
  bad.source = kCounter;
  bad.n_pes = 2;
  bad.schedule = ScheduleMode::kReplay;
  bad.replay_trace = "definitely not a trace";
  JobResult r = svc.submit(bad).get();
  EXPECT_EQ(r.status, JobStatus::kRejected);
  EXPECT_NE(r.error.find("trace"), std::string::npos);

  Job badf;
  badf.name = "bad-fault";
  badf.source = kCounter;
  badf.n_pes = 2;
  badf.fault_spec = "pe=1";
  JobResult rf = svc.submit(badf).get();
  EXPECT_EQ(rf.status, JobStatus::kRejected);
  EXPECT_NE(rf.error.find("fault"), std::string::npos);
}

TEST(ReplayService, KillFaultClassifiesAsPeFailedQuickly) {
  // The fault-smoke acceptance check: killing a PE mid-barrier resolves
  // the job as pe-failed promptly (the gang aborts; nothing waits for a
  // deadline), and the status is distinct from step-limit/runtime-error.
  Service svc(ServiceOptions{});
  Job j;
  j.name = "killed";
  j.source = kCounter;
  j.n_pes = 4;
  j.fault_spec = "pe=3@step=2";
  auto t0 = std::chrono::steady_clock::now();
  JobResult r = svc.submit(j).get();
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  EXPECT_EQ(r.status, JobStatus::kPeFailed) << r.error;
  EXPECT_LT(ms, 1000.0);
  EXPECT_EQ(svc.stats().pe_failed, 1u);
}

TEST(ReplayWire, SubmitLineRoundTripsScheduleAndFault) {
  Job j;
  j.name = "w";
  j.source = kRace;
  j.n_pes = 8;
  j.schedule = ScheduleMode::kPerturb;
  j.perturb_seed = 123;
  j.fault_spec = "pe=1@step=9";
  j.replay_trace = "line1\nline2\n";
  std::string line = lol::service::wire::submit_line(j);
  std::string err;
  auto req = lol::service::wire::parse_request(line, &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->job.schedule, ScheduleMode::kPerturb);
  EXPECT_EQ(req->job.perturb_seed, 123u);
  EXPECT_EQ(req->job.fault_spec, "pe=1@step=9");
  EXPECT_EQ(req->job.replay_trace, "line1\nline2\n");

  // Unknown schedule names are protocol errors, like unknown backends.
  auto bad = lol::service::wire::parse_request(
      "{\"op\":\"submit\",\"source\":\"HAI 1.2\\nKTHXBYE\","
      "\"schedule\":\"chaotic\"}",
      &err);
  EXPECT_FALSE(bad.has_value());
  EXPECT_NE(err.find("schedule"), std::string::npos);
}

TEST(ReplayWire, ResultLineCarriesScheduleTrace) {
  JobResult r;
  r.id = 7;
  r.name = "t";
  r.status = JobStatus::kOk;
  r.schedule_trace = "{\"parallol_trace\":1}\n0\n{}\n";
  std::string line = lol::service::wire::result_line(r);
  EXPECT_NE(line.find("\"sched_trace\""), std::string::npos);
  std::string err;
  auto doc = lol::service::wire::parse_json(line, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto* trace = doc->find("sched_trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->str, r.schedule_trace);

  // Absent when the run was not recorded.
  r.schedule_trace.clear();
  EXPECT_EQ(lol::service::wire::result_line(r).find("sched_trace"),
            std::string::npos);
}

}  // namespace

// Parser tests: structural golden dumps for every construct, the paper's
// own code fragments, and grammar error positions.
#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "parse/parser.hpp"

namespace {

using lol::parse::parse_expression;
using lol::parse::parse_program;
using lol::support::ParseError;

std::string expr_dump(std::string_view src) {
  return lol::ast::dump(*parse_expression(src));
}

std::string first_stmt_dump(std::string_view body) {
  std::string src = "HAI 1.2\n" + std::string(body) + "\nKTHXBYE\n";
  lol::ast::Program p = parse_program(src);
  EXPECT_FALSE(p.body.empty()) << body;
  return lol::ast::dump(*p.body.front());
}

// -- expressions ---------------------------------------------------------------

TEST(ParseExpr, Literals) {
  EXPECT_EQ(expr_dump("42"), "(numbr 42)");
  EXPECT_EQ(expr_dump("-3"), "(numbr -3)");
  EXPECT_EQ(expr_dump("0.5"), "(numbar 0.5)");
  EXPECT_EQ(expr_dump("WIN"), "(troof WIN)");
  EXPECT_EQ(expr_dump("FAIL"), "(troof FAIL)");
  EXPECT_EQ(expr_dump("NOOB"), "(noob)");
  EXPECT_EQ(expr_dump("\"hai\""), "(yarn \"hai\")");
}

TEST(ParseExpr, BinaryOps) {
  EXPECT_EQ(expr_dump("SUM OF 1 AN 2"), "(sum (numbr 1) (numbr 2))");
  EXPECT_EQ(expr_dump("DIFF OF a AN b"), "(diff (var a) (var b))");
  EXPECT_EQ(expr_dump("PRODUKT OF a AN b"), "(produkt (var a) (var b))");
  EXPECT_EQ(expr_dump("QUOSHUNT OF a AN b"), "(quoshunt (var a) (var b))");
  EXPECT_EQ(expr_dump("MOD OF a AN b"), "(mod (var a) (var b))");
  EXPECT_EQ(expr_dump("BIGGR OF a AN b"), "(biggr (var a) (var b))");
  EXPECT_EQ(expr_dump("SMALLR OF a AN b"), "(smallr (var a) (var b))");
  EXPECT_EQ(expr_dump("BOTH SAEM a AN b"), "(saem (var a) (var b))");
  EXPECT_EQ(expr_dump("DIFFRINT a AN b"), "(diffrint (var a) (var b))");
  EXPECT_EQ(expr_dump("BIGGER a AN b"), "(bigger (var a) (var b))");
  EXPECT_EQ(expr_dump("SMALLR a AN b"), "(smallr< (var a) (var b))");
  EXPECT_EQ(expr_dump("BOTH OF a AN b"), "(both (var a) (var b))");
  EXPECT_EQ(expr_dump("EITHER OF a AN b"), "(either (var a) (var b))");
  EXPECT_EQ(expr_dump("WON OF a AN b"), "(won (var a) (var b))");
}

TEST(ParseExpr, AnIsOptional) {
  EXPECT_EQ(expr_dump("SUM OF 1 2"), "(sum (numbr 1) (numbr 2))");
}

TEST(ParseExpr, NestedPrefixExpressions) {
  EXPECT_EQ(expr_dump("SUM OF PRODUKT OF a AN b AN c"),
            "(sum (produkt (var a) (var b)) (var c))");
  // The paper's n-body: QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000.
  EXPECT_EQ(expr_dump("QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000"),
            "(quoshunt (sum (me) (whatevar)) (numbr 1000))");
}

TEST(ParseExpr, UnaryAndMathExtensions) {
  EXPECT_EQ(expr_dump("NOT x"), "(not (var x))");
  EXPECT_EQ(expr_dump("SQUAR OF x"), "(squar (var x))");
  EXPECT_EQ(expr_dump("UNSQUAR OF x"), "(unsquar (var x))");
  EXPECT_EQ(expr_dump("FLIP OF x"), "(flip (var x))");
  EXPECT_EQ(expr_dump("FLIP OF UNSQUAR OF SUM OF dx AN dy"),
            "(flip (unsquar (sum (var dx) (var dy))))");
}

TEST(ParseExpr, VariadicOps) {
  EXPECT_EQ(expr_dump("ALL OF a AN b AN c MKAY"),
            "(all (var a) (var b) (var c))");
  EXPECT_EQ(expr_dump("ANY OF a AN b MKAY"), "(any (var a) (var b))");
  EXPECT_EQ(expr_dump("SMOOSH a AN b MKAY"), "(smoosh (var a) (var b))");
  // MKAY may be omitted at end of statement.
  EXPECT_EQ(expr_dump("ALL OF a AN b"), "(all (var a) (var b))");
}

TEST(ParseExpr, CastAndSrs) {
  EXPECT_EQ(expr_dump("MAEK x A NUMBAR"), "(maek (var x) NUMBAR)");
  EXPECT_EQ(expr_dump("SRS x"), "(srs (var x))");
}

TEST(ParseExpr, ParallelLeaves) {
  EXPECT_EQ(expr_dump("ME"), "(me)");
  EXPECT_EQ(expr_dump("MAH FRENZ"), "(mah-frenz)");
  EXPECT_EQ(expr_dump("WHATEVR"), "(whatevr)");
  EXPECT_EQ(expr_dump("WHATEVAR"), "(whatevar)");
  EXPECT_EQ(expr_dump("IT"), "(it)");
}

TEST(ParseExpr, UrMahQualifiers) {
  EXPECT_EQ(expr_dump("UR x"), "(var ur x)");
  EXPECT_EQ(expr_dump("MAH x"), "(var mah x)");
  EXPECT_EQ(expr_dump("UR pos_x'Z j"), "(index (var ur pos_x) (var j))");
}

TEST(ParseExpr, Indexing) {
  EXPECT_EQ(expr_dump("arr'Z 3"), "(index (var arr) (numbr 3))");
  EXPECT_EQ(expr_dump("arr'Z SUM OF i AN 1"),
            "(index (var arr) (sum (var i) (numbr 1)))");
}

TEST(ParseExpr, FunctionCall) {
  EXPECT_EQ(expr_dump("I IZ foo MKAY"), "(call foo)");
  EXPECT_EQ(expr_dump("I IZ foo YR 1 AN YR x MKAY"),
            "(call foo (numbr 1) (var x))");
}

// -- statements -----------------------------------------------------------------

TEST(ParseStmt, Declarations) {
  EXPECT_EQ(first_stmt_dump("I HAS A x"), "(decl i x)");
  EXPECT_EQ(first_stmt_dump("I HAS A x ITZ 5"),
            "(decl i x init=(numbr 5))");
  EXPECT_EQ(first_stmt_dump("I HAS A x ITZ A NUMBR"), "(decl i x :NUMBR)");
  EXPECT_EQ(first_stmt_dump("I HAS A x ITZ SRSLY A NUMBAR"),
            "(decl i x :NUMBAR srsly)");
  EXPECT_EQ(first_stmt_dump("I HAS A x ITZ A NUMBR AN ITZ ME"),
            "(decl i x :NUMBR init=(me))");
}

TEST(ParseStmt, ArrayDeclarations) {
  EXPECT_EQ(
      first_stmt_dump("I HAS A v ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32"),
      "(decl i v :NUMBAR srsly array size=(numbr 32))");
  EXPECT_EQ(first_stmt_dump("I HAS A v ITZ LOTZ A YARNS AN THAR IZ 4"),
            "(decl i v :YARN array size=(numbr 4))");
}

TEST(ParseStmt, SymmetricDeclarations) {
  EXPECT_EQ(first_stmt_dump("WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT"),
            "(decl we x :NUMBR srsly sharin)");
  EXPECT_EQ(
      first_stmt_dump("WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 100"),
      "(decl we a :NUMBR srsly array size=(numbr 100))");
  // Paper §VI.D: size clause, then IM SHARIN IT, joined by AN.
  EXPECT_EQ(first_stmt_dump("WE HAS A p ITZ SRSLY LOTZ A NUMBARS ...\n"
                            "  AN THAR IZ 32 AN IM SHARIN IT"),
            "(decl we p :NUMBAR srsly array size=(numbr 32) sharin)");
}

TEST(ParseStmt, AssignmentForms) {
  EXPECT_EQ(first_stmt_dump("x R 5"), "(assign (var x) (numbr 5))");
  EXPECT_EQ(first_stmt_dump("arr'Z 0 R 5"),
            "(assign (index (var arr) (numbr 0)) (numbr 5))");
  EXPECT_EQ(first_stmt_dump("UR b R MAH a"),
            "(assign (var ur b) (var mah a))");
  EXPECT_EQ(first_stmt_dump("IT R 1"), "(assign (it) (numbr 1))");
}

TEST(ParseStmt, VisibleAndGimmeh) {
  EXPECT_EQ(first_stmt_dump("VISIBLE \"HAI\""), "(visible (yarn \"HAI\"))");
  EXPECT_EQ(first_stmt_dump("VISIBLE a \" \" b"),
            "(visible (var a) (yarn \" \") (var b))");
  EXPECT_EQ(first_stmt_dump("VISIBLE x!"), "(visible (var x) !)");
  EXPECT_EQ(first_stmt_dump("INVISIBLE \"err\""),
            "(invisible (yarn \"err\"))");
  EXPECT_EQ(first_stmt_dump("GIMMEH x"), "(gimmeh (var x))");
  EXPECT_EQ(first_stmt_dump("GIMMEH arr'Z 2"),
            "(gimmeh (index (var arr) (numbr 2)))");
}

TEST(ParseStmt, CastInPlace) {
  EXPECT_EQ(first_stmt_dump("x IS NOW A YARN"), "(isnowa (var x) YARN)");
}

TEST(ParseStmt, ORlyBlock) {
  std::string d = first_stmt_dump(
      "BOTH SAEM x AN 1, O RLY?\n"
      "YA RLY\n  VISIBLE \"one\"\n"
      "MEBBE BOTH SAEM x AN 2\n  VISIBLE \"two\"\n"
      "NO WAI\n  VISIBLE \"other\"\nOIC");
  // The leading expression is its own statement; O RLY? is the second.
  // first_stmt_dump returns the expression statement.
  EXPECT_EQ(d, "(expr (saem (var x) (numbr 1)))");
}

TEST(ParseStmt, ORlyStructure) {
  std::string src =
      "HAI 1.2\nO RLY?\nYA RLY\n  x R 1\nNO WAI\n  x R 2\nOIC\nKTHXBYE\n";
  auto p = parse_program(src);
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(lol::ast::dump(*p.body[0]),
            "(orly (ya (assign (var x) (numbr 1))) "
            "(nowai (assign (var x) (numbr 2))))");
}

TEST(ParseStmt, WtfStructure) {
  std::string src =
      "HAI 1.2\nWTF?\nOMG 1\n  VISIBLE \"a\"\n  GTFO\nOMG 2\n"
      "  VISIBLE \"b\"\nOMGWTF\n  VISIBLE \"c\"\nOIC\nKTHXBYE\n";
  auto p = parse_program(src);
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(lol::ast::dump(*p.body[0]),
            "(wtf (omg (numbr 1) (visible (yarn \"a\")) (gtfo)) "
            "(omg (numbr 2) (visible (yarn \"b\"))) "
            "(omgwtf (visible (yarn \"c\"))))");
}

TEST(ParseStmt, LoopForms) {
  EXPECT_EQ(first_stmt_dump("IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 3\n"
                            "  VISIBLE i\nIM OUTTA YR loop"),
            "(loop loop uppin:i til=(saem (var i) (numbr 3)) "
            "(visible (var i)))");
  EXPECT_EQ(first_stmt_dump("IM IN YR l NERFIN YR k WILE BIGGER k AN 0\n"
                            "  VISIBLE k\nIM OUTTA YR l"),
            "(loop l nerfin:k wile=(bigger (var k) (numbr 0)) "
            "(visible (var k)))");
  EXPECT_EQ(first_stmt_dump("IM IN YR forever\n  GTFO\nIM OUTTA YR forever"),
            "(loop forever (gtfo))");
}

TEST(ParseStmt, NestedLoopsWithSameLabel) {
  // The paper's n-body nests several loops all labeled `loop`.
  std::string src =
      "HAI 1.2\n"
      "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 2\n"
      "  IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 2\n"
      "    VISIBLE i\n"
      "  IM OUTTA YR loop\n"
      "IM OUTTA YR loop\n"
      "KTHXBYE\n";
  EXPECT_NO_THROW(parse_program(src));
}

TEST(ParseStmt, FunctionDefAndCall) {
  std::string src =
      "HAI 1.2\n"
      "HOW IZ I addtwo YR a AN YR b\n"
      "  FOUND YR SUM OF a AN b\n"
      "IF U SAY SO\n"
      "VISIBLE I IZ addtwo YR 1 AN YR 2 MKAY\n"
      "KTHXBYE\n";
  auto p = parse_program(src);
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(lol::ast::dump(*p.body[0]),
            "(func addtwo (a b) (found (sum (var a) (var b))))");
}

TEST(ParseStmt, CanHas) {
  EXPECT_EQ(first_stmt_dump("CAN HAS STDIO?"), "(canhas STDIO)");
}

TEST(ParseStmt, ParallelStatements) {
  EXPECT_EQ(first_stmt_dump("HUGZ"), "(hugz)");
  EXPECT_EQ(first_stmt_dump("IM SRSLY MESIN WIF x"), "(lock (var x))");
  EXPECT_EQ(first_stmt_dump("IM MESIN WIF x"), "(trylock (var x))");
  EXPECT_EQ(first_stmt_dump("DUN MESIN WIF x"), "(unlock (var x))");
  EXPECT_EQ(first_stmt_dump("IM MESIN WIF UR x"), "(trylock (var ur x))");
}

TEST(ParseStmt, TxtSingleStatement) {
  // Paper §VI.A: TXT MAH BFF next_pe, MAH array R UR array
  EXPECT_EQ(first_stmt_dump("TXT MAH BFF next_pe, MAH array R UR array"),
            "(txt (var next_pe) (assign (var mah array) (var ur array)))");
  // Paper §V: complex predicated statement.
  EXPECT_EQ(
      first_stmt_dump("TXT MAH BFF k, MAH x R SUM OF UR y AN UR z"),
      "(txt (var k) (assign (var mah x) (sum (var ur y) (var ur z))))");
}

TEST(ParseStmt, TxtBlockForm) {
  std::string d = first_stmt_dump(
      "TXT MAH BFF k AN STUFF\n  IM MESIN WIF UR x\n  x R SUM OF x AN 1\n"
      "  DUN MESIN WIF UR x\nTTYL");
  EXPECT_EQ(d,
            "(txt block (var k) (trylock (var ur x)) "
            "(assign (var x) (sum (var x) (numbr 1))) "
            "(unlock (var ur x)))");
}

TEST(ParseStmt, LockOnIndexedTargetLocksTheArray) {
  EXPECT_EQ(first_stmt_dump("IM SRSLY MESIN WIF arr'Z 0"),
            "(lock (var arr))");
}

TEST(ParseProgram, VersionIsOptional) {
  EXPECT_NO_THROW(parse_program("HAI\nKTHXBYE\n"));
  auto p = parse_program("HAI 1.2\nKTHXBYE\n");
  ASSERT_TRUE(p.version.has_value());
  EXPECT_DOUBLE_EQ(*p.version, 1.2);
}

TEST(ParseProgram, PrettyPrintRoundTrips) {
  std::string src =
      "HAI 1.2\n"
      "I HAS A x ITZ SRSLY A NUMBAR AN ITZ 0.5\n"
      "WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8 AN IM SHARIN IT\n"
      "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 8\n"
      "  a'Z i R PRODUKT OF i AN i\n"
      "IM OUTTA YR loop\n"
      "TXT MAH BFF 0, MAH x R UR x\n"
      "HUGZ\n"
      "VISIBLE \"done \" x\n"
      "KTHXBYE\n";
  auto p1 = parse_program(src);
  std::string printed = lol::ast::to_lolcode(p1);
  auto p2 = parse_program(printed);
  EXPECT_EQ(lol::ast::dump(p1), lol::ast::dump(p2)) << printed;
}

// -- errors ------------------------------------------------------------------------

TEST(ParseErrors, MissingKthxbye) {
  EXPECT_THROW(parse_program("HAI 1.2\nVISIBLE 1\n"), ParseError);
}

TEST(ParseErrors, MissingHai) {
  EXPECT_THROW(parse_program("VISIBLE 1\nKTHXBYE\n"), ParseError);
}

TEST(ParseErrors, ContentAfterKthxbye) {
  EXPECT_THROW(parse_program("HAI\nKTHXBYE\nVISIBLE 1\n"), ParseError);
}

TEST(ParseErrors, LoopLabelMismatch) {
  EXPECT_THROW(
      parse_program("HAI\nIM IN YR a\nGTFO\nIM OUTTA YR b\nKTHXBYE\n"),
      ParseError);
}

TEST(ParseErrors, TharIzWithoutArray) {
  EXPECT_THROW(parse_program("HAI\nI HAS A x ITZ A NUMBR AN THAR IZ 5\n"
                             "KTHXBYE\n"),
               ParseError);
}

TEST(ParseErrors, DanglingOic) {
  EXPECT_THROW(parse_program("HAI\nOIC\nKTHXBYE\n"), ParseError);
}

TEST(ParseErrors, VisibleNeedsArgs) {
  EXPECT_THROW(parse_program("HAI\nVISIBLE\nKTHXBYE\n"), ParseError);
}

TEST(ParseErrors, TxtWithoutStatement) {
  EXPECT_THROW(parse_program("HAI\nTXT MAH BFF 0\nKTHXBYE\n"), ParseError);
}

TEST(ParseErrors, ReportsLocation) {
  try {
    parse_program("HAI 1.2\nx R\nKTHXBYE\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.loc().line, 2u);
  }
}

}  // namespace

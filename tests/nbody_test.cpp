// Verifies the paper's §VI.D n-body listing against a native C++
// reference that replays the exact same arithmetic (including the
// listing's quirks) and the exact same WHATEVAR random stream. Because
// both sides perform identical double operations in identical order, the
// printed trajectories must match character-for-character.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace {

using lol::Backend;
using lol::RunConfig;

/// Native reference: simulates all PEs of the paper's algorithm.
/// Returns per-PE final (pos_x, pos_y) arrays.
struct NBodyRef {
  std::vector<std::vector<double>> pos_x, pos_y, vel_x, vel_y;

  NBodyRef(int n_pes, int particles, int steps, std::uint64_t seed) {
    const double dt = 0.001;
    int N = particles;
    pos_x.assign(n_pes, std::vector<double>(N));
    pos_y = pos_x;
    vel_x = pos_x;
    vel_y = pos_x;

    // Init phase: identical WHATEVAR order as the listing (pos_x, pos_y,
    // vel_x, vel_y per particle).
    for (int pe = 0; pe < n_pes; ++pe) {
      lol::support::PeRng rng(seed, pe);
      for (int i = 0; i < N; ++i) {
        pos_x[pe][i] = static_cast<double>(pe) + rng.next_numbar();
        pos_y[pe][i] = static_cast<double>(pe) + rng.next_numbar();
        vel_x[pe][i] =
            (static_cast<double>(pe) + rng.next_numbar()) / 1000.0;
        vel_y[pe][i] =
            (static_cast<double>(pe) + rng.next_numbar()) / 1000.0;
      }
    }

    std::vector<std::vector<double>> tmp_x = pos_x, tmp_y = pos_y;
    for (int step = 0; step < steps; ++step) {
      for (int pe = 0; pe < n_pes; ++pe) {
        for (int i = 0; i < N; ++i) {
          double x = pos_x[pe][i];
          double y = pos_y[pe][i];
          double vx = vel_x[pe][i];
          double vy = vel_y[pe][i];
          double ax = 0.0, ay = 0.0;
          // Local interactions — note the listing squares dx/dy before
          // accumulating (so the "direction" is the squared separation).
          for (int j = 0; j < N; ++j) {
            if (i == j) continue;
            double dx = pos_x[pe][i] - pos_x[pe][j];
            double dy = pos_y[pe][i] - pos_y[pe][j];
            dx = dx * dx;
            dy = dy * dy;
            double inv_d = 1.0 / std::sqrt(dx + dy);
            double f = inv_d * (inv_d * inv_d);
            ax = ax + dx * f;
            ay = ay + dy * f;
          }
          // Remote interactions, PE order 0..n_pes-1 skipping self.
          for (int k = 0; k < n_pes; ++k) {
            if (k == pe) continue;
            for (int j = 0; j < N; ++j) {
              double dx = pos_x[pe][i] - pos_x[k][j];
              double dy = pos_y[pe][i] - pos_y[k][j];
              dx = dx * dx;
              dy = dy * dy;
              double inv_d = 1.0 / std::sqrt(dx + dy);
              double f = inv_d * (inv_d * inv_d);
              ax = ax + dx * f;
              ay = ay + dy * f;
            }
          }
          x = x + (vx * dt + 0.5 * (ax * (dt * dt)));
          y = y + (vy * dt + 0.5 * (ay * (dt * dt)));
          vx = vx + ax * dt;
          vy = vy + ay * dt;
          tmp_x[pe][i] = x;
          tmp_y[pe][i] = y;
          vel_x[pe][i] = vx;
          vel_y[pe][i] = vy;
        }
      }
      pos_x = tmp_x;  // the HUGZ-separated position update phase
      pos_y = tmp_y;
    }
  }

  /// Renders the listing's final VISIBLE loop for one PE.
  std::string expected_output(int pe) const {
    std::string out = "HAI ITZ " + std::to_string(pe) +
                      " I HAS PARTICLZ 2 MUV\n" + "O HAI ITZ " +
                      std::to_string(pe) + ", MAH PARTICLZ IZ:\n";
    for (std::size_t i = 0; i < pos_x[pe].size(); ++i) {
      out += lol::support::format_numbar(pos_x[pe][i]) + " " +
             lol::support::format_numbar(pos_y[pe][i]) + "\n";
    }
    return out;
  }
};

struct Case {
  const char* name;
  Backend backend;
  int n_pes;
  int particles;
  int steps;
};

class NBodyMatch : public ::testing::TestWithParam<Case> {};

TEST_P(NBodyMatch, TrajectoriesMatchNativeReference) {
  const Case& c = GetParam();
  RunConfig cfg;
  cfg.n_pes = c.n_pes;
  cfg.backend = c.backend;
  cfg.seed = 20170529;
  auto r = lol::run_source(
      lol::paper::nbody_program(c.particles, c.steps, true), cfg);
  ASSERT_TRUE(r.ok) << r.first_error();
  NBodyRef ref(c.n_pes, c.particles, c.steps, cfg.seed);
  for (int pe = 0; pe < c.n_pes; ++pe) {
    EXPECT_EQ(r.pe_output[static_cast<std::size_t>(pe)],
              ref.expected_output(pe))
        << "PE " << pe;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NBodyMatch,
    ::testing::Values(Case{"interp_1pe", Backend::kInterp, 1, 8, 3},
                      Case{"interp_2pe", Backend::kInterp, 2, 8, 3},
                      Case{"vm_1pe", Backend::kVm, 1, 8, 3},
                      Case{"vm_2pe", Backend::kVm, 2, 8, 3},
                      Case{"vm_4pe", Backend::kVm, 4, 4, 2},
                      Case{"vm_paper_shape", Backend::kVm, 2, 32, 10}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

TEST(NBody, ParticlesActuallyMove) {
  RunConfig cfg;
  cfg.n_pes = 1;
  cfg.backend = Backend::kVm;
  auto before = lol::run_source(lol::paper::nbody_program(8, 0, true), cfg);
  auto after = lol::run_source(lol::paper::nbody_program(8, 10, true), cfg);
  ASSERT_TRUE(before.ok && after.ok);
  EXPECT_NE(before.pe_output[0], after.pe_output[0]);
}

TEST(NBody, EnergyInjectingQuirkIsReproduced) {
  // The listing accumulates squared components, so accelerations are
  // always non-negative in x and y: particles drift toward +inf rather
  // than orbiting. We reproduce the listing faithfully; verify the drift
  // is positive on average, confirming we kept the quirk.
  NBodyRef ref(1, 8, 50, 1234);
  NBodyRef ref0(1, 8, 0, 1234);
  double drift = 0.0;
  for (int i = 0; i < 8; ++i) {
    drift += ref.pos_x[0][i] - ref0.pos_x[0][i];
  }
  EXPECT_GT(drift, 0.0);
}

}  // namespace

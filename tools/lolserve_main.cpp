// lolserve — run parallel LOLCODE jobs through the execution service
// (the multi-tenant analogue of lolrun), as a batch or as a daemon:
//
//   lolserve labs/                       # every .lol under labs/
//   lolserve --workers 8 --repeat 10 a.lol b.lol
//   lolserve --manifest jobs.txt         # lines: <path> [n_pes] [max_steps]
//                                        #        [tenant] [deadline_ms]
//   lolserve --daemon --listen tcp:4004  # NDJSON jobs over a socket
//
// Batch mode prints one status line per job *as it completes* plus
// aggregate throughput and compile-cache statistics. Daemon mode streams
// per-job JSON events to each client (see src/service/wire.hpp).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "driver/cli.hpp"
#include "service/daemon.hpp"
#include "service/service.hpp"

namespace fs = std::filesystem;

namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] <job.lol | dir>...\n"
      "       %s --daemon [--listen <unix:PATH|tcp:PORT>] [options]\n"
      "  --workers <N>      worker threads (default 4)\n"
      "  --queue <N>        bounded queue capacity (default 256)\n"
      "  --policy <p>       block (default) or reject when the queue is full\n"
      "  -np <N>            PEs per job (default 1)\n"
      "  --backend <b>      vm (default), interp or native\n"
      "  --max-steps <S>    per-PE step budget (default 50000000)\n"
      "  --deadline-ms <D>  per-job wall-clock deadline (default none)\n"
      "  --tenant <name>    tenant for command-line jobs (default \"\")\n"
      "  --tenant-weights <a=2,b=1>  DRR weights for fair queueing\n"
      "  --repeat <R>       submit the job list R times (default 1; warms "
      "the compile cache)\n"
      "  --shuffle          randomize the batch submission order "
      "(scheduling-fairness experiments)\n"
      "  --shuffle-seed <S> RNG seed for --shuffle (default 20170529; same "
      "seed => same order)\n"
      "  --manifest <file>  extra jobs, one per line: <path> [n_pes] "
      "[max_steps] [tenant] [deadline_ms]\n"
      "  --quiet            suppress per-job lines, print the summary only\n"
      "  --daemon           serve NDJSON jobs over a socket until "
      "{\"op\":\"shutdown\"}\n"
      "  --listen <addr>    unix:/path/to.sock or tcp:PORT (default "
      "tcp:4004, loopback)\n",
      prog, prog);
  return 2;
}

struct JobSpec {
  std::string path;
  int n_pes = 0;  // 0 = use the command-line default
  std::uint64_t max_steps = 0;
  std::string tenant;  // empty = use the command-line default
  std::uint64_t deadline_ms = 0;
};

/// Expands a positional argument into job specs (.lol file or directory).
bool expand_path(const std::string& arg, std::vector<JobSpec>& out) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    std::vector<std::string> found;
    for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".lol") {
        found.push_back(entry.path().string());
      }
    }
    std::sort(found.begin(), found.end());
    for (auto& p : found) out.push_back({std::move(p), 0, 0, "", 0});
    return true;
  }
  if (fs::is_regular_file(arg, ec)) {
    out.push_back({arg, 0, 0, "", 0});
    return true;
  }
  std::fprintf(stderr, "lolserve: no such file or directory: '%s'\n",
               arg.c_str());
  return false;
}

/// Parses a manifest: `<path> [n_pes] [max_steps] [tenant] [deadline_ms]`,
/// '#' starts a comment. Use `-` for tenant to skip to deadline_ms.
bool read_manifest(const std::string& path, std::vector<JobSpec>& out) {
  auto text = lol::driver::read_file(path);
  if (!text) {
    std::fprintf(stderr, "lolserve: cannot read manifest '%s'\n",
                 path.c_str());
    return false;
  }
  std::istringstream in(*text);
  std::string line;
  while (std::getline(in, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    JobSpec spec;
    if (!(fields >> spec.path)) continue;  // blank/comment-only line
    fields >> spec.n_pes >> spec.max_steps >> spec.tenant >> spec.deadline_ms;
    if (spec.tenant == "-") spec.tenant.clear();
    out.push_back(std::move(spec));
  }
  return true;
}

/// Parses "--tenant-weights a=2,b=1" into ServiceOptions::tenant_weights.
bool parse_tenant_weights(const std::string& arg,
                          std::map<std::string, int>& out) {
  std::istringstream in(arg);
  std::string item;
  while (std::getline(in, item, ',')) {
    auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    int w = std::atoi(item.c_str() + eq + 1);
    if (w < 1) return false;
    out[item.substr(0, eq)] = w;
  }
  return true;
}

int run_daemon(lol::service::ServiceOptions opts, const std::string& listen) {
  lol::service::DaemonOptions dopts;
  if (listen.rfind("unix:", 0) == 0) {
    dopts.unix_path = listen.substr(5);
  } else if (listen.rfind("tcp:", 0) == 0) {
    dopts.tcp_port = std::atoi(listen.c_str() + 4);
  } else {
    std::fprintf(stderr,
                 "lolserve: --listen wants unix:PATH or tcp:PORT, got '%s'\n",
                 listen.c_str());
    return 2;
  }

  lol::service::Service svc(opts);
  lol::service::Daemon daemon(svc, dopts);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "lolserve: cannot listen: %s\n", err.c_str());
    return 1;
  }
  if (!daemon.unix_path().empty()) {
    std::fprintf(stderr, "lolserve: listening on unix:%s\n",
                 daemon.unix_path().c_str());
  } else {
    std::fprintf(stderr, "lolserve: listening on tcp:127.0.0.1:%d\n",
                 daemon.tcp_port());
  }
  daemon.wait();  // until a client sends {"op":"shutdown"}
  daemon.stop();
  svc.shutdown();
  auto stats = svc.stats();
  std::fprintf(stderr,
               "lolserve: daemon served %llu jobs (%llu ok, %llu "
               "deadline-exceeded, %llu cancelled)\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.ok),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.cancelled));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  lol::driver::Cli cli(argc, argv);

  lol::service::ServiceOptions opts;
  opts.workers = std::atoi(cli.option("--workers").value_or("4").c_str());
  opts.queue_capacity = static_cast<std::size_t>(std::strtoull(
      cli.option("--queue").value_or("256").c_str(), nullptr, 10));
  if (auto policy = cli.option("--policy")) {
    if (*policy == "reject") {
      opts.queue_full = lol::service::QueueFullPolicy::kReject;
    } else if (*policy != "block") {
      std::fprintf(stderr, "lolserve: unknown policy '%s'\n",
                   policy->c_str());
      return 2;
    }
  }
  if (auto steps = cli.option("--max-steps")) {
    opts.default_max_steps = std::strtoull(steps->c_str(), nullptr, 10);
  }
  if (auto deadline = cli.option("--deadline-ms")) {
    opts.default_deadline_ms = std::strtoull(deadline->c_str(), nullptr, 10);
  }
  if (auto weights = cli.option("--tenant-weights")) {
    if (!parse_tenant_weights(*weights, opts.tenant_weights)) {
      std::fprintf(stderr,
                   "lolserve: --tenant-weights wants name=N[,name=N...] "
                   "with N >= 1\n");
      return 2;
    }
  }
  if (opts.workers < 1) return usage(argv[0]);

  if (cli.has_flag("--daemon")) {
    std::string listen = cli.option("--listen").value_or("tcp:4004");
    return run_daemon(std::move(opts), listen);
  }

  int default_pes = std::atoi(cli.option("-np", "--np").value_or("1").c_str());
  std::string default_tenant = cli.option("--tenant").value_or("");
  lol::Backend backend = lol::Backend::kVm;
  if (auto name = cli.option("--backend")) {
    if (auto b = lol::backend_from_name(*name)) {
      backend = *b;
    } else {
      std::fprintf(stderr, "lolserve: unknown backend '%s'\n", name->c_str());
      return 2;
    }
  }
  int repeat = std::atoi(cli.option("--repeat").value_or("1").c_str());
  bool quiet = cli.has_flag("--quiet");
  bool shuffle = cli.has_flag("--shuffle");
  std::uint64_t shuffle_seed = std::strtoull(
      cli.option("--shuffle-seed").value_or("20170529").c_str(), nullptr, 10);

  std::vector<JobSpec> specs;
  if (auto manifest = cli.option("--manifest")) {
    if (!read_manifest(*manifest, specs)) return 1;
  }
  for (const auto& arg : cli.positional()) {
    if (!expand_path(arg, specs)) return 1;
  }
  if (specs.empty() || default_pes < 1 || repeat < 1) {
    return usage(argv[0]);
  }

  // Read every source once up front so IO errors surface before launch.
  std::vector<lol::service::Job> jobs;
  for (const auto& spec : specs) {
    auto source = lol::driver::read_file(spec.path);
    if (!source) {
      std::fprintf(stderr, "lolserve: cannot read '%s'\n", spec.path.c_str());
      return 1;
    }
    lol::service::Job job;
    job.name = spec.path;
    job.source = std::move(*source);
    job.n_pes = spec.n_pes > 0 ? spec.n_pes : default_pes;
    job.max_steps = spec.max_steps;
    job.tenant = spec.tenant.empty() ? default_tenant : spec.tenant;
    job.deadline_ms = spec.deadline_ms;
    job.backend = backend;
    jobs.push_back(std::move(job));
  }

  lol::service::Service svc(opts);
  auto t0 = std::chrono::steady_clock::now();

  // Stream each status line the moment the job completes (a failing or
  // slow job no longer holds back the report of everything after it).
  std::mutex print_m;
  auto print_result = [&](const lol::service::JobResult& r) {
    if (quiet) return;
    std::lock_guard<std::mutex> g(print_m);
    std::printf("[%s] %s%s (queue %.2f ms, run %.2f ms)%s%s\n",
                lol::service::to_string(r.status), r.name.c_str(),
                r.compile_cache_hit ? " [cached]" : "", r.queue_ms,
                r.run_ms, r.error.empty() ? "" : " — ", r.error.c_str());
    std::fflush(stdout);
  };

  // Build the submission order up front so --shuffle can permute it with
  // a seeded RNG: fairness experiments (DRR vs arrival order) need
  // reproducible interleavings, not wall-clock noise.
  std::vector<const lol::service::Job*> order;
  order.reserve(jobs.size() * static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    for (const auto& job : jobs) order.push_back(&job);
  }
  if (shuffle) {
    std::mt19937_64 rng(shuffle_seed);
    std::shuffle(order.begin(), order.end(), rng);
  }

  std::vector<std::future<lol::service::JobResult>> futures;
  futures.reserve(order.size());
  for (const auto* job : order) {
    futures.push_back(svc.submit_job(*job, print_result).result);
  }

  int failed = 0;
  for (auto& fut : futures) {
    if (!fut.get().ok()) ++failed;
  }

  double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  svc.shutdown();
  auto stats = svc.stats();
  std::printf(
      "lolserve: %llu jobs (%llu ok, %llu compile-error, %llu "
      "runtime-error, %llu step-limit, %llu deadline-exceeded, %llu "
      "cancelled, %llu rejected) on %d workers in %.3f s — %.1f jobs/s\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.compile_errors),
      static_cast<unsigned long long>(stats.runtime_errors),
      static_cast<unsigned long long>(stats.step_limited),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.rejected), opts.workers, wall_s,
      wall_s > 0 ? static_cast<double>(futures.size()) / wall_s : 0.0);
  std::printf(
      "lolserve: compile cache %llu hits / %llu misses (%.1f%% hit rate), "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      100.0 * stats.cache.hit_rate(),
      static_cast<unsigned long long>(stats.cache.evictions));
  return failed == 0 ? 0 : 1;
}

// lolserve — run parallel LOLCODE jobs through the execution service
// (the multi-tenant analogue of lolrun), as a batch or as a daemon:
//
//   lolserve labs/                       # every .lol under labs/
//   lolserve --workers 8 --repeat 10 a.lol b.lol
//   lolserve --manifest jobs.txt         # lines: <path> [n_pes] [max_steps]
//                                        #        [tenant] [deadline_ms]
//   lolserve --daemon --listen tcp:4004  # NDJSON jobs over a socket
//   lolserve --client --connect tcp:4004 lab.lol   # talk to that daemon
//
// Batch mode prints one status line per job *as it completes* plus
// aggregate throughput and compile-cache statistics. Daemon mode streams
// per-job JSON events to each client (see src/service/wire.hpp). Client
// mode speaks that NDJSON protocol to a running daemon — submit, cancel,
// stats — so scripts do not need raw sockets.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

#include "driver/cli.hpp"
#include "obs/metrics.hpp"
#include "service/daemon.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace fs = std::filesystem;

namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] <job.lol | dir>...\n"
      "       %s --daemon [--listen <unix:PATH|tcp:PORT>] [options]\n"
      "       %s --client [--connect <unix:PATH|tcp:PORT>] <job.lol>... |\n"
      "                   --cancel <ID> | --stats | --metrics | --ping |\n"
      "                   --shutdown\n"
      "  --workers <N>      worker threads (default 4)\n"
      "  --queue <N>        bounded queue capacity (default 256)\n"
      "  --policy <p>       block (default) or reject when the queue is full\n"
      "  -np <N>            PEs per job (default 1)\n"
      "  --backend <b>      vm (default), interp, native or jit\n"
      "  --executor <e>     pool (default), thread or fiber (virtual PEs —\n"
      "                     lets -np exceed the host's cores)\n"
      "  --pes-per-thread <K>  fiber executor: virtual PEs per carrier\n"
      "  --barrier-radix <R>  combining-tree barrier fan-in for batch/\n"
      "                     client jobs (default auto; results are radix-\n"
      "                     invariant; daemon jobs set \"barrier_radix\"\n"
      "                     per submission on the wire)\n"
      "  --opt-level <L>    optimizing middle-end level 0..2 for batch/\n"
      "                     client jobs (default 2; daemon jobs set\n"
      "                     \"opt_level\" per submission on the wire)\n"
      "  --tuner-cache <file>  durable auto-tuner store; warm jobs get\n"
      "                     the persisted knob winners applied (see\n"
      "                     lolrun --tune)\n"
      "  --max-pes <N>      clamp on per-job n_pes (default 64)\n"
      "  --max-queued-per-tenant <N>  per-tenant queued-job quota; over-\n"
      "                     quota submissions get status quota-exceeded\n"
      "                     (default 0 = unlimited)\n"
      "  --max-steps <S>    per-PE step budget (default 50000000)\n"
      "  --deadline-ms <D>  per-job wall-clock deadline (default none)\n"
      "  --tenant <name>    tenant for command-line jobs (default \"\")\n"
      "  --tenant-weights <a=2,b=1>  DRR weights for fair queueing\n"
      "  --repeat <R>       submit the job list R times (default 1; warms "
      "the compile cache)\n"
      "  --shuffle          randomize the batch submission order "
      "(scheduling-fairness experiments)\n"
      "  --shuffle-seed <S> RNG seed for --shuffle (default 20170529; same "
      "seed => same order)\n"
      "  --manifest <file>  extra jobs, one per line: <path> [n_pes] "
      "[max_steps] [tenant] [deadline_ms]\n"
      "  --quiet            suppress per-job lines, print the summary only\n"
      "  --record <file>    run jobs on a recorded deterministic schedule\n"
      "                     and write the trace to <file> (batch + client)\n"
      "  --replay <file>    enforce a recorded schedule trace on the jobs\n"
      "  --perturb-seed <S> record under a seeded schedule perturbation\n"
      "  --fault <spec>     inject faults: pe=K@step=S, noc=F, input=N\n"
      "                     (comma-separated; job resolves as pe-failed)\n"
      "  --daemon           serve NDJSON jobs over a socket until "
      "{\"op\":\"shutdown\"}\n"
      "  --listen <addr>    unix:/path/to.sock or tcp:PORT (default "
      "tcp:4004, loopback)\n"
      "  --metrics-interval <sec>  daemon: append a Prometheus metrics\n"
      "                     snapshot every <sec> seconds\n"
      "  --metrics-out <file>  destination for --metrics-interval\n"
      "                     snapshots (default stderr)\n"
      "  --client           speak the NDJSON protocol to a running daemon\n"
      "  --connect <addr>   daemon address for --client (default tcp:4004)\n"
      "  --cancel <ID>      client: request cancel of job ID (the daemon\n"
      "                     only honors cancels from the submitting\n"
      "                     connection; a refusal exits 1)\n"
      "  --cancel-after-ms <N>  client: cancel this invocation's still-\n"
      "                     running jobs N ms after submission\n"
      "  --stats|--ping|--shutdown  client: one-shot daemon requests\n"
      "  --metrics          client: print the daemon's Prometheus text\n"
      "                     exposition (decoded, scraper-ready)\n",
      prog, prog, prog);
  return 2;
}

struct JobSpec {
  std::string path;
  int n_pes = 0;  // 0 = use the command-line default
  std::uint64_t max_steps = 0;
  std::string tenant;  // empty = use the command-line default
  std::uint64_t deadline_ms = 0;
};

/// Expands a positional argument into job specs (.lol file or directory).
bool expand_path(const std::string& arg, std::vector<JobSpec>& out) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    std::vector<std::string> found;
    for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".lol") {
        found.push_back(entry.path().string());
      }
    }
    std::sort(found.begin(), found.end());
    for (auto& p : found) out.push_back({std::move(p), 0, 0, "", 0});
    return true;
  }
  if (fs::is_regular_file(arg, ec)) {
    out.push_back({arg, 0, 0, "", 0});
    return true;
  }
  std::fprintf(stderr, "lolserve: no such file or directory: '%s'\n",
               arg.c_str());
  return false;
}

/// Parses a manifest: `<path> [n_pes] [max_steps] [tenant] [deadline_ms]`,
/// '#' starts a comment. Use `-` for tenant to skip to deadline_ms.
bool read_manifest(const std::string& path, std::vector<JobSpec>& out) {
  auto text = lol::driver::read_file(path);
  if (!text) {
    std::fprintf(stderr, "lolserve: cannot read manifest '%s'\n",
                 path.c_str());
    return false;
  }
  std::istringstream in(*text);
  std::string line;
  while (std::getline(in, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    JobSpec spec;
    if (!(fields >> spec.path)) continue;  // blank/comment-only line
    fields >> spec.n_pes >> spec.max_steps >> spec.tenant >> spec.deadline_ms;
    if (spec.tenant == "-") spec.tenant.clear();
    out.push_back(std::move(spec));
  }
  return true;
}

/// Parses "--tenant-weights a=2,b=1" into ServiceOptions::tenant_weights.
bool parse_tenant_weights(const std::string& arg,
                          std::map<std::string, int>& out) {
  std::istringstream in(arg);
  std::string item;
  while (std::getline(in, item, ',')) {
    auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    int w = std::atoi(item.c_str() + eq + 1);
    if (w < 1) return false;
    out[item.substr(0, eq)] = w;
  }
  return true;
}

#if !defined(_WIN32)

/// Connects to a daemon at unix:PATH or tcp:PORT; -1 + message on failure.
int client_connect(const std::string& addr) {
  int fd = -1;
  if (addr.rfind("unix:", 0) == 0) {
    std::string path = addr.substr(5);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path)) {
      std::fprintf(stderr, "lolserve: unix socket path too long\n");
      return -1;
    }
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      ::close(fd);
      fd = -1;
    }
  } else if (addr.rfind("tcp:", 0) == 0) {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(static_cast<std::uint16_t>(std::atoi(addr.c_str() + 4)));
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      ::close(fd);
      fd = -1;
    }
  } else {
    std::fprintf(stderr,
                 "lolserve: --connect wants unix:PATH or tcp:PORT, got '%s'\n",
                 addr.c_str());
    return -1;
  }
  if (fd < 0) {
    std::fprintf(stderr, "lolserve: cannot connect to %s: %s\n", addr.c_str(),
                 std::strerror(errno));
  }
  return fd;
}

bool client_send(int fd, const std::string& line) {
  if (lol::service::wire::send_all(fd, line + "\n")) return true;
  std::fprintf(stderr, "lolserve: daemon connection lost mid-send\n");
  return false;
}

/// Reads one member of an already-parsed event object as text (events
/// are parsed once per line, then queried per field).
std::string event_field(const lol::service::wire::Json& doc,
                        const char* key) {
  const auto* v = doc.find(key);
  if (v == nullptr) return "";
  if (v->is(lol::service::wire::Json::Kind::kString)) return v->str;
  if (v->is(lol::service::wire::Json::Kind::kNumber)) {
    return std::to_string(static_cast<long long>(v->num));
  }
  if (v->is(lol::service::wire::Json::Kind::kBool)) {
    return v->b ? "true" : "false";
  }
  return "";
}

/// What a --client invocation asks of the daemon.
struct ClientAction {
  enum Kind {
    kSubmit,
    kCancel,
    kStats,
    kMetrics,
    kPing,
    kShutdown
  } kind = kSubmit;
  lol::service::JobId cancel_id = 0;
  /// kSubmit only: cancel whatever is still running this long after
  /// submission (same-connection cancel — the scope the daemon allows).
  std::uint64_t cancel_after_ms = 0;
  /// kSubmit only: save the "sched_trace" from each done event here
  /// (recorded/perturbed jobs; the last job's trace wins).
  std::string record_path;
};

/// --client: build requests with the wire serializers, stream every
/// event line to stdout (scripts parse the NDJSON), and for submissions
/// wait until each job's "done" event has arrived. Exit 0 iff every
/// submitted job reported status "ok" (with --cancel-after-ms,
/// "cancelled" counts as expected too) or the one-shot request
/// succeeded — a refused cancel exits 1.
int run_client(const std::string& addr, const ClientAction& action,
               const std::vector<lol::service::Job>& jobs) {
  int fd = client_connect(addr);
  if (fd < 0) return 1;
  lol::service::wire::LineReader reader(fd);
  std::mutex send_m;  // the cancel timer writes concurrently
  int rc = 0;

  auto send_line = [&](const std::string& line) {
    std::lock_guard<std::mutex> g(send_m);
    return client_send(fd, line);
  };
  auto one_shot = [&](const std::string& request)
      -> std::optional<lol::service::wire::Json> {
    if (!send_line(request)) return std::nullopt;
    auto line = reader.next();
    if (!line) {
      std::fprintf(stderr, "lolserve: daemon closed the connection\n");
      return std::nullopt;
    }
    std::printf("%s\n", line->c_str());
    return lol::service::wire::parse_json(*line);
  };
  auto expect_event = [&](const std::optional<lol::service::wire::Json>& doc,
                          const char* want) {
    return doc && event_field(*doc, "event") == want ? 0 : 1;
  };

  if (action.kind == ClientAction::kPing) {
    rc = expect_event(one_shot("{\"op\":\"ping\"}"), "pong");
  } else if (action.kind == ClientAction::kStats) {
    rc = expect_event(one_shot("{\"op\":\"stats\"}"), "stats");
  } else if (action.kind == ClientAction::kMetrics) {
    // Unlike the other one-shots this prints the *decoded* exposition,
    // not the NDJSON envelope, so the output pipes straight into any
    // Prometheus-text consumer.
    if (!send_line("{\"op\":\"metrics\"}")) {
      ::close(fd);
      return 1;
    }
    auto line = reader.next();
    if (!line) {
      std::fprintf(stderr, "lolserve: daemon closed the connection\n");
      rc = 1;
    } else {
      auto doc = lol::service::wire::parse_json(*line);
      const lol::service::wire::Json* text =
          doc && event_field(*doc, "event") == "metrics" ? doc->find("text")
                                                         : nullptr;
      if (text != nullptr &&
          text->is(lol::service::wire::Json::Kind::kString)) {
        std::fputs(text->str.c_str(), stdout);
      } else {
        std::printf("%s\n", line->c_str());  // surface the error event
        rc = 1;
      }
    }
  } else if (action.kind == ClientAction::kShutdown) {
    rc = expect_event(one_shot("{\"op\":\"shutdown\"}"), "bye");
  } else if (action.kind == ClientAction::kCancel) {
    // Note the daemon scopes cancellation to ids submitted on the same
    // connection (so clients cannot kill other tenants' jobs by walking
    // the sequential id space); a standalone --cancel can therefore only
    // be refused, and the refusal is reported in the exit code. Use
    // --cancel-after-ms with a submission for a cancel the daemon will
    // honor.
    auto doc =
        one_shot(lol::service::wire::cancel_request_line(action.cancel_id));
    rc = expect_event(doc, "cancel") == 0 &&
                 event_field(*doc, "ok") == "true"
             ? 0
             : 1;
  } else if (!jobs.empty()) {
    for (const auto& job : jobs) {
      if (!send_line(lol::service::wire::submit_line(job))) {
        ::close(fd);
        return 1;
      }
    }

    // Live ids for the cancel timer: accepted but not yet done.
    std::mutex live_m;
    std::vector<lol::service::JobId> live;
    std::thread canceller;
    std::atomic<bool> canceller_stop{false};
    std::mutex canceller_m;
    std::condition_variable canceller_cv;
    if (action.cancel_after_ms > 0) {
      canceller = std::thread([&] {
        {
          std::unique_lock<std::mutex> g(canceller_m);
          canceller_cv.wait_for(
              g, std::chrono::milliseconds(action.cancel_after_ms),
              [&] { return canceller_stop.load(); });
        }
        if (canceller_stop.load()) return;
        std::vector<lol::service::JobId> snapshot;
        {
          std::lock_guard<std::mutex> g(live_m);
          snapshot = live;
        }
        for (auto id : snapshot) {
          send_line(lol::service::wire::cancel_request_line(id));
        }
      });
    }

    // Events stream back as jobs finish: count "done"s, surface
    // everything, and fold unexpected statuses into the exit code.
    std::size_t done = 0;
    while (done < jobs.size()) {
      auto line = reader.next();
      if (!line) {
        std::fprintf(stderr,
                     "lolserve: daemon closed with %zu of %zu jobs pending\n",
                     jobs.size() - done, jobs.size());
        rc = 1;
        break;
      }
      std::printf("%s\n", line->c_str());
      std::fflush(stdout);
      auto doc = lol::service::wire::parse_json(*line);
      if (!doc) continue;  // not an event line; surfaced above regardless
      std::string event = event_field(*doc, "event");
      if (event == "error") rc = 1;
      if (event == "accepted") {
        std::lock_guard<std::mutex> g(live_m);
        live.push_back(static_cast<lol::service::JobId>(
            std::strtoull(event_field(*doc, "id").c_str(), nullptr, 10)));
      }
      if (event != "done") continue;
      ++done;
      {
        std::lock_guard<std::mutex> g(live_m);
        auto id = static_cast<lol::service::JobId>(
            std::strtoull(event_field(*doc, "id").c_str(), nullptr, 10));
        live.erase(std::remove(live.begin(), live.end(), id), live.end());
      }
      if (!action.record_path.empty()) {
        const lol::service::wire::Json* trace = doc->find("sched_trace");
        if (trace != nullptr &&
            trace->is(lol::service::wire::Json::Kind::kString) &&
            !lol::driver::write_file(action.record_path, trace->str)) {
          std::fprintf(stderr, "lolserve: cannot write trace to '%s'\n",
                       action.record_path.c_str());
          rc = 1;
        }
      }
      std::string status = event_field(*doc, "status");
      bool expected = status == "ok" || (action.cancel_after_ms > 0 &&
                                         status == "cancelled");
      if (!expected) rc = 1;
    }
    if (canceller.joinable()) {
      canceller_stop.store(true);
      canceller_cv.notify_all();
      canceller.join();
    }
  } else {
    std::fprintf(stderr,
                 "lolserve: --client wants jobs to submit or one of "
                 "--cancel/--stats/--ping/--shutdown\n");
    rc = 2;
  }
  ::close(fd);
  return rc;
}

#endif  // !_WIN32

int run_daemon(lol::service::ServiceOptions opts, const std::string& listen,
               int metrics_interval_s, const std::string& metrics_out) {
  lol::service::DaemonOptions dopts;
  if (listen.rfind("unix:", 0) == 0) {
    dopts.unix_path = listen.substr(5);
  } else if (listen.rfind("tcp:", 0) == 0) {
    dopts.tcp_port = std::atoi(listen.c_str() + 4);
  } else {
    std::fprintf(stderr,
                 "lolserve: --listen wants unix:PATH or tcp:PORT, got '%s'\n",
                 listen.c_str());
    return 2;
  }

  lol::service::Service svc(opts);
  lol::service::Daemon daemon(svc, dopts);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "lolserve: cannot listen: %s\n", err.c_str());
    return 1;
  }
  if (!daemon.unix_path().empty()) {
    std::fprintf(stderr, "lolserve: listening on unix:%s\n",
                 daemon.unix_path().c_str());
  } else {
    std::fprintf(stderr, "lolserve: listening on tcp:127.0.0.1:%d\n",
                 daemon.tcp_port());
  }
  // Periodic metrics snapshots: one appended Prometheus exposition per
  // interval, for fleets that collect files instead of scraping sockets.
  std::thread metrics_thread;
  std::mutex metrics_m;
  std::condition_variable metrics_cv;
  bool metrics_stop = false;
  if (metrics_interval_s > 0) {
    metrics_thread = std::thread([&] {
      for (;;) {
        {
          std::unique_lock<std::mutex> g(metrics_m);
          if (metrics_cv.wait_for(g,
                                  std::chrono::seconds(metrics_interval_s),
                                  [&] { return metrics_stop; })) {
            return;
          }
        }
        std::string text = lol::obs::Registry::global().expose();
        std::FILE* f = metrics_out.empty()
                           ? stderr
                           : std::fopen(metrics_out.c_str(), "a");
        if (f == nullptr) continue;  // transient; retry next interval
        std::fwrite(text.data(), 1, text.size(), f);
        if (f == stderr) {
          std::fflush(f);
        } else {
          std::fclose(f);
        }
      }
    });
  }
  daemon.wait();  // until a client sends {"op":"shutdown"}
  if (metrics_thread.joinable()) {
    {
      std::lock_guard<std::mutex> g(metrics_m);
      metrics_stop = true;
    }
    metrics_cv.notify_all();
    metrics_thread.join();
  }
  daemon.stop();
  svc.shutdown();
  auto stats = svc.stats();
  std::fprintf(stderr,
               "lolserve: daemon served %llu jobs (%llu ok, %llu "
               "deadline-exceeded, %llu cancelled)\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.ok),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.cancelled));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  lol::driver::Cli cli(argc, argv);

  lol::service::ServiceOptions opts;
  opts.workers = std::atoi(cli.option("--workers").value_or("4").c_str());
  opts.queue_capacity = static_cast<std::size_t>(std::strtoull(
      cli.option("--queue").value_or("256").c_str(), nullptr, 10));
  if (auto policy = cli.option("--policy")) {
    if (*policy == "reject") {
      opts.queue_full = lol::service::QueueFullPolicy::kReject;
    } else if (*policy != "block") {
      std::fprintf(stderr, "lolserve: unknown policy '%s'\n",
                   policy->c_str());
      return 2;
    }
  }
  if (auto steps = cli.option("--max-steps")) {
    opts.default_max_steps = std::strtoull(steps->c_str(), nullptr, 10);
  }
  if (auto deadline = cli.option("--deadline-ms")) {
    opts.default_deadline_ms = std::strtoull(deadline->c_str(), nullptr, 10);
  }
  if (auto weights = cli.option("--tenant-weights")) {
    if (!parse_tenant_weights(*weights, opts.tenant_weights)) {
      std::fprintf(stderr,
                   "lolserve: --tenant-weights wants name=N[,name=N...] "
                   "with N >= 1\n");
      return 2;
    }
  }
  if (auto max_pes = cli.option("--max-pes")) {
    opts.max_pes = std::atoi(max_pes->c_str());
    if (opts.max_pes < 1) return usage(argv[0]);
  }
  if (auto quota = cli.option("--max-queued-per-tenant")) {
    opts.max_queued_per_tenant = static_cast<std::size_t>(
        std::strtoull(quota->c_str(), nullptr, 10));
  }
  opts.tuner_cache_path = cli.option("--tuner-cache").value_or("");
  int opt_level = 2;
  if (auto lvl = cli.option("--opt-level")) {
    if (lvl->size() != 1 || (*lvl)[0] < '0' || (*lvl)[0] > '2') {
      std::fprintf(stderr,
                   "lolserve: bad --opt-level '%s' (want 0, 1 or 2)\n",
                   lvl->c_str());
      return 2;
    }
    opt_level = (*lvl)[0] - '0';
  }
  if (opts.workers < 1) return usage(argv[0]);

  if (cli.has_flag("--daemon")) {
    std::string listen = cli.option("--listen").value_or("tcp:4004");
    int metrics_interval = std::atoi(
        cli.option("--metrics-interval").value_or("0").c_str());
    std::string metrics_out = cli.option("--metrics-out").value_or("");
    return run_daemon(std::move(opts), listen, metrics_interval,
                      metrics_out);
  }

  bool client = cli.has_flag("--client");
#if defined(_WIN32)
  if (client) {
    std::fprintf(stderr, "lolserve: --client needs POSIX sockets\n");
    return 2;
  }
#else
  // Flags are consumed on first query, so resolve the whole client
  // action here; one-shot requests carry no job files and short-circuit
  // before the batch path demands positional arguments.
  ClientAction client_action;
  std::string connect_addr;
  if (client) {
    connect_addr = cli.option("--connect").value_or("tcp:4004");
    if (cli.has_flag("--ping")) {
      client_action.kind = ClientAction::kPing;
    } else if (cli.has_flag("--stats")) {
      client_action.kind = ClientAction::kStats;
    } else if (cli.has_flag("--metrics")) {
      client_action.kind = ClientAction::kMetrics;
    } else if (cli.has_flag("--shutdown")) {
      client_action.kind = ClientAction::kShutdown;
    } else if (auto id = cli.option("--cancel")) {
      client_action.kind = ClientAction::kCancel;
      client_action.cancel_id = std::strtoull(id->c_str(), nullptr, 10);
    } else if (auto after = cli.option("--cancel-after-ms")) {
      client_action.cancel_after_ms =
          std::strtoull(after->c_str(), nullptr, 10);
    }
    if (client_action.kind != ClientAction::kSubmit) {
      return run_client(connect_addr, client_action, {});
    }
  }
#endif

  int default_pes = std::atoi(cli.option("-np", "--np").value_or("1").c_str());
  std::string default_tenant = cli.option("--tenant").value_or("");
  lol::Backend backend = lol::Backend::kVm;
  if (auto name = cli.option("--backend")) {
    if (auto b = lol::backend_from_name(*name)) {
      backend = *b;
    } else {
      std::fprintf(stderr, "lolserve: unknown backend '%s'\n", name->c_str());
      return 2;
    }
  }
  lol::shmem::ExecutorKind executor = lol::shmem::ExecutorKind::kPool;
  if (auto name = cli.option("--executor")) {
    if (auto e = lol::shmem::executor_from_name(*name)) {
      executor = *e;
    } else {
      std::fprintf(stderr, "lolserve: unknown executor '%s'\n", name->c_str());
      return 2;
    }
  }
  int pes_per_thread =
      std::atoi(cli.option("--pes-per-thread").value_or("0").c_str());
  int barrier_radix =
      std::atoi(cli.option("--barrier-radix").value_or("0").c_str());
  int repeat = std::atoi(cli.option("--repeat").value_or("1").c_str());
  bool quiet = cli.has_flag("--quiet");
  bool shuffle = cli.has_flag("--shuffle");
  std::uint64_t shuffle_seed = std::strtoull(
      cli.option("--shuffle-seed").value_or("20170529").c_str(), nullptr, 10);

  // Record/replay + fault injection, applied to every job in the batch.
  std::string record_path = cli.option("--record").value_or("");
  auto schedule = lol::replay::ScheduleMode::kNone;
  std::uint64_t perturb_seed = 0;
  std::string replay_trace_text;
  if (auto seed = cli.option("--perturb-seed")) {
    schedule = lol::replay::ScheduleMode::kPerturb;
    perturb_seed = std::strtoull(seed->c_str(), nullptr, 10);
  } else if (!record_path.empty()) {
    schedule = lol::replay::ScheduleMode::kRecord;
  }
  if (auto replay_path = cli.option("--replay")) {
    auto text = lol::driver::read_file(*replay_path);
    if (!text) {
      std::fprintf(stderr, "lolserve: cannot read trace '%s'\n",
                   replay_path->c_str());
      return 1;
    }
    schedule = lol::replay::ScheduleMode::kReplay;
    replay_trace_text = std::move(*text);
  }
  std::string fault_spec = cli.option("--fault").value_or("");
  if (!fault_spec.empty()) {
    std::string ferr;
    if (!lol::replay::parse_fault_spec(fault_spec, nullptr, &ferr)) {
      std::fprintf(stderr, "lolserve: %s\n", ferr.c_str());
      return 2;
    }
  }

  std::vector<JobSpec> specs;
  if (auto manifest = cli.option("--manifest")) {
    if (!read_manifest(*manifest, specs)) return 1;
  }
  for (const auto& arg : cli.positional()) {
    if (!expand_path(arg, specs)) return 1;
  }
  if (specs.empty() || default_pes < 1 || repeat < 1) {
    return usage(argv[0]);
  }

  // Read every source once up front so IO errors surface before launch.
  std::vector<lol::service::Job> jobs;
  for (const auto& spec : specs) {
    auto source = lol::driver::read_file(spec.path);
    if (!source) {
      std::fprintf(stderr, "lolserve: cannot read '%s'\n", spec.path.c_str());
      return 1;
    }
    lol::service::Job job;
    job.name = spec.path;
    job.source = std::move(*source);
    job.n_pes = spec.n_pes > 0 ? spec.n_pes : default_pes;
    job.max_steps = spec.max_steps;
    job.tenant = spec.tenant.empty() ? default_tenant : spec.tenant;
    job.deadline_ms = spec.deadline_ms;
    job.backend = backend;
    job.executor = executor;
    job.pes_per_thread = pes_per_thread;
    job.barrier_radix = barrier_radix;
    job.schedule = schedule;
    job.perturb_seed = perturb_seed;
    job.replay_trace = replay_trace_text;
    job.fault_spec = fault_spec;
    job.opt_level = opt_level;
    jobs.push_back(std::move(job));
  }

#if !defined(_WIN32)
  if (client) {
    client_action.record_path = record_path;
    return run_client(connect_addr, client_action, jobs);
  }
#endif

  lol::service::Service svc(opts);
  auto t0 = std::chrono::steady_clock::now();

  // Stream each status line the moment the job completes (a failing or
  // slow job no longer holds back the report of everything after it).
  std::mutex print_m;
  auto print_result = [&](const lol::service::JobResult& r) {
    if (quiet) return;
    // Lifecycle spans inline on the status line: where each job's time
    // actually went (queue vs compile vs claim vs run vs drain).
    std::string trace;
    for (const auto& sp : r.trace) {
      char buf[80];
      std::snprintf(buf, sizeof buf, "%s%s %.2f",
                    trace.empty() ? "" : " > ", sp.name.c_str(), sp.dur_ms);
      trace += buf;
    }
    std::string tuned = r.tuned.empty() ? "" : " [tuned " + r.tuned + "]";
    std::lock_guard<std::mutex> g(print_m);
    std::printf("[%s] %s%s%s (queue %.2f ms, run %.2f ms) [trace: %s]%s%s\n",
                lol::service::to_string(r.status), r.name.c_str(),
                r.compile_cache_hit ? " [cached]" : "", tuned.c_str(),
                r.queue_ms, r.run_ms, trace.c_str(),
                r.error.empty() ? "" : " — ", r.error.c_str());
    std::fflush(stdout);
  };

  // Build the submission order up front so --shuffle can permute it with
  // a seeded RNG: fairness experiments (DRR vs arrival order) need
  // reproducible interleavings, not wall-clock noise.
  std::vector<const lol::service::Job*> order;
  order.reserve(jobs.size() * static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    for (const auto& job : jobs) order.push_back(&job);
  }
  if (shuffle) {
    std::mt19937_64 rng(shuffle_seed);
    std::shuffle(order.begin(), order.end(), rng);
  }

  std::vector<std::future<lol::service::JobResult>> futures;
  futures.reserve(order.size());
  for (const auto* job : order) {
    futures.push_back(svc.submit_job(*job, print_result).result);
  }

  int failed = 0;
  for (auto& fut : futures) {
    lol::service::JobResult r = fut.get();
    if (!r.ok()) ++failed;
    if (!record_path.empty() && !r.schedule_trace.empty() &&
        !lol::driver::write_file(record_path, r.schedule_trace)) {
      std::fprintf(stderr, "lolserve: cannot write trace to '%s'\n",
                   record_path.c_str());
      ++failed;
    }
  }

  double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  svc.shutdown();
  auto stats = svc.stats();
  std::printf(
      "lolserve: %llu jobs (%llu ok, %llu compile-error, %llu "
      "runtime-error, %llu step-limit, %llu deadline-exceeded, %llu "
      "cancelled, %llu rejected, %llu quota-exceeded) on %d workers in "
      "%.3f s — %.1f jobs/s\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.compile_errors),
      static_cast<unsigned long long>(stats.runtime_errors),
      static_cast<unsigned long long>(stats.step_limited),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.quota_rejected), opts.workers,
      wall_s, wall_s > 0 ? static_cast<double>(futures.size()) / wall_s : 0.0);
  std::printf(
      "lolserve: compile cache %llu hits / %llu misses (%.1f%% hit rate), "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      100.0 * stats.cache.hit_rate(),
      static_cast<unsigned long long>(stats.cache.evictions));
  return failed == 0 ? 0 : 1;
}

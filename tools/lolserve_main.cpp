// lolserve — run a batch of parallel LOLCODE jobs concurrently through
// the execution service (the multi-tenant analogue of lolrun):
//
//   lolserve labs/                       # every .lol under labs/
//   lolserve --workers 8 --repeat 10 a.lol b.lol
//   lolserve --manifest jobs.txt         # lines: <path> [n_pes] [max_steps]
//
// Prints one status line per job plus aggregate throughput and compile
// cache statistics.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "driver/cli.hpp"
#include "service/service.hpp"

namespace fs = std::filesystem;

namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] <job.lol | dir>...\n"
      "  --workers <N>      worker threads (default 4)\n"
      "  --queue <N>        bounded queue capacity (default 256)\n"
      "  --policy <p>       block (default) or reject when the queue is full\n"
      "  -np <N>            PEs per job (default 1)\n"
      "  --backend <b>      vm (default) or interp\n"
      "  --max-steps <S>    per-PE step budget (default 50000000)\n"
      "  --repeat <R>       submit the job list R times (default 1; warms "
      "the compile cache)\n"
      "  --manifest <file>  extra jobs, one per line: <path> [n_pes] "
      "[max_steps]\n"
      "  --quiet            suppress per-job lines, print the summary only\n",
      prog);
  return 2;
}

struct JobSpec {
  std::string path;
  int n_pes = 0;  // 0 = use the command-line default
  std::uint64_t max_steps = 0;
};

/// Expands a positional argument into job specs (.lol file or directory).
bool expand_path(const std::string& arg, std::vector<JobSpec>& out) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    std::vector<std::string> found;
    for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".lol") {
        found.push_back(entry.path().string());
      }
    }
    std::sort(found.begin(), found.end());
    for (auto& p : found) out.push_back({std::move(p), 0, 0});
    return true;
  }
  if (fs::is_regular_file(arg, ec)) {
    out.push_back({arg, 0, 0});
    return true;
  }
  std::fprintf(stderr, "lolserve: no such file or directory: '%s'\n",
               arg.c_str());
  return false;
}

/// Parses a manifest: `<path> [n_pes] [max_steps]`, '#' starts a comment.
bool read_manifest(const std::string& path, std::vector<JobSpec>& out) {
  auto text = lol::driver::read_file(path);
  if (!text) {
    std::fprintf(stderr, "lolserve: cannot read manifest '%s'\n",
                 path.c_str());
    return false;
  }
  std::istringstream in(*text);
  std::string line;
  while (std::getline(in, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    JobSpec spec;
    if (!(fields >> spec.path)) continue;  // blank/comment-only line
    fields >> spec.n_pes >> spec.max_steps;
    out.push_back(std::move(spec));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lol::driver::Cli cli(argc, argv);

  lol::service::ServiceOptions opts;
  opts.workers = std::atoi(cli.option("--workers").value_or("4").c_str());
  opts.queue_capacity = static_cast<std::size_t>(std::strtoull(
      cli.option("--queue").value_or("256").c_str(), nullptr, 10));
  if (auto policy = cli.option("--policy")) {
    if (*policy == "reject") {
      opts.queue_full = lol::service::QueueFullPolicy::kReject;
    } else if (*policy != "block") {
      std::fprintf(stderr, "lolserve: unknown policy '%s'\n",
                   policy->c_str());
      return 2;
    }
  }
  if (auto steps = cli.option("--max-steps")) {
    opts.default_max_steps = std::strtoull(steps->c_str(), nullptr, 10);
  }

  int default_pes = std::atoi(cli.option("-np", "--np").value_or("1").c_str());
  lol::Backend backend = lol::Backend::kVm;
  if (auto b = cli.option("--backend")) {
    if (*b == "interp") {
      backend = lol::Backend::kInterp;
    } else if (*b != "vm") {
      std::fprintf(stderr, "lolserve: unknown backend '%s'\n", b->c_str());
      return 2;
    }
  }
  int repeat = std::atoi(cli.option("--repeat").value_or("1").c_str());
  bool quiet = cli.has_flag("--quiet");

  std::vector<JobSpec> specs;
  if (auto manifest = cli.option("--manifest")) {
    if (!read_manifest(*manifest, specs)) return 1;
  }
  for (const auto& arg : cli.positional()) {
    if (!expand_path(arg, specs)) return 1;
  }
  if (specs.empty() || opts.workers < 1 || default_pes < 1 || repeat < 1) {
    return usage(argv[0]);
  }

  // Read every source once up front so IO errors surface before launch.
  std::vector<lol::service::Job> jobs;
  for (const auto& spec : specs) {
    auto source = lol::driver::read_file(spec.path);
    if (!source) {
      std::fprintf(stderr, "lolserve: cannot read '%s'\n", spec.path.c_str());
      return 1;
    }
    lol::service::Job job;
    job.name = spec.path;
    job.source = std::move(*source);
    job.n_pes = spec.n_pes > 0 ? spec.n_pes : default_pes;
    job.max_steps = spec.max_steps;
    job.backend = backend;
    jobs.push_back(std::move(job));
  }

  lol::service::Service svc(opts);
  auto t0 = std::chrono::steady_clock::now();

  std::vector<std::future<lol::service::JobResult>> futures;
  futures.reserve(jobs.size() * static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    for (const auto& job : jobs) futures.push_back(svc.submit(job));
  }

  int failed = 0;
  for (auto& fut : futures) {
    lol::service::JobResult r = fut.get();
    if (!r.ok()) ++failed;
    if (!quiet) {
      std::printf("[%s] %s%s (queue %.2f ms, run %.2f ms)%s%s\n",
                  lol::service::to_string(r.status), r.name.c_str(),
                  r.compile_cache_hit ? " [cached]" : "", r.queue_ms,
                  r.run_ms, r.error.empty() ? "" : " — ", r.error.c_str());
    }
  }

  double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  svc.shutdown();
  auto stats = svc.stats();
  std::printf(
      "lolserve: %llu jobs (%llu ok, %llu compile-error, %llu "
      "runtime-error, %llu step-limit, %llu rejected) on %d workers in "
      "%.3f s — %.1f jobs/s\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.compile_errors),
      static_cast<unsigned long long>(stats.runtime_errors),
      static_cast<unsigned long long>(stats.step_limited),
      static_cast<unsigned long long>(stats.rejected), opts.workers, wall_s,
      wall_s > 0 ? static_cast<double>(futures.size()) / wall_s : 0.0);
  std::printf(
      "lolserve: compile cache %llu hits / %llu misses (%.1f%% hit rate), "
      "%llu evictions\n",
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      100.0 * stats.cache.hit_rate(),
      static_cast<unsigned long long>(stats.cache.evictions));
  return failed == 0 ? 0 : 1;
}

// lolrun — run a parallel LOLCODE program directly (the in-process
// analogue of `coprsh -np N ./program`):
//
//   lolrun -np 16 nbody.lol
//   lolrun --backend vm --machine epiphany3 --sim -np 16 nbody.lol
#include <cstdio>
#include <iostream>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "core/engine.hpp"
#include "ast/printer.hpp"
#include "driver/cli.hpp"
#include "noc/machines.hpp"
#include "opt/opt.hpp"
#include "opt/tuner.hpp"
#include "parse/parser.hpp"
#include "rt/io.hpp"
#include "support/error.hpp"
#include "vm/compiler.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options] <program.lol>\n"
      "  -np <N>            number of PEs (default 1, max 4096)\n"
      "  --backend <b>      vm (default), interp, native (host cc + dlopen),\n"
      "                     or jit (direct x86-64; falls back to native)\n"
      "  --executor <e>     thread (default), pool, or fiber — fiber\n"
      "                     multiplexes many virtual PEs per core, so -np\n"
      "                     can go far beyond the host's hardware threads\n"
      "  --pes-per-thread <K>  fiber executor: virtual PEs per carrier\n"
      "                     thread (default auto)\n"
      "  --barrier-radix <R>  combining-tree barrier fan-in (default auto;\n"
      "                     results are identical for every radix)\n"
      "  --heap-bytes <B>   symmetric heap per PE (default 1 MiB; large -np\n"
      "                     runs want this smaller)\n"
      "  --seed <S>         WHATEVR/WHATEVAR seed\n"
      "  --max-steps <S>    per-PE step budget, 0 = unlimited (default)\n"
      "  --machine <m>      epiphany3 | xc40 | smp: enable simulated time\n"
      "  --sim              print per-run simulated time (needs --machine)\n"
      "  --record <file>    serialize the gang on a deterministic schedule\n"
      "                     and write the trace to <file>\n"
      "  --replay <file>    re-run a recorded trace; byte-identical across\n"
      "                     backends and executors (exit 6 on divergence)\n"
      "  --perturb-seed <S> record with a seeded random schedule instead of\n"
      "                     round-robin (used with --record)\n"
      "  --shake <N>        schedule shaker: run once recorded, then under N\n"
      "                     perturbation seeds; exit 4 + failing seed (and\n"
      "                     its trace, with --record) on any output mismatch\n"
      "  --shake-seed <B>   first perturbation seed for --shake (default 1)\n"
      "  --fault <spec>     fault injection: pe=K@step=S (kill a PE),\n"
      "                     noc=F (latency spike, needs --machine),\n"
      "                     input=N (GIMMEH source dies after N reads);\n"
      "                     comma-separated. Killed PE => exit 5\n"
      "  --profile          print a per-PE runtime profile (steps, barrier\n"
      "                     and lock waits, GIMMEH blocks) to stderr\n"
      "  --tag              prefix output lines with [peN]\n"
      "  --no-stdin         do not feed piped stdin to GIMMEH\n"
      "  --opt-level <L>    optimizer level 0 (off), 1 (folding), or\n"
      "                     2 (full loop pipeline; default)\n"
      "  --tune             run short calibration runs, print the chosen\n"
      "                     runtime knobs, and persist them (--tuner-cache)\n"
      "  --tuner-cache <f>  tuned-knob store: with --tune, where to\n"
      "                     persist the winner (default .lol_tuner_cache);\n"
      "                     without it, apply the stored knobs — incl. the\n"
      "                     tuned unroll budget — to this run\n"
      "  --jit-dump         --backend jit: hex + annotated dump of emitted\n"
      "                     regions to stderr (same as LOL_JIT_DUMP=1)\n"
      "  --dump-ast         print the (optimized) AST and exit\n"
      "  --dump-bytecode    print compiled bytecode and exit\n",
      prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  lol::driver::Cli cli(argc, argv);
  lol::RunConfig cfg;
  cfg.backend = lol::Backend::kVm;
  cfg.n_pes = std::atoi(cli.option("-np", "--np").value_or("1").c_str());
  if (auto seed = cli.option("--seed")) {
    cfg.seed = std::strtoull(seed->c_str(), nullptr, 10);
  }
  if (auto steps = cli.option("--max-steps")) {
    cfg.max_steps = std::strtoull(steps->c_str(), nullptr, 10);
  }
  if (auto backend = cli.option("--backend")) {
    if (auto b = lol::backend_from_name(*backend)) {
      cfg.backend = *b;
    } else {
      std::fprintf(stderr, "lolrun: unknown backend '%s'\n",
                   backend->c_str());
      return 2;
    }
  }
  // Cli::option consumes its match, so presence must be captured at the
  // parse site — a later re-query would always come back empty (and the
  // tuner apply path below needs to know which flags were explicit).
  auto executor_flag = cli.option("--executor");
  if (executor_flag) {
    if (auto e = lol::shmem::executor_from_name(*executor_flag)) {
      cfg.executor = *e;
    } else {
      std::fprintf(stderr, "lolrun: unknown executor '%s'\n",
                   executor_flag->c_str());
      return 2;
    }
  }
  auto ppt_flag = cli.option("--pes-per-thread");
  if (ppt_flag) cfg.pes_per_thread = std::atoi(ppt_flag->c_str());
  auto radix_flag = cli.option("--barrier-radix");
  if (radix_flag) cfg.barrier_radix = std::atoi(radix_flag->c_str());
  if (auto heap = cli.option("--heap-bytes")) {
    cfg.heap_bytes = static_cast<std::size_t>(
        std::strtoull(heap->c_str(), nullptr, 10));
  }
  bool want_sim = cli.has_flag("--sim");
  if (auto machine = cli.option("--machine")) {
    cfg.machine = lol::noc::by_name(*machine);
    if (cfg.machine == nullptr) {
      std::fprintf(stderr, "lolrun: unknown machine '%s'\n",
                   machine->c_str());
      return 2;
    }
  }
  // Record/replay + fault injection (src/replay/).
  std::optional<std::string> record_path = cli.option("--record");
  std::optional<std::string> replay_path = cli.option("--replay");
  int shake = 0;
  if (auto s = cli.option("--shake")) shake = std::atoi(s->c_str());
  std::uint64_t shake_seed = 1;
  if (auto s = cli.option("--shake-seed")) {
    shake_seed = std::strtoull(s->c_str(), nullptr, 10);
  }
  if (auto seed = cli.option("--perturb-seed")) {
    cfg.schedule = lol::replay::ScheduleMode::kPerturb;
    cfg.perturb_seed = std::strtoull(seed->c_str(), nullptr, 10);
  } else if (record_path) {
    cfg.schedule = lol::replay::ScheduleMode::kRecord;
  }
  if (replay_path) {
    if (record_path || shake != 0 ||
        cfg.schedule == lol::replay::ScheduleMode::kPerturb) {
      std::fprintf(stderr,
                   "lolrun: --replay excludes --record/--shake/--perturb-seed\n");
      return 2;
    }
    auto text = lol::driver::read_file(*replay_path);
    if (!text) {
      std::fprintf(stderr, "lolrun: cannot read trace '%s'\n",
                   replay_path->c_str());
      return 2;
    }
    std::string terr;
    auto trace = lol::replay::Trace::parse(*text, &terr);
    if (!trace) {
      std::fprintf(stderr, "lolrun: bad trace '%s': %s\n",
                   replay_path->c_str(), terr.c_str());
      return 2;
    }
    cfg.schedule = lol::replay::ScheduleMode::kReplay;
    cfg.replay_trace = std::make_shared<lol::replay::Trace>(std::move(*trace));
  }
  if (auto spec = cli.option("--fault")) {
    std::string ferr;
    if (!lol::replay::parse_fault_spec(*spec, &cfg.fault, &ferr)) {
      std::fprintf(stderr, "lolrun: %s\n", ferr.c_str());
      return 2;
    }
  }
  bool profile = cli.has_flag("--profile");
  cfg.profile = profile;
  bool tag = cli.has_flag("--tag");
  bool no_stdin = cli.has_flag("--no-stdin");
  bool dump_ast = cli.has_flag("--dump-ast");
  bool dump_bc = cli.has_flag("--dump-bytecode");
  lol::CompileOptions copts;
  if (auto lvl = cli.option("--opt-level")) {
    if (lvl->size() != 1 || (*lvl)[0] < '0' || (*lvl)[0] > '2') {
      std::fprintf(stderr, "lolrun: bad --opt-level '%s' (want 0, 1 or 2)\n",
                   lvl->c_str());
      return 2;
    }
    copts.opt_level = (*lvl)[0] - '0';
  }
  bool tune = cli.has_flag("--tune");
  auto tuner_cache_flag = cli.option("--tuner-cache");
  bool have_tuner_cache = tuner_cache_flag.has_value();
  std::string tuner_cache = tuner_cache_flag.value_or(".lol_tuner_cache");
  if (cli.has_flag("--jit-dump")) {
#if !defined(_WIN32)
    ::setenv("LOL_JIT_DUMP", "1", 1);  // read by the JIT build path
#endif
  }

  // GIMMEH reads the real stdin whenever input is piped/redirected, the
  // same behavior lcc-compiled executables always had (an interactive
  // terminal still gets the no-input default — a REPL-style prompt is a
  // different feature). --no-stdin restores the old drop-it behavior.
  lol::rt::StdinInput stdin_input;
#if !defined(_WIN32)
  if (!no_stdin && isatty(0) == 0) cfg.input = &stdin_input;
#else
  (void)no_stdin;
#endif

  const auto& pos = cli.positional();
  if (pos.size() != 1 || cfg.n_pes < 1) return usage(argv[0]);

  auto source = lol::driver::read_file(pos[0]);
  if (!source) {
    std::fprintf(stderr, "lolrun: cannot read '%s'\n", pos[0].c_str());
    return 1;
  }

  // An explicit --tuner-cache without --tune applies a persisted
  // calibration winner, mirroring the service's warm-hit path: explicit
  // flags always win, record/replay never tunes (traces are
  // schedule-shape-sensitive). The unroll budget is a compile knob and
  // must land before the program (and its replay hash) is built.
  if (have_tuner_cache && !tune &&
      cfg.schedule == lol::replay::ScheduleMode::kNone) {
    lol::opt::TunerStore store(tuner_cache);
    if (auto k = store.lookup(lol::replay::fnv1a(*source), cfg.n_pes)) {
      if (k->barrier_radix != 0 && !radix_flag) {
        cfg.barrier_radix = k->barrier_radix;
      }
      if (!k->executor.empty() && !executor_flag) {
        if (auto e = lol::shmem::executor_from_name(k->executor)) {
          cfg.executor = *e;
        }
      }
      if (k->pes_per_thread != 0 && !ppt_flag) {
        cfg.pes_per_thread = k->pes_per_thread;
      }
      if (k->unroll_max_trip != 0 && copts.opt_level >= 2) {
        copts.unroll_max_trip = k->unroll_value();
      }
    }
  }

  // Replay traces must distinguish the optimized shape that actually ran
  // (unrolling changes step-count footers); -O0 keeps the historical
  // plain source hash.
  cfg.program_hash = lol::opt::mix_hash(lol::replay::fnv1a(*source),
                                        copts.opt_level,
                                        copts.unroll_max_trip);

  try {
    lol::CompiledProgram prog = lol::compile(*source, copts);
    if (tune) {
      lol::opt::TunerStore store(tuner_cache);
      lol::opt::TunedKnobs knobs =
          lol::opt::calibrate(prog, *source, cfg.n_pes, &store);
      std::printf(
          "tuned: barrier_radix=%d executor=%s pes_per_thread=%d "
          "unroll_max_trip=%d\n",
          knobs.barrier_radix,
          knobs.executor.empty() ? "-" : knobs.executor.c_str(),
          knobs.pes_per_thread, knobs.unroll_max_trip);
      return 0;
    }
    if (dump_ast) {
      std::cout << lol::ast::dump(prog.program) << "\n";
      return 0;
    }
    if (dump_bc) {
      std::cout << lol::vm::disassemble(
          lol::vm::compile_program(prog.program, prog.analysis));
      return 0;
    }
    if (shake > 0) {
      // Schedule shaker: one recorded baseline, then `shake` perturbed
      // runs. Any divergence in output/status is a real schedule
      // sensitivity (a race, a missing HUGZ); the failing seed's trace
      // is the repro artifact.
      lol::RunConfig scfg = cfg;
      scfg.sink = nullptr;  // capture per-PE output for comparison
      scfg.schedule = lol::replay::ScheduleMode::kRecord;
      scfg.perturb_seed = 0;
      lol::RunResult base = lol::run(prog, scfg);
      std::fprintf(stderr, "[shake] baseline: %s\n",
                   base.ok ? "ok" : base.first_error().c_str());
      for (int k = 0; k < shake; ++k) {
        const std::uint64_t s = shake_seed + static_cast<std::uint64_t>(k);
        scfg.schedule = lol::replay::ScheduleMode::kPerturb;
        scfg.perturb_seed = s;
        lol::RunResult r = lol::run(prog, scfg);
        if (r.ok == base.ok && r.step_limited == base.step_limited &&
            r.pe_output == base.pe_output && r.pe_errout == base.pe_errout) {
          std::fprintf(stderr, "[shake] seed %llu: ok\n",
                       static_cast<unsigned long long>(s));
          continue;
        }
        std::fprintf(stderr,
                     "[shake] seed %llu DIVERGED from the recorded baseline\n",
                     static_cast<unsigned long long>(s));
        for (std::size_t i = 0;
             i < r.pe_output.size() && i < base.pe_output.size(); ++i) {
          if (base.pe_output[i] != r.pe_output[i]) {
            std::fprintf(stderr, "[shake]   pe%zu stdout differs\n", i);
          }
          if (base.pe_errout[i] != r.pe_errout[i]) {
            std::fprintf(stderr, "[shake]   pe%zu stderr differs\n", i);
          }
        }
        if (!r.ok) {
          std::fprintf(stderr, "[shake]   error: %s\n",
                       r.first_error().c_str());
        }
        if (record_path) {
          if (lol::driver::write_file(*record_path, r.schedule_trace)) {
            std::fprintf(stderr, "[shake]   trace written to %s\n",
                         record_path->c_str());
          } else {
            std::fprintf(stderr, "[shake]   cannot write trace to %s\n",
                         record_path->c_str());
          }
        }
        std::fprintf(
            stderr,
            "[shake] reproduce with: lolrun --perturb-seed %llu "
            "--record t.trace %s; lolrun --replay t.trace %s\n",
            static_cast<unsigned long long>(s), pos[0].c_str(),
            pos[0].c_str());
        return 4;
      }
      std::fprintf(stderr, "[shake] %d seeds, no divergence\n", shake);
      return 0;
    }

    lol::rt::StdioSink sink(tag);
    cfg.sink = &sink;
    lol::RunResult result = lol::run(prog, cfg);
    if (record_path && !result.schedule_trace.empty()) {
      if (!lol::driver::write_file(*record_path, result.schedule_trace)) {
        std::fprintf(stderr, "lolrun: cannot write trace to '%s'\n",
                     record_path->c_str());
        return 1;
      }
    }
    if (profile) {
      // Profile goes to stderr even for failed runs: a step-limited job
      // is exactly when the per-PE step counts matter.
      std::fprintf(stderr,
                   "[profile] claim=%.3fms exec=%.3fms\n"
                   "[profile] %6s %12s %10s %12s %8s %10s %8s\n",
                   result.claim_ms, result.exec_ms, "pe", "steps",
                   "barriers", "barrier_ms", "locks", "lock_ms", "gimmeh");
      for (std::size_t i = 0; i < result.pe_profiles.size(); ++i) {
        const lol::obs::PeProfile& p = result.pe_profiles[i];
        std::fprintf(stderr,
                     "[profile] %6zu %12llu %10llu %12.3f %8llu %10.3f"
                     " %8llu\n",
                     i, static_cast<unsigned long long>(p.steps),
                     static_cast<unsigned long long>(p.barrier_crossings),
                     static_cast<double>(p.barrier_wait_ns) / 1e6,
                     static_cast<unsigned long long>(p.lock_acquires),
                     static_cast<double>(p.lock_wait_ns) / 1e6,
                     static_cast<unsigned long long>(p.gimmeh_blocks));
      }
    }
    if (!result.ok) {
      for (const auto& e : result.errors) {
        if (!e.empty()) std::fprintf(stderr, "error: %s\n", e.c_str());
      }
      // Exit-status parity with lcc-compiled executables: 3 = killed by
      // the step budget, 5 = fault injection killed a PE, 6 = replay
      // diverged, 1 = ordinary runtime failure.
      if (result.pe_failed) return 5;
      if (result.replay_diverged) return 6;
      return result.step_limited ? 3 : 1;
    }
    if (want_sim && cfg.machine != nullptr) {
      std::fprintf(stderr, "[sim] machine=%s modeled time=%.1f ns\n",
                   cfg.machine->name().c_str(), result.max_sim_ns());
    }
    return 0;
  } catch (const lol::support::LolError& e) {
    std::fprintf(stderr, "lolrun: %s: %s\n", pos[0].c_str(), e.what());
    return 1;
  }
}

#!/usr/bin/env sh
# Runs every bench binary in a build tree, writing one Google-Benchmark
# JSON report per binary: <outdir>/BENCH_<name>.json
#
#   tools/run_benches.sh [build-dir] [outdir] [extra benchmark args...]
#
# Example:
#   tools/run_benches.sh build bench-out --benchmark_min_time=0.05
#
# Exits non-zero when a bench binary fails or emits an empty/missing
# JSON report, so CI archives only real measurements.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-out}"
if [ $# -ge 1 ]; then shift; fi
if [ $# -ge 1 ]; then shift; fi

if [ ! -d "$BUILD_DIR" ]; then
  echo "run_benches.sh: build dir '$BUILD_DIR' not found (configure first)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
found=0
ran_collectives=0
failed=""
for bin in "$BUILD_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  case "$bin" in *.json|*.txt) continue ;; esac
  found=1
  name=$(basename "$bin")
  [ "$name" = "bench_collectives" ] && ran_collectives=1
  out_json="$OUT_DIR/BENCH_${name#bench_}.json"
  echo "== $name =="
  if ! "$bin" --benchmark_format=json \
              --benchmark_out="$out_json" \
              --benchmark_out_format=json "$@"; then
    echo "  (failed: $name)" >&2
    failed="$failed $name"
    continue
  fi
  if [ ! -s "$out_json" ]; then
    echo "  (empty report: $out_json)" >&2
    failed="$failed $name"
  fi
done

if [ "$found" -eq 0 ]; then
  echo "run_benches.sh: no bench_* binaries in '$BUILD_DIR' (is Google Benchmark installed?)" >&2
  exit 1
fi

# Observability overhead guard: when a metrics-compiled-out tree exists
# next to the main one (cmake -B <build>-noobs -DLOL_OBS=OFF), rerun the
# barrier bench from it. BENCH_collectives_noobs.json is the zero-cost
# baseline the instrumented numbers are compared against — which only
# makes sense when the instrumented bench_collectives actually ran
# above; otherwise the baseline would be archived with nothing to
# compare it to, so skip it.
noobs_bin="$BUILD_DIR-noobs/bench_collectives"
if [ "$ran_collectives" -eq 0 ] && [ -x "$noobs_bin" ]; then
  echo "== skipping noobs baseline (bench_collectives not in this run) =="
fi
if [ "$ran_collectives" -eq 1 ] && [ -x "$noobs_bin" ]; then
  out_json="$OUT_DIR/BENCH_collectives_noobs.json"
  echo "== bench_collectives (LOL_OBS=OFF baseline) =="
  if ! "$noobs_bin" --benchmark_format=json \
                    --benchmark_out="$out_json" \
                    --benchmark_out_format=json "$@"; then
    echo "  (failed: bench_collectives noobs baseline)" >&2
    exit 1
  fi
  [ -s "$out_json" ] || { echo "  (empty report: $out_json)" >&2; exit 1; }
fi
if [ -n "$failed" ]; then
  echo "run_benches.sh: failed or empty:$failed" >&2
  exit 1
fi
echo "JSON reports in $OUT_DIR/"

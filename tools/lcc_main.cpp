// lcc — the LOLCODE compiler (paper §VI.E):
//
//   lcc code.lol -o executable.x
//   ./executable.x -np 16
//
// Translates parallel LOLCODE to C and invokes the host C compiler,
// linking the lolrt runtime (the paper's OpenSHMEM-analog). With
// --emit-c the generated C is written instead of an executable.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "codegen/c_emitter.hpp"
#include "core/engine.hpp"
#include "driver/cli.hpp"
#include "support/error.hpp"

#ifndef LCC_INCLUDE_DIR
#define LCC_INCLUDE_DIR ""
#endif
#ifndef LCC_RT_LIBS
#define LCC_RT_LIBS ""
#endif
// Extra flags the runtime archive was built with and the generated code
// must match (e.g. -fsanitize=thread under LOL_SANITIZE builds).
#ifndef LCC_EXTRA_CFLAGS
#define LCC_EXTRA_CFLAGS ""
#endif

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <input.lol> [-o output] [--emit-c] [--cc compiler]\n"
               "  -o <file>    output executable (default: a.out) or C file "
               "with --emit-c\n"
               "  --emit-c     write the generated C instead of compiling\n"
               "  --cc <cc>    host C compiler (default: $CC or cc)\n"
               "  --opt-level <L>  middle-end optimization level 0..2\n"
               "               (default 2; runs before C emission, so the\n"
               "               host cc compiles the folded/unrolled tree)\n",
               prog);
  return 2;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lol::driver::Cli cli(argc, argv);
  bool emit_c_only = cli.has_flag("--emit-c");
  std::string output = cli.option("-o", "--output")
                           .value_or(emit_c_only ? "out.c" : "a.out");
  std::string cc = cli.option("--cc").value_or(
      std::getenv("CC") != nullptr ? std::getenv("CC") : "cc");
  lol::CompileOptions copts;
  if (auto lvl = cli.option("--opt-level")) {
    if (lvl->size() != 1 || (*lvl)[0] < '0' || (*lvl)[0] > '2') {
      std::fprintf(stderr, "lcc: bad --opt-level '%s' (want 0, 1 or 2)\n",
                   lvl->c_str());
      return 2;
    }
    copts.opt_level = (*lvl)[0] - '0';
  }
  const auto& pos = cli.positional();
  if (pos.size() != 1) return usage(argv[0]);
  const std::string& input = pos[0];

  auto source = lol::driver::read_file(input);
  if (!source) {
    std::fprintf(stderr, "lcc: cannot read '%s'\n", input.c_str());
    return 1;
  }

  std::string c_code;
  try {
    lol::CompiledProgram prog = lol::compile(*source, copts);
    lol::codegen::EmitOptions opts;
    opts.source_name = input;
    c_code = lol::codegen::emit_c(prog.program, prog.analysis, opts);
  } catch (const lol::support::LolError& e) {
    std::fprintf(stderr, "lcc: %s: %s\n", input.c_str(), e.what());
    return 1;
  }

  if (emit_c_only) {
    if (!lol::driver::write_file(output, c_code)) {
      std::fprintf(stderr, "lcc: cannot write '%s'\n", output.c_str());
      return 1;
    }
    return 0;
  }

  std::string c_path = output + ".lcc.c";
  if (!lol::driver::write_file(c_path, c_code)) {
    std::fprintf(stderr, "lcc: cannot write '%s'\n", c_path.c_str());
    return 1;
  }

  // Include/library locations are baked in at build time and may be
  // overridden with LOLRT_INC / LOLRT_LIBS for installed toolchains.
  std::string inc = std::getenv("LOLRT_INC") != nullptr
                        ? std::getenv("LOLRT_INC")
                        : LCC_INCLUDE_DIR;
  std::string libs = std::getenv("LOLRT_LIBS") != nullptr
                         ? std::getenv("LOLRT_LIBS")
                         : LCC_RT_LIBS;

  std::string extra = std::getenv("LOLRT_CFLAGS") != nullptr
                          ? std::getenv("LOLRT_CFLAGS")
                          : LCC_EXTRA_CFLAGS;
  std::string cmd = cc + " -O2 -std=c99 " +
                    (extra.empty() ? "" : extra + " ") +
                    shell_quote(c_path) + " -I" + shell_quote(inc) + " " +
                    libs + " -lstdc++ -lm -lpthread -o " +
                    shell_quote(output);
  int rc = std::system(cmd.c_str());
  std::remove(c_path.c_str());
  if (rc != 0) {
    std::fprintf(stderr, "lcc: host C compiler failed (%s)\n", cc.c_str());
    return 1;
  }
  return 0;
}

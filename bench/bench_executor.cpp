// Executor benchmarks: what the pluggable PE executors buy.
//
//   * launch overhead — a do-nothing SPMD launch, thread-per-PE (spawn
//     and join n threads per launch) vs the persistent pool (reuse
//     parked workers). This is the per-job cost every service
//     submission pays.
//   * barrier throughput vs PE count — thread executor (eventcount
//     parking) vs fiber executor (cooperative carriers), including PE
//     counts well beyond the host's cores, which only fibers reach
//     without thousands of OS threads.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "shmem/executor.hpp"
#include "shmem/runtime.hpp"

namespace {

using lol::shmem::Config;
using lol::shmem::ExecutorKind;
using lol::shmem::Pe;
using lol::shmem::Runtime;

Config exec_config(int n_pes, ExecutorKind kind, int pes_per_thread = 0) {
  Config cfg;
  cfg.n_pes = n_pes;
  cfg.heap_bytes = 4096;
  if (kind != ExecutorKind::kThread) {
    cfg.executor = lol::shmem::make_executor(kind, pes_per_thread);
  }
  return cfg;
}

void launch_overhead(benchmark::State& state, ExecutorKind kind) {
  const int n_pes = static_cast<int>(state.range(0));
  Runtime rt(exec_config(n_pes, kind));
  for (auto _ : state) {
    auto r = rt.launch([](Pe&) {});
    if (!r.ok) state.SkipWithError(r.first_error().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(lol::shmem::to_string(kind));
}

void BM_LaunchOverhead_Thread(benchmark::State& state) {
  launch_overhead(state, ExecutorKind::kThread);
}
void BM_LaunchOverhead_Pool(benchmark::State& state) {
  launch_overhead(state, ExecutorKind::kPool);
}
BENCHMARK(BM_LaunchOverhead_Thread)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_LaunchOverhead_Pool)->Arg(4)->Arg(16)->Arg(64);

constexpr int kBarriersPerLaunch = 64;

void barrier_throughput(benchmark::State& state, ExecutorKind kind) {
  const int n_pes = static_cast<int>(state.range(0));
  Runtime rt(exec_config(n_pes, kind, /*pes_per_thread=*/0));
  for (auto _ : state) {
    auto r = rt.launch([](Pe& pe) {
      for (int i = 0; i < kBarriersPerLaunch; ++i) pe.barrier_all();
    });
    if (!r.ok) state.SkipWithError(r.first_error().c_str());
  }
  // One "item" = one whole-gang barrier crossing.
  state.SetItemsProcessed(state.iterations() * kBarriersPerLaunch);
  state.SetLabel(lol::shmem::to_string(kind));
}

void BM_BarrierThroughput_Thread(benchmark::State& state) {
  barrier_throughput(state, ExecutorKind::kThread);
}
void BM_BarrierThroughput_Fiber(benchmark::State& state) {
  barrier_throughput(state, ExecutorKind::kFiber);
}
BENCHMARK(BM_BarrierThroughput_Thread)->Arg(8)->Arg(32)->Arg(128);
// Fibers keep going where thread-per-PE stops being reasonable.
BENCHMARK(BM_BarrierThroughput_Fiber)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("executors",
                "PE executor strategies: launch overhead (thread vs pool) "
                "and barrier throughput vs PE count (thread vs fiber)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E-D — the paper's §VI.D parallel 2-D n-body application.
//
// Strong scaling of the published algorithm over PE counts, on the VM
// backend (wall clock) and with modeled Epiphany-III / XC40 communication
// time. Also reports a native C++ reference implementation of the same
// algorithm as the "perfect compiler" floor.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "core/paper_programs.hpp"
#include "noc/machines.hpp"
#include "support/rng.hpp"

namespace {

constexpr int kParticles = 32;
constexpr int kSteps = 5;

void BM_NBodyLolcode(benchmark::State& state) {
  int n_pes = static_cast<int>(state.range(0));
  auto prog = bench::compile_once(
      lol::paper::nbody_program(kParticles, kSteps, false));
  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  // Work grows with PE count (each PE owns kParticles and interacts with
  // every remote particle): interactions per step per PE = N*(N*n_pes-1).
  state.SetLabel("pes=" + std::to_string(n_pes));
  state.SetItemsProcessed(
      state.iterations() * kSteps *
      static_cast<std::int64_t>(kParticles) *
      (static_cast<std::int64_t>(kParticles) * n_pes - 1) * n_pes);
}

void BM_NBodySimulatedTime(benchmark::State& state) {
  int n_pes = static_cast<int>(state.range(0));
  bool xc40 = state.range(1) != 0;
  auto prog = bench::compile_once(
      lol::paper::nbody_program(kParticles, kSteps, false));
  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  cfg.machine = xc40 ? lol::noc::xc40_aries() : lol::noc::epiphany3();
  double sim_us = 0.0;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    sim_us = r.max_sim_ns() / 1000.0;
  }
  state.counters["modeled_comm_us"] = sim_us;
  state.SetLabel(std::string(xc40 ? "xc40" : "epiphany3") +
                 "/pes=" + std::to_string(n_pes));
}

/// Native C++ reference of the same algorithm (single-threaded over all
/// PEs' particles; gives the compute floor per interaction).
void BM_NBodyNativeReference(benchmark::State& state) {
  int n_pes = static_cast<int>(state.range(0));
  const double dt = 0.001;
  const int N = kParticles;
  for (auto _ : state) {
    std::vector<std::vector<double>> px(n_pes, std::vector<double>(N)),
        py = px, vx = px, vy = px;
    for (int pe = 0; pe < n_pes; ++pe) {
      lol::support::PeRng rng(20170529, pe);
      for (int i = 0; i < N; ++i) {
        px[pe][i] = pe + rng.next_numbar();
        py[pe][i] = pe + rng.next_numbar();
        vx[pe][i] = (pe + rng.next_numbar()) / 1000.0;
        vy[pe][i] = (pe + rng.next_numbar()) / 1000.0;
      }
    }
    auto tx = px, ty = py;
    for (int step = 0; step < kSteps; ++step) {
      for (int pe = 0; pe < n_pes; ++pe) {
        for (int i = 0; i < N; ++i) {
          double ax = 0, ay = 0;
          for (int k = 0; k < n_pes; ++k) {
            for (int j = 0; j < N; ++j) {
              if (k == pe && j == i) continue;
              double dx = px[pe][i] - px[k][j];
              double dy = py[pe][i] - py[k][j];
              dx *= dx;
              dy *= dy;
              double inv = 1.0 / std::sqrt(dx + dy);
              double f = inv * inv * inv;
              ax += dx * f;
              ay += dy * f;
            }
          }
          tx[pe][i] = px[pe][i] + vx[pe][i] * dt + 0.5 * ax * dt * dt;
          ty[pe][i] = py[pe][i] + vy[pe][i] * dt + 0.5 * ay * dt * dt;
          vx[pe][i] += ax * dt;
          vy[pe][i] += ay * dt;
        }
      }
      px = tx;
      py = ty;
    }
    benchmark::DoNotOptimize(px[0][0]);
  }
  state.SetLabel("native/pes=" + std::to_string(n_pes));
  state.SetItemsProcessed(
      state.iterations() * kSteps *
      static_cast<std::int64_t>(N) *
      (static_cast<std::int64_t>(N) * n_pes - 1) * n_pes);
}

void register_all() {
  for (int pes : {1, 2, 4}) {
    benchmark::RegisterBenchmark("NBody/lolcode_vm", BM_NBodyLolcode)
        ->Arg(pes)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark("NBody/native_ref", BM_NBodyNativeReference)
        ->Arg(pes)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
  for (int pes : {2, 4, 8, 16}) {
    for (long xc : {0L, 1L}) {
      benchmark::RegisterBenchmark("NBody/simulated", BM_NBodySimulatedTime)
          ->Args({pes, xc})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E-D (paper SVI.D)",
                "Parallel 2-D n-body: strong scaling of the published "
                "listing (items = pairwise interactions).");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment A6 — cold-compile latency: Backend::kJit vs the cc+dlopen
// native pipeline.
//
// The service's cold path is "new source arrives, nothing is cached":
// the native backend forks the host C toolchain (~100ms of fork/exec,
// cc, dlopen), the JIT lowers the bytecode chunk in-process (emit +
// mmap/mprotect). The claim under test: the JIT's cold compile+first-run
// is >= 10x faster than cc+dlopen for classroom-sized programs. Every
// iteration uses a fresh, never-before-seen source so both the
// single-flight caches and the per-program memos miss — this measures
// the miss path, nothing else.
//
// (Warm columns are in bench_backends.cpp; steady-state throughput is
// not at issue here.)
#include <atomic>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "codegen/jit_backend.hpp"
#include "codegen/native_backend.hpp"

namespace {

std::atomic<std::uint64_t> salt_counter{0};

// Classroom-sized program (functions, loops, conditionals, string ops);
// the embedded salt makes every instance a distinct source, so each
// build is genuinely cold on every backend cache layer.
std::string fresh_source() {
  std::string salt = std::to_string(salt_counter.fetch_add(1));
  return "HAI 1.2\n"
         "BTW cold-compile salt " + salt + "\n"
         "HOW IZ I fib YR n\n"
         "  DIFFRINT n AN SMALLR OF n AN 1, O RLY?\n"
         "  YA RLY\n"
         "    FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY AN I IZ "
         "fib YR DIFF OF n AN 2 MKAY\n"
         "  OIC\n"
         "  FOUND YR n\n"
         "IF U SAY SO\n"
         "I HAS A acc ITZ 0\n"
         "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n"
         "  acc R SUM OF acc AN I IZ fib YR i MKAY\n"
         "IM OUTTA YR l\n"
         "VISIBLE SMOOSH \"acc=\" AN acc AN \" salt=" + salt + "\" MKAY\n"
         "KTHXBYE\n";
}

/// Times backend build + first run on a never-seen source. The frontend
/// compile (lex/parse/sema) happens outside the timer — it is identical
/// for both backends and not what the JIT changes.
void cold_run(benchmark::State& state, lol::Backend backend) {
  lol::RunConfig cfg;
  cfg.backend = backend;
  for (auto _ : state) {
    state.PauseTiming();
    lol::CompiledProgram prog = lol::compile(fresh_source());
    state.ResumeTiming();
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
}

void BM_ColdNative(benchmark::State& state) {
  if (!lol::codegen::native_available()) {
    state.SkipWithError("no host C compiler");
    return;
  }
  cold_run(state, lol::Backend::kNative);
}

void BM_ColdJit(benchmark::State& state) {
  if (!lol::codegen::jit_available()) {
    state.SkipWithError("jit unavailable (non-x86-64 or LOL_JIT=0)");
    return;
  }
  cold_run(state, lol::Backend::kJit);
}

/// Reference point: the VM runs the chunk with zero backend build work,
/// so this is the floor any cold-compile scheme is chasing.
void BM_ColdVm(benchmark::State& state) {
  cold_run(state, lol::Backend::kVm);
}

}  // namespace

BENCHMARK(BM_ColdNative)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_ColdJit)->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_ColdVm)->Unit(benchmark::kMillisecond)->MinTime(0.5);

int main(int argc, char** argv) {
  bench::banner("A6 (cold compiles)",
                "Cold compile+first-run latency on a fresh source: "
                "cc+dlopen native pipeline vs in-process x86-64 JIT "
                "(acceptance: jit >= 10x faster cold).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// S1 — execution-service throughput: jobs/sec vs worker count, and the
// compile cache's cold-vs-warm effect.
//
// The paper's deployment is one student at a time; the service layer
// targets a whole classroom submitting at once. This bench measures
//   * BM_ServiceThroughput: end-to-end jobs/sec through the bounded
//     queue + worker pool, mixed sources and PE counts, warm cache
//   * BM_ColdCompiles / BM_WarmCompiles: the same batch with every
//     source unique (every job compiles) vs fully repeated (hit-rate
//     ~1), isolating what compile deduplication buys
#include "bench_common.hpp"

#include <string>
#include <vector>

#include "core/paper_programs.hpp"
#include "service/service.hpp"

namespace {

using lol::service::Job;
using lol::service::JobResult;
using lol::service::JobStatus;
using lol::service::Service;
using lol::service::ServiceOptions;

std::vector<Job> mixed_batch(int jobs) {
  static const std::vector<std::string> sources = {
      "HAI 1.2\nVISIBLE \"O HAI\" ME\nKTHXBYE\n",
      "HAI 1.2\nI HAS A n ITZ 0\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 500\n"
      "  n R SUM OF n AN i\nIM OUTTA YR l\nVISIBLE n\nKTHXBYE\n",
      lol::paper::ring_listing(),
  };
  static const int pes[] = {1, 2, 4};
  std::vector<Job> batch;
  batch.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    Job j;
    j.name = "job#" + std::to_string(i);
    j.source = sources[static_cast<std::size_t>(i) % sources.size()];
    j.n_pes = pes[static_cast<std::size_t>(i / 3) % 3];
    batch.push_back(std::move(j));
  }
  return batch;
}

void run_batch(Service& svc, const std::vector<Job>& batch,
               benchmark::State& state) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(batch.size());
  for (const auto& job : batch) futures.push_back(svc.submit(job));
  for (auto& f : futures) {
    JobResult r = f.get();
    if (r.status != JobStatus::kOk) {
      state.SkipWithError(("job failed: " + r.error).c_str());
      return;
    }
  }
}

/// Jobs/sec through the pool at state.range(0) workers, warm cache.
void BM_ServiceThroughput(benchmark::State& state) {
  ServiceOptions opts;
  opts.workers = static_cast<int>(state.range(0));
  Service svc(opts);
  const std::vector<Job> batch = mixed_batch(60);

  // Warm the compile cache so steady-state scheduling is measured.
  run_batch(svc, batch, state);

  std::int64_t jobs = 0;
  for (auto _ : state) {
    run_batch(svc, batch, state);
    jobs += static_cast<std::int64_t>(batch.size());
  }
  state.SetItemsProcessed(jobs);
  auto stats = svc.stats();
  state.counters["cache_hit_rate"] =
      benchmark::Counter(stats.cache.hit_rate());
}

/// Every job a unique source: each submission pays a full compile.
void BM_ColdCompiles(benchmark::State& state) {
  ServiceOptions opts;
  opts.workers = 4;
  opts.cache_capacity = 16;  // far fewer than the distinct sources
  Service svc(opts);

  std::uint64_t nonce = 0;
  std::int64_t jobs = 0;
  for (auto _ : state) {
    std::vector<Job> batch = mixed_batch(30);
    for (auto& j : batch) {
      // A distinct trailing comment defeats the source-hash dedup.
      j.source += "BTW nonce " + std::to_string(nonce++) + "\n";
    }
    run_batch(svc, batch, state);
    jobs += static_cast<std::int64_t>(batch.size());
  }
  state.SetItemsProcessed(jobs);
  auto stats = svc.stats();
  state.counters["cache_hit_rate"] =
      benchmark::Counter(stats.cache.hit_rate());
}

/// The same batch of repeated sources: everything after round one hits.
void BM_WarmCompiles(benchmark::State& state) {
  ServiceOptions opts;
  opts.workers = 4;
  Service svc(opts);
  const std::vector<Job> batch = mixed_batch(30);
  run_batch(svc, batch, state);  // prime

  std::int64_t jobs = 0;
  for (auto _ : state) {
    run_batch(svc, batch, state);
    jobs += static_cast<std::int64_t>(batch.size());
  }
  state.SetItemsProcessed(jobs);
  auto stats = svc.stats();
  state.counters["cache_hit_rate"] =
      benchmark::Counter(stats.cache.hit_rate());
}

}  // namespace

// UseRealTime: the work happens on pool threads, so wall-clock is the
// meaningful basis for jobs/sec.
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.2);
BENCHMARK(BM_ColdCompiles)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.2);
BENCHMARK(BM_WarmCompiles)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.2);

int main(int argc, char** argv) {
  bench::banner("S1 (service layer)",
                "Execution-service throughput: jobs/sec vs worker count on "
                "a mixed batch, plus cold-vs-warm compile-cache ablation.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment T3 — paper Table III (math/RNG extensions).
//
// Throughput of WHATEVR / WHATEVAR / SQUAR OF / UNSQUAR OF / FLIP OF,
// measured both through LOLCODE programs (VM backend) and directly at
// the runtime layer, to show the language overhead on top of the math.
#include "bench_common.hpp"
#include "rt/ops.hpp"
#include "support/rng.hpp"

namespace {

struct MathOp {
  const char* name;
  const char* expr;  // uses loop variable `it` and NUMBAR variable `seed`
};

const MathOp kOps[] = {
    {"WHATEVR", "WHATEVR"},
    {"WHATEVAR", "WHATEVAR"},
    {"SQUAR_OF", "SQUAR OF seed"},
    {"UNSQUAR_OF", "UNSQUAR OF SUM OF seed AN it"},
    {"FLIP_OF", "FLIP OF SUM OF seed AN it"},
};

constexpr int kReps = 2000;

void BM_LolMathOp(benchmark::State& state) {
  const MathOp& op = kOps[state.range(0)];
  std::string src = std::string("HAI 1.2\n") +
                    "I HAS A seed ITZ SRSLY A NUMBAR AN ITZ 1.5\n" +
                    "I HAS A x ITZ SRSLY A NUMBAR\n" +
                    "IM IN YR l UPPIN YR it TIL BOTH SAEM it AN " +
                    std::to_string(kReps) + "\n  x R " + op.expr +
                    "\nIM OUTTA YR l\nKTHXBYE\n";
  auto prog = bench::compile_once(src);
  lol::RunConfig cfg;
  cfg.n_pes = 1;
  cfg.backend = lol::Backend::kVm;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel(op.name);
  state.SetItemsProcessed(state.iterations() * kReps);
}

// Runtime-layer baselines: the same operations without any language around
// them. The gap between these and the LOLCODE numbers is interpretation
// overhead, the paper's motivation for compiling.
void BM_RuntimeRng(benchmark::State& state) {
  lol::support::PeRng rng(42, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_numbr());
    benchmark::DoNotOptimize(rng.next_numbar());
  }
  state.SetLabel("PeRng numbr+numbar");
}

void BM_RuntimeUnary(benchmark::State& state) {
  using lol::rt::Value;
  Value v = Value::numbar(2.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lol::rt::op_unary(lol::ast::UnOp::kSquar, v));
    benchmark::DoNotOptimize(lol::rt::op_unary(lol::ast::UnOp::kUnsquar, v));
    benchmark::DoNotOptimize(lol::rt::op_unary(lol::ast::UnOp::kFlip, v));
  }
  state.SetLabel("op_unary squar+unsquar+flip");
}

void register_all() {
  for (std::size_t i = 0; i < std::size(kOps); ++i) {
    benchmark::RegisterBenchmark("Table3/lolcode", BM_LolMathOp)
        ->Arg(static_cast<long>(i))
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.02);
  }
  benchmark::RegisterBenchmark("Table3/runtime_rng", BM_RuntimeRng);
  benchmark::RegisterBenchmark("Table3/runtime_unary", BM_RuntimeUnary);
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("T3 (paper Table III)",
                "Math/RNG extensions: WHATEVR, WHATEVAR, SQUAR OF, "
                "UNSQUAR OF, FLIP OF throughput (language vs runtime).");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

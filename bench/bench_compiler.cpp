// Experiment A4 — the compiler itself.
//
// Frontend and backend throughput on the paper's own n-body source:
// lexing, parsing, semantic analysis, VM bytecode compilation, and
// C emission, in bytes/second.
#include "bench_common.hpp"
#include "codegen/c_emitter.hpp"
#include "core/paper_programs.hpp"
#include "lex/lexer.hpp"
#include "parse/parser.hpp"
#include "sema/analyzer.hpp"
#include "vm/compiler.hpp"

namespace {

const std::string& nbody_src() {
  static const std::string src = lol::paper::nbody_listing();
  return src;
}

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lol::lex::tokenize(nbody_src()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(nbody_src().size()));
}

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lol::parse::parse_program(nbody_src()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(nbody_src().size()));
}

void BM_Sema(benchmark::State& state) {
  auto prog = lol::parse::parse_program(nbody_src());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lol::sema::analyze(prog));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(nbody_src().size()));
}

void BM_VmCompile(benchmark::State& state) {
  auto prog = lol::parse::parse_program(nbody_src());
  auto analysis = lol::sema::analyze(prog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lol::vm::compile_program(prog, analysis));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(nbody_src().size()));
}

void BM_EmitC(benchmark::State& state) {
  auto prog = lol::parse::parse_program(nbody_src());
  auto analysis = lol::sema::analyze(prog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lol::codegen::emit_c(prog, analysis));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(nbody_src().size()));
}

void BM_FullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    auto prog = lol::parse::parse_program(nbody_src());
    auto analysis = lol::sema::analyze(prog);
    benchmark::DoNotOptimize(lol::codegen::emit_c(prog, analysis));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(nbody_src().size()));
}

}  // namespace

BENCHMARK(BM_Lex)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Parse)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Sema)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VmCompile)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EmitC)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  bench::banner("A4 (the lcc compiler)",
                "Frontend/backend throughput on the paper's n-body source "
                "(lex / parse / sema / VM-compile / C-emit).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

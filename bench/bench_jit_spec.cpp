// Experiment J1 — the two-tier JIT's headline: the type-specialized
// tier closes the gap between the call-threaded JIT and native C.
//
// The paper's §VI kernels (1-D heat stencil, n-body accumulation),
// reduced to their inner loops, on four execution variants:
//   vm        — bytecode VM (the semantic reference)
//   jit-ct    — call-threaded JIT only (RunConfig::jit_spec = false)
//   jit-spec  — with the register-allocating specialized tier
//   native    — Backend::kNative (lcc-emitted C via the host cc)
// The shape that must reproduce: jit-spec >= 2x jit-ct on these loops,
// and jit-spec within 3x of native.
#include <string>

#include "bench_common.hpp"
#include "codegen/jit_backend.hpp"
#include "codegen/native_backend.hpp"

namespace {

// §VI heat: Jacobi sweeps over a private SRSLY NUMBAR block. Indexed
// loads/stores stay helper calls in both tiers; the stencil arithmetic
// and the loop counters are what the specialized tier lifts into
// registers.
std::string heat_kernel(int sweeps) {
  return "HAI 1.2\n"
         "I HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 66\n"
         "I HAS A unew ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 66\n"
         "u'Z 33 R 100.0\n"
         "IM IN YR sweeps UPPIN YR t TIL BOTH SAEM t AN " +
         std::to_string(sweeps) +
         "\n"
         "  IM IN YR cells UPPIN YR i TIL BOTH SAEM i AN 64\n"
         "    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1\n"
         "    unew'Z c R SUM OF u'Z c AN PRODUKT OF 0.25 AN "
         "SUM OF DIFF OF u'Z DIFF OF c AN 1 AN u'Z c "
         "AN DIFF OF u'Z SUM OF c AN 1 AN u'Z c\n"
         "  IM OUTTA YR cells\n"
         "  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN 64\n"
         "    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1\n"
         "    u'Z c R unew'Z c\n"
         "  IM OUTTA YR copy\n"
         "IM OUTTA YR sweeps\n"
         "I HAS A total ITZ A NUMBAR AN ITZ 0.0\n"
         "IM IN YR sum UPPIN YR i TIL BOTH SAEM i AN 64\n"
         "  total R SUM OF total AN u'Z SUM OF i AN 1\n"
         "IM OUTTA YR sum\n"
         "VISIBLE total\n"
         "KTHXBYE\n";
}

// §VI n-body: the pairwise force accumulation, with the softened
// inverse square replaced by its multiply/add core (QUOSHUNT can throw,
// which would end every region) — straight-line NUMBAR arithmetic, the
// specialized tier's best case.
std::string nbody_kernel(int pairs) {
  return "HAI 1.2\n"
         "I HAS A fx ITZ SRSLY A NUMBAR AN ITZ 0.0\n"
         "I HAS A fy ITZ SRSLY A NUMBAR AN ITZ 0.0\n"
         "I HAS A xi ITZ SRSLY A NUMBAR AN ITZ 0.5\n"
         "I HAS A yi ITZ SRSLY A NUMBAR AN ITZ 0.25\n"
         "IM IN YR pairs UPPIN YR j TIL BOTH SAEM j AN " +
         std::to_string(pairs) +
         "\n"
         "  I HAS A dx ITZ A NUMBAR AN ITZ DIFF OF PRODUKT OF 0.001 AN j "
         "AN xi\n"
         "  I HAS A dy ITZ A NUMBAR AN ITZ DIFF OF PRODUKT OF 0.002 AN j "
         "AN yi\n"
         "  I HAS A r2 ITZ A NUMBAR AN ITZ SUM OF SUM OF SQUAR OF dx AN "
         "SQUAR OF dy AN 0.01\n"
         "  I HAS A w ITZ A NUMBAR AN ITZ SMALLR OF r2 AN 1.0\n"
         "  fx R SUM OF fx AN PRODUKT OF dx AN w\n"
         "  fy R SUM OF fy AN PRODUKT OF dy AN w\n"
         "IM OUTTA YR pairs\n"
         "VISIBLE SUM OF fx AN fy\n"
         "KTHXBYE\n";
}

constexpr int kSweeps = 300;
constexpr int kPairs = 20000;

void run_variant(benchmark::State& state, const std::string& src,
                 lol::Backend backend, std::optional<bool> jit_spec,
                 std::int64_t items) {
  if (backend == lol::Backend::kJit && !lol::codegen::jit_available()) {
    state.SkipWithError("jit unavailable on this host");
    return;
  }
  if (backend == lol::Backend::kNative &&
      !lol::codegen::native_available()) {
    state.SkipWithError("no host cc for the native backend");
    return;
  }
  auto prog = bench::compile_once(src);
  lol::RunConfig cfg;
  cfg.backend = backend;
  cfg.jit_spec = jit_spec;
  // Warm the code caches outside the timed loop (native pays a cc fork
  // on the cold run).
  if (!lol::run(prog, cfg).ok) {
    state.SkipWithError("warmup run failed");
    return;
  }
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetItemsProcessed(state.iterations() * items);
}

constexpr std::int64_t kHeatItems =
    static_cast<std::int64_t>(kSweeps) * 2 * 64;

void BM_Heat_Vm(benchmark::State& s) {
  run_variant(s, heat_kernel(kSweeps), lol::Backend::kVm, {}, kHeatItems);
}
void BM_Heat_JitCallThreaded(benchmark::State& s) {
  run_variant(s, heat_kernel(kSweeps), lol::Backend::kJit, false,
              kHeatItems);
}
void BM_Heat_JitSpecialized(benchmark::State& s) {
  run_variant(s, heat_kernel(kSweeps), lol::Backend::kJit, true,
              kHeatItems);
}
void BM_Heat_Native(benchmark::State& s) {
  run_variant(s, heat_kernel(kSweeps), lol::Backend::kNative, {},
              kHeatItems);
}

void BM_Nbody_Vm(benchmark::State& s) {
  run_variant(s, nbody_kernel(kPairs), lol::Backend::kVm, {}, kPairs);
}
void BM_Nbody_JitCallThreaded(benchmark::State& s) {
  run_variant(s, nbody_kernel(kPairs), lol::Backend::kJit, false, kPairs);
}
void BM_Nbody_JitSpecialized(benchmark::State& s) {
  run_variant(s, nbody_kernel(kPairs), lol::Backend::kJit, true, kPairs);
}
void BM_Nbody_Native(benchmark::State& s) {
  run_variant(s, nbody_kernel(kPairs), lol::Backend::kNative, {}, kPairs);
}

}  // namespace

BENCHMARK(BM_Heat_Vm)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Heat_JitCallThreaded)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_Heat_JitSpecialized)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_Heat_Native)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Nbody_Vm)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_Nbody_JitCallThreaded)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_Nbody_JitSpecialized)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_Nbody_Native)->Unit(benchmark::kMillisecond)->MinTime(0.2);

int main(int argc, char** argv) {
  // Keep stdout machine-readable under --benchmark_format=json (the
  // archived BENCH_jit_spec.json is parsed by CI).
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).find("json") != std::string::npos) json = true;
  }
  if (!json) {
    bench::banner("J1 (two-tier JIT)",
                  "Specialized vs call-threaded JIT on the SVI heat and "
                  "n-body inner loops (items = inner-loop iterations).");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment T1 — paper Table I (basic LOLCODE syntax).
//
// Every core construct of the language, timed on both in-process
// backends. The paper's table is qualitative (it lists the syntax); this
// bench regenerates it as "construct works + costs this much per
// execution", and doubles as the conformance sweep for Table I.
#include "bench_common.hpp"

namespace {

using lol::Backend;

struct Construct {
  const char* name;
  const char* body;  // statement(s) exercised inside a 1000-iteration loop
};

// Each snippet runs inside `IM IN YR bench UPPIN YR it TIL BOTH SAEM it
// AN 1000 ... IM OUTTA YR bench` so one program run measures 1000
// executions of the construct.
const Construct kConstructs[] = {
    {"assignment", "x R 42\n"},
    {"arith_sum", "x R SUM OF it AN 1\n"},
    {"arith_chain", "x R SUM OF PRODUKT OF it AN 3 AN QUOSHUNT OF it AN 7\n"},
    {"comparison", "x R BOTH SAEM it AN 500\n"},
    {"boolean", "x R BOTH OF WIN AN DIFFRINT it AN 3\n"},
    {"conditional",
     "BOTH SAEM MOD OF it AN 2 AN 0, O RLY?\nYA RLY\n  x R 1\nNO WAI\n"
     "  x R 2\nOIC\n"},
    {"switch",
     "MOD OF it AN 3, WTF?\nOMG 0\n  x R 1\n  GTFO\nOMG 1\n  x R 2\n"
     "  GTFO\nOMGWTF\n  x R 3\nOIC\n"},
    {"cast_maek", "x R MAEK it A YARN\n"},
    {"string_smoosh", "x R SMOOSH \"n=\" it MKAY\n"},
    {"function_call", "x R I IZ bump YR it MKAY\n"},
    {"array_rw", "arr'Z MOD OF it AN 16 R it, x R arr'Z MOD OF it AN 16\n"},
};

std::string program_for(const Construct& c) {
  return std::string("HAI 1.2\n") +
         "HOW IZ I bump YR v\n  FOUND YR SUM OF v AN 1\nIF U SAY SO\n" +
         "I HAS A x ITZ 0\n" +
         "I HAS A arr ITZ LOTZ A NUMBRS AN THAR IZ 16\n" +
         "IM IN YR bench UPPIN YR it TIL BOTH SAEM it AN 1000\n" + c.body +
         "IM OUTTA YR bench\nKTHXBYE\n";
}

void BM_Construct(benchmark::State& state) {
  const Construct& c = kConstructs[state.range(0)];
  Backend backend = state.range(1) == 0 ? Backend::kInterp : Backend::kVm;
  auto prog = bench::compile_once(program_for(c));
  lol::RunConfig cfg;
  cfg.n_pes = 1;
  cfg.backend = backend;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel(std::string(c.name) + "/" +
                 (backend == Backend::kInterp ? "interp" : "vm"));
  // Each program run executes the construct 1000 times.
  state.SetItemsProcessed(state.iterations() * 1000);
}

void register_all() {
  for (std::size_t i = 0; i < std::size(kConstructs); ++i) {
    for (int b = 0; b < 2; ++b) {
      benchmark::RegisterBenchmark("Table1/construct", BM_Construct)
          ->Args({static_cast<long>(i), b})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("T1 (paper Table I)",
                "Basic LOLCODE syntax: per-construct execution cost, "
                "interpreter vs bytecode VM (items = construct executions).");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment F2 — paper Figure 2 (symmetric data movement needs HUGZ).
//
// Part 1 (correctness shape): run the Figure-2 pattern
//     TXT MAH BFF k, UR b R MAH a / [HUGZ] / c R SUM OF a AN b
// many times with and without the barrier and count stale observations.
// With HUGZ the count must be zero; without it fast PEs read b before the
// remote put lands — exactly the race the figure warns about.
//
// Part 2 (cost): HUGZ latency vs PE count, wall clock and modeled.
#include <atomic>

#include "bench_common.hpp"
#include "noc/machines.hpp"
#include "shmem/runtime.hpp"

namespace {

/// One round of the Figure-2 pattern at the substrate level; returns the
/// number of PEs that observed a stale b.
int figure2_round(lol::shmem::Runtime& rt, bool with_barrier, int round) {
  std::atomic<int> stale{0};
  auto r = rt.launch([&](lol::shmem::Pe& pe) {
    std::size_t a = pe.shmalloc(8);
    std::size_t b = pe.shmalloc(8);
    pe.put_i64(pe.id(), a, 1000 + pe.id());
    pe.put_i64(pe.id(), b, -1);
    pe.barrier_all();
    int k = (pe.id() + 1) % pe.n_pes();
    // Deliberate asymmetry so some PEs reach the read early.
    if (pe.id() % 2 == 0) {
      volatile double sink = 0;
      for (int i = 0; i < round % 512; ++i) sink = sink + i;
    }
    std::int64_t mine = pe.get_i64(pe.id(), a);
    pe.put_i64(k, b, mine);
    if (with_barrier) pe.barrier_all();
    std::int64_t got = pe.get_i64(pe.id(), b);
    int prev = (pe.id() + pe.n_pes() - 1) % pe.n_pes();
    if (got != 1000 + prev) stale.fetch_add(1);
    pe.barrier_all();
  });
  (void)r;
  return stale.load();
}

void print_race_demo() {
  lol::shmem::Config cfg;
  cfg.n_pes = 4;
  lol::shmem::Runtime rt(cfg);
  const int kRounds = 300;
  int stale_without = 0, stale_with = 0;
  for (int i = 0; i < kRounds; ++i) {
    stale_without += figure2_round(rt, /*with_barrier=*/false, i);
  }
  for (int i = 0; i < kRounds; ++i) {
    stale_with += figure2_round(rt, /*with_barrier=*/true, i);
  }
  std::printf("Figure-2 race observation (4 PEs, %d rounds):\n", kRounds);
  std::printf("  without HUGZ: %5d stale reads (non-deterministic, >0 "
              "expected)\n",
              stale_without);
  std::printf("  with    HUGZ: %5d stale reads (must be 0)\n\n", stale_with);
}

void BM_HugzWall(benchmark::State& state) {
  int n_pes = static_cast<int>(state.range(0));
  std::string src =
      "HAI 1.2\nIM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n  HUGZ\n"
      "IM OUTTA YR l\nKTHXBYE\n";
  auto prog = bench::compile_once(src);
  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel("pes=" + std::to_string(n_pes));
  state.SetItemsProcessed(state.iterations() * 100);
}

void print_modeled_barrier_table() {
  auto epi = lol::noc::epiphany3();
  auto xc = lol::noc::xc40_aries();
  std::printf("modeled HUGZ cost (ns) vs PE count:\n");
  std::printf("%6s %12s %12s\n", "PEs", "epiphany3", "xc40");
  for (int n : {2, 4, 8, 16, 64, 1024, 101312}) {
    std::printf("%6d %12.1f %12.1f\n", n, epi->barrier_ns(n),
                xc->barrier_ns(n));
  }
  std::printf("(log-scaling on both; the XC40 pays ~1.5us per round, which "
              "is how the paper's 101,312-core system still synchronizes "
              "in ~tens of microseconds)\n\n");
}

void register_all() {
  for (int pes : {1, 2, 4, 8, 16}) {
    benchmark::RegisterBenchmark("Fig2/hugz_wall", BM_HugzWall)
        ->Arg(pes)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.02);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("F2 (paper Figure 2)",
                "Synchronization: race rate without HUGZ vs with HUGZ, and "
                "barrier cost vs PE count.");
  print_race_demo();
  print_modeled_barrier_table();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E-OPT — what the optimizing middle-end buys each backend.
//
// Runs the §VI hot-loop workloads (heat_1d, n-body, barrier-sum) at -O0
// and -O2 on the interp and VM backends (the paths that execute the AST
// / bytecode shape directly and so gain the most from folding,
// propagation and unrolling). The headline number is the -O2/-O0
// throughput ratio per workload; the native and JIT backends run the
// same optimized program but amortize it behind the host compiler.
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/paper_programs.hpp"

namespace {

// heat_1d: the shipped example's algorithm (8 interior cells + halo
// exchange) with enough time steps that the per-iteration work, not the
// gang launch, dominates. The time loop stays a loop (trip > unroll
// bound); the 8-cell stencil and copy loops unroll, their indices fold,
// and the per-iteration `c = i + 1` temporaries propagate away.
std::string heat_source(int steps) {
  std::ostringstream ss;
  ss << "HAI 1.2\n"
        "WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 10\n"
        "I HAS A unew ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 10\n"
        "I HAS A left ITZ A NUMBR AN ITZ DIFF OF ME AN 1\n"
        "I HAS A rite ITZ A NUMBR AN ITZ SUM OF ME AN 1\n"
        "I HAS A lastcell ITZ A NUMBR AN ITZ 8\n"
        "BOTH SAEM ME AN 0, O RLY?\nYA RLY\n  u'Z 5 R 100.0\nOIC\nHUGZ\n"
        "IM IN YR steps UPPIN YR t TIL BOTH SAEM t AN "
     << steps
     << "\n"
        "  BIGGER ME AN 0, O RLY?\n  YA RLY\n"
        "    TXT MAH BFF left, UR u'Z SUM OF lastcell AN 1 R MAH u'Z 1\n"
        "  OIC\n"
        "  SMALLR ME AN DIFF OF MAH FRENZ AN 1, O RLY?\n  YA RLY\n"
        "    TXT MAH BFF rite, UR u'Z 0 R MAH u'Z lastcell\n"
        "  OIC\n  HUGZ\n"
        "  IM IN YR cells UPPIN YR i TIL BOTH SAEM i AN lastcell\n"
        "    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1\n"
        "    unew'Z c R SUM OF u'Z c AN PRODUKT OF 0.25 AN ...\n"
        "      SUM OF DIFF OF u'Z DIFF OF c AN 1 AN u'Z c ...\n"
        "      AN DIFF OF u'Z SUM OF c AN 1 AN u'Z c\n"
        "  IM OUTTA YR cells\n"
        "  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN lastcell\n"
        "    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1\n"
        "    u'Z c R unew'Z c\n"
        "  IM OUTTA YR copy\n  HUGZ\n"
        "IM OUTTA YR steps\n"
        "I HAS A total ITZ A NUMBAR AN ITZ 0.0\n"
        "IM IN YR sum UPPIN YR i TIL BOTH SAEM i AN lastcell\n"
        "  total R SUM OF total AN u'Z SUM OF i AN 1\n"
        "IM OUTTA YR sum\n"
        "VISIBLE \"PE \" ME \" BLOCK HEAT \" total\n"
        "KTHXBYE\n";
  return ss.str();
}

// n-body sized to unroll: 8 particles keep both interaction loops under
// the unroll trip bound (the paper's 32 exercises the non-unrolled
// path); 60 time steps amortize the launch.
std::string nbody_source() { return lol::paper::nbody_program(8, 60, false); }

std::string barrier_source() { return lol::paper::barrier_sum_listing(); }

lol::CompiledProgram compile_at(const std::string& src, int level) {
  lol::CompileOptions copts;
  copts.opt_level = level;
  return lol::compile(src, copts);
}

void run_workload(benchmark::State& state, const std::string& src,
                  lol::Backend backend, int opt_level, int n_pes) {
  auto prog = compile_at(src, opt_level);
  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = backend;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel(std::string(lol::to_string(backend)) + " -O" +
                 std::to_string(opt_level));
  state.SetItemsProcessed(state.iterations());
}

void BM_OptHeat1d(benchmark::State& state) {
  run_workload(state, heat_source(400),
               static_cast<lol::Backend>(state.range(0)),
               static_cast<int>(state.range(1)), 2);
}

void BM_OptNbody(benchmark::State& state) {
  run_workload(state, nbody_source(),
               static_cast<lol::Backend>(state.range(0)),
               static_cast<int>(state.range(1)), 2);
}

void BM_OptBarrierSum(benchmark::State& state) {
  run_workload(state, barrier_source(),
               static_cast<lol::Backend>(state.range(0)),
               static_cast<int>(state.range(1)), 4);
}

void opt_args(benchmark::internal::Benchmark* b) {
  for (auto backend : {lol::Backend::kInterp, lol::Backend::kVm}) {
    for (int level : {0, 2}) {
      b->Args({static_cast<long>(backend), level});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_OptHeat1d)->Apply(opt_args);
BENCHMARK(BM_OptNbody)->Apply(opt_args);
BENCHMARK(BM_OptBarrierSum)->Apply(opt_args);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E-OPT",
                "Optimizing middle-end: -O0 vs -O2 per backend on the "
                "paper's SVI hot-loop workloads");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

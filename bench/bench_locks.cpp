// Experiment A3 — contention behaviour of the implicit locks
// (IM SHARIN IT / IM SRSLY MESIN WIF / IM MESIN WIF).
//
// Sweeps PE count x critical-section length and reports wall time plus
// the trylock failure rate under contention — the behaviour students
// observe when they move from one PE to many.
#include <atomic>

#include "bench_common.hpp"
#include "shmem/runtime.hpp"

namespace {

void BM_LockContention(benchmark::State& state) {
  int n_pes = static_cast<int>(state.range(0));
  int hold_work = static_cast<int>(state.range(1));
  std::string src =
      "HAI 1.2\n"
      "WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\n"
      "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n"
      "  IM SRSLY MESIN WIF x\n"
      "  I HAS A w ITZ 0\n"
      "  IM IN YR h UPPIN YR j TIL BOTH SAEM j AN " +
      std::to_string(hold_work) +
      "\n    w R SUM OF w AN j\n  IM OUTTA YR h\n"
      "  DUN MESIN WIF x\n"
      "IM OUTTA YR l\nKTHXBYE\n";
  auto prog = bench::compile_once(src);
  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel("pes=" + std::to_string(n_pes) +
                 "/hold=" + std::to_string(hold_work));
  state.SetItemsProcessed(state.iterations() * 100 * n_pes);
}

/// Trylock failure rate at the substrate level under contention.
void BM_TrylockFailureRate(benchmark::State& state) {
  int n_pes = static_cast<int>(state.range(0));
  lol::shmem::Config scfg;
  scfg.n_pes = n_pes;
  scfg.n_locks = 1;
  lol::shmem::Runtime rt(scfg);
  std::atomic<long> attempts{0}, failures{0};
  for (auto _ : state) {
    auto r = rt.launch([&](lol::shmem::Pe& pe) {
      for (int i = 0; i < 200; ++i) {
        attempts.fetch_add(1, std::memory_order_relaxed);
        if (pe.test_lock(0)) {
          volatile int sink = 0;
          for (int w = 0; w < 50; ++w) sink = sink + w;
          pe.clear_lock(0);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    if (!r.ok) state.SkipWithError("launch failed");
  }
  double rate =
      attempts.load() > 0
          ? static_cast<double>(failures.load()) / attempts.load()
          : 0.0;
  state.counters["trylock_fail_rate"] = rate;
  state.SetLabel("pes=" + std::to_string(n_pes));
}

void register_all() {
  for (int pes : {1, 2, 4, 8}) {
    for (int hold : {0, 10, 50}) {
      benchmark::RegisterBenchmark("Locks/contention", BM_LockContention)
          ->Args({pes, hold})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.02);
    }
    benchmark::RegisterBenchmark("Locks/trylock_rate", BM_TrylockFailureRate)
        ->Arg(pes)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.02);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("A3 (implicit lock contention)",
                "Global exclusive locks: cost vs PE count and critical-"
                "section length; trylock failure rate under contention.");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment T2 — paper Table II (parallel/distributed extensions).
//
// Cost of every extension over PE counts: HUGZ barriers, implicit locks
// (acquire/release and trylock), remote scalar get/put through TXT MAH
// BFF predication, and whole-array transfer. Real std::thread wall time.
#include "bench_common.hpp"

namespace {

struct ParallelOp {
  const char* name;
  // Program body; the op must execute `reps` times per PE.
  std::string (*make)(int reps);
};

std::string hugz_prog(int reps) {
  return "HAI 1.2\nIM IN YR l UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(reps) + "\n  HUGZ\nIM OUTTA YR l\nKTHXBYE\n";
}

std::string lock_prog(int reps) {
  return "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\n"
         "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(reps) +
         "\n  IM SRSLY MESIN WIF x\n  DUN MESIN WIF x\nIM OUTTA YR l\n"
         "KTHXBYE\n";
}

std::string trylock_prog(int reps) {
  return "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\n"
         "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(reps) +
         "\n  IM MESIN WIF x\n  IT, O RLY?\n  YA RLY\n"
         "    DUN MESIN WIF x\n  OIC\nIM OUTTA YR l\nKTHXBYE\n";
}

std::string remote_get_prog(int reps) {
  return "HAI 1.2\nWE HAS A v ITZ SRSLY A NUMBR\nv R ME\nHUGZ\n"
         "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH "
         "FRENZ\nI HAS A got ITZ A NUMBR\n"
         "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(reps) +
         "\n  TXT MAH BFF nxt, got R UR v\nIM OUTTA YR l\nKTHXBYE\n";
}

std::string remote_put_prog(int reps) {
  return "HAI 1.2\nWE HAS A v ITZ SRSLY A NUMBR\nHUGZ\n"
         "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH "
         "FRENZ\n"
         "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(reps) +
         "\n  TXT MAH BFF nxt, UR v R i\nIM OUTTA YR l\nHUGZ\nKTHXBYE\n";
}

std::string array_copy_prog(int reps) {
  return "HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 256\n"
         "I HAS A inbox ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 256\nHUGZ\n"
         "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH "
         "FRENZ\n"
         "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(reps) +
         "\n  TXT MAH BFF nxt, MAH inbox R UR a\nIM OUTTA YR l\nKTHXBYE\n";
}

std::string enumeration_prog(int reps) {
  return "HAI 1.2\nI HAS A s ITZ 0\n"
         "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(reps) +
         "\n  s R SUM OF ME AN MAH FRENZ\nIM OUTTA YR l\nKTHXBYE\n";
}

const ParallelOp kOps[] = {
    {"HUGZ_barrier", hugz_prog},
    {"lock_unlock", lock_prog},
    {"trylock", trylock_prog},
    {"remote_get", remote_get_prog},
    {"remote_put", remote_put_prog},
    {"array_copy_256", array_copy_prog},
    {"ME_MAH_FRENZ", enumeration_prog},
};

constexpr int kReps = 200;

void BM_ParallelOp(benchmark::State& state) {
  const ParallelOp& op = kOps[state.range(0)];
  int n_pes = static_cast<int>(state.range(1));
  auto prog = bench::compile_once(op.make(kReps));
  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel(std::string(op.name) + "/pes=" + std::to_string(n_pes));
  state.SetItemsProcessed(state.iterations() * kReps);
}

void register_all() {
  for (std::size_t i = 0; i < std::size(kOps); ++i) {
    for (int pes : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark("Table2/op", BM_ParallelOp)
          ->Args({static_cast<long>(i), pes})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.02);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("T2 (paper Table II)",
                "Parallel/distributed extensions: per-op cost over PE "
                "counts (items = op executions per PE).");
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

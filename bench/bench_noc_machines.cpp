// Experiment A2 — the paper's claim that the model "scales from
// inexpensive low-power parallel education platforms to the largest
// supercomputers".
//
// The same LOLCODE communication pattern under the three machine models,
// reported in deterministic simulated time: the Parallella's Epiphany-III
// mesh (cheap, topology-sensitive), a Cray XC40 Aries slice (flat,
// microsecond latency, high bandwidth), and a shared-memory laptop.
#include "bench_common.hpp"
#include "noc/machines.hpp"
#include "noc/mesh.hpp"

namespace {

std::string comm_pattern(int rounds, int payload_slots) {
  // Ring exchange of an array plus barrier per round — the halo-exchange
  // skeleton of most SPMD codes (and of examples/heat_1d).
  return "HAI 1.2\n"
         "WE HAS A buf ITZ SRSLY LOTZ A NUMBRS AN THAR IZ " +
         std::to_string(payload_slots) +
         "\n"
         "I HAS A inbox ITZ SRSLY LOTZ A NUMBRS AN THAR IZ " +
         std::to_string(payload_slots) +
         "\n"
         "I HAS A nxt ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH "
         "FRENZ\n"
         "HUGZ\n"
         "IM IN YR l UPPIN YR r TIL BOTH SAEM r AN " +
         std::to_string(rounds) +
         "\n"
         "  TXT MAH BFF nxt, MAH inbox R UR buf\n"
         "  HUGZ\n"
         "IM OUTTA YR l\n"
         "KTHXBYE\n";
}

void run_and_report(const char* machine_name, lol::noc::ModelPtr model,
                    int n_pes, int rounds, int slots) {
  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  cfg.machine = std::move(model);
  auto prog = bench::compile_once(comm_pattern(rounds, slots));
  auto r = lol::run(prog, cfg);
  if (!r.ok) {
    std::printf("  %-14s FAILED: %s\n", machine_name,
                r.first_error().c_str());
    return;
  }
  std::printf("  %-14s %12.1f us\n", machine_name,
              r.max_sim_ns() / 1000.0);
}

void print_machine_comparison() {
  std::printf("halo-exchange pattern, 50 rounds x 64-slot array, simulated "
              "communication+sync time:\n");
  for (int n_pes : {4, 16}) {
    std::printf("n_pes = %d:\n", n_pes);
    run_and_report("epiphany3", lol::noc::epiphany3(), n_pes, 50, 64);
    run_and_report("xc40-aries", lol::noc::xc40_aries(), n_pes, 50, 64);
    run_and_report("shared-mem", lol::noc::shared_memory(), n_pes, 50, 64);
  }
  std::printf("(shape: the mesh wins on small payloads at small scale; the "
              "XC40's flat fabric costs ~1.3us per op regardless of "
              "distance but scales out)\n\n");
}

void print_hop_sweep() {
  std::printf("mesh topology sensitivity: modeled 8B get latency vs hop "
              "count (Epiphany-III XY routing):\n  hops:");
  lol::noc::MeshModel mesh;  // 4x4
  for (int dst : {1, 2, 3, 7, 11, 15}) {
    std::printf("  %d->%dns", mesh.hops(0, dst),
                static_cast<int>(mesh.get_ns(0, dst, 8)));
  }
  std::printf("\n  (the XC40 model reports %.0fns for every one of those "
              "pairs)\n\n",
              lol::noc::xc40_aries()->get_ns(0, 1, 8));
}

/// Wall-clock cost of running WITH a model attached (accounting overhead).
void BM_SimOverhead(benchmark::State& state) {
  bool with_model = state.range(0) != 0;
  auto prog = bench::compile_once(comm_pattern(20, 16));
  lol::RunConfig cfg;
  cfg.n_pes = 4;
  cfg.backend = lol::Backend::kVm;
  if (with_model) cfg.machine = lol::noc::epiphany3();
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel(with_model ? "with-model" : "no-model");
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("A2 (education platform -> supercomputer)",
                "Same program, three machines: deterministic simulated "
                "time under the Epiphany-III mesh, XC40 Aries and "
                "shared-memory models.");
  print_machine_comparison();
  print_hop_sweep();
  benchmark::RegisterBenchmark("NocMachines/sim_overhead", BM_SimOverhead)
      ->Arg(0)
      ->Arg(1)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// S2 — scheduler hardening overhead: what deficit-round-robin fair
// queueing and the deadline reaper cost on the service hot path.
//
//   * BM_SingleTenantDispatch: the degenerate case — one tenant, DRR
//     reduces to the old global FIFO; this is the regression guard for
//     the queue rework
//   * BM_MultiTenantDispatch/T: the same batch spread across T tenants,
//     exercising the rotation on every pop
//   * BM_DeadlineArmedJobs: every job carries a (never-firing) deadline,
//     measuring the reaper's arm/skip cost per job
#include "bench_common.hpp"

#include <future>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace {

using lol::service::Job;
using lol::service::JobResult;
using lol::service::JobStatus;
using lol::service::Service;
using lol::service::ServiceOptions;

constexpr const char* kTiny = "HAI 1.2\nVISIBLE ME\nKTHXBYE\n";
constexpr int kJobs = 256;

void run_batch(Service& svc, int tenants, std::uint64_t deadline_ms,
               benchmark::State& state) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    Job j;
    j.name = "job#" + std::to_string(i);
    j.source = kTiny;
    j.tenant = tenants > 1 ? "tenant#" + std::to_string(i % tenants) : "";
    j.deadline_ms = deadline_ms;
    futures.push_back(svc.submit(std::move(j)));
  }
  for (auto& f : futures) {
    JobResult r = f.get();
    if (r.status != JobStatus::kOk) {
      state.SkipWithError(("job failed: " + r.error).c_str());
      return;
    }
  }
}

void BM_SingleTenantDispatch(benchmark::State& state) {
  ServiceOptions opts;
  opts.workers = static_cast<int>(state.range(0));
  opts.queue_capacity = kJobs;
  Service svc(opts);
  run_batch(svc, 1, 0, state);  // warm the compile cache
  for (auto _ : state) run_batch(svc, 1, 0, state);
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_SingleTenantDispatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MultiTenantDispatch(benchmark::State& state) {
  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kJobs;
  Service svc(opts);
  int tenants = static_cast<int>(state.range(0));
  run_batch(svc, tenants, 0, state);
  for (auto _ : state) run_batch(svc, tenants, 0, state);
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_MultiTenantDispatch)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_DeadlineArmedJobs(benchmark::State& state) {
  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kJobs;
  Service svc(opts);
  // 60 s never fires for sub-ms jobs: this isolates arm + reap-skip cost.
  run_batch(svc, 1, 60'000, state);
  for (auto _ : state) run_batch(svc, 1, 60'000, state);
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_DeadlineArmedJobs)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("S2",
                "Service hardening overhead: DRR fair queueing and the "
                "deadline reaper vs the plain FIFO dispatch path");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

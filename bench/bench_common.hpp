// Shared helpers for the PARALLOL benchmark suite.
//
// Every bench binary regenerates one artifact of the paper's evaluation
// (a table, a figure, or a claim); see DESIGN.md §6 for the index and
// EXPERIMENTS.md for paper-vs-measured notes.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/engine.hpp"

namespace bench {

/// Prints the experiment banner once per binary.
inline void banner(const char* experiment_id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("PARALLOL reproduction — %s\n%s\n", experiment_id, what);
  std::printf("==============================================================\n");
}

/// Compiles once; reuse across iterations.
inline lol::CompiledProgram compile_once(const std::string& src) {
  return lol::compile(src);
}

/// Runs a compiled program and aborts the benchmark on failure.
inline lol::RunResult must_run(const lol::CompiledProgram& prog,
                               const lol::RunConfig& cfg,
                               benchmark::State& state) {
  lol::RunResult r = lol::run(prog, cfg);
  if (!r.ok) {
    state.SkipWithError(r.first_error().c_str());
  }
  return r;
}

}  // namespace bench

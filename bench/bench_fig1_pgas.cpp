// Experiment F1 — paper Figure 1 (the PGAS memory model).
//
// Demonstrates the property the figure draws: one symmetric object, one
// instance per PE at the same offset, locally and remotely addressable.
// Then measures local vs remote access cost (latency and bandwidth) under
// each machine model — the quantitative content behind the picture.
#include "bench_common.hpp"
#include "noc/machines.hpp"
#include "shmem/runtime.hpp"

namespace {

/// Verifies and prints the symmetric-layout property the figure shows.
void print_symmetry_check() {
  lol::shmem::Config cfg;
  cfg.n_pes = 4;
  lol::shmem::Runtime rt(cfg);
  std::array<std::size_t, 4> offs{};
  auto r = rt.launch([&](lol::shmem::Pe& pe) {
    pe.shmalloc(64);  // some earlier allocation
    offs[static_cast<std::size_t>(pe.id())] = pe.shmalloc(256);
  });
  std::printf("symmetric layout check (4 PEs, alloc #2 of 256B): offsets =");
  for (auto o : offs) std::printf(" %zu", o);
  std::printf("  %s\n\n", r.ok && offs[0] == offs[1] && offs[1] == offs[2] &&
                                  offs[2] == offs[3]
                              ? "[identical — PGAS symmetric heap OK]"
                              : "[MISMATCH]");
}

/// Wall-clock put/get through the real substrate (threads + atomics).
void BM_WallRemoteAccess(benchmark::State& state) {
  bool is_get = state.range(0) != 0;
  std::size_t bytes = static_cast<std::size_t>(state.range(1));
  lol::shmem::Config cfg;
  cfg.n_pes = 2;
  cfg.heap_bytes = 1 << 22;
  lol::shmem::Runtime rt(cfg);
  std::vector<std::byte> buf(bytes);
  for (auto _ : state) {
    auto r = rt.launch([&](lol::shmem::Pe& pe) {
      std::size_t off = pe.shmalloc(bytes);
      pe.barrier_all();
      if (pe.id() == 0) {
        for (int i = 0; i < 64; ++i) {
          if (is_get) {
            pe.get(buf.data(), 1, off, bytes);
          } else {
            pe.put(1, off, buf.data(), bytes);
          }
        }
      }
      pe.barrier_all();
    });
    if (!r.ok) state.SkipWithError("launch failed");
  }
  state.SetLabel(std::string(is_get ? "get" : "put") + "/" +
                 std::to_string(bytes) + "B");
  state.SetBytesProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(bytes));
}

/// Modeled cost: local vs 1-hop vs far-corner vs Aries, from the machine
/// models directly (deterministic, laptop-independent).
void print_model_table() {
  auto epi = lol::noc::epiphany3();
  auto xc = lol::noc::xc40_aries();
  auto smp = lol::noc::shared_memory();
  std::printf("modeled one-sided access cost (ns):\n");
  std::printf("%-22s %10s %10s %10s\n", "operation", "epiphany3", "xc40",
              "smp");
  struct Row {
    const char* name;
    int src, dst;
    std::size_t bytes;
    bool get;
  } rows[] = {
      {"put  8B local", 0, 0, 8, false},  {"put  8B 1-hop", 0, 1, 8, false},
      {"put  8B corner", 0, 15, 8, false}, {"get  8B 1-hop", 0, 1, 8, true},
      {"get  8B corner", 0, 15, 8, true},  {"put 4KB 1-hop", 0, 1, 4096, false},
  };
  for (const auto& row : rows) {
    auto cost = [&](const lol::noc::MachineModel& m) {
      return row.get ? m.get_ns(row.src, row.dst, row.bytes)
                     : m.put_ns(row.src, row.dst, row.bytes);
    };
    std::printf("%-22s %10.1f %10.1f %10.1f\n", row.name, cost(*epi),
                cost(*xc), cost(*smp));
  }
  std::printf("(mesh: cost grows with hops; Aries: flat but ~1.3us base — "
              "the Figure-1 remote arrow is cheap next door, dear far "
              "away)\n\n");
}

void register_all() {
  for (long get : {0L, 1L}) {
    for (long bytes : {8L, 256L, 4096L, 65536L}) {
      benchmark::RegisterBenchmark("Fig1/wall_access", BM_WallRemoteAccess)
          ->Args({get, bytes})
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.02);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("F1 (paper Figure 1)",
                "PGAS memory model: symmetric layout proof, local-vs-remote "
                "access cost (wall clock + machine models).");
  print_symmetry_check();
  print_model_table();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

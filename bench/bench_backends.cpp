// Experiment A1 — the paper's §II claim: "Using a compiler for LOLCODE is
// more flexible and efficient than an interpreter."
//
// The same compute-heavy program on all execution tiers:
//   interp      — tree-walking interpreter (the lci-style baseline)
//   vm          — bytecode VM (compiled dispatch)
//   lcc+cc      — the paper's pipeline: LOLCODE -> C -> host cc -> native
// The shape that must reproduce: interp < vm < lcc, with lcc approaching
// native C speed for SRSLY-typed code.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "codegen/c_emitter.hpp"
#include "core/paper_programs.hpp"
#include "driver/cli.hpp"

namespace {

// A numeric workload dominated by SRSLY NUMBAR arithmetic, so the C
// backend's native lowering can shine (the n-body inner loop shape).
std::string workload(int outer) {
  return "HAI 1.2\n"
         "I HAS A acc ITZ SRSLY A NUMBAR AN ITZ 0.0\n"
         "I HAS A x ITZ SRSLY A NUMBAR AN ITZ 1.5\n"
         "IM IN YR o UPPIN YR i TIL BOTH SAEM i AN " +
         std::to_string(outer) +
         "\n"
         "  IM IN YR in UPPIN YR j TIL BOTH SAEM j AN 100\n"
         "    acc R SUM OF acc AN FLIP OF UNSQUAR OF SUM OF SQUAR OF x "
         "AN j\n"
         "  IM OUTTA YR in\n"
         "IM OUTTA YR o\n"
         "VISIBLE acc\n"
         "KTHXBYE\n";
}

constexpr int kOuter = 400;

void BM_Interp(benchmark::State& state) {
  auto prog = bench::compile_once(workload(kOuter));
  lol::RunConfig cfg;
  cfg.backend = lol::Backend::kInterp;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetItemsProcessed(state.iterations() * kOuter * 100);
}

void BM_Vm(benchmark::State& state) {
  auto prog = bench::compile_once(workload(kOuter));
  lol::RunConfig cfg;
  cfg.backend = lol::Backend::kVm;
  for (auto _ : state) {
    auto r = bench::must_run(prog, cfg, state);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetItemsProcessed(state.iterations() * kOuter * 100);
}

/// The lcc pipeline, if an `lcc` binary is reachable (built in ../tools).
/// Compiles once in setup, then benchmarks the resulting executable.
void BM_LccNative(benchmark::State& state) {
  static std::string exe = [] {
    std::string lcc = "./tools/lcc";
    if (!lol::driver::read_file(lcc)) lcc = "./build/tools/lcc";
    if (!lol::driver::read_file(lcc)) return std::string();
    std::string dir = "/tmp/parallol_bench";
    (void)std::system(("mkdir -p " + dir).c_str());
    std::string lol = dir + "/w.lol";
    std::string x = dir + "/w.x";
    if (!lol::driver::write_file(lol, workload(kOuter))) return std::string();
    if (std::system((lcc + " " + lol + " -o " + x + " >/dev/null 2>&1")
                        .c_str()) != 0) {
      return std::string();
    }
    return x;
  }();
  if (exe.empty()) {
    state.SkipWithError("lcc binary not found (run from the build dir)");
    return;
  }
  for (auto _ : state) {
    int rc = std::system((exe + " >/dev/null").c_str());
    if (rc != 0) state.SkipWithError("generated executable failed");
  }
  state.SetItemsProcessed(state.iterations() * kOuter * 100);
  state.SetLabel("includes ~ms process spawn overhead");
}

}  // namespace

BENCHMARK(BM_Interp)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_Vm)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_LccNative)->Unit(benchmark::kMillisecond)->MinTime(0.1);

int main(int argc, char** argv) {
  bench::banner("A1 (paper SII claim)",
                "Backend ablation: interpreter vs bytecode VM vs the "
                "paper's lcc->C->cc pipeline on a SRSLY-typed numeric "
                "kernel (items = inner-loop iterations).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

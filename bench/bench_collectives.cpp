// Collective benchmarks: what the hierarchical synchronization core buys.
//
//   * barrier-crossing throughput vs PE count (64 → 4096) on the thread
//     and fiber executors. This is the number the combining tree exists
//     for: the pre-tree centralized barrier serialized every PE through
//     one mutex-protected counter, and stopped scaling exactly where
//     the paper's teaching gets interesting (2048+ PEs).
//   * tree vs flat fan-in at high PE counts — radix n_pes degenerates
//     the tree to a single node, i.e. the shape of the old centralized
//     barrier (minus its mutex), so the depth-vs-contention tradeoff is
//     measurable in one binary.
//   * allreduce (i64 and the canonical-order f64 sum) and broadcast:
//     one tree crossing each, where the old collectives paid two full
//     barriers around a linear scan.
//
// One "item" is one whole-gang crossing, so items/sec compares directly
// across PE counts and executors.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "shmem/executor.hpp"
#include "shmem/runtime.hpp"

namespace {

using lol::shmem::Config;
using lol::shmem::ExecutorKind;
using lol::shmem::Pe;
using lol::shmem::Runtime;

constexpr int kCrossingsPerLaunch = 64;

Config coll_config(int n_pes, ExecutorKind kind, int barrier_radix = 0) {
  Config cfg;
  cfg.n_pes = n_pes;
  cfg.heap_bytes = 4096;
  cfg.barrier_radix = barrier_radix;
  if (kind != ExecutorKind::kThread) {
    cfg.executor = lol::shmem::make_executor(kind, /*pes_per_thread=*/0);
  }
  return cfg;
}

void run_crossings(benchmark::State& state, ExecutorKind kind, Config cfg,
                   const std::function<void(Pe&)>& body) {
  Runtime rt(std::move(cfg));
  for (auto _ : state) {
    auto r = rt.launch(body);
    if (!r.ok) state.SkipWithError(r.first_error().c_str());
  }
  state.SetItemsProcessed(state.iterations() * kCrossingsPerLaunch);
  state.SetLabel(std::string(lol::shmem::to_string(kind)) +
                 " radix=" + std::to_string(rt.barrier_radix()) +
                 " depth=" + std::to_string(rt.barrier_levels()));
}

void barrier_bench(benchmark::State& state, ExecutorKind kind, int radix) {
  run_crossings(state, kind,
                coll_config(static_cast<int>(state.range(0)), kind, radix),
                [](Pe& pe) {
                  for (int i = 0; i < kCrossingsPerLaunch; ++i) {
                    pe.barrier_all();
                  }
                });
}

void BM_Barrier_Thread(benchmark::State& state) {
  barrier_bench(state, ExecutorKind::kThread, 0);
}
void BM_Barrier_Fiber(benchmark::State& state) {
  barrier_bench(state, ExecutorKind::kFiber, 0);
}
// Flat fan-in = one combining node all PEs hammer — the centralized
// shape, for the tree-vs-flat comparison at scale.
void BM_Barrier_Fiber_FlatRadix(benchmark::State& state) {
  barrier_bench(state, ExecutorKind::kFiber,
                static_cast<int>(state.range(0)));
}
// Binary tree: maximum depth, minimum per-node contention.
void BM_Barrier_Fiber_Radix2(benchmark::State& state) {
  barrier_bench(state, ExecutorKind::kFiber, 2);
}

BENCHMARK(BM_Barrier_Thread)->Arg(64)->Arg(256);
BENCHMARK(BM_Barrier_Fiber)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK(BM_Barrier_Fiber_FlatRadix)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK(BM_Barrier_Fiber_Radix2)->Arg(2048)->Arg(4096);

void BM_AllReduceSumI64_Fiber(benchmark::State& state) {
  run_crossings(state, ExecutorKind::kFiber,
                coll_config(static_cast<int>(state.range(0)),
                            ExecutorKind::kFiber),
                [](Pe& pe) {
                  std::int64_t acc = 0;
                  for (int i = 0; i < kCrossingsPerLaunch; ++i) {
                    acc += pe.all_reduce_sum_i64(pe.id());
                  }
                  benchmark::DoNotOptimize(acc);
                });
}

// f64 sum pays the canonical-order fold at the root (the price of
// byte-identical results across radices and executors).
void BM_AllReduceSumF64_Fiber(benchmark::State& state) {
  run_crossings(state, ExecutorKind::kFiber,
                coll_config(static_cast<int>(state.range(0)),
                            ExecutorKind::kFiber),
                [](Pe& pe) {
                  double acc = 0.0;
                  for (int i = 0; i < kCrossingsPerLaunch; ++i) {
                    acc += pe.all_reduce_sum_f64(pe.id() * 0.5);
                  }
                  benchmark::DoNotOptimize(acc);
                });
}

void BM_Broadcast_Fiber(benchmark::State& state) {
  run_crossings(state, ExecutorKind::kFiber,
                coll_config(static_cast<int>(state.range(0)),
                            ExecutorKind::kFiber),
                [](Pe& pe) {
                  std::int64_t acc = 0;
                  for (int i = 0; i < kCrossingsPerLaunch; ++i) {
                    acc += pe.broadcast_i64(pe.id(), i % pe.n_pes());
                  }
                  benchmark::DoNotOptimize(acc);
                });
}

void BM_AllReduceSumI64_Thread(benchmark::State& state) {
  run_crossings(state, ExecutorKind::kThread,
                coll_config(static_cast<int>(state.range(0)),
                            ExecutorKind::kThread),
                [](Pe& pe) {
                  std::int64_t acc = 0;
                  for (int i = 0; i < kCrossingsPerLaunch; ++i) {
                    acc += pe.all_reduce_sum_i64(pe.id());
                  }
                  benchmark::DoNotOptimize(acc);
                });
}

BENCHMARK(BM_AllReduceSumI64_Thread)->Arg(64)->Arg(256);
BENCHMARK(BM_AllReduceSumI64_Fiber)->Arg(256)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK(BM_AllReduceSumF64_Fiber)->Arg(256)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK(BM_Broadcast_Fiber)->Arg(256)->Arg(1024)->Arg(2048)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "collectives",
      "hierarchical synchronization: barrier / allreduce / broadcast "
      "throughput vs PE count (64-4096), thread vs fiber, tree vs flat");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// AbortToken — an external kill switch for one lol::run invocation.
//
// The engine constructs a fresh shmem::Runtime per run, so callers that
// want to stop a run from outside (the service's deadline reaper, a
// cancel request, an embedder's Ctrl-C handler) have no handle to call
// Runtime::abort() on. An AbortToken is that handle: the caller keeps
// the token, passes it via RunConfig::abort, and may call request() from
// any thread at any time — before the run starts (it then finishes
// immediately with RunResult::aborted), while PEs execute (they die at
// the next step-budget poll, barrier wait, lock spin or GIMMEH poll), or
// after it finished (a no-op).
//
// A token is single-use per run but reusable across sequential runs as
// long as request() has not fired; once requested it stays requested.
#pragma once

#include <mutex>

namespace lol::shmem {
class Runtime;
}

namespace lol {

class AbortToken {
 public:
  AbortToken() = default;
  AbortToken(const AbortToken&) = delete;
  AbortToken& operator=(const AbortToken&) = delete;

  /// Requests the bound run (current or future) to abort. Thread-safe,
  /// idempotent, sticky.
  void request();

  [[nodiscard]] bool requested() const;

  /// RAII binding of a token to the live Runtime of one run. Engine
  /// internal: lol::run creates it around launch(); user code never
  /// constructs one.
  class Binding {
   public:
    Binding(AbortToken* token, shmem::Runtime& rt);
    ~Binding();
    Binding(const Binding&) = delete;
    Binding& operator=(const Binding&) = delete;

   private:
    AbortToken* token_;
  };

 private:
  mutable std::mutex m_;
  shmem::Runtime* rt_ = nullptr;  // non-null while a run is live
  bool requested_ = false;
};

}  // namespace lol

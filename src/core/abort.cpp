#include "core/abort.hpp"

#include "shmem/runtime.hpp"

namespace lol {

void AbortToken::request() {
  std::lock_guard<std::mutex> g(m_);
  requested_ = true;
  if (rt_ != nullptr) rt_->abort();
}

bool AbortToken::requested() const {
  std::lock_guard<std::mutex> g(m_);
  return requested_;
}

AbortToken::Binding::Binding(AbortToken* token, shmem::Runtime& rt)
    : token_(token) {
  if (token_ == nullptr) return;
  std::lock_guard<std::mutex> g(token_->m_);
  token_->rt_ = &rt;
  // A request that raced ahead of the run still kills it.
  if (token_->requested_) rt.abort();
}

AbortToken::Binding::~Binding() {
  if (token_ == nullptr) return;
  std::lock_guard<std::mutex> g(token_->m_);
  token_->rt_ = nullptr;
}

}  // namespace lol

// PARALLOL public API.
//
// Typical embedding:
//
//   auto prog = lol::compile(source);                 // lex+parse+sema
//   lol::RunConfig cfg;
//   cfg.n_pes = 4;
//   auto result = lol::run(prog, cfg);                // SPMD execution
//   std::cout << result.pe_output[0];
//
// The paper's command-line flow (`lcc code.lol -o x && coprsh -np 16 ./x`)
// is provided by the `lcc` and `lolrun` tools built on this API.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/ast.hpp"
#include "core/abort.hpp"
#include "noc/model.hpp"
#include "obs/profile.hpp"
#include "replay/fault.hpp"
#include "replay/trace.hpp"
#include "rt/io.hpp"
#include "sema/analyzer.hpp"
#include "shmem/executor.hpp"

namespace lol::codegen {
struct JitSlot;
struct NativeSlot;
}

namespace lol::vm {
struct VmSlot;
}

namespace lol {

/// Which execution backend runs the program.
enum class Backend {
  kInterp,  // tree-walking interpreter (reference semantics)
  kVm,      // bytecode VM (compiled dispatch; same semantics, faster)
  kNative,  // lcc-generated C compiled by the host cc, dlopen()ed and run
            // in-process on the same shmem substrate; needs a host C
            // compiler (lol::codegen::native_available()) or the run
            // fails with an explanatory error
  kJit,     // VM bytecode lowered directly to x86-64 in executable pages
            // (W^X mmap) — no host toolchain, microsecond cold compiles.
            // Falls back to kNative automatically when the host is not
            // x86-64, the kernel refuses PROT_EXEC, or LOL_JIT=0
            // (lol::codegen::jit_available())
};

/// Canonical backend name ("interp" / "vm" / "native" / "jit") — the single
/// mapping every surface shares: lolrun/lolserve --backend flags, the
/// daemon wire protocol, the differential harness.
[[nodiscard]] const char* to_string(Backend b);

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<Backend> backend_from_name(std::string_view name);

/// Front-end configuration for compile(). Level 0 runs the raw AST,
/// level 1 runs the folding passes, level 2 (the default everywhere)
/// adds the loop pipeline — see opt/opt.hpp. All levels are observably
/// equivalent per PE except step *counts* near a max_steps edge.
struct CompileOptions {
  int opt_level = 2;
  int unroll_max_trip = 16;  // forwarded to opt::Options
};

/// A compiled (parsed + analyzed) program. Movable; the analysis borrows
/// AST nodes owned by `program`, whose addresses are stable under moves.
struct CompiledProgram {
  ast::Program program;
  sema::Analysis analysis;

  /// The options this program was compiled with (cache keys and replay
  /// hashes must distinguish optimized shapes).
  CompileOptions options;

  /// Backend::kNative memo: the loaded shared object for this program,
  /// filled on first native run so repeats skip C emission (see
  /// codegen/native_backend.hpp). Harmless to leave null on
  /// hand-constructed instances — the run falls back to the global cache.
  std::shared_ptr<codegen::NativeSlot> native_slot;

  /// Backend::kVm memo: the compiled bytecode chunk, filled on first VM
  /// run so warm service jobs stop re-compiling bytecode per submission
  /// (see vm/compiler.hpp). Null on hand-constructed instances means
  /// every run compiles afresh — correct, just slower.
  std::shared_ptr<vm::VmSlot> vm_slot;

  /// Backend::kJit memo: the emitted machine code for this program,
  /// filled on first JIT run (see codegen/jit_backend.hpp). Shares the
  /// vm_slot chunk. Null on hand-constructed instances falls back to
  /// the process-wide JIT code cache.
  std::shared_ptr<codegen::JitSlot> jit_slot;

  /// Bytes of sealed JIT code currently memoized in jit_slot (0 when
  /// none) — the service compile cache charges these against its byte
  /// budget after a JIT run.
  [[nodiscard]] std::size_t jit_code_bytes() const;
};

/// SPMD run configuration.
struct RunConfig {
  int n_pes = 1;
  Backend backend = Backend::kInterp;
  std::size_t heap_bytes = 1 << 20;  // symmetric heap per PE
  noc::ModelPtr machine;             // optional simulated-time model
  std::uint64_t seed = 20170529;     // WHATEVR/WHATEVAR determinism
  std::vector<std::string> stdin_lines;  // GIMMEH input (per-PE cursor)
  rt::OutputSink* sink = nullptr;    // external sink; null => capture

  /// External input source for GIMMEH; null => stdin_lines. Lets hosts
  /// feed live (possibly blocking) input; blocked reads stay abortable
  /// because backends poll through InputSource::try_read_line.
  rt::InputSource* input = nullptr;

  /// Per-PE step budget; 0 = unlimited. A step is one statement in the
  /// interpreter or one instruction in the VM; a PE that exhausts it is
  /// killed with support::StepLimitError (the service layer relies on
  /// this to survive hostile/looping submissions).
  std::uint64_t max_steps = 0;

  /// External kill switch; null => the run cannot be aborted from
  /// outside. AbortToken::request() (any thread, any time) stops the
  /// run: blocked barriers/locks/GIMMEH reads wake up and spinning PEs
  /// die at the next step poll. The service's deadline reaper and
  /// cancel() fire this.
  AbortToken* abort = nullptr;

  /// How PEs map onto OS threads (shmem/executor.hpp): thread-per-PE
  /// (default), the persistent process-wide pool, or fiber carriers
  /// multiplexing many virtual PEs per core — the only way to run
  /// n_pes far beyond hardware_concurrency. Abort/deadline semantics
  /// are identical across executors.
  shmem::ExecutorKind executor = shmem::ExecutorKind::kThread;

  /// Fiber executor only: virtual PEs per carrier thread (0 = auto,
  /// spreading the gang over the hardware threads).
  int pes_per_thread = 0;

  /// Fan-in of the combining-tree barrier and tree collectives
  /// (shmem/runtime.hpp); values below 2 mean auto. Affects contention
  /// and the modeled tree depth only — reduction results are
  /// byte-identical across radices by construction.
  int barrier_radix = 0;

  /// Explicit executor instance; overrides `executor` when set (hosts
  /// that want their own pool lifetime instead of the shared one).
  shmem::ExecutorPtr executor_impl;

  /// Backend::kJit only: force the type-specialized tier on/off for
  /// this run, overriding LOL_JIT_SPEC (benchmarks and tests compare
  /// the tiers in one process; both variants coexist in the code
  /// cache). nullopt = follow the environment.
  std::optional<bool> jit_spec;

  /// Sample wall-clock wait times (barrier park, lock spin) into the
  /// per-PE profiles returned in RunResult::pe_profiles. Event counts
  /// (steps, crossings, acquisitions, GIMMEH blocks) are collected
  /// regardless; the clock reads are opt-in (lolrun --profile).
  bool profile = false;

  /// Deterministic scheduling (replay/controller.hpp). kNone (default)
  /// runs free. kRecord serializes the gang on an execution token and
  /// captures the handoff order into RunResult::schedule_trace. kPerturb
  /// does the same with a seeded random token order (perturb_seed).
  /// kReplay re-enforces a recorded order from `replay_trace`. Recorded
  /// and replayed runs are byte-identical across backends and executors.
  replay::ScheduleMode schedule = replay::ScheduleMode::kNone;
  std::uint64_t perturb_seed = 0;
  /// Required when schedule == kReplay; must match this run's n_pes,
  /// seed and (when both sides carry one) program_hash.
  std::shared_ptr<const replay::Trace> replay_trace;
  /// FNV-1a hash of the program source (replay::fnv1a), stamped into
  /// recorded traces and checked on replay. 0 = unknown (check skipped).
  std::uint64_t program_hash = 0;

  /// Fault injection (replay/fault.hpp): kill a PE at a step, spike the
  /// modeled NoC latency, fail the GIMMEH source after N reads.
  replay::FaultPlan fault;
};

/// Outcome of an SPMD run.
struct RunResult {
  bool ok = false;
  bool step_limited = false;  // some PE exceeded RunConfig::max_steps
  bool aborted = false;       // RunConfig::abort was requested
  bool pe_failed = false;     // a PE was killed by fault injection
  bool replay_diverged = false;  // kReplay: execution left the trace
  std::vector<std::string> pe_output;  // per-PE captured stdout
  std::vector<std::string> pe_errout;  // per-PE captured stderr
  std::vector<std::string> errors;     // per-PE error ("" when fine)
  std::vector<double> sim_ns;          // per-PE simulated time
  /// Per-PE runtime profiles (steps, barrier/lock events, GIMMEH
  /// blocks; *_wait_ns populated only when RunConfig::profile was set).
  std::vector<obs::PeProfile> pe_profiles;
  /// Lifecycle timing for job traces: run() entry until the first PE
  /// body started (native/vm memo, runtime build, executor claim), and
  /// from then until the gang joined.
  double claim_ms = 0.0;
  double exec_ms = 0.0;
  /// Serialized schedule trace (replay::Trace::serialize) when the run
  /// was recorded or perturbed; empty otherwise.
  std::string schedule_trace;

  /// First non-empty per-PE error.
  [[nodiscard]] std::string first_error() const;
  /// Modeled wall-clock: max simulated time across PEs.
  [[nodiscard]] double max_sim_ns() const;
};

/// Lexes, parses, analyzes and optimizes `source`. Throws
/// support::LexError, support::ParseError or support::SemaError with
/// source locations; sema runs on the raw AST first, so invalid programs
/// produce identical diagnostics at every opt level.
CompiledProgram compile(std::string_view source,
                        const CompileOptions& opts = {});

/// Runs a compiled program SPMD on cfg.n_pes PEs.
RunResult run(const CompiledProgram& prog, const RunConfig& cfg = {});

/// Convenience: compile + run.
RunResult run_source(std::string_view source, const RunConfig& cfg = {});

/// Library version string.
std::string_view version();

}  // namespace lol

#include "core/paper_programs.hpp"

namespace lol::paper {

std::string ring_listing() {
  // Paper §VI.A, completed into a runnable program (the paper shows the
  // fragment; HAI/HUGZ/KTHXBYE framing added, values seeded so the copy
  // is observable).
  //
  // One deliberate fix: the paper copies into `array` itself
  // (`TXT MAH BFF next_pe, MAH array R UR array`), but that races — a PE
  // can overwrite its array while its predecessor is still reading it.
  // We copy into a separate `inbox` array, which preserves the statement
  // shape while making the transfer well-defined (see DESIGN.md §5).
  return R"(HAI 1.2
BTW paper SVI.A: circular message transfer of a symmetric array
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ
WE HAS A array ITZ SRSLY LOTZ A NUMBRS ...
  AN THAR IZ 32
I HAS A inbox ITZ SRSLY LOTZ A NUMBRS ...
  AN THAR IZ 32
I HAS A next_pe ITZ A NUMBR ...
  AN ITZ SUM OF pe AN 1
next_pe R MOD OF next_pe AN n_pes
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32
  array'Z i R SUM OF PRODUKT OF pe AN 1000 AN i
IM OUTTA YR loop
HUGZ
TXT MAH BFF next_pe, MAH inbox R UR array
HUGZ
VISIBLE "PE " pe " HAZ " inbox'Z 0 " THRU " inbox'Z 31
KTHXBYE
)";
}

std::string lock_counter_listing(int iterations) {
  // Paper §VI.B: symmetric shared counter protected by the implicit lock
  // (IM SHARIN IT), updated remotely under TXT MAH BFF predication.
  return R"(HAI 1.2
BTW paper SVI.B: lock-protected remote update
WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT
HUGZ
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN )" +
         std::to_string(iterations) + R"(
  TXT MAH BFF 0 AN STUFF
    IM SRSLY MESIN WIF UR x
    UR x R SUM OF UR x AN 1
    DUN MESIN WIF UR x
  TTYL
IM OUTTA YR loop
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE "KOUNTER IZ " x
OIC
KTHXBYE
)";
}

std::string barrier_sum_listing() {
  // Paper §VI.C / Figure 2: each PE copies its a into neighbour k's b;
  // after HUGZ every PE computes c = a + b from fresh data.
  return R"(HAI 1.2
BTW paper SVI.C: barriers and message passing (Figure 2)
WE HAS A a ITZ SRSLY A NUMBR
WE HAS A b ITZ SRSLY A NUMBR
a R SUM OF PRODUKT OF ME AN 10 AN 1
HUGZ
I HAS A k ITZ A NUMBR AN ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
TXT MAH BFF k, UR b R MAH a
HUGZ
I HAS A c ITZ A NUMBR AN ITZ SUM OF a AN b
VISIBLE "PE " ME " C IZ " c
KTHXBYE
)";
}

std::string nbody_listing() { return nbody_program(32, 10, true); }

std::string nbody_program(int particles, int steps, bool print_positions) {
  // Paper §VI.D, verbatim modulo the two parameters (the paper hardcodes
  // 32 particles and 10 steps). Note the listing's quirks are preserved:
  // dx/dy are squared before being used in the accumulation, and the
  // remote-interaction loop recomputes dx/dy per particle j of PE k.
  const std::string n = std::to_string(particles);
  const std::string t = std::to_string(steps);
  std::string src = R"(HAI 1.2
OBTW
* 2D N-Body algorithm: propagate particles
* subject to Newtonian dynamics written in
* LOLCODE with parallel and other extensions.
TLDR

I HAS A little_time ITZ SRSLY A NUMBAR ...
  AN ITZ 0.001

I HAS A x ITZ SRSLY A NUMBAR
I HAS A y ITZ SRSLY A NUMBAR
I HAS A vx ITZ SRSLY A NUMBAR
I HAS A vy ITZ SRSLY A NUMBAR
I HAS A ax ITZ SRSLY A NUMBAR
I HAS A ay ITZ SRSLY A NUMBAR
I HAS A dx ITZ SRSLY A NUMBAR
I HAS A dy ITZ SRSLY A NUMBAR
I HAS A inv_d ITZ SRSLY A NUMBAR
I HAS A f ITZ SRSLY A NUMBAR

I HAS A vel_x ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ @N@
I HAS A vel_y ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ @N@
I HAS A tmppos_x ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ @N@
I HAS A tmppos_y ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ @N@

WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ @N@ AN IM SHARIN IT
WE HAS A pos_y ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ @N@ AN IM SHARIN IT

VISIBLE "HAI ITZ " ME " I HAS PARTICLZ 2 MUV"

HUGZ

IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN @N@
  pos_x'Z i R SUM OF ME AN WHATEVAR
  pos_y'Z i R SUM OF ME AN WHATEVAR
  vel_x'Z i R QUOSHUNT OF SUM OF ME ...
    AN WHATEVAR AN 1000
  vel_y'Z i R QUOSHUNT OF SUM OF ME ...
    AN WHATEVAR AN 1000
IM OUTTA YR loop

BTW sync initial positions before any PE reads a neighbor's
HUGZ

IM IN YR loop UPPIN YR time TIL BOTH SAEM ...
  time AN @T@

  IM IN YR loop UPPIN YR i TIL BOTH SAEM ...
    i AN @N@
    x R pos_x'Z i
    y R pos_y'Z i
    vx R vel_x'Z i
    vy R vel_y'Z i
    ax R 0
    ay R 0
    IM IN YR loop UPPIN YR j TIL ...
      BOTH SAEM j AN @N@
      DIFFRINT i AN j, O RLY?
      YA RLY,
        dx R DIFF OF pos_x'Z i AN pos_x'Z j
        dy R DIFF OF pos_y'Z i AN pos_y'Z j
        dx R PRODUKT OF dx AN dx
        dy R PRODUKT OF dy AN dy
        inv_d R FLIP OF UNSQUAR OF ...
          SUM OF dx AN dy
        f R PRODUKT OF inv_d AN ...
          SQUAR OF inv_d
        ax R SUM OF ax AN PRODUKT OF dx AN f
        ay R SUM OF ay AN PRODUKT OF dy AN f
      OIC
    IM OUTTA YR loop

    IM IN YR loop UPPIN YR k TIL ...
      BOTH SAEM k AN MAH FRENZ
      DIFFRINT k AN ME, O RLY?
        YA RLY,
          IM IN YR loop UPPIN YR j TIL ...
            BOTH SAEM j AN @N@
            TXT MAH BFF k AN STUFF,
              dx R DIFF OF pos_x'Z i AN ...
                UR pos_x'Z j
              dy R DIFF OF pos_y'Z i AN ...
                UR pos_y'Z j
            TTYL
            dx R PRODUKT OF dx AN dx
            dy R PRODUKT OF dy AN dy
            inv_d R FLIP OF UNSQUAR OF ...
              SUM OF dx AN dy
            f R PRODUKT OF inv_d AN ...
              SQUAR OF inv_d
            ax R SUM OF ax AN PRODUKT OF ...
              dx AN f
            ay R SUM OF ay AN PRODUKT OF ...
              dy AN f
          IM OUTTA YR loop
      OIC
    IM OUTTA YR loop

    x R SUM OF x AN SUM OF PRODUKT OF vx ...
      AN little_time AN PRODUKT OF 0.5 ...
      AN PRODUKT OF ax AN SQUAR OF ...
      little_time
    y R SUM OF y AN SUM OF PRODUKT OF vy ...
      AN little_time AN PRODUKT OF 0.5 ...
      AN PRODUKT OF ay AN SQUAR OF ...
      little_time

    vx R SUM OF vx AN PRODUKT OF ax AN ...
      little_time
    vy R SUM OF vy AN PRODUKT OF ay AN ...
      little_time

    tmppos_x'Z i R x
    tmppos_y'Z i R y
    vel_x'Z i R vx
    vel_y'Z i R vy
  IM OUTTA YR loop

  HUGZ

  IM IN YR loop UPPIN YR i TIL BOTH SAEM ...
    i AN @N@
    pos_x'Z i R tmppos_x'Z i
    pos_y'Z i R tmppos_y'Z i
  IM OUTTA YR loop

  HUGZ

IM OUTTA YR loop
)";
  // Note: the paper prints `", MAH PARTICLZ IZ:"`, but a trailing `:"` is
  // a LOLCODE escape for a literal quote, leaving the YARN unterminated;
  // we escape the colon (`::`) to keep the intended output.
  if (print_positions) {
    src += R"(VISIBLE "O HAI ITZ " ME ", MAH PARTICLZ IZ::"
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN @N@
  VISIBLE pos_x'Z i " " pos_y'Z i
IM OUTTA YR loop
)";
  }
  src += "\nKTHXBYE\n";

  // Substitute the parameters.
  auto replace_all = [](std::string s, const std::string& from,
                        const std::string& to) {
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
      s.replace(pos, from.size(), to);
      pos += to.size();
    }
    return s;
  };
  src = replace_all(std::move(src), "@N@", n);
  src = replace_all(std::move(src), "@T@", t);
  return src;
}

}  // namespace lol::paper

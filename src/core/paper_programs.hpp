// The paper's example programs (§VI), shipped as library resources so
// tests, examples and benches all exercise the exact published listings.
#pragma once

#include <string>

namespace lol::paper {

/// §VI.A — initialization and symmetric memory allocation: circular
/// whole-array transfer between neighbouring PEs.
std::string ring_listing();

/// §VI.B — parallel synchronization with implicit locks: lock-protected
/// remote update of a shared counter on PE `target` (default 0 per the
/// paper's fragment shape; the fragment uses PE k).
std::string lock_counter_listing(int iterations = 50);

/// §VI.C — barriers and message passing (the Figure-2 pattern):
/// `TXT MAH BFF k, UR b R MAH a` / `HUGZ` / `c R SUM OF a AN b`.
std::string barrier_sum_listing();

/// §VI.D — the complete parallel 2-D n-body listing, verbatim from the
/// paper (32 particles per PE, 10 time steps).
std::string nbody_listing();

/// §VI.D parameterized: same algorithm with configurable particle count
/// and step count (used by the scaling benches). `print_positions`
/// controls the final VISIBLE loop.
std::string nbody_program(int particles, int steps,
                          bool print_positions = false);

}  // namespace lol::paper

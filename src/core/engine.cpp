#include "core/engine.hpp"

#include <atomic>

#include "interp/interpreter.hpp"
#include "parse/parser.hpp"
#include "rt/exec_context.hpp"
#include "shmem/runtime.hpp"
#include "vm/vm.hpp"

namespace lol {

std::string RunResult::first_error() const {
  for (const auto& e : errors)
    if (!e.empty()) return e;
  return {};
}

double RunResult::max_sim_ns() const {
  double m = 0.0;
  for (double v : sim_ns) m = v > m ? v : m;
  return m;
}

CompiledProgram compile(std::string_view source) {
  CompiledProgram out;
  out.program = parse::parse_program(source);
  out.analysis = sema::analyze(out.program);
  return out;
}

RunResult run(const CompiledProgram& prog, const RunConfig& cfg) {
  shmem::Config scfg;
  scfg.n_pes = cfg.n_pes;
  scfg.heap_bytes = cfg.heap_bytes;
  scfg.n_locks = prog.analysis.lock_count;
  scfg.model = cfg.machine;
  shmem::Runtime runtime(scfg);

  rt::CaptureSink capture(cfg.n_pes);
  rt::OutputSink* sink = cfg.sink != nullptr ? cfg.sink : &capture;
  rt::VectorInput input(cfg.stdin_lines, cfg.n_pes);

  // Pre-compile once for the VM backend; shared read-only by all PEs.
  std::shared_ptr<const vm::Chunk> chunk;
  if (cfg.backend == Backend::kVm) {
    chunk = std::make_shared<const vm::Chunk>(
        vm::compile_program(prog.program, prog.analysis));
  }

  std::atomic<bool> step_limited{false};
  shmem::LaunchResult lr = runtime.launch([&](shmem::Pe& pe) {
    rt::ExecContext ctx(pe, cfg.seed, *sink, input, cfg.max_steps);
    try {
      switch (cfg.backend) {
        case Backend::kInterp:
          interp::run_pe(prog.program, prog.analysis, ctx);
          break;
        case Backend::kVm:
          vm::run_pe(*chunk, ctx);
          break;
      }
    } catch (const support::StepLimitError&) {
      step_limited.store(true, std::memory_order_relaxed);
      throw;  // the launch captures it as this PE's error and aborts peers
    }
  });

  RunResult result;
  result.ok = lr.ok;
  result.step_limited = step_limited.load(std::memory_order_relaxed);
  result.errors = std::move(lr.errors);
  result.sim_ns = std::move(lr.sim_ns);
  if (cfg.sink == nullptr) {
    result.pe_output = capture.take_out();
    result.pe_errout = capture.take_err();
  } else {
    result.pe_output.assign(static_cast<std::size_t>(cfg.n_pes), "");
    result.pe_errout.assign(static_cast<std::size_t>(cfg.n_pes), "");
  }
  return result;
}

RunResult run_source(std::string_view source, const RunConfig& cfg) {
  CompiledProgram prog = compile(source);
  return run(prog, cfg);
}

std::string_view version() { return "1.0.0"; }

}  // namespace lol

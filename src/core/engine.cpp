#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "codegen/jit_backend.hpp"
#include "codegen/native_backend.hpp"
#include "interp/interpreter.hpp"
#include "obs/metrics.hpp"
#include "opt/opt.hpp"
#include "parse/parser.hpp"
#include "replay/controller.hpp"
#include "rt/exec_context.hpp"
#include "shmem/executor.hpp"
#include "shmem/runtime.hpp"
#include "vm/compiler.hpp"
#include "vm/vm.hpp"

namespace lol {

namespace {

/// Engine-level counters, resolved once (cold path: once per run).
struct EngineMetrics {
  obs::CounterFamily& runs_by_backend;
  obs::Counter& step_limited;
  EngineMetrics()
      : runs_by_backend(obs::Registry::global().counter_family(
            "lol_engine_runs_total", "SPMD runs started, by backend",
            "backend")),
        step_limited(obs::Registry::global().counter(
            "lol_engine_step_limited_total",
            "Runs killed by the per-PE step budget")) {}
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kInterp: return "interp";
    case Backend::kVm: return "vm";
    case Backend::kNative: return "native";
    case Backend::kJit: return "jit";
  }
  return "vm";
}

std::optional<Backend> backend_from_name(std::string_view name) {
  if (name == "interp") return Backend::kInterp;
  if (name == "vm") return Backend::kVm;
  if (name == "native") return Backend::kNative;
  if (name == "jit") return Backend::kJit;
  return std::nullopt;
}

std::string RunResult::first_error() const {
  return support::first_root_error(errors);
}

double RunResult::max_sim_ns() const {
  double m = 0.0;
  for (double v : sim_ns) m = v > m ? v : m;
  return m;
}

CompiledProgram compile(std::string_view source, const CompileOptions& opts) {
  CompiledProgram out;
  out.options = opts;
  out.program = parse::parse_program(source);
  // Sema first, on the raw AST: invalid programs throw the same
  // diagnostic at every opt level, and the passes may assume validity.
  out.analysis = sema::analyze(out.program);
  if (opts.opt_level > 0) {
    opt::Options oo;
    oo.level = opts.opt_level;
    oo.unroll_max_trip = opts.unroll_max_trip;
    opt::optimize(out.program, oo);
    // Analysis borrows AST nodes the passes may have replaced.
    out.analysis = sema::analyze(out.program);
  }
  out.native_slot = std::make_shared<codegen::NativeSlot>();
  out.vm_slot = std::make_shared<vm::VmSlot>();
  out.jit_slot = std::make_shared<codegen::JitSlot>();
  return out;
}

std::size_t CompiledProgram::jit_code_bytes() const {
  if (jit_slot == nullptr) return 0;
  std::lock_guard<std::mutex> g(jit_slot->m);
  return jit_slot->prog != nullptr ? jit_slot->prog->code_bytes() : 0;
}

namespace {

/// Result shape for a run that failed before any PE started (pre-launch
/// abort, native build failure). Must not trust cfg.n_pes: the Runtime
/// constructor, which normally rejects bad values, is skipped on these
/// paths.
RunResult error_result(int n_pes, const std::string& message) {
  RunResult result;
  auto n = static_cast<std::size_t>(std::max(1, n_pes));
  result.errors.assign(n, "");
  result.errors[0] = message;
  result.pe_output.assign(n, "");
  result.pe_errout.assign(n, "");
  result.sim_ns.assign(n, 0.0);
  return result;
}

RunResult aborted_before_launch(int n_pes) {
  RunResult result = error_result(n_pes, "SPMD aborted before launch");
  result.aborted = true;
  return result;
}

}  // namespace

RunResult run(const CompiledProgram& prog, const RunConfig& cfg) {
  // Fast path for a cancel that lands while the job is still queued:
  // skip Runtime construction (arenas) entirely.
  if (cfg.abort != nullptr && cfg.abort->requested()) {
    return aborted_before_launch(cfg.n_pes);
  }
  engine_metrics().runs_by_backend.with(to_string(cfg.backend)).inc();
  const auto t_run0 = std::chrono::steady_clock::now();

  // Resolve the effective backend: kJit silently degrades to the
  // cc+dlopen portability tier when this host can't execute emitted
  // pages (non-x86-64, W^X-only kernel, LOL_JIT=0).
  Backend backend = cfg.backend;
  if (backend == Backend::kJit && !codegen::jit_available()) {
    backend = Backend::kNative;
  }

  // The native backend translates to C and invokes the host cc once per
  // distinct program (process-wide cache); build before the Runtime so a
  // missing compiler fails cheaply with a diagnostic instead of a throw.
  std::shared_ptr<const codegen::NativeProgram> native;
  if (backend == Backend::kNative) {
    std::string nerr;
    if (prog.native_slot != nullptr) {
      // Warm path: reuse this program's loaded object without re-emitting
      // C. The slot lock also serializes concurrent first builds from
      // service workers sharing one cached CompiledProgram.
      std::lock_guard<std::mutex> g(prog.native_slot->m);
      if (prog.native_slot->prog == nullptr) {
        prog.native_slot->prog = codegen::NativeProgram::get_or_build(
            prog.program, prog.analysis, &nerr);
      }
      native = prog.native_slot->prog;
    } else {
      native = codegen::NativeProgram::get_or_build(prog.program,
                                                    prog.analysis, &nerr);
    }
    if (native == nullptr) {
      return error_result(cfg.n_pes, "native backend: " + nerr);
    }
  }

  // Deterministic scheduling: build the controller before the Runtime so
  // a bad replay trace fails cheaply with a diagnostic.
  std::unique_ptr<replay::ScheduleController> ctrl;
  if (cfg.schedule == replay::ScheduleMode::kReplay) {
    if (cfg.replay_trace == nullptr) {
      return error_result(cfg.n_pes, "replay requested without a trace");
    }
    std::string terr;
    if (!cfg.replay_trace->matches(cfg.n_pes, cfg.seed, cfg.program_hash,
                                   &terr)) {
      return error_result(cfg.n_pes, "replay trace mismatch: " + terr);
    }
    ctrl = std::make_unique<replay::ScheduleController>(cfg.replay_trace);
  } else if (cfg.schedule != replay::ScheduleMode::kNone) {
    ctrl = std::make_unique<replay::ScheduleController>(
        cfg.schedule, cfg.n_pes, cfg.perturb_seed);
  }

  shmem::Config scfg;
  scfg.n_pes = cfg.n_pes;
  scfg.heap_bytes = cfg.heap_bytes;
  scfg.n_locks = prog.analysis.lock_count;
  scfg.model = cfg.machine;
  scfg.barrier_radix = cfg.barrier_radix;
  scfg.profile = cfg.profile;
  scfg.schedule = ctrl.get();
  if (cfg.fault.noc_spike()) {
    if (scfg.model == nullptr) {
      return error_result(cfg.n_pes,
                          "fault injection: noc=F needs a --machine model "
                          "whose latencies it can spike");
    }
    scfg.model = replay::make_spike_model(scfg.model, cfg.fault.noc_factor);
  }
  if (cfg.executor_impl != nullptr) {
    scfg.executor = cfg.executor_impl;
  } else if (cfg.executor != shmem::ExecutorKind::kThread) {
    scfg.executor = shmem::make_executor(cfg.executor, cfg.pes_per_thread);
    if (scfg.executor == nullptr) {
      return error_result(cfg.n_pes,
                          std::string("executor '") +
                              shmem::to_string(cfg.executor) +
                              "' is not available on this platform");
    }
  }
  shmem::Runtime runtime(scfg);

  rt::CaptureSink capture(cfg.n_pes);
  rt::OutputSink* sink = cfg.sink != nullptr ? cfg.sink : &capture;
  rt::VectorInput vec_input(cfg.stdin_lines, cfg.n_pes);
  rt::InputSource* input = cfg.input != nullptr ? cfg.input : &vec_input;
  std::optional<replay::FaultyInput> faulty_input;
  if (cfg.fault.input_fault()) {
    faulty_input.emplace(*input, cfg.fault.input_fail_after);
    input = &*faulty_input;
  }

  // Pre-compile once for the VM and JIT backends; shared read-only by
  // all PEs. The per-program slot memoizes the chunk across runs (warm
  // service jobs skip bytecode compilation entirely); its lock
  // serializes concurrent first builds from workers sharing one cached
  // program.
  std::shared_ptr<const vm::Chunk> chunk;
  if (backend == Backend::kVm || backend == Backend::kJit) {
    if (prog.vm_slot != nullptr) {
      std::lock_guard<std::mutex> g(prog.vm_slot->m);
      if (prog.vm_slot->chunk == nullptr) {
        prog.vm_slot->chunk = std::make_shared<const vm::Chunk>(
            vm::compile_program(prog.program, prog.analysis));
      }
      chunk = prog.vm_slot->chunk;
    } else {
      chunk = std::make_shared<const vm::Chunk>(
          vm::compile_program(prog.program, prog.analysis));
    }
  }

  // Lower the chunk to machine code for the JIT backend (per-program
  // memo over the process-wide single-flight code cache, mirroring the
  // native slot).
  std::shared_ptr<const codegen::JitProgram> jit;
  if (backend == Backend::kJit) {
    std::string jerr;
    if (prog.jit_slot != nullptr && !cfg.jit_spec.has_value()) {
      std::lock_guard<std::mutex> g(prog.jit_slot->m);
      if (prog.jit_slot->prog == nullptr) {
        prog.jit_slot->prog = codegen::JitProgram::get_or_build(chunk, &jerr);
      }
      jit = prog.jit_slot->prog;
    } else {
      // A per-run tier override skips the per-program memo: the global
      // cache keys on the flag, so both variants coexist.
      jit = codegen::JitProgram::get_or_build(chunk, &jerr, cfg.jit_spec);
    }
    if (jit == nullptr) {
      return error_result(cfg.n_pes, "jit backend: " + jerr);
    }
  }

  std::atomic<bool> step_limited{false};
  std::atomic<bool> pe_failed{false};
  AbortToken::Binding abort_binding(cfg.abort, runtime);
  shmem::LaunchResult lr;
  try {
    lr = runtime.launch([&](shmem::Pe& pe) {
    // launch() resets the runtime's abort flag; re-assert a request that
    // raced into the window between Binding construction and that reset
    // so an early deadline/cancel can never be lost.
    if (cfg.abort != nullptr && cfg.abort->requested()) pe.runtime().abort();
    rt::ExecContext ctx(pe, cfg.seed, *sink, *input, cfg.max_steps);
    if (cfg.fault.kill() && cfg.fault.kill_pe == pe.id()) {
      ctx.kill_at_step = cfg.fault.kill_step;
    }
    try {
      switch (backend) {
        case Backend::kInterp:
          interp::run_pe(prog.program, prog.analysis, ctx);
          break;
        case Backend::kVm:
          vm::run_pe(*chunk, ctx);
          break;
        case Backend::kNative:
          codegen::run_native_pe(native->entry(), ctx);
          break;
        case Backend::kJit:
          jit->run_pe(ctx);
          break;
      }
    } catch (const support::StepLimitError&) {
      step_limited.store(true, std::memory_order_relaxed);
      throw;  // the launch captures it as this PE's error and aborts peers
    } catch (const support::PeKilledError&) {
      pe_failed.store(true, std::memory_order_relaxed);
      throw;
    }
    });
  } catch (const std::exception& e) {
    // Launch-resource failure: fiber stacks under memory pressure
    // (support::RuntimeError) or raw std::system_error/bad_alloc from
    // thread spawns. No PE ran; report it like any other pre-launch
    // error instead of letting it escape to terminate a CLI or daemon.
    return error_result(cfg.n_pes, e.what());
  }

  RunResult result;
  result.ok = lr.ok;
  result.step_limited = step_limited.load(std::memory_order_relaxed);
  if (result.step_limited) engine_metrics().step_limited.inc();
  result.aborted = cfg.abort != nullptr && cfg.abort->requested();
  result.pe_failed = pe_failed.load(std::memory_order_relaxed);
  result.errors = std::move(lr.errors);
  result.sim_ns = std::move(lr.sim_ns);
  result.pe_profiles = std::move(lr.profiles);

  if (ctrl != nullptr) {
    if (cfg.schedule == replay::ScheduleMode::kReplay) {
      // Divergence: the controller flagged it, the trace did not fully
      // drain, or the per-PE RNG draw counts disagree with the footer.
      std::string why = ctrl->failure();
      if (why.empty() && result.ok) {
        if (ctrl->events_consumed() != cfg.replay_trace->schedule.size()) {
          why = "trace not fully consumed: " +
                std::to_string(ctrl->events_consumed()) + " of " +
                std::to_string(cfg.replay_trace->schedule.size()) +
                " events replayed";
        } else {
          for (std::size_t i = 0; i < result.pe_profiles.size() &&
                                  i < cfg.replay_trace->rng_draws.size();
               ++i) {
            if (result.pe_profiles[i].rng_draws !=
                cfg.replay_trace->rng_draws[i]) {
              why = "PE " + std::to_string(i) + " drew " +
                    std::to_string(result.pe_profiles[i].rng_draws) +
                    " WHATEVR values, trace recorded " +
                    std::to_string(cfg.replay_trace->rng_draws[i]);
              break;
            }
          }
        }
      }
      if (!why.empty()) {
        result.replay_diverged = true;
        result.ok = false;
        // Surface the divergence unless a PE already reported a real root
        // cause (collateral "SPMD aborted" deaths don't count).
        const std::string root = support::first_root_error(result.errors);
        if (!result.errors.empty() &&
            (root.empty() || root.find("SPMD aborted") != std::string::npos)) {
          result.errors[0] = "replay diverged: " + why;
        }
      }
    } else {
      // Record/perturb: package the handoff sequence as a trace.
      replay::Trace t;
      t.n_pes = cfg.n_pes;
      t.seed = cfg.seed;
      t.perturb_seed = cfg.perturb_seed;
      t.program_hash = cfg.program_hash;
      t.perturbed = cfg.schedule == replay::ScheduleMode::kPerturb;
      t.schedule = ctrl->recorded();
      t.rng_draws.reserve(result.pe_profiles.size());
      for (const auto& p : result.pe_profiles) t.rng_draws.push_back(p.rng_draws);
      result.schedule_trace = t.serialize();
      // A schedule deadlock diagnosed by the controller beats the generic
      // "SPMD aborted" messages the other PEs die with.
      if (!ctrl->failure().empty() && !result.errors.empty()) {
        const std::string root = support::first_root_error(result.errors);
        if (root.empty() || root.find("SPMD aborted") != std::string::npos) {
          result.errors[0] = ctrl->failure();
        }
      }
    }
  }
  // Everything before the first PE body — native/vm memo lookups,
  // runtime construction, executor claim — counts as the claim phase.
  result.claim_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t_run0)
          .count() -
      lr.exec_ms;
  if (result.claim_ms < 0.0) result.claim_ms = 0.0;
  result.exec_ms = lr.exec_ms;
  if (cfg.sink == nullptr) {
    result.pe_output = capture.take_out();
    result.pe_errout = capture.take_err();
  } else {
    result.pe_output.assign(static_cast<std::size_t>(cfg.n_pes), "");
    result.pe_errout.assign(static_cast<std::size_t>(cfg.n_pes), "");
  }
  return result;
}

RunResult run_source(std::string_view source, const RunConfig& cfg) {
  CompiledProgram prog = compile(source);
  return run(prog, cfg);
}

std::string_view version() { return "1.0.0"; }

}  // namespace lol

#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "codegen/native_backend.hpp"
#include "interp/interpreter.hpp"
#include "obs/metrics.hpp"
#include "parse/parser.hpp"
#include "rt/exec_context.hpp"
#include "shmem/executor.hpp"
#include "shmem/runtime.hpp"
#include "vm/compiler.hpp"
#include "vm/vm.hpp"

namespace lol {

namespace {

/// Engine-level counters, resolved once (cold path: once per run).
struct EngineMetrics {
  obs::CounterFamily& runs_by_backend;
  obs::Counter& step_limited;
  EngineMetrics()
      : runs_by_backend(obs::Registry::global().counter_family(
            "lol_engine_runs_total", "SPMD runs started, by backend",
            "backend")),
        step_limited(obs::Registry::global().counter(
            "lol_engine_step_limited_total",
            "Runs killed by the per-PE step budget")) {}
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kInterp: return "interp";
    case Backend::kVm: return "vm";
    case Backend::kNative: return "native";
  }
  return "vm";
}

std::optional<Backend> backend_from_name(std::string_view name) {
  if (name == "interp") return Backend::kInterp;
  if (name == "vm") return Backend::kVm;
  if (name == "native") return Backend::kNative;
  return std::nullopt;
}

std::string RunResult::first_error() const {
  return support::first_root_error(errors);
}

double RunResult::max_sim_ns() const {
  double m = 0.0;
  for (double v : sim_ns) m = v > m ? v : m;
  return m;
}

CompiledProgram compile(std::string_view source) {
  CompiledProgram out;
  out.program = parse::parse_program(source);
  out.analysis = sema::analyze(out.program);
  out.native_slot = std::make_shared<codegen::NativeSlot>();
  out.vm_slot = std::make_shared<vm::VmSlot>();
  return out;
}

namespace {

/// Result shape for a run that failed before any PE started (pre-launch
/// abort, native build failure). Must not trust cfg.n_pes: the Runtime
/// constructor, which normally rejects bad values, is skipped on these
/// paths.
RunResult error_result(int n_pes, const std::string& message) {
  RunResult result;
  auto n = static_cast<std::size_t>(std::max(1, n_pes));
  result.errors.assign(n, "");
  result.errors[0] = message;
  result.pe_output.assign(n, "");
  result.pe_errout.assign(n, "");
  result.sim_ns.assign(n, 0.0);
  return result;
}

RunResult aborted_before_launch(int n_pes) {
  RunResult result = error_result(n_pes, "SPMD aborted before launch");
  result.aborted = true;
  return result;
}

}  // namespace

RunResult run(const CompiledProgram& prog, const RunConfig& cfg) {
  // Fast path for a cancel that lands while the job is still queued:
  // skip Runtime construction (arenas) entirely.
  if (cfg.abort != nullptr && cfg.abort->requested()) {
    return aborted_before_launch(cfg.n_pes);
  }
  engine_metrics().runs_by_backend.with(to_string(cfg.backend)).inc();
  const auto t_run0 = std::chrono::steady_clock::now();

  // The native backend translates to C and invokes the host cc once per
  // distinct program (process-wide cache); build before the Runtime so a
  // missing compiler fails cheaply with a diagnostic instead of a throw.
  std::shared_ptr<const codegen::NativeProgram> native;
  if (cfg.backend == Backend::kNative) {
    std::string nerr;
    if (prog.native_slot != nullptr) {
      // Warm path: reuse this program's loaded object without re-emitting
      // C. The slot lock also serializes concurrent first builds from
      // service workers sharing one cached CompiledProgram.
      std::lock_guard<std::mutex> g(prog.native_slot->m);
      if (prog.native_slot->prog == nullptr) {
        prog.native_slot->prog = codegen::NativeProgram::get_or_build(
            prog.program, prog.analysis, &nerr);
      }
      native = prog.native_slot->prog;
    } else {
      native = codegen::NativeProgram::get_or_build(prog.program,
                                                    prog.analysis, &nerr);
    }
    if (native == nullptr) {
      return error_result(cfg.n_pes, "native backend: " + nerr);
    }
  }

  shmem::Config scfg;
  scfg.n_pes = cfg.n_pes;
  scfg.heap_bytes = cfg.heap_bytes;
  scfg.n_locks = prog.analysis.lock_count;
  scfg.model = cfg.machine;
  scfg.barrier_radix = cfg.barrier_radix;
  scfg.profile = cfg.profile;
  if (cfg.executor_impl != nullptr) {
    scfg.executor = cfg.executor_impl;
  } else if (cfg.executor != shmem::ExecutorKind::kThread) {
    scfg.executor = shmem::make_executor(cfg.executor, cfg.pes_per_thread);
    if (scfg.executor == nullptr) {
      return error_result(cfg.n_pes,
                          std::string("executor '") +
                              shmem::to_string(cfg.executor) +
                              "' is not available on this platform");
    }
  }
  shmem::Runtime runtime(scfg);

  rt::CaptureSink capture(cfg.n_pes);
  rt::OutputSink* sink = cfg.sink != nullptr ? cfg.sink : &capture;
  rt::VectorInput vec_input(cfg.stdin_lines, cfg.n_pes);
  rt::InputSource* input = cfg.input != nullptr ? cfg.input : &vec_input;

  // Pre-compile once for the VM backend; shared read-only by all PEs.
  // The per-program slot memoizes the chunk across runs (warm service
  // jobs skip bytecode compilation entirely); its lock serializes
  // concurrent first builds from workers sharing one cached program.
  std::shared_ptr<const vm::Chunk> chunk;
  if (cfg.backend == Backend::kVm) {
    if (prog.vm_slot != nullptr) {
      std::lock_guard<std::mutex> g(prog.vm_slot->m);
      if (prog.vm_slot->chunk == nullptr) {
        prog.vm_slot->chunk = std::make_shared<const vm::Chunk>(
            vm::compile_program(prog.program, prog.analysis));
      }
      chunk = prog.vm_slot->chunk;
    } else {
      chunk = std::make_shared<const vm::Chunk>(
          vm::compile_program(prog.program, prog.analysis));
    }
  }

  std::atomic<bool> step_limited{false};
  AbortToken::Binding abort_binding(cfg.abort, runtime);
  shmem::LaunchResult lr;
  try {
    lr = runtime.launch([&](shmem::Pe& pe) {
    // launch() resets the runtime's abort flag; re-assert a request that
    // raced into the window between Binding construction and that reset
    // so an early deadline/cancel can never be lost.
    if (cfg.abort != nullptr && cfg.abort->requested()) pe.runtime().abort();
    rt::ExecContext ctx(pe, cfg.seed, *sink, *input, cfg.max_steps);
    try {
      switch (cfg.backend) {
        case Backend::kInterp:
          interp::run_pe(prog.program, prog.analysis, ctx);
          break;
        case Backend::kVm:
          vm::run_pe(*chunk, ctx);
          break;
        case Backend::kNative:
          codegen::run_native_pe(native->entry(), ctx);
          break;
      }
    } catch (const support::StepLimitError&) {
      step_limited.store(true, std::memory_order_relaxed);
      throw;  // the launch captures it as this PE's error and aborts peers
    }
    });
  } catch (const std::exception& e) {
    // Launch-resource failure: fiber stacks under memory pressure
    // (support::RuntimeError) or raw std::system_error/bad_alloc from
    // thread spawns. No PE ran; report it like any other pre-launch
    // error instead of letting it escape to terminate a CLI or daemon.
    return error_result(cfg.n_pes, e.what());
  }

  RunResult result;
  result.ok = lr.ok;
  result.step_limited = step_limited.load(std::memory_order_relaxed);
  if (result.step_limited) engine_metrics().step_limited.inc();
  result.aborted = cfg.abort != nullptr && cfg.abort->requested();
  result.errors = std::move(lr.errors);
  result.sim_ns = std::move(lr.sim_ns);
  result.pe_profiles = std::move(lr.profiles);
  // Everything before the first PE body — native/vm memo lookups,
  // runtime construction, executor claim — counts as the claim phase.
  result.claim_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t_run0)
          .count() -
      lr.exec_ms;
  if (result.claim_ms < 0.0) result.claim_ms = 0.0;
  result.exec_ms = lr.exec_ms;
  if (cfg.sink == nullptr) {
    result.pe_output = capture.take_out();
    result.pe_errout = capture.take_err();
  } else {
    result.pe_output.assign(static_cast<std::size_t>(cfg.n_pes), "");
    result.pe_errout.assign(static_cast<std::size_t>(cfg.n_pes), "");
  }
  return result;
}

RunResult run_source(std::string_view source, const RunConfig& cfg) {
  CompiledProgram prog = compile(source);
  return run(prog, cfg);
}

std::string_view version() { return "1.0.0"; }

}  // namespace lol

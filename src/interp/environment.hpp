// Variable storage and lexical scoping for the interpreter.
//
// LOLCODE variables are dynamically typed; the paper's extensions add
// statically typed variables (ITZ SRSLY A), real arrays (LOTZ A), and
// symmetric PGAS objects (WE HAS A) that live in the shmem symmetric heap
// rather than in the environment.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/types.hpp"
#include "rt/objects.hpp"
#include "rt/value.hpp"
#include "support/error.hpp"

namespace lol::interp {

using rt::PrivateArray;
using rt::SymHandle;

/// One named variable.
struct Variable {
  rt::Value value;                          // private scalar payload
  std::optional<ast::TypeKind> static_type; // SRSLY static typing
  std::shared_ptr<PrivateArray> array;      // private array payload
  std::optional<SymHandle> sym;             // symmetric object

  [[nodiscard]] bool is_array() const {
    return array != nullptr || (sym && sym->is_array);
  }
};

/// A lexical scope. The global scope owns the program's IT; function
/// scopes own their own IT; loop/iteration scopes share their parent's.
class Env {
 public:
  /// Root (global or function) scope with its own IT.
  static Env make_root() { return Env(nullptr, /*own_it=*/true); }

  /// Child scope (loop body, iteration) sharing the parent's IT.
  static Env make_child(Env& parent) {
    return Env(&parent, /*own_it=*/false);
  }

  /// Function scope: sees `globals` for lookups but has a fresh IT.
  static Env make_function(Env& globals) {
    return Env(&globals, /*own_it=*/true);
  }

  /// Finds a variable, walking the parent chain. Returns nullptr when the
  /// name is not bound anywhere.
  Variable* find(const std::string& name) {
    for (Env* e = this; e != nullptr; e = e->parent_) {
      auto it = e->vars_.find(name);
      if (it != e->vars_.end()) return &it->second;
    }
    return nullptr;
  }

  /// Declares a variable in this scope. Redeclaring a name that already
  /// exists *in this same scope* is an error (matching lci).
  Variable& declare(const std::string& name, support::SourceLoc loc = {}) {
    auto [it, inserted] = vars_.emplace(name, Variable{});
    if (!inserted) {
      throw support::RuntimeError("variable '" + name +
                                      "' is already declared in this scope",
                                  loc);
    }
    return it->second;
  }

  /// The IT slot this scope uses (own or inherited).
  rt::Value& it() { return *it_slot_; }

 private:
  Env(Env* parent, bool own_it) : parent_(parent) {
    it_slot_ = own_it ? &own_it_ : &parent_->it();
  }

  Env* parent_;
  std::unordered_map<std::string, Variable> vars_;
  rt::Value own_it_;
  rt::Value* it_slot_;
};

}  // namespace lol::interp

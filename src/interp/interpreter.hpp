// The tree-walking interpreter: the reference executor for parallel
// LOLCODE. One Interpreter instance runs one PE; the SPMD launch runs one
// instance per PE over the shared shmem runtime.
#pragma once

#include "ast/ast.hpp"
#include "interp/environment.hpp"
#include "rt/exec_context.hpp"
#include "sema/analyzer.hpp"

namespace lol::interp {

class Interpreter {
 public:
  /// `program` and `analysis` must outlive the interpreter; `ctx` is the
  /// executing PE's service bundle.
  Interpreter(const ast::Program& program, const sema::Analysis& analysis,
              rt::ExecContext& ctx);

  /// Executes the program body on this PE. Throws support::RuntimeError
  /// on semantic errors at run time.
  void run();

 private:
  enum class Flow { kNormal, kBreak, kReturn };

  Flow exec_block(const ast::StmtList& body, Env& env);
  Flow exec_stmt(const ast::Stmt& s, Env& env);
  void exec_decl(const ast::VarDeclStmt& d, Env& env);
  Flow exec_orly(const ast::ORlyStmt& s, Env& env);
  Flow exec_wtf(const ast::WtfStmt& s, Env& env);
  Flow exec_loop(const ast::LoopStmt& s, Env& env);
  void exec_lock(const ast::LockStmt& s, Env& env);
  Flow exec_txt(const ast::TxtStmt& s, Env& env);

  rt::Value eval(const ast::Expr& e, Env& env);
  rt::Value eval_yarn(const ast::YarnLit& y, Env& env);
  rt::Value call_function(const std::string& name,
                          std::vector<rt::Value> args,
                          support::SourceLoc loc);

  /// Resolves a VarRef/SrsRef to the underlying variable + the effective
  /// locality qualifier.
  std::pair<Variable*, ast::Locality> resolve_base(const ast::Expr& e,
                                                   Env& env);

  /// Reads a variable-shaped expression (VarRef/SrsRef/IndexExpr/ItRef).
  rt::Value read_place(const ast::Expr& e, Env& env);

  /// Assigns to a variable-shaped expression.
  void assign_place(const ast::Expr& target, rt::Value v, Env& env);

  /// Whole-array copy (`MAH array R UR array`): bulk symmetric transfer
  /// when types match, element-wise with casts otherwise.
  void copy_array(const ast::AssignStmt& a, Variable& dst,
                  ast::Locality dst_loc, Variable& src,
                  ast::Locality src_loc, Env& env);

  // Symmetric-scalar/element accessors; `target_pe` < 0 means local.
  rt::Value sym_read(const SymHandle& h, std::size_t idx, int target_pe);
  void sym_write(const SymHandle& h, std::size_t idx, int target_pe,
                 const rt::Value& v, support::SourceLoc loc);

  /// Current TXT MAH BFF target; throws when no predication is active.
  int current_bff(support::SourceLoc loc) const;

  /// Bounds-checks an index against an array.
  static std::size_t check_index(const rt::Value& idx, std::size_t count,
                                 support::SourceLoc loc);

  const ast::Program& prog_;
  const sema::Analysis& analysis_;
  rt::ExecContext& ctx_;
  Env globals_ = Env::make_root();
  std::vector<int> bff_stack_;
  int call_depth_ = 0;
  rt::Value return_value_;

  // The tree-walking interpreter recurses on the host stack, so the
  // guard must leave headroom below the real stack size. Sanitizer
  // instrumentation grows frames several-fold; shrink accordingly so
  // runaway recursion still dies with a clean diagnostic, not SIGSEGV.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  static constexpr int kMaxCallDepth = 250;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  static constexpr int kMaxCallDepth = 250;
#else
  static constexpr int kMaxCallDepth = 2000;
#endif
#else
  static constexpr int kMaxCallDepth = 2000;
#endif
};

/// Convenience: run `program` for one PE (used by the SPMD launcher).
void run_pe(const ast::Program& program, const sema::Analysis& analysis,
            rt::ExecContext& ctx);

}  // namespace lol::interp

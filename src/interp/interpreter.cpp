#include "interp/interpreter.hpp"

#include <cstring>

#include "rt/ops.hpp"

namespace lol::interp {

using rt::Value;
using support::RuntimeError;

Interpreter::Interpreter(const ast::Program& program,
                         const sema::Analysis& analysis,
                         rt::ExecContext& ctx)
    : prog_(program), analysis_(analysis), ctx_(ctx) {}

void Interpreter::run() {
  Flow f = exec_block(prog_.body, globals_);
  (void)f;  // sema guarantees no stray GTFO/FOUND YR at the top level
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Interpreter::Flow Interpreter::exec_block(const ast::StmtList& body,
                                          Env& env) {
  for (const auto& s : body) {
    Flow f = exec_stmt(*s, env);
    if (f != Flow::kNormal) return f;
  }
  return Flow::kNormal;
}

Interpreter::Flow Interpreter::exec_stmt(const ast::Stmt& s, Env& env) {
  ctx_.count_step();
  switch (s.kind) {
    case ast::StmtKind::kVarDecl:
      exec_decl(static_cast<const ast::VarDeclStmt&>(s), env);
      return Flow::kNormal;
    case ast::StmtKind::kAssign: {
      const auto& a = static_cast<const ast::AssignStmt&>(s);
      // Whole-array copy (`MAH array R UR array`, paper §VI.A) when both
      // sides are unindexed array references.
      if ((a.target->kind == ast::ExprKind::kVarRef ||
           a.target->kind == ast::ExprKind::kSrsRef) &&
          (a.value->kind == ast::ExprKind::kVarRef ||
           a.value->kind == ast::ExprKind::kSrsRef)) {
        auto [dst_var, dst_loc] = resolve_base(*a.target, env);
        auto [src_var, src_loc] = resolve_base(*a.value, env);
        if (dst_var->is_array() && src_var->is_array()) {
          copy_array(a, *dst_var, dst_loc, *src_var, src_loc, env);
          return Flow::kNormal;
        }
      }
      assign_place(*a.target, eval(*a.value, env), env);
      return Flow::kNormal;
    }
    case ast::StmtKind::kExpr:
      env.it() = eval(*static_cast<const ast::ExprStmt&>(s).expr, env);
      return Flow::kNormal;
    case ast::StmtKind::kVisible: {
      const auto& v = static_cast<const ast::VisibleStmt&>(s);
      std::string text;
      for (const auto& a : v.args) text += eval(*a, env).to_yarn();
      if (v.newline) text += '\n';
      if (v.to_stderr) {
        ctx_.out->write_err(ctx_.pe->id(), text);
      } else {
        ctx_.out->write(ctx_.pe->id(), text);
      }
      return Flow::kNormal;
    }
    case ast::StmtKind::kGimmeh: {
      const auto& g = static_cast<const ast::GimmehStmt&>(s);
      auto line = ctx_.read_line();
      assign_place(*g.target, Value::yarn(line.value_or("")), env);
      return Flow::kNormal;
    }
    case ast::StmtKind::kCastTo: {
      const auto& c = static_cast<const ast::CastToStmt&>(s);
      Value cur = read_place(*c.target, env);
      assign_place(*c.target, cur.cast_to(c.type, /*explicit_cast=*/true),
                   env);
      return Flow::kNormal;
    }
    case ast::StmtKind::kORly:
      return exec_orly(static_cast<const ast::ORlyStmt&>(s), env);
    case ast::StmtKind::kWtf:
      return exec_wtf(static_cast<const ast::WtfStmt&>(s), env);
    case ast::StmtKind::kLoop:
      return exec_loop(static_cast<const ast::LoopStmt&>(s), env);
    case ast::StmtKind::kGtfo:
      return Flow::kBreak;
    case ast::StmtKind::kFoundYr: {
      const auto& f = static_cast<const ast::FoundYrStmt&>(s);
      return_value_ = eval(*f.value, env);
      return Flow::kReturn;
    }
    case ast::StmtKind::kFuncDef:
      return Flow::kNormal;  // registered by sema; nothing to execute
    case ast::StmtKind::kCanHas:
      return Flow::kNormal;  // all libraries are built in
    case ast::StmtKind::kHugz:
      ctx_.pe->barrier_all();
      return Flow::kNormal;
    case ast::StmtKind::kLock:
      exec_lock(static_cast<const ast::LockStmt&>(s), env);
      return Flow::kNormal;
    case ast::StmtKind::kTxt:
      return exec_txt(static_cast<const ast::TxtStmt&>(s), env);
  }
  throw RuntimeError("internal: unhandled statement kind", s.loc);
}

void Interpreter::exec_decl(const ast::VarDeclStmt& d, Env& env) {
  Variable& var = env.declare(d.name, d.loc);

  if (d.scope == ast::DeclScope::kSymmetric) {
    const sema::SymInfo* info = analysis_.sym_for_decl(&d);
    if (info == nullptr) {
      throw RuntimeError("internal: symmetric declaration missing from sema",
                         d.loc);
    }
    SymHandle h;
    h.slot = info->slot;
    h.elem = d.declared_type.value_or(ast::TypeKind::kNumbr);
    h.is_array = d.is_array;
    h.count = 1;
    if (d.is_array) {
      Value n = eval(*d.array_size, env);
      std::int64_t count = n.to_numbr();
      if (count <= 0) {
        throw RuntimeError("array size must be positive, got " +
                               std::to_string(count),
                           d.loc);
      }
      h.count = static_cast<std::size_t>(count);
    }
    h.lock_id = info->lock_id;
    h.offset = ctx_.pe->shmalloc(h.count * 8);
    var.sym = h;
    var.static_type = h.elem;
    if (d.init) {
      Value v = eval(*d.init, env);
      sym_write(h, 0, /*target_pe=*/-1, v, d.loc);
    }
    return;
  }

  if (d.is_array) {
    Value n = eval(*d.array_size, env);
    std::int64_t count = n.to_numbr();
    if (count <= 0) {
      throw RuntimeError(
          "array size must be positive, got " + std::to_string(count), d.loc);
    }
    auto arr = std::make_shared<PrivateArray>();
    arr->elem = d.declared_type.value_or(ast::TypeKind::kNumbr);
    arr->srsly = d.srsly;
    arr->elems.assign(static_cast<std::size_t>(count),
                      Value::zero_of(arr->elem));
    var.array = std::move(arr);
    return;
  }

  if (d.srsly && d.declared_type) var.static_type = *d.declared_type;
  if (d.init) {
    Value v = eval(*d.init, env);
    if (var.static_type) v = v.cast_to(*var.static_type, false);
    var.value = std::move(v);
  } else if (d.declared_type) {
    var.value = Value::zero_of(*d.declared_type);
  } else {
    var.value = Value::noob();
  }
}

Interpreter::Flow Interpreter::exec_orly(const ast::ORlyStmt& s, Env& env) {
  if (env.it().to_troof()) {
    Env scope = Env::make_child(env);
    return exec_block(s.ya_rly, scope);
  }
  for (const auto& [cond, body] : s.mebbe) {
    Value c = eval(*cond, env);
    env.it() = c;
    if (c.to_troof()) {
      Env scope = Env::make_child(env);
      return exec_block(body, scope);
    }
  }
  Env scope = Env::make_child(env);
  return exec_block(s.no_wai, scope);
}

Interpreter::Flow Interpreter::exec_wtf(const ast::WtfStmt& s, Env& env) {
  Value subject = env.it();
  std::size_t start = s.cases.size();
  for (std::size_t i = 0; i < s.cases.size(); ++i) {
    if (Value::saem(subject, eval(*s.cases[i].literal, env))) {
      start = i;
      break;
    }
  }
  bool run_default = s.has_default;
  // C-style fallthrough from the matching case; GTFO breaks out.
  for (std::size_t i = start; i < s.cases.size(); ++i) {
    Env scope = Env::make_child(env);
    Flow f = exec_block(s.cases[i].body, scope);
    if (f == Flow::kBreak) return Flow::kNormal;
    if (f == Flow::kReturn) return f;
  }
  if (start == s.cases.size() && !run_default) return Flow::kNormal;
  if (run_default) {
    Env scope = Env::make_child(env);
    Flow f = exec_block(s.default_body, scope);
    if (f == Flow::kBreak) return Flow::kNormal;
    if (f == Flow::kReturn) return f;
  }
  return Flow::kNormal;
}

Interpreter::Flow Interpreter::exec_loop(const ast::LoopStmt& s, Env& env) {
  Env loop_scope = Env::make_child(env);
  Variable* counter = nullptr;
  if (s.update != ast::LoopUpdate::kNone) {
    counter = &loop_scope.declare(s.var, s.loc);
    counter->value = Value::numbr(0);
  }
  while (true) {
    // Charge every iteration so a condition-only (or empty-body) spin
    // still consumes budget.
    ctx_.count_step();
    if (s.cond_kind == ast::LoopCond::kTil) {
      if (eval(*s.cond, loop_scope).to_troof()) break;
    } else if (s.cond_kind == ast::LoopCond::kWile) {
      if (!eval(*s.cond, loop_scope).to_troof()) break;
    }
    Env iter_scope = Env::make_child(loop_scope);
    Flow f = exec_block(s.body, iter_scope);
    if (f == Flow::kBreak) return Flow::kNormal;
    if (f == Flow::kReturn) return f;
    if (counter != nullptr) {
      switch (s.update) {
        case ast::LoopUpdate::kUppin:
          counter->value =
              rt::op_binary(ast::BinOp::kSum, counter->value, Value::numbr(1));
          break;
        case ast::LoopUpdate::kNerfin:
          counter->value = rt::op_binary(ast::BinOp::kDiff, counter->value,
                                         Value::numbr(1));
          break;
        case ast::LoopUpdate::kFunc:
          counter->value = call_function(s.func, {counter->value}, s.loc);
          break;
        case ast::LoopUpdate::kNone:
          break;
      }
    }
  }
  return Flow::kNormal;
}

void Interpreter::exec_lock(const ast::LockStmt& s, Env& env) {
  auto [var, locality] = resolve_base(*s.target, env);
  (void)locality;  // the lock is global: UR x and MAH x name the same lock
  if (!var->sym || var->sym->lock_id < 0) {
    throw RuntimeError(
        "variable has no lock: declare it WE HAS A ... AN IM SHARIN IT",
        s.loc);
  }
  int id = var->sym->lock_id;
  switch (s.op) {
    case ast::LockOp::kAcquire:
      ctx_.pe->set_lock(id);
      env.it() = Value::troof(true);
      return;
    case ast::LockOp::kTry:
      env.it() = Value::troof(ctx_.pe->test_lock(id));
      return;
    case ast::LockOp::kRelease:
      ctx_.pe->clear_lock(id);
      return;
  }
}

Interpreter::Flow Interpreter::exec_txt(const ast::TxtStmt& s, Env& env) {
  Value target = eval(*s.target_pe, env);
  std::int64_t pe = target.to_numbr();
  if (pe < 0 || pe >= ctx_.pe->n_pes()) {
    throw RuntimeError("TXT MAH BFF " + std::to_string(pe) +
                           ": no such PE (MAH FRENZ = " +
                           std::to_string(ctx_.pe->n_pes()) + ")",
                       s.loc);
  }
  bff_stack_.push_back(static_cast<int>(pe));
  struct Pop {
    std::vector<int>* v;
    ~Pop() { v->pop_back(); }
  } pop{&bff_stack_};
  Env scope = Env::make_child(env);
  return exec_block(s.body, scope);
}

int Interpreter::current_bff(support::SourceLoc loc) const {
  if (bff_stack_.empty()) {
    throw RuntimeError(
        "UR reference outside TXT MAH BFF predication: no remote PE is "
        "selected",
        loc);
  }
  return bff_stack_.back();
}

// ---------------------------------------------------------------------------
// Places (variables, array elements, symmetric objects)
// ---------------------------------------------------------------------------

std::pair<Variable*, ast::Locality> Interpreter::resolve_base(
    const ast::Expr& e, Env& env) {
  if (e.kind == ast::ExprKind::kVarRef) {
    const auto& v = static_cast<const ast::VarRef&>(e);
    Variable* var = env.find(v.name);
    if (var == nullptr) {
      throw RuntimeError("variable '" + v.name + "' has not been declared",
                         v.loc);
    }
    return {var, v.locality};
  }
  if (e.kind == ast::ExprKind::kSrsRef) {
    const auto& v = static_cast<const ast::SrsRef&>(e);
    std::string name = eval(*v.name_expr, env).to_yarn();
    Variable* var = env.find(name);
    if (var == nullptr) {
      throw RuntimeError("SRS: variable '" + name + "' has not been declared",
                         v.loc);
    }
    return {var, v.locality};
  }
  throw RuntimeError("expected a variable reference", e.loc);
}

std::size_t Interpreter::check_index(const Value& idx, std::size_t count,
                                     support::SourceLoc loc) {
  std::int64_t i = idx.to_numbr();
  if (i < 0 || static_cast<std::size_t>(i) >= count) {
    throw RuntimeError("array index " + std::to_string(i) +
                           " out of bounds [0, " + std::to_string(count) +
                           ")",
                       loc);
  }
  return static_cast<std::size_t>(i);
}

Value Interpreter::sym_read(const SymHandle& h, std::size_t idx,
                            int target_pe) {
  return rt::sym_read(*ctx_.pe, h, idx, target_pe);
}

void Interpreter::sym_write(const SymHandle& h, std::size_t idx,
                            int target_pe, const Value& v,
                            support::SourceLoc loc) {
  try {
    rt::sym_write(*ctx_.pe, h, idx, target_pe, v);
  } catch (const RuntimeError& e) {
    throw RuntimeError(e.raw_message(), loc);
  }
}

Value Interpreter::read_place(const ast::Expr& e, Env& env) {
  switch (e.kind) {
    case ast::ExprKind::kItRef:
      return env.it();
    case ast::ExprKind::kVarRef:
    case ast::ExprKind::kSrsRef: {
      auto [var, locality] = resolve_base(e, env);
      if (var->is_array()) {
        throw RuntimeError(
            "cannot read an array as a value; index it with 'Z", e.loc);
      }
      if (var->sym) {
        int target = locality == ast::Locality::kRemote
                         ? current_bff(e.loc)
                         : -1;
        return sym_read(*var->sym, 0, target);
      }
      if (locality == ast::Locality::kRemote) {
        throw RuntimeError(
            "UR requires a symmetric variable (declare it with WE HAS A)",
            e.loc);
      }
      return var->value;
    }
    case ast::ExprKind::kIndex: {
      const auto& ix = static_cast<const ast::IndexExpr&>(e);
      auto [var, locality] = resolve_base(*ix.base, env);
      Value idx = eval(*ix.index, env);
      if (var->sym && var->sym->is_array) {
        std::size_t i = check_index(idx, var->sym->count, e.loc);
        int target = locality == ast::Locality::kRemote
                         ? current_bff(e.loc)
                         : -1;
        return sym_read(*var->sym, i, target);
      }
      if (var->array) {
        if (locality == ast::Locality::kRemote) {
          throw RuntimeError(
              "UR requires a symmetric array (declare it with WE HAS A)",
              e.loc);
        }
        std::size_t i = check_index(idx, var->array->elems.size(), e.loc);
        return var->array->elems[i];
      }
      throw RuntimeError("'Z index applied to a non-array variable", e.loc);
    }
    default:
      throw RuntimeError("expected a variable reference", e.loc);
  }
}

void Interpreter::assign_place(const ast::Expr& target, Value v, Env& env) {
  switch (target.kind) {
    case ast::ExprKind::kItRef:
      env.it() = std::move(v);
      return;
    case ast::ExprKind::kVarRef:
    case ast::ExprKind::kSrsRef: {
      auto [var, locality] = resolve_base(target, env);
      if (var->is_array()) {
        throw RuntimeError(
            "cannot assign a scalar to an array; index it with 'Z",
            target.loc);
      }
      if (var->sym) {
        int target_pe = locality == ast::Locality::kRemote
                            ? current_bff(target.loc)
                            : -1;
        sym_write(*var->sym, 0, target_pe, v, target.loc);
        return;
      }
      if (locality == ast::Locality::kRemote) {
        throw RuntimeError(
            "UR requires a symmetric variable (declare it with WE HAS A)",
            target.loc);
      }
      if (var->static_type) v = v.cast_to(*var->static_type, false);
      var->value = std::move(v);
      return;
    }
    case ast::ExprKind::kIndex: {
      const auto& ix = static_cast<const ast::IndexExpr&>(target);
      auto [var, locality] = resolve_base(*ix.base, env);
      Value idx = eval(*ix.index, env);
      if (var->sym && var->sym->is_array) {
        std::size_t i = check_index(idx, var->sym->count, target.loc);
        int target_pe = locality == ast::Locality::kRemote
                            ? current_bff(target.loc)
                            : -1;
        sym_write(*var->sym, i, target_pe, v, target.loc);
        return;
      }
      if (var->array) {
        if (locality == ast::Locality::kRemote) {
          throw RuntimeError(
              "UR requires a symmetric array (declare it with WE HAS A)",
              target.loc);
        }
        std::size_t i = check_index(idx, var->array->elems.size(),
                                    target.loc);
        if (var->array->srsly) v = v.cast_to(var->array->elem, false);
        var->array->elems[i] = std::move(v);
        return;
      }
      throw RuntimeError("'Z index applied to a non-array variable",
                         target.loc);
    }
    default:
      throw RuntimeError("invalid assignment target", target.loc);
  }
}

void Interpreter::copy_array(const ast::AssignStmt& a, Variable& dst,
                             ast::Locality dst_loc, Variable& src,
                             ast::Locality src_loc, Env& env) {
  (void)env;
  if (dst_loc == ast::Locality::kRemote && !dst.sym) {
    throw RuntimeError("UR requires a symmetric array", a.loc);
  }
  if (src_loc == ast::Locality::kRemote && !src.sym) {
    throw RuntimeError("UR requires a symmetric array", a.loc);
  }
  rt::ArrayLike d{dst.array.get(), dst.sym ? &*dst.sym : nullptr};
  rt::ArrayLike s{src.array.get(), src.sym ? &*src.sym : nullptr};
  int dst_pe = dst_loc == ast::Locality::kRemote ? current_bff(a.loc) : -1;
  int src_pe = src_loc == ast::Locality::kRemote ? current_bff(a.loc) : -1;
  rt::copy_arrays(*ctx_.pe, d, dst_pe, s, src_pe, a.loc);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value Interpreter::eval_yarn(const ast::YarnLit& y, Env& env) {
  std::string out;
  for (const auto& seg : y.segments) {
    if (!seg.is_var) {
      out += seg.text;
      continue;
    }
    Variable* var = env.find(seg.text);
    if (var == nullptr) {
      throw RuntimeError(
          ":{" + seg.text + "}: variable has not been declared", y.loc);
    }
    if (var->is_array()) {
      throw RuntimeError(":{" + seg.text + "}: cannot interpolate an array",
                         y.loc);
    }
    out += var->sym ? sym_read(*var->sym, 0, -1).to_yarn()
                    : var->value.to_yarn();
  }
  return Value::yarn(std::move(out));
}

Value Interpreter::call_function(const std::string& name,
                                 std::vector<Value> args,
                                 support::SourceLoc loc) {
  auto it = analysis_.functions.find(name);
  if (it == analysis_.functions.end()) {
    throw RuntimeError("call to unknown function '" + name + "'", loc);
  }
  const ast::FuncDefStmt& def = *it->second.def;
  if (def.params.size() != args.size()) {
    throw RuntimeError("function '" + name + "' takes " +
                           std::to_string(def.params.size()) +
                           " argument(s), got " + std::to_string(args.size()),
                       loc);
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw RuntimeError("call depth exceeded (" +
                           std::to_string(kMaxCallDepth) +
                           "): runaway recursion?",
                       loc);
  }
  Env frame = Env::make_function(globals_);
  for (std::size_t i = 0; i < args.size(); ++i) {
    frame.declare(def.params[i], loc).value = std::move(args[i]);
  }
  Flow f = exec_block(def.body, frame);
  --call_depth_;
  if (f == Flow::kReturn) return std::move(return_value_);
  if (f == Flow::kBreak) return Value::noob();  // GTFO returns NOOB
  return frame.it();  // falling off the end returns the function's IT
}

Value Interpreter::eval(const ast::Expr& e, Env& env) {
  switch (e.kind) {
    case ast::ExprKind::kNumbrLit:
      return Value::numbr(static_cast<const ast::NumbrLit&>(e).value);
    case ast::ExprKind::kNumbarLit:
      return Value::numbar(static_cast<const ast::NumbarLit&>(e).value);
    case ast::ExprKind::kTroofLit:
      return Value::troof(static_cast<const ast::TroofLit&>(e).value);
    case ast::ExprKind::kNoobLit:
      return Value::noob();
    case ast::ExprKind::kYarnLit:
      return eval_yarn(static_cast<const ast::YarnLit&>(e), env);
    case ast::ExprKind::kVarRef:
    case ast::ExprKind::kSrsRef:
    case ast::ExprKind::kIndex:
    case ast::ExprKind::kItRef:
      return read_place(e, env);
    case ast::ExprKind::kMe:
      return Value::numbr(ctx_.pe->id());
    case ast::ExprKind::kMahFrenz:
      return Value::numbr(ctx_.pe->n_pes());
    case ast::ExprKind::kWhatevr:
      return Value::numbr(ctx_.rng_numbr());
    case ast::ExprKind::kWhatevar:
      return Value::numbar(ctx_.rng_numbar());
    case ast::ExprKind::kBinary: {
      const auto& b = static_cast<const ast::BinaryExpr&>(e);
      Value lhs = eval(*b.lhs, env);
      Value rhs = eval(*b.rhs, env);
      try {
        return rt::op_binary(b.op, lhs, rhs);
      } catch (const RuntimeError& err) {
        throw RuntimeError(err.raw_message(), e.loc);
      }
    }
    case ast::ExprKind::kNary: {
      const auto& n = static_cast<const ast::NaryExpr&>(e);
      std::vector<Value> ops;
      ops.reserve(n.operands.size());
      for (const auto& o : n.operands) ops.push_back(eval(*o, env));
      try {
        return rt::op_nary(n.op, ops);
      } catch (const RuntimeError& err) {
        throw RuntimeError(err.raw_message(), e.loc);
      }
    }
    case ast::ExprKind::kUnary: {
      const auto& u = static_cast<const ast::UnaryExpr&>(e);
      Value v = eval(*u.operand, env);
      try {
        return rt::op_unary(u.op, v);
      } catch (const RuntimeError& err) {
        throw RuntimeError(err.raw_message(), e.loc);
      }
    }
    case ast::ExprKind::kCast: {
      const auto& c = static_cast<const ast::CastExpr&>(e);
      Value v = eval(*c.value, env);
      try {
        return v.cast_to(c.type, /*explicit_cast=*/true);
      } catch (const RuntimeError& err) {
        throw RuntimeError(err.raw_message(), e.loc);
      }
    }
    case ast::ExprKind::kCall: {
      const auto& c = static_cast<const ast::CallExpr&>(e);
      std::vector<Value> args;
      args.reserve(c.args.size());
      for (const auto& a : c.args) args.push_back(eval(*a, env));
      return call_function(c.callee, std::move(args), c.loc);
    }
  }
  throw RuntimeError("internal: unhandled expression kind", e.loc);
}

void run_pe(const ast::Program& program, const sema::Analysis& analysis,
            rt::ExecContext& ctx) {
  Interpreter(program, analysis, ctx).run();
}

}  // namespace lol::interp

#include "parse/parser.hpp"

#include <algorithm>

namespace lol::parse {

using ast::ExprPtr;
using ast::StmtList;
using ast::StmtPtr;
using lex::Keyword;
using lex::TokKind;
using support::ParseError;

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

const lex::Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
  return toks_[i];
}

const lex::Token& Parser::advance() {
  const lex::Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::check(TokKind k) const { return peek().kind == k; }

bool Parser::check_kw(Keyword k) const { return peek().is_keyword(k); }

bool Parser::match(TokKind k) {
  if (!check(k)) return false;
  advance();
  return true;
}

bool Parser::match_kw(Keyword k) {
  if (!check_kw(k)) return false;
  advance();
  return true;
}

const lex::Token& Parser::expect(TokKind k, const char* what) {
  if (!check(k)) {
    fail(std::string("expected ") + what + ", found " + peek().describe());
  }
  return advance();
}

const lex::Token& Parser::expect_kw(Keyword k) {
  if (!check_kw(k)) {
    fail("expected '" + std::string(lex::keyword_spelling(k)) + "', found " +
         peek().describe());
  }
  return advance();
}

void Parser::skip_newlines() {
  while (check(TokKind::kNewline)) advance();
}

void Parser::expect_end_of_statement() {
  if (check(TokKind::kEof)) return;
  if (!check(TokKind::kNewline)) {
    fail("expected end of statement, found " + peek().describe());
  }
  skip_newlines();
}

void Parser::fail(const std::string& msg) const {
  throw ParseError(msg, peek().loc);
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

ast::Program Parser::parse_program() {
  ast::Program prog;
  skip_newlines();
  expect_kw(Keyword::kHai);
  if (check(TokKind::kNumbar)) {
    prog.version = advance().numbar;
  } else if (check(TokKind::kNumbr)) {
    prog.version = static_cast<double>(advance().numbr);
  }
  expect_end_of_statement();
  prog.body = parse_body({Keyword::kKthxbye});
  expect_kw(Keyword::kKthxbye);
  skip_newlines();
  if (!check(TokKind::kEof)) {
    fail("unexpected content after KTHXBYE: " + peek().describe());
  }
  return prog;
}

ast::ExprPtr Parser::parse_expression_only() {
  skip_newlines();
  ExprPtr e = parse_expr();
  skip_newlines();
  if (!check(TokKind::kEof)) {
    fail("unexpected content after expression: " + peek().describe());
  }
  return e;
}

bool Parser::at_stop(const std::vector<Keyword>& stops) const {
  if (check(TokKind::kEof)) return true;
  for (Keyword k : stops) {
    if (check_kw(k)) return true;
  }
  return false;
}

StmtList Parser::parse_body(const std::vector<Keyword>& stops) {
  StmtList out;
  while (true) {
    skip_newlines();
    if (at_stop(stops)) return out;
    out.push_back(parse_statement());
    if (at_stop(stops)) return out;
    expect_end_of_statement();
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parse_statement() {
  const lex::Token& t = peek();
  if (t.kind == TokKind::kKeyword) {
    switch (t.keyword) {
      case Keyword::kIHasA:
        advance();
        return parse_decl(ast::DeclScope::kPrivate);
      case Keyword::kWeHasA:
        advance();
        return parse_decl(ast::DeclScope::kSymmetric);
      case Keyword::kVisible:
        advance();
        return parse_visible(/*to_stderr=*/false);
      case Keyword::kInvisible:
        advance();
        return parse_visible(/*to_stderr=*/true);
      case Keyword::kGimmeh:
        advance();
        return parse_gimmeh();
      case Keyword::kORly:
        return parse_orly();
      case Keyword::kWtf:
        return parse_wtf();
      case Keyword::kImInYr:
        return parse_loop();
      case Keyword::kGtfo:
        advance();
        return std::make_unique<ast::GtfoStmt>(t.loc);
      case Keyword::kFoundYr: {
        advance();
        ExprPtr v = parse_expr();
        return std::make_unique<ast::FoundYrStmt>(std::move(v), t.loc);
      }
      case Keyword::kHowIzI:
        return parse_funcdef();
      case Keyword::kCanHas:
        advance();
        return parse_canhas();
      case Keyword::kHugz:
        advance();
        return std::make_unique<ast::HugzStmt>(t.loc);
      case Keyword::kImSrslyMesinWif:
        advance();
        return parse_lock(ast::LockOp::kAcquire);
      case Keyword::kImMesinWif:
        advance();
        return parse_lock(ast::LockOp::kTry);
      case Keyword::kDunMesinWif:
        advance();
        return parse_lock(ast::LockOp::kRelease);
      case Keyword::kTxtMahBff:
        return parse_txt();
      case Keyword::kUr:
      case Keyword::kMah:
      case Keyword::kIt:
      case Keyword::kSrs:
        return parse_lvalue_statement();
      default:
        break;  // expression-leading keyword
    }
    // Any other keyword must begin an expression statement.
    ExprPtr e = parse_expr();
    return std::make_unique<ast::ExprStmt>(std::move(e), t.loc);
  }
  if (t.kind == TokKind::kIdentifier) return parse_lvalue_statement();
  if (t.kind == TokKind::kNumbr || t.kind == TokKind::kNumbar ||
      t.kind == TokKind::kYarn) {
    ExprPtr e = parse_expr();
    return std::make_unique<ast::ExprStmt>(std::move(e), t.loc);
  }
  fail("expected a statement, found " + peek().describe());
}

StmtPtr Parser::parse_lvalue_statement() {
  support::SourceLoc loc = peek().loc;
  ExprPtr target = parse_postfix_primary();
  if (match_kw(Keyword::kR)) {
    ExprPtr value = parse_expr();
    return std::make_unique<ast::AssignStmt>(std::move(target),
                                             std::move(value), loc);
  }
  if (match_kw(Keyword::kIsNowA)) {
    ast::TypeKind ty = parse_type(/*allow_plural=*/false);
    return std::make_unique<ast::CastToStmt>(std::move(target), ty, loc);
  }
  return std::make_unique<ast::ExprStmt>(std::move(target), loc);
}

StmtPtr Parser::parse_decl(ast::DeclScope scope) {
  auto decl = std::make_unique<ast::VarDeclStmt>(peek().loc);
  decl->scope = scope;
  decl->name = expect(TokKind::kIdentifier, "variable name").text;

  bool want_an = false;  // clauses after the first are introduced by AN
  while (true) {
    if (want_an) {
      // A clause separator is required between clauses; stop when the
      // next token is not AN or AN is not followed by a clause keyword.
      if (!check_kw(Keyword::kAn)) break;
      const lex::Token& after = peek(1);
      bool clause_follows =
          after.kind == TokKind::kKeyword &&
          (after.keyword == Keyword::kItz || after.keyword == Keyword::kItzA ||
           after.keyword == Keyword::kItzSrslyA ||
           after.keyword == Keyword::kItzLotzA ||
           after.keyword == Keyword::kItzSrslyLotzA ||
           after.keyword == Keyword::kTharIz ||
           after.keyword == Keyword::kImSharinIt);
      if (!clause_follows) break;
      advance();  // consume AN
    }
    if (match_kw(Keyword::kItzA)) {
      decl->declared_type = parse_type(/*allow_plural=*/false);
    } else if (match_kw(Keyword::kItzSrslyA)) {
      decl->srsly = true;
      decl->declared_type = parse_type(/*allow_plural=*/false);
    } else if (match_kw(Keyword::kItzLotzA)) {
      decl->is_array = true;
      decl->declared_type = parse_type(/*allow_plural=*/true);
    } else if (match_kw(Keyword::kItzSrslyLotzA)) {
      decl->is_array = true;
      decl->srsly = true;
      decl->declared_type = parse_type(/*allow_plural=*/true);
    } else if (match_kw(Keyword::kTharIz)) {
      decl->array_size = parse_expr();
    } else if (match_kw(Keyword::kImSharinIt)) {
      decl->sharin = true;
    } else if (match_kw(Keyword::kItz)) {
      decl->init = parse_expr();
    } else {
      if (want_an) fail("expected a declaration clause after 'AN'");
      break;  // bare declaration: I HAS A x
    }
    want_an = true;
  }
  if (decl->array_size && !decl->is_array) {
    throw ParseError("'THAR IZ' requires an array declaration (LOTZ A ...)",
                     decl->loc);
  }
  return decl;
}

StmtPtr Parser::parse_visible(bool to_stderr) {
  auto stmt = std::make_unique<ast::VisibleStmt>(peek().loc);
  stmt->to_stderr = to_stderr;
  while (!check(TokKind::kNewline) && !check(TokKind::kEof) &&
         !check(TokKind::kBang)) {
    stmt->args.push_back(parse_expr());
    match_kw(Keyword::kAn);  // optional separator between arguments
  }
  if (match(TokKind::kBang)) stmt->newline = false;
  if (stmt->args.empty()) fail("VISIBLE requires at least one argument");
  return stmt;
}

StmtPtr Parser::parse_gimmeh() {
  support::SourceLoc loc = peek().loc;
  ExprPtr target = parse_postfix_primary();
  return std::make_unique<ast::GimmehStmt>(std::move(target), loc);
}

StmtPtr Parser::parse_orly() {
  auto stmt = std::make_unique<ast::ORlyStmt>(peek().loc);
  expect_kw(Keyword::kORly);
  expect(TokKind::kQuestion, "'?' after 'O RLY'");
  skip_newlines();
  // YA RLY is optional: the paper's §V trylock fragment goes straight to
  // NO WAI (`IM SRSLY MESIN WIF x, O RLY? / NO WAI, ... / OIC`).
  if (match_kw(Keyword::kYaRly)) {
    stmt->ya_rly =
        parse_body({Keyword::kMebbe, Keyword::kNoWai, Keyword::kOic});
  }
  while (check_kw(Keyword::kMebbe)) {
    advance();
    ExprPtr cond = parse_expr();
    StmtList body =
        parse_body({Keyword::kMebbe, Keyword::kNoWai, Keyword::kOic});
    stmt->mebbe.emplace_back(std::move(cond), std::move(body));
  }
  if (match_kw(Keyword::kNoWai)) {
    stmt->no_wai = parse_body({Keyword::kOic});
  }
  expect_kw(Keyword::kOic);
  return stmt;
}

StmtPtr Parser::parse_wtf() {
  auto stmt = std::make_unique<ast::WtfStmt>(peek().loc);
  expect_kw(Keyword::kWtf);
  expect(TokKind::kQuestion, "'?' after 'WTF'");
  skip_newlines();
  if (!check_kw(Keyword::kOmg) && !check_kw(Keyword::kOmgwtf)) {
    fail("expected 'OMG' case after 'WTF?'");
  }
  while (check_kw(Keyword::kOmg)) {
    advance();
    ast::WtfStmt::Case c;
    c.literal = parse_expr();
    c.body = parse_body({Keyword::kOmg, Keyword::kOmgwtf, Keyword::kOic});
    stmt->cases.push_back(std::move(c));
  }
  if (match_kw(Keyword::kOmgwtf)) {
    stmt->has_default = true;
    stmt->default_body = parse_body({Keyword::kOic});
  }
  expect_kw(Keyword::kOic);
  return stmt;
}

StmtPtr Parser::parse_loop() {
  auto stmt = std::make_unique<ast::LoopStmt>(peek().loc);
  expect_kw(Keyword::kImInYr);
  stmt->label = expect(TokKind::kIdentifier, "loop label").text;
  if (match_kw(Keyword::kUppin)) {
    stmt->update = ast::LoopUpdate::kUppin;
  } else if (match_kw(Keyword::kNerfin)) {
    stmt->update = ast::LoopUpdate::kNerfin;
  } else if (check(TokKind::kIdentifier) && peek(1).is_keyword(Keyword::kYr)) {
    stmt->update = ast::LoopUpdate::kFunc;
    stmt->func = advance().text;
  }
  if (stmt->update != ast::LoopUpdate::kNone) {
    expect_kw(Keyword::kYr);
    stmt->var = expect(TokKind::kIdentifier, "loop variable").text;
  }
  if (match_kw(Keyword::kTil)) {
    stmt->cond_kind = ast::LoopCond::kTil;
    stmt->cond = parse_expr();
  } else if (match_kw(Keyword::kWile)) {
    stmt->cond_kind = ast::LoopCond::kWile;
    stmt->cond = parse_expr();
  }
  stmt->body = parse_body({Keyword::kImOuttaYr});
  expect_kw(Keyword::kImOuttaYr);
  std::string close = expect(TokKind::kIdentifier, "loop label").text;
  if (close != stmt->label) {
    throw ParseError("loop closed with label '" + close + "' but opened as '" +
                         stmt->label + "'",
                     stmt->loc);
  }
  return stmt;
}

StmtPtr Parser::parse_funcdef() {
  auto stmt = std::make_unique<ast::FuncDefStmt>(peek().loc);
  expect_kw(Keyword::kHowIzI);
  stmt->name = expect(TokKind::kIdentifier, "function name").text;
  if (match_kw(Keyword::kYr)) {
    stmt->params.push_back(
        expect(TokKind::kIdentifier, "parameter name").text);
    while (check_kw(Keyword::kAn) && peek(1).is_keyword(Keyword::kYr)) {
      advance();  // AN
      advance();  // YR
      stmt->params.push_back(
          expect(TokKind::kIdentifier, "parameter name").text);
    }
  }
  stmt->body = parse_body({Keyword::kIfUSaySo});
  expect_kw(Keyword::kIfUSaySo);
  return stmt;
}

StmtPtr Parser::parse_canhas() {
  support::SourceLoc loc = peek().loc;
  std::string lib = expect(TokKind::kIdentifier, "library name").text;
  expect(TokKind::kQuestion, "'?' after library name");
  return std::make_unique<ast::CanHasStmt>(std::move(lib), loc);
}

StmtPtr Parser::parse_lock(ast::LockOp op) {
  support::SourceLoc loc = peek().loc;
  ExprPtr target = parse_postfix_primary();
  // The lock is associated with the variable, not an element; strip any
  // index so `IM MESIN WIF arr'Z 0` locks `arr`.
  if (target->kind == ast::ExprKind::kIndex) {
    target = std::move(static_cast<ast::IndexExpr&>(*target).base);
  }
  return std::make_unique<ast::LockStmt>(op, std::move(target), loc);
}

StmtPtr Parser::parse_txt() {
  auto stmt = std::make_unique<ast::TxtStmt>(peek().loc);
  expect_kw(Keyword::kTxtMahBff);
  stmt->target_pe = parse_expr();
  if (match_kw(Keyword::kAnStuff)) {
    stmt->block_form = true;
    stmt->body = parse_body({Keyword::kTtyl});
    expect_kw(Keyword::kTtyl);
    return stmt;
  }
  // Single-statement form: `TXT MAH BFF e, stmt`.
  if (!match(TokKind::kNewline)) {
    fail("expected ',' (or 'AN STUFF') after TXT MAH BFF target");
  }
  skip_newlines();
  stmt->body.push_back(parse_statement());
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ast::TypeKind Parser::parse_type(bool allow_plural) {
  const lex::Token& t = peek();
  if (t.kind == TokKind::kKeyword) {
    switch (t.keyword) {
      case Keyword::kNumbr:
        advance();
        return ast::TypeKind::kNumbr;
      case Keyword::kNumbar:
        advance();
        return ast::TypeKind::kNumbar;
      case Keyword::kYarn:
        advance();
        return ast::TypeKind::kYarn;
      case Keyword::kTroof:
        advance();
        return ast::TypeKind::kTroof;
      case Keyword::kNoob:
        advance();
        return ast::TypeKind::kNoob;
      case Keyword::kNumbrs:
        if (allow_plural) {
          advance();
          return ast::TypeKind::kNumbr;
        }
        break;
      case Keyword::kNumbars:
        if (allow_plural) {
          advance();
          return ast::TypeKind::kNumbar;
        }
        break;
      case Keyword::kYarns:
        if (allow_plural) {
          advance();
          return ast::TypeKind::kYarn;
        }
        break;
      case Keyword::kTroofs:
        if (allow_plural) {
          advance();
          return ast::TypeKind::kTroof;
        }
        break;
      default:
        break;
    }
  }
  fail("expected a type name, found " + peek().describe());
}

ExprPtr Parser::parse_binary(ast::BinOp op) {
  support::SourceLoc loc = toks_[pos_ - 1].loc;
  ExprPtr lhs = parse_expr();
  match_kw(Keyword::kAn);  // AN is optional per the 1.2 spec
  ExprPtr rhs = parse_expr();
  return std::make_unique<ast::BinaryExpr>(op, std::move(lhs), std::move(rhs),
                                           loc);
}

ExprPtr Parser::parse_nary(ast::NaryOp op) {
  support::SourceLoc loc = toks_[pos_ - 1].loc;
  std::vector<ExprPtr> operands;
  // Operands until MKAY; MKAY may be omitted at end of statement.
  while (!check_kw(Keyword::kMkay) && !check(TokKind::kNewline) &&
         !check(TokKind::kEof) && !check(TokKind::kBang)) {
    operands.push_back(parse_expr());
    match_kw(Keyword::kAn);
  }
  match_kw(Keyword::kMkay);
  if (operands.empty()) {
    fail(std::string(ast::nary_op_name(op)) + " requires at least one operand");
  }
  return std::make_unique<ast::NaryExpr>(op, std::move(operands), loc);
}

ExprPtr Parser::parse_unary(ast::UnOp op) {
  support::SourceLoc loc = toks_[pos_ - 1].loc;
  ExprPtr v = parse_expr();
  return std::make_unique<ast::UnaryExpr>(op, std::move(v), loc);
}

ExprPtr Parser::parse_call() {
  support::SourceLoc loc = toks_[pos_ - 1].loc;
  std::string callee = expect(TokKind::kIdentifier, "function name").text;
  std::vector<ExprPtr> args;
  if (match_kw(Keyword::kYr)) {
    args.push_back(parse_expr());
    while (check_kw(Keyword::kAn) && peek(1).is_keyword(Keyword::kYr)) {
      advance();  // AN
      advance();  // YR
      args.push_back(parse_expr());
    }
  }
  // MKAY terminates the call; tolerated-omitted at end of statement.
  if (!match_kw(Keyword::kMkay) && !check(TokKind::kNewline) &&
      !check(TokKind::kEof)) {
    fail("expected 'MKAY' to close 'I IZ' call");
  }
  return std::make_unique<ast::CallExpr>(std::move(callee), std::move(args),
                                         loc);
}

ExprPtr Parser::parse_postfix_primary() {
  support::SourceLoc loc = peek().loc;
  ast::Locality locality = ast::Locality::kDefault;
  if (match_kw(Keyword::kUr)) {
    locality = ast::Locality::kRemote;
  } else if (match_kw(Keyword::kMah)) {
    locality = ast::Locality::kLocal;
  }
  ExprPtr base;
  if (check(TokKind::kIdentifier)) {
    base = std::make_unique<ast::VarRef>(advance().text, locality, loc);
  } else if (match_kw(Keyword::kSrs)) {
    ExprPtr name = parse_expr();
    base = std::make_unique<ast::SrsRef>(std::move(name), locality, loc);
  } else if (check_kw(Keyword::kIt)) {
    advance();
    if (locality != ast::Locality::kDefault) {
      throw ParseError("IT cannot be UR/MAH qualified", loc);
    }
    base = std::make_unique<ast::ItRef>(loc);
  } else {
    fail("expected a variable after " +
         std::string(locality == ast::Locality::kRemote  ? "'UR'"
                      : locality == ast::Locality::kLocal ? "'MAH'"
                                                          : "this token") +
         ", found " + peek().describe());
  }
  if (match(TokKind::kTickZ)) {
    ExprPtr index = parse_expr();
    return std::make_unique<ast::IndexExpr>(std::move(base), std::move(index),
                                            loc);
  }
  return base;
}

ExprPtr Parser::parse_expr() {
  const lex::Token& t = peek();
  switch (t.kind) {
    case TokKind::kNumbr: {
      advance();
      return std::make_unique<ast::NumbrLit>(t.numbr, t.loc);
    }
    case TokKind::kNumbar: {
      advance();
      return std::make_unique<ast::NumbarLit>(t.numbar, t.loc);
    }
    case TokKind::kYarn: {
      advance();
      return std::make_unique<ast::YarnLit>(t.segments, t.loc);
    }
    case TokKind::kIdentifier:
      return parse_postfix_primary();
    case TokKind::kKeyword:
      break;
    default:
      fail("expected an expression, found " + peek().describe());
  }
  switch (t.keyword) {
    case Keyword::kWin:
      advance();
      return std::make_unique<ast::TroofLit>(true, t.loc);
    case Keyword::kFail:
      advance();
      return std::make_unique<ast::TroofLit>(false, t.loc);
    case Keyword::kNoob:
      advance();
      return std::make_unique<ast::NoobLit>(t.loc);
    case Keyword::kIt:
    case Keyword::kUr:
    case Keyword::kMah:
    case Keyword::kSrs:
      return parse_postfix_primary();
    case Keyword::kMe:
      advance();
      return std::make_unique<ast::MeExpr>(t.loc);
    case Keyword::kMahFrenz:
      advance();
      return std::make_unique<ast::MahFrenzExpr>(t.loc);
    case Keyword::kWhatevr:
      advance();
      return std::make_unique<ast::WhatevrExpr>(t.loc);
    case Keyword::kWhatevar:
      advance();
      return std::make_unique<ast::WhatevarExpr>(t.loc);
    case Keyword::kSumOf:
      advance();
      return parse_binary(ast::BinOp::kSum);
    case Keyword::kDiffOf:
      advance();
      return parse_binary(ast::BinOp::kDiff);
    case Keyword::kProduktOf:
      advance();
      return parse_binary(ast::BinOp::kProdukt);
    case Keyword::kQuoshuntOf:
      advance();
      return parse_binary(ast::BinOp::kQuoshunt);
    case Keyword::kModOf:
      advance();
      return parse_binary(ast::BinOp::kMod);
    case Keyword::kBiggrOf:
      advance();
      return parse_binary(ast::BinOp::kBiggr);
    case Keyword::kSmallrOf:
      advance();
      return parse_binary(ast::BinOp::kSmallr);
    case Keyword::kBothSaem:
      advance();
      return parse_binary(ast::BinOp::kBothSaem);
    case Keyword::kDiffrint:
      advance();
      return parse_binary(ast::BinOp::kDiffrint);
    case Keyword::kBigger:
      advance();
      return parse_binary(ast::BinOp::kBigger);
    case Keyword::kSmallr:
      advance();
      return parse_binary(ast::BinOp::kSmallrCmp);
    case Keyword::kBothOf:
      advance();
      return parse_binary(ast::BinOp::kBothOf);
    case Keyword::kEitherOf:
      advance();
      return parse_binary(ast::BinOp::kEitherOf);
    case Keyword::kWonOf:
      advance();
      return parse_binary(ast::BinOp::kWonOf);
    case Keyword::kNot:
      advance();
      return parse_unary(ast::UnOp::kNot);
    case Keyword::kSquarOf:
      advance();
      return parse_unary(ast::UnOp::kSquar);
    case Keyword::kUnsquarOf:
      advance();
      return parse_unary(ast::UnOp::kUnsquar);
    case Keyword::kFlipOf:
      advance();
      return parse_unary(ast::UnOp::kFlip);
    case Keyword::kAllOf:
      advance();
      return parse_nary(ast::NaryOp::kAllOf);
    case Keyword::kAnyOf:
      advance();
      return parse_nary(ast::NaryOp::kAnyOf);
    case Keyword::kSmoosh:
      advance();
      return parse_nary(ast::NaryOp::kSmoosh);
    case Keyword::kMaek: {
      advance();
      ExprPtr v = parse_expr();
      expect_kw(Keyword::kA);
      ast::TypeKind ty = parse_type(/*allow_plural=*/false);
      return std::make_unique<ast::CastExpr>(std::move(v), ty, t.loc);
    }
    case Keyword::kIIz:
      advance();
      return parse_call();
    default:
      fail("expected an expression, found " + peek().describe());
  }
}

ast::Program parse_program(std::string_view source) {
  return Parser(lex::tokenize(source)).parse_program();
}

ast::ExprPtr parse_expression(std::string_view source) {
  return Parser(lex::tokenize(source)).parse_expression_only();
}

}  // namespace lol::parse

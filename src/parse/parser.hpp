// Recursive-descent parser for LOLCODE-1.2 + the parallel extensions.
//
// The grammar is prefix-form and LL(1) over phrase-merged tokens; the only
// lookahead subtleties (multi-word keywords, `AN` as both clause separator
// and operand separator) are resolved by the lexer's longest-phrase match
// and by the prefix expression grammar, which always knows its arity.
#pragma once

#include <vector>

#include "ast/ast.hpp"
#include "lex/lexer.hpp"
#include "support/error.hpp"

namespace lol::parse {

class Parser {
 public:
  explicit Parser(std::vector<lex::Token> tokens)
      : toks_(std::move(tokens)) {}

  /// Parses a whole program (`HAI ... KTHXBYE`). Throws
  /// support::ParseError on the first grammar violation.
  ast::Program parse_program();

  /// Parses a single expression (for tests and the REPL-style tools).
  ast::ExprPtr parse_expression_only();

 private:
  // -- token cursor ---------------------------------------------------------
  [[nodiscard]] const lex::Token& peek(std::size_t ahead = 0) const;
  const lex::Token& advance();
  [[nodiscard]] bool check(lex::TokKind k) const;
  [[nodiscard]] bool check_kw(lex::Keyword k) const;
  bool match(lex::TokKind k);
  bool match_kw(lex::Keyword k);
  const lex::Token& expect(lex::TokKind k, const char* what);
  const lex::Token& expect_kw(lex::Keyword k);
  void skip_newlines();
  void expect_end_of_statement();
  [[noreturn]] void fail(const std::string& msg) const;

  // -- statements -----------------------------------------------------------
  ast::StmtPtr parse_statement();
  ast::StmtList parse_body(const std::vector<lex::Keyword>& stops);
  [[nodiscard]] bool at_stop(const std::vector<lex::Keyword>& stops) const;

  ast::StmtPtr parse_decl(ast::DeclScope scope);
  ast::StmtPtr parse_visible(bool to_stderr);
  ast::StmtPtr parse_gimmeh();
  ast::StmtPtr parse_orly();
  ast::StmtPtr parse_wtf();
  ast::StmtPtr parse_loop();
  ast::StmtPtr parse_funcdef();
  ast::StmtPtr parse_canhas();
  ast::StmtPtr parse_lock(ast::LockOp op);
  ast::StmtPtr parse_txt();
  ast::StmtPtr parse_lvalue_statement();

  // -- expressions ----------------------------------------------------------
  ast::ExprPtr parse_expr();
  ast::ExprPtr parse_binary(ast::BinOp op);
  ast::ExprPtr parse_nary(ast::NaryOp op);
  ast::ExprPtr parse_unary(ast::UnOp op);
  ast::ExprPtr parse_call();
  /// Variable-shaped primary: [UR|MAH] (ident | SRS expr | IT) ['Z index].
  ast::ExprPtr parse_postfix_primary();
  ast::TypeKind parse_type(bool allow_plural);

  std::vector<lex::Token> toks_;
  std::size_t pos_ = 0;
};

/// Convenience: lex + parse `source` in one call.
ast::Program parse_program(std::string_view source);

/// Convenience: lex + parse a single expression.
ast::ExprPtr parse_expression(std::string_view source);

}  // namespace lol::parse

#include "shmem/executor.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace lol::shmem {

#if LOL_OBS_RUNTIME_METRICS
namespace {
struct PoolMetrics {
  obs::Counter& worker_claims;
  obs::Counter& threads_created;
  PoolMetrics()
      : worker_claims(obs::Registry::global().counter(
            "lol_executor_worker_claims_total",
            "Workers claimed from persistent pools (PE workers and fiber "
            "carriers)")),
        threads_created(obs::Registry::global().counter(
            "lol_executor_threads_created_total",
            "OS threads ever created by persistent executor pools")) {}
};
PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}
}  // namespace
#endif

const char* to_string(ExecutorKind k) {
  switch (k) {
    case ExecutorKind::kThread: return "thread";
    case ExecutorKind::kPool: return "pool";
    case ExecutorKind::kFiber: return "fiber";
  }
  return "thread";
}

std::optional<ExecutorKind> executor_from_name(std::string_view name) {
  if (name == "thread") return ExecutorKind::kThread;
  if (name == "pool") return ExecutorKind::kPool;
  if (name == "fiber") return ExecutorKind::kFiber;
  return std::nullopt;
}

void EventCount::wait_for_usec(std::uint64_t epoch, long usec) {
  std::unique_lock<std::mutex> g(m_);
  cv_.wait_for(g, std::chrono::microseconds(usec), [&] {
    return epoch_.load(std::memory_order_relaxed) != epoch;
  });
}

// ---------------------------------------------------------------------------
// Thread-per-PE
// ---------------------------------------------------------------------------

namespace {

class ThreadPerPeExecutor final : public PeExecutor {
 public:
  void run_gang(int n, const std::function<void(int)>& body,
                EventCount& /*ec*/) override {
    if (n == 1) {
      body(0);
      return;
    }
    StartGate gate;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n - 1));
    try {
      for (int i = 1; i < n; ++i) {
        threads.emplace_back([&gate, &body, i] {
          if (gate.wait_for_go()) body(i);
        });
      }
    } catch (const std::exception& e) {
      gate.release(2);
      for (auto& t : threads) t.join();
      throw support::RuntimeError(
          std::string("thread executor: cannot spawn a thread per PE (") +
          e.what() + "); lower n_pes or use --executor fiber");
    }
    gate.release(1);
    body(0);  // PE 0 rides the launching thread
    for (auto& t : threads) t.join();
  }

  [[nodiscard]] const char* name() const override { return "thread"; }
};

}  // namespace

PeExecutor& thread_per_pe_executor() {
  static ThreadPerPeExecutor exec;
  return exec;
}

// ---------------------------------------------------------------------------
// ThreadPoolExecutor — cached workers with gang semantics
// ---------------------------------------------------------------------------

/// One launch's completion latch: the launcher blocks until every
/// pooled PE has finished.
struct ThreadPoolExecutor::Gang {
  std::atomic<int> remaining{0};
  std::mutex m;
  std::condition_variable cv;
  bool done = false;

  void finish_one() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Notify under the lock: the gang lives on the launcher's stack,
      // and an after-unlock notify could race its destruction.
      std::lock_guard<std::mutex> g(m);
      done = true;
      cv.notify_all();
    }
  }

  void wait_all() {
    std::unique_lock<std::mutex> g(m);
    cv.wait(g, [&] { return done; });
  }
};

/// One cached worker: parks on its own mutex/cv between launches and is
/// handed (body, index, gang) assignments by run_gang.
struct ThreadPoolExecutor::Worker {
  std::mutex m;
  std::condition_variable cv;
  const std::function<void(int)>* body = nullptr;
  int index = -1;
  Gang* gang = nullptr;
  bool stop = false;
  std::thread thread;
};

ThreadPoolExecutor::ThreadPoolExecutor() = default;

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> g(pool_m_);
    stopping_ = true;
  }
  for (auto& w : all_) {
    {
      std::lock_guard<std::mutex> g(w->m);
      w->stop = true;
    }
    w->cv.notify_one();
  }
  for (auto& w : all_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ThreadPoolExecutor::worker_main(Worker* w) {
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    int index = -1;
    Gang* gang = nullptr;
    {
      std::unique_lock<std::mutex> g(w->m);
      w->cv.wait(g, [&] { return w->body != nullptr || w->stop; });
      if (w->stop) return;
      body = w->body;
      index = w->index;
      gang = w->gang;
      w->body = nullptr;
      w->gang = nullptr;
    }
    (*body)(index);
    // Park before signaling completion: once finish_one releases the
    // launcher, a back-to-back launch must find this worker in the
    // idle stack, not still in flight (or the pool would grow by one
    // thread per race). A pending assignment that lands between the
    // park and the wait is picked up by the predicate re-check.
    bool keep = park(w);
    gang->finish_one();
    if (!keep) return;
  }
}

bool ThreadPoolExecutor::park(Worker* w) {
  std::lock_guard<std::mutex> g(pool_m_);
  if (stopping_) return false;
  idle_.push_back(w);
  return true;
}

void ThreadPoolExecutor::run_gang(int n,
                                  const std::function<void(int)>& body,
                                  EventCount& /*ec*/) {
  if (n == 1) {
    body(0);
    return;
  }
  Gang gang;
  gang.remaining.store(n - 1, std::memory_order_relaxed);
  std::vector<Worker*> claimed;
  claimed.reserve(static_cast<std::size_t>(n - 1));
  {
    std::lock_guard<std::mutex> g(pool_m_);
    try {
      for (int i = 1; i < n; ++i) {
        if (!idle_.empty()) {
          claimed.push_back(idle_.back());
          idle_.pop_back();
        } else {
          auto w = std::make_unique<Worker>();
          Worker* raw = w.get();
          raw->thread = std::thread([this, raw] { worker_main(raw); });
          ++threads_created_;
#if LOL_OBS_RUNTIME_METRICS
          pool_metrics().threads_created.inc();
#endif
          all_.push_back(std::move(w));
          claimed.push_back(raw);
        }
      }
    } catch (const std::exception& e) {
      // Growing the pool failed mid-claim (thread limits): hand the
      // already-claimed workers back — nothing was assigned yet — and
      // fail the launch instead of stranding them parked forever.
      for (Worker* w : claimed) idle_.push_back(w);
      throw support::RuntimeError(
          std::string("pool executor: cannot grow the worker pool (") +
          e.what() + "); lower n_pes or use --executor fiber");
    }
  }
#if LOL_OBS_RUNTIME_METRICS
  pool_metrics().worker_claims.inc(static_cast<std::uint64_t>(n - 1));
#endif
  for (int i = 1; i < n; ++i) {
    Worker* w = claimed[static_cast<std::size_t>(i - 1)];
    {
      std::lock_guard<std::mutex> g(w->m);
      w->body = &body;
      w->index = i;
      w->gang = &gang;
    }
    w->cv.notify_one();
  }
  body(0);  // PE 0 rides the launching thread (cache-warm for the caller)
  gang.wait_all();
}

std::uint64_t ThreadPoolExecutor::threads_created() const {
  std::lock_guard<std::mutex> g(pool_m_);
  return threads_created_;
}

std::size_t ThreadPoolExecutor::idle_count() const {
  std::lock_guard<std::mutex> g(pool_m_);
  return idle_.size();
}

ExecutorPtr process_thread_pool() {
  static ExecutorPtr pool = std::make_shared<ThreadPoolExecutor>();
  return pool;
}

ThreadPoolExecutor& fiber_carrier_pool() {
  static ThreadPoolExecutor pool;
  return pool;
}

ExecutorPtr make_fiber_executor(int pes_per_thread);  // fiber_executor.cpp

ExecutorPtr make_executor(ExecutorKind kind, int pes_per_thread) {
  switch (kind) {
    case ExecutorKind::kThread:
      // Share the stateless singleton; the no-op deleter keeps the
      // shared_ptr contract without owning it.
      return ExecutorPtr(&thread_per_pe_executor(), [](PeExecutor*) {});
    case ExecutorKind::kPool:
      return process_thread_pool();
    case ExecutorKind::kFiber:
      return make_fiber_executor(pes_per_thread);
  }
  return nullptr;
}

}  // namespace lol::shmem

// Pluggable PE execution strategies for the shmem runtime.
//
// The paper runs SPMD LOLCODE on machines with thousands of PEs (4,096
// Epiphany cores; Cray XC40 nodes). Reproducing those PE counts with the
// original thread-per-PE launch is impossible on a laptop, and a service
// that launches thousands of short jobs pays thread spawn/join on every
// one. A PeExecutor abstracts how the N logical PEs of one launch map
// onto OS threads:
//
//   * kThread — one fresh std::thread per PE per launch (the historical
//     behavior; zero shared state, good for one-shot runs)
//   * kPool   — a persistent cached pool of worker threads reused across
//     launches (the service default; eliminates per-job spawn/join)
//   * kFiber  — K virtual PEs multiplexed per carrier thread on
//     ucontext fibers, so n_pes = 1024 runs correctly on an 8-core box
//     (the teaching-scale configuration: watch §VI scaling curves at
//     Parallella-like PE counts)
//
// Because PEs synchronize with each other mid-run (barriers, locks,
// collectives), an executor must provide all N execution contexts
// concurrently — it may never queue one PE behind another's completion.
// Blocking primitives cooperate with the executor through the
// eventcount protocol below instead of parking the OS thread directly,
// which is what lets a fiber yield its carrier to a sibling PE.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

namespace lol::shmem {

/// Which PE execution strategy a launch uses. Canonical names ("thread"
/// / "pool" / "fiber") come from to_string/executor_from_name — the one
/// mapping every surface (lolrun/lolserve flags, the daemon wire
/// protocol, the differential harness) shares.
enum class ExecutorKind {
  kThread,  // one OS thread per PE, spawned per launch
  kPool,    // persistent cached worker threads, reused across launches
  kFiber,   // K virtual PEs per carrier thread (ucontext coroutines)
};

[[nodiscard]] const char* to_string(ExecutorKind k);
[[nodiscard]] std::optional<ExecutorKind> executor_from_name(
    std::string_view name);

/// The blocking rendezvous for one Runtime's launches. Wait loops are
/// eventcount-shaped:
///
///     for (;;) {
///       std::uint64_t e = ec.prepare_wait();
///       if (condition) break;
///       if (aborted) throw ...;
///       executor.wait(ec, pe, e);
///     }
///
/// and whoever makes such a condition true calls ec.notify_all() after
/// changing it. Because the epoch is snapshotted *before* the condition
/// is re-checked, a notification landing between the snapshot and the
/// wait is never lost. Each Runtime owns its own EventCount, so
/// concurrent jobs sharing one executor (the process pool) do not
/// serialize their barriers and locks on a process-global mutex or wake
/// each other's waiters.
class EventCount {
 public:
  /// Epoch snapshot; take it before re-checking the awaited condition.
  [[nodiscard]] std::uint64_t prepare_wait() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Parks the OS thread until notify_all() bumps the epoch past the
  /// snapshot.
  void wait(std::uint64_t epoch) {
    std::unique_lock<std::mutex> g(m_);
    cv_.wait(g, [&] {
      return epoch_.load(std::memory_order_relaxed) != epoch;
    });
  }

  /// Bounded variant; returns when the epoch moved or `usec` elapsed.
  void wait_for_usec(std::uint64_t epoch, long usec);

  /// Wakes every waiter.
  void notify_all() {
    {
      // The bump must be ordered against a concurrent wait()'s
      // predicate check, or the notify could land between the check
      // and the sleep.
      std::lock_guard<std::mutex> g(m_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
};

/// A PE execution strategy. One instance can serve many launches, from
/// many Runtimes, concurrently (the service shares one pool across its
/// workers).
class PeExecutor {
 public:
  virtual ~PeExecutor() = default;

  /// Gang-runs body(i) for every i in [0, n) and returns once all have
  /// finished. All n PEs must be able to make progress concurrently.
  /// `body` must not throw — the runtime's per-PE wrapper catches
  /// everything before it reaches the executor. `ec` is the launching
  /// Runtime's eventcount (cooperative executors sleep on it when every
  /// resident PE is blocked). Throws support::RuntimeError when launch
  /// resources (fiber stacks) cannot be acquired — before any PE ran.
  virtual void run_gang(int n, const std::function<void(int)>& body,
                        EventCount& ec) = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True when PEs share carrier threads cooperatively (fibers). Code
  /// that waits for external input must then poll with zero-length
  /// waits and wait() between polls instead of sleeping on the carrier.
  [[nodiscard]] virtual bool cooperative() const { return false; }

  /// Blocks the calling PE until ec.notify_all() bumps the epoch past
  /// the snapshot. Thread-backed executors park the OS thread on the
  /// eventcount; the fiber executor switches the carrier to a sibling
  /// PE instead.
  virtual void wait(EventCount& ec, int pe, std::uint64_t epoch) {
    (void)pe;
    ec.wait(epoch);
  }

  /// Cooperative time-slice point for compute loops: the fiber executor
  /// switches to a sibling PE here so spin-waits on symmetric memory
  /// make progress; other executors do nothing.
  virtual void preempt(int pe) { (void)pe; }
};

using ExecutorPtr = std::shared_ptr<PeExecutor>;

/// Two-phase start gate for executors that spawn a thread per PE
/// (fiber carriers claim pooled workers instead — see
/// fiber_carrier_pool): threads wait at the gate, and no PE body runs until
/// every spawn has succeeded. On a mid-loop spawn failure (EAGAIN near
/// the pids limit) the launcher abandons the gang: parked threads
/// return without running anything, so no PE can wedge in a barrier
/// waiting for threads that never came to exist, and the joinable
/// threads can be joined instead of std::terminate-ing the process.
struct StartGate {
  std::mutex m;
  std::condition_variable cv;
  int state = 0;  // 0 = pending, 1 = go, 2 = abandon

  void release(int new_state) {
    {
      std::lock_guard<std::mutex> g(m);
      state = new_state;
    }
    cv.notify_all();
  }

  /// Blocks until release(); true when the gang should run.
  bool wait_for_go() {
    std::unique_lock<std::mutex> g(m);
    cv.wait(g, [&] { return state != 0; });
    return state == 1;
  }
};

/// A persistent cached thread pool with gang semantics: run_gang never
/// queues a PE behind a running launch — it reuses idle workers and
/// spawns new ones when the gang is wider than the cache, so concurrent
/// launches from service workers cannot deadlock each other. Workers
/// park after each launch and are reused by the next; the pool's thread
/// count is bounded by the peak concurrent PE demand, not by the number
/// of launches served.
class ThreadPoolExecutor final : public PeExecutor {
 public:
  ThreadPoolExecutor();
  ~ThreadPoolExecutor() override;

  void run_gang(int n, const std::function<void(int)>& body,
                EventCount& ec) override;
  [[nodiscard]] const char* name() const override { return "pool"; }

  /// Total worker threads ever spawned — the launch-reuse tests assert
  /// this stays at gang width across many launches.
  [[nodiscard]] std::uint64_t threads_created() const;
  /// Workers currently parked waiting for a gang.
  [[nodiscard]] std::size_t idle_count() const;

 private:
  struct Worker;
  struct Gang;
  void worker_main(Worker* w);
  bool park(Worker* w);  // false => pool is shutting down, thread exits

  mutable std::mutex pool_m_;
  std::vector<Worker*> idle_;
  std::vector<std::unique_ptr<Worker>> all_;
  std::uint64_t threads_created_ = 0;
  bool stopping_ = false;
};

/// The builtin thread-per-PE executor (what a Runtime uses when its
/// Config names no executor). Stateless and shared freely.
PeExecutor& thread_per_pe_executor();

/// The process-wide persistent pool (lazily constructed, shared by every
/// Service and any RunConfig that asks for ExecutorKind::kPool).
ExecutorPtr process_thread_pool();

/// The process-wide persistent carrier pool backing every FiberExecutor:
/// fiber launches claim their carrier threads here instead of spawning
/// them per launch, so warm fiber jobs in the service pay no
/// spawn/join. Kept separate from process_thread_pool() so PE workers
/// and fiber carriers don't perturb each other's reuse statistics.
/// (threads_created() on this pool = peak concurrent carrier demand.)
ThreadPoolExecutor& fiber_carrier_pool();

/// Builds an executor for `kind`. kThread and kPool return shared
/// long-lived instances; kFiber constructs a fresh FiberExecutor whose
/// carriers multiplex `pes_per_thread` virtual PEs each (0 = auto:
/// spread the gang over the hardware threads). Returns null when the
/// kind is unsupported on this platform (fibers need ucontext — POSIX).
ExecutorPtr make_executor(ExecutorKind kind, int pes_per_thread = 0);

/// True when ExecutorKind::kFiber is available on this platform.
[[nodiscard]] bool fiber_executor_available();

}  // namespace lol::shmem

// FiberExecutor — K virtual PEs per OS thread on cooperative fibers.
//
// Each launch partitions its N PEs into contiguous blocks over C carrier
// threads (C = ceil(N / pes_per_thread), capped at N). Carriers are not
// spawned per launch: they are claimed from a process-wide persistent
// pool (fiber_carrier_pool(), a ThreadPoolExecutor), so a service
// running thousands of warm fiber jobs pays thread creation once at peak
// demand, and a claim failure under thread limits fails the launch
// cleanly through the pool's all-or-nothing claim (the same machinery
// that protects pooled PE launches) instead of std::terminate-ing.
//
// A carrier gives every resident PE its own stack (mmap'd with a low
// guard page, so the pages are committed lazily and an overflow faults
// instead of corrupting a neighbor) and round-robins them cooperatively:
//
//   * a PE that cannot make progress — barrier not released, lock held,
//     GIMMEH input not there yet — calls PeExecutor::wait(), which
//     switches back to the carrier marked *blocked*
//   * a PE in a compute loop calls preempt() from the step-budget poll
//     (every ExecContext::kAbortPollPeriod steps), which yields marked
//     *runnable* — so spin-waits on symmetric memory still make
//     progress when their peer shares the carrier
//   * when one full pass finds every resident PE blocked and the
//     executor's eventcount epoch unchanged, the carrier sleeps on the
//     eventcount (bounded, so input arrival — which notifies nobody —
//     is still picked up promptly); barrier releases, lock clears and
//     aborts notify_all() and wake it immediately
//
// Context switches: plain builds on x86-64 ELF use a hand-rolled
// userspace switch (callee-saved registers + stack pointer + fp control
// words, ~20 ns per switch pair) because glibc's swapcontext saves and
// restores the signal mask with two syscalls per switch (~460 ns per
// pair measured) — at 2048 resident fibers that syscall tax *is* the
// barrier-crossing cost. Sanitizer builds and other platforms keep the
// ucontext path, annotated with the sanitizer fiber APIs
// (__tsan_switch_to_fiber / __sanitizer_start_switch_fiber), so the CI
// fiber-axis jobs check real races instead of drowning in stack-switch
// false positives.
#include "shmem/executor.hpp"

#if !defined(_WIN32)

#include <pthread.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"
#include "support/error.hpp"

#if defined(__SANITIZE_THREAD__)
#define LOL_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LOL_TSAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define LOL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LOL_ASAN_FIBERS 1
#endif
#endif

#if defined(LOL_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif
#if defined(LOL_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

// The fast userspace switch needs a known ABI and symbol mangling, and
// must not hide stack switches from sanitizers (their fiber hooks are
// wired into the ucontext path only).
#if defined(__x86_64__) && defined(__ELF__) && !defined(LOL_TSAN_FIBERS) && \
    !defined(LOL_ASAN_FIBERS)
#define LOL_FAST_FIBER_SWITCH 1
#endif

namespace lol::shmem {

class FiberExecutor;

namespace {

/// Usable stack per fiber (a guard page is added below). Matches the
/// default pthread stack so deep interpreter recursion behaves the same
/// on both executors; pages are only committed as they are touched.
constexpr std::size_t kFiberStackBytes = 8u << 20;

/// How long an idle carrier (every resident PE blocked) sleeps before
/// re-polling. Bounds GIMMEH latency for input sources that cannot
/// notify the eventcount.
constexpr std::chrono::microseconds kIdleWait{500};

struct Carrier;

struct Fiber {
  std::byte* map_base = nullptr;  // mmap base (guard page + stack)
  std::size_t map_bytes = 0;
  int pe = -1;
  bool done = false;
  bool blocked = false;  // last yield was a blocking wait
  Carrier* carrier = nullptr;
#if defined(LOL_FAST_FIBER_SWITCH)
  void* sp = nullptr;  // saved stack pointer while switched away
#else
  ucontext_t ctx{};
#endif
#if defined(LOL_TSAN_FIBERS)
  void* tsan = nullptr;
#endif
#if defined(LOL_ASAN_FIBERS)
  void* fake_stack = nullptr;  // saved when this fiber switches away
#endif
};

/// The carrier thread running one block of fibers; reachable from
/// inside a fiber through the thread-local below.
struct Carrier {
  EventCount* ec = nullptr;  // the launching Runtime's eventcount
  const std::function<void(int)>* body = nullptr;
  Fiber* current = nullptr;
#if defined(LOL_FAST_FIBER_SWITCH)
  void* main_sp = nullptr;  // carrier stack pointer while inside a fiber
#else
  ucontext_t main_ctx{};
#endif
#if defined(LOL_TSAN_FIBERS)
  void* main_tsan = nullptr;
#endif
#if defined(LOL_ASAN_FIBERS)
  void* main_fake_stack = nullptr;
  const void* main_stack_bottom = nullptr;
  std::size_t main_stack_size = 0;
#endif
};

thread_local Carrier* tls_carrier = nullptr;

std::size_t page_size() {
  static const std::size_t ps =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

/// Process-wide free list of guard-paged fiber stacks. A 2048-PE launch
/// otherwise pays mmap + mprotect + munmap (plus the first-touch page
/// faults all over again) per fiber per launch — about 20 ms at 2048
/// PEs, dwarfing the barriers the launch exists to run. Stacks are
/// uniform (kFiberStackBytes + guard), keep their guard page armed
/// while pooled, and stay resident up to the cap; beyond it they are
/// unmapped so an idle process does not hold a peak launch's memory
/// forever.
class StackPool {
 public:
  std::byte* acquire() {
    std::lock_guard<std::mutex> g(m_);
    if (free_.empty()) return nullptr;
    std::byte* base = free_.back();
    free_.pop_back();
    return base;
  }

  /// True when pooled; false => caller must munmap.
  ///
  /// Residency policy: pooled stacks keep whatever pages previous
  /// launches touched — a high-water-mark cache, like the carrier and
  /// worker pools keep their threads. A long-running daemon that once
  /// ran a deep-recursion high-PE fiber job therefore idles at that
  /// job's stack footprint. madvise(MADV_FREE) on release was measured
  /// and rejected: even over an *untouched* 8 MiB range the per-stack
  /// page-range scan costs ~3 µs, which at 2048 stacks per launch took
  /// 10-25% off barrier-crossing throughput — the hot path this pool
  /// exists to protect. Revisit with a cheap idle-time trim if daemon
  /// RSS ever matters more than launch latency.
  bool release(std::byte* base) {
    std::lock_guard<std::mutex> g(m_);
    if (free_.size() >= kMaxPooled) return false;
    free_.push_back(base);
    return true;
  }

 private:
  // 4096 pooled stacks cover the paper's flagship PE count; the VA
  // reservation is cheap on 64-bit, and resident memory is only the
  // pages a previous launch actually touched.
  static constexpr std::size_t kMaxPooled = 4096;
  std::mutex m_;
  std::vector<std::byte*> free_;
};

StackPool& stack_pool() {
  static StackPool pool;
  return pool;
}

#if defined(LOL_ASAN_FIBERS)
/// The carrier thread's own stack bounds, needed to re-enter it.
void carrier_stack_bounds(Carrier& c) {
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  pthread_attr_getstack(&attr, &addr, &size);
  pthread_attr_destroy(&attr);
  c.main_stack_bottom = addr;
  c.main_stack_size = size;
}
#endif

}  // namespace
}  // namespace lol::shmem

#if defined(LOL_FAST_FIBER_SWITCH)

// Saves the System V callee-saved state (rbp, rbx, r12-r15, x87 control
// word, mxcsr) on the current stack, parks the stack pointer in
// *save_sp, adopts restore_sp and unwinds the same frame there. The
// resume address is the ordinary return address the caller pushed, so
// `ret` completes the switch. No signal-mask syscalls — that is the
// entire point (see the header comment).
extern "C" void lol_fctx_swap(void** save_sp, void* restore_sp);
asm(R"(
.text
.align 16
.globl lol_fctx_swap
.hidden lol_fctx_swap
.type lol_fctx_swap, @function
lol_fctx_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq  $8, %rsp
  stmxcsr 4(%rsp)
  fnstcw  (%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  fldcw   (%rsp)
  ldmxcsr 4(%rsp)
  addq  $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size lol_fctx_swap, .-lol_fctx_swap
)");

#endif  // LOL_FAST_FIBER_SWITCH

namespace lol::shmem {
namespace {

#if defined(LOL_FAST_FIBER_SWITCH)

void switch_to_main(Fiber& f, bool dying);

/// First frame of every fiber. Entered by `ret` from lol_fctx_swap; the
/// fiber identity rides in the carrier's `current` pointer, which
/// switch_to_fiber set just before swapping.
extern "C" void lol_fiber_entry() {
  Carrier& c = *tls_carrier;
  Fiber* f = c.current;
  (*c.body)(f->pe);
  f->done = true;
  switch_to_main(*f, /*dying=*/true);
  __builtin_unreachable();  // a done fiber is never resumed
}

/// Lays out the bootstrap frame lol_fctx_swap will unwind on first
/// entry: zeroed callee-saved registers, the thread's current fp/simd
/// control words, and lol_fiber_entry as the return address — placed so
/// the entry lands with rsp ≡ 8 (mod 16), exactly as if it had been
/// call'ed (keeps movaps-using prologues aligned).
void make_fast_stack(Fiber& f) {
  std::byte* top = f.map_base + f.map_bytes;
  auto base = reinterpret_cast<std::uintptr_t>(top) & ~std::uintptr_t{15};
  auto entry_slot = base - 16;
  *reinterpret_cast<void**>(entry_slot) =
      reinterpret_cast<void*>(&lol_fiber_entry);
  std::uintptr_t sp = entry_slot - 6 * 8;  // rbp, rbx, r12-r15
  std::memset(reinterpret_cast<void*>(sp), 0, 6 * 8);
  sp -= 8;  // x87 control word (low 2 bytes) + mxcsr (bytes 4-7)
  unsigned int mxcsr = 0;
  unsigned short fcw = 0;
  __asm__ volatile("stmxcsr %0" : "=m"(mxcsr));
  __asm__ volatile("fnstcw %0" : "=m"(fcw));
  std::memset(reinterpret_cast<void*>(sp), 0, 8);
  std::memcpy(reinterpret_cast<void*>(sp), &fcw, sizeof fcw);
  std::memcpy(reinterpret_cast<void*>(sp + 4), &mxcsr, sizeof mxcsr);
  f.sp = reinterpret_cast<void*>(sp);
}

/// Switches from the carrier's main context into fiber `f`.
void switch_to_fiber(Carrier& c, Fiber& f) {
  c.current = &f;
  lol_fctx_swap(&c.main_sp, f.sp);
  c.current = nullptr;
}

/// Switches from the running fiber back to its carrier.
void switch_to_main(Fiber& f, bool /*dying*/) {
  lol_fctx_swap(&f.sp, f.carrier->main_sp);
}

void prepare_context(Fiber& f) { make_fast_stack(f); }

void release_context(Fiber& /*f*/) {}

#else  // ucontext path (sanitizers, non-x86-64)

/// Switches from the carrier's main context into fiber `f`.
void switch_to_fiber(Carrier& c, Fiber& f) {
  c.current = &f;
#if defined(LOL_TSAN_FIBERS)
  __tsan_switch_to_fiber(f.tsan, 0);
#endif
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&c.main_fake_stack,
                                 f.map_base + page_size(), kFiberStackBytes);
#endif
  swapcontext(&c.main_ctx, &f.ctx);
  // Back on the carrier.
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(c.main_fake_stack, nullptr, nullptr);
#endif
  c.current = nullptr;
}

/// Switches from the running fiber back to its carrier. `dying` frees
/// the sanitizer bookkeeping for a fiber that will never resume.
void switch_to_main(Fiber& f, bool dying) {
  Carrier& c = *f.carrier;
#if defined(LOL_TSAN_FIBERS)
  __tsan_switch_to_fiber(c.main_tsan, 0);
#endif
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(dying ? nullptr : &f.fake_stack,
                                 c.main_stack_bottom, c.main_stack_size);
#else
  (void)dying;
#endif
  swapcontext(&f.ctx, &c.main_ctx);
  // Resumed by a later switch_to_fiber.
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

/// makecontext only passes ints; a 64-bit pointer rides in two halves.
extern "C" void lol_fiber_trampoline(unsigned hi, unsigned lo) {
  auto addr = (static_cast<std::uintptr_t>(hi) << 32) |
              static_cast<std::uintptr_t>(lo);
  Fiber* f = reinterpret_cast<Fiber*>(addr);
#if defined(LOL_ASAN_FIBERS)
  // First entry: this context never switched away, so there is no saved
  // fake stack to restore.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  (*f->carrier->body)(f->pe);
  f->done = true;
  switch_to_main(*f, /*dying=*/true);
  // Unreachable: a done fiber is never resumed.
}

void prepare_context(Fiber& f) {
  getcontext(&f.ctx);
  f.ctx.uc_stack.ss_sp = f.map_base + page_size();
  f.ctx.uc_stack.ss_size = kFiberStackBytes;
  f.ctx.uc_link = nullptr;  // fibers exit via switch_to_main, never uc_link
  auto addr = reinterpret_cast<std::uintptr_t>(&f);
  makecontext(&f.ctx, reinterpret_cast<void (*)()>(lol_fiber_trampoline), 2,
              static_cast<unsigned>(addr >> 32),
              static_cast<unsigned>(addr & 0xFFFFFFFFu));
#if defined(LOL_TSAN_FIBERS)
  f.tsan = __tsan_create_fiber(0);
#endif
}

void release_context(Fiber& f) {
#if defined(LOL_TSAN_FIBERS)
  if (f.tsan != nullptr) __tsan_destroy_fiber(f.tsan);
  f.tsan = nullptr;
#else
  (void)f;
#endif
}

#endif  // LOL_FAST_FIBER_SWITCH

/// Maps the stack and prepares the initial context. Runs on the
/// *launching* thread, before any carrier is claimed: a failure here
/// must surface as an ordinary launch error, never as an uncaught
/// exception on a pool worker. Contexts are thread-agnostic — building
/// one here and first switching to it on a pooled carrier is fine.
void make_fiber(Fiber& f) {
  const std::size_t ps = page_size();
  f.map_bytes = kFiberStackBytes + ps;
  if (std::byte* pooled = stack_pool().acquire()) {
    f.map_base = pooled;  // guard page still armed from first map
  } else {
    void* base = ::mmap(nullptr, f.map_bytes, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      throw lol::support::RuntimeError(
          "fiber executor: cannot map a stack for PE " + std::to_string(f.pe) +
          " (lower n_pes, or raise the address-space limit)");
    }
    f.map_base = static_cast<std::byte*>(base);
    ::mprotect(f.map_base, ps, PROT_NONE);  // stacks grow down into the guard
  }
  prepare_context(f);
}

void destroy_fiber(Fiber& f) {
  release_context(f);
  if (f.map_base != nullptr && !stack_pool().release(f.map_base)) {
    ::munmap(f.map_base, f.map_bytes);
  }
  f.map_base = nullptr;
}

}  // namespace

class FiberExecutor final : public PeExecutor {
 public:
  explicit FiberExecutor(int pes_per_thread)
      : pes_per_thread_(pes_per_thread) {}

  [[nodiscard]] const char* name() const override { return "fiber"; }
  [[nodiscard]] bool cooperative() const override { return true; }

  void run_gang(int n, const std::function<void(int)>& body,
                EventCount& ec) override {
    int per = pes_per_thread_;
    if (per <= 0) {
      // Auto: spread the gang over the hardware threads.
      int hw = static_cast<int>(std::thread::hardware_concurrency());
      if (hw < 1) hw = 1;
      per = (n + hw - 1) / hw;
    }
    const int carriers = (n + per - 1) / per;

    // Allocate every stack up front, on this thread: an mmap failure
    // (RLIMIT_AS, cgroup pressure) throws support::RuntimeError out of
    // the launch like any other resource error, instead of escaping a
    // pooled carrier thread and terminating the process.
    std::vector<Fiber> fibers(static_cast<std::size_t>(n));
    try {
      for (int pe = 0; pe < n; ++pe) {
        fibers[static_cast<std::size_t>(pe)].pe = pe;
        make_fiber(fibers[static_cast<std::size_t>(pe)]);
      }
    } catch (...) {
      for (Fiber& f : fibers) destroy_fiber(f);
      throw;
    }

    if (carriers == 1) {
      carrier_main(body, ec, fibers.data(), n);
      return;
    }
    // Claim persistent carriers from the process-wide pool. Carrier 0
    // rides the launching thread (the pool's gang contract), the rest
    // are parked workers reused launch over launch. The pool's claim is
    // all-or-nothing: if it cannot grow to `carriers` threads, nothing
    // was assigned, the claimed workers go back idle, and the failure
    // surfaces here — the fiber analogue of the StartGate abandon path.
    auto carrier_body = [&](int c) {
      const int lo = c * per;
      const int hi = std::min(n, lo + per);
      carrier_main(body, ec, fibers.data() + lo, hi - lo);
    };
    try {
      fiber_carrier_pool().run_gang(carriers, carrier_body, ec);
    } catch (const std::exception& e) {
      for (Fiber& f : fibers) destroy_fiber(f);
      throw lol::support::RuntimeError(
          std::string("fiber executor: cannot claim carrier threads (") +
          e.what() + "); raise pes_per_thread to use fewer carriers");
    }
  }

  void wait(EventCount& ec, int /*pe*/, std::uint64_t epoch) override {
    Carrier* c = tls_carrier;
    if (c != nullptr && c->current != nullptr) {
      c->current->blocked = true;
      switch_to_main(*c->current, /*dying=*/false);
      return;
    }
    ec.wait(epoch);  // not on a carrier: fall back to the cv
  }

  void preempt(int /*pe*/) override {
    Carrier* c = tls_carrier;
    if (c == nullptr || c->current == nullptr) return;
    c->current->blocked = false;
    switch_to_main(*c->current, /*dying=*/false);
  }

 private:
  /// Runs the `count` pre-built fibers starting at `block` on the
  /// calling thread (the launcher or a pooled carrier worker).
  void carrier_main(const std::function<void(int)>& body, EventCount& ec,
                    Fiber* block, int count) {
    Carrier carrier;
    carrier.ec = &ec;
    carrier.body = &body;
#if defined(LOL_TSAN_FIBERS)
    carrier.main_tsan = __tsan_get_current_fiber();
#endif
#if defined(LOL_ASAN_FIBERS)
    carrier_stack_bounds(carrier);
#endif
    for (int i = 0; i < count; ++i) block[i].carrier = &carrier;
    Carrier* prev = tls_carrier;
    tls_carrier = &carrier;

    int live = count;
#if LOL_OBS_RUNTIME_METRICS
    std::uint64_t switches = 0;
#endif
    while (live > 0) {
      const std::uint64_t pass_epoch = ec.prepare_wait();
      bool all_blocked = true;
      for (int i = 0; i < count; ++i) {
        Fiber& f = block[i];
        if (f.done || f.map_base == nullptr) continue;
        switch_to_fiber(carrier, f);
#if LOL_OBS_RUNTIME_METRICS
        ++switches;
#endif
        if (f.done) {
          destroy_fiber(f);
          --live;
          all_blocked = false;
        } else if (!f.blocked) {
          all_blocked = false;
        }
      }
      // Every resident PE is blocked: sleep until something notifies
      // the runtime's eventcount or the bounded poll interval elapses
      // (input sources deliver silently, so no indefinite sleep).
      if (live > 0 && all_blocked) {
        ec.wait_for_usec(pass_epoch, kIdleWait.count());
      }
    }

#if LOL_OBS_RUNTIME_METRICS
    // One atomic add per carrier per launch, covering both the asm and
    // ucontext switch paths (every switch funnels through this loop).
    static obs::Counter& fiber_switches = obs::Registry::global().counter(
        "lol_fiber_switches_total",
        "Carrier-to-fiber context switches performed by the fiber executor");
    fiber_switches.inc(switches);
#endif

    tls_carrier = prev;
  }

  int pes_per_thread_;
};

ExecutorPtr make_fiber_executor(int pes_per_thread) {
  return std::make_shared<FiberExecutor>(pes_per_thread);
}

bool fiber_executor_available() { return true; }

}  // namespace lol::shmem

#else  // _WIN32

namespace lol::shmem {
ExecutorPtr make_fiber_executor(int) { return nullptr; }
bool fiber_executor_available() { return false; }
}  // namespace lol::shmem

#endif

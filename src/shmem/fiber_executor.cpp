// FiberExecutor — K virtual PEs per OS thread on ucontext coroutines.
//
// Each launch partitions its N PEs into contiguous blocks over C carrier
// threads (C = ceil(N / pes_per_thread), capped at N). A carrier gives
// every resident PE its own stack (mmap'd with a low guard page, so the
// pages are committed lazily and an overflow faults instead of
// corrupting a neighbor) and round-robins them cooperatively:
//
//   * a PE that cannot make progress — barrier not released, lock held,
//     GIMMEH input not there yet — calls PeExecutor::wait(), which
//     swapcontexts back to the carrier marked *blocked*
//   * a PE in a compute loop calls preempt() from the step-budget poll
//     (every ExecContext::kAbortPollPeriod steps), which yields marked
//     *runnable* — so spin-waits on symmetric memory still make
//     progress when their peer shares the carrier
//   * when one full pass finds every resident PE blocked and the
//     executor's eventcount epoch unchanged, the carrier sleeps on the
//     eventcount (bounded, so input arrival — which notifies nobody —
//     is still picked up promptly); barrier releases, lock clears and
//     aborts notify_all() and wake it immediately
//
// Under ThreadSanitizer and AddressSanitizer the switches are annotated
// with the sanitizer fiber APIs (__tsan_switch_to_fiber /
// __sanitizer_start_switch_fiber), so the CI fiber-axis jobs check real
// races instead of drowning in stack-switch false positives.
#include "shmem/executor.hpp"

#if !defined(_WIN32)

#include <pthread.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "support/error.hpp"

#if defined(__SANITIZE_THREAD__)
#define LOL_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LOL_TSAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define LOL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LOL_ASAN_FIBERS 1
#endif
#endif

#if defined(LOL_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif
#if defined(LOL_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace lol::shmem {

class FiberExecutor;

namespace {

/// Usable stack per fiber (a guard page is added below). Matches the
/// default pthread stack so deep interpreter recursion behaves the same
/// on both executors; pages are only committed as they are touched.
constexpr std::size_t kFiberStackBytes = 8u << 20;

/// How long an idle carrier (every resident PE blocked) sleeps before
/// re-polling. Bounds GIMMEH latency for input sources that cannot
/// notify the eventcount.
constexpr std::chrono::microseconds kIdleWait{500};

struct Carrier;

struct Fiber {
  ucontext_t ctx{};
  std::byte* map_base = nullptr;  // mmap base (guard page + stack)
  std::size_t map_bytes = 0;
  int pe = -1;
  bool done = false;
  bool blocked = false;  // last yield was a blocking wait
  Carrier* carrier = nullptr;
#if defined(LOL_TSAN_FIBERS)
  void* tsan = nullptr;
#endif
#if defined(LOL_ASAN_FIBERS)
  void* fake_stack = nullptr;  // saved when this fiber switches away
#endif
};

/// The carrier thread running one block of fibers; reachable from
/// inside a fiber through the thread-local below.
struct Carrier {
  EventCount* ec = nullptr;  // the launching Runtime's eventcount
  const std::function<void(int)>* body = nullptr;
  ucontext_t main_ctx{};
  Fiber* current = nullptr;
#if defined(LOL_TSAN_FIBERS)
  void* main_tsan = nullptr;
#endif
#if defined(LOL_ASAN_FIBERS)
  void* main_fake_stack = nullptr;
  const void* main_stack_bottom = nullptr;
  std::size_t main_stack_size = 0;
#endif
};

thread_local Carrier* tls_carrier = nullptr;

std::size_t page_size() {
  static const std::size_t ps =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

#if defined(LOL_ASAN_FIBERS)
/// The carrier thread's own stack bounds, needed to re-enter it.
void carrier_stack_bounds(Carrier& c) {
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  pthread_attr_getstack(&attr, &addr, &size);
  pthread_attr_destroy(&attr);
  c.main_stack_bottom = addr;
  c.main_stack_size = size;
}
#endif

/// Switches from the carrier's main context into fiber `f`.
void switch_to_fiber(Carrier& c, Fiber& f) {
  c.current = &f;
#if defined(LOL_TSAN_FIBERS)
  __tsan_switch_to_fiber(f.tsan, 0);
#endif
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&c.main_fake_stack,
                                 f.map_base + page_size(), kFiberStackBytes);
#endif
  swapcontext(&c.main_ctx, &f.ctx);
  // Back on the carrier.
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(c.main_fake_stack, nullptr, nullptr);
#endif
  c.current = nullptr;
}

/// Switches from the running fiber back to its carrier. `dying` frees
/// the sanitizer bookkeeping for a fiber that will never resume.
void switch_to_main(Fiber& f, bool dying) {
  Carrier& c = *f.carrier;
#if defined(LOL_TSAN_FIBERS)
  __tsan_switch_to_fiber(c.main_tsan, 0);
#endif
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(dying ? nullptr : &f.fake_stack,
                                 c.main_stack_bottom, c.main_stack_size);
#else
  (void)dying;
#endif
  swapcontext(&f.ctx, &c.main_ctx);
  // Resumed by a later switch_to_fiber.
#if defined(LOL_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

/// makecontext only passes ints; a 64-bit pointer rides in two halves.
extern "C" void lol_fiber_trampoline(unsigned hi, unsigned lo) {
  auto addr = (static_cast<std::uintptr_t>(hi) << 32) |
              static_cast<std::uintptr_t>(lo);
  Fiber* f = reinterpret_cast<Fiber*>(addr);
#if defined(LOL_ASAN_FIBERS)
  // First entry: this context never switched away, so there is no saved
  // fake stack to restore.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  (*f->carrier->body)(f->pe);
  f->done = true;
  switch_to_main(*f, /*dying=*/true);
  // Unreachable: a done fiber is never resumed.
}

/// Maps the stack and prepares the context. Runs on the *launching*
/// thread, before any carrier exists: a failure here must surface as an
/// ordinary launch error, never as an uncaught exception on a carrier
/// std::thread (which would terminate the process). ucontexts are
/// thread-agnostic — building one here and first swapping to it on a
/// carrier is fine.
void make_fiber(Fiber& f) {
  const std::size_t ps = page_size();
  f.map_bytes = kFiberStackBytes + ps;
  void* base = ::mmap(nullptr, f.map_bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    throw lol::support::RuntimeError(
        "fiber executor: cannot map a stack for PE " + std::to_string(f.pe) +
        " (lower n_pes, or raise the address-space limit)");
  }
  f.map_base = static_cast<std::byte*>(base);
  ::mprotect(f.map_base, ps, PROT_NONE);  // stacks grow down into the guard
  getcontext(&f.ctx);
  f.ctx.uc_stack.ss_sp = f.map_base + ps;
  f.ctx.uc_stack.ss_size = kFiberStackBytes;
  f.ctx.uc_link = nullptr;  // fibers exit via switch_to_main, never uc_link
  auto addr = reinterpret_cast<std::uintptr_t>(&f);
  makecontext(&f.ctx, reinterpret_cast<void (*)()>(lol_fiber_trampoline), 2,
              static_cast<unsigned>(addr >> 32),
              static_cast<unsigned>(addr & 0xFFFFFFFFu));
#if defined(LOL_TSAN_FIBERS)
  f.tsan = __tsan_create_fiber(0);
#endif
}

void destroy_fiber(Fiber& f) {
#if defined(LOL_TSAN_FIBERS)
  if (f.tsan != nullptr) __tsan_destroy_fiber(f.tsan);
  f.tsan = nullptr;
#endif
  if (f.map_base != nullptr) ::munmap(f.map_base, f.map_bytes);
  f.map_base = nullptr;
}

}  // namespace

class FiberExecutor final : public PeExecutor {
 public:
  explicit FiberExecutor(int pes_per_thread)
      : pes_per_thread_(pes_per_thread) {}

  [[nodiscard]] const char* name() const override { return "fiber"; }
  [[nodiscard]] bool cooperative() const override { return true; }

  void run_gang(int n, const std::function<void(int)>& body,
                EventCount& ec) override {
    int per = pes_per_thread_;
    if (per <= 0) {
      // Auto: spread the gang over the hardware threads.
      int hw = static_cast<int>(std::thread::hardware_concurrency());
      if (hw < 1) hw = 1;
      per = (n + hw - 1) / hw;
    }
    const int carriers = (n + per - 1) / per;

    // Allocate every stack up front, on this thread: an mmap failure
    // (RLIMIT_AS, cgroup pressure) throws support::RuntimeError out of
    // the launch like any other resource error, instead of escaping a
    // carrier std::thread and terminating the process.
    std::vector<Fiber> fibers(static_cast<std::size_t>(n));
    try {
      for (int pe = 0; pe < n; ++pe) {
        fibers[static_cast<std::size_t>(pe)].pe = pe;
        make_fiber(fibers[static_cast<std::size_t>(pe)]);
      }
    } catch (...) {
      for (Fiber& f : fibers) destroy_fiber(f);
      throw;
    }

    if (carriers == 1) {
      carrier_main(body, ec, fibers.data(), n);
      return;
    }
    // Carriers start behind a gate: a spawn failure mid-loop must fail
    // the launch cleanly (see StartGate), not terminate the process or
    // leave early carriers' PEs wedged in a barrier waiting for PEs
    // whose carrier never came to exist.
    StartGate gate;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(carriers - 1));
    try {
      for (int c = 1; c < carriers; ++c) {
        int lo = c * per;
        int hi = std::min(n, lo + per);
        threads.emplace_back([this, &gate, &body, &ec, &fibers, lo, hi] {
          if (gate.wait_for_go()) {
            carrier_main(body, ec, fibers.data() + lo, hi - lo);
          }
        });
      }
    } catch (const std::exception& e) {
      gate.release(2);
      for (auto& t : threads) t.join();
      for (Fiber& f : fibers) destroy_fiber(f);
      throw lol::support::RuntimeError(
          std::string("fiber executor: cannot spawn carrier threads (") +
          e.what() + "); raise pes_per_thread to use fewer carriers");
    }
    gate.release(1);
    carrier_main(body, ec, fibers.data(), std::min(n, per));
    for (auto& t : threads) t.join();
  }

  void wait(EventCount& ec, int /*pe*/, std::uint64_t epoch) override {
    Carrier* c = tls_carrier;
    if (c != nullptr && c->current != nullptr) {
      c->current->blocked = true;
      switch_to_main(*c->current, /*dying=*/false);
      return;
    }
    ec.wait(epoch);  // not on a carrier: fall back to the cv
  }

  void preempt(int /*pe*/) override {
    Carrier* c = tls_carrier;
    if (c == nullptr || c->current == nullptr) return;
    c->current->blocked = false;
    switch_to_main(*c->current, /*dying=*/false);
  }

 private:
  /// Runs the `count` pre-built fibers starting at `block` on the
  /// calling thread.
  void carrier_main(const std::function<void(int)>& body, EventCount& ec,
                    Fiber* block, int count) {
    Carrier carrier;
    carrier.ec = &ec;
    carrier.body = &body;
#if defined(LOL_TSAN_FIBERS)
    carrier.main_tsan = __tsan_get_current_fiber();
#endif
#if defined(LOL_ASAN_FIBERS)
    carrier_stack_bounds(carrier);
#endif
    for (int i = 0; i < count; ++i) block[i].carrier = &carrier;
    Carrier* prev = tls_carrier;
    tls_carrier = &carrier;

    int live = count;
    while (live > 0) {
      const std::uint64_t pass_epoch = ec.prepare_wait();
      bool all_blocked = true;
      for (int i = 0; i < count; ++i) {
        Fiber& f = block[i];
        if (f.done || f.map_base == nullptr) continue;
        switch_to_fiber(carrier, f);
        if (f.done) {
          destroy_fiber(f);
          --live;
          all_blocked = false;
        } else if (!f.blocked) {
          all_blocked = false;
        }
      }
      // Every resident PE is blocked: sleep until something notifies
      // the runtime's eventcount or the bounded poll interval elapses
      // (input sources deliver silently, so no indefinite sleep).
      if (live > 0 && all_blocked) {
        ec.wait_for_usec(pass_epoch, kIdleWait.count());
      }
    }

    tls_carrier = prev;
  }

  int pes_per_thread_;
};

ExecutorPtr make_fiber_executor(int pes_per_thread) {
  return std::make_shared<FiberExecutor>(pes_per_thread);
}

bool fiber_executor_available() { return true; }

}  // namespace lol::shmem

#else  // _WIN32

namespace lol::shmem {
ExecutorPtr make_fiber_executor(int) { return nullptr; }
bool fiber_executor_available() { return false; }
}  // namespace lol::shmem

#endif

// An OpenSHMEM-like SPMD runtime with pluggable PE executors.
//
// This is the substrate the paper's language extensions compile onto.
// The paper uses a real OpenSHMEM library (ARL's Epiphany implementation
// on the Parallella; Cray SHMEM on the XC40); we reproduce the subset its
// backend needs, in-process:
//
//   * N processing elements (PEs) running the same function (SPMD), each
//     with a private *symmetric heap* arena. How PEs map onto OS threads
//     is a PeExecutor strategy (shmem/executor.hpp): thread-per-PE, a
//     persistent pool, or fibers multiplexing many virtual PEs per core
//   * collective, deterministic symmetric allocation: every PE performs
//     the same shmalloc sequence, so an object has the same offset on
//     every PE — exactly the property OpenSHMEM symmetric objects have —
//     and remote addressing works by (target_pe, offset)
//   * one-sided put/get between arenas. Transfers are performed with
//     relaxed word-atomic accesses: concurrent conflicting transfers can
//     tear (as on real hardware) but are not undefined behaviour, which
//     lets the Figure-2 "races without barriers" experiment run cleanly
//   * barrier_all, global exclusive locks (shmem_set/test/clear_lock),
//     64-bit fetch-add atomics, and allreduce/broadcast collectives.
//     Barriers and collectives cross a combining tree of configurable
//     radix (one crossing per collective, log-depth critical path),
//     with results byte-identical across executors and radices
//   * optional simulated time: when a noc::MachineModel is configured,
//     every remote operation charges the calling PE its modeled cost, so
//     benches can compare Epiphany-mesh vs XC40 behaviour deterministically
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "noc/model.hpp"
#include "obs/profile.hpp"
#include "shmem/executor.hpp"
#include "shmem/schedule_hook.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"

namespace lol::shmem {

/// Runtime configuration.
struct Config {
  int n_pes = 1;
  std::size_t heap_bytes = 1 << 20;  // symmetric heap per PE
  int n_locks = 0;                   // global locks (IM SHARIN IT)
  noc::ModelPtr model;               // null => no simulated-time accounting
  ExecutorPtr executor;              // null => builtin thread-per-PE

  /// Fan-in of the combining-tree barrier (and of the tree collectives
  /// built on it). Values below 2 mean "auto" (a radix tuned for wide
  /// gangs). The radix changes contention and modeled tree depth, never
  /// results: collectives combine in a fixed canonical order.
  int barrier_radix = 0;

  /// Sample wall-clock wait times (barrier park, lock spin) into each
  /// PE's obs::PeProfile. Event counts are always collected; the clock
  /// reads are opt-in because they are not free at high PE counts.
  bool profile = false;

  /// Scheduling choice-point hook (shmem/schedule_hook.hpp). When set,
  /// the launch is serialized on an execution token the hook hands out —
  /// deterministic record/replay mode. Not owned; must outlive the
  /// launch. Null (the default) = free-running.
  ScheduleHook* schedule = nullptr;
};

class Runtime;

/// Per-PE handle: the view of the runtime a single SPMD thread uses.
/// Not thread-safe across PEs by design — each thread owns exactly one Pe.
class Pe {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int n_pes() const;
  [[nodiscard]] Runtime& runtime() { return *rt_; }

  // -- symmetric allocation -------------------------------------------------

  /// Collective bump allocation: all PEs must call shmalloc in the same
  /// order with the same sizes; the returned offset is then identical on
  /// every PE. 8-byte aligned. Throws RuntimeError on heap exhaustion.
  std::size_t shmalloc(std::size_t bytes);

  /// Address of `offset` within this PE's own arena.
  [[nodiscard]] std::byte* local_addr(std::size_t offset);

  // -- one-sided remote memory access ---------------------------------------

  /// Writes `n` bytes from local `src` into PE `target`'s arena at
  /// `offset`. Charges modeled put cost to this PE.
  void put(int target, std::size_t offset, const void* src, std::size_t n);

  /// Reads `n` bytes from PE `target`'s arena at `offset` into `dst`.
  /// Charges modeled get cost to this PE.
  void get(void* dst, int target, std::size_t offset, std::size_t n);

  /// 64-bit scalar conveniences.
  void put_i64(int target, std::size_t offset, std::int64_t v);
  [[nodiscard]] std::int64_t get_i64(int target, std::size_t offset);
  void put_f64(int target, std::size_t offset, double v);
  [[nodiscard]] double get_f64(int target, std::size_t offset);

  /// Atomic fetch-add on a remote (or local) 64-bit symmetric word.
  std::int64_t atomic_fetch_add_i64(int target, std::size_t offset,
                                    std::int64_t delta);

  // -- synchronization -------------------------------------------------------

  /// Collective barrier over all PEs (shmem_barrier_all / HUGZ).
  void barrier_all();

  /// Blocking acquire of global lock `lock_id` (shmem_set_lock /
  /// IM SRSLY MESIN WIF). Non-recursive: re-acquiring a held lock throws.
  void set_lock(int lock_id);

  /// Non-blocking acquire (shmem_test_lock / IM MESIN WIF). Returns true
  /// when the lock was acquired.
  bool test_lock(int lock_id);

  /// Release (shmem_clear_lock / DUN MESIN WIF). Throws when this PE does
  /// not hold the lock.
  void clear_lock(int lock_id);

  // -- collectives ------------------------------------------------------------

  std::int64_t all_reduce_sum_i64(std::int64_t v);
  double all_reduce_sum_f64(double v);
  std::int64_t all_reduce_max_i64(std::int64_t v);
  double all_reduce_max_f64(double v);
  std::int64_t broadcast_i64(std::int64_t v, int root);

  // -- simulated time ----------------------------------------------------------

  /// Simulated nanoseconds accumulated by this PE (0 when no model).
  [[nodiscard]] double sim_ns() const { return sim_ns_; }

  /// Charges raw simulated time (used by backends to model compute).
  void charge_ns(double ns) { sim_ns_ += ns; }

  /// Charges the model's local-access cost for `bytes`.
  void charge_local(std::size_t bytes);

  // -- per-PE deterministic RNG seed support ------------------------------------

  /// An arbitrary per-launch, per-PE stable tag backends may use.
  [[nodiscard]] std::uint64_t launch_seed() const { return launch_seed_; }

  // -- per-PE profiling ---------------------------------------------------------

  /// Plain counters owned by the thread/fiber running this PE; backends
  /// bump them directly (steps, GIMMEH blocks) and the runtime adds
  /// barrier/lock events. Aggregated into LaunchResult after the gang
  /// joins — never read concurrently with the PE running.
  [[nodiscard]] obs::PeProfile& profile() { return prof_; }
  [[nodiscard]] const obs::PeProfile& profile() const { return prof_; }

 private:
  friend class Runtime;
  Runtime* rt_ = nullptr;
  int id_ = -1;
  std::size_t bump_ = 0;
  double sim_ns_ = 0.0;
  std::uint64_t launch_seed_ = 0;
  obs::PeProfile prof_;

  void check_target(int target) const;
  void check_range(std::size_t offset, std::size_t n) const;
};

/// Outcome of one SPMD launch.
struct LaunchResult {
  bool ok = true;
  /// Per-PE error message; empty string when that PE succeeded.
  std::vector<std::string> errors;
  /// Per-PE simulated time (ns); zeros when no machine model configured.
  std::vector<double> sim_ns;
  /// Per-PE runtime profiles (steps filled in by the backend; barrier
  /// and lock event counts always valid; *_wait_ns only populated when
  /// Config::profile was set).
  std::vector<obs::PeProfile> profiles;
  /// Milliseconds from launch() entry until the first PE body started
  /// (executor claim + gang setup), and from then until the gang joined.
  double claim_ms = 0.0;
  double exec_ms = 0.0;

  /// First non-empty error, preferring a root cause over the "SPMD
  /// aborted ..." collateral reported by peers the abort woke up.
  [[nodiscard]] std::string first_error() const {
    return support::first_root_error(errors);
  }
  /// Maximum simulated time across PEs — the modeled wall-clock.
  [[nodiscard]] double max_sim_ns() const {
    double m = 0.0;
    for (double v : sim_ns) m = v > m ? v : m;
    return m;
  }
};

/// The shared SPMD runtime: owns the arenas, the barrier, the locks and
/// the collective scratch space. One Runtime can perform many launches;
/// state is reset at the start of each launch.
class Runtime {
 public:
  explicit Runtime(Config cfg);

  /// Runs `fn` on n_pes PEs (SPMD) via the configured executor —
  /// thread-per-PE by default, a persistent pool or fiber carriers when
  /// Config::executor says so. Exceptions thrown by a PE are captured
  /// into the result; peers blocked in barriers/locks are woken and
  /// abort with "SPMD aborted" errors so a failing PE cannot deadlock
  /// the launch.
  LaunchResult launch(const std::function<void(Pe&)>& fn);

  [[nodiscard]] int n_pes() const { return cfg_.n_pes; }
  [[nodiscard]] std::size_t heap_bytes() const { return cfg_.heap_bytes; }
  [[nodiscard]] int n_locks() const { return cfg_.n_locks; }
  /// The resolved combining-tree fan-in (auto already applied).
  [[nodiscard]] int barrier_radix() const { return radix_; }
  /// Tree depth: how many combining levels one crossing climbs.
  [[nodiscard]] int barrier_levels() const {
    return static_cast<int>(level_off_.size());
  }
  [[nodiscard]] const noc::MachineModel* model() const {
    return cfg_.model.get();
  }

  /// The executor scheduling the current launch (the configured one, or
  /// the builtin thread-per-PE executor).
  [[nodiscard]] PeExecutor& scheduler() {
    PeExecutor* s = sched_.load(std::memory_order_acquire);
    return s != nullptr ? *s : thread_per_pe_executor();
  }

  // -- the cooperative blocking protocol ------------------------------------
  // Blocking primitives — the barrier, locks, and the abort-aware polls
  // in rt::ExecContext — wait through this runtime's own eventcount via
  // the executor, so virtual PEs yield their carrier instead of parking
  // the OS thread, and concurrent jobs sharing one executor never
  // contend on a process-global rendezvous.

  /// Epoch snapshot; take before re-checking the awaited condition.
  [[nodiscard]] std::uint64_t prepare_wait() const {
    return ec_.prepare_wait();
  }
  /// Blocks PE `pe` until notify_waiters() bumps the epoch past the
  /// snapshot (fiber executor: yields the carrier instead).
  void wait(int pe, std::uint64_t epoch) {
    scheduler().wait(ec_, pe, epoch);
  }
  /// Wakes every PE blocked in wait(). Also tells the schedule hook (if
  /// any) that an awaited condition may have changed, so parked PEs
  /// become schedulable again.
  void notify_waiters() {
    if (cfg_.schedule != nullptr) cfg_.schedule->on_notify();
    ec_.notify_all();
  }
  /// Plain eventcount wake without the schedule-hook signal — used by
  /// the hook itself to hand the token over (going through on_notify
  /// would re-ready PEs it just parked).
  void wake_waiters() { ec_.notify_all(); }
  /// True when PEs are cooperatively multiplexed (see
  /// PeExecutor::cooperative).
  [[nodiscard]] bool cooperative_pes() {
    return scheduler().cooperative();
  }
  /// Cooperative time-slice point for compute loops.
  void preempt(int pe) { scheduler().preempt(pe); }

  /// The scheduling hook driving this runtime, or null (free-running).
  [[nodiscard]] ScheduleHook* schedule_hook() const { return cfg_.schedule; }
  /// Choice point: under a schedule hook, offer the execution token back
  /// and block until scheduled again; free of cost when no hook is set.
  void schedule_yield(int pe) {
    if (cfg_.schedule != nullptr) cfg_.schedule->yield(*this, pe);
  }

  /// Direct arena access (tests and the Figure-1 bench use this to verify
  /// symmetric layout).
  [[nodiscard]] std::byte* arena(int pe);

  /// Requests cooperative abort: wakes barrier waiters and lock spinners.
  void abort();
  [[nodiscard]] bool aborted() const {
    return abort_.load(std::memory_order_acquire);
  }

 private:
  friend class Pe;

  /// A global lock is an atomic owner cell, not a mutex: a fiber
  /// holding a std::mutex while a sibling fiber on the same OS thread
  /// try_locks it would be undefined behavior, and the CAS wait-queue
  /// lets waiters block through the executor's eventcount.
  struct GlobalLock {
    std::atomic<int> owner{-1};  // PE id, -1 when free
  };

  // -- the combining-tree barrier ------------------------------------------
  // One crossing serves both barrier_all and the collectives. PEs arrive
  // at padded per-group leaf nodes; the last arrival of each group (the
  // "winner") combines its children and ascends, so only ceil(n/radix)
  // PEs touch level 1, and exactly one PE reaches the root per
  // generation. The root winner publishes the release timestamp (and any
  // reduction result) into generation-parity slots, bumps the global
  // generation, and fans the release out through the per-Runtime
  // eventcount — the same wake path fibers, aborts and deadlines already
  // use, so wedged PEs stay killable at every tree position.

  /// What a tree crossing carries besides the rendezvous itself.
  enum class CollOp { kNone, kSumI64, kMaxI64, kSumF64, kMaxF64 };

  /// One combining node, alone on its cache line so leaf groups arrive
  /// on private lines instead of a single shared counter.
  struct alignas(64) TreeNode {
    std::atomic<int> count{0};  // arrivals this generation; winner resets
    // Winner-written partials; ordered by the arrival counter's acq_rel
    // chain, so plain fields are race-free. Only exactly-associative
    // (integer) reductions carry a value partial — f64 reductions fold
    // at the root in canonical order (see Runtime::fire_root).
    double combined_ns = 0.0;
    std::int64_t combined_i64 = 0;
  };

  /// Per-PE slot on its own line (barrier arrivals write sim_ns here).
  struct alignas(64) PeSlot {
    double ns = 0.0;
  };

  void reset_for_launch();
  void barrier(Pe& pe);
  void build_tree();
  /// Children of node `node_i` at `level` (ragged last group).
  [[nodiscard]] int child_count(int level, int node_i) const;
  /// Full crossing: arrive, climb as winner or wait, sync sim_ns.
  /// Returns this crossing's generation (selects the result slot).
  std::uint64_t cross(Pe& pe, CollOp op);
  void combine_node(int level, int node_i, int width, TreeNode& node,
                    CollOp op);
  void fire_root(std::uint64_t my_gen, CollOp op);

  Config cfg_;
  std::vector<std::vector<std::byte>> arenas_;

  int radix_ = 0;                    // resolved fan-in (>= 2)
  std::vector<int> level_width_;     // nodes per level; level 0 = leaves
  std::vector<int> level_off_;       // level start offsets into tree_
  std::unique_ptr<TreeNode[]> tree_; // all levels, contiguous
  std::unique_ptr<PeSlot[]> pe_ns_;  // per-PE sim_ns contribution

  std::atomic<std::uint64_t> bar_gen_{0};
  // Generation-parity result slots: written by the root winner of
  // generation g before the release store, read by g's waiters after it;
  // generation g+2 cannot fire before every PE exited g, so two slots
  // suffice (same invariant the pre-tree barrier relied on).
  double bar_release_ns_[2] = {0.0, 0.0};
  std::int64_t red_i64_[2] = {0, 0};
  double red_f64_[2] = {0.0, 0.0};
  std::int64_t bcast_i64_[2] = {0, 0};

  std::deque<GlobalLock> locks_;

  // Collective inputs (one slot per PE). Safe to overwrite on the next
  // crossing without a trailing barrier: every read of these happens
  // tree-side, strictly before the release that lets any PE advance.
  std::vector<std::int64_t> scratch_i64_;
  std::vector<double> scratch_f64_;

  std::atomic<bool> abort_{false};
  std::atomic<PeExecutor*> sched_{nullptr};  // non-null while a launch runs
  EventCount ec_;  // this runtime's blocking rendezvous (per-job, not global)
  std::uint64_t launch_counter_ = 0;
};

}  // namespace lol::shmem

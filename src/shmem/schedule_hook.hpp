// Scheduling choice-point hook for deterministic record/replay.
//
// A free-running SPMD launch has exactly five sources of run-to-run
// variation: barrier arrival order, lock acquisition order, GIMMEH read
// interleaving, the interleaving of one-sided put/get traffic, and which
// PE the executor starts first. A ScheduleHook turns every one of those
// into an explicit choice point: when a hook is installed the runtime
// serializes the gang on a single execution token — at most one PE runs
// between choice points — and asks the hook who runs next at each
// handoff. The token-handoff sequence then *is* the schedule: record it
// and a later run that enforces the same sequence reproduces the whole
// execution byte-for-byte, data races included, on any backend and any
// executor (the hook waits through the runtime's eventcount, so fibers
// yield their carriers exactly like they do in barriers).
//
// The cost is serialization; a hooked run is a debugging/testing mode,
// not a throughput mode. A null hook (the default) costs one predicted
// branch per choice point.
#pragma once

namespace lol::shmem {

class Runtime;

/// Consulted by the runtime at every scheduling choice point. All calls
/// except on_notify() are made by the PE named in the call, on its own
/// thread/fiber; on_notify() can come from any thread (abort included)
/// and must be safe to call concurrently.
class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;

  /// PE `pe`'s body is about to run. Blocks until the schedule gives it
  /// the token for the first time — so the hook, not the executor,
  /// decides the observable claim order.
  virtual void pe_start(Runtime& rt, int pe) = 0;

  /// PE `pe`'s body finished (normally or by exception). Releases the
  /// token if held. Must not throw.
  virtual void pe_exit(Runtime& rt, int pe) = 0;

  /// Choice point: the running PE offers the token back and blocks until
  /// it is scheduled again. The PE stays runnable (use for put/get, lock
  /// attempts, RNG draws, GIMMEH polls, barrier arrival).
  virtual void yield(Runtime& rt, int pe) = 0;

  /// Like yield(), but the PE is parked — not schedulable until the next
  /// on_notify() (use inside condition-wait loops: barrier losers, lock
  /// waiters). The caller re-checks its condition when this returns.
  virtual void blocked(Runtime& rt, int pe) = 0;

  /// Some awaited condition may have changed (lock released, barrier
  /// generation bumped, abort requested): parked PEs become runnable.
  virtual void on_notify() = 0;
};

}  // namespace lol::shmem

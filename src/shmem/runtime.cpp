#include "shmem/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"

namespace lol::shmem {

using support::RuntimeError;

namespace {

constexpr std::size_t kAlign = 8;

#if LOL_OBS_RUNTIME_METRICS
/// Process-wide runtime counters, resolved once: after the first call an
/// update is a single relaxed fetch_add on a private cache line.
struct RtMetrics {
  obs::Counter& barrier_crossings;
  obs::Counter& lock_acquisitions;
  obs::Counter& lock_contended;
  obs::Gauge& tree_levels;
  RtMetrics()
      : barrier_crossings(obs::Registry::global().counter(
            "lol_barrier_crossings_total",
            "Whole-gang combining-tree crossings (barriers + collectives)")),
        lock_acquisitions(obs::Registry::global().counter(
            "lol_lock_acquisitions_total",
            "Global symmetric lock acquisitions (set_lock and won test_lock)")),
        lock_contended(obs::Registry::global().counter(
            "lol_lock_contended_total",
            "Lock acquisitions that found the lock held and had to wait")),
        tree_levels(obs::Registry::global().gauge(
            "lol_barrier_tree_levels",
            "Combining-tree depth of the most recently built runtime")) {}
};

RtMetrics& rt_metrics() {
  static RtMetrics m;
  return m;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

/// Relaxed word-atomic copy *into* an arena. Tears at word granularity
/// under races (like real one-sided hardware) but is never UB.
void arena_write(std::byte* dst, const void* src, std::size_t n) {
  const auto* s = static_cast<const std::byte*>(src);
  auto dst_addr = reinterpret_cast<std::uintptr_t>(dst);
  while (n >= 8 && (dst_addr % 8) == 0) {
    std::uint64_t word;
    std::memcpy(&word, s, 8);
    std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(dst))
        .store(word, std::memory_order_relaxed);
    dst += 8;
    dst_addr += 8;
    s += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::atomic_ref<std::uint8_t>(*reinterpret_cast<std::uint8_t*>(dst + i))
        .store(static_cast<std::uint8_t>(s[i]), std::memory_order_relaxed);
  }
}

/// Relaxed word-atomic copy *out of* an arena.
void arena_read(void* dst, const std::byte* src, std::size_t n) {
  auto* d = static_cast<std::byte*>(dst);
  auto src_addr = reinterpret_cast<std::uintptr_t>(src);
  while (n >= 8 && (src_addr % 8) == 0) {
    std::uint64_t word =
        std::atomic_ref<const std::uint64_t>(
            *reinterpret_cast<const std::uint64_t*>(src))
            .load(std::memory_order_relaxed);
    std::memcpy(d, &word, 8);
    src += 8;
    src_addr += 8;
    d += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = static_cast<std::byte>(
        std::atomic_ref<const std::uint8_t>(
            *reinterpret_cast<const std::uint8_t*>(src + i))
            .load(std::memory_order_relaxed));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pe
// ---------------------------------------------------------------------------

int Pe::n_pes() const { return rt_->n_pes(); }

void Pe::check_target(int target) const {
  if (target < 0 || target >= rt_->n_pes()) {
    throw RuntimeError("remote PE " + std::to_string(target) +
                       " is out of range (MAH FRENZ = " +
                       std::to_string(rt_->n_pes()) + ")");
  }
}

void Pe::check_range(std::size_t offset, std::size_t n) const {
  if (offset + n > rt_->heap_bytes() || offset + n < offset) {
    throw RuntimeError("symmetric access [" + std::to_string(offset) + ", " +
                       std::to_string(offset + n) +
                       ") exceeds the symmetric heap (" +
                       std::to_string(rt_->heap_bytes()) + " bytes)");
  }
}

std::size_t Pe::shmalloc(std::size_t bytes) {
  std::size_t rounded = (bytes + kAlign - 1) & ~(kAlign - 1);
  if (bump_ + rounded > rt_->heap_bytes()) {
    throw RuntimeError(
        "symmetric heap exhausted: need " + std::to_string(rounded) +
        " more bytes, " + std::to_string(rt_->heap_bytes() - bump_) +
        " available (configure a larger heap)");
  }
  std::size_t off = bump_;
  bump_ += rounded;
  return off;
}

std::byte* Pe::local_addr(std::size_t offset) {
  return rt_->arena(id_) + offset;
}

void Pe::put(int target, std::size_t offset, const void* src, std::size_t n) {
  rt_->schedule_yield(id_);
  check_target(target);
  check_range(offset, n);
  arena_write(rt_->arena(target) + offset, src, n);
  if (const auto* m = rt_->model()) sim_ns_ += m->put_ns(id_, target, n);
}

void Pe::get(void* dst, int target, std::size_t offset, std::size_t n) {
  rt_->schedule_yield(id_);
  check_target(target);
  check_range(offset, n);
  arena_read(dst, rt_->arena(target) + offset, n);
  if (const auto* m = rt_->model()) sim_ns_ += m->get_ns(id_, target, n);
}

void Pe::put_i64(int target, std::size_t offset, std::int64_t v) {
  put(target, offset, &v, sizeof v);
}

std::int64_t Pe::get_i64(int target, std::size_t offset) {
  std::int64_t v;
  get(&v, target, offset, sizeof v);
  return v;
}

void Pe::put_f64(int target, std::size_t offset, double v) {
  put(target, offset, &v, sizeof v);
}

double Pe::get_f64(int target, std::size_t offset) {
  double v;
  get(&v, target, offset, sizeof v);
  return v;
}

std::int64_t Pe::atomic_fetch_add_i64(int target, std::size_t offset,
                                      std::int64_t delta) {
  rt_->schedule_yield(id_);
  check_target(target);
  check_range(offset, sizeof(std::int64_t));
  auto* word =
      reinterpret_cast<std::int64_t*>(rt_->arena(target) + offset);
  std::int64_t old = std::atomic_ref<std::int64_t>(*word).fetch_add(
      delta, std::memory_order_acq_rel);
  if (const auto* m = rt_->model()) sim_ns_ += m->get_ns(id_, target, 8);
  return old;
}

void Pe::barrier_all() { rt_->barrier(*this); }

void Pe::set_lock(int lock_id) {
  if (lock_id < 0 || lock_id >= rt_->n_locks()) {
    throw RuntimeError("lock id " + std::to_string(lock_id) +
                       " is out of range");
  }
  auto& lock = rt_->locks_[static_cast<std::size_t>(lock_id)];
  if (lock.owner.load(std::memory_order_acquire) == id_) {
    throw RuntimeError("PE " + std::to_string(id_) +
                       " already holds this lock (IM SRSLY MESIN WIF is not "
                       "recursive)");
  }
  rt_->schedule_yield(id_);
  // Eventcount-shaped acquire loop: block through the executor (a fiber
  // yields its carrier here) and stay abortable between attempts.
#if LOL_OBS_RUNTIME_METRICS
  ++prof_.lock_acquires;
  rt_metrics().lock_acquisitions.inc();
  bool contended = false;
  std::uint64_t t_wait0 = 0;
#endif
  for (;;) {
    std::uint64_t e = rt_->prepare_wait();
    int expected = -1;
    if (lock.owner.compare_exchange_strong(expected, id_,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      break;
    }
#if LOL_OBS_RUNTIME_METRICS
    if (!contended) {
      contended = true;
      ++prof_.lock_contended;
      rt_metrics().lock_contended.inc();
      if (rt_->cfg_.profile) t_wait0 = now_ns();
    }
#endif
    if (rt_->aborted()) {
      throw RuntimeError("SPMD aborted while waiting for lock");
    }
    if (auto* hook = rt_->schedule_hook()) {
      // Park until the owner's clear_lock() readies us, then retry the
      // CAS under the token — acquisition order follows the schedule.
      hook->blocked(*rt_, id_);
    } else {
      rt_->wait(id_, e);
    }
  }
#if LOL_OBS_RUNTIME_METRICS
  if (contended && rt_->cfg_.profile) {
    prof_.lock_wait_ns += now_ns() - t_wait0;
  }
#endif
  if (const auto* m = rt_->model()) {
    sim_ns_ += m->lock_ns(id_, lock_id % rt_->n_pes());
  }
}

bool Pe::test_lock(int lock_id) {
  if (lock_id < 0 || lock_id >= rt_->n_locks()) {
    throw RuntimeError("lock id " + std::to_string(lock_id) +
                       " is out of range");
  }
  auto& lock = rt_->locks_[static_cast<std::size_t>(lock_id)];
  if (lock.owner.load(std::memory_order_acquire) == id_) {
    throw RuntimeError("PE " + std::to_string(id_) +
                       " already holds this lock");
  }
  rt_->schedule_yield(id_);
  int expected = -1;
  bool got = lock.owner.compare_exchange_strong(expected, id_,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire);
#if LOL_OBS_RUNTIME_METRICS
  if (got) {
    ++prof_.lock_acquires;
    rt_metrics().lock_acquisitions.inc();
  }
#endif
  if (const auto* m = rt_->model()) {
    sim_ns_ += m->lock_ns(id_, lock_id % rt_->n_pes());
  }
  return got;
}

void Pe::clear_lock(int lock_id) {
  if (lock_id < 0 || lock_id >= rt_->n_locks()) {
    throw RuntimeError("lock id " + std::to_string(lock_id) +
                       " is out of range");
  }
  auto& lock = rt_->locks_[static_cast<std::size_t>(lock_id)];
  if (lock.owner.load(std::memory_order_acquire) != id_) {
    throw RuntimeError("PE " + std::to_string(id_) +
                       " releases a lock it does not hold (DUN MESIN WIF "
                       "without IM ... MESIN WIF)");
  }
  rt_->schedule_yield(id_);
  lock.owner.store(-1, std::memory_order_release);
  rt_->notify_waiters();
  if (const auto* m = rt_->model()) {
    sim_ns_ += m->lock_ns(id_, lock_id % rt_->n_pes());
  }
}

void Pe::charge_local(std::size_t bytes) {
  if (const auto* m = rt_->model()) sim_ns_ += m->local_ns(bytes);
}

// Collectives: one tree crossing each. The input goes into this PE's
// scratch slot before arrival; combining happens tree-side (winners
// only), and the result comes back through a generation-parity slot —
// no trailing barrier, half the rendezvous cost of the old
// barrier/scan/barrier shape, and a log-depth critical path.

std::int64_t Pe::all_reduce_sum_i64(std::int64_t v) {
  rt_->scratch_i64_[static_cast<std::size_t>(id_)] = v;
  std::uint64_t g = rt_->cross(*this, Runtime::CollOp::kSumI64);
  return rt_->red_i64_[g & 1];
}

double Pe::all_reduce_sum_f64(double v) {
  rt_->scratch_f64_[static_cast<std::size_t>(id_)] = v;
  std::uint64_t g = rt_->cross(*this, Runtime::CollOp::kSumF64);
  return rt_->red_f64_[g & 1];
}

std::int64_t Pe::all_reduce_max_i64(std::int64_t v) {
  rt_->scratch_i64_[static_cast<std::size_t>(id_)] = v;
  std::uint64_t g = rt_->cross(*this, Runtime::CollOp::kMaxI64);
  return rt_->red_i64_[g & 1];
}

double Pe::all_reduce_max_f64(double v) {
  rt_->scratch_f64_[static_cast<std::size_t>(id_)] = v;
  std::uint64_t g = rt_->cross(*this, Runtime::CollOp::kMaxF64);
  return rt_->red_f64_[g & 1];
}

std::int64_t Pe::broadcast_i64(std::int64_t v, int root) {
  check_target(root);
  if (id_ == root) {
    // Entering generation g is only possible after every PE exited g-2,
    // so the parity slot this writes cannot still be read by stragglers.
    std::uint64_t g = rt_->bar_gen_.load(std::memory_order_acquire);
    rt_->bcast_i64_[g & 1] = v;
  }
  std::uint64_t g = rt_->cross(*this, Runtime::CollOp::kNone);
  return rt_->bcast_i64_[g & 1];
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Config cfg) : cfg_(std::move(cfg)) {
  // 4096 matches the paper's largest machine (the 4,096-core Epiphany
  // cluster); counts beyond hardware threads want the fiber executor.
  if (cfg_.n_pes < 1 || cfg_.n_pes > 4096) {
    throw RuntimeError("n_pes must be in [1, 4096], got " +
                       std::to_string(cfg_.n_pes));
  }
  if (cfg_.heap_bytes % kAlign != 0) {
    cfg_.heap_bytes = (cfg_.heap_bytes + kAlign - 1) & ~(kAlign - 1);
  }
  arenas_.resize(static_cast<std::size_t>(cfg_.n_pes));
  for (auto& a : arenas_) a.resize(cfg_.heap_bytes);
  scratch_i64_.resize(static_cast<std::size_t>(cfg_.n_pes));
  scratch_f64_.resize(static_cast<std::size_t>(cfg_.n_pes));
  for (int i = 0; i < cfg_.n_locks; ++i) locks_.emplace_back();
  build_tree();
}

void Runtime::build_tree() {
  // Auto radix 8: groups stay narrow enough that a leaf line is shared
  // by few arrivals, while 4096 PEs still cross in 4 levels. Any
  // explicit radix >= 2 is honored (a radix >= n_pes degenerates to one
  // flat lock-free node — the shape benches compare the tree against).
  constexpr int kAutoRadix = 8;
  radix_ = cfg_.barrier_radix >= 2 ? cfg_.barrier_radix : kAutoRadix;
  // Clamp at the layer every entry point shares: a fan-in beyond n_pes
  // is already the one-flat-node tree, and an unclamped hostile value
  // (INT_MAX from a CLI flag) would overflow the width arithmetic.
  radix_ = std::min(radix_, std::max(2, cfg_.n_pes));
  level_width_.clear();
  level_off_.clear();
  int total = 0;
  int width = cfg_.n_pes;
  do {
    width = (width + radix_ - 1) / radix_;
    level_off_.push_back(total);
    level_width_.push_back(width);
    total += width;
  } while (width > 1);
  tree_ = std::make_unique<TreeNode[]>(static_cast<std::size_t>(total));
  pe_ns_ = std::make_unique<PeSlot[]>(static_cast<std::size_t>(cfg_.n_pes));
#if LOL_OBS_RUNTIME_METRICS
  rt_metrics().tree_levels.set(static_cast<std::int64_t>(level_off_.size()));
#endif
}

int Runtime::child_count(int level, int node_i) const {
  const int children =
      level == 0 ? cfg_.n_pes
                 : level_width_[static_cast<std::size_t>(level - 1)];
  const int lo = node_i * radix_;
  return std::min(children, lo + radix_) - lo;
}

std::byte* Runtime::arena(int pe) {
  return arenas_[static_cast<std::size_t>(pe)].data();
}

void Runtime::abort() {
  abort_.store(true, std::memory_order_release);
  // Wake everything parked in this runtime's eventcount (barrier
  // waiters, lock waiters, idle fiber carriers); the wait loops re-check
  // the abort flag and die.
  notify_waiters();
}

void Runtime::reset_for_launch() {
  abort_.store(false, std::memory_order_release);
  bar_gen_.store(0, std::memory_order_relaxed);
  bar_release_ns_[0] = bar_release_ns_[1] = 0.0;
  red_i64_[0] = red_i64_[1] = 0;
  red_f64_[0] = red_f64_[1] = 0.0;
  bcast_i64_[0] = bcast_i64_[1] = 0;
  // An aborted launch leaves partial arrivals in the tree; scrub them.
  const std::size_t nodes = static_cast<std::size_t>(
      level_off_.back() + level_width_.back());
  for (std::size_t i = 0; i < nodes; ++i) {
    tree_[i].count.store(0, std::memory_order_relaxed);
    tree_[i].combined_ns = 0.0;
    tree_[i].combined_i64 = 0;
  }
  for (int i = 0; i < cfg_.n_pes; ++i) pe_ns_[static_cast<std::size_t>(i)].ns = 0.0;
  // Owners are reset so a previous aborted launch cannot leave one held.
  for (auto& lock : locks_) lock.owner.store(-1, std::memory_order_relaxed);
  for (auto& a : arenas_) std::fill(a.begin(), a.end(), std::byte{0});
  std::fill(scratch_i64_.begin(), scratch_i64_.end(), 0);
  std::fill(scratch_f64_.begin(), scratch_f64_.end(), 0.0);
  ++launch_counter_;
}

void Runtime::barrier(Pe& pe) { (void)cross(pe, CollOp::kNone); }

void Runtime::combine_node(int level, int node_i, int width, TreeNode& node,
                           CollOp op) {
  const int lo = node_i * radix_;
  // Child accessors: leaf children are PEs (scratch/pe_ns slots),
  // interior children are the nodes of the level below.
  const TreeNode* kids =
      level == 0 ? nullptr
                 : tree_.get() + level_off_[static_cast<std::size_t>(level - 1)];
  if (cfg_.model != nullptr) {
    double max_ns = 0.0;
    for (int c = lo; c < lo + width; ++c) {
      double v = level == 0 ? pe_ns_[static_cast<std::size_t>(c)].ns
                            : kids[c].combined_ns;
      max_ns = std::max(max_ns, v);
    }
    node.combined_ns = max_ns;
  }
  // Value combining happens in fixed left-to-right child order, so the
  // partials are deterministic for any arrival interleaving. Only the
  // integer ops combine up the tree: they are exactly associative, so
  // any bracketing — i.e. any radix — produces identical bytes. The
  // f64 ops are not (sum re-brackets rounding; max is order-sensitive
  // for NaN and ±0.0 inputs), so kSumF64/kMaxF64 skip the tree and the
  // root folds the scratch array in canonical index order instead —
  // byte-identical to the historical linear scan, whatever the radix.
  switch (op) {
    case CollOp::kSumI64: {
      std::int64_t acc = 0;
      for (int c = lo; c < lo + width; ++c) {
        acc += level == 0 ? scratch_i64_[static_cast<std::size_t>(c)]
                          : kids[c].combined_i64;
      }
      node.combined_i64 = acc;
      break;
    }
    case CollOp::kMaxI64: {
      std::int64_t acc = level == 0 ? scratch_i64_[static_cast<std::size_t>(lo)]
                                    : kids[lo].combined_i64;
      for (int c = lo + 1; c < lo + width; ++c) {
        std::int64_t v = level == 0 ? scratch_i64_[static_cast<std::size_t>(c)]
                                    : kids[c].combined_i64;
        acc = v > acc ? v : acc;
      }
      node.combined_i64 = acc;
      break;
    }
    case CollOp::kNone:
    case CollOp::kSumF64:
    case CollOp::kMaxF64:
      break;
  }
}

void Runtime::fire_root(std::uint64_t my_gen, CollOp op) {
  const TreeNode& root = tree_[static_cast<std::size_t>(level_off_.back())];
  double release = root.combined_ns;
  if (cfg_.model) {
    release += cfg_.model->tree_barrier_ns(cfg_.n_pes, radix_);
  }
  const std::size_t slot = my_gen & 1;
  switch (op) {
    case CollOp::kSumI64:
    case CollOp::kMaxI64:
      red_i64_[slot] = root.combined_i64;
      break;
    case CollOp::kSumF64: {
      // Canonical-order fold (see combine_node): O(n) loads once per
      // crossing, by the single PE that reached the root.
      double acc = scratch_f64_[0];
      for (int i = 1; i < cfg_.n_pes; ++i) {
        acc += scratch_f64_[static_cast<std::size_t>(i)];
      }
      red_f64_[slot] = acc;
      break;
    }
    case CollOp::kMaxF64: {
      // Same canonical fold: f64 max is order-sensitive for NaN and
      // ±0.0, so the tree must not re-bracket it either.
      double acc = scratch_f64_[0];
      for (int i = 1; i < cfg_.n_pes; ++i) {
        double v = scratch_f64_[static_cast<std::size_t>(i)];
        acc = v > acc ? v : acc;
      }
      red_f64_[slot] = acc;
      break;
    }
    case CollOp::kNone:
      break;
  }
  bar_release_ns_[slot] = release;
#if LOL_OBS_RUNTIME_METRICS
  // One increment per whole-gang crossing, by the single root winner —
  // the global counter costs nothing per PE.
  rt_metrics().barrier_crossings.inc();
#endif
  bar_gen_.store(my_gen + 1, std::memory_order_release);
  notify_waiters();
}

std::uint64_t Runtime::cross(Pe& pe, CollOp op) {
  // Barrier arrival is a recorded choice point: under a schedule hook
  // the token order fixes which PE climbs each tree node last (and so
  // which one wins the root and combines).
  schedule_yield(pe.id_);
  if (aborted()) throw RuntimeError("SPMD aborted while entering barrier");
  // Entering PEs always read their own crossing's generation: g cannot
  // advance to g+1 until every PE (this one included) has arrived.
  const std::uint64_t my_gen = bar_gen_.load(std::memory_order_acquire);
  // Simulated time is only accounted under a machine model; without one
  // the release timestamp stays 0 and PEs keep their own (zero) clocks,
  // so the hot path skips a padded store plus per-group scans per
  // crossing.
  const bool sim = cfg_.model != nullptr;
  if (sim) pe_ns_[static_cast<std::size_t>(pe.id_)].ns = pe.sim_ns_;
#if LOL_OBS_RUNTIME_METRICS
  ++pe.prof_.barrier_crossings;
#endif

  // Climb while this PE is the last arrival of each node. Winners never
  // block; losers fall through to the eventcount wait below. The
  // arrival fetch_add is acq_rel: it publishes this PE's scratch/ns
  // stores to the eventual winner and, for the winner, acquires every
  // sibling's stores — so the plain combined_* fields are ordered.
  int child = pe.id_;
  bool winner = true;
  const int levels = static_cast<int>(level_width_.size());
  for (int level = 0; level < levels; ++level) {
    const int node_i = child / radix_;
    TreeNode& node =
        tree_[static_cast<std::size_t>(level_off_[static_cast<std::size_t>(
                                           level)] +
                                       node_i)];
    const int width = child_count(level, node_i);
    if (node.count.fetch_add(1, std::memory_order_acq_rel) + 1 < width) {
      winner = false;
      break;
    }
    // Reset before ascending: the next use of this node is generation
    // g+1, which cannot start until g releases — after this store.
    node.count.store(0, std::memory_order_relaxed);
    combine_node(level, node_i, width, node, op);
    child = node_i;
  }

  if (winner) {
    fire_root(my_gen, op);
  } else {
    // Eventcount wait: fibers yield their carrier here, threads park;
    // abort()/deadline wakeups land on the same notify path as the
    // release, so a wedged PE dies whether it is a leaf waiter, a
    // mid-tree loser, or parked one arrival short of the root.
#if LOL_OBS_RUNTIME_METRICS
    const bool timed = cfg_.profile;
    const std::uint64_t t_wait0 = timed ? now_ns() : 0;
#endif
    for (;;) {
      std::uint64_t e = prepare_wait();
      if (bar_gen_.load(std::memory_order_acquire) != my_gen) break;
      if (aborted()) {
        throw RuntimeError("SPMD aborted while waiting in barrier (HUGZ)");
      }
      if (auto* hook = cfg_.schedule) {
        // Park: only the winner's release (notify_waiters -> on_notify)
        // makes losers schedulable again.
        hook->blocked(*this, pe.id_);
      } else {
        wait(pe.id_, e);
      }
    }
#if LOL_OBS_RUNTIME_METRICS
    if (timed) pe.prof_.barrier_wait_ns += now_ns() - t_wait0;
#endif
  }
  // Release timestamp broadcast: every PE leaves the crossing at the
  // same simulated instant (max across arrivals + modeled tree cost).
  if (sim) pe.sim_ns_ = bar_release_ns_[my_gen & 1];
  return my_gen;
}

LaunchResult Runtime::launch(const std::function<void(Pe&)>& fn) {
  reset_for_launch();
  const int n = cfg_.n_pes;
  std::vector<Pe> pes(static_cast<std::size_t>(n));
  LaunchResult result;
  result.errors.assign(static_cast<std::size_t>(n), "");
  result.sim_ns.assign(static_cast<std::size_t>(n), 0.0);

  for (int i = 0; i < n; ++i) {
    pes[static_cast<std::size_t>(i)].rt_ = this;
    pes[static_cast<std::size_t>(i)].id_ = i;
    pes[static_cast<std::size_t>(i)].launch_seed_ =
        launch_counter_ * 0x9E3779B97F4A7C15ULL;
  }

  // Executor-claim vs run split for job traces: the first PE body to
  // start stamps t_first (single writer via the exchange; read after the
  // gang joins, so the plain time_point is race-free).
  std::atomic<bool> first_started{false};
  std::chrono::steady_clock::time_point t_first{};
  const auto t_launch = std::chrono::steady_clock::now();

  auto body = [&](int i) {
    if (!first_started.exchange(true, std::memory_order_relaxed)) {
      t_first = std::chrono::steady_clock::now();
    }
    Pe& pe = pes[static_cast<std::size_t>(i)];
    try {
      if (cfg_.schedule != nullptr) cfg_.schedule->pe_start(*this, i);
      fn(pe);
    } catch (const std::exception& e) {
      result.errors[static_cast<std::size_t>(i)] =
          "PE " + std::to_string(i) + ": " + e.what();
      abort();
    } catch (...) {
      result.errors[static_cast<std::size_t>(i)] =
          "PE " + std::to_string(i) + ": unknown exception";
      abort();
    }
    // Every exit path (return, error, abort) retires the PE with the
    // hook so remaining PEs can be scheduled. Must not throw.
    if (cfg_.schedule != nullptr) cfg_.schedule->pe_exit(*this, i);
  };

  PeExecutor* ex =
      cfg_.executor != nullptr ? cfg_.executor.get() : &thread_per_pe_executor();
  sched_.store(ex, std::memory_order_release);
  try {
    ex->run_gang(n, body, ec_);
  } catch (...) {
    // Resource acquisition failed before any PE ran (fiber stacks);
    // clear the scheduler and let the caller report it.
    sched_.store(nullptr, std::memory_order_release);
    throw;
  }
  sched_.store(nullptr, std::memory_order_release);

  const auto t_done = std::chrono::steady_clock::now();
  auto ms = [](std::chrono::steady_clock::duration d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  if (first_started.load(std::memory_order_relaxed)) {
    result.claim_ms = ms(t_first - t_launch);
    result.exec_ms = ms(t_done - t_first);
  } else {
    result.claim_ms = ms(t_done - t_launch);
  }

  result.profiles.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result.sim_ns[static_cast<std::size_t>(i)] =
        pes[static_cast<std::size_t>(i)].sim_ns_;
    result.profiles[static_cast<std::size_t>(i)] =
        pes[static_cast<std::size_t>(i)].prof_;
    if (!result.errors[static_cast<std::size_t>(i)].empty()) {
      result.ok = false;
    }
  }
  return result;
}

}  // namespace lol::shmem

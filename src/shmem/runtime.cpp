#include "shmem/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

namespace lol::shmem {

using support::RuntimeError;

namespace {

constexpr std::size_t kAlign = 8;

/// Relaxed word-atomic copy *into* an arena. Tears at word granularity
/// under races (like real one-sided hardware) but is never UB.
void arena_write(std::byte* dst, const void* src, std::size_t n) {
  const auto* s = static_cast<const std::byte*>(src);
  auto dst_addr = reinterpret_cast<std::uintptr_t>(dst);
  while (n >= 8 && (dst_addr % 8) == 0) {
    std::uint64_t word;
    std::memcpy(&word, s, 8);
    std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(dst))
        .store(word, std::memory_order_relaxed);
    dst += 8;
    dst_addr += 8;
    s += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::atomic_ref<std::uint8_t>(*reinterpret_cast<std::uint8_t*>(dst + i))
        .store(static_cast<std::uint8_t>(s[i]), std::memory_order_relaxed);
  }
}

/// Relaxed word-atomic copy *out of* an arena.
void arena_read(void* dst, const std::byte* src, std::size_t n) {
  auto* d = static_cast<std::byte*>(dst);
  auto src_addr = reinterpret_cast<std::uintptr_t>(src);
  while (n >= 8 && (src_addr % 8) == 0) {
    std::uint64_t word =
        std::atomic_ref<const std::uint64_t>(
            *reinterpret_cast<const std::uint64_t*>(src))
            .load(std::memory_order_relaxed);
    std::memcpy(d, &word, 8);
    src += 8;
    src_addr += 8;
    d += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = static_cast<std::byte>(
        std::atomic_ref<const std::uint8_t>(
            *reinterpret_cast<const std::uint8_t*>(src + i))
            .load(std::memory_order_relaxed));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pe
// ---------------------------------------------------------------------------

int Pe::n_pes() const { return rt_->n_pes(); }

void Pe::check_target(int target) const {
  if (target < 0 || target >= rt_->n_pes()) {
    throw RuntimeError("remote PE " + std::to_string(target) +
                       " is out of range (MAH FRENZ = " +
                       std::to_string(rt_->n_pes()) + ")");
  }
}

void Pe::check_range(std::size_t offset, std::size_t n) const {
  if (offset + n > rt_->heap_bytes() || offset + n < offset) {
    throw RuntimeError("symmetric access [" + std::to_string(offset) + ", " +
                       std::to_string(offset + n) +
                       ") exceeds the symmetric heap (" +
                       std::to_string(rt_->heap_bytes()) + " bytes)");
  }
}

std::size_t Pe::shmalloc(std::size_t bytes) {
  std::size_t rounded = (bytes + kAlign - 1) & ~(kAlign - 1);
  if (bump_ + rounded > rt_->heap_bytes()) {
    throw RuntimeError(
        "symmetric heap exhausted: need " + std::to_string(rounded) +
        " more bytes, " + std::to_string(rt_->heap_bytes() - bump_) +
        " available (configure a larger heap)");
  }
  std::size_t off = bump_;
  bump_ += rounded;
  return off;
}

std::byte* Pe::local_addr(std::size_t offset) {
  return rt_->arena(id_) + offset;
}

void Pe::put(int target, std::size_t offset, const void* src, std::size_t n) {
  check_target(target);
  check_range(offset, n);
  arena_write(rt_->arena(target) + offset, src, n);
  if (const auto* m = rt_->model()) sim_ns_ += m->put_ns(id_, target, n);
}

void Pe::get(void* dst, int target, std::size_t offset, std::size_t n) {
  check_target(target);
  check_range(offset, n);
  arena_read(dst, rt_->arena(target) + offset, n);
  if (const auto* m = rt_->model()) sim_ns_ += m->get_ns(id_, target, n);
}

void Pe::put_i64(int target, std::size_t offset, std::int64_t v) {
  put(target, offset, &v, sizeof v);
}

std::int64_t Pe::get_i64(int target, std::size_t offset) {
  std::int64_t v;
  get(&v, target, offset, sizeof v);
  return v;
}

void Pe::put_f64(int target, std::size_t offset, double v) {
  put(target, offset, &v, sizeof v);
}

double Pe::get_f64(int target, std::size_t offset) {
  double v;
  get(&v, target, offset, sizeof v);
  return v;
}

std::int64_t Pe::atomic_fetch_add_i64(int target, std::size_t offset,
                                      std::int64_t delta) {
  check_target(target);
  check_range(offset, sizeof(std::int64_t));
  auto* word =
      reinterpret_cast<std::int64_t*>(rt_->arena(target) + offset);
  std::int64_t old = std::atomic_ref<std::int64_t>(*word).fetch_add(
      delta, std::memory_order_acq_rel);
  if (const auto* m = rt_->model()) sim_ns_ += m->get_ns(id_, target, 8);
  return old;
}

void Pe::barrier_all() { rt_->barrier(*this); }

void Pe::set_lock(int lock_id) {
  if (lock_id < 0 || lock_id >= rt_->n_locks()) {
    throw RuntimeError("lock id " + std::to_string(lock_id) +
                       " is out of range");
  }
  auto& lock = rt_->locks_[static_cast<std::size_t>(lock_id)];
  if (lock.owner.load(std::memory_order_acquire) == id_) {
    throw RuntimeError("PE " + std::to_string(id_) +
                       " already holds this lock (IM SRSLY MESIN WIF is not "
                       "recursive)");
  }
  // Eventcount-shaped acquire loop: block through the executor (a fiber
  // yields its carrier here) and stay abortable between attempts.
  for (;;) {
    std::uint64_t e = rt_->prepare_wait();
    int expected = -1;
    if (lock.owner.compare_exchange_strong(expected, id_,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      break;
    }
    if (rt_->aborted()) {
      throw RuntimeError("SPMD aborted while waiting for lock");
    }
    rt_->wait(id_, e);
  }
  if (const auto* m = rt_->model()) {
    sim_ns_ += m->lock_ns(id_, lock_id % rt_->n_pes());
  }
}

bool Pe::test_lock(int lock_id) {
  if (lock_id < 0 || lock_id >= rt_->n_locks()) {
    throw RuntimeError("lock id " + std::to_string(lock_id) +
                       " is out of range");
  }
  auto& lock = rt_->locks_[static_cast<std::size_t>(lock_id)];
  if (lock.owner.load(std::memory_order_acquire) == id_) {
    throw RuntimeError("PE " + std::to_string(id_) +
                       " already holds this lock");
  }
  int expected = -1;
  bool got = lock.owner.compare_exchange_strong(expected, id_,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire);
  if (const auto* m = rt_->model()) {
    sim_ns_ += m->lock_ns(id_, lock_id % rt_->n_pes());
  }
  return got;
}

void Pe::clear_lock(int lock_id) {
  if (lock_id < 0 || lock_id >= rt_->n_locks()) {
    throw RuntimeError("lock id " + std::to_string(lock_id) +
                       " is out of range");
  }
  auto& lock = rt_->locks_[static_cast<std::size_t>(lock_id)];
  if (lock.owner.load(std::memory_order_acquire) != id_) {
    throw RuntimeError("PE " + std::to_string(id_) +
                       " releases a lock it does not hold (DUN MESIN WIF "
                       "without IM ... MESIN WIF)");
  }
  lock.owner.store(-1, std::memory_order_release);
  rt_->notify_waiters();
  if (const auto* m = rt_->model()) {
    sim_ns_ += m->lock_ns(id_, lock_id % rt_->n_pes());
  }
}

void Pe::charge_local(std::size_t bytes) {
  if (const auto* m = rt_->model()) sim_ns_ += m->local_ns(bytes);
}

// Collectives: contribute to scratch, barrier, reduce, barrier.
namespace {
template <typename T, typename Fn>
T all_reduce(Pe& pe, std::vector<T>& scratch, T v, Fn combine) {
  scratch[static_cast<std::size_t>(pe.id())] = v;
  pe.barrier_all();
  T acc = scratch[0];
  for (int i = 1; i < pe.n_pes(); ++i) {
    acc = combine(acc, scratch[static_cast<std::size_t>(i)]);
  }
  pe.barrier_all();
  return acc;
}
}  // namespace

std::int64_t Pe::all_reduce_sum_i64(std::int64_t v) {
  return all_reduce(*this, rt_->scratch_i64_, v,
                    [](std::int64_t a, std::int64_t b) { return a + b; });
}

double Pe::all_reduce_sum_f64(double v) {
  return all_reduce(*this, rt_->scratch_f64_, v,
                    [](double a, double b) { return a + b; });
}

std::int64_t Pe::all_reduce_max_i64(std::int64_t v) {
  return all_reduce(*this, rt_->scratch_i64_, v,
                    [](std::int64_t a, std::int64_t b) {
                      return a > b ? a : b;
                    });
}

double Pe::all_reduce_max_f64(double v) {
  return all_reduce(*this, rt_->scratch_f64_, v,
                    [](double a, double b) { return a > b ? a : b; });
}

std::int64_t Pe::broadcast_i64(std::int64_t v, int root) {
  check_target(root);
  if (id_ == root) rt_->scratch_i64_[static_cast<std::size_t>(root)] = v;
  barrier_all();
  std::int64_t out = rt_->scratch_i64_[static_cast<std::size_t>(root)];
  barrier_all();
  return out;
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Config cfg) : cfg_(std::move(cfg)) {
  // 4096 matches the paper's largest machine (the 4,096-core Epiphany
  // cluster); counts beyond hardware threads want the fiber executor.
  if (cfg_.n_pes < 1 || cfg_.n_pes > 4096) {
    throw RuntimeError("n_pes must be in [1, 4096], got " +
                       std::to_string(cfg_.n_pes));
  }
  if (cfg_.heap_bytes % kAlign != 0) {
    cfg_.heap_bytes = (cfg_.heap_bytes + kAlign - 1) & ~(kAlign - 1);
  }
  arenas_.resize(static_cast<std::size_t>(cfg_.n_pes));
  for (auto& a : arenas_) a.resize(cfg_.heap_bytes);
  scratch_i64_.resize(static_cast<std::size_t>(cfg_.n_pes));
  scratch_f64_.resize(static_cast<std::size_t>(cfg_.n_pes));
  for (int i = 0; i < cfg_.n_locks; ++i) locks_.emplace_back();
}

std::byte* Runtime::arena(int pe) {
  return arenas_[static_cast<std::size_t>(pe)].data();
}

void Runtime::abort() {
  abort_.store(true, std::memory_order_release);
  // Wake everything parked in this runtime's eventcount (barrier
  // waiters, lock waiters, idle fiber carriers); the wait loops re-check
  // the abort flag and die.
  notify_waiters();
}

void Runtime::reset_for_launch() {
  abort_.store(false, std::memory_order_release);
  bar_count_ = 0;
  bar_gen_.store(0, std::memory_order_relaxed);
  bar_max_ns_ = 0.0;
  bar_release_ns_[0] = bar_release_ns_[1] = 0.0;
  // Owners are reset so a previous aborted launch cannot leave one held.
  for (auto& lock : locks_) lock.owner.store(-1, std::memory_order_relaxed);
  for (auto& a : arenas_) std::fill(a.begin(), a.end(), std::byte{0});
  std::fill(scratch_i64_.begin(), scratch_i64_.end(), 0);
  std::fill(scratch_f64_.begin(), scratch_f64_.end(), 0.0);
  ++launch_counter_;
}

void Runtime::barrier(Pe& pe) {
  std::uint64_t my_gen;
  bool released = false;
  {
    std::lock_guard<std::mutex> g(bar_m_);
    if (aborted()) throw RuntimeError("SPMD aborted while entering barrier");
    my_gen = bar_gen_.load(std::memory_order_relaxed);
    bar_max_ns_ = std::max(bar_max_ns_, pe.sim_ns_);
    if (++bar_count_ == cfg_.n_pes) {
      double release = bar_max_ns_;
      if (cfg_.model) release += cfg_.model->barrier_ns(cfg_.n_pes);
      bar_release_ns_[my_gen & 1] = release;
      bar_count_ = 0;
      bar_max_ns_ = 0.0;
      bar_gen_.store(my_gen + 1, std::memory_order_release);
      released = true;
    }
  }
  if (released) {
    notify_waiters();
  } else {
    // Eventcount wait outside bar_m_: a fiber must never yield holding
    // a mutex a sibling PE on the same carrier could need.
    for (;;) {
      std::uint64_t e = prepare_wait();
      if (bar_gen_.load(std::memory_order_acquire) != my_gen) break;
      if (aborted()) {
        throw RuntimeError("SPMD aborted while waiting in barrier (HUGZ)");
      }
      wait(pe.id(), e);
    }
  }
  pe.sim_ns_ = bar_release_ns_[my_gen & 1];
}

LaunchResult Runtime::launch(const std::function<void(Pe&)>& fn) {
  reset_for_launch();
  const int n = cfg_.n_pes;
  std::vector<Pe> pes(static_cast<std::size_t>(n));
  LaunchResult result;
  result.errors.assign(static_cast<std::size_t>(n), "");
  result.sim_ns.assign(static_cast<std::size_t>(n), 0.0);

  for (int i = 0; i < n; ++i) {
    pes[static_cast<std::size_t>(i)].rt_ = this;
    pes[static_cast<std::size_t>(i)].id_ = i;
    pes[static_cast<std::size_t>(i)].launch_seed_ =
        launch_counter_ * 0x9E3779B97F4A7C15ULL;
  }

  auto body = [&](int i) {
    Pe& pe = pes[static_cast<std::size_t>(i)];
    try {
      fn(pe);
    } catch (const std::exception& e) {
      result.errors[static_cast<std::size_t>(i)] =
          "PE " + std::to_string(i) + ": " + e.what();
      abort();
    } catch (...) {
      result.errors[static_cast<std::size_t>(i)] =
          "PE " + std::to_string(i) + ": unknown exception";
      abort();
    }
  };

  PeExecutor* ex =
      cfg_.executor != nullptr ? cfg_.executor.get() : &thread_per_pe_executor();
  sched_.store(ex, std::memory_order_release);
  try {
    ex->run_gang(n, body, ec_);
  } catch (...) {
    // Resource acquisition failed before any PE ran (fiber stacks);
    // clear the scheduler and let the caller report it.
    sched_.store(nullptr, std::memory_order_release);
    throw;
  }
  sched_.store(nullptr, std::memory_order_release);

  for (int i = 0; i < n; ++i) {
    result.sim_ns[static_cast<std::size_t>(i)] =
        pes[static_cast<std::size_t>(i)].sim_ns_;
    if (!result.errors[static_cast<std::size_t>(i)].empty()) {
      result.ok = false;
    }
  }
  return result;
}

}  // namespace lol::shmem

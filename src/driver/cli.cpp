#include "driver/cli.hpp"

#include <fstream>
#include <sstream>

namespace lol::driver {

Cli::Cli(int argc, char** argv) {
  prog_ = argc > 0 ? argv[0] : "tool";
  for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  used_.assign(args_.size(), false);
}

void Cli::consume(std::size_t i, std::size_t n) {
  for (std::size_t k = i; k < i + n && k < used_.size(); ++k) used_[k] = true;
}

bool Cli::has_flag(const std::string& name, const std::string& alias) {
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (used_[i]) continue;
    if (args_[i] == name || (!alias.empty() && args_[i] == alias)) {
      consume(i, 1);
      return true;
    }
  }
  return false;
}

std::optional<std::string> Cli::option(const std::string& name,
                                       const std::string& alias) {
  for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
    if (used_[i]) continue;
    if (args_[i] == name || (!alias.empty() && args_[i] == alias)) {
      consume(i, 2);
      return args_[i + 1];
    }
  }
  return std::nullopt;
}

const std::vector<std::string>& Cli::positional() {
  if (!positional_built_) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (!used_[i]) positional_.push_back(args_[i]);
    }
    positional_built_ = true;
  }
  return positional_;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace lol::driver

// Tiny argv helper shared by the lcc / lolrun command-line tools.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace lol::driver {

/// Minimal flag parser: supports `--flag`, `--key value`, `-k value` and
/// positional arguments, in any order.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// True when `--name` (or an alias) was present.
  bool has_flag(const std::string& name, const std::string& alias = "");

  /// Value of `--name <value>`; nullopt when absent.
  std::optional<std::string> option(const std::string& name,
                                    const std::string& alias = "");

  /// Positional arguments remaining after flags/options are consumed.
  [[nodiscard]] const std::vector<std::string>& positional();

  /// The program name (argv[0]).
  [[nodiscard]] const std::string& prog() const { return prog_; }

 private:
  void consume(std::size_t i, std::size_t n);

  std::string prog_;
  std::vector<std::string> args_;
  std::vector<bool> used_;
  std::vector<std::string> positional_;
  bool positional_built_ = false;
};

/// Reads a whole file; returns nullopt when unreadable.
std::optional<std::string> read_file(const std::string& path);

/// Writes a whole file; returns false on failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace lol::driver

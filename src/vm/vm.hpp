// The bytecode VM executor. One Vm instance runs one PE of the SPMD
// launch, sharing the chunk (read-only) with every other PE.
//
// Each opcode's semantics live in a public op_* method so the JIT backend
// can call the exact same bodies from emitted machine code: the two
// backends are byte-identical by construction, and the interpreter loop
// below is just a dispatch table over these methods.
#pragma once

#include "rt/exec_context.hpp"
#include "rt/objects.hpp"
#include "vm/chunk.hpp"
#include "vm/compiler.hpp"

namespace lol::vm {

/// In-place operand views for the JIT's typed kBinary fast path
/// (codegen/jit_emitter.cpp). `lhs` points at the left operand's payload
/// inside the VM value stack — after the prep pops the right operand,
/// that slot is exactly where kBinary would push its result, so emitted
/// code computes `*lhs op= rhs` and the stack is already correct.
struct BinFastI {
  std::int64_t* lhs = nullptr;
  std::int64_t rhs = 0;
};
struct BinFastD {
  double* lhs = nullptr;
  double rhs = 0.0;
};

class Vm {
 public:
  Vm(const Chunk& chunk, rt::ExecContext& ctx) : chunk_(chunk), ctx_(ctx) {}

  /// Executes the chunk from the top of main. Throws support::RuntimeError
  /// on semantic errors.
  void run();

  /// Clears all execution state and pushes the main frame. run() does this
  /// itself; the JIT calls it before entering emitted code.
  void reset_for_run();

  [[nodiscard]] rt::ExecContext& ctx() { return ctx_; }

  // One method per opcode. Operand names mirror Instr::{a,b,c}. Control
  // flow returns its result instead of mutating a pc the caller owns:
  // op_jump_if_false reports whether the branch is taken, op_call returns
  // the callee entry pc, op_return the saved return pc.
  void op_const(std::int32_t a);
  void op_pop();
  void op_load_it();
  void op_store_it();
  void op_declare(std::int32_t a);
  void op_unbind(std::int32_t a);
  void op_load_var(std::int32_t a, std::int32_t b);
  void op_store_var(std::int32_t a, std::int32_t b);
  void op_copy_array(std::int32_t a, std::int32_t b, std::int32_t c);
  void op_lock(std::int32_t a, std::int32_t b, std::int32_t c);
  void op_binary(std::int32_t a);
  void op_unary(std::int32_t a);
  void op_nary(std::int32_t a, std::int32_t b);
  void op_cast(std::int32_t a, std::int32_t b);
  [[nodiscard]] bool op_jump_if_false();
  [[nodiscard]] std::size_t op_call(std::int32_t a, std::int32_t b,
                                    std::size_t ret_pc);
  [[nodiscard]] std::size_t op_return();
  void op_me();
  void op_mah_frenz();
  void op_whatevr();
  void op_whatevar();
  void op_hugz();
  void op_bff_push();
  void op_bff_pop(std::int32_t a);
  void op_visible(std::int32_t a, std::int32_t b);
  void op_gimmeh();

  /// JIT fast-path preps. When the top two stack slots are both NUMBR
  /// (resp. NUMBAR): charge the step — exactly what the generic kBinary
  /// helper would charge — pop the right operand, and return the left
  /// operand in place plus the popped right value. On a type mismatch
  /// return a null lhs *without* charging: the caller falls back to the
  /// generic helper, which charges and runs the full rt::op_binary
  /// coercion path. May throw (step budget, abort), like any op.
  BinFastI binfast_prep_numbr();
  BinFastD binfast_prep_numbar();

 private:
  /// The JIT's specialized tier (codegen/jit_runtime.cpp) reads and
  /// writes frame cells and the value stack directly when a region deopts
  /// or exits: it re-creates exactly the state the call-threaded ops
  /// would have produced (same Cell fields, same stack order), so the
  /// generic tier can resume mid-program. Keeping the accessor a friend
  /// (instead of widening the public surface) documents that contract.
  friend struct JitSpecAccess;

  /// One variable slot: scalar value, private array, or symmetric handle.
  struct Cell {
    rt::Value v;
    std::shared_ptr<rt::PrivateArray> arr;
    std::optional<rt::SymHandle> sym;
    std::optional<ast::TypeKind> stype;
    bool bound = false;

    [[nodiscard]] bool is_array() const {
      return arr != nullptr || (sym && sym->is_array);
    }
  };

  struct Frame {
    std::vector<Cell> slots;
    rt::Value it;
    std::size_t ret_pc = 0;
    std::size_t bff_depth = 0;
    std::size_t name_map = 0;
  };

  rt::Value pop();
  void push(rt::Value v);

  Cell& static_cell(std::int32_t slot, std::uint32_t flags);
  Cell& dynamic_cell(const std::string& name);
  [[nodiscard]] std::string slot_name(const Frame& f,
                                      std::int32_t slot) const;

  /// Lazily renders a variable name for error messages only — computing
  /// it eagerly on every access would dominate the dispatch loop.
  struct NameRef {
    const Vm* vm = nullptr;
    const Frame* frame = nullptr;
    std::int32_t slot = -1;
    const std::string* dyn = nullptr;

    [[nodiscard]] std::string str() const {
      if (dyn != nullptr) return *dyn;
      return vm->slot_name(*frame, slot);
    }
  };

  rt::Value load_cell(Cell& c, bool indexed, bool remote,
                      const rt::Value* index, const NameRef& name);
  void store_cell(Cell& c, bool indexed, bool remote, const rt::Value* index,
                  rt::Value v, const NameRef& name);

  int current_bff() const;

  const Chunk& chunk_;
  rt::ExecContext& ctx_;
  std::vector<rt::Value> stack_;
  std::vector<Frame> frames_;
  std::vector<int> bff_;

  static constexpr std::size_t kMaxFrames = 2000;
};

/// Convenience used by the SPMD launcher.
void run_pe(const Chunk& chunk, rt::ExecContext& ctx);

}  // namespace lol::vm

// AST -> bytecode compiler.
#pragma once

#include "ast/ast.hpp"
#include "sema/analyzer.hpp"
#include "vm/chunk.hpp"

namespace lol::vm {

/// Compiles an analyzed program to a chunk. Throws support::SemaError for
/// constructs the compiler can reject statically.
Chunk compile_program(const ast::Program& program,
                      const sema::Analysis& analysis);

}  // namespace lol::vm

// AST -> bytecode compiler.
#pragma once

#include <memory>
#include <mutex>

#include "ast/ast.hpp"
#include "sema/analyzer.hpp"
#include "vm/chunk.hpp"

namespace lol::vm {

/// Compiles an analyzed program to a chunk. Throws support::SemaError for
/// constructs the compiler can reject statically.
Chunk compile_program(const ast::Program& program,
                      const sema::Analysis& analysis);

/// Backend::kVm memo on a CompiledProgram (the mirror of
/// codegen::NativeSlot): the chunk is compiled on the first VM run and
/// shared read-only by every later run, so warm service jobs stop
/// re-running compile_program per submission. The mutex serializes the
/// first build between service workers sharing one cached program.
struct VmSlot {
  std::mutex m;
  std::shared_ptr<const Chunk> chunk;
};

}  // namespace lol::vm

// Bytecode definitions for the PARALLOL VM.
//
// The VM exists because the paper argues (§II) that "using a compiler for
// LOLCODE is more flexible and efficient than an interpreter". The chunk
// compiler resolves variable names to frame slots at compile time and
// flattens control flow to jumps, removing the per-node dispatch and
// per-access hash lookups the tree-walker pays for. bench_backends
// quantifies the difference.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ast/types.hpp"
#include "rt/value.hpp"

namespace lol::vm {

/// Opcodes. Operands a, b, c live in the fixed-width instruction.
enum class Op : std::uint8_t {
  kConst,       // push consts[a]
  kPop,         // drop top
  kLoadIt,      // push IT
  kStoreIt,     // IT = pop
  kDeclare,     // declare decls[a]; pops init/size per its flags
  kLoadVar,     // a = slot|name-const, b = access flags; may pop an index
  kStoreVar,    // pops value (and index when indexed)
  kCopyArray,   // a = dst slot|name, b = src slot|name, c = copy flags
  kLock,        // a = slot|name, b = access flags, c = LockOp
  kBinary,      // a = ast::BinOp; pops rhs, lhs; pushes result
  kUnary,       // a = ast::UnOp
  kNary,        // a = ast::NaryOp, b = operand count
  kCast,        // a = ast::TypeKind, b = explicit flag
  kJump,        // pc = a
  kJumpIfFalse, // pops; pc = a when FAIL
  kCall,        // a = function index, b = argc (args on stack)
  kReturn,      // pops return value, pops frame
  kMe,          // push PE id
  kMahFrenz,    // push PE count
  kWhatevr,     // push random NUMBR
  kWhatevar,    // push random NUMBAR
  kHugz,        // barrier
  kBffPush,     // pops target PE; enter predication
  kBffPop,      // a = number of predication levels to leave
  kVisible,     // a = argc, b = bit0 newline, bit1 stderr
  kGimmeh,      // push one input line as YARN
  kUnbind,      // a = slot; mark unbound (loop-scope reset between iters)
  kHalt,        // end of main
};

/// Access-mode flags for kLoadVar/kStoreVar/kLock/kCopyArray operands.
enum AccessFlags : std::uint32_t {
  kAccRemote = 1u << 0,   // UR — target the predicated PE
  kAccDynamic = 1u << 1,  // SRS — operand is a name-constant index
  kAccIndexed = 1u << 2,  // an index was pushed on the stack
  kAccGlobal = 1u << 3,   // resolve in the global frame (from a function)
};

/// kCopyArray flag layout: low nibble = dst access, high nibble = src.
inline std::uint32_t copy_flags(std::uint32_t dst, std::uint32_t src) {
  return (dst & 0xF) | ((src & 0xF) << 4);
}

/// One fixed-width instruction.
struct Instr {
  Op op{};
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
};

/// Static description of one declaration site.
struct DeclMeta {
  std::string name;
  std::int32_t slot = -1;
  std::optional<ast::TypeKind> static_type;
  bool srsly = false;
  bool is_array = false;
  bool has_init = false;
  bool has_size = false;
  // Symmetric (WE HAS A) info:
  bool symmetric = false;
  int sym_slot = -1;
  int lock_id = -1;
  ast::TypeKind elem = ast::TypeKind::kNumbr;
  /// Payload type this scalar provably holds right after declaration
  /// (initializer literal type, or NUMBR for loop counters). The JIT's
  /// specialized tier seeds its region-entry type guards from this; the
  /// opt pipeline sharpens it by constant-folding initializers down to
  /// literals before the chunk compiler runs. Advisory only — a wrong
  /// hint costs a deopt, never correctness.
  std::optional<ast::TypeKind> hint;
};

/// Compiled user function.
struct FuncMeta {
  std::string name;
  std::uint32_t entry = 0;   // pc of the first instruction
  std::int32_t n_slots = 0;  // frame size (params first)
  std::int32_t argc = 0;
};

/// A compiled program: code for main followed by every function.
struct Chunk {
  std::vector<Instr> code;
  std::vector<rt::Value> consts;
  std::vector<DeclMeta> decls;
  std::vector<FuncMeta> funcs;
  std::int32_t main_slots = 0;
  /// Dynamic-name maps for SRS: name_maps[0] is main/global, [i+1] is
  /// function i. Later declarations of the same name shadow earlier ones.
  std::vector<std::vector<std::pair<std::string, std::int32_t>>> name_maps;
  int lock_count = 0;
};

/// Opcode mnemonic ("CONST", "LOAD_VAR", ...).
const char* op_name(Op op);

/// Human-readable disassembly (tests and `lolrun --dump-bytecode`).
std::string disassemble(const Chunk& chunk);

}  // namespace lol::vm

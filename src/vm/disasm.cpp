#include <sstream>

#include "vm/chunk.hpp"

namespace lol::vm {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst:
      return "CONST";
    case Op::kPop:
      return "POP";
    case Op::kLoadIt:
      return "LOAD_IT";
    case Op::kStoreIt:
      return "STORE_IT";
    case Op::kDeclare:
      return "DECLARE";
    case Op::kUnbind:
      return "UNBIND";
    case Op::kLoadVar:
      return "LOAD";
    case Op::kStoreVar:
      return "STORE";
    case Op::kCopyArray:
      return "COPY_ARRAY";
    case Op::kLock:
      return "LOCK";
    case Op::kBinary:
      return "BINARY";
    case Op::kUnary:
      return "UNARY";
    case Op::kNary:
      return "NARY";
    case Op::kCast:
      return "CAST";
    case Op::kJump:
      return "JUMP";
    case Op::kJumpIfFalse:
      return "JUMP_IF_FALSE";
    case Op::kCall:
      return "CALL";
    case Op::kReturn:
      return "RETURN";
    case Op::kMe:
      return "ME";
    case Op::kMahFrenz:
      return "MAH_FRENZ";
    case Op::kWhatevr:
      return "WHATEVR";
    case Op::kWhatevar:
      return "WHATEVAR";
    case Op::kHugz:
      return "HUGZ";
    case Op::kBffPush:
      return "BFF_PUSH";
    case Op::kBffPop:
      return "BFF_POP";
    case Op::kVisible:
      return "VISIBLE";
    case Op::kGimmeh:
      return "GIMMEH";
    case Op::kHalt:
      return "HALT";
  }
  return "?";
}

std::string disassemble(const Chunk& chunk) {
  std::ostringstream os;
  os << "; consts=" << chunk.consts.size() << " decls=" << chunk.decls.size()
     << " funcs=" << chunk.funcs.size() << " main_slots=" << chunk.main_slots
     << "\n";
  for (std::size_t pc = 0; pc < chunk.code.size(); ++pc) {
    for (const auto& f : chunk.funcs) {
      if (f.entry == pc) {
        os << f.name << ":  ; argc=" << f.argc << " slots=" << f.n_slots
           << "\n";
      }
    }
    const Instr& in = chunk.code[pc];
    os << "  " << pc << ": " << op_name(in.op);
    switch (in.op) {
      case Op::kConst:
        os << " " << in.a << " ("
           << chunk.consts[static_cast<std::size_t>(in.a)].debug_str() << ")";
        break;
      case Op::kDeclare: {
        const DeclMeta& m = chunk.decls[static_cast<std::size_t>(in.a)];
        os << " " << m.name << " slot=" << m.slot
           << (m.symmetric ? " symmetric" : "")
           << (m.is_array ? " array" : "");
        break;
      }
      case Op::kLoadVar:
      case Op::kStoreVar:
      case Op::kLock:
        os << " a=" << in.a << " flags=" << in.b;
        if (in.c) os << " c=" << in.c;
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
        os << " -> " << in.a;
        break;
      case Op::kCall:
        os << " " << chunk.funcs[static_cast<std::size_t>(in.a)].name
           << " argc=" << in.b;
        break;
      case Op::kBinary:
        os << " " << ast::bin_op_name(static_cast<ast::BinOp>(in.a));
        break;
      case Op::kUnary:
        os << " " << ast::un_op_name(static_cast<ast::UnOp>(in.a));
        break;
      case Op::kNary:
        os << " " << ast::nary_op_name(static_cast<ast::NaryOp>(in.a))
           << " n=" << in.b;
        break;
      default:
        if (in.a || in.b || in.c) {
          os << " " << in.a;
          if (in.b || in.c) os << " " << in.b;
          if (in.c) os << " " << in.c;
        }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace lol::vm

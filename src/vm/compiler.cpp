#include "vm/compiler.hpp"

#include <unordered_map>

#include "support/error.hpp"

namespace lol::vm {

using support::SemaError;

namespace {

/// Lexical scope for compile-time name resolution.
struct Scope {
  Scope* parent = nullptr;
  std::unordered_map<std::string, std::int32_t> names;
};

/// Per-function compilation state.
struct FrameCtx {
  std::int32_t next_slot = 0;
  bool is_function = false;
  std::vector<std::pair<std::string, std::int32_t>> name_map;
};

/// A breakable construct (loop or WTF) that GTFO targets.
struct Breakable {
  std::vector<std::size_t> break_jumps;  // kJump instrs to patch to the end
  int txt_depth_at_entry = 0;
  /// Slots declared directly inside a loop body (unbound between
  /// iterations so use-before-declare behaves like the interpreter).
  std::vector<std::int32_t> body_slots;
  bool is_loop = false;
};

class Compiler {
 public:
  Compiler(const ast::Program& prog, const sema::Analysis& analysis)
      : prog_(prog), analysis_(analysis) {}

  Chunk run() {
    chunk_.lock_count = analysis_.lock_count;
    chunk_.name_maps.emplace_back();  // main/global map

    // Pre-register functions so calls resolve to indices.
    for (const auto& s : prog_.body) {
      if (s->kind != ast::StmtKind::kFuncDef) continue;
      const auto& f = static_cast<const ast::FuncDefStmt&>(*s);
      func_index_[f.name] = static_cast<std::int32_t>(chunk_.funcs.size());
      FuncMeta meta;
      meta.name = f.name;
      meta.argc = static_cast<std::int32_t>(f.params.size());
      chunk_.funcs.push_back(meta);
      chunk_.name_maps.emplace_back();
    }

    // Main body.
    Scope global_scope;
    frame_ = FrameCtx{};
    current_scope_ = &global_scope;
    compile_body(prog_.body);
    emit(Op::kHalt);
    chunk_.main_slots = frame_.next_slot;
    chunk_.name_maps[0] = std::move(frame_.name_map);

    // Functions resolve free names against the global scope.
    global_scope_chain_ = &global_scope;

    // Function bodies.
    std::int32_t fi = 0;
    for (const auto& s : prog_.body) {
      if (s->kind != ast::StmtKind::kFuncDef) continue;
      const auto& f = static_cast<const ast::FuncDefStmt&>(*s);
      compile_function(f, fi++);
    }
    return std::move(chunk_);
  }

 private:
  // -- emission helpers -------------------------------------------------------

  std::size_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0,
                   std::int32_t c = 0) {
    chunk_.code.push_back(Instr{op, a, b, c});
    return chunk_.code.size() - 1;
  }

  std::int32_t here() const {
    return static_cast<std::int32_t>(chunk_.code.size());
  }

  void patch(std::size_t at, std::int32_t target) {
    chunk_.code[at].a = target;
  }

  std::int32_t add_const(rt::Value v) {
    chunk_.consts.push_back(std::move(v));
    return static_cast<std::int32_t>(chunk_.consts.size() - 1);
  }

  std::int32_t add_name_const(const std::string& s) {
    return add_const(rt::Value::yarn(s));
  }

  // -- scope handling ----------------------------------------------------------

  /// Resolves `name`; returns (slot, is_global_frame) or nullopt.
  std::optional<std::pair<std::int32_t, bool>> resolve(
      const std::string& name) {
    for (Scope* s = current_scope_; s != nullptr; s = s->parent) {
      auto it = s->names.find(name);
      if (it != s->names.end()) return {{it->second, false}};
    }
    if (frame_.is_function) {
      for (Scope* s = global_scope_chain_; s != nullptr; s = s->parent) {
        auto it = s->names.find(name);
        if (it != s->names.end()) return {{it->second, true}};
      }
    }
    return std::nullopt;
  }

  std::int32_t declare_name(const std::string& name,
                            support::SourceLoc loc) {
    if (current_scope_->names.count(name)) {
      throw SemaError("variable '" + name +
                          "' is already declared in this scope",
                      loc);
    }
    std::int32_t slot = frame_.next_slot++;
    current_scope_->names[name] = slot;
    frame_.name_map.emplace_back(name, slot);
    // Record the slot with the nearest enclosing loop so it is unbound
    // between iterations (matching the interpreter's fresh scopes).
    for (auto it = breakables_.rbegin(); it != breakables_.rend(); ++it) {
      if (it->is_loop) {
        it->body_slots.push_back(slot);
        break;
      }
    }
    return slot;
  }

  // -- statements --------------------------------------------------------------

  void compile_body(const ast::StmtList& body) {
    for (const auto& s : body) compile_stmt(*s);
  }

  void compile_stmt(const ast::Stmt& s) {
    switch (s.kind) {
      case ast::StmtKind::kVarDecl:
        compile_decl(static_cast<const ast::VarDeclStmt&>(s));
        return;
      case ast::StmtKind::kAssign:
        compile_assign(static_cast<const ast::AssignStmt&>(s));
        return;
      case ast::StmtKind::kExpr:
        compile_expr(*static_cast<const ast::ExprStmt&>(s).expr);
        emit(Op::kStoreIt);
        return;
      case ast::StmtKind::kVisible: {
        const auto& v = static_cast<const ast::VisibleStmt&>(s);
        for (const auto& a : v.args) compile_expr(*a);
        std::int32_t flags =
            (v.newline ? 1 : 0) | (v.to_stderr ? 2 : 0);
        emit(Op::kVisible, static_cast<std::int32_t>(v.args.size()), flags);
        return;
      }
      case ast::StmtKind::kGimmeh: {
        const auto& g = static_cast<const ast::GimmehStmt&>(s);
        compile_store_prefix(*g.target);
        emit(Op::kGimmeh);
        compile_store(*g.target);
        return;
      }
      case ast::StmtKind::kCastTo: {
        const auto& c = static_cast<const ast::CastToStmt&>(s);
        compile_store_prefix(*c.target);
        compile_expr(*c.target);
        emit(Op::kCast, static_cast<std::int32_t>(c.type), 1);
        compile_store(*c.target);
        return;
      }
      case ast::StmtKind::kORly:
        compile_orly(static_cast<const ast::ORlyStmt&>(s));
        return;
      case ast::StmtKind::kWtf:
        compile_wtf(static_cast<const ast::WtfStmt&>(s));
        return;
      case ast::StmtKind::kLoop:
        compile_loop(static_cast<const ast::LoopStmt&>(s));
        return;
      case ast::StmtKind::kGtfo:
        compile_gtfo(s.loc);
        return;
      case ast::StmtKind::kFoundYr: {
        const auto& f = static_cast<const ast::FoundYrStmt&>(s);
        compile_expr(*f.value);
        emit(Op::kReturn);
        return;
      }
      case ast::StmtKind::kFuncDef:
        return;  // compiled separately
      case ast::StmtKind::kCanHas:
        return;  // libraries are built in
      case ast::StmtKind::kHugz:
        emit(Op::kHugz);
        return;
      case ast::StmtKind::kLock: {
        const auto& l = static_cast<const ast::LockStmt&>(s);
        auto [operand, flags] = var_operand(*l.target, s.loc);
        emit(Op::kLock, operand, static_cast<std::int32_t>(flags),
             static_cast<std::int32_t>(l.op));
        return;
      }
      case ast::StmtKind::kTxt: {
        const auto& t = static_cast<const ast::TxtStmt&>(s);
        compile_expr(*t.target_pe);
        emit(Op::kBffPush);
        ++txt_depth_;
        compile_body(t.body);
        --txt_depth_;
        emit(Op::kBffPop, 1);
        return;
      }
    }
    throw SemaError("internal: unhandled statement in VM compiler", s.loc);
  }

  /// Best-effort payload type of `e`, for DeclMeta::hint. Conservative:
  /// only shapes whose runtime type is a function of the operand types
  /// alone. The opt pipeline's fold/prop passes turn many computed
  /// initializers into literals before we get here, which is what makes
  /// this one-level-deep walk effective at -O1/-O2.
  static std::optional<ast::TypeKind> infer_expr_hint(const ast::Expr& e) {
    using K = ast::ExprKind;
    using T = ast::TypeKind;
    switch (e.kind) {
      case K::kNumbrLit: return T::kNumbr;
      case K::kNumbarLit: return T::kNumbar;
      case K::kTroofLit: return T::kTroof;
      case K::kYarnLit: return T::kYarn;
      case K::kMe:
      case K::kMahFrenz:
      case K::kWhatevr: return T::kNumbr;
      case K::kWhatevar: return T::kNumbar;
      case K::kCast:
        return static_cast<const ast::CastExpr&>(e).type;
      case K::kUnary: {
        const auto& u = static_cast<const ast::UnaryExpr&>(e);
        if (u.op == ast::UnOp::kNot) return T::kTroof;
        if (u.op == ast::UnOp::kSquar) return infer_expr_hint(*u.operand);
        return std::nullopt;
      }
      case K::kBinary: {
        const auto& b = static_cast<const ast::BinaryExpr&>(e);
        using B = ast::BinOp;
        switch (b.op) {
          case B::kBothSaem:
          case B::kDiffrint:
          case B::kBigger:
          case B::kSmallrCmp:
          case B::kBothOf:
          case B::kEitherOf:
          case B::kWonOf:
            return T::kTroof;
          case B::kSum:
          case B::kDiff:
          case B::kProdukt:
          case B::kBiggr:
          case B::kSmallr: {
            auto l = infer_expr_hint(*b.lhs);
            auto r = infer_expr_hint(*b.rhs);
            if (l == T::kNumbr && r == T::kNumbr) return T::kNumbr;
            bool l_num = l == T::kNumbr || l == T::kNumbar;
            bool r_num = r == T::kNumbr || r == T::kNumbar;
            if (l_num && r_num) return T::kNumbar;
            return std::nullopt;
          }
          default:
            return std::nullopt;
        }
      }
      default:
        return std::nullopt;
    }
  }

  void compile_decl(const ast::VarDeclStmt& d) {
    std::int32_t slot = declare_name(d.name, d.loc);
    DeclMeta meta;
    meta.name = d.name;
    meta.slot = slot;
    meta.static_type = d.declared_type;
    meta.srsly = d.srsly;
    meta.is_array = d.is_array;
    meta.has_init = d.init != nullptr;
    meta.has_size = d.array_size != nullptr;
    if (d.scope == ast::DeclScope::kSymmetric) {
      const sema::SymInfo* info = analysis_.sym_for_decl(&d);
      if (info == nullptr) {
        throw SemaError("internal: symmetric declaration missing from sema",
                        d.loc);
      }
      meta.symmetric = true;
      meta.sym_slot = info->slot;
      meta.lock_id = info->lock_id;
      meta.elem = d.declared_type.value_or(ast::TypeKind::kNumbr);
    } else if (d.is_array) {
      meta.elem = d.declared_type.value_or(ast::TypeKind::kNumbr);
    }
    if (!meta.symmetric && !meta.is_array) {
      if (meta.srsly && meta.static_type) {
        // SRSLY stores coerce to the declared type, initializer included.
        meta.hint = meta.static_type;
      } else if (d.init) {
        meta.hint = infer_expr_hint(*d.init);
      } else if (meta.static_type) {
        meta.hint = meta.static_type;  // zero_of(declared type)
      }
    }
    // Push size then init so the VM pops init first.
    if (d.array_size) compile_expr(*d.array_size);
    if (d.init) compile_expr(*d.init);
    std::int32_t meta_idx = static_cast<std::int32_t>(chunk_.decls.size());
    chunk_.decls.push_back(std::move(meta));
    emit(Op::kDeclare, meta_idx);
  }

  /// (operand, flags) for a VarRef/SrsRef access. SrsRef name expressions
  /// are compiled as a name constant only when literal; otherwise the
  /// dynamic name is evaluated onto the stack and flagged.
  std::pair<std::int32_t, std::uint32_t> var_operand(const ast::Expr& e,
                                                     support::SourceLoc loc) {
    if (e.kind == ast::ExprKind::kVarRef) {
      const auto& v = static_cast<const ast::VarRef&>(e);
      std::uint32_t flags = 0;
      if (v.locality == ast::Locality::kRemote) flags |= kAccRemote;
      auto r = resolve(v.name);
      if (!r) {
        throw SemaError("variable '" + v.name + "' has not been declared",
                        v.loc);
      }
      if (r->second) flags |= kAccGlobal;
      return {r->first, flags};
    }
    if (e.kind == ast::ExprKind::kSrsRef) {
      const auto& v = static_cast<const ast::SrsRef&>(e);
      std::uint32_t flags = kAccDynamic;
      if (v.locality == ast::Locality::kRemote) flags |= kAccRemote;
      // The dynamic name is evaluated at run time: compile it onto the
      // stack; the VM pops it (after any index/value, see stack order).
      compile_expr(*v.name_expr);
      return {-1, flags};
    }
    throw SemaError("expected a variable reference", loc);
  }

  /// For stores with an index: the index must be pushed before the value.
  void compile_store_prefix(const ast::Expr& target) {
    if (target.kind == ast::ExprKind::kIndex) {
      const auto& ix = static_cast<const ast::IndexExpr&>(target);
      compile_expr(*ix.index);
    }
  }

  /// Emits the store for `target`; expects [index,] [name,] value on the
  /// stack (name for dynamic SRS targets is pushed here, after value —
  /// the VM pops name, value, index).
  void compile_store(const ast::Expr& target) {
    if (target.kind == ast::ExprKind::kItRef) {
      emit(Op::kStoreIt);
      return;
    }
    const ast::Expr* base = &target;
    std::uint32_t extra = 0;
    if (target.kind == ast::ExprKind::kIndex) {
      base = static_cast<const ast::IndexExpr&>(target).base.get();
      extra |= kAccIndexed;
    }
    auto [operand, flags] = var_operand(*base, target.loc);
    emit(Op::kStoreVar, operand, static_cast<std::int32_t>(flags | extra));
  }

  void compile_assign(const ast::AssignStmt& a) {
    // Whole-array copy when both sides are unindexed, statically known
    // array variables. (SRS-named arrays copy element-wise through the
    // normal scalar path only when indexed; unindexed SRS copies are
    // resolved dynamically by the VM.)
    if ((a.target->kind == ast::ExprKind::kVarRef ||
         a.target->kind == ast::ExprKind::kSrsRef) &&
        (a.value->kind == ast::ExprKind::kVarRef ||
         a.value->kind == ast::ExprKind::kSrsRef)) {
      // Emit a copy-or-scalar instruction pair: the VM decides at run time
      // whether both operands are arrays (mirrors the interpreter, which
      // resolves the variables before choosing bulk copy vs scalar move).
      auto [src_operand, src_flags] = var_operand(*a.value, a.loc);
      auto [dst_operand, dst_flags] = var_operand(*a.target, a.loc);
      emit(Op::kCopyArray, dst_operand, src_operand,
           static_cast<std::int32_t>(copy_flags(dst_flags, src_flags)));
      return;
    }
    compile_store_prefix(*a.target);
    compile_expr(*a.value);
    compile_store(*a.target);
  }

  void compile_orly(const ast::ORlyStmt& s) {
    std::vector<std::size_t> end_jumps;
    emit(Op::kLoadIt);
    std::size_t jf = emit(Op::kJumpIfFalse);
    compile_body(s.ya_rly);
    end_jumps.push_back(emit(Op::kJump));
    patch(jf, here());
    for (const auto& [cond, body] : s.mebbe) {
      compile_expr(*cond);
      emit(Op::kStoreIt);
      emit(Op::kLoadIt);
      std::size_t next = emit(Op::kJumpIfFalse);
      compile_body(body);
      end_jumps.push_back(emit(Op::kJump));
      patch(next, here());
    }
    compile_body(s.no_wai);
    for (std::size_t j : end_jumps) patch(j, here());
  }

  void compile_wtf(const ast::WtfStmt& s) {
    breakables_.push_back(Breakable{{}, txt_depth_, {}, false});

    // Dispatch chain.
    std::vector<std::size_t> case_entry_jumps(s.cases.size());
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      emit(Op::kLoadIt);
      compile_expr(*s.cases[i].literal);
      emit(Op::kBinary, static_cast<std::int32_t>(ast::BinOp::kBothSaem));
      std::size_t next = emit(Op::kJumpIfFalse);
      case_entry_jumps[i] = emit(Op::kJump);
      patch(next, here());
    }
    std::size_t to_default = emit(Op::kJump);

    // Bodies with fallthrough.
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      patch(case_entry_jumps[i], here());
      compile_body(s.cases[i].body);
    }
    patch(to_default, here());
    if (s.has_default) compile_body(s.default_body);

    Breakable b = std::move(breakables_.back());
    breakables_.pop_back();
    for (std::size_t j : b.break_jumps) patch(j, here());
  }

  void compile_loop(const ast::LoopStmt& s) {
    // The loop variable lives in a scope of its own.
    Scope loop_scope;
    loop_scope.parent = current_scope_;
    current_scope_ = &loop_scope;

    std::int32_t var_slot = -1;
    if (s.update != ast::LoopUpdate::kNone) {
      var_slot = declare_name(s.var, s.loc);
      DeclMeta meta;
      meta.name = s.var;
      meta.slot = var_slot;
      meta.has_init = true;
      meta.hint = ast::TypeKind::kNumbr;  // counters start at NUMBR 0
      std::int32_t meta_idx = static_cast<std::int32_t>(chunk_.decls.size());
      chunk_.decls.push_back(std::move(meta));
      emit(Op::kConst, add_const(rt::Value::numbr(0)));
      emit(Op::kDeclare, meta_idx);
    }

    breakables_.push_back(Breakable{{}, txt_depth_, {}, true});
    std::int32_t cond_pc = here();
    std::size_t exit_jump = SIZE_MAX;
    if (s.cond_kind == ast::LoopCond::kTil) {
      compile_expr(*s.cond);
      emit(Op::kUnary, static_cast<std::int32_t>(ast::UnOp::kNot));
      exit_jump = emit(Op::kJumpIfFalse);
    } else if (s.cond_kind == ast::LoopCond::kWile) {
      compile_expr(*s.cond);
      exit_jump = emit(Op::kJumpIfFalse);
    }

    Scope body_scope;
    body_scope.parent = current_scope_;
    current_scope_ = &body_scope;
    compile_body(s.body);
    current_scope_ = body_scope.parent;

    // Unbind body-declared slots so next-iteration use-before-declare
    // fails exactly like the interpreter's fresh per-iteration scope.
    for (std::int32_t slot : breakables_.back().body_slots) {
      if (slot != var_slot) emit(Op::kUnbind, slot);
    }

    // Update expression.
    if (s.update != ast::LoopUpdate::kNone) {
      switch (s.update) {
        case ast::LoopUpdate::kUppin:
          emit(Op::kLoadVar, var_slot, 0);
          emit(Op::kConst, add_const(rt::Value::numbr(1)));
          emit(Op::kBinary, static_cast<std::int32_t>(ast::BinOp::kSum));
          emit(Op::kStoreVar, var_slot, 0);
          break;
        case ast::LoopUpdate::kNerfin:
          emit(Op::kLoadVar, var_slot, 0);
          emit(Op::kConst, add_const(rt::Value::numbr(1)));
          emit(Op::kBinary, static_cast<std::int32_t>(ast::BinOp::kDiff));
          emit(Op::kStoreVar, var_slot, 0);
          break;
        case ast::LoopUpdate::kFunc: {
          auto it = func_index_.find(s.func);
          if (it == func_index_.end()) {
            throw SemaError("loop update names unknown function '" + s.func +
                                "'",
                            s.loc);
          }
          emit(Op::kLoadVar, var_slot, 0);
          emit(Op::kCall, it->second, 1);
          emit(Op::kStoreVar, var_slot, 0);
          break;
        }
        case ast::LoopUpdate::kNone:
          break;
      }
    }
    emit(Op::kJump, cond_pc);
    if (exit_jump != SIZE_MAX) patch(exit_jump, here());

    Breakable b = std::move(breakables_.back());
    breakables_.pop_back();
    for (std::size_t j : b.break_jumps) patch(j, here());
    current_scope_ = loop_scope.parent;
  }

  void compile_gtfo(support::SourceLoc loc) {
    if (!breakables_.empty()) {
      Breakable& b = breakables_.back();
      int pops = txt_depth_ - b.txt_depth_at_entry;
      if (pops > 0) emit(Op::kBffPop, pops);
      b.break_jumps.push_back(emit(Op::kJump));
      return;
    }
    if (frame_.is_function) {
      // GTFO outside loop/switch in a function: return NOOB.
      emit(Op::kConst, add_const(rt::Value::noob()));
      emit(Op::kReturn);
      return;
    }
    throw SemaError("GTFO outside loop/switch/function", loc);
  }

  void compile_function(const ast::FuncDefStmt& f, std::int32_t index) {
    FrameCtx saved_frame = std::move(frame_);
    Scope* saved_scope = current_scope_;
    int saved_txt = txt_depth_;

    frame_ = FrameCtx{};
    frame_.is_function = true;
    txt_depth_ = 0;
    Scope fn_scope;
    current_scope_ = &fn_scope;

    chunk_.funcs[static_cast<std::size_t>(index)].entry =
        static_cast<std::uint32_t>(here());
    for (const auto& p : f.params) declare_name(p, f.loc);

    compile_body(f.body);
    emit(Op::kLoadIt);
    emit(Op::kReturn);

    chunk_.funcs[static_cast<std::size_t>(index)].n_slots = frame_.next_slot;
    chunk_.name_maps[static_cast<std::size_t>(index) + 1] =
        std::move(frame_.name_map);

    frame_ = std::move(saved_frame);
    current_scope_ = saved_scope;
    txt_depth_ = saved_txt;
  }

  // -- expressions ---------------------------------------------------------------

  void compile_expr(const ast::Expr& e) {
    switch (e.kind) {
      case ast::ExprKind::kNumbrLit:
        emit(Op::kConst, add_const(rt::Value::numbr(
                             static_cast<const ast::NumbrLit&>(e).value)));
        return;
      case ast::ExprKind::kNumbarLit:
        emit(Op::kConst, add_const(rt::Value::numbar(
                             static_cast<const ast::NumbarLit&>(e).value)));
        return;
      case ast::ExprKind::kTroofLit:
        emit(Op::kConst, add_const(rt::Value::troof(
                             static_cast<const ast::TroofLit&>(e).value)));
        return;
      case ast::ExprKind::kNoobLit:
        emit(Op::kConst, add_const(rt::Value::noob()));
        return;
      case ast::ExprKind::kYarnLit: {
        const auto& y = static_cast<const ast::YarnLit&>(e);
        if (y.is_plain()) {
          emit(Op::kConst, add_const(rt::Value::yarn(y.plain_text())));
          return;
        }
        // Interpolation compiles to a SMOOSH of segments.
        std::int32_t n = 0;
        for (const auto& seg : y.segments) {
          if (seg.is_var) {
            auto r = resolve(seg.text);
            if (!r) {
              throw SemaError(":{" + seg.text +
                                  "}: variable has not been declared",
                              y.loc);
            }
            emit(Op::kLoadVar, r->first, r->second ? kAccGlobal : 0);
          } else {
            emit(Op::kConst, add_const(rt::Value::yarn(seg.text)));
          }
          ++n;
        }
        emit(Op::kNary, static_cast<std::int32_t>(ast::NaryOp::kSmoosh), n);
        return;
      }
      case ast::ExprKind::kVarRef:
      case ast::ExprKind::kSrsRef: {
        auto [operand, flags] = var_operand(e, e.loc);
        emit(Op::kLoadVar, operand, static_cast<std::int32_t>(flags));
        return;
      }
      case ast::ExprKind::kIndex: {
        const auto& ix = static_cast<const ast::IndexExpr&>(e);
        compile_expr(*ix.index);
        auto [operand, flags] = var_operand(*ix.base, e.loc);
        emit(Op::kLoadVar, operand,
             static_cast<std::int32_t>(flags | kAccIndexed));
        return;
      }
      case ast::ExprKind::kItRef:
        emit(Op::kLoadIt);
        return;
      case ast::ExprKind::kMe:
        emit(Op::kMe);
        return;
      case ast::ExprKind::kMahFrenz:
        emit(Op::kMahFrenz);
        return;
      case ast::ExprKind::kWhatevr:
        emit(Op::kWhatevr);
        return;
      case ast::ExprKind::kWhatevar:
        emit(Op::kWhatevar);
        return;
      case ast::ExprKind::kBinary: {
        const auto& b = static_cast<const ast::BinaryExpr&>(e);
        compile_expr(*b.lhs);
        compile_expr(*b.rhs);
        emit(Op::kBinary, static_cast<std::int32_t>(b.op));
        return;
      }
      case ast::ExprKind::kNary: {
        const auto& n = static_cast<const ast::NaryExpr&>(e);
        for (const auto& o : n.operands) compile_expr(*o);
        emit(Op::kNary, static_cast<std::int32_t>(n.op),
             static_cast<std::int32_t>(n.operands.size()));
        return;
      }
      case ast::ExprKind::kUnary: {
        const auto& u = static_cast<const ast::UnaryExpr&>(e);
        compile_expr(*u.operand);
        emit(Op::kUnary, static_cast<std::int32_t>(u.op));
        return;
      }
      case ast::ExprKind::kCast: {
        const auto& c = static_cast<const ast::CastExpr&>(e);
        compile_expr(*c.value);
        emit(Op::kCast, static_cast<std::int32_t>(c.type), 1);
        return;
      }
      case ast::ExprKind::kCall: {
        const auto& c = static_cast<const ast::CallExpr&>(e);
        auto it = func_index_.find(c.callee);
        if (it == func_index_.end()) {
          throw SemaError("call to unknown function '" + c.callee + "'",
                          c.loc);
        }
        for (const auto& a : c.args) compile_expr(*a);
        emit(Op::kCall, it->second,
             static_cast<std::int32_t>(c.args.size()));
        return;
      }
    }
    throw SemaError("internal: unhandled expression in VM compiler", e.loc);
  }

  const ast::Program& prog_;
  const sema::Analysis& analysis_;
  Chunk chunk_;
  FrameCtx frame_;
  Scope* current_scope_ = nullptr;
  Scope* global_scope_chain_ = nullptr;
  std::unordered_map<std::string, std::int32_t> func_index_;
  std::vector<Breakable> breakables_;
  int txt_depth_ = 0;
};

}  // namespace

Chunk compile_program(const ast::Program& program,
                      const sema::Analysis& analysis) {
  return Compiler(program, analysis).run();
}

}  // namespace lol::vm

#include "vm/vm.hpp"

#include <algorithm>

#include "rt/ops.hpp"

namespace lol::vm {

using rt::Value;
using support::RuntimeError;

Value Vm::pop() {
  Value v = std::move(stack_.back());
  stack_.pop_back();
  return v;
}

void Vm::push(Value v) { stack_.push_back(std::move(v)); }

std::string Vm::slot_name(const Frame& f, std::int32_t slot) const {
  const auto& map = chunk_.name_maps[f.name_map];
  for (auto it = map.rbegin(); it != map.rend(); ++it) {
    if (it->second == slot) return it->first;
  }
  return "<slot " + std::to_string(slot) + ">";
}

Vm::Cell& Vm::static_cell(std::int32_t slot, std::uint32_t flags) {
  Frame& f = (flags & kAccGlobal) ? frames_.front() : frames_.back();
  return f.slots[static_cast<std::size_t>(slot)];
}

Vm::Cell& Vm::dynamic_cell(const std::string& name) {
  // Innermost-visible bound declaration wins: search the current frame's
  // name map from the most recent declaration backwards, then globals.
  auto search = [&](Frame& f) -> Cell* {
    const auto& map = chunk_.name_maps[f.name_map];
    Cell* fallback = nullptr;
    for (auto it = map.rbegin(); it != map.rend(); ++it) {
      if (it->first != name) continue;
      Cell& c = f.slots[static_cast<std::size_t>(it->second)];
      if (c.bound) return &c;
      if (fallback == nullptr) fallback = &c;
    }
    return fallback != nullptr && fallback->bound ? fallback : nullptr;
  };
  if (Cell* c = search(frames_.back())) return *c;
  if (frames_.size() > 1) {
    if (Cell* c = search(frames_.front())) return *c;
  }
  throw RuntimeError("SRS: variable '" + name + "' has not been declared");
}

int Vm::current_bff() const {
  if (bff_.empty()) {
    throw RuntimeError(
        "UR reference outside TXT MAH BFF predication: no remote PE is "
        "selected");
  }
  return bff_.back();
}

Value Vm::load_cell(Cell& c, bool indexed, bool remote, const Value* index,
                    const NameRef& name) {
  if (!c.bound) {
    throw RuntimeError("variable '" + name.str() + "' has not been declared");
  }
  if (!indexed) {
    if (c.is_array()) {
      throw RuntimeError("cannot read an array as a value; index it with 'Z");
    }
    if (c.sym) {
      return rt::sym_read(*ctx_.pe, *c.sym, 0, remote ? current_bff() : -1);
    }
    if (remote) {
      throw RuntimeError(
          "UR requires a symmetric variable (declare it with WE HAS A)");
    }
    return c.v;
  }
  std::int64_t i = index->to_numbr();
  if (c.sym && c.sym->is_array) {
    if (i < 0 || static_cast<std::size_t>(i) >= c.sym->count) {
      throw RuntimeError("array index " + std::to_string(i) +
                         " out of bounds [0, " + std::to_string(c.sym->count) +
                         ")");
    }
    return rt::sym_read(*ctx_.pe, *c.sym, static_cast<std::size_t>(i),
                        remote ? current_bff() : -1);
  }
  if (c.arr != nullptr) {
    if (remote) {
      throw RuntimeError(
          "UR requires a symmetric array (declare it with WE HAS A)");
    }
    if (i < 0 || static_cast<std::size_t>(i) >= c.arr->elems.size()) {
      throw RuntimeError("array index " + std::to_string(i) +
                         " out of bounds [0, " +
                         std::to_string(c.arr->elems.size()) + ")");
    }
    return c.arr->elems[static_cast<std::size_t>(i)];
  }
  throw RuntimeError("'Z index applied to a non-array variable");
}

void Vm::store_cell(Cell& c, bool indexed, bool remote, const Value* index,
                    Value v, const NameRef& name) {
  if (!c.bound) {
    throw RuntimeError("variable '" + name.str() + "' has not been declared");
  }
  if (!indexed) {
    if (c.is_array()) {
      throw RuntimeError("cannot assign a scalar to an array; index it with "
                         "'Z");
    }
    if (c.sym) {
      rt::sym_write(*ctx_.pe, *c.sym, 0, remote ? current_bff() : -1, v);
      return;
    }
    if (remote) {
      throw RuntimeError(
          "UR requires a symmetric variable (declare it with WE HAS A)");
    }
    if (c.stype) v = v.cast_to(*c.stype, false);
    c.v = std::move(v);
    return;
  }
  std::int64_t i = index->to_numbr();
  if (c.sym && c.sym->is_array) {
    if (i < 0 || static_cast<std::size_t>(i) >= c.sym->count) {
      throw RuntimeError("array index " + std::to_string(i) +
                         " out of bounds [0, " + std::to_string(c.sym->count) +
                         ")");
    }
    rt::sym_write(*ctx_.pe, *c.sym, static_cast<std::size_t>(i),
                  remote ? current_bff() : -1, v);
    return;
  }
  if (c.arr != nullptr) {
    if (remote) {
      throw RuntimeError(
          "UR requires a symmetric array (declare it with WE HAS A)");
    }
    if (i < 0 || static_cast<std::size_t>(i) >= c.arr->elems.size()) {
      throw RuntimeError("array index " + std::to_string(i) +
                         " out of bounds [0, " +
                         std::to_string(c.arr->elems.size()) + ")");
    }
    if (c.arr->srsly) v = v.cast_to(c.arr->elem, false);
    c.arr->elems[static_cast<std::size_t>(i)] = std::move(v);
    return;
  }
  throw RuntimeError("'Z index applied to a non-array variable");
}

void Vm::reset_for_run() {
  frames_.clear();
  stack_.clear();
  bff_.clear();
  // Spill contract with the JIT's specialized tier: region exits
  // materialize up to codegen::kMaxVstack virtual entries back onto this
  // stack through JitSpecAccess::push (same bad_alloc discipline as any
  // op). Reserving here keeps the common materialization re-entrant
  // without a grow in emitted-code context.
  stack_.reserve(64);
  Frame main;
  main.slots.resize(static_cast<std::size_t>(chunk_.main_slots));
  main.name_map = 0;
  frames_.push_back(std::move(main));
}

void Vm::op_const(std::int32_t a) {
  push(chunk_.consts[static_cast<std::size_t>(a)]);
}

void Vm::op_pop() { (void)pop(); }

void Vm::op_load_it() { push(frames_.back().it); }

void Vm::op_store_it() { frames_.back().it = pop(); }

void Vm::op_declare(std::int32_t a) {
  const DeclMeta& m = chunk_.decls[static_cast<std::size_t>(a)];
  Cell& c = frames_.back().slots[static_cast<std::size_t>(m.slot)];
  if (c.bound) {
    throw RuntimeError("variable '" + m.name +
                       "' is already declared in this scope");
  }
  std::optional<Value> init;
  if (m.has_init) init = pop();
  std::optional<Value> size;
  if (m.has_size) size = pop();

  if (m.symmetric) {
    rt::SymHandle h;
    h.slot = m.sym_slot;
    h.elem = m.elem;
    h.is_array = m.is_array;
    h.lock_id = m.lock_id;
    h.count = 1;
    if (m.is_array) {
      std::int64_t n = size->to_numbr();
      if (n <= 0) {
        throw RuntimeError("array size must be positive, got " +
                           std::to_string(n));
      }
      h.count = static_cast<std::size_t>(n);
    }
    h.offset = ctx_.pe->shmalloc(h.count * 8);
    c.sym = h;
    c.stype = m.elem;
    if (init) rt::sym_write(*ctx_.pe, h, 0, -1, *init);
  } else if (m.is_array) {
    std::int64_t n = size->to_numbr();
    if (n <= 0) {
      throw RuntimeError("array size must be positive, got " +
                         std::to_string(n));
    }
    auto arr = std::make_shared<rt::PrivateArray>();
    arr->elem = m.elem;
    arr->srsly = m.srsly;
    arr->elems.assign(static_cast<std::size_t>(n), Value::zero_of(m.elem));
    c.arr = std::move(arr);
  } else {
    if (m.srsly && m.static_type) c.stype = *m.static_type;
    if (init) {
      Value v = std::move(*init);
      if (c.stype) v = v.cast_to(*c.stype, false);
      c.v = std::move(v);
    } else if (m.static_type) {
      c.v = Value::zero_of(*m.static_type);
    } else {
      c.v = Value::noob();
    }
  }
  c.bound = true;
}

void Vm::op_unbind(std::int32_t a) {
  frames_.back().slots[static_cast<std::size_t>(a)] = Cell{};
}

void Vm::op_load_var(std::int32_t a, std::int32_t b) {
  auto flags = static_cast<std::uint32_t>(b);
  std::string dyn_name;
  Cell* c;
  if (flags & kAccDynamic) {
    dyn_name = pop().to_yarn();
    c = &dynamic_cell(dyn_name);
  } else {
    c = &static_cell(a, flags);
  }
  std::optional<Value> index;
  if (flags & kAccIndexed) index = pop();
  NameRef name{this,
               (flags & kAccGlobal) ? &frames_.front() : &frames_.back(),
               a, (flags & kAccDynamic) ? &dyn_name : nullptr};
  push(load_cell(*c, (flags & kAccIndexed) != 0, (flags & kAccRemote) != 0,
                 index ? &*index : nullptr, name));
}

void Vm::op_store_var(std::int32_t a, std::int32_t b) {
  auto flags = static_cast<std::uint32_t>(b);
  std::string dyn_name;
  Cell* c;
  if (flags & kAccDynamic) {
    dyn_name = pop().to_yarn();
    c = &dynamic_cell(dyn_name);
  } else {
    c = &static_cell(a, flags);
  }
  Value v = pop();
  std::optional<Value> index;
  if (flags & kAccIndexed) index = pop();
  NameRef name{this,
               (flags & kAccGlobal) ? &frames_.front() : &frames_.back(),
               a, (flags & kAccDynamic) ? &dyn_name : nullptr};
  store_cell(*c, (flags & kAccIndexed) != 0, (flags & kAccRemote) != 0,
             index ? &*index : nullptr, std::move(v), name);
}

void Vm::op_copy_array(std::int32_t a, std::int32_t b, std::int32_t cc) {
  auto flags = static_cast<std::uint32_t>(cc);
  std::uint32_t dst_flags = flags & 0xF;
  std::uint32_t src_flags = (flags >> 4) & 0xF;
  // Dynamic names were pushed src-first, dst-last.
  std::string dst_dyn, src_dyn;
  Cell* dst;
  Cell* src;
  if (dst_flags & kAccDynamic) {
    dst_dyn = pop().to_yarn();
    dst = &dynamic_cell(dst_dyn);
  } else {
    dst = &static_cell(a, dst_flags);
  }
  if (src_flags & kAccDynamic) {
    src_dyn = pop().to_yarn();
    src = &dynamic_cell(src_dyn);
  } else {
    src = &static_cell(b, src_flags);
  }
  NameRef dst_name{this,
                   (dst_flags & kAccGlobal) ? &frames_.front()
                                            : &frames_.back(),
                   a, (dst_flags & kAccDynamic) ? &dst_dyn : nullptr};
  NameRef src_name{this,
                   (src_flags & kAccGlobal) ? &frames_.front()
                                            : &frames_.back(),
                   b, (src_flags & kAccDynamic) ? &src_dyn : nullptr};
  if (!dst->bound) {
    throw RuntimeError("variable '" + dst_name.str() +
                       "' has not been declared");
  }
  if (!src->bound) {
    throw RuntimeError("variable '" + src_name.str() +
                       "' has not been declared");
  }
  bool dst_remote = (dst_flags & kAccRemote) != 0;
  bool src_remote = (src_flags & kAccRemote) != 0;
  if (dst->is_array() && src->is_array()) {
    if (dst_remote && !dst->sym) {
      throw RuntimeError("UR requires a symmetric array");
    }
    if (src_remote && !src->sym) {
      throw RuntimeError("UR requires a symmetric array");
    }
    rt::ArrayLike d{dst->arr.get(), dst->sym ? &*dst->sym : nullptr};
    rt::ArrayLike s{src->arr.get(), src->sym ? &*src->sym : nullptr};
    rt::copy_arrays(*ctx_.pe, d, dst_remote ? current_bff() : -1, s,
                    src_remote ? current_bff() : -1);
  } else {
    // Scalar-to-scalar move through the normal load/store path.
    Value v = load_cell(*src, false, src_remote, nullptr, src_name);
    store_cell(*dst, false, dst_remote, nullptr, std::move(v), dst_name);
  }
}

void Vm::op_lock(std::int32_t a, std::int32_t b, std::int32_t cc) {
  auto flags = static_cast<std::uint32_t>(b);
  Cell* c;
  if (flags & kAccDynamic) {
    std::string name = pop().to_yarn();
    c = &dynamic_cell(name);
  } else {
    c = &static_cell(a, flags);
  }
  if (!c->bound || !c->sym || c->sym->lock_id < 0) {
    throw RuntimeError(
        "variable has no lock: declare it WE HAS A ... AN IM SHARIN IT");
  }
  int id = c->sym->lock_id;
  switch (static_cast<ast::LockOp>(cc)) {
    case ast::LockOp::kAcquire:
      ctx_.pe->set_lock(id);
      frames_.back().it = Value::troof(true);
      break;
    case ast::LockOp::kTry:
      frames_.back().it = Value::troof(ctx_.pe->test_lock(id));
      break;
    case ast::LockOp::kRelease:
      ctx_.pe->clear_lock(id);
      break;
  }
}

void Vm::op_binary(std::int32_t a) {
  Value rhs = pop();
  Value lhs = pop();
  push(rt::op_binary(static_cast<ast::BinOp>(a), lhs, rhs));
}

BinFastI Vm::binfast_prep_numbr() {
  std::size_t n = stack_.size();
  if (n < 2 || !stack_[n - 1].is_numbr() || !stack_[n - 2].is_numbr()) {
    return {};
  }
  ctx_.count_step();
  std::int64_t rhs = stack_[n - 1].numbr_raw();
  stack_.pop_back();
  // pop_back never reallocates, so the payload pointer stays valid for
  // the emitted read-modify-write that follows.
  return {stack_.back().numbr_ptr(), rhs};
}

BinFastD Vm::binfast_prep_numbar() {
  std::size_t n = stack_.size();
  if (n < 2 || !stack_[n - 1].is_numbar() || !stack_[n - 2].is_numbar()) {
    return {};
  }
  ctx_.count_step();
  double rhs = stack_[n - 1].numbar_raw();
  stack_.pop_back();
  return {stack_.back().numbar_ptr(), rhs};
}

void Vm::op_unary(std::int32_t a) {
  Value v = pop();
  push(rt::op_unary(static_cast<ast::UnOp>(a), v));
}

void Vm::op_nary(std::int32_t a, std::int32_t b) {
  std::size_t n = static_cast<std::size_t>(b);
  std::vector<Value> ops(n);
  for (std::size_t i = n; i-- > 0;) ops[i] = pop();
  push(rt::op_nary(static_cast<ast::NaryOp>(a), ops));
}

void Vm::op_cast(std::int32_t a, std::int32_t b) {
  Value v = pop();
  push(v.cast_to(static_cast<ast::TypeKind>(a), b != 0));
}

bool Vm::op_jump_if_false() { return !pop().to_troof(); }

std::size_t Vm::op_call(std::int32_t a, std::int32_t b, std::size_t ret_pc) {
  const FuncMeta& f = chunk_.funcs[static_cast<std::size_t>(a)];
  if (frames_.size() >= kMaxFrames) {
    throw RuntimeError("call depth exceeded (" + std::to_string(kMaxFrames) +
                       "): runaway recursion?");
  }
  Frame frame;
  frame.slots.resize(static_cast<std::size_t>(f.n_slots));
  frame.ret_pc = ret_pc;
  frame.bff_depth = bff_.size();
  frame.name_map = static_cast<std::size_t>(a) + 1;
  for (std::int32_t i = b; i-- > 0;) {
    Cell& c = frame.slots[static_cast<std::size_t>(i)];
    c.v = pop();
    c.bound = true;
  }
  frames_.push_back(std::move(frame));
  return f.entry;
}

std::size_t Vm::op_return() {
  Value rv = pop();
  Frame& f = frames_.back();
  bff_.resize(f.bff_depth);
  std::size_t ret_pc = f.ret_pc;
  frames_.pop_back();
  push(std::move(rv));
  return ret_pc;
}

void Vm::op_me() { push(Value::numbr(ctx_.pe->id())); }

void Vm::op_mah_frenz() { push(Value::numbr(ctx_.pe->n_pes())); }

void Vm::op_whatevr() { push(Value::numbr(ctx_.rng_numbr())); }

void Vm::op_whatevar() { push(Value::numbar(ctx_.rng_numbar())); }

void Vm::op_hugz() { ctx_.pe->barrier_all(); }

void Vm::op_bff_push() {
  std::int64_t target = pop().to_numbr();
  if (target < 0 || target >= ctx_.pe->n_pes()) {
    throw RuntimeError("TXT MAH BFF " + std::to_string(target) +
                       ": no such PE (MAH FRENZ = " +
                       std::to_string(ctx_.pe->n_pes()) + ")");
  }
  bff_.push_back(static_cast<int>(target));
}

void Vm::op_bff_pop(std::int32_t a) {
  bff_.resize(bff_.size() - static_cast<std::size_t>(a));
}

void Vm::op_visible(std::int32_t a, std::int32_t b) {
  std::size_t n = static_cast<std::size_t>(a);
  std::vector<Value> args(n);
  for (std::size_t i = n; i-- > 0;) args[i] = pop();
  std::string text;
  for (const Value& v : args) text += v.to_yarn();
  if (b & 1) text += '\n';
  if (b & 2) {
    ctx_.out->write_err(ctx_.pe->id(), text);
  } else {
    ctx_.out->write(ctx_.pe->id(), text);
  }
}

void Vm::op_gimmeh() {
  auto line = ctx_.read_line();
  push(Value::yarn(line.value_or("")));
}

void Vm::run() {
  reset_for_run();

  std::size_t pc = 0;
  for (;;) {
    ctx_.count_step();
    const Instr& in = chunk_.code[pc++];
    switch (in.op) {
      case Op::kConst:
        op_const(in.a);
        break;
      case Op::kPop:
        op_pop();
        break;
      case Op::kLoadIt:
        op_load_it();
        break;
      case Op::kStoreIt:
        op_store_it();
        break;
      case Op::kDeclare:
        op_declare(in.a);
        break;
      case Op::kUnbind:
        op_unbind(in.a);
        break;
      case Op::kLoadVar:
        op_load_var(in.a, in.b);
        break;
      case Op::kStoreVar:
        op_store_var(in.a, in.b);
        break;
      case Op::kCopyArray:
        op_copy_array(in.a, in.b, in.c);
        break;
      case Op::kLock:
        op_lock(in.a, in.b, in.c);
        break;
      case Op::kBinary:
        op_binary(in.a);
        break;
      case Op::kUnary:
        op_unary(in.a);
        break;
      case Op::kNary:
        op_nary(in.a, in.b);
        break;
      case Op::kCast:
        op_cast(in.a, in.b);
        break;
      case Op::kJump:
        pc = static_cast<std::size_t>(in.a);
        break;
      case Op::kJumpIfFalse:
        if (op_jump_if_false()) pc = static_cast<std::size_t>(in.a);
        break;
      case Op::kCall:
        pc = op_call(in.a, in.b, pc);
        break;
      case Op::kReturn:
        pc = op_return();
        break;
      case Op::kMe:
        op_me();
        break;
      case Op::kMahFrenz:
        op_mah_frenz();
        break;
      case Op::kWhatevr:
        op_whatevr();
        break;
      case Op::kWhatevar:
        op_whatevar();
        break;
      case Op::kHugz:
        op_hugz();
        break;
      case Op::kBffPush:
        op_bff_push();
        break;
      case Op::kBffPop:
        op_bff_pop(in.a);
        break;
      case Op::kVisible:
        op_visible(in.a, in.b);
        break;
      case Op::kGimmeh:
        op_gimmeh();
        break;
      case Op::kHalt:
        return;
    }
  }
}

void run_pe(const Chunk& chunk, rt::ExecContext& ctx) {
  Vm(chunk, ctx).run();
}

}  // namespace lol::vm

// Exception types thrown by the compiler and the runtimes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "support/source_location.hpp"

namespace lol::support {

/// Base class for all errors raised by PARALLOL components. Carries the
/// source location of the offending construct when one is known.
class LolError : public std::runtime_error {
 public:
  LolError(std::string message, SourceLoc loc = {})
      : std::runtime_error(loc.valid() ? loc.str() + ": " + message
                                       : message),
        loc_(loc),
        raw_(std::move(message)) {}

  /// Location of the offending token/statement ("?" when unknown).
  [[nodiscard]] SourceLoc loc() const { return loc_; }

  /// The message without the location prefix.
  [[nodiscard]] const std::string& raw_message() const { return raw_; }

 private:
  SourceLoc loc_;
  std::string raw_;
};

/// Raised by the lexer for malformed input (bad escapes, stray characters).
class LexError : public LolError {
  using LolError::LolError;
};

/// Raised by the parser for grammar violations.
class ParseError : public LolError {
  using LolError::LolError;
};

/// Raised by semantic analysis (type errors on SRSLY declarations,
/// symmetric-object misuse, undeclared identifiers found statically).
class SemaError : public LolError {
  using LolError::LolError;
};

/// Raised during execution by any backend (cast failures, unknown
/// variables, UR outside predication, out-of-bounds indexing, ...).
class RuntimeError : public LolError {
  using LolError::LolError;
};

/// Raised when a PE exhausts its step budget (RunConfig::max_steps).
/// Distinct from RuntimeError so hosts (the service layer, lolrun) can
/// tell "hostile/looping program killed" apart from ordinary semantic
/// failures.
class StepLimitError : public RuntimeError {
 public:
  explicit StepLimitError(std::uint64_t budget)
      : RuntimeError("step budget of " + std::to_string(budget) +
                     " exceeded (program killed; MOAR STEPS PLZ?)"),
        budget_(budget) {}

  [[nodiscard]] std::uint64_t budget() const { return budget_; }

 private:
  std::uint64_t budget_ = 0;
};

/// Raised when fault injection (replay/fault.hpp) kills a PE at a
/// configured step. Distinct from RuntimeError so the engine can flag
/// RunResult::pe_failed and the service can classify the job as
/// JobStatus::kPeFailed rather than an ordinary program error.
class PeKilledError : public RuntimeError {
 public:
  PeKilledError(int pe, std::uint64_t step)
      : RuntimeError("PE " + std::to_string(pe) +
                     " killed by fault injection at step " +
                     std::to_string(step)),
        pe_(pe),
        step_(step) {}

  [[nodiscard]] int pe() const { return pe_; }
  [[nodiscard]] std::uint64_t step() const { return step_; }

 private:
  int pe_ = -1;
  std::uint64_t step_ = 0;
};

}  // namespace lol::support

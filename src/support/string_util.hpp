// Small string helpers shared across the frontend and runtimes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lol::support {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True when `s` consists only of ASCII upper-case letters (the shape of
/// every LOLCODE keyword word).
bool is_all_upper(std::string_view s);

/// Parses a LOLCODE NUMBR literal (optionally signed decimal integer).
std::optional<std::int64_t> parse_numbr(std::string_view s);

/// Parses a LOLCODE NUMBAR literal (decimal floating point; requires a
/// digit somewhere; accepts forms like "1.5", ".5", "2.", "1e3").
std::optional<double> parse_numbar(std::string_view s);

/// Formats a NUMBAR the way LOLCODE-1.2 casts NUMBAR->YARN: fixed point
/// with two fractional digits ("3.14", "-0.50").
std::string format_numbar(double v);

/// Formats a NUMBR as decimal.
std::string format_numbr(std::int64_t v);

/// Escapes a string for embedding in a C string literal (used by codegen
/// and by AST dumps).
std::string c_escape(std::string_view s);

/// First non-empty per-PE error, preferring a root cause over the "SPMD
/// aborted ..." collateral reported by peers the abort broadcast woke up
/// (shared by shmem::LaunchResult and lol::RunResult).
std::string first_root_error(const std::vector<std::string>& errors);

}  // namespace lol::support

#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace lol::support {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_all_upper(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < 'A' || c > 'Z') return false;
  }
  return true;
}

std::optional<std::int64_t> parse_numbr(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_numbar(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  bool has_digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
      break;
    }
  }
  if (!has_digit) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+.
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string format_numbar(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string format_numbr(std::int64_t v) { return std::to_string(v); }

std::string c_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\a':
        out += "\\a";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string first_root_error(const std::vector<std::string>& errors) {
  const std::string* collateral = nullptr;
  for (const auto& e : errors) {
    if (e.empty()) continue;
    if (e.find("SPMD aborted") == std::string::npos) return e;
    if (collateral == nullptr) collateral = &e;
  }
  return collateral != nullptr ? *collateral : std::string{};
}

}  // namespace lol::support

#include "support/rng.hpp"

// Header-only today; this TU anchors the library and keeps a home for any
// future out-of-line RNG additions (e.g. jump-ahead).
namespace lol::support {}

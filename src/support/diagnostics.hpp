// Diagnostic collection and rendering with source-line excerpts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace lol::support {

/// Severity of a reported diagnostic.
enum class Severity { kNote, kWarning, kError };

/// Returns a stable lower-case name ("note", "warning", "error").
std::string_view severity_name(Severity s);

/// One reported issue.
struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

/// Accumulates diagnostics for one compilation and renders them with the
/// offending source line and a caret, e.g.
///
///   error 3:9: expected expression after 'R'
///       x R
///           ^
class DiagnosticEngine {
 public:
  /// `source` is kept by reference for excerpt rendering; it must outlive
  /// the engine. `buffer_name` labels the compilation unit in output.
  explicit DiagnosticEngine(std::string_view source,
                            std::string buffer_name = "<input>");

  void report(Severity severity, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] bool has_errors() const { return errors_ > 0; }

  /// Renders every collected diagnostic (with excerpt + caret) to a string.
  [[nodiscard]] std::string render() const;

  /// Renders a single diagnostic.
  [[nodiscard]] std::string render_one(const Diagnostic& d) const;

 private:
  [[nodiscard]] std::string_view line_text(std::uint32_t line) const;

  std::string_view source_;
  std::string buffer_name_;
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
};

}  // namespace lol::support

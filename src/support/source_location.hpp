// Source positions and ranges used by every frontend diagnostic.
#pragma once

#include <cstdint>
#include <string>

namespace lol::support {

/// A position within a source buffer. Lines and columns are 1-based;
/// `offset` is the 0-based byte offset into the buffer. A default
/// constructed location (line 0) means "unknown".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::uint32_t offset = 0;

  /// True when this location points at real source text.
  [[nodiscard]] bool valid() const { return line != 0; }

  /// Renders as "line:col" (or "?" when unknown).
  [[nodiscard]] std::string str() const {
    if (!valid()) return "?";
    return std::to_string(line) + ":" + std::to_string(col);
  }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Half-open range [begin, end) over a source buffer.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace lol::support

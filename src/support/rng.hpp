// Deterministic per-PE random streams backing WHATEVR / WHATEVAR.
//
// Each processing element owns an independent, reproducible stream so
// parallel LOLCODE programs (e.g. the paper's n-body, which seeds particle
// state with WHATEVAR) can be verified bit-for-bit against a native
// reference that replays the same stream.
#pragma once

#include <cstdint>

namespace lol::support {

/// SplitMix64: tiny, fast, full-period 2^64 generator. Used both directly
/// and to seed per-PE streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// The random stream exposed to LOLCODE programs on one PE.
///
/// WHATEVR  -> `next_numbr()`  : uniform integer in [0, 2^31)
/// WHATEVAR -> `next_numbar()` : uniform double in [0, 1)
class PeRng {
 public:
  /// Derives the PE stream from a global seed and the PE id; distinct PEs
  /// get decorrelated streams, and (seed, pe) fully determines the stream.
  PeRng(std::uint64_t global_seed, int pe)
      : gen_(mix(global_seed, static_cast<std::uint64_t>(pe))) {}

  /// Uniform NUMBR in [0, 2^31), matching C `rand()`-style ranges that the
  /// paper's Table III describes.
  std::int64_t next_numbr() {
    return static_cast<std::int64_t>(gen_.next() >> 33);
  }

  /// Uniform NUMBAR in [0, 1).
  double next_numbar() {
    // 53 random mantissa bits.
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t pe) {
    SplitMix64 s(seed ^ (pe * 0xA24BAED4963EE407ULL + 0x9FB21C651E98DF25ULL));
    return s.next();
  }

  SplitMix64 gen_;
};

}  // namespace lol::support

#include "support/diagnostics.hpp"

#include <sstream>

namespace lol::support {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

DiagnosticEngine::DiagnosticEngine(std::string_view source,
                                   std::string buffer_name)
    : source_(source), buffer_name_(std::move(buffer_name)) {}

void DiagnosticEngine::report(Severity severity, SourceLoc loc,
                              std::string message) {
  if (severity == Severity::kError) ++errors_;
  diags_.push_back(Diagnostic{severity, loc, std::move(message)});
}

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  report(Severity::kError, loc, std::move(message));
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  report(Severity::kWarning, loc, std::move(message));
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  report(Severity::kNote, loc, std::move(message));
}

std::string_view DiagnosticEngine::line_text(std::uint32_t line) const {
  if (line == 0) return {};
  std::uint32_t current = 1;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= source_.size(); ++i) {
    if (i == source_.size() || source_[i] == '\n') {
      if (current == line) return source_.substr(start, i - start);
      start = i + 1;
      ++current;
    }
  }
  return {};
}

std::string DiagnosticEngine::render_one(const Diagnostic& d) const {
  std::ostringstream os;
  os << buffer_name_ << ":" << d.loc.str() << ": " << severity_name(d.severity)
     << ": " << d.message << "\n";
  if (d.loc.valid()) {
    std::string_view text = line_text(d.loc.line);
    if (!text.empty()) {
      os << "    " << text << "\n    ";
      for (std::uint32_t i = 1; i < d.loc.col; ++i) {
        os << (i - 1 < text.size() && text[i - 1] == '\t' ? '\t' : ' ');
      }
      os << "^\n";
    }
  }
  return os.str();
}

std::string DiagnosticEngine::render() const {
  std::string out;
  for (const auto& d : diags_) out += render_one(d);
  return out;
}

}  // namespace lol::support

#include "noc/mesh.hpp"

#include <cmath>
#include <stdexcept>

namespace lol::noc {

MeshModel::MeshModel(MeshParams p) : p_(p) {
  if (p_.rows <= 0 || p_.cols <= 0) {
    throw std::invalid_argument("MeshModel: rows/cols must be positive");
  }
  if (p_.clock_ghz <= 0) {
    throw std::invalid_argument("MeshModel: clock must be positive");
  }
}

std::string MeshModel::name() const {
  return "mesh" + std::to_string(p_.rows) + "x" + std::to_string(p_.cols);
}

std::pair<int, int> MeshModel::coords(int pe) const {
  int n = p_.rows * p_.cols;
  // PEs beyond the physical mesh (oversubscription) wrap around; this
  // keeps the model total when the runtime launches more PEs than cores.
  int idx = ((pe % n) + n) % n;
  return {idx / p_.cols, idx % p_.cols};
}

int MeshModel::hops(int src, int dst) const {
  auto [sr, sc] = coords(src);
  auto [dr, dc] = coords(dst);
  return std::abs(sr - dr) + std::abs(sc - dc);
}

double MeshModel::put_ns(int src, int dst, std::size_t bytes) const {
  if (src == dst) return local_ns(bytes);
  double cycles = p_.write_overhead_cycles +
                  p_.hop_cycles * static_cast<double>(hops(src, dst)) +
                  static_cast<double>(bytes) / p_.link_bytes_per_cycle;
  return cycles_to_ns(cycles);
}

double MeshModel::get_ns(int src, int dst, std::size_t bytes) const {
  if (src == dst) return local_ns(bytes);
  // Request travels to the target, payload travels back: the mesh is
  // traversed twice and the read engine adds protocol overhead.
  double h = static_cast<double>(hops(src, dst));
  double cycles = p_.read_overhead_cycles + 2.0 * p_.hop_cycles * h +
                  static_cast<double>(bytes) / p_.link_bytes_per_cycle;
  return cycles_to_ns(cycles);
}

double MeshModel::local_ns(std::size_t bytes) const {
  double cycles =
      1.0 + static_cast<double>(bytes) / p_.local_bytes_per_cycle;
  return cycles_to_ns(cycles);
}

double MeshModel::barrier_ns(int n_pes) const {
  if (n_pes <= 1) return 0.0;
  // Dissemination barrier: ceil(log2 n) rounds, each bounded by the
  // farthest partner (diameter hops) plus per-round overhead.
  double rounds = std::ceil(std::log2(static_cast<double>(n_pes)));
  double cycles = rounds * (p_.barrier_cycles_per_round +
                            p_.hop_cycles * static_cast<double>(diameter()));
  return cycles_to_ns(cycles);
}

double MeshModel::tree_barrier_ns(int n_pes, int radix) const {
  // Combining tree on the mesh: each level is one gather round bounded
  // by the farthest group member (diameter hops) plus round overhead.
  double cycles = tree_depth(n_pes, radix) *
                  (p_.barrier_cycles_per_round +
                   p_.hop_cycles * static_cast<double>(diameter()));
  return cycles_to_ns(cycles);
}

double MeshModel::lock_ns(int src, int home) const {
  double h = static_cast<double>(hops(src, home));
  return cycles_to_ns(p_.lock_overhead_cycles + 2.0 * p_.hop_cycles * h);
}

}  // namespace lol::noc

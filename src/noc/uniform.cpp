#include "noc/uniform.hpp"

#include <cmath>

namespace lol::noc {

UniformModel::UniformModel(UniformParams p, std::string label)
    : p_(p), label_(std::move(label)) {}

double UniformModel::put_ns(int src, int dst, std::size_t bytes) const {
  if (src == dst) return local_ns(bytes);
  return p_.put_latency_ns + static_cast<double>(bytes) / p_.bandwidth_gbs;
}

double UniformModel::get_ns(int src, int dst, std::size_t bytes) const {
  if (src == dst) return local_ns(bytes);
  return p_.get_latency_ns + static_cast<double>(bytes) / p_.bandwidth_gbs;
}

double UniformModel::local_ns(std::size_t bytes) const {
  return p_.local_latency_ns +
         static_cast<double>(bytes) / p_.local_bandwidth_gbs;
}

double UniformModel::barrier_ns(int n_pes) const {
  if (n_pes <= 1) return 0.0;
  return p_.barrier_round_ns * std::ceil(std::log2(static_cast<double>(n_pes)));
}

double UniformModel::tree_barrier_ns(int n_pes, int radix) const {
  // One fabric round per combining level.
  return p_.barrier_round_ns * tree_depth(n_pes, radix);
}

double UniformModel::lock_ns(int /*src*/, int /*home*/) const {
  return p_.lock_ns;
}

}  // namespace lol::noc

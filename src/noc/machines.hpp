// Preset machine models for the paper's two demonstration platforms plus
// a plain laptop-style shared-memory baseline.
#pragma once

#include "noc/mesh.hpp"
#include "noc/model.hpp"
#include "noc/uniform.hpp"

namespace lol::noc {

/// The 16-core Adapteva Epiphany-III on the $99 Parallella board:
/// 4x4 XY-routed mesh at 600 MHz (paper §II).
ModelPtr epiphany3();

/// A larger Epiphany-style mesh (the architecture the paper's authors
/// argue scales to HPC); useful for mesh-scaling ablations.
ModelPtr epiphany_mesh(int rows, int cols);

/// One cabinet-slice of the Cray XC40 (Aries fabric) the paper runs on:
/// flat high-latency, high-bandwidth network.
ModelPtr xc40_aries();

/// A laptop-style shared-memory machine: near-flat and fast. This is what
/// the tests run "for real", so its model is also the near-zero baseline.
ModelPtr shared_memory();

/// Looks a preset up by name ("epiphany3", "xc40", "smp"); returns nullptr
/// for unknown names.
ModelPtr by_name(const std::string& name);

}  // namespace lol::noc

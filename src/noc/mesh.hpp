// 2-D mesh network-on-chip model (Epiphany-III style).
#pragma once

#include <cstdint>

#include "noc/model.hpp"

namespace lol::noc {

/// Parameters of a 2-D mesh NoC with dimension-ordered (XY) routing.
/// Defaults approximate the 16-core Adapteva Epiphany-III that ships on
/// the Parallella board the paper targets: 600 MHz cores, single-cycle
/// per-hop routers with ~1.5 cycles effective hop latency, 8-byte-wide
/// write links (4.8 GB/s per link at 600 MHz), and read transactions that
/// traverse the mesh twice (request + response) with extra protocol
/// overhead — on real silicon remote reads are several times slower than
/// remote writes, which this reproduces.
struct MeshParams {
  int rows = 4;
  int cols = 4;
  double clock_ghz = 0.6;          // 600 MHz
  double hop_cycles = 1.5;         // per-router forwarding latency
  double link_bytes_per_cycle = 8; // write-network width
  double write_overhead_cycles = 6;  // injection + ejection
  double read_overhead_cycles = 16;  // read transaction setup
  double local_bytes_per_cycle = 8;
  double barrier_cycles_per_round = 12;  // per dissemination round
  double lock_overhead_cycles = 24;      // test-and-set round trip
};

/// XY-routed 2-D mesh cost model.
class MeshModel final : public MachineModel {
 public:
  explicit MeshModel(MeshParams p = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double put_ns(int src, int dst,
                              std::size_t bytes) const override;
  [[nodiscard]] double get_ns(int src, int dst,
                              std::size_t bytes) const override;
  [[nodiscard]] double local_ns(std::size_t bytes) const override;
  [[nodiscard]] double barrier_ns(int n_pes) const override;
  [[nodiscard]] double tree_barrier_ns(int n_pes, int radix) const override;
  [[nodiscard]] double lock_ns(int src, int home) const override;

  /// Manhattan hop count between two PEs under XY routing (0 for self).
  [[nodiscard]] int hops(int src, int dst) const;

  /// PE id -> (row, col), row-major.
  [[nodiscard]] std::pair<int, int> coords(int pe) const;

  [[nodiscard]] const MeshParams& params() const { return p_; }

  /// The worst-case hop distance in the mesh (corner to corner).
  [[nodiscard]] int diameter() const { return (p_.rows - 1) + (p_.cols - 1); }

 private:
  [[nodiscard]] double cycles_to_ns(double cycles) const {
    return cycles / p_.clock_ghz;
  }

  MeshParams p_;
};

}  // namespace lol::noc

#include "noc/machines.hpp"

namespace lol::noc {

ModelPtr epiphany3() { return std::make_shared<MeshModel>(MeshParams{}); }

ModelPtr epiphany_mesh(int rows, int cols) {
  MeshParams p;
  p.rows = rows;
  p.cols = cols;
  return std::make_shared<MeshModel>(p);
}

ModelPtr xc40_aries() {
  return std::make_shared<UniformModel>(UniformParams{}, "xc40-aries");
}

ModelPtr shared_memory() {
  UniformParams p;
  p.put_latency_ns = 90.0;
  p.get_latency_ns = 90.0;
  p.bandwidth_gbs = 20.0;
  p.local_latency_ns = 40.0;
  p.local_bandwidth_gbs = 30.0;
  p.barrier_round_ns = 180.0;
  p.lock_ns = 160.0;
  return std::make_shared<UniformModel>(p, "shared-memory");
}

ModelPtr by_name(const std::string& name) {
  if (name == "epiphany3" || name == "parallella") return epiphany3();
  if (name == "xc40" || name == "aries" || name == "cray") return xc40_aries();
  if (name == "smp" || name == "shared" || name == "shared-memory") {
    return shared_memory();
  }
  return nullptr;
}

}  // namespace lol::noc

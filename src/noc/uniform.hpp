// Uniform-latency fabric model (Cray XC40 / Aries style) and a plain
// shared-memory model.
#pragma once

#include "noc/model.hpp"

namespace lol::noc {

/// Parameters of a flat fabric where every remote PE is (roughly) the same
/// distance away. Defaults approximate a Cray XC40's Aries interconnect
/// as the paper's supercomputer target: ~1.3 us one-sided latency,
/// ~10 GB/s per-PE bandwidth, logarithmic-tree barriers.
struct UniformParams {
  double put_latency_ns = 1300.0;
  double get_latency_ns = 1700.0;  // reads pay the round trip
  double bandwidth_gbs = 10.0;     // payload streaming rate
  double local_latency_ns = 60.0;
  double local_bandwidth_gbs = 25.0;
  double barrier_round_ns = 1500.0;  // per log2(n) round
  double lock_ns = 2600.0;           // AMO round trip
};

/// Flat-topology cost model: distance-independent remote costs.
class UniformModel final : public MachineModel {
 public:
  explicit UniformModel(UniformParams p = {}, std::string label = "uniform");

  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] double put_ns(int src, int dst,
                              std::size_t bytes) const override;
  [[nodiscard]] double get_ns(int src, int dst,
                              std::size_t bytes) const override;
  [[nodiscard]] double local_ns(std::size_t bytes) const override;
  [[nodiscard]] double barrier_ns(int n_pes) const override;
  [[nodiscard]] double tree_barrier_ns(int n_pes, int radix) const override;
  [[nodiscard]] double lock_ns(int src, int home) const override;

  [[nodiscard]] const UniformParams& params() const { return p_; }

 private:
  UniformParams p_;
  std::string label_;
};

}  // namespace lol::noc

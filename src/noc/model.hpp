// Machine/network cost models.
//
// The paper demonstrates the same parallel LOLCODE program on two very
// different machines: a $99 Parallella board whose 16-core Epiphany-III
// coprocessor is a 2-D mesh network-on-chip, and a Cray XC40 with an
// Aries fabric. We cannot execute on either, so the shmem substrate
// supports an optional *simulated-time* mode: every remote operation
// charges the executing PE the modeled cost of that operation on the
// selected machine. Benches then reproduce the paper's platform story
// (topology-dependent cost on the mesh, flat-but-slower cost on the
// supercomputer fabric) deterministically on a laptop.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace lol::noc {

/// Abstract cost model for one-sided remote memory operations.
/// All costs are in nanoseconds of simulated time.
class MachineModel {
 public:
  virtual ~MachineModel() = default;

  /// Human-readable machine name ("epiphany3-mesh", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Cost of a one-sided put of `bytes` from PE `src` into PE `dst`.
  [[nodiscard]] virtual double put_ns(int src, int dst,
                                      std::size_t bytes) const = 0;

  /// Cost of a one-sided get (round trip: request + payload back).
  [[nodiscard]] virtual double get_ns(int src, int dst,
                                      std::size_t bytes) const = 0;

  /// Cost of touching `bytes` of the PE's own memory.
  [[nodiscard]] virtual double local_ns(std::size_t bytes) const = 0;

  /// Cost of a barrier over `n_pes` PEs (charged after all arrive).
  [[nodiscard]] virtual double barrier_ns(int n_pes) const = 0;

  /// Cost of a combining-tree barrier of fan-in `radix` over `n_pes`
  /// PEs: the critical path climbs ceil(log_radix(n_pes)) combining
  /// levels, so wider trees are shallower and cheaper. The default
  /// keeps models that predate the tree honest by charging their flat
  /// barrier cost regardless of radix.
  [[nodiscard]] virtual double tree_barrier_ns(int n_pes, int radix) const {
    (void)radix;
    return barrier_ns(n_pes);
  }

  /// Cost of one lock acquire/release round trip from `src` to the lock's
  /// home PE `home`.
  [[nodiscard]] virtual double lock_ns(int src, int home) const = 0;
};

using ModelPtr = std::shared_ptr<const MachineModel>;

/// Combining-tree depth for n_pes under fan-in `radix` — the number of
/// levels the runtime's barrier actually climbs. Integer arithmetic, so
/// models never disagree with the tree by a floating-point ulp.
[[nodiscard]] constexpr int tree_depth(int n_pes, int radix) {
  if (n_pes <= 1) return 0;
  if (radix < 2) radix = 2;
  int depth = 0;
  for (int w = n_pes; w > 1; w = (w + radix - 1) / radix) ++depth;
  return depth;
}

}  // namespace lol::noc

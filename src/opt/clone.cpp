#include "opt/clone.hpp"

#include <memory>
#include <utility>

namespace lol::opt {

using namespace ast;

namespace {

ExprPtr clone_opt(const ExprPtr& e) { return e ? clone_expr(*e) : nullptr; }

std::vector<ExprPtr> clone_exprs(const std::vector<ExprPtr>& v) {
  std::vector<ExprPtr> out;
  out.reserve(v.size());
  for (const auto& e : v) out.push_back(clone_expr(*e));
  return out;
}

}  // namespace

ExprPtr clone_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumbrLit: {
      const auto& n = static_cast<const NumbrLit&>(e);
      return std::make_unique<NumbrLit>(n.value, n.loc);
    }
    case ExprKind::kNumbarLit: {
      const auto& n = static_cast<const NumbarLit&>(e);
      return std::make_unique<NumbarLit>(n.value, n.loc);
    }
    case ExprKind::kTroofLit: {
      const auto& n = static_cast<const TroofLit&>(e);
      return std::make_unique<TroofLit>(n.value, n.loc);
    }
    case ExprKind::kNoobLit:
      return std::make_unique<NoobLit>(e.loc);
    case ExprKind::kYarnLit: {
      const auto& n = static_cast<const YarnLit&>(e);
      return std::make_unique<YarnLit>(n.segments, n.loc);
    }
    case ExprKind::kVarRef: {
      const auto& n = static_cast<const VarRef&>(e);
      return std::make_unique<VarRef>(n.name, n.locality, n.loc);
    }
    case ExprKind::kSrsRef: {
      const auto& n = static_cast<const SrsRef&>(e);
      return std::make_unique<SrsRef>(clone_expr(*n.name_expr), n.locality,
                                      n.loc);
    }
    case ExprKind::kIndex: {
      const auto& n = static_cast<const IndexExpr&>(e);
      return std::make_unique<IndexExpr>(clone_expr(*n.base),
                                         clone_expr(*n.index), n.loc);
    }
    case ExprKind::kItRef:
      return std::make_unique<ItRef>(e.loc);
    case ExprKind::kMe:
      return std::make_unique<MeExpr>(e.loc);
    case ExprKind::kMahFrenz:
      return std::make_unique<MahFrenzExpr>(e.loc);
    case ExprKind::kWhatevr:
      return std::make_unique<WhatevrExpr>(e.loc);
    case ExprKind::kWhatevar:
      return std::make_unique<WhatevarExpr>(e.loc);
    case ExprKind::kBinary: {
      const auto& n = static_cast<const BinaryExpr&>(e);
      return std::make_unique<BinaryExpr>(n.op, clone_expr(*n.lhs),
                                          clone_expr(*n.rhs), n.loc);
    }
    case ExprKind::kNary: {
      const auto& n = static_cast<const NaryExpr&>(e);
      return std::make_unique<NaryExpr>(n.op, clone_exprs(n.operands), n.loc);
    }
    case ExprKind::kUnary: {
      const auto& n = static_cast<const UnaryExpr&>(e);
      return std::make_unique<UnaryExpr>(n.op, clone_expr(*n.operand), n.loc);
    }
    case ExprKind::kCast: {
      const auto& n = static_cast<const CastExpr&>(e);
      return std::make_unique<CastExpr>(clone_expr(*n.value), n.type, n.loc);
    }
    case ExprKind::kCall: {
      const auto& n = static_cast<const CallExpr&>(e);
      return std::make_unique<CallExpr>(n.callee, clone_exprs(n.args), n.loc);
    }
  }
  return nullptr;  // unreachable
}

StmtPtr clone_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kVarDecl: {
      const auto& d = static_cast<const VarDeclStmt&>(s);
      auto out = std::make_unique<VarDeclStmt>(d.loc);
      out->scope = d.scope;
      out->name = d.name;
      out->declared_type = d.declared_type;
      out->srsly = d.srsly;
      out->is_array = d.is_array;
      out->array_size = clone_opt(d.array_size);
      out->init = clone_opt(d.init);
      out->sharin = d.sharin;
      return out;
    }
    case StmtKind::kAssign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      return std::make_unique<AssignStmt>(clone_expr(*a.target),
                                          clone_expr(*a.value), a.loc);
    }
    case StmtKind::kExpr: {
      const auto& x = static_cast<const ExprStmt&>(s);
      return std::make_unique<ExprStmt>(clone_expr(*x.expr), x.loc);
    }
    case StmtKind::kVisible: {
      const auto& v = static_cast<const VisibleStmt&>(s);
      auto out = std::make_unique<VisibleStmt>(v.loc);
      out->args = clone_exprs(v.args);
      out->newline = v.newline;
      out->to_stderr = v.to_stderr;
      return out;
    }
    case StmtKind::kGimmeh: {
      const auto& g = static_cast<const GimmehStmt&>(s);
      return std::make_unique<GimmehStmt>(clone_expr(*g.target), g.loc);
    }
    case StmtKind::kCastTo: {
      const auto& c = static_cast<const CastToStmt&>(s);
      return std::make_unique<CastToStmt>(clone_expr(*c.target), c.type,
                                          c.loc);
    }
    case StmtKind::kORly: {
      const auto& o = static_cast<const ORlyStmt&>(s);
      auto out = std::make_unique<ORlyStmt>(o.loc);
      out->ya_rly = clone_body(o.ya_rly);
      for (const auto& [cond, body] : o.mebbe) {
        out->mebbe.emplace_back(clone_expr(*cond), clone_body(body));
      }
      out->no_wai = clone_body(o.no_wai);
      return out;
    }
    case StmtKind::kWtf: {
      const auto& w = static_cast<const WtfStmt&>(s);
      auto out = std::make_unique<WtfStmt>(w.loc);
      for (const auto& c : w.cases) {
        WtfStmt::Case cc;
        cc.literal = clone_expr(*c.literal);
        cc.body = clone_body(c.body);
        out->cases.push_back(std::move(cc));
      }
      out->default_body = clone_body(w.default_body);
      out->has_default = w.has_default;
      return out;
    }
    case StmtKind::kLoop: {
      const auto& l = static_cast<const LoopStmt&>(s);
      auto out = std::make_unique<LoopStmt>(l.loc);
      out->label = l.label;
      out->update = l.update;
      out->func = l.func;
      out->var = l.var;
      out->cond_kind = l.cond_kind;
      out->cond = clone_opt(l.cond);
      out->body = clone_body(l.body);
      return out;
    }
    case StmtKind::kGtfo:
      return std::make_unique<GtfoStmt>(s.loc);
    case StmtKind::kFoundYr: {
      const auto& f = static_cast<const FoundYrStmt&>(s);
      return std::make_unique<FoundYrStmt>(clone_expr(*f.value), f.loc);
    }
    case StmtKind::kFuncDef: {
      const auto& f = static_cast<const FuncDefStmt&>(s);
      auto out = std::make_unique<FuncDefStmt>(f.loc);
      out->name = f.name;
      out->params = f.params;
      out->body = clone_body(f.body);
      return out;
    }
    case StmtKind::kCanHas: {
      const auto& c = static_cast<const CanHasStmt&>(s);
      return std::make_unique<CanHasStmt>(c.library, c.loc);
    }
    case StmtKind::kHugz:
      return std::make_unique<HugzStmt>(s.loc);
    case StmtKind::kLock: {
      const auto& l = static_cast<const LockStmt&>(s);
      return std::make_unique<LockStmt>(l.op, clone_expr(*l.target), l.loc);
    }
    case StmtKind::kTxt: {
      const auto& t = static_cast<const TxtStmt&>(s);
      auto out = std::make_unique<TxtStmt>(t.loc);
      out->target_pe = clone_expr(*t.target_pe);
      out->body = clone_body(t.body);
      out->block_form = t.block_form;
      return out;
    }
  }
  return nullptr;  // unreachable
}

StmtList clone_body(const StmtList& body) {
  StmtList out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(clone_stmt(*s));
  return out;
}

}  // namespace lol::opt

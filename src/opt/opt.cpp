#include "opt/opt.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ast/printer.hpp"
#include "obs/metrics.hpp"
#include "opt/clone.hpp"
#include "rt/ops.hpp"
#include "rt/value.hpp"
#include "support/error.hpp"

namespace lol::opt {

using namespace ast;

namespace {

// ---------------------------------------------------------------------------
// Literals <-> runtime values
// ---------------------------------------------------------------------------

std::optional<rt::Value> literal_of(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumbrLit:
      return rt::Value::numbr(static_cast<const NumbrLit&>(e).value);
    case ExprKind::kNumbarLit:
      return rt::Value::numbar(static_cast<const NumbarLit&>(e).value);
    case ExprKind::kTroofLit:
      return rt::Value::troof(static_cast<const TroofLit&>(e).value);
    case ExprKind::kNoobLit:
      return rt::Value::noob();
    case ExprKind::kYarnLit: {
      const auto& y = static_cast<const YarnLit&>(e);
      if (!y.is_plain()) return std::nullopt;
      return rt::Value::yarn(y.plain_text());
    }
    default:
      return std::nullopt;
  }
}

ExprPtr make_literal(const rt::Value& v, support::SourceLoc loc) {
  switch (v.type()) {
    case TypeKind::kNoob:
      return std::make_unique<NoobLit>(loc);
    case TypeKind::kTroof:
      return std::make_unique<TroofLit>(v.troof_raw(), loc);
    case TypeKind::kNumbr:
      return std::make_unique<NumbrLit>(v.numbr_raw(), loc);
    case TypeKind::kNumbar:
      return std::make_unique<NumbarLit>(v.numbar_raw(), loc);
    case TypeKind::kYarn: {
      std::vector<lex::YarnSegment> segs;
      if (!v.yarn_raw().empty()) {
        segs.push_back(lex::YarnSegment{false, v.yarn_raw()});
      }
      return std::make_unique<YarnLit>(std::move(segs), loc);
    }
  }
  return std::make_unique<NoobLit>(loc);  // unreachable
}

std::size_t count_expr_nodes(const Expr& e) {
  std::size_t n = 1;
  switch (e.kind) {
    case ExprKind::kSrsRef:
      n += count_expr_nodes(*static_cast<const SrsRef&>(e).name_expr);
      break;
    case ExprKind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      n += count_expr_nodes(*i.base) + count_expr_nodes(*i.index);
      break;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      n += count_expr_nodes(*b.lhs) + count_expr_nodes(*b.rhs);
      break;
    }
    case ExprKind::kNary:
      for (const auto& o : static_cast<const NaryExpr&>(e).operands) {
        n += count_expr_nodes(*o);
      }
      break;
    case ExprKind::kUnary:
      n += count_expr_nodes(*static_cast<const UnaryExpr&>(e).operand);
      break;
    case ExprKind::kCast:
      n += count_expr_nodes(*static_cast<const CastExpr&>(e).value);
      break;
    case ExprKind::kCall:
      for (const auto& a : static_cast<const CallExpr&>(e).args) {
        n += count_expr_nodes(*a);
      }
      break;
    default:
      break;
  }
  return n;
}

std::size_t count_stmts(const StmtList& body);

std::size_t count_stmts(const Stmt& s) {
  std::size_t n = 1;
  switch (s.kind) {
    case StmtKind::kORly: {
      const auto& o = static_cast<const ORlyStmt&>(s);
      n += count_stmts(o.ya_rly) + count_stmts(o.no_wai);
      for (const auto& [cond, body] : o.mebbe) n += count_stmts(body);
      break;
    }
    case StmtKind::kWtf: {
      const auto& w = static_cast<const WtfStmt&>(s);
      for (const auto& c : w.cases) n += count_stmts(c.body);
      n += count_stmts(w.default_body);
      break;
    }
    case StmtKind::kLoop:
      n += count_stmts(static_cast<const LoopStmt&>(s).body);
      break;
    case StmtKind::kFuncDef:
      n += count_stmts(static_cast<const FuncDefStmt&>(s).body);
      break;
    case StmtKind::kTxt:
      n += count_stmts(static_cast<const TxtStmt&>(s).body);
      break;
    default:
      break;
  }
  return n;
}

std::size_t count_stmts(const StmtList& body) {
  std::size_t n = 0;
  for (const auto& s : body) n += count_stmts(*s);
  return n;
}

// ---------------------------------------------------------------------------
// Census: one structural walk collecting the name facts every pass needs
// ---------------------------------------------------------------------------

struct Census {
  std::unordered_map<std::string, int> decl_count;  // decls + loop vars + params
  std::unordered_map<std::string, int> ref_count;   // reads + targets + :{x}
  std::unordered_set<std::string> assigned;  // R / GIMMEH / IS NOW A targets
  std::unordered_set<std::string> mutated;   // assigned + loop vars + params
  std::unordered_set<std::string> identifiers;  // every name in the program
  // Unique declarations by name (only names with decl_count == 1).
  std::unordered_map<std::string, const VarDeclStmt*> unique_decl;
  std::unordered_map<std::string, const LoopStmt*> unique_loop;
  bool has_srs = false;

  void note_decl(const std::string& name) {
    ++decl_count[name];
    identifiers.insert(name);
  }
  void note_ref(const std::string& name) {
    ++ref_count[name];
    identifiers.insert(name);
  }
};

/// The base variable name an lvalue place writes through, or "" when the
/// place is dynamic (SRS).
const std::string* place_base_name(const Expr& place) {
  const Expr* e = &place;
  if (e->kind == ExprKind::kIndex) {
    e = static_cast<const IndexExpr&>(*e).base.get();
  }
  if (e->kind == ExprKind::kVarRef) {
    return &static_cast<const VarRef&>(*e).name;
  }
  return nullptr;
}

void census_expr(const Expr& e, Census& c) {
  switch (e.kind) {
    case ExprKind::kYarnLit:
      for (const auto& seg : static_cast<const YarnLit&>(e).segments) {
        if (seg.is_var) c.note_ref(seg.text);
      }
      break;
    case ExprKind::kVarRef:
      c.note_ref(static_cast<const VarRef&>(e).name);
      break;
    case ExprKind::kSrsRef:
      c.has_srs = true;
      census_expr(*static_cast<const SrsRef&>(e).name_expr, c);
      break;
    case ExprKind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      census_expr(*i.base, c);
      census_expr(*i.index, c);
      break;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      census_expr(*b.lhs, c);
      census_expr(*b.rhs, c);
      break;
    }
    case ExprKind::kNary:
      for (const auto& o : static_cast<const NaryExpr&>(e).operands) {
        census_expr(*o, c);
      }
      break;
    case ExprKind::kUnary:
      census_expr(*static_cast<const UnaryExpr&>(e).operand, c);
      break;
    case ExprKind::kCast:
      census_expr(*static_cast<const CastExpr&>(e).value, c);
      break;
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(e);
      c.identifiers.insert(call.callee);
      for (const auto& a : call.args) census_expr(*a, c);
      break;
    }
    default:
      break;
  }
}

void census_body(const StmtList& body, Census& c);

void census_place(const Expr& place, Census& c) {
  census_expr(place, c);  // target names count as references
  if (const std::string* base = place_base_name(place)) {
    c.assigned.insert(*base);
    c.mutated.insert(*base);
  }
}

void census_stmt(const Stmt& s, Census& c) {
  switch (s.kind) {
    case StmtKind::kVarDecl: {
      const auto& d = static_cast<const VarDeclStmt&>(s);
      c.note_decl(d.name);
      if (d.init) census_expr(*d.init, c);
      if (d.array_size) census_expr(*d.array_size, c);
      break;
    }
    case StmtKind::kAssign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      census_place(*a.target, c);
      census_expr(*a.value, c);
      break;
    }
    case StmtKind::kExpr:
      census_expr(*static_cast<const ExprStmt&>(s).expr, c);
      break;
    case StmtKind::kVisible:
      for (const auto& a : static_cast<const VisibleStmt&>(s).args) {
        census_expr(*a, c);
      }
      break;
    case StmtKind::kGimmeh:
      census_place(*static_cast<const GimmehStmt&>(s).target, c);
      break;
    case StmtKind::kCastTo:
      census_place(*static_cast<const CastToStmt&>(s).target, c);
      break;
    case StmtKind::kORly: {
      const auto& o = static_cast<const ORlyStmt&>(s);
      census_body(o.ya_rly, c);
      for (const auto& [cond, body] : o.mebbe) {
        census_expr(*cond, c);
        census_body(body, c);
      }
      census_body(o.no_wai, c);
      break;
    }
    case StmtKind::kWtf: {
      const auto& w = static_cast<const WtfStmt&>(s);
      for (const auto& cs : w.cases) {
        census_expr(*cs.literal, c);
        census_body(cs.body, c);
      }
      census_body(w.default_body, c);
      break;
    }
    case StmtKind::kLoop: {
      const auto& l = static_cast<const LoopStmt&>(s);
      c.identifiers.insert(l.label);
      if (!l.func.empty()) c.identifiers.insert(l.func);
      if (!l.var.empty()) {
        c.note_decl(l.var);
        c.mutated.insert(l.var);
        if (c.decl_count[l.var] == 1) c.unique_loop[l.var] = &l;
      }
      if (l.cond) census_expr(*l.cond, c);
      census_body(l.body, c);
      break;
    }
    case StmtKind::kFoundYr:
      census_expr(*static_cast<const FoundYrStmt&>(s).value, c);
      break;
    case StmtKind::kFuncDef: {
      const auto& f = static_cast<const FuncDefStmt&>(s);
      c.identifiers.insert(f.name);
      for (const auto& p : f.params) {
        c.note_decl(p);
        c.mutated.insert(p);
      }
      census_body(f.body, c);
      break;
    }
    case StmtKind::kLock:
      census_place(*static_cast<const LockStmt&>(s).target, c);
      break;
    case StmtKind::kTxt: {
      const auto& t = static_cast<const TxtStmt&>(s);
      census_expr(*t.target_pe, c);
      census_body(t.body, c);
      break;
    }
    case StmtKind::kGtfo:
    case StmtKind::kCanHas:
    case StmtKind::kHugz:
      break;
  }
}

void census_body(const StmtList& body, Census& c) {
  for (const auto& s : body) census_stmt(*s, c);
}

Census take_census(const Program& p) {
  Census c;
  census_body(p.body, c);
  for (const auto& [name, count] : c.decl_count) {
    if (count != 1) {
      c.unique_loop.erase(name);
    }
  }
  // Map unique VarDeclStmt nodes (loop vars and params have no decl node).
  struct DeclFinder {
    Census* c;
    void body(const StmtList& b) {
      for (const auto& s : b) stmt(*s);
    }
    void stmt(const Stmt& s) {
      switch (s.kind) {
        case StmtKind::kVarDecl: {
          const auto& d = static_cast<const VarDeclStmt&>(s);
          if (c->decl_count[d.name] == 1) c->unique_decl[d.name] = &d;
          break;
        }
        case StmtKind::kORly: {
          const auto& o = static_cast<const ORlyStmt&>(s);
          body(o.ya_rly);
          for (const auto& [cond, mb] : o.mebbe) body(mb);
          body(o.no_wai);
          break;
        }
        case StmtKind::kWtf: {
          const auto& w = static_cast<const WtfStmt&>(s);
          for (const auto& cs : w.cases) body(cs.body);
          body(w.default_body);
          break;
        }
        case StmtKind::kLoop:
          body(static_cast<const LoopStmt&>(s).body);
          break;
        case StmtKind::kFuncDef:
          body(static_cast<const FuncDefStmt&>(s).body);
          break;
        case StmtKind::kTxt:
          body(static_cast<const TxtStmt&>(s).body);
          break;
        default:
          break;
      }
    }
  };
  DeclFinder{&c}.body(p.body);
  return c;
}

// ---------------------------------------------------------------------------
// Static type inference
//
// A variable's runtime type is statically known when every value it can
// ever hold has one type: SRSLY declarations (stores cast), symmetric
// objects (the fixed-width heap casts), and never-mutated private
// scalars whose initializer type is itself inferable. Soundness, not
// completeness: nullopt just makes a pass skip an opportunity.
// ---------------------------------------------------------------------------

struct Types {
  std::unordered_map<std::string, TypeKind> vars;       // scalar reads
  std::unordered_map<std::string, TypeKind> array_elem; // base'Z i reads

  std::optional<TypeKind> of(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kNumbrLit:
        return TypeKind::kNumbr;
      case ExprKind::kNumbarLit:
        return TypeKind::kNumbar;
      case ExprKind::kTroofLit:
        return TypeKind::kTroof;
      case ExprKind::kNoobLit:
        return TypeKind::kNoob;
      case ExprKind::kYarnLit:
        return TypeKind::kYarn;
      case ExprKind::kVarRef: {
        auto it = vars.find(static_cast<const VarRef&>(e).name);
        if (it == vars.end()) return std::nullopt;
        return it->second;
      }
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        if (i.base->kind != ExprKind::kVarRef) return std::nullopt;
        auto it =
            array_elem.find(static_cast<const VarRef&>(*i.base).name);
        if (it == array_elem.end()) return std::nullopt;
        return it->second;
      }
      case ExprKind::kMe:
      case ExprKind::kMahFrenz:
      case ExprKind::kWhatevr:
        return TypeKind::kNumbr;
      case ExprKind::kWhatevar:
        return TypeKind::kNumbar;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        switch (b.op) {
          case BinOp::kSum:
          case BinOp::kDiff:
          case BinOp::kProdukt:
          case BinOp::kQuoshunt:
          case BinOp::kMod:
          case BinOp::kBiggr:
          case BinOp::kSmallr: {
            auto l = of(*b.lhs);
            auto r = of(*b.rhs);
            if (!l || !r) return std::nullopt;
            bool ln = *l == TypeKind::kNumbr || *l == TypeKind::kNumbar;
            bool rn = *r == TypeKind::kNumbr || *r == TypeKind::kNumbar;
            if (!ln || !rn) return std::nullopt;
            if (*l == TypeKind::kNumbar || *r == TypeKind::kNumbar) {
              return TypeKind::kNumbar;
            }
            return TypeKind::kNumbr;
          }
          case BinOp::kBigger:
          case BinOp::kSmallrCmp:
          case BinOp::kBothSaem:
          case BinOp::kDiffrint:
          case BinOp::kBothOf:
          case BinOp::kEitherOf:
          case BinOp::kWonOf:
            return TypeKind::kTroof;
        }
        return std::nullopt;
      }
      case ExprKind::kNary:
        return static_cast<const NaryExpr&>(e).op == NaryOp::kSmoosh
                   ? TypeKind::kYarn
                   : TypeKind::kTroof;
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        switch (u.op) {
          case UnOp::kNot:
            return TypeKind::kTroof;
          case UnOp::kSquar: {
            auto t = of(*u.operand);
            if (t == TypeKind::kNumbr || t == TypeKind::kNumbar) return t;
            return std::nullopt;
          }
          case UnOp::kUnsquar:
          case UnOp::kFlip:
            return TypeKind::kNumbar;
        }
        return std::nullopt;
      }
      case ExprKind::kCast:
        return static_cast<const CastExpr&>(e).type;
      default:
        return std::nullopt;  // IT, SRS, calls
    }
  }

  [[nodiscard]] bool numeric(const Expr& e) const {
    auto t = of(e);
    return t == TypeKind::kNumbr || t == TypeKind::kNumbar;
  }
};

Types infer_types(const Census& c) {
  Types t;
  for (const auto& [name, d] : c.unique_decl) {
    if (d->is_array) {
      // Element stores cast for SRSLY arrays and for the fixed-width
      // symmetric heap; plain private arrays hold anything.
      if (d->declared_type &&
          (d->srsly || d->scope == DeclScope::kSymmetric)) {
        t.array_elem[name] = *d->declared_type;
      }
      continue;
    }
    if (d->declared_type &&
        (d->srsly || d->scope == DeclScope::kSymmetric)) {
      t.vars[name] = *d->declared_type;
    }
  }
  // UPPIN/NERFIN counters start at NUMBR 0 and stay NUMBR unless the
  // body writes them (SRS could write anything, so require its absence).
  if (!c.has_srs) {
    for (const auto& [name, loop] : c.unique_loop) {
      if (loop->update == LoopUpdate::kFunc) continue;
      if (c.assigned.count(name) != 0) continue;
      t.vars.emplace(name, TypeKind::kNumbr);
    }
    // Never-mutated plain scalars: the declaration's value is the only
    // value. Iterate to let initializer chains resolve.
    for (int round = 0; round < 3; ++round) {
      bool grew = false;
      for (const auto& [name, d] : c.unique_decl) {
        if (t.vars.count(name) != 0 || d->is_array) continue;
        if (d->scope != DeclScope::kPrivate || d->srsly) continue;
        if (c.mutated.count(name) != 0) continue;
        std::optional<TypeKind> ty;
        if (d->init) {
          ty = t.of(*d->init);
        } else if (d->declared_type) {
          ty = d->declared_type;  // zero_of(declared_type)
        }
        if (ty) {
          t.vars[name] = *ty;
          grew = true;
        }
      }
      if (!grew) break;
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Statement-structure helpers shared by the passes
// ---------------------------------------------------------------------------

/// Applies `fn` to every rvalue expression slot of one statement (not
/// recursing into child statement lists). Lvalue places only expose
/// their index subexpressions; the base of a place is never rewritten.
template <typename Fn>
void for_each_rvalue(Stmt& s, Fn&& fn) {
  auto place = [&](ExprPtr& target) {
    if (target->kind == ExprKind::kIndex) {
      fn(static_cast<IndexExpr&>(*target).index);
    }
  };
  switch (s.kind) {
    case StmtKind::kVarDecl: {
      auto& d = static_cast<VarDeclStmt&>(s);
      if (d.init) fn(d.init);
      if (d.array_size) fn(d.array_size);
      break;
    }
    case StmtKind::kAssign: {
      auto& a = static_cast<AssignStmt&>(s);
      fn(a.value);
      place(a.target);
      break;
    }
    case StmtKind::kExpr:
      fn(static_cast<ExprStmt&>(s).expr);
      break;
    case StmtKind::kVisible:
      for (auto& a : static_cast<VisibleStmt&>(s).args) fn(a);
      break;
    case StmtKind::kGimmeh:
      place(static_cast<GimmehStmt&>(s).target);
      break;
    case StmtKind::kCastTo:
      place(static_cast<CastToStmt&>(s).target);
      break;
    case StmtKind::kORly:
      for (auto& [cond, body] : static_cast<ORlyStmt&>(s).mebbe) fn(cond);
      break;
    case StmtKind::kWtf:
      for (auto& cs : static_cast<WtfStmt&>(s).cases) fn(cs.literal);
      break;
    case StmtKind::kLoop: {
      auto& l = static_cast<LoopStmt&>(s);
      if (l.cond) fn(l.cond);
      break;
    }
    case StmtKind::kFoundYr:
      fn(static_cast<FoundYrStmt&>(s).value);
      break;
    case StmtKind::kLock:
      place(static_cast<LockStmt&>(s).target);
      break;
    case StmtKind::kTxt:
      fn(static_cast<TxtStmt&>(s).target_pe);
      break;
    default:
      break;
  }
}

/// Applies `fn` to every child statement list of one statement.
template <typename Fn>
void for_each_child_list(Stmt& s, Fn&& fn) {
  switch (s.kind) {
    case StmtKind::kORly: {
      auto& o = static_cast<ORlyStmt&>(s);
      fn(o.ya_rly);
      for (auto& [cond, body] : o.mebbe) fn(body);
      fn(o.no_wai);
      break;
    }
    case StmtKind::kWtf: {
      auto& w = static_cast<WtfStmt&>(s);
      for (auto& cs : w.cases) fn(cs.body);
      fn(w.default_body);
      break;
    }
    case StmtKind::kLoop:
      fn(static_cast<LoopStmt&>(s).body);
      break;
    case StmtKind::kFuncDef:
      fn(static_cast<FuncDefStmt&>(s).body);
      break;
    case StmtKind::kTxt:
      fn(static_cast<TxtStmt&>(s).body);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Pass: constant folding + algebraic simplification
// ---------------------------------------------------------------------------

struct Fold {
  const Types& types;
  Stats& st;
  std::uint64_t changed = 0;

  void run(StmtList& body) {
    for (auto& s : body) {
      for_each_rvalue(*s, [&](ExprPtr& e) { fold(e); });
      for_each_child_list(*s, [&](StmtList& b) { run(b); });
    }
  }

  void fold(ExprPtr& slot) {
    // Children first so cast chains and nested arithmetic collapse
    // bottom-up in one sweep.
    switch (slot->kind) {
      case ExprKind::kSrsRef:
        fold(static_cast<SrsRef&>(*slot).name_expr);
        return;  // dynamic name: nothing else to do
      case ExprKind::kIndex: {
        auto& i = static_cast<IndexExpr&>(*slot);
        fold(i.index);
        return;
      }
      case ExprKind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(*slot);
        fold(b.lhs);
        fold(b.rhs);
        fold_binary(slot);
        return;
      }
      case ExprKind::kNary: {
        auto& n = static_cast<NaryExpr&>(*slot);
        for (auto& o : n.operands) fold(o);
        fold_nary(slot);
        return;
      }
      case ExprKind::kUnary: {
        auto& u = static_cast<UnaryExpr&>(*slot);
        fold(u.operand);
        if (auto v = literal_of(*u.operand)) {
          try {
            replace(slot, rt::op_unary(u.op, *v));
          } catch (const support::LolError&) {
            // Would throw at run time; keep the error there.
          }
        }
        return;
      }
      case ExprKind::kCast: {
        auto& c = static_cast<CastExpr&>(*slot);
        fold(c.value);
        if (auto v = literal_of(*c.value)) {
          try {
            replace(slot, v->cast_to(c.type, /*explicit_cast=*/true));
          } catch (const support::LolError&) {
          }
        }
        return;
      }
      case ExprKind::kCall:
        for (auto& a : static_cast<CallExpr&>(*slot).args) fold(a);
        return;
      default:
        return;
    }
  }

  void replace(ExprPtr& slot, const rt::Value& v) {
    slot = make_literal(v, slot->loc);
    ++st.folded;
    ++changed;
  }

  /// Keeps `keep` and drops the rest of the node.
  void keep_operand(ExprPtr& slot, ExprPtr& keep) {
    ExprPtr kept = std::move(keep);
    slot = std::move(kept);
    ++st.folded;
    ++changed;
  }

  void fold_binary(ExprPtr& slot) {
    auto& b = static_cast<BinaryExpr&>(*slot);
    auto lv = literal_of(*b.lhs);
    auto rv = literal_of(*b.rhs);
    if (lv && rv) {
      try {
        replace(slot, rt::op_binary(b.op, *lv, *rv));
      } catch (const support::LolError&) {
      }
      return;
    }
    // Algebraic identities. Type-gated: `SUM OF e AN 0` is only `e` when
    // e is statically NUMBR (a YARN "3" would still numify), and NUMBAR
    // identities avoid +0.0 (which flips the sign of -0.0 and changes
    // printed output). Float identities are bitwise-exact: x*1.0, x-0.0
    // and x/1.0 return x for every double including -0.0 and NaN.
    auto is_int = [](const std::optional<rt::Value>& v, std::int64_t k) {
      return v && v->is_numbr() && v->numbr_raw() == k;
    };
    auto is_one = [&](const std::optional<rt::Value>& v) {
      return is_int(v, 1) || (v && v->is_numbar() && v->numbar_raw() == 1.0);
    };
    auto is_pos_zero = [&](const std::optional<rt::Value>& v) {
      return is_int(v, 0) ||
             (v && v->is_numbar() && v->numbar_raw() == 0.0 &&
              !std::signbit(v->numbar_raw()));
    };
    auto type_of = [&](const Expr& e) { return types.of(e); };
    switch (b.op) {
      case BinOp::kSum:
        if (is_int(rv, 0) && type_of(*b.lhs) == TypeKind::kNumbr) {
          keep_operand(slot, b.lhs);
        } else if (is_int(lv, 0) && type_of(*b.rhs) == TypeKind::kNumbr) {
          keep_operand(slot, b.rhs);
        }
        return;
      case BinOp::kDiff:
        if (is_int(rv, 0) && type_of(*b.lhs) == TypeKind::kNumbr) {
          keep_operand(slot, b.lhs);
        } else if (is_pos_zero(rv) &&
                   type_of(*b.lhs) == TypeKind::kNumbar) {
          keep_operand(slot, b.lhs);
        }
        return;
      case BinOp::kProdukt: {
        auto lt = type_of(*b.lhs);
        auto rt_ = type_of(*b.rhs);
        if (is_int(rv, 1) && lt == TypeKind::kNumbr) {
          keep_operand(slot, b.lhs);
        } else if (is_int(lv, 1) && rt_ == TypeKind::kNumbr) {
          keep_operand(slot, b.rhs);
        } else if (is_one(rv) && lt == TypeKind::kNumbar) {
          keep_operand(slot, b.lhs);
        } else if (is_one(lv) && rt_ == TypeKind::kNumbar) {
          keep_operand(slot, b.rhs);
        } else if (b.lhs->kind == ExprKind::kVarRef &&
                   b.rhs->kind == ExprKind::kVarRef &&
                   (lt == TypeKind::kNumbr || lt == TypeKind::kNumbar)) {
          // PRODUKT OF x AN x on a provably numeric local scalar reads
          // x once: rt::op_unary's SQUAR squares through the same
          // to_num coercion, so the value is bit-identical and the
          // (cannot-throw) type-error message difference never
          // materializes. Local-only: two remote reads collapse to one
          // only under the race-free barrier discipline, which folding
          // must not assume.
          const auto& l = static_cast<const VarRef&>(*b.lhs);
          const auto& r = static_cast<const VarRef&>(*b.rhs);
          if (l.name == r.name && l.locality != Locality::kRemote &&
              r.locality != Locality::kRemote) {
            ExprPtr operand = std::move(b.lhs);
            slot = std::make_unique<UnaryExpr>(UnOp::kSquar,
                                               std::move(operand), slot->loc);
            ++st.folded;
            ++changed;
          }
        }
        return;
      }
      case BinOp::kQuoshunt:
        if (is_int(rv, 1) && type_of(*b.lhs) == TypeKind::kNumbr) {
          keep_operand(slot, b.lhs);
        } else if (is_one(rv) && type_of(*b.lhs) == TypeKind::kNumbar) {
          keep_operand(slot, b.lhs);
        }
        return;
      case BinOp::kBothOf:
        if (rv && rv->is_troof() && rv->troof_raw() &&
            type_of(*b.lhs) == TypeKind::kTroof) {
          keep_operand(slot, b.lhs);
        } else if (lv && lv->is_troof() && lv->troof_raw() &&
                   type_of(*b.rhs) == TypeKind::kTroof) {
          keep_operand(slot, b.rhs);
        }
        return;
      case BinOp::kEitherOf:
        if (rv && rv->is_troof() && !rv->troof_raw() &&
            type_of(*b.lhs) == TypeKind::kTroof) {
          keep_operand(slot, b.lhs);
        } else if (lv && lv->is_troof() && !lv->troof_raw() &&
                   type_of(*b.rhs) == TypeKind::kTroof) {
          keep_operand(slot, b.rhs);
        }
        return;
      default:
        return;
    }
  }

  void fold_nary(ExprPtr& slot) {
    auto& n = static_cast<NaryExpr&>(*slot);
    bool all_lit = true;
    std::vector<rt::Value> vals;
    vals.reserve(n.operands.size());
    for (const auto& o : n.operands) {
      auto v = literal_of(*o);
      if (!v) {
        all_lit = false;
        break;
      }
      vals.push_back(std::move(*v));
    }
    if (all_lit) {
      try {
        replace(slot, rt::op_nary(n.op, vals));
      } catch (const support::LolError&) {
      }
      return;
    }
    if (n.op == NaryOp::kSmoosh) {
      // Merge adjacent plain literals through the runtime's own YARN
      // cast so formatting (NUMBAR truncation etc.) stays identical.
      for (std::size_t i = 0; i + 1 < n.operands.size();) {
        auto a = literal_of(*n.operands[i]);
        auto b = literal_of(*n.operands[i + 1]);
        std::optional<std::string> merged;
        if (a && b) {
          try {
            merged = a->to_yarn() + b->to_yarn();
          } catch (const support::LolError&) {
            // NOOB operand: SMOOSH would throw at run time; keep it.
          }
        }
        if (merged) {
          n.operands[i] =
              make_literal(rt::Value::yarn(std::move(*merged)),
                           n.operands[i]->loc);
          n.operands.erase(n.operands.begin() +
                           static_cast<std::ptrdiff_t>(i) + 1);
          ++st.folded;
          ++changed;
        } else {
          ++i;
        }
      }
      return;
    }
    // ALL OF / ANY OF evaluate every operand (no short-circuit), so
    // non-literal operands must stay; literal operands that cannot
    // decide the result can go. Keep at least one operand.
    bool all_of = n.op == NaryOp::kAllOf;
    auto droppable = [&](const Expr& e) {
      auto v = literal_of(e);
      return v && v->to_troof() == all_of;
    };
    for (std::size_t i = 0;
         n.operands.size() > 1 && i < n.operands.size();) {
      if (droppable(*n.operands[i])) {
        n.operands.erase(n.operands.begin() +
                         static_cast<std::ptrdiff_t>(i));
        ++st.folded;
        ++changed;
      } else {
        ++i;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass: literal propagation
// ---------------------------------------------------------------------------

struct Prop {
  const Census& census;
  Stats& st;
  std::uint64_t changed = 0;
  std::vector<std::unordered_map<std::string, rt::Value>> scopes;

  void run(StmtList& body) {
    if (census.has_srs) return;  // SRS may alias any name dynamically
    scopes.emplace_back();
    walk(body);
    scopes.pop_back();
  }

  void walk(StmtList& body) {
    for (auto& s : body) {
      // Rewrite this statement's expressions against the current scope
      // chain, then (for declarations) extend it.
      for_each_rvalue(*s, [&](ExprPtr& e) { subst(e); });
      switch (s->kind) {
        case StmtKind::kVarDecl:
          note_decl(static_cast<const VarDeclStmt&>(*s));
          break;
        case StmtKind::kFuncDef: {
          // Functions may run before any given global declaration has
          // executed, so outer mappings do not apply inside.
          auto saved = std::move(scopes);
          scopes.clear();
          scopes.emplace_back();
          walk(static_cast<FuncDefStmt&>(*s).body);
          scopes = std::move(saved);
          break;
        }
        default:
          for_each_child_list(*s, [&](StmtList& b) {
            scopes.emplace_back();
            walk(b);
            scopes.pop_back();
          });
          break;
      }
    }
  }

  void note_decl(const VarDeclStmt& d) {
    if (d.scope != DeclScope::kPrivate || d.is_array) return;
    auto it = census.decl_count.find(d.name);
    if (it == census.decl_count.end() || it->second != 1) return;
    if (census.mutated.count(d.name) != 0) return;
    std::optional<rt::Value> v;
    if (d.init) {
      v = literal_of(*d.init);
      if (v && d.srsly && d.declared_type) {
        try {
          v = v->cast_to(*d.declared_type, /*explicit_cast=*/false);
        } catch (const support::LolError&) {
          return;  // the declaration itself errors at run time
        }
      }
    } else if (d.declared_type) {
      v = rt::Value::zero_of(*d.declared_type);
    }
    if (v) scopes.back().emplace(d.name, std::move(*v));
  }

  void subst(ExprPtr& slot) {
    switch (slot->kind) {
      case ExprKind::kVarRef: {
        auto& r = static_cast<const VarRef&>(*slot);
        // UR reads resolve on another PE whose declaration may not have
        // executed yet; leave them so unbound errors stay put.
        if (r.locality == Locality::kRemote) return;
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
          auto hit = it->find(r.name);
          if (hit != it->end()) {
            slot = make_literal(hit->second, slot->loc);
            ++st.propagated;
            ++changed;
            return;
          }
        }
        return;
      }
      case ExprKind::kIndex:
        subst(static_cast<IndexExpr&>(*slot).index);
        return;
      case ExprKind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(*slot);
        subst(b.lhs);
        subst(b.rhs);
        return;
      }
      case ExprKind::kNary:
        for (auto& o : static_cast<NaryExpr&>(*slot).operands) subst(o);
        return;
      case ExprKind::kUnary:
        subst(static_cast<UnaryExpr&>(*slot).operand);
        return;
      case ExprKind::kCast:
        subst(static_cast<CastExpr&>(*slot).value);
        return;
      case ExprKind::kCall:
        for (auto& a : static_cast<CallExpr&>(*slot).args) subst(a);
        return;
      default:
        return;
    }
  }
};

// ---------------------------------------------------------------------------
// Pass: bounded loop unrolling
// ---------------------------------------------------------------------------

struct Unroll {
  Census& census;  // identifiers grows as fresh names are taken
  const Options& opts;
  Stats& st;
  std::uint64_t changed = 0;
  int fresh_n = 0;

  std::string fresh(const std::string& base) {
    for (;;) {
      std::string name = base + "_u" + std::to_string(fresh_n++);
      if (census.identifiers.insert(name).second) return name;
    }
  }

  void run(StmtList& body) {
    if (census.has_srs || opts.unroll_max_trip <= 0) return;
    walk(body);
  }

  void walk(StmtList& body) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      // Innermost-first: a fully unrolled inner loop makes the outer
      // body straight-line and often still under budget.
      for_each_child_list(*body[i], [&](StmtList& b) { walk(b); });
      if (body[i]->kind != StmtKind::kLoop) continue;
      auto& loop = static_cast<LoopStmt&>(*body[i]);
      std::optional<StmtList> copies = try_unroll(loop);
      if (!copies) continue;
      std::size_t n = copies->size();
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(i),
                  std::make_move_iterator(copies->begin()),
                  std::make_move_iterator(copies->end()));
      ++st.unrolled;
      ++changed;
      i += n == 0 ? 0 : n - 1;
    }
  }

  /// `IM IN YR l UPPIN YR v TIL BOTH SAEM v AN <k>` runs the body for
  /// v = 0..k-1; the WILE DIFFRINT form is equivalent.
  std::optional<std::int64_t> trip_count(const LoopStmt& l) const {
    if (l.update != LoopUpdate::kUppin || l.var.empty() || !l.cond) {
      return std::nullopt;
    }
    if (l.cond->kind != ExprKind::kBinary) return std::nullopt;
    const auto& c = static_cast<const BinaryExpr&>(*l.cond);
    BinOp want = l.cond_kind == LoopCond::kTil    ? BinOp::kBothSaem
                 : l.cond_kind == LoopCond::kWile ? BinOp::kDiffrint
                                                  : BinOp::kBothOf;
    if (c.op != want) return std::nullopt;
    auto counter_and_lit =
        [&](const Expr& a, const Expr& b) -> std::optional<std::int64_t> {
      if (a.kind != ExprKind::kVarRef || b.kind != ExprKind::kNumbrLit) {
        return std::nullopt;
      }
      const auto& r = static_cast<const VarRef&>(a);
      if (r.name != l.var || r.locality == Locality::kRemote) {
        return std::nullopt;
      }
      return static_cast<const NumbrLit&>(b).value;
    };
    auto n = counter_and_lit(*c.lhs, *c.rhs);
    if (!n) n = counter_and_lit(*c.rhs, *c.lhs);
    return n;
  }

  std::optional<StmtList> try_unroll(LoopStmt& loop) {
    auto trip = trip_count(loop);
    if (!trip || *trip < 0 || *trip > opts.unroll_max_trip) {
      return std::nullopt;
    }
    if (*trip == 0) return StmtList{};  // condition true before iteration 0
    if (!body_safe(loop.body, loop.var, /*gtfo_would_bind=*/true)) {
      return std::nullopt;
    }
    std::size_t body_n = count_stmts(loop.body);
    if (body_n * static_cast<std::size_t>(*trip) >
        static_cast<std::size_t>(opts.unroll_body_budget)) {
      return std::nullopt;
    }
    StmtList out;
    for (std::int64_t k = 0; k < *trip; ++k) {
      Rename rc{this, loop.var, k};
      rc.scopes.emplace_back();
      for (const auto& s : loop.body) out.push_back(rc.stmt(*s));
    }
    return out;
  }

  /// Rejects bodies the unroller cannot reproduce exactly: a GTFO that
  /// would bind this loop (the copies have no loop to break), any write
  /// to or shadowing of the counter, the counter as an interpolation
  /// segment or an index base, and remote reads of the counter.
  bool body_safe(const StmtList& body, const std::string& var,
                 bool gtfo_would_bind) const {
    for (const auto& sp : body) {
      const Stmt& s = *sp;
      bool ok = true;
      switch (s.kind) {
        case StmtKind::kGtfo:
          if (gtfo_would_bind) return false;
          break;
        case StmtKind::kVarDecl: {
          const auto& d = static_cast<const VarDeclStmt&>(s);
          if (d.name == var) return false;
          if (d.init && !expr_safe(*d.init, var)) return false;
          if (d.array_size && !expr_safe(*d.array_size, var)) return false;
          break;
        }
        case StmtKind::kAssign: {
          const auto& a = static_cast<const AssignStmt&>(s);
          const std::string* base = place_base_name(*a.target);
          if (base != nullptr && *base == var) return false;
          ok = expr_safe(*a.target, var) && expr_safe(*a.value, var);
          break;
        }
        case StmtKind::kGimmeh: {
          const auto& g = static_cast<const GimmehStmt&>(s);
          const std::string* base = place_base_name(*g.target);
          if (base != nullptr && *base == var) return false;
          ok = expr_safe(*g.target, var);
          break;
        }
        case StmtKind::kCastTo: {
          const auto& ct = static_cast<const CastToStmt&>(s);
          const std::string* base = place_base_name(*ct.target);
          if (base != nullptr && *base == var) return false;
          ok = expr_safe(*ct.target, var);
          break;
        }
        case StmtKind::kLock: {
          const auto& l = static_cast<const LockStmt&>(s);
          const std::string* base = place_base_name(*l.target);
          if (base != nullptr && *base == var) return false;
          ok = expr_safe(*l.target, var);
          break;
        }
        case StmtKind::kExpr:
          ok = expr_safe(*static_cast<const ExprStmt&>(s).expr, var);
          break;
        case StmtKind::kVisible:
          for (const auto& a : static_cast<const VisibleStmt&>(s).args) {
            if (!expr_safe(*a, var)) return false;
          }
          break;
        case StmtKind::kORly: {
          const auto& o = static_cast<const ORlyStmt&>(s);
          // O RLY? is not breakable: GTFO in a branch binds the loop.
          if (!body_safe(o.ya_rly, var, gtfo_would_bind)) return false;
          for (const auto& [cond, b] : o.mebbe) {
            if (!expr_safe(*cond, var)) return false;
            if (!body_safe(b, var, gtfo_would_bind)) return false;
          }
          if (!body_safe(o.no_wai, var, gtfo_would_bind)) return false;
          break;
        }
        case StmtKind::kWtf: {
          const auto& w = static_cast<const WtfStmt&>(s);
          for (const auto& cs : w.cases) {
            if (!expr_safe(*cs.literal, var)) return false;
            if (!body_safe(cs.body, var, /*gtfo_would_bind=*/false)) {
              return false;
            }
          }
          if (!body_safe(w.default_body, var, false)) return false;
          break;
        }
        case StmtKind::kLoop: {
          const auto& l = static_cast<const LoopStmt&>(s);
          if (l.var == var) return false;  // shadows the counter
          if (l.cond && !expr_safe(*l.cond, var)) return false;
          if (!body_safe(l.body, var, /*gtfo_would_bind=*/false)) {
            return false;
          }
          break;
        }
        case StmtKind::kFoundYr:
          // Returning from the enclosing function mid-copy is the same
          // as returning mid-iteration.
          ok = expr_safe(*static_cast<const FoundYrStmt&>(s).value, var);
          break;
        case StmtKind::kTxt: {
          const auto& t = static_cast<const TxtStmt&>(s);
          ok = expr_safe(*t.target_pe, var) &&
               body_safe(t.body, var, gtfo_would_bind);
          break;
        }
        case StmtKind::kFuncDef:
          return false;  // sema forbids these here; stay conservative
        case StmtKind::kCanHas:
        case StmtKind::kHugz:
          break;
      }
      if (!ok) return false;
    }
    return true;
  }

  bool expr_safe(const Expr& e, const std::string& var) const {
    switch (e.kind) {
      case ExprKind::kYarnLit:
        for (const auto& seg :
             static_cast<const YarnLit&>(e).segments) {
          if (seg.is_var && seg.text == var) return false;
        }
        return true;
      case ExprKind::kVarRef:
        return static_cast<const VarRef&>(e).name != var ||
               static_cast<const VarRef&>(e).locality != Locality::kRemote;
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        const std::string* base = place_base_name(e);
        if (base != nullptr && *base == var) return false;
        return expr_safe(*i.base, var) && expr_safe(*i.index, var);
      }
      case ExprKind::kSrsRef:
        return false;  // unreachable: has_srs disables the pass
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return expr_safe(*b.lhs, var) && expr_safe(*b.rhs, var);
      }
      case ExprKind::kNary:
        for (const auto& o : static_cast<const NaryExpr&>(e).operands) {
          if (!expr_safe(*o, var)) return false;
        }
        return true;
      case ExprKind::kUnary:
        return expr_safe(*static_cast<const UnaryExpr&>(e).operand, var);
      case ExprKind::kCast:
        return expr_safe(*static_cast<const CastExpr&>(e).value, var);
      case ExprKind::kCall:
        for (const auto& a : static_cast<const CallExpr&>(e).args) {
          if (!expr_safe(*a, var)) return false;
        }
        return true;
      default:
        return true;
    }
  }

  /// Scope-aware cloning of one iteration: the counter becomes its
  /// literal value, and every declaration the body makes gets a fresh
  /// name (N spliced copies share one scope, so per-iteration locals
  /// would otherwise redeclare).
  struct Rename {
    Unroll* u;
    const std::string& counter;
    std::int64_t value;
    // name -> replacement; a name mapped to itself is shadowed by a
    // nested loop variable and must not be renamed inside it.
    std::vector<std::unordered_map<std::string, std::string>> scopes;

    const std::string* lookup(const std::string& name) const {
      for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        auto hit = it->find(name);
        if (hit != it->end()) return &hit->second;
      }
      return nullptr;
    }

    bool counter_visible(const std::string& name) const {
      return name == counter && lookup(name) == nullptr;
    }

    ExprPtr expr(const Expr& e) {
      switch (e.kind) {
        case ExprKind::kVarRef: {
          const auto& r = static_cast<const VarRef&>(e);
          if (counter_visible(r.name)) {
            return std::make_unique<NumbrLit>(value, r.loc);
          }
          if (const std::string* n = lookup(r.name)) {
            return std::make_unique<VarRef>(*n, r.locality, r.loc);
          }
          return std::make_unique<VarRef>(r.name, r.locality, r.loc);
        }
        case ExprKind::kYarnLit: {
          const auto& y = static_cast<const YarnLit&>(e);
          std::vector<lex::YarnSegment> segs = y.segments;
          for (auto& seg : segs) {
            if (!seg.is_var) continue;
            if (const std::string* n = lookup(seg.text)) seg.text = *n;
          }
          return std::make_unique<YarnLit>(std::move(segs), y.loc);
        }
        case ExprKind::kIndex: {
          const auto& i = static_cast<const IndexExpr&>(e);
          return std::make_unique<IndexExpr>(expr(*i.base),
                                             expr(*i.index), i.loc);
        }
        case ExprKind::kBinary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          return std::make_unique<BinaryExpr>(b.op, expr(*b.lhs),
                                              expr(*b.rhs), b.loc);
        }
        case ExprKind::kNary: {
          const auto& n = static_cast<const NaryExpr&>(e);
          std::vector<ExprPtr> ops;
          ops.reserve(n.operands.size());
          for (const auto& o : n.operands) ops.push_back(expr(*o));
          return std::make_unique<NaryExpr>(n.op, std::move(ops), n.loc);
        }
        case ExprKind::kUnary: {
          const auto& un = static_cast<const UnaryExpr&>(e);
          return std::make_unique<UnaryExpr>(un.op, expr(*un.operand),
                                             un.loc);
        }
        case ExprKind::kCast: {
          const auto& c = static_cast<const CastExpr&>(e);
          return std::make_unique<CastExpr>(expr(*c.value), c.type, c.loc);
        }
        case ExprKind::kCall: {
          const auto& c = static_cast<const CallExpr&>(e);
          std::vector<ExprPtr> args;
          args.reserve(c.args.size());
          for (const auto& a : c.args) args.push_back(expr(*a));
          return std::make_unique<CallExpr>(c.callee, std::move(args),
                                            c.loc);
        }
        default:
          return clone_expr(e);  // literals, ME, IT, WHATEVR, ...
      }
    }

    StmtList body(const StmtList& b) {
      scopes.emplace_back();
      StmtList out;
      out.reserve(b.size());
      for (const auto& s : b) out.push_back(stmt(*s));
      scopes.pop_back();
      return out;
    }

    StmtPtr stmt(const Stmt& s) {
      switch (s.kind) {
        case StmtKind::kVarDecl: {
          const auto& d = static_cast<const VarDeclStmt&>(s);
          auto out = std::make_unique<VarDeclStmt>(d.loc);
          out->scope = d.scope;
          out->declared_type = d.declared_type;
          out->srsly = d.srsly;
          out->is_array = d.is_array;
          out->sharin = d.sharin;
          if (d.init) out->init = expr(*d.init);
          if (d.array_size) out->array_size = expr(*d.array_size);
          std::string renamed = u->fresh(d.name);
          scopes.back()[d.name] = renamed;
          out->name = std::move(renamed);
          return out;
        }
        case StmtKind::kAssign: {
          const auto& a = static_cast<const AssignStmt&>(s);
          return std::make_unique<AssignStmt>(expr(*a.target),
                                              expr(*a.value), a.loc);
        }
        case StmtKind::kExpr: {
          const auto& x = static_cast<const ExprStmt&>(s);
          return std::make_unique<ExprStmt>(expr(*x.expr), x.loc);
        }
        case StmtKind::kVisible: {
          const auto& v = static_cast<const VisibleStmt&>(s);
          auto out = std::make_unique<VisibleStmt>(v.loc);
          for (const auto& a : v.args) out->args.push_back(expr(*a));
          out->newline = v.newline;
          out->to_stderr = v.to_stderr;
          return out;
        }
        case StmtKind::kGimmeh: {
          const auto& g = static_cast<const GimmehStmt&>(s);
          return std::make_unique<GimmehStmt>(expr(*g.target), g.loc);
        }
        case StmtKind::kCastTo: {
          const auto& c = static_cast<const CastToStmt&>(s);
          return std::make_unique<CastToStmt>(expr(*c.target), c.type,
                                              c.loc);
        }
        case StmtKind::kORly: {
          const auto& o = static_cast<const ORlyStmt&>(s);
          auto out = std::make_unique<ORlyStmt>(o.loc);
          out->ya_rly = body(o.ya_rly);
          for (const auto& [cond, b] : o.mebbe) {
            auto cc = expr(*cond);
            out->mebbe.emplace_back(std::move(cc), body(b));
          }
          out->no_wai = body(o.no_wai);
          return out;
        }
        case StmtKind::kWtf: {
          const auto& w = static_cast<const WtfStmt&>(s);
          auto out = std::make_unique<WtfStmt>(w.loc);
          for (const auto& cs : w.cases) {
            WtfStmt::Case cc;
            cc.literal = expr(*cs.literal);
            cc.body = body(cs.body);
            out->cases.push_back(std::move(cc));
          }
          out->default_body = body(w.default_body);
          out->has_default = w.has_default;
          return out;
        }
        case StmtKind::kLoop: {
          const auto& l = static_cast<const LoopStmt&>(s);
          auto out = std::make_unique<LoopStmt>(l.loc);
          out->label = l.label;
          out->update = l.update;
          out->func = l.func;
          out->var = l.var;
          out->cond_kind = l.cond_kind;
          scopes.emplace_back();
          if (!l.var.empty()) scopes.back()[l.var] = l.var;  // shadow
          if (l.cond) out->cond = expr(*l.cond);
          out->body = body(l.body);
          scopes.pop_back();
          return out;
        }
        case StmtKind::kFoundYr: {
          const auto& f = static_cast<const FoundYrStmt&>(s);
          return std::make_unique<FoundYrStmt>(expr(*f.value), f.loc);
        }
        case StmtKind::kLock: {
          const auto& l = static_cast<const LockStmt&>(s);
          return std::make_unique<LockStmt>(l.op, expr(*l.target), l.loc);
        }
        case StmtKind::kTxt: {
          const auto& t = static_cast<const TxtStmt&>(s);
          auto out = std::make_unique<TxtStmt>(t.loc);
          out->target_pe = expr(*t.target_pe);
          out->body = body(t.body);
          out->block_form = t.block_form;
          return out;
        }
        default:
          return clone_stmt(s);  // GTFO (nested-bound), HUGZ, CAN HAS
      }
    }
  };
};

// ---------------------------------------------------------------------------
// Pass: static branch selection
// ---------------------------------------------------------------------------

struct Select {
  const Census& census;
  Stats& st;
  std::uint64_t changed = 0;

  void run(StmtList& body) {
    if (census.has_srs) return;
    walk(body);
  }

  void walk(StmtList& body) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      for_each_child_list(*body[i], [&](StmtList& b) { walk(b); });
      if (i + 1 >= body.size()) continue;
      if (body[i]->kind != StmtKind::kExpr ||
          body[i + 1]->kind != StmtKind::kORly) {
        continue;
      }
      auto lit = literal_of(*static_cast<const ExprStmt&>(*body[i]).expr);
      if (!lit) continue;
      auto& orly = static_cast<ORlyStmt&>(*body[i + 1]);
      // MEBBE arms evaluate their condition into IT when YA RLY is not
      // taken; splicing would lose that. Keep those as-is.
      if (!orly.mebbe.empty()) continue;
      if (!spliceable(orly.ya_rly) || !spliceable(orly.no_wai)) continue;
      StmtList chosen =
          std::move(lit->to_troof() ? orly.ya_rly : orly.no_wai);
      // The literal ExprStmt stays: IT must still hold its value.
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  std::make_move_iterator(chosen.begin()),
                  std::make_move_iterator(chosen.end()));
      ++st.selected;
      ++changed;
      // Re-inspect from the first spliced statement (it may itself be a
      // literal ExprStmt followed by an O RLY?).
    }
  }

  /// Both the kept and the dropped branch must splice safely: no
  /// declarations (the interpreter scopes branches, the VM does not, so
  /// renamed or leaked locals would diverge), and every name the
  /// dropped code references must be declared somewhere in the program
  /// (the C emitter resolves dead code statically at -O0 too).
  bool spliceable(const StmtList& body) const {
    for (const auto& sp : body) {
      if (!spliceable_stmt(*sp)) return false;
    }
    return true;
  }

  bool spliceable_stmt(const Stmt& s) const {
    if (s.kind == StmtKind::kVarDecl || s.kind == StmtKind::kFuncDef) {
      return false;
    }
    // One-off census of this subtree: no declarations at any depth, no
    // SRS, and every referenced name declared somewhere in the program.
    Census sub;
    census_stmt(s, sub);
    if (sub.has_srs || !sub.decl_count.empty()) return false;
    for (const auto& [name, n] : sub.ref_count) {
      (void)n;
      if (census.decl_count.count(name) == 0) return false;
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// Pass: predication-region coalescing
//
// An unrolled remote-interaction loop leaves a run of TXT MAH BFF
// regions with the same target in one statement list, separated by
// purely local statements. Each region entry evaluates and range-checks
// the target and opens a child scope; coalescing the run into one
// region does that once. Safe exactly when (a) the target expression is
// a literal, ME, or a local variable no statement in the merged span
// mutates — so the dropped re-evaluations provably yield the same PE —
// and (b) every absorbed statement is local and scope-neutral: no
// declarations anywhere in the span (region bodies are scopes; merging
// must not extend a name's visibility), no calls (a callee's UR refs
// would start resolving against the region's target instead of
// throwing), and no UR refs in the statements between regions (they
// would stop throwing). Statements keep their order, so every read and
// write — including the remote ones — happens exactly as before.
// ---------------------------------------------------------------------------

struct RegionMerge {
  const Census& census;
  Stats& st;
  std::uint64_t changed = 0;

  void run(StmtList& body) {
    if (census.has_srs) return;
    walk(body);
  }

  void walk(StmtList& body) {
    for (auto& s : body) {
      for_each_child_list(*s, [&](StmtList& b) { walk(b); });
    }
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i]->kind != StmtKind::kTxt) continue;
      auto& first = static_cast<TxtStmt&>(*body[i]);
      // Keep absorbing [locals..., TXT same-target {...}] suffixes.
      while (true) {
        std::size_t k = i + 1;
        while (k < body.size() && absorbable(*body[k])) ++k;
        if (k >= body.size() || body[k]->kind != StmtKind::kTxt) break;
        auto& next = static_cast<TxtStmt&>(*body[k]);
        if (!same_target(*first.target_pe, *next.target_pe)) break;
        if (!span_safe(first, body, i + 1, k, next)) break;
        for (std::size_t j = i + 1; j < k; ++j) {
          first.body.push_back(std::move(body[j]));
        }
        for (auto& s : next.body) first.body.push_back(std::move(s));
        body.erase(body.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   body.begin() + static_cast<std::ptrdiff_t>(k) + 1);
        ++st.merged;
        ++changed;
      }
    }
  }

  /// Statement kinds that may move into a region: straight-line local
  /// statements only. Their expressions are vetted in span_safe.
  [[nodiscard]] static bool absorbable(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
      case StmtKind::kExpr:
      case StmtKind::kVisible:
      case StmtKind::kCastTo:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] static bool same_target(const Expr& a, const Expr& b) {
    if (a.kind == ExprKind::kMe && b.kind == ExprKind::kMe) return true;
    if (a.kind == ExprKind::kVarRef && b.kind == ExprKind::kVarRef) {
      const auto& ra = static_cast<const VarRef&>(a);
      const auto& rb = static_cast<const VarRef&>(b);
      return ra.locality != Locality::kRemote &&
             rb.locality != Locality::kRemote && ra.name == rb.name;
    }
    auto la = literal_of(a);
    auto lb = literal_of(b);
    return la && lb && la->is_numbr() && lb->is_numbr() &&
           la->numbr_raw() == lb->numbr_raw();
  }

  /// Vets the merged span: the first region's body, the statements
  /// between, and the next region's body together declare nothing and
  /// call nothing, the between-statements reference nothing remote, and
  /// (for a variable target) nothing in the span mutates the target.
  [[nodiscard]] bool span_safe(const TxtStmt& first, const StmtList& body,
                               std::size_t lo, std::size_t hi,
                               const TxtStmt& next) const {
    Census span;
    for (const auto& s : first.body) census_stmt(*s, span);
    for (std::size_t j = lo; j < hi; ++j) {
      census_stmt(*body[j], span);
      if (stmt_has_remote_or_call(*body[j])) return false;
    }
    for (const auto& s : next.body) census_stmt(*s, span);
    if (span.has_srs || !span.decl_count.empty()) return false;
    for (const auto& s : first.body) {
      if (stmt_has_call(*s)) return false;
    }
    for (const auto& s : next.body) {
      if (stmt_has_call(*s)) return false;
    }
    if (first.target_pe->kind == ExprKind::kVarRef) {
      const auto& name = static_cast<const VarRef&>(*first.target_pe).name;
      if (span.mutated.count(name) != 0) return false;
    }
    return true;
  }

  [[nodiscard]] static bool expr_has(const Expr& e, bool remote_too) {
    switch (e.kind) {
      case ExprKind::kCall:
        return true;
      case ExprKind::kVarRef:
        return remote_too &&
               static_cast<const VarRef&>(e).locality == Locality::kRemote;
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        return expr_has(*i.base, remote_too) ||
               expr_has(*i.index, remote_too);
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return expr_has(*b.lhs, remote_too) || expr_has(*b.rhs, remote_too);
      }
      case ExprKind::kNary: {
        for (const auto& o : static_cast<const NaryExpr&>(e).operands) {
          if (expr_has(*o, remote_too)) return true;
        }
        return false;
      }
      case ExprKind::kUnary:
        return expr_has(*static_cast<const UnaryExpr&>(e).operand,
                        remote_too);
      case ExprKind::kCast:
        return expr_has(*static_cast<const CastExpr&>(e).value, remote_too);
      case ExprKind::kSrsRef:
        return true;  // unreachable: the pass bails on SRS programs
      default:
        return false;
    }
  }

  [[nodiscard]] static bool stmt_scan(const Stmt& s, bool remote_too) {
    bool found = false;
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast): read-only scan
    for_each_rvalue(const_cast<Stmt&>(s), [&](ExprPtr& e) {
      if (expr_has(*e, remote_too)) found = true;
    });
    // for_each_rvalue exposes only the index of an lvalue place; the
    // base's locality (UR writes) must be checked directly.
    auto place_remote = [&](const Expr& place) {
      const Expr* base = &place;
      if (base->kind == ExprKind::kIndex) {
        base = static_cast<const IndexExpr&>(*base).base.get();
      }
      return base->kind == ExprKind::kVarRef &&
             static_cast<const VarRef&>(*base).locality == Locality::kRemote;
    };
    if (remote_too) {
      if (s.kind == StmtKind::kAssign &&
          place_remote(*static_cast<const AssignStmt&>(s).target)) {
        found = true;
      }
      if (s.kind == StmtKind::kCastTo &&
          place_remote(*static_cast<const CastToStmt&>(s).target)) {
        found = true;
      }
    }
    return found;
  }

  [[nodiscard]] static bool stmt_has_remote_or_call(const Stmt& s) {
    return stmt_scan(s, /*remote_too=*/true);
  }

  /// Calls anywhere in a region body (including nested statements) keep
  /// the region un-merged; a callee's UR refs resolve dynamically.
  [[nodiscard]] static bool stmt_has_call(const Stmt& s) {
    if (stmt_scan(s, /*remote_too=*/false)) return true;
    bool found = false;
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast): read-only scan
    for_each_child_list(const_cast<Stmt&>(s), [&](StmtList& b) {
      for (const auto& c : b) {
        if (stmt_has_call(*c)) found = true;
      }
    });
    return found;
  }
};

// ---------------------------------------------------------------------------
// Pass: forward substitution of single-use scalar definitions
//
// `v R E1`, then (possibly after independent private assignments) the
// self-update `v R E2(v)` with E2 reading v exactly once, fuses into
// `v R E2(E1)`: one statement dispatch, one store and one name lookup
// fewer per execution. Unrolled interaction kernels are full of the
// shape (`dx R DIFF OF .. / dx R SQUAR OF dx`), and name lookups are the
// top entry in interpreter profiles of the paper's SVI workloads.
//
// Soundness needs three things.
//  * Dropping the store must be invisible: v has a unique private scalar
//    declaration that provably executed (otherwise an unbound-store
//    error would move from the def's location to the use's), nothing
//    between def and use reads or writes v, and the use writes v back,
//    so everything after it sees the same value.
//  * Moving E1's evaluation to the use site must be invisible: E1 is
//    pure and total — literals, ME / MAH FRENZ, typed in-scope scalars,
//    literal-index reads of literal-sized typed arrays (a UR read is a
//    one-sided get at a heap offset fixed at compile time, as total as a
//    local read once region entry has range-checked the target), and
//    operators total on the inferred types. A thrown error would change
//    location; an rng draw would reorder the stream.
//  * The crossed material must commute with E1: intervening statements
//    are assignments to private scalars outside E1's read set whose
//    values touch no array, call or remote state, and E2's operands
//    around the v read are equally tame — so the per-PE sequence of
//    symmetric accesses (part of the pipeline's contract) is intact.
//    Crossed statements may still throw: the def's store was private, so
//    dying before it is indistinguishable from dying after it.
//
// SRSLY-typed targets additionally require E1's inferred type to equal
// the declared type exactly: the dropped store would have coerced
// through Value::cast_to, and fusing must not skip an int-to-float
// widening the program could observe downstream.
// ---------------------------------------------------------------------------

struct Fuse {
  Census& census;
  const Types& types;
  Stats& st;
  std::uint64_t changed = 0;

  // Names whose unique declaration has executed in the current scope
  // chain (same discipline as LoopOpt: a fused program must not be able
  // to hit an unbound read the original program lacked — or lose an
  // unbound store the original had).
  std::vector<std::unordered_set<std::string>> inscope;
  bool in_region = false;

  void run(StmtList& body) {
    if (census.has_srs) return;
    walk(body);
  }

  void walk(StmtList& body) {
    // A fusion can enable one earlier in the list (the nbody kernel's
    // `dx` def becomes adjacent to its use only after the `dy` def fuses
    // away), so sweep until a pass over the list changes nothing. Child
    // lists reach their own fixpoint on the first sweep.
    for (bool first = true, again = true; again; first = false) {
      again = false;
      inscope.emplace_back();
      for (std::size_t i = 0; i < body.size(); ++i) {
        Stmt& s = *body[i];
        switch (s.kind) {
          case StmtKind::kVarDecl: {
            const auto& d = static_cast<const VarDeclStmt&>(s);
            auto it = census.decl_count.find(d.name);
            if (it != census.decl_count.end() && it->second == 1) {
              inscope.back().insert(d.name);
            }
            continue;
          }
          case StmtKind::kLoop: {
            if (!first) continue;
            auto& l = static_cast<LoopStmt&>(s);
            inscope.emplace_back();
            if (!l.var.empty()) inscope.back().insert(l.var);
            walk(l.body);
            inscope.pop_back();
            continue;
          }
          case StmtKind::kFuncDef: {
            if (!first) continue;
            auto saved = std::move(inscope);
            inscope.clear();
            inscope.emplace_back();
            bool region = std::exchange(in_region, false);
            walk(static_cast<FuncDefStmt&>(s).body);
            in_region = region;
            inscope = std::move(saved);
            continue;
          }
          case StmtKind::kTxt: {
            if (!first) continue;
            inscope.emplace_back();
            bool region = std::exchange(in_region, true);
            walk(static_cast<TxtStmt&>(s).body);
            in_region = region;
            inscope.pop_back();
            continue;
          }
          case StmtKind::kAssign:
            if (try_fuse(body, i)) {
              again = true;
              // The def at `i` was erased; re-examine the slot, which
              // now holds the first statement the scan crossed (unsigned
              // wrap at i == 0 is restored by the increment).
              --i;
            }
            continue;
          default:
            break;
        }
        if (first) {
          for_each_child_list(s, [&](StmtList& b) {
            inscope.emplace_back();
            walk(b);
            inscope.pop_back();
          });
        }
      }
      inscope.pop_back();
    }
  }

  [[nodiscard]] bool declared(const std::string& name) const {
    for (const auto& scope : inscope) {
      if (scope.count(name) != 0) return true;
    }
    return false;
  }

  [[nodiscard]] const VarDeclStmt* private_scalar(
      const std::string& name) const {
    auto it = census.unique_decl.find(name);
    if (it == census.unique_decl.end()) return nullptr;
    const VarDeclStmt* d = it->second;
    if (d->scope != DeclScope::kPrivate || d->sharin || d->is_array) {
      return nullptr;
    }
    return d;
  }

  /// Pure and total, with the type the evaluation yields: the predicate
  /// that lets E1's evaluation move to the use site. Mirrors LoopOpt's
  /// invariant-totality rules (no written-set: the scan separately
  /// guarantees nothing crossed writes E1's operands), plus literal
  /// in-bounds reads of literal-sized statically typed arrays.
  std::optional<TypeKind> total(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kNumbrLit:
        return TypeKind::kNumbr;
      case ExprKind::kNumbarLit:
        return TypeKind::kNumbar;
      case ExprKind::kTroofLit:
        return TypeKind::kTroof;
      case ExprKind::kNoobLit:
        return TypeKind::kNoob;
      case ExprKind::kYarnLit:
        if (!static_cast<const YarnLit&>(e).is_plain()) {
          return std::nullopt;  // interpolation reads the environment
        }
        return TypeKind::kYarn;
      case ExprKind::kMe:
      case ExprKind::kMahFrenz:
        return TypeKind::kNumbr;
      case ExprKind::kVarRef: {
        const auto& r = static_cast<const VarRef&>(e);
        if (!declared(r.name)) return std::nullopt;
        auto it = types.vars.find(r.name);
        if (it == types.vars.end()) return std::nullopt;
        if (r.locality == Locality::kRemote) {
          auto du = census.unique_decl.find(r.name);
          if (!in_region || du == census.unique_decl.end() ||
              du->second->scope != DeclScope::kSymmetric) {
            return std::nullopt;
          }
        }
        return it->second;
      }
      case ExprKind::kIndex: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        if (ix.base->kind != ExprKind::kVarRef) return std::nullopt;
        const auto& b = static_cast<const VarRef&>(*ix.base);
        if (!declared(b.name)) return std::nullopt;
        auto te = types.array_elem.find(b.name);
        if (te == types.array_elem.end()) return std::nullopt;
        auto du = census.unique_decl.find(b.name);
        if (du == census.unique_decl.end()) return std::nullopt;
        const VarDeclStmt& d = *du->second;
        if (b.locality == Locality::kRemote &&
            (!in_region || d.scope != DeclScope::kSymmetric)) {
          return std::nullopt;
        }
        if (!d.is_array || !d.array_size ||
            d.array_size->kind != ExprKind::kNumbrLit ||
            ix.index->kind != ExprKind::kNumbrLit) {
          return std::nullopt;
        }
        std::int64_t size =
            static_cast<const NumbrLit&>(*d.array_size).value;
        std::int64_t idx = static_cast<const NumbrLit&>(*ix.index).value;
        if (idx < 0 || idx >= size) return std::nullopt;
        return te->second;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        auto l = total(*b.lhs);
        auto r = total(*b.rhs);
        if (!l || !r) return std::nullopt;
        bool ln = *l == TypeKind::kNumbr || *l == TypeKind::kNumbar;
        bool rn = *r == TypeKind::kNumbr || *r == TypeKind::kNumbar;
        switch (b.op) {
          case BinOp::kSum:
          case BinOp::kDiff:
          case BinOp::kProdukt:
          case BinOp::kBiggr:
          case BinOp::kSmallr:
            if (!ln || !rn) return std::nullopt;
            return *l == TypeKind::kNumbar || *r == TypeKind::kNumbar
                       ? TypeKind::kNumbar
                       : TypeKind::kNumbr;
          case BinOp::kBigger:
          case BinOp::kSmallrCmp:
            if (!ln || !rn) return std::nullopt;
            return TypeKind::kTroof;
          case BinOp::kBothSaem:
          case BinOp::kDiffrint:
          case BinOp::kBothOf:
          case BinOp::kEitherOf:
          case BinOp::kWonOf:
            return TypeKind::kTroof;  // saem/to_troof are total
          case BinOp::kQuoshunt:
          case BinOp::kMod:
            return std::nullopt;  // may divide by zero at run time
        }
        return std::nullopt;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        auto t = total(*u.operand);
        if (!t) return std::nullopt;
        if (u.op == UnOp::kNot) return TypeKind::kTroof;
        if (u.op == UnOp::kSquar &&
            (*t == TypeKind::kNumbr || *t == TypeKind::kNumbar)) {
          return t;
        }
        return std::nullopt;  // UNSQUAR/FLIP throw on some inputs
      }
      default:
        return std::nullopt;  // IT, rng, casts, calls
    }
  }

  static void collect_reads(const Expr& e,
                            std::unordered_set<std::string>& out) {
    switch (e.kind) {
      case ExprKind::kVarRef:
        out.insert(static_cast<const VarRef&>(e).name);
        return;
      case ExprKind::kIndex: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        collect_reads(*ix.base, out);
        collect_reads(*ix.index, out);
        return;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        collect_reads(*b.lhs, out);
        collect_reads(*b.rhs, out);
        return;
      }
      case ExprKind::kNary:
        for (const auto& o : static_cast<const NaryExpr&>(e).operands) {
          collect_reads(*o, out);
        }
        return;
      case ExprKind::kUnary:
        collect_reads(*static_cast<const UnaryExpr&>(e).operand, out);
        return;
      case ExprKind::kCast:
        collect_reads(*static_cast<const CastExpr&>(e).value, out);
        return;
      default:
        return;  // literals, ME, MAH FRENZ (E1 is total: nothing else)
    }
  }

  /// Walks an expression counting plain reads of `v` (recording the one
  /// slot a fusion would replace) while checking that every *other* node
  /// is material E1 may cross: no arrays, calls, remote refs, shared
  /// scalars or interpolation — reads of private scalars, IT, ME, rng
  /// and literals only.
  struct UseScan {
    const Fuse& p;
    const std::string& v;
    ExprPtr* slot = nullptr;
    int n = 0;
    bool ok = true;

    void walk(ExprPtr& e) {
      switch (e->kind) {
        case ExprKind::kVarRef: {
          const auto& r = static_cast<const VarRef&>(*e);
          if (r.name == v) {
            if (r.locality == Locality::kRemote) ok = false;
            slot = &e;
            ++n;
            return;
          }
          if (r.locality == Locality::kRemote ||
              p.private_scalar(r.name) == nullptr) {
            ok = false;
          }
          return;
        }
        case ExprKind::kNumbrLit:
        case ExprKind::kNumbarLit:
        case ExprKind::kTroofLit:
        case ExprKind::kNoobLit:
        case ExprKind::kItRef:
        case ExprKind::kMe:
        case ExprKind::kMahFrenz:
        case ExprKind::kWhatevr:
        case ExprKind::kWhatevar:
          return;
        case ExprKind::kYarnLit:
          if (!static_cast<const YarnLit&>(*e).is_plain()) ok = false;
          return;
        case ExprKind::kBinary: {
          auto& b = static_cast<BinaryExpr&>(*e);
          walk(b.lhs);
          walk(b.rhs);
          return;
        }
        case ExprKind::kNary:
          for (auto& o : static_cast<NaryExpr&>(*e).operands) walk(o);
          return;
        case ExprKind::kUnary:
          walk(static_cast<UnaryExpr&>(*e).operand);
          return;
        case ExprKind::kCast:
          walk(static_cast<CastExpr&>(*e).value);
          return;
        default:
          ok = false;  // kIndex, kCall, kSrsRef
          return;
      }
    }
  };

  bool try_fuse(StmtList& body, std::size_t i) {
    auto& def = static_cast<AssignStmt&>(*body[i]);
    if (def.target->kind != ExprKind::kVarRef) return false;
    const auto& tv = static_cast<const VarRef&>(*def.target);
    if (tv.locality == Locality::kRemote) return false;
    const std::string& v = tv.name;
    const VarDeclStmt* d = private_scalar(v);
    if (d == nullptr || !declared(v)) return false;
    std::optional<TypeKind> ty = total(*def.value);
    if (!ty) return false;
    if (d->srsly && (!d->declared_type || *ty != *d->declared_type)) {
      return false;
    }

    std::unordered_set<std::string> reads;
    collect_reads(*def.value, reads);

    for (std::size_t j = i + 1; j < body.size(); ++j) {
      if (body[j]->kind != StmtKind::kAssign) return false;
      auto& use = static_cast<AssignStmt&>(*body[j]);
      if (use.target->kind != ExprKind::kVarRef) return false;
      const auto& w = static_cast<const VarRef&>(*use.target);
      if (w.locality == Locality::kRemote) return false;
      UseScan scan{*this, v};
      scan.walk(use.value);
      if (!scan.ok) return false;
      if (w.name == v) {
        // The first write of v after the def: it must be the single-read
        // self-update, or there is nothing to fuse.
        if (scan.n != 1 || scan.slot == nullptr) return false;
        *scan.slot = std::move(def.value);
        body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
        ++st.fused;
        ++changed;
        return true;
      }
      if (scan.n != 0) return false;  // an intervening read of v
      if (private_scalar(w.name) == nullptr) {
        return false;  // a symmetric store is an access E1 must not cross
      }
      if (reads.count(w.name) != 0) {
        return false;  // clobbers one of E1's operands
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Pass: loop-invariant code motion + strength reduction
//
// One walker handles both: they share the per-loop "what does the body
// write" analysis and both insert declarations before the loop.
// ---------------------------------------------------------------------------

struct LoopOpt {
  Census& census;
  const Types& types;
  const Options& opts;
  Stats& st;
  std::uint64_t changed = 0;
  int fresh_n = 0;

  // Names whose unique declaration has executed in the current scope
  // chain (so reading them at the hoist point cannot be an unbound-
  // variable error the original program lacked).
  std::vector<std::unordered_set<std::string>> inscope;

  std::string fresh(const char* tag) {
    for (;;) {
      std::string name = std::string(tag) + std::to_string(fresh_n++);
      if (census.identifiers.insert(name).second) return name;
    }
  }

  void run(StmtList& body) {
    if (census.has_srs) return;
    inscope.emplace_back();
    walk(body);
    inscope.pop_back();
  }

  void walk(StmtList& body) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      Stmt& s = *body[i];
      switch (s.kind) {
        case StmtKind::kVarDecl: {
          const auto& d = static_cast<const VarDeclStmt&>(s);
          auto it = census.decl_count.find(d.name);
          if (it != census.decl_count.end() && it->second == 1) {
            inscope.back().insert(d.name);
          }
          break;
        }
        case StmtKind::kLoop: {
          auto& l = static_cast<LoopStmt&>(s);
          std::size_t inserted = process(l, body, i);
          i += inserted;  // the loop moved right by `inserted` slots
          inscope.emplace_back();
          if (!l.var.empty()) inscope.back().insert(l.var);
          walk(l.body);
          inscope.pop_back();
          continue;
        }
        case StmtKind::kFuncDef: {
          auto saved = std::move(inscope);
          inscope.clear();
          inscope.emplace_back();
          walk(static_cast<FuncDefStmt&>(s).body);
          inscope = std::move(saved);
          continue;
        }
        default:
          break;
      }
      for_each_child_list(s, [&](StmtList& b) {
        inscope.emplace_back();
        walk(b);
        inscope.pop_back();
      });
    }
  }

  [[nodiscard]] bool known(const std::string& name) const {
    if (types.vars.count(name) == 0) return false;
    for (const auto& scope : inscope) {
      if (scope.count(name) != 0) return true;
    }
    return false;
  }

  /// What one loop body can write, plus reasons to give up entirely.
  struct BodyFacts {
    std::unordered_set<std::string> written;  // incl. nested loop vars
    std::unordered_set<std::string> declared;
    bool has_call = false;  // functions may write globals: bail
  };

  void collect(StmtList& body, BodyFacts& f) const {
    for (auto& sp : body) collect(*sp, f);
  }

  void collect(Stmt& s, BodyFacts& f) const {
    auto place = [&](const Expr& target) {
      if (const std::string* base = place_base_name(target)) {
        f.written.insert(*base);
      }
    };
    switch (s.kind) {
      case StmtKind::kVarDecl:
        f.declared.insert(static_cast<const VarDeclStmt&>(s).name);
        break;
      case StmtKind::kAssign:
        place(*static_cast<const AssignStmt&>(s).target);
        break;
      case StmtKind::kGimmeh:
        place(*static_cast<const GimmehStmt&>(s).target);
        break;
      case StmtKind::kCastTo:
        place(*static_cast<const CastToStmt&>(s).target);
        break;
      case StmtKind::kLock:
        place(*static_cast<const LockStmt&>(s).target);
        break;
      case StmtKind::kLoop: {
        const auto& l = static_cast<const LoopStmt&>(s);
        if (!l.var.empty()) f.declared.insert(l.var);
        if (l.update == LoopUpdate::kFunc) f.has_call = true;
        break;
      }
      default:
        break;
    }
    // Calls anywhere (statement or expression position) clobber.
    struct CallScan {
      bool* flag;
      void expr(const Expr& e) {
        if (e.kind == ExprKind::kCall) *flag = true;
        switch (e.kind) {
          case ExprKind::kSrsRef:
            expr(*static_cast<const SrsRef&>(e).name_expr);
            break;
          case ExprKind::kIndex: {
            const auto& i = static_cast<const IndexExpr&>(e);
            expr(*i.base);
            expr(*i.index);
            break;
          }
          case ExprKind::kBinary: {
            const auto& b = static_cast<const BinaryExpr&>(e);
            expr(*b.lhs);
            expr(*b.rhs);
            break;
          }
          case ExprKind::kNary:
            for (const auto& o :
                 static_cast<const NaryExpr&>(e).operands) {
              expr(*o);
            }
            break;
          case ExprKind::kUnary:
            expr(*static_cast<const UnaryExpr&>(e).operand);
            break;
          case ExprKind::kCast:
            expr(*static_cast<const CastExpr&>(e).value);
            break;
          case ExprKind::kCall:
            for (const auto& a : static_cast<const CallExpr&>(e).args) {
              expr(*a);
            }
            break;
          default:
            break;
        }
      }
    } scan{&f.has_call};
    for_each_rvalue(s, [&](ExprPtr& e) { scan.expr(*e); });
    for_each_child_list(s, [&](StmtList& b) { collect(b, f); });
  }

  /// Returns how many statements were inserted before the loop.
  std::size_t process(LoopStmt& loop, StmtList& list, std::size_t idx) {
    BodyFacts f;
    collect(loop.body, f);
    if (loop.update == LoopUpdate::kFunc) f.has_call = true;
    if (f.has_call) return 0;

    std::size_t inserted = 0;
    inserted += licm(loop, f, list, idx);
    inserted += strength(loop, f, list, idx + inserted);
    return inserted;
  }

  // -- LICM ----------------------------------------------------------------

  /// Pure, total, loop-invariant: every leaf is a literal, ME, MAH
  /// FRENZ, or an in-scope statically typed variable the body never
  /// writes; every operator is total on the inferred operand types.
  /// Returns the expression's type when all of that holds.
  std::optional<TypeKind> invariant_total(const Expr& e,
                                          const BodyFacts& f) const {
    switch (e.kind) {
      case ExprKind::kNumbrLit:
        return TypeKind::kNumbr;
      case ExprKind::kNumbarLit:
        return TypeKind::kNumbar;
      case ExprKind::kTroofLit:
        return TypeKind::kTroof;
      case ExprKind::kNoobLit:
        return TypeKind::kNoob;
      case ExprKind::kYarnLit:
        if (!static_cast<const YarnLit&>(e).is_plain()) {
          return std::nullopt;  // interpolation reads the environment
        }
        return TypeKind::kYarn;
      case ExprKind::kMe:
      case ExprKind::kMahFrenz:
        return TypeKind::kNumbr;
      case ExprKind::kVarRef: {
        const auto& r = static_cast<const VarRef&>(e);
        if (r.locality == Locality::kRemote) return std::nullopt;
        if (f.written.count(r.name) != 0 ||
            f.declared.count(r.name) != 0) {
          return std::nullopt;
        }
        if (!known(r.name)) return std::nullopt;
        return types.vars.at(r.name);
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        auto l = invariant_total(*b.lhs, f);
        auto r = invariant_total(*b.rhs, f);
        if (!l || !r) return std::nullopt;
        bool ln = *l == TypeKind::kNumbr || *l == TypeKind::kNumbar;
        bool rn = *r == TypeKind::kNumbr || *r == TypeKind::kNumbar;
        switch (b.op) {
          case BinOp::kSum:
          case BinOp::kDiff:
          case BinOp::kProdukt:
          case BinOp::kBiggr:
          case BinOp::kSmallr:
            if (!ln || !rn) return std::nullopt;
            return *l == TypeKind::kNumbar || *r == TypeKind::kNumbar
                       ? TypeKind::kNumbar
                       : TypeKind::kNumbr;
          case BinOp::kBigger:
          case BinOp::kSmallrCmp:
            if (!ln || !rn) return std::nullopt;
            return TypeKind::kTroof;
          case BinOp::kBothSaem:
          case BinOp::kDiffrint:
          case BinOp::kBothOf:
          case BinOp::kEitherOf:
          case BinOp::kWonOf:
            return TypeKind::kTroof;  // saem/to_troof are total
          case BinOp::kQuoshunt:
          case BinOp::kMod:
            return std::nullopt;  // may divide by zero at run time
        }
        return std::nullopt;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        auto t = invariant_total(*u.operand, f);
        if (!t) return std::nullopt;
        if (u.op == UnOp::kNot) return TypeKind::kTroof;
        if (u.op == UnOp::kSquar &&
            (*t == TypeKind::kNumbr || *t == TypeKind::kNumbar)) {
          return t;
        }
        return std::nullopt;  // UNSQUAR/FLIP throw on some inputs
      }
      default:
        return std::nullopt;
    }
  }

  std::size_t licm(LoopStmt& loop, const BodyFacts& f, StmtList& list,
                   std::size_t idx) {
    // Collect maximal invariant subexpressions worth a variable.
    std::vector<std::string> order;
    std::unordered_set<std::string> seen;
    auto consider = [&](const Expr& e) {
      if (count_expr_nodes(e) < 3) return false;
      if (!invariant_total(e, f)) return false;
      std::string key = dump(e);
      if (seen.insert(key).second) order.push_back(std::move(key));
      return true;
    };
    scan_exprs(loop.body, [&](const Expr& e) { return consider(e); });
    if (order.empty()) return 0;
    if (order.size() > 8) order.resize(8);

    std::size_t inserted = 0;
    for (const std::string& key : order) {
      std::string name = fresh("licm_t");
      const Expr* sample = nullptr;
      replace_exprs(loop.body, [&](ExprPtr& slot) {
        if (!invariant_total(*slot, f) ||
            count_expr_nodes(*slot) < 3 || dump(*slot) != key) {
          return false;
        }
        if (sample == nullptr) {
          // First match donates the hoisted initializer.
          auto decl = std::make_unique<VarDeclStmt>(loop.loc);
          decl->name = name;
          decl->init = clone_expr(*slot);
          sample = decl->init.get();
          list.insert(list.begin() + static_cast<std::ptrdiff_t>(idx) +
                          static_cast<std::ptrdiff_t>(inserted),
                      std::move(decl));
          ++inserted;
        }
        slot = std::make_unique<VarRef>(name, Locality::kDefault,
                                        slot->loc);
        return true;
      });
      if (sample != nullptr) {
        ++st.hoisted;
        ++changed;
      }
    }
    return inserted;
  }

  // -- strength reduction --------------------------------------------------

  std::size_t strength(LoopStmt& loop, const BodyFacts& f, StmtList& list,
                       std::size_t idx) {
    if (loop.update != LoopUpdate::kUppin || loop.var.empty()) return 0;
    const std::string& c = loop.var;
    if (f.written.count(c) != 0 || f.declared.count(c) != 0) return 0;
    auto it = census.decl_count.find(c);
    if (it == census.decl_count.end() || it->second != 1) return 0;

    // counter * k (either operand order), local reads only.
    auto match = [&](const Expr& e) -> std::optional<std::int64_t> {
      if (e.kind != ExprKind::kBinary) return std::nullopt;
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (b.op != BinOp::kProdukt) return std::nullopt;
      auto pick = [&](const Expr& vr,
                      const Expr& lit) -> std::optional<std::int64_t> {
        if (vr.kind != ExprKind::kVarRef ||
            lit.kind != ExprKind::kNumbrLit) {
          return std::nullopt;
        }
        const auto& r = static_cast<const VarRef&>(vr);
        if (r.name != c || r.locality == Locality::kRemote) {
          return std::nullopt;
        }
        return static_cast<const NumbrLit&>(lit).value;
      };
      auto k = pick(*b.lhs, *b.rhs);
      if (!k) k = pick(*b.rhs, *b.lhs);
      return k;
    };

    std::vector<std::int64_t> ks;
    scan_exprs(loop.body, [&](const Expr& e) {
      auto k = match(e);
      if (k && std::find(ks.begin(), ks.end(), *k) == ks.end()) {
        ks.push_back(*k);
      }
      return false;  // keep descending: matches can nest in bigger exprs
    });
    if (ks.empty()) return 0;
    if (ks.size() > 4) ks.resize(4);

    std::size_t inserted = 0;
    for (std::int64_t k : ks) {
      std::string acc = fresh("sr_acc");
      replace_exprs(loop.body, [&](ExprPtr& slot) {
        if (match(*slot) != k) return false;
        slot = std::make_unique<VarRef>(acc, Locality::kDefault,
                                        slot->loc);
        return true;
      });
      // acc starts at 0*k and gains k after every iteration, mirroring
      // UPPIN: at each condition/body evaluation acc == counter * k.
      auto decl = std::make_unique<VarDeclStmt>(loop.loc);
      decl->name = acc;
      decl->init = std::make_unique<NumbrLit>(0, loop.loc);
      list.insert(
          list.begin() + static_cast<std::ptrdiff_t>(idx) +
              static_cast<std::ptrdiff_t>(inserted),
          std::move(decl));
      ++inserted;
      loop.body.push_back(std::make_unique<AssignStmt>(
          std::make_unique<VarRef>(acc, Locality::kDefault, loop.loc),
          std::make_unique<BinaryExpr>(
              BinOp::kSum,
              std::make_unique<VarRef>(acc, Locality::kDefault, loop.loc),
              std::make_unique<NumbrLit>(k, loop.loc), loop.loc),
          loop.loc));
      ++st.reduced;
      ++changed;
    }
    return inserted;
  }

  // -- expression scanning over a body (rvalues only, no nested funcs) -----

  /// Calls `fn` on expressions top-down; when fn returns true the
  /// walker does not descend into that expression's children.
  template <typename Fn>
  void scan_exprs(StmtList& body, Fn&& fn) {
    for (auto& sp : body) {
      for_each_rvalue(*sp, [&](ExprPtr& e) { scan_expr(*e, fn); });
      for_each_child_list(*sp, [&](StmtList& b) { scan_exprs(b, fn); });
    }
  }

  template <typename Fn>
  void scan_expr(const Expr& e, Fn&& fn) {
    if (fn(e)) return;
    switch (e.kind) {
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        scan_expr(*i.index, fn);
        break;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        scan_expr(*b.lhs, fn);
        scan_expr(*b.rhs, fn);
        break;
      }
      case ExprKind::kNary:
        for (const auto& o : static_cast<const NaryExpr&>(e).operands) {
          scan_expr(*o, fn);
        }
        break;
      case ExprKind::kUnary:
        scan_expr(*static_cast<const UnaryExpr&>(e).operand, fn);
        break;
      case ExprKind::kCast:
        scan_expr(*static_cast<const CastExpr&>(e).value, fn);
        break;
      case ExprKind::kCall:
        for (const auto& a : static_cast<const CallExpr&>(e).args) {
          scan_expr(*a, fn);
        }
        break;
      default:
        break;
    }
  }

  /// Calls `fn` on expression slots top-down; when fn returns true (it
  /// replaced the slot) the walker does not descend into the result.
  template <typename Fn>
  void replace_exprs(StmtList& body, Fn&& fn) {
    for (auto& sp : body) {
      for_each_rvalue(*sp, [&](ExprPtr& e) { replace_expr(e, fn); });
      for_each_child_list(*sp, [&](StmtList& b) { replace_exprs(b, fn); });
    }
  }

  template <typename Fn>
  void replace_expr(ExprPtr& slot, Fn&& fn) {
    if (fn(slot)) return;
    switch (slot->kind) {
      case ExprKind::kIndex:
        replace_expr(static_cast<IndexExpr&>(*slot).index, fn);
        break;
      case ExprKind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(*slot);
        replace_expr(b.lhs, fn);
        replace_expr(b.rhs, fn);
        break;
      }
      case ExprKind::kNary:
        for (auto& o : static_cast<NaryExpr&>(*slot).operands) {
          replace_expr(o, fn);
        }
        break;
      case ExprKind::kUnary:
        replace_expr(static_cast<UnaryExpr&>(*slot).operand, fn);
        break;
      case ExprKind::kCast:
        replace_expr(static_cast<CastExpr&>(*slot).value, fn);
        break;
      case ExprKind::kCall:
        for (auto& a : static_cast<CallExpr&>(*slot).args) {
          replace_expr(a, fn);
        }
        break;
      default:
        break;
    }
  }
};

// ---------------------------------------------------------------------------
// Pass: dead code elimination — unreferenced declarations and dead IT
// writes (the literal ExprStmt residue branch selection leaves behind)
// ---------------------------------------------------------------------------

/// True when `e` contains anything that blocks removing a preceding IT
/// write: an IT read, a `:{...}` interpolation (dynamic name lookup), or
/// a call (functions get their own IT, but a call is kept as a
/// conservative barrier so all backends trivially agree).
bool expr_blocks_it_elim(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kItRef:
    case ExprKind::kCall:
      return true;
    case ExprKind::kYarnLit: {
      for (const auto& seg : static_cast<const YarnLit&>(e).segments) {
        if (seg.is_var) return true;
      }
      return false;
    }
    case ExprKind::kSrsRef:
      return true;  // unreachable: the pass bails on SRS programs
    case ExprKind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      return expr_blocks_it_elim(*i.base) || expr_blocks_it_elim(*i.index);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return expr_blocks_it_elim(*b.lhs) || expr_blocks_it_elim(*b.rhs);
    }
    case ExprKind::kNary: {
      for (const auto& o : static_cast<const NaryExpr&>(e).operands) {
        if (expr_blocks_it_elim(*o)) return true;
      }
      return false;
    }
    case ExprKind::kUnary:
      return expr_blocks_it_elim(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kCast:
      return expr_blocks_it_elim(*static_cast<const CastExpr&>(e).value);
    default:
      return false;
  }
}

struct Dce {
  const Census& census;
  Stats& st;
  std::uint64_t changed = 0;

  void run(StmtList& body) {
    if (census.has_srs) return;
    walk(body);
  }

  void walk(StmtList& body) {
    for (std::size_t i = 0; i < body.size();) {
      for_each_child_list(*body[i], [&](StmtList& b) { walk(b); });
      if (removable(*body[i]) || dead_it_write(body, i)) {
        body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
        ++st.dead;
        ++changed;
      } else {
        ++i;
      }
    }
  }

  /// `body[i]` is a literal ExprStmt (a pure IT write) that can go when
  /// a later statement in the same list provably overwrites IT before
  /// anything reads it. The scan walks forward over IT-neutral simple
  /// statements; the first ExprStmt that does not itself read IT is the
  /// overwrite (if its expression throws mid-evaluation the program
  /// terminates and IT is never read — there is no catch construct).
  /// Any control flow, region, or other statement kind ends the scan
  /// conservatively, as does the end of the list (the enclosing
  /// context — a loop condition's next iteration, a caller — may read
  /// IT).
  [[nodiscard]] bool dead_it_write(StmtList& body, std::size_t i) const {
    Stmt& s = *body[i];
    if (s.kind != StmtKind::kExpr) return false;
    if (!literal_of(*static_cast<const ExprStmt&>(s).expr)) return false;
    for (std::size_t j = i + 1; j < body.size(); ++j) {
      Stmt& n = *body[j];
      bool blocked = false;
      for_each_rvalue(n, [&](ExprPtr& e) {
        if (expr_blocks_it_elim(*e)) blocked = true;
      });
      if (blocked) return false;
      switch (n.kind) {
        case StmtKind::kExpr:
          return true;  // overwrites IT before any read
        case StmtKind::kAssign:
        case StmtKind::kVarDecl:
        case StmtKind::kVisible:
        case StmtKind::kCastTo:
        case StmtKind::kLock:
          continue;  // IT-neutral, keep scanning
        default:
          return false;
      }
    }
    return false;
  }

  bool removable(const Stmt& s) const {
    if (s.kind != StmtKind::kVarDecl) return false;
    const auto& d = static_cast<const VarDeclStmt&>(s);
    if (d.scope != DeclScope::kPrivate) return false;
    auto dc = census.decl_count.find(d.name);
    if (dc == census.decl_count.end() || dc->second != 1) return false;
    if (census.ref_count.count(d.name) != 0) return false;
    // Initializer/size must be pure and total (a throwing initializer
    // is an observable runtime error).
    auto pure = [](const Expr& e) {
      return literal_of(e).has_value() || e.kind == ExprKind::kMe ||
             e.kind == ExprKind::kMahFrenz;
    };
    if (d.init && !pure(*d.init)) return false;
    if (d.array_size && !pure(*d.array_size)) return false;
    if (d.init && d.srsly && d.declared_type) {
      auto v = literal_of(*d.init);
      if (!v) return false;  // ME/MAH FRENZ cast is total for NUMBR only
      try {
        (void)v->cast_to(*d.declared_type, /*explicit_cast=*/false);
      } catch (const support::LolError&) {
        return false;
      }
    }
    return true;
  }
};

#if LOL_OBS_RUNTIME_METRICS
struct OptMetrics {
  obs::CounterFamily& passes;
  obs::Counter& folded;
  obs::Histogram& ms;
  OptMetrics()
      : passes(obs::Registry::global().counter_family(
            "lol_opt_passes_run_total", "Optimizer pass executions",
            "pass")),
        folded(obs::Registry::global().counter(
            "lol_opt_nodes_folded_total",
            "AST nodes replaced by the optimizer (all passes)")),
        ms(obs::Registry::global().histogram(
            "lol_opt_ms", "Wall time of one optimize() pipeline run",
            {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0})) {}
  static OptMetrics& get() {
    static OptMetrics m;
    return m;
  }
};
#endif

}  // namespace

void optimize(Program& program, const Options& opts, Stats* stats) {
  Stats local;
  Stats& st = stats != nullptr ? *stats : local;
  if (opts.level <= 0) return;
#if LOL_OBS_RUNTIME_METRICS
  auto t0 = std::chrono::steady_clock::now();
#endif
  std::uint64_t before_total = st.total();
  // Iterate to a (bounded) fixpoint: propagation exposes folds, folds
  // expose unrollable trip counts, unrolling exposes more folds.
  for (int round = 0; round < 4; ++round) {
    std::uint64_t changed = 0;
    Census census = take_census(program);
    Types types = infer_types(census);

    Fold fold{types, st};
    fold.run(program.body);
    changed += fold.changed;

    Prop prop{census, st};
    prop.run(program.body);
    changed += prop.changed;

    // DCE runs on the census taken above — i.e. before any pass that
    // renames or deletes code this round — so its counts are exact.
    Dce dce{census, st};
    dce.run(program.body);
    changed += dce.changed;

    if (opts.level >= 2) {
      Unroll unroll{census, opts, st};
      unroll.run(program.body);
      changed += unroll.changed;

      Fold refold{types, st};
      refold.run(program.body);
      changed += refold.changed;

      Select select{census, st};
      select.run(program.body);
      changed += select.changed;

      RegionMerge regions{census, st};
      regions.run(program.body);
      changed += regions.changed;

      Fuse fuse{census, types, st};
      fuse.run(program.body);
      changed += fuse.changed;

      LoopOpt loopopt{census, types, opts, st};
      loopopt.run(program.body);
      changed += loopopt.changed;
    }
    if (changed == 0) break;
  }
#if LOL_OBS_RUNTIME_METRICS
  {
    OptMetrics& m = OptMetrics::get();
    auto record = [&](const char* pass, std::uint64_t n) {
      if (n != 0) m.passes.with(pass).inc(n);
    };
    record("fold", st.folded);
    record("prop", st.propagated);
    record("unroll", st.unrolled);
    record("select", st.selected);
    record("licm", st.hoisted);
    record("strength", st.reduced);
    record("regions", st.merged);
    record("fuse", st.fused);
    record("dce", st.dead);
    m.folded.inc(st.total() - before_total);
    m.ms.observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
#endif
}

std::uint64_t mix_hash(std::uint64_t h, int opt_level,
                       int unroll_max_trip) {
  if (opt_level <= 0) return h;  // -O0 runs the raw program unchanged
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(opt_level));
  mix(static_cast<std::uint64_t>(unroll_max_trip));
  mix(kPipelineVersion);
  return h;
}

}  // namespace lol::opt

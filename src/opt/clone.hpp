// Deep-cloning of AST subtrees.
//
// AST nodes own their children through unique_ptr and are deliberately
// non-copyable; the optimizer is the one consumer that needs structural
// copies (loop unrolling duplicates bodies, propagation duplicates
// literal initializers). Clones preserve source locations so diagnostics
// from optimized programs still point at the original text.
#pragma once

#include "ast/ast.hpp"

namespace lol::opt {

[[nodiscard]] ast::ExprPtr clone_expr(const ast::Expr& e);
[[nodiscard]] ast::StmtPtr clone_stmt(const ast::Stmt& s);
[[nodiscard]] ast::StmtList clone_body(const ast::StmtList& body);

}  // namespace lol::opt

// Measurement-driven auto-tuner for runtime knobs.
//
// The engine exposes several knobs whose best setting depends on the
// workload, not the program semantics: the combining-tree barrier radix,
// the executor kind (thread / pool / fiber), and fiber PE packing.
// calibrate() finds a good combination by timing short real runs of the
// compiled program and persists the winner in a TunerStore keyed by
// (program hash, n_pes), so the service can apply it on warm hits and
// `lolrun --tune` can report it. Results are byte-identical across every
// knob setting by construction (see RunConfig), so tuning never changes
// program output — only wall-clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace lol {
struct CompiledProgram;
}

namespace lol::opt {

/// A tuned knob assignment. Zero / empty fields mean "no preference":
/// the service only applies a knob the submitting job left at default.
struct TunedKnobs {
  int barrier_radix = 0;     // 0 = auto
  std::string executor;      // "" = unset; else thread | pool | fiber
  int pes_per_thread = 0;    // fiber packing; 0 = auto
  int unroll_max_trip = 0;   // 0 = no preference; -1 = unrolling off;
                             // >0 = tuned trip-count cap (a compile-time
                             // knob: appliers recompile with it)

  [[nodiscard]] bool any() const {
    return barrier_radix != 0 || !executor.empty() ||
           pes_per_thread != 0 || unroll_max_trip != 0;
  }

  /// The opt::Options / CompileOptions value this preference maps to
  /// (-1 encodes "unrolling off" as 0). Call only when != 0.
  [[nodiscard]] int unroll_value() const {
    return unroll_max_trip < 0 ? 0 : unroll_max_trip;
  }
};

/// Durable tuned-knob store: a line-per-entry text file
/// (`v2 <hash> <n_pes> <radix> <executor|-> <ppt> <unroll>`; v1 lines
/// without the unroll field still load), small enough to rewrite whole
/// on every store. Thread-safe; concurrent processes last-writer-win,
/// which is fine for measurements of the same workload.
class TunerStore {
 public:
  explicit TunerStore(std::string path);

  [[nodiscard]] std::optional<TunedKnobs> lookup(std::uint64_t program_hash,
                                                 int n_pes) const;
  void store(std::uint64_t program_hash, int n_pes, const TunedKnobs& k);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex m_;
};

/// Times short real runs of `prog` over the knob grid and returns the
/// fastest combination, persisting it in `store` (when non-null) under
/// replay::fnv1a(source) and n_pes. Runs are capped by a step budget so
/// calibration terminates even on hostile programs; programs that need
/// stdin simply run their GIMMEHs against empty input, which is still a
/// valid relative timing signal.
TunedKnobs calibrate(const CompiledProgram& prog, std::string_view source,
                     int n_pes, TunerStore* store);

}  // namespace lol::opt

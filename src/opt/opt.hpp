// The optimizing middle-end: a pass pipeline over the AST.
//
// Runs once per compile — between sema validation and backend slot setup
// — so the interpreter, the bytecode VM, the lcc native path and the JIT
// all execute the same optimized program, and every warm compile-cache
// hit amortizes the work across runs. The pipeline is semantics-
// preserving with respect to per-PE observable behavior: printed output,
// error classification, barrier/lock/symmetric-access sequences, rng
// draw counts and GIMMEH reads are identical at every level. Step
// *counts* are not preserved: unrolling removes per-iteration condition
// checks and hoisting/strength reduction add statements, so programs
// near a step-budget edge can classify differently across levels — the
// same caveat the differential suite already documents for the
// statement-vs-instruction budget mismatch between backends.
//
// Passes (level 1: fold, prop, dce; level 2 adds the loop pipeline):
//   fold      constant folding + algebraic simplification, backed by the
//             runtime's own rt::op_* so folded values are bit-identical;
//             expressions that would throw are left for run time
//   prop      literal propagation of once-declared, never-mutated
//             private scalars (declarations are kept: `:{x}`
//             interpolation still reads the environment)
//   unroll    bounded unrolling of `IM IN YR .. UPPIN .. TIL BOTH SAEM
//             var AN <lit>` counting loops (and the WILE DIFFRINT form)
//   select    static branch selection for `<literal expr>, O RLY?`
//   licm      loop-invariant code motion of pure, provably-total
//             subexpressions out of `IM IN YR` bodies
//   strength  strength reduction of `PRODUKT OF counter AN <lit>`
//             induction arithmetic to a running accumulator
//   regions   coalescing of consecutive TXT MAH BFF regions with a
//             provably identical target (unrolled remote loops leave
//             runs of them), absorbing the IT-neutral local statements
//             between — one target eval + region entry instead of N
//   fuse      forward substitution of a private scalar's pure, total
//             definition into the self-update that is its first
//             subsequent write and only intervening read (`v R E1` ..
//             `v R E2(v)` becomes `v R E2(E1)`), dropping a statement,
//             a store and a name lookup per execution
//   dce       removal of never-referenced declarations and of literal
//             IT writes (branch-selection residue) provably overwritten
//             before any read
//
// Programs using SRS dynamic names disable every name-sensitive pass.
#pragma once

#include <cstdint>

#include "ast/ast.hpp"

namespace lol::opt {

/// Bumped whenever pass behavior changes. The compile cache mixes this
/// into its key so persisted/warm entries never alias an optimized shape
/// produced by a different pipeline.
inline constexpr std::uint32_t kPipelineVersion = 1;

struct Options {
  int level = 2;             // 0 = off, 1 = fold/prop/dce, 2 = full
  int unroll_max_trip = 16;  // largest trip count unrolled (0 disables)
  int unroll_body_budget = 1500;  // max statements one unroll may create
};

/// What the pipeline did (observability + tests).
struct Stats {
  std::uint64_t folded = 0;     // expressions replaced by literals
  std::uint64_t propagated = 0; // variable reads replaced by literals
  std::uint64_t unrolled = 0;   // loops fully unrolled
  std::uint64_t selected = 0;   // statically selected O RLY? branches
  std::uint64_t hoisted = 0;    // loop-invariant expressions hoisted
  std::uint64_t reduced = 0;    // induction multiplies strength-reduced
  std::uint64_t merged = 0;     // predication regions coalesced away
  std::uint64_t fused = 0;      // single-use definitions substituted
  std::uint64_t dead = 0;       // dead declarations / IT writes removed

  [[nodiscard]] std::uint64_t total() const {
    return folded + propagated + unrolled + selected + hoisted + reduced +
           merged + fused + dead;
  }
};

/// Optimizes a sema-validated program in place. `program` must have
/// passed sema::analyze (the pipeline assumes structural validity);
/// callers re-analyze afterwards because sema::Analysis borrows AST
/// pointers the passes may replace.
void optimize(ast::Program& program, const Options& opts,
              Stats* stats = nullptr);

/// Mixes the optimization configuration into a program hash. Replay
/// traces and cache keys derived from source text must also distinguish
/// the optimized shape that actually ran.
[[nodiscard]] std::uint64_t mix_hash(std::uint64_t h, int opt_level,
                                     int unroll_max_trip);

}  // namespace lol::opt

#include "opt/tuner.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "replay/trace.hpp"
#include "rt/io.hpp"
#include "shmem/executor.hpp"

namespace lol::opt {

namespace {

struct Entry {
  std::uint64_t hash = 0;
  int n_pes = 0;
  TunedKnobs knobs;
};

std::vector<Entry> load_entries(const std::string& path) {
  std::vector<Entry> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag, executor;
    Entry e;
    if (!(ls >> tag >> e.hash >> e.n_pes >> e.knobs.barrier_radix >>
          executor >> e.knobs.pes_per_thread)) {
      continue;  // malformed line: skip, don't fail the whole store
    }
    if (tag == "v2" && !(ls >> e.knobs.unroll_max_trip)) continue;
    if (tag != "v1" && tag != "v2") continue;  // v1: unroll unset
    if (executor != "-") e.knobs.executor = executor;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

TunerStore::TunerStore(std::string path) : path_(std::move(path)) {}

std::optional<TunedKnobs> TunerStore::lookup(std::uint64_t program_hash,
                                             int n_pes) const {
  std::lock_guard<std::mutex> g(m_);
  for (const Entry& e : load_entries(path_)) {
    if (e.hash == program_hash && e.n_pes == n_pes) return e.knobs;
  }
  return std::nullopt;
}

void TunerStore::store(std::uint64_t program_hash, int n_pes,
                       const TunedKnobs& k) {
  std::lock_guard<std::mutex> g(m_);
  std::vector<Entry> entries = load_entries(path_);
  bool replaced = false;
  for (Entry& e : entries) {
    if (e.hash == program_hash && e.n_pes == n_pes) {
      e.knobs = k;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries.push_back({program_hash, n_pes, k});
  std::ofstream out(path_, std::ios::trunc);
  for (const Entry& e : entries) {
    out << "v2 " << e.hash << ' ' << e.n_pes << ' '
        << e.knobs.barrier_radix << ' '
        << (e.knobs.executor.empty() ? "-" : e.knobs.executor.c_str())
        << ' ' << e.knobs.pes_per_thread << ' '
        << e.knobs.unroll_max_trip << '\n';
  }
}

namespace {

/// One timed calibration run. Returns wall milliseconds, or a huge value
/// when the configuration failed outright (unavailable executor) so the
/// grid search never picks it.
double timed_run(const CompiledProgram& prog, const RunConfig& base) {
  RunConfig cfg = base;
  cfg.max_steps = 500000;  // terminate hostile/looping programs
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r = run(prog, cfg);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  // Step-limited runs still carry a comparable timing signal (every
  // config does the same capped work); hard failures do not.
  if (!r.ok && !r.step_limited) return 1e18;
  return ms;
}

}  // namespace

TunedKnobs calibrate(const CompiledProgram& prog, std::string_view source,
                     int n_pes, TunerStore* store) {
  rt::CaptureSink devnull(n_pes);  // calibration output is discarded
  RunConfig base;
  base.n_pes = n_pes;
  base.backend = Backend::kVm;
  base.sink = &devnull;

  // Stage 1: barrier radix. Binary tree vs wider fan-in trades tree
  // depth against per-node contention; only measurable with >2 PEs.
  TunedKnobs best;
  double best_ms = timed_run(prog, base);
  if (n_pes > 2) {
    for (int radix : {2, 4}) {
      RunConfig cfg = base;
      cfg.barrier_radix = radix;
      double ms = timed_run(prog, cfg);
      if (ms < best_ms) {
        best_ms = ms;
        best.barrier_radix = radix;
      }
    }
  }
  base.barrier_radix = best.barrier_radix;

  // Stage 2: executor. The pool saves thread spawns for small gangs;
  // fibers win once n_pes outgrows the hardware threads.
  for (shmem::ExecutorKind kind :
       {shmem::ExecutorKind::kPool, shmem::ExecutorKind::kFiber}) {
    RunConfig cfg = base;
    cfg.executor = kind;
    double ms = timed_run(prog, cfg);
    if (ms < best_ms) {
      best_ms = ms;
      best.executor = shmem::to_string(kind);
    }
  }

  // Stage 3: fiber packing, only worth exploring when fibers won.
  if (best.executor == "fiber") {
    if (auto e = shmem::executor_from_name(best.executor)) {
      for (int ppt : {2, 4}) {
        RunConfig cfg = base;
        cfg.executor = *e;
        cfg.pes_per_thread = ppt;
        double ms = timed_run(prog, cfg);
        if (ms < best_ms) {
          best_ms = ms;
          best.pes_per_thread = ppt;
        }
      }
    }
  }

  // Stage 4: unroll budget. A compile-time knob: the unroller trades
  // dispatch and loop-condition steps against code size (and, under the
  // JIT's specialized tier, longer straight-line regions), so the best
  // cap is workload-dependent. Recompile the source at each candidate
  // and time it under the runtime knobs that just won. Only meaningful
  // once the loop pipeline runs (opt level >= 2).
  if (prog.options.opt_level >= 2) {
    RunConfig tuned_cfg = base;
    if (auto e = shmem::executor_from_name(best.executor)) {
      tuned_cfg.executor = *e;
      tuned_cfg.pes_per_thread = best.pes_per_thread;
    }
    for (int cap : {0, 4, 64}) {
      if (cap == prog.options.unroll_max_trip) continue;
      CompileOptions copts = prog.options;
      copts.unroll_max_trip = cap;
      CompiledProgram candidate;
      try {
        candidate = compile(source, copts);
      } catch (...) {
        continue;  // the baseline compiled; a candidate never should fail
      }
      double ms = timed_run(candidate, tuned_cfg);
      if (ms < best_ms) {
        best_ms = ms;
        best.unroll_max_trip = cap == 0 ? -1 : cap;
      }
    }
  }

  if (store != nullptr) {
    store->store(replay::fnv1a(source), n_pes, best);
  }
  return best;
}

}  // namespace lol::opt

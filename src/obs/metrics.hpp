// Process-wide metrics registry: named counters, gauges, and
// fixed-bucket histograms on cache-line-padded atomics, exposed in
// Prometheus text format.
//
// Design rules that keep the hot path cheap:
//   - Instruments are found-or-created under a mutex ONCE (call sites
//     cache the reference in a function-local static); after that an
//     update is a single relaxed fetch_add on a dedicated cache line.
//   - Labels are limited to one key per family with a small, bounded
//     value set (tenant/backend/status).  A family caps its children at
//     kMaxChildren; further distinct values collapse into an "_other"
//     series so client-chosen tenant names cannot grow the registry
//     unboundedly.
//   - Instruments live in std::deque so addresses are stable for the
//     lifetime of the registry; references never dangle.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/profile.hpp"  // LOL_OBS_RUNTIME_METRICS default

namespace lol::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::int64_t> v_{0};
};

/// Fixed upper-bound buckets chosen at registration; observe() is a
/// linear scan over <= ~8 bounds plus three relaxed atomic updates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::size_t n_buckets() const { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket i; i == bounds().size() is +Inf.
  std::uint64_t bucket_value(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;            // strictly increasing upper bounds
  std::deque<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (+Inf)
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A set of counters sharing a name, distinguished by one label.
class CounterFamily {
 public:
  /// Distinct label values beyond this collapse into the "_other" child.
  static constexpr std::size_t kMaxChildren = 32;

  CounterFamily(std::string name, std::string help, std::string label_key);

  /// Find-or-create the child for `label_value` (mutex-guarded; cache
  /// the returned reference when the label is known statically).
  Counter& with(std::string_view label_value);

  const std::string& name() const { return name_; }
  std::size_t n_children() const;

 private:
  friend class Registry;
  std::string name_, help_, label_key_;
  mutable std::mutex m_;
  struct Child {
    explicit Child(std::string v) : label(std::move(v)) {}
    std::string label;
    Counter c;
  };
  std::deque<Child> children_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrument lives in.
  static Registry& global();

  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  CounterFamily& counter_family(std::string_view name, std::string_view help,
                                std::string_view label_key);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds);

  /// Prometheus text exposition: # HELP / # TYPE lines, families sorted
  /// by name, histogram buckets cumulative with `le="+Inf"`, `_sum`,
  /// `_count`.
  std::string expose() const;

 private:
  template <typename T>
  struct Entry {
    template <typename... A>
    Entry(std::string n, std::string h, A&&... a)
        : name(std::move(n)), help(std::move(h)),
          v(std::forward<A>(a)...) {}
    std::string name, help;
    T v;
  };

  mutable std::mutex m_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<CounterFamily> families_;
  std::deque<Entry<Histogram>> hists_;
};

}  // namespace lol::obs

// Per-PE runtime profile: plain (non-atomic) counters owned by the
// thread/fiber that runs the PE.  The runtime aggregates them into
// LaunchResult after the executor joins the gang, so publication rides
// the join's happens-before edge — no atomics on the hot path, and the
// whole thing is TSan-clean by construction.
//
// Event counts are always maintained (a plain increment on thread-local
// memory).  Wall-clock *wait* times are only sampled when the launch was
// configured with `profile = true`; an unconditional steady_clock read
// per barrier arrival costs ~25% at 2048 fiber PEs, which would blow the
// instrumentation budget.
#pragma once

#include <cstdint>

// Compile-out switch for runtime-layer instrumentation.  The build can
// set LOL_OBS_RUNTIME_METRICS=0 (cmake -DLOL_OBS=OFF) to strip every
// counter from the barrier/lock/executor hot paths; the bench harness
// uses such a build as the zero-cost baseline for the overhead guard.
#ifndef LOL_OBS_RUNTIME_METRICS
#define LOL_OBS_RUNTIME_METRICS 1
#endif

namespace lol::obs {

struct PeProfile {
  std::uint64_t steps = 0;              ///< statements/instructions retired
  std::uint64_t barrier_crossings = 0;  ///< collective ops this PE entered
  std::uint64_t barrier_wait_ns = 0;    ///< time parked in the tree (profile runs)
  std::uint64_t lock_acquires = 0;      ///< LOCKZ taken (set_lock + won test_lock)
  std::uint64_t lock_contended = 0;     ///< acquisitions that found the lock held
  std::uint64_t lock_wait_ns = 0;       ///< time spinning/parked on locks (profile runs)
  std::uint64_t gimmeh_blocks = 0;      ///< GIMMEH reads that had to wait for input
  /// WHATEVR/WHATEVAR draws. Always maintained (not gated on
  /// LOL_OBS_RUNTIME_METRICS): replay verification compares these counts
  /// against a recorded trace to detect divergence in every build.
  std::uint64_t rng_draws = 0;

  PeProfile& operator+=(const PeProfile& o) {
    steps += o.steps;
    barrier_crossings += o.barrier_crossings;
    barrier_wait_ns += o.barrier_wait_ns;
    lock_acquires += o.lock_acquires;
    lock_contended += o.lock_contended;
    lock_wait_ns += o.lock_wait_ns;
    gimmeh_blocks += o.gimmeh_blocks;
    rng_draws += o.rng_draws;
    return *this;
  }
};

}  // namespace lol::obs

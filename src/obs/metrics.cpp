#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace lol::obs {

namespace {

// Label values may contain anything a client sent; Prometheus label
// escaping covers backslash, double-quote, and newline.
std::string escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.emplace_back(0);
  }
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_value(std::size_t i) const {
  return buckets_[i].load(std::memory_order_relaxed);
}

CounterFamily::CounterFamily(std::string name, std::string help,
                             std::string label_key)
    : name_(std::move(name)), help_(std::move(help)),
      label_key_(std::move(label_key)) {}

Counter& CounterFamily::with(std::string_view label_value) {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& ch : children_) {
    if (ch.label == label_value) return ch.c;
  }
  // Cardinality cap: once full, every new label value shares the
  // "_other" series instead of growing the registry.
  if (children_.size() >= kMaxChildren && label_value != "_other") {
    for (auto& ch : children_) {
      if (ch.label == "_other") return ch.c;
    }
    label_value = "_other";
  }
  children_.emplace_back(std::string(label_value));
  return children_.back().c;
}

std::size_t CounterFamily::n_children() const {
  std::lock_guard<std::mutex> lk(m_);
  return children_.size();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& e : counters_) {
    if (e.name == name) return e.v;
  }
  counters_.emplace_back(std::string(name), std::string(help));
  return counters_.back().v;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& e : gauges_) {
    if (e.name == name) return e.v;
  }
  gauges_.emplace_back(std::string(name), std::string(help));
  return gauges_.back().v;
}

CounterFamily& Registry::counter_family(std::string_view name,
                                        std::string_view help,
                                        std::string_view label_key) {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& f : families_) {
    if (f.name_ == name) return f;
  }
  families_.emplace_back(std::string(name), std::string(help),
                         std::string(label_key));
  return families_.back();
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& e : hists_) {
    if (e.name == name) return e.v;
  }
  hists_.emplace_back(std::string(name), std::string(help),
                      std::move(bounds));
  return hists_.back().v;
}

std::string Registry::expose() const {
  // Render each family to (name, block) then sort for a stable scrape.
  std::vector<std::pair<std::string, std::string>> blocks;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (const auto& e : counters_) {
      std::string b = "# HELP " + e.name + " " + e.help + "\n# TYPE " +
                      e.name + " counter\n" + e.name + " " +
                      std::to_string(e.v.value()) + "\n";
      blocks.emplace_back(e.name, std::move(b));
    }
    for (const auto& e : gauges_) {
      std::string b = "# HELP " + e.name + " " + e.help + "\n# TYPE " +
                      e.name + " gauge\n" + e.name + " " +
                      std::to_string(e.v.value()) + "\n";
      blocks.emplace_back(e.name, std::move(b));
    }
    for (const auto& f : families_) {
      std::string b = "# HELP " + f.name_ + " " + f.help_ + "\n# TYPE " +
                      f.name_ + " counter\n";
      std::lock_guard<std::mutex> flk(f.m_);
      std::vector<const CounterFamily::Child*> kids;
      kids.reserve(f.children_.size());
      for (const auto& ch : f.children_) kids.push_back(&ch);
      std::sort(kids.begin(), kids.end(),
                [](const auto* a, const auto* b2) {
                  return a->label < b2->label;
                });
      for (const auto* ch : kids) {
        b += f.name_ + "{" + f.label_key_ + "=\"" +
             escape_label(ch->label) + "\"} " +
             std::to_string(ch->c.value()) + "\n";
      }
      blocks.emplace_back(f.name_, std::move(b));
    }
    for (const auto& e : hists_) {
      std::string b = "# HELP " + e.name + " " + e.help + "\n# TYPE " +
                      e.name + " histogram\n";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < e.v.bounds().size(); ++i) {
        cum += e.v.bucket_value(i);
        b += e.name + "_bucket{le=\"" + fmt_double(e.v.bounds()[i]) +
             "\"} " + std::to_string(cum) + "\n";
      }
      cum += e.v.bucket_value(e.v.bounds().size());
      b += e.name + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
      b += e.name + "_sum " + fmt_double(e.v.sum()) + "\n";
      b += e.name + "_count " + std::to_string(e.v.count()) + "\n";
      blocks.emplace_back(e.name, std::move(b));
    }
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (auto& [n, b] : blocks) out += b;
  return out;
}

}  // namespace lol::obs

#include "replay/trace.hpp"

#include <charconv>

namespace lol::replay {

namespace {

// Hard caps against hostile traces: parsing must not be a memory or CPU
// amplification vector (the service accepts traces over the wire).
constexpr std::uint64_t kMaxEvents = 1u << 24;  // 16M handoffs (64 MiB)
constexpr int kMaxPes = 4096;                   // matches the runtime cap

/// Strict cursor over the trace text.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  bool lit(std::string_view want) {
    if (s.substr(pos, want.size()) != want) return false;
    pos += want.size();
    return true;
  }

  bool u64(std::uint64_t* out) {
    const char* b = s.data() + pos;
    const char* e = s.data() + s.size();
    auto [p, ec] = std::from_chars(b, e, *out);
    if (ec != std::errc{} || p == b) return false;
    pos += static_cast<std::size_t>(p - b);
    return true;
  }

  bool hex64(std::uint64_t* out) {
    const char* b = s.data() + pos;
    const char* e = s.data() + s.size();
    auto [p, ec] = std::from_chars(b, e, *out, 16);
    if (ec != std::errc{} || p == b) return false;
    pos += static_cast<std::size_t>(p - b);
    return true;
  }

  [[nodiscard]] bool at_end() const { return pos >= s.size(); }
};

std::string hex(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[v & 0xF]);
    v >>= 4;
  } while (v != 0);
  return out;
}

bool fail(std::string* err, std::string why) {
  if (err != nullptr) *err = std::move(why);
  return false;
}

}  // namespace

const char* to_string(ScheduleMode m) {
  switch (m) {
    case ScheduleMode::kNone: return "none";
    case ScheduleMode::kRecord: return "record";
    case ScheduleMode::kPerturb: return "perturb";
    case ScheduleMode::kReplay: return "replay";
  }
  return "none";
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t schedule_fnv(const std::vector<std::uint32_t>& schedule) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint32_t v : schedule) {
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::string Trace::serialize() const {
  std::string out;
  out += "{\"parallol_trace\":1,\"mode\":\"";
  out += perturbed ? "perturb" : "record";
  out += "\",\"n_pes\":" + std::to_string(n_pes);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"perturb_seed\":" + std::to_string(perturb_seed);
  out += ",\"program_hash\":\"" + hex(program_hash) + "\"";
  out += ",\"events\":" + std::to_string(schedule.size()) + "}\n";
  // Run-length encode the handoffs: consecutive picks of the same PE
  // (a PE left running across several choice points) collapse to PxN.
  for (std::size_t i = 0; i < schedule.size();) {
    std::size_t j = i + 1;
    while (j < schedule.size() && schedule[j] == schedule[i]) ++j;
    if (i != 0) out += ',';
    out += std::to_string(schedule[i]);
    if (j - i > 1) out += "x" + std::to_string(j - i);
    i = j;
  }
  out += '\n';
  out += "{\"rng_draws\":[";
  for (std::size_t i = 0; i < rng_draws.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(rng_draws[i]);
  }
  out += "],\"fnv\":\"" + hex(schedule_fnv(schedule)) + "\"}\n";
  return out;
}

std::optional<Trace> Trace::parse(std::string_view text, std::string* err) {
  auto bad = [&](std::string why) -> std::optional<Trace> {
    fail(err, "bad schedule trace: " + std::move(why));
    return std::nullopt;
  };

  // Split into exactly three lines (a trailing newline is optional).
  std::size_t nl1 = text.find('\n');
  if (nl1 == std::string_view::npos) return bad("missing header line");
  std::size_t nl2 = text.find('\n', nl1 + 1);
  if (nl2 == std::string_view::npos) return bad("truncated: no schedule line");
  std::size_t nl3 = text.find('\n', nl2 + 1);
  std::string_view header = text.substr(0, nl1);
  std::string_view sched = text.substr(nl1 + 1, nl2 - nl1 - 1);
  std::string_view footer =
      nl3 == std::string_view::npos ? text.substr(nl2 + 1)
                                    : text.substr(nl2 + 1, nl3 - nl2 - 1);
  if (footer.empty()) return bad("truncated: no footer line");
  if (nl3 != std::string_view::npos &&
      text.find_first_not_of(" \n", nl3) != std::string_view::npos) {
    return bad("trailing garbage after footer");
  }

  Trace t;
  // Header — canonical field order only (this is serialize()'s inverse,
  // not a JSON parser).
  {
    Cursor c{header};
    std::uint64_t v = 0;
    if (!c.lit("{\"parallol_trace\":") || !c.u64(&v)) {
      return bad("not a parallol trace header");
    }
    if (v != 1) return bad("unsupported trace version " + std::to_string(v));
    if (!c.lit(",\"mode\":\"")) return bad("header: missing mode");
    if (c.lit("record\"")) {
      t.perturbed = false;
    } else if (c.lit("perturb\"")) {
      t.perturbed = true;
    } else {
      return bad("header: unknown mode");
    }
    if (!c.lit(",\"n_pes\":") || !c.u64(&v)) return bad("header: bad n_pes");
    if (v < 1 || v > static_cast<std::uint64_t>(kMaxPes)) {
      return bad("header: n_pes " + std::to_string(v) + " out of range");
    }
    t.n_pes = static_cast<int>(v);
    if (!c.lit(",\"seed\":") || !c.u64(&t.seed)) return bad("header: bad seed");
    if (!c.lit(",\"perturb_seed\":") || !c.u64(&t.perturb_seed)) {
      return bad("header: bad perturb_seed");
    }
    if (!c.lit(",\"program_hash\":\"") || !c.hex64(&t.program_hash) ||
        !c.lit("\"")) {
      return bad("header: bad program_hash");
    }
    if (!c.lit(",\"events\":") || !c.u64(&v)) return bad("header: bad events");
    if (v > kMaxEvents) {
      return bad("header: " + std::to_string(v) + " events exceeds the " +
                 std::to_string(kMaxEvents) + " cap");
    }
    if (!c.lit("}") || !c.at_end()) return bad("header: trailing garbage");
    t.schedule.reserve(static_cast<std::size_t>(v));

    // Schedule line: comma-separated `P` or `PxN` runs.
    Cursor sc{sched};
    while (!sc.at_end()) {
      std::uint64_t pe = 0;
      if (!sc.u64(&pe)) return bad("schedule: expected a PE id");
      if (pe >= static_cast<std::uint64_t>(t.n_pes)) {
        return bad("schedule: PE " + std::to_string(pe) +
                   " out of range for n_pes=" + std::to_string(t.n_pes));
      }
      std::uint64_t count = 1;
      if (sc.lit("x")) {
        if (!sc.u64(&count) || count == 0) return bad("schedule: bad run length");
      }
      if (t.schedule.size() + count > v) {
        return bad("schedule: more events than the header declares");
      }
      t.schedule.insert(t.schedule.end(), static_cast<std::size_t>(count),
                        static_cast<std::uint32_t>(pe));
      if (!sc.at_end() && !sc.lit(",")) return bad("schedule: expected ','");
    }
    if (t.schedule.size() != v) {
      return bad("schedule: " + std::to_string(t.schedule.size()) +
                 " events, header declares " + std::to_string(v));
    }
  }

  // Footer.
  {
    Cursor c{footer};
    if (!c.lit("{\"rng_draws\":[")) return bad("footer: missing rng_draws");
    if (!c.lit("]")) {
      for (;;) {
        std::uint64_t d = 0;
        if (!c.u64(&d)) return bad("footer: bad rng_draws entry");
        t.rng_draws.push_back(d);
        if (c.lit("]")) break;
        if (!c.lit(",")) return bad("footer: expected ','");
        if (t.rng_draws.size() > static_cast<std::size_t>(kMaxPes)) {
          return bad("footer: too many rng_draws entries");
        }
      }
    }
    if (t.rng_draws.size() != static_cast<std::size_t>(t.n_pes)) {
      return bad("footer: rng_draws has " + std::to_string(t.rng_draws.size()) +
                 " entries for n_pes=" + std::to_string(t.n_pes));
    }
    std::uint64_t fnv = 0;
    if (!c.lit(",\"fnv\":\"") || !c.hex64(&fnv) || !c.lit("\"}") ||
        !c.at_end()) {
      return bad("footer: bad checksum field");
    }
    if (fnv != schedule_fnv(t.schedule)) {
      return bad("footer: schedule checksum mismatch (corrupt trace?)");
    }
  }
  return t;
}

bool Trace::matches(int n_pes_now, std::uint64_t seed_now,
                    std::uint64_t program_hash_now, std::string* err) const {
  if (n_pes_now != n_pes) {
    return fail(err, "trace was recorded with n_pes=" + std::to_string(n_pes) +
                         ", this run has n_pes=" + std::to_string(n_pes_now));
  }
  if (seed_now != seed) {
    return fail(err, "trace was recorded with seed=" + std::to_string(seed) +
                         ", this run has seed=" + std::to_string(seed_now));
  }
  if (program_hash != 0 && program_hash_now != 0 &&
      program_hash != program_hash_now) {
    return fail(err, "trace was recorded from a different program "
                     "(program_hash mismatch)");
  }
  return true;
}

}  // namespace lol::replay

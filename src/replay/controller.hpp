// The ScheduleController: token-serialized deterministic scheduling.
//
// Installed into shmem::Config::schedule for one launch, the controller
// serializes the gang on a single execution token. Every choice point
// the runtime reports (PE start, barrier arrival, lock attempt, put/get,
// GIMMEH, WHATEVR draw) becomes a token handoff, and the handoff target
// is chosen by mode:
//
//   kRecord  — deterministic round-robin over runnable PEs
//   kPerturb — seeded SplitMix64 pick over runnable PEs (the schedule
//              shaker: different seeds exercise different interleavings,
//              and because the pick sequence is the only nondeterminism
//              left, a given seed is itself reproducible)
//   kReplay  — the next entry of a recorded Trace, enforced exactly;
//              any disagreement (the trace schedules a PE that is done
//              or parked, or runs out early) is a detected divergence,
//              not a hang
//
// Parked PEs (barrier losers, lock waiters) leave the runnable set until
// the runtime's notify path (lock release, barrier fire, abort) readies
// them again, so a crossing costs O(n) handoffs rather than O(n^2)
// spins. If no PE is runnable and the gang is not done, the program has
// genuinely deadlocked (e.g. every PE waits on a lock whose holder
// exited) — the controller aborts the launch with a diagnosis instead of
// wedging until the service deadline.
//
// One controller drives exactly one launch; build a fresh one per run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "replay/trace.hpp"
#include "shmem/schedule_hook.hpp"
#include "support/rng.hpp"

namespace lol::replay {

class ScheduleController final : public shmem::ScheduleHook {
 public:
  /// Record (round-robin) or perturb (seeded) scheduling for `n_pes`.
  ScheduleController(ScheduleMode mode, int n_pes, std::uint64_t perturb_seed);

  /// Replay scheduling: enforce `trace` (which must outlive the run).
  explicit ScheduleController(std::shared_ptr<const Trace> trace);

  void pe_start(shmem::Runtime& rt, int pe) override;
  void pe_exit(shmem::Runtime& rt, int pe) override;
  void yield(shmem::Runtime& rt, int pe) override;
  void blocked(shmem::Runtime& rt, int pe) override;
  void on_notify() override;

  /// The handoff sequence so far (record/perturb modes). Only read after
  /// the launch joined.
  [[nodiscard]] const std::vector<std::uint32_t>& recorded() const {
    return sched_;
  }
  /// Replay mode: how many trace events were consumed.
  [[nodiscard]] std::size_t events_consumed() const { return pos_; }
  /// Non-empty when the controller itself failed the run: a replay
  /// divergence or a detected schedule deadlock. (Usually the failure is
  /// also thrown into the PE that hit it; this covers the pe_exit path,
  /// which must not throw.) Only read after the launch joined.
  [[nodiscard]] const std::string& failure() const { return failure_; }
  /// True when the failure was a replay divergence (vs a deadlock).
  [[nodiscard]] bool diverged() const { return diverged_; }

 private:
  enum class St : unsigned char { kReady, kRunning, kParked, kDone };

  /// Common body of yield()/blocked(): release the token, pick the next
  /// PE, wake it, wait until scheduled again.
  void reschedule(shmem::Runtime& rt, int pe, bool park);
  /// Picks the next token holder. Returns a failure message ("" = ok).
  /// `rt` may be null during the constructor's initial pick.
  std::string pick_locked(shmem::Runtime* rt);
  /// Blocks `pe` until it holds the token (or the run aborted/released).
  void wait_turn(shmem::Runtime& rt, int pe);

  const ScheduleMode mode_;
  const int n_pes_;
  std::shared_ptr<const Trace> trace_;  // kReplay only
  support::SplitMix64 rng_;             // kPerturb only

  std::mutex m_;
  std::vector<St> st_;
  int current_ = -1;  // token holder; -1 = none (all done or released)
  int done_ = 0;
  std::vector<std::uint32_t> sched_;  // recorded handoffs
  std::size_t pos_ = 0;               // replay cursor
  std::string failure_;
  bool diverged_ = false;
  // Set once the run aborted (or the controller failed it): scheduling
  // is released and every waiter falls through to its own abort check.
  std::atomic<bool> released_{false};
};

}  // namespace lol::replay

#include "replay/fault.hpp"

#include <charconv>

#include "support/error.hpp"

namespace lol::replay {

namespace {

bool fail(std::string* err, std::string why) {
  if (err != nullptr) *err = "bad fault spec: " + std::move(why);
  return false;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  const char* b = s.data();
  const char* e = s.data() + s.size();
  auto [p, ec] = std::from_chars(b, e, *out);
  return ec == std::errc{} && p == e && p != b;
}

bool parse_f64(std::string_view s, double* out) {
  const char* b = s.data();
  const char* e = s.data() + s.size();
  auto [p, ec] = std::from_chars(b, e, *out);
  return ec == std::errc{} && p == e && p != b;
}

/// The latency spike: every modeled cost scaled by a constant factor.
class SpikeModel final : public noc::MachineModel {
 public:
  SpikeModel(noc::ModelPtr inner, double factor)
      : inner_(std::move(inner)), f_(factor) {}

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+spike(x" + std::to_string(f_) + ")";
  }
  [[nodiscard]] double put_ns(int src, int dst,
                              std::size_t bytes) const override {
    return f_ * inner_->put_ns(src, dst, bytes);
  }
  [[nodiscard]] double get_ns(int src, int dst,
                              std::size_t bytes) const override {
    return f_ * inner_->get_ns(src, dst, bytes);
  }
  [[nodiscard]] double local_ns(std::size_t bytes) const override {
    return f_ * inner_->local_ns(bytes);
  }
  [[nodiscard]] double barrier_ns(int n_pes) const override {
    return f_ * inner_->barrier_ns(n_pes);
  }
  [[nodiscard]] double tree_barrier_ns(int n_pes, int radix) const override {
    return f_ * inner_->tree_barrier_ns(n_pes, radix);
  }
  [[nodiscard]] double lock_ns(int src, int home) const override {
    return f_ * inner_->lock_ns(src, home);
  }

 private:
  noc::ModelPtr inner_;
  double f_;
};

}  // namespace

bool parse_fault_spec(std::string_view spec, FaultPlan* out,
                      std::string* err) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string_view clause = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (clause.empty()) return fail(err, "empty clause");
    if (clause.substr(0, 3) == "pe=") {
      std::size_t at = clause.find("@step=");
      if (at == std::string_view::npos) {
        return fail(err, "kill clause must be pe=K@step=S");
      }
      std::uint64_t pe = 0;
      std::uint64_t step = 0;
      if (!parse_u64(clause.substr(3, at - 3), &pe) || pe >= 4096) {
        return fail(err, "bad PE id in '" + std::string(clause) + "'");
      }
      if (!parse_u64(clause.substr(at + 6), &step) || step == 0) {
        return fail(err, "bad step (must be >= 1) in '" + std::string(clause) +
                             "'");
      }
      plan.kill_pe = static_cast<int>(pe);
      plan.kill_step = step;
    } else if (clause.substr(0, 4) == "noc=") {
      double f = 0.0;
      if (!parse_f64(clause.substr(4), &f) || !(f > 1.0) || !(f < 1e9)) {
        return fail(err, "noc factor must be in (1, 1e9), got '" +
                             std::string(clause.substr(4)) + "'");
      }
      plan.noc_factor = f;
    } else if (clause.substr(0, 6) == "input=") {
      std::uint64_t n = 0;
      if (!parse_u64(clause.substr(6), &n) || n > (1ull << 40)) {
        return fail(err, "bad read count in '" + std::string(clause) + "'");
      }
      plan.input_fail_after = static_cast<std::int64_t>(n);
    } else {
      return fail(err, "unknown clause '" + std::string(clause) +
                           "' (want pe=K@step=S, noc=F or input=N)");
    }
  }
  if (out != nullptr) *out = plan;
  return true;
}

std::string to_spec(const FaultPlan& plan) {
  std::string out;
  auto add = [&](std::string clause) {
    if (!out.empty()) out += ',';
    out += std::move(clause);
  };
  if (plan.kill()) {
    add("pe=" + std::to_string(plan.kill_pe) +
        "@step=" + std::to_string(plan.kill_step));
  }
  if (plan.noc_spike()) {
    // Round-trippable plain form (to_string pads zeros; fine to parse).
    add("noc=" + std::to_string(plan.noc_factor));
  }
  if (plan.input_fault()) {
    add("input=" + std::to_string(plan.input_fail_after));
  }
  return out;
}

noc::ModelPtr make_spike_model(noc::ModelPtr inner, double factor) {
  return std::make_shared<SpikeModel>(std::move(inner), factor);
}

void FaultyInput::check_alive() {
  // fetch_sub past zero marks the source dead for every later reader
  // too (the counter stays negative).
  if (allowed_.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
    throw support::RuntimeError(
        "GIMMEH input source failed (fault injection: source died "
        "mid-stream)");
  }
}

std::optional<std::string> FaultyInput::read_line(int pe) {
  check_alive();
  return inner_->read_line(pe);
}

rt::TryRead FaultyInput::try_read_line(int pe, std::chrono::milliseconds wait) {
  check_alive();
  rt::TryRead r = inner_->try_read_line(pe, wait);
  if (r.timed_out) {
    // The poll consumed no line; restore the budget so only successful
    // reads count against it.
    allowed_.fetch_add(1, std::memory_order_acq_rel);
  }
  return r;
}

}  // namespace lol::replay

// Schedule traces: the serialized form of one recorded SPMD schedule.
//
// Under a ScheduleController (replay/controller.hpp) the runtime
// serializes the gang on an execution token; the token-handoff sequence
// fully determines the execution. A Trace is that sequence plus the
// header needed to key it — (program_hash, n_pes, seed) — and a footer
// of per-PE WHATEVR/WHATEVAR draw counts used to detect divergence when
// the trace is replayed against a different program than it was
// recorded from.
//
// Wire format: three NDJSON-ish lines, text so traces diff cleanly and
// ship inline over the lolserve wire protocol:
//
//   {"parallol_trace":1,"mode":"perturb","n_pes":4,"seed":20170529,
//    "perturb_seed":7,"program_hash":"1a2b...","events":123}
//   0x41,1,2x7,3,...                    <- handoffs, run-length encoded
//   {"rng_draws":[9,9,9,9],"fnv":"cbf29ce484222325"}
//
// The parser is strict: anything that does not round-trip through
// serialize() is rejected with a diagnostic, never half-loaded
// (hostile/truncated traces are a tested path).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lol::replay {

/// How the engine drives scheduling for one run.
enum class ScheduleMode {
  kNone,     // free-running (the default; no serialization)
  kRecord,   // serialize with a deterministic round-robin pick; record
  kPerturb,  // serialize with a seeded random pick; record
  kReplay,   // serialize and enforce a previously recorded trace
};

[[nodiscard]] const char* to_string(ScheduleMode m);

/// One recorded schedule. `schedule[i]` is the PE given the execution
/// token at handoff i; the first entry is the first PE to run.
struct Trace {
  int n_pes = 0;
  std::uint64_t seed = 0;          // RunConfig::seed it was recorded under
  std::uint64_t perturb_seed = 0;  // 0 when recorded round-robin
  std::uint64_t program_hash = 0;  // fnv1a of the source; 0 = unknown
  bool perturbed = false;          // header "mode" (informational)
  std::vector<std::uint32_t> schedule;
  std::vector<std::uint64_t> rng_draws;  // per-PE WHATEVR/WHATEVAR draws

  /// Canonical three-line text form (ends with '\n').
  [[nodiscard]] std::string serialize() const;

  /// Strict inverse of serialize(). nullopt + `*err` on any malformed,
  /// truncated or inconsistent input (bad RLE, event-count mismatch,
  /// checksum mismatch, out-of-range PE ids, oversized traces).
  static std::optional<Trace> parse(std::string_view text, std::string* err);

  /// Checks that this trace can drive a run with the given shape.
  /// False + `*err` on n_pes/seed mismatch, or on program-hash mismatch
  /// when both sides know their hash.
  [[nodiscard]] bool matches(int n_pes_now, std::uint64_t seed_now,
                             std::uint64_t program_hash_now,
                             std::string* err) const;
};

/// FNV-1a over arbitrary bytes — used for program hashing (trace keying)
/// and for the trace's own schedule checksum.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

/// FNV-1a folded over the handoff sequence (little-endian u32 bytes).
[[nodiscard]] std::uint64_t schedule_fnv(
    const std::vector<std::uint32_t>& schedule);

}  // namespace lol::replay

#include "replay/controller.hpp"

#include "shmem/runtime.hpp"
#include "support/error.hpp"

namespace lol::replay {

using support::RuntimeError;

ScheduleController::ScheduleController(ScheduleMode mode, int n_pes,
                                       std::uint64_t perturb_seed)
    : mode_(mode), n_pes_(n_pes), rng_(perturb_seed * 0x9E3779B97F4A7C15ULL ^
                                       0xA0761D6478BD642FULL) {
  st_.assign(static_cast<std::size_t>(n_pes_), St::kReady);
  // Initial pick — who runs first. Every PE is ready, so it cannot fail.
  std::lock_guard<std::mutex> g(m_);
  (void)pick_locked(nullptr);
}

ScheduleController::ScheduleController(std::shared_ptr<const Trace> trace)
    : mode_(ScheduleMode::kReplay),
      n_pes_(trace->n_pes),
      trace_(std::move(trace)),
      rng_(0) {
  st_.assign(static_cast<std::size_t>(n_pes_), St::kReady);
  std::lock_guard<std::mutex> g(m_);
  failure_ = pick_locked(nullptr);
  if (!failure_.empty()) {
    // Empty trace against a live gang: caught at the first pe_start.
    diverged_ = true;
    released_.store(true, std::memory_order_release);
  }
}

std::string ScheduleController::pick_locked(shmem::Runtime* rt) {
  if (rt != nullptr && rt->aborted()) {
    // The run is dying; stop enforcing and let every waiter observe the
    // abort through its own check.
    released_.store(true, std::memory_order_release);
    current_ = -1;
    return "";
  }
  if (done_ == n_pes_) {
    current_ = -1;
    return "";
  }
  if (mode_ == ScheduleMode::kReplay) {
    if (pos_ >= trace_->schedule.size()) {
      return "replay diverged: trace exhausted after " +
             std::to_string(pos_) + " events with " +
             std::to_string(n_pes_ - done_) + " PE(s) still live";
    }
    const std::uint32_t next = trace_->schedule[pos_];
    const char* why = nullptr;
    if (next >= static_cast<std::uint32_t>(n_pes_)) {
      why = "out of range";
    } else if (st_[next] == St::kDone) {
      why = "already done";
    } else if (st_[next] == St::kParked) {
      why = "parked (was runnable when recorded)";
    }
    if (why != nullptr) {
      return "replay diverged at event " + std::to_string(pos_) +
             ": trace schedules PE " + std::to_string(next) + " but it is " +
             why;
    }
    ++pos_;
    current_ = static_cast<int>(next);
    return "";
  }
  // Record / perturb: choose among ready PEs. Round-robin scans forward
  // from the current holder; perturb picks uniformly (seeded).
  int next = -1;
  if (mode_ == ScheduleMode::kPerturb) {
    int n_ready = 0;
    for (St s : st_) n_ready += s == St::kReady || s == St::kRunning ? 1 : 0;
    if (n_ready > 0) {
      int k = static_cast<int>(rng_.next() % static_cast<std::uint64_t>(n_ready));
      for (int i = 0; i < n_pes_; ++i) {
        const St s = st_[static_cast<std::size_t>(i)];
        if ((s == St::kReady || s == St::kRunning) && k-- == 0) {
          next = i;
          break;
        }
      }
    }
  } else {
    const int base = current_ >= 0 ? current_ : n_pes_ - 1;
    for (int d = 1; d <= n_pes_; ++d) {
      const int i = (base + d) % n_pes_;
      const St s = st_[static_cast<std::size_t>(i)];
      if (s == St::kReady || s == St::kRunning) {
        next = i;
        break;
      }
    }
  }
  if (next < 0) {
    return "schedule deadlock: every live PE is blocked (a lock held by an "
           "exited PE, or cyclic barrier/lock waits) — " +
           std::to_string(n_pes_ - done_) + " PE(s) wedged";
  }
  sched_.push_back(static_cast<std::uint32_t>(next));
  current_ = next;
  return "";
}

void ScheduleController::wait_turn(shmem::Runtime& rt, int pe) {
  for (;;) {
    const std::uint64_t e = rt.prepare_wait();
    if (released_.load(std::memory_order_acquire)) return;
    {
      std::lock_guard<std::mutex> g(m_);
      if (current_ == pe) {
        st_[static_cast<std::size_t>(pe)] = St::kRunning;
        return;
      }
    }
    if (rt.aborted()) {
      throw RuntimeError("SPMD aborted while awaiting its schedule turn");
    }
    rt.wait(pe, e);
  }
}

void ScheduleController::reschedule(shmem::Runtime& rt, int pe, bool park) {
  if (released_.load(std::memory_order_acquire)) return;
  std::string fail;
  {
    std::lock_guard<std::mutex> g(m_);
    st_[static_cast<std::size_t>(pe)] = park ? St::kParked : St::kReady;
    fail = pick_locked(&rt);
    if (!fail.empty()) {
      failure_ = fail;
      diverged_ = mode_ == ScheduleMode::kReplay;
      released_.store(true, std::memory_order_release);
    }
  }
  // Wake token waiters outside the controller mutex (abort() re-enters
  // on_notify, which locks it).
  rt.wake_waiters();
  if (!fail.empty()) {
    rt.abort();
    throw RuntimeError(fail);
  }
  wait_turn(rt, pe);
}

void ScheduleController::pe_start(shmem::Runtime& rt, int pe) {
  // The PE has been ready (and schedulable) since construction; it just
  // was not running yet. Block until the schedule reaches it.
  wait_turn(rt, pe);
}

void ScheduleController::pe_exit(shmem::Runtime& rt, int pe) {
  if (released_.load(std::memory_order_acquire)) return;
  std::string fail;
  {
    std::lock_guard<std::mutex> g(m_);
    if (st_[static_cast<std::size_t>(pe)] == St::kDone) return;
    st_[static_cast<std::size_t>(pe)] = St::kDone;
    ++done_;
    if (current_ == pe) {
      fail = pick_locked(&rt);
      if (!fail.empty()) {
        failure_ = fail;
        diverged_ = mode_ == ScheduleMode::kReplay;
        released_.store(true, std::memory_order_release);
      }
    }
  }
  rt.wake_waiters();
  // pe_exit must not throw (it runs outside the PE body's try block);
  // the failure is stashed for the engine and the launch is aborted so
  // the wedged peers die with "SPMD aborted" instead of hanging.
  if (!fail.empty()) rt.abort();
}

void ScheduleController::yield(shmem::Runtime& rt, int pe) {
  reschedule(rt, pe, /*park=*/false);
}

void ScheduleController::blocked(shmem::Runtime& rt, int pe) {
  reschedule(rt, pe, /*park=*/true);
}

void ScheduleController::on_notify() {
  std::lock_guard<std::mutex> g(m_);
  for (St& s : st_) {
    if (s == St::kParked) s = St::kReady;
  }
}

}  // namespace lol::replay

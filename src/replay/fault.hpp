// Fault injection: defined, reproducible failures for an SPMD run.
//
// Three fault classes, matching what the service must degrade under:
//
//   * kill PE k at step s      — the PE dies with PeKilledError at its
//     s-th retired step; peers blocked in barriers/locks are woken by
//     the abort and the run surfaces RunResult::pe_failed (the service
//     maps it to JobStatus::kPeFailed) instead of wedging
//   * NoC latency spike        — wraps the configured --machine model,
//     scaling every remote-operation cost by a factor; the run succeeds
//     with proportionally inflated simulated time (a congested fabric)
//   * GIMMEH source failure    — the input source dies after N
//     successful reads; the next read throws a RuntimeError naming the
//     fault, so "input infrastructure failed mid-run" is
//     distinguishable from ordinary end-of-input (which is just EOF)
//
// The textual spec grammar (shared by lolrun --fault, lolserve and the
// wire protocol's "fault" field) is comma-separated clauses:
//
//   pe=K@step=S    kill PE K at its S-th step
//   noc=F          multiply modeled remote-op costs by F (requires a
//                  machine model)
//   input=N        fail the GIMMEH source after N successful reads
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "noc/model.hpp"
#include "rt/io.hpp"

namespace lol::replay {

/// Which faults one run injects. Default-constructed = no faults.
struct FaultPlan {
  int kill_pe = -1;               // PE to kill; < 0 = no kill fault
  std::uint64_t kill_step = 1;    // 1-based retired-step index of the kill
  double noc_factor = 0.0;        // > 1 = scale modeled remote-op costs
  std::int64_t input_fail_after = -1;  // >= 0 = reads allowed before failure

  [[nodiscard]] bool kill() const { return kill_pe >= 0; }
  [[nodiscard]] bool noc_spike() const { return noc_factor > 1.0; }
  [[nodiscard]] bool input_fault() const { return input_fail_after >= 0; }
  [[nodiscard]] bool any() const {
    return kill() || noc_spike() || input_fault();
  }
};

/// Parses the spec grammar above. False + `*err` on malformed input.
bool parse_fault_spec(std::string_view spec, FaultPlan* out, std::string* err);

/// Canonical spec text for `plan` ("" when no faults) — the wire
/// round-trip inverse of parse_fault_spec.
[[nodiscard]] std::string to_spec(const FaultPlan& plan);

/// Wraps a machine model, scaling every cost by `factor` (the latency
/// spike: same topology, congested links).
[[nodiscard]] noc::ModelPtr make_spike_model(noc::ModelPtr inner,
                                             double factor);

/// Wraps an input source that dies after `fail_after` successful reads:
/// the next read throws support::RuntimeError naming the fault. The
/// counter is global across PEs (the shared source fails, not one PE's
/// view of it).
class FaultyInput final : public rt::InputSource {
 public:
  FaultyInput(rt::InputSource& inner, std::int64_t fail_after)
      : inner_(&inner), allowed_(fail_after) {}

  std::optional<std::string> read_line(int pe) override;
  rt::TryRead try_read_line(int pe, std::chrono::milliseconds wait) override;

 private:
  void check_alive();
  rt::InputSource* inner_;
  std::atomic<std::int64_t> allowed_;
};

}  // namespace lol::replay

#include "rt/ops.hpp"

#include <cmath>

#include "support/string_util.hpp"

namespace lol::rt {

using support::RuntimeError;

namespace {

/// A numeric operand after LOLCODE coercion.
struct Num {
  bool is_float = false;
  std::int64_t i = 0;
  double f = 0.0;

  [[nodiscard]] double as_f() const {
    return is_float ? f : static_cast<double>(i);
  }
};

Num to_num(const Value& v, const char* op_name) {
  switch (v.type()) {
    case ast::TypeKind::kNumbr:
      return {false, v.numbr_raw(), 0.0};
    case ast::TypeKind::kNumbar:
      return {true, 0, v.numbar_raw()};
    case ast::TypeKind::kYarn: {
      const std::string& s = v.yarn_raw();
      if (s.find('.') != std::string::npos) {
        auto f = support::parse_numbar(s);
        if (f) return {true, 0, *f};
      } else {
        auto i = support::parse_numbr(s);
        if (i) return {false, *i, 0.0};
      }
      throw RuntimeError(std::string(op_name) + ": YARN \"" + s +
                         "\" is not numeric");
    }
    case ast::TypeKind::kTroof:
      throw RuntimeError(std::string(op_name) +
                         ": TROOF operands are not allowed in math");
    case ast::TypeKind::kNoob:
      throw RuntimeError(std::string(op_name) +
                         ": NOOB operands are not allowed in math");
  }
  return {};
}

Value arith(ast::BinOp op, const Value& va, const Value& vb) {
  const char* name = ast::bin_op_name(op).data();
  Num a = to_num(va, name);
  Num b = to_num(vb, name);
  bool flt = a.is_float || b.is_float;
  if (flt) {
    double x = a.as_f();
    double y = b.as_f();
    switch (op) {
      case ast::BinOp::kSum:
        return Value::numbar(x + y);
      case ast::BinOp::kDiff:
        return Value::numbar(x - y);
      case ast::BinOp::kProdukt:
        return Value::numbar(x * y);
      case ast::BinOp::kQuoshunt:
        if (y == 0.0) throw RuntimeError("QUOSHUNT OF: division by zero");
        return Value::numbar(x / y);
      case ast::BinOp::kMod:
        if (y == 0.0) throw RuntimeError("MOD OF: modulo by zero");
        return Value::numbar(std::fmod(x, y));
      case ast::BinOp::kBiggr:
        return Value::numbar(x > y ? x : y);
      case ast::BinOp::kSmallr:
        return Value::numbar(x < y ? x : y);
      case ast::BinOp::kBigger:
        return Value::troof(x > y);
      case ast::BinOp::kSmallrCmp:
        return Value::troof(x < y);
      default:
        break;
    }
  } else {
    std::int64_t x = a.i;
    std::int64_t y = b.i;
    switch (op) {
      case ast::BinOp::kSum:
        return Value::numbr(x + y);
      case ast::BinOp::kDiff:
        return Value::numbr(x - y);
      case ast::BinOp::kProdukt:
        return Value::numbr(x * y);
      case ast::BinOp::kQuoshunt:
        if (y == 0) throw RuntimeError("QUOSHUNT OF: division by zero");
        return Value::numbr(x / y);
      case ast::BinOp::kMod:
        if (y == 0) throw RuntimeError("MOD OF: modulo by zero");
        return Value::numbr(x % y);
      case ast::BinOp::kBiggr:
        return Value::numbr(x > y ? x : y);
      case ast::BinOp::kSmallr:
        return Value::numbr(x < y ? x : y);
      case ast::BinOp::kBigger:
        return Value::troof(x > y);
      case ast::BinOp::kSmallrCmp:
        return Value::troof(x < y);
      default:
        break;
    }
  }
  throw RuntimeError("internal: unhandled arithmetic operator");
}

}  // namespace

Value op_binary(ast::BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case ast::BinOp::kSum:
    case ast::BinOp::kDiff:
    case ast::BinOp::kProdukt:
    case ast::BinOp::kQuoshunt:
    case ast::BinOp::kMod:
    case ast::BinOp::kBiggr:
    case ast::BinOp::kSmallr:
    case ast::BinOp::kBigger:
    case ast::BinOp::kSmallrCmp:
      return arith(op, a, b);
    case ast::BinOp::kBothSaem:
      return Value::troof(Value::saem(a, b));
    case ast::BinOp::kDiffrint:
      return Value::troof(!Value::saem(a, b));
    case ast::BinOp::kBothOf:
      return Value::troof(a.to_troof() && b.to_troof());
    case ast::BinOp::kEitherOf:
      return Value::troof(a.to_troof() || b.to_troof());
    case ast::BinOp::kWonOf:
      return Value::troof(a.to_troof() != b.to_troof());
  }
  throw RuntimeError("internal: unhandled binary operator");
}

Value op_unary(ast::UnOp op, const Value& v) {
  switch (op) {
    case ast::UnOp::kNot:
      return Value::troof(!v.to_troof());
    case ast::UnOp::kSquar: {
      Num n = to_num(v, "SQUAR OF");
      if (n.is_float) return Value::numbar(n.f * n.f);
      return Value::numbr(n.i * n.i);
    }
    case ast::UnOp::kUnsquar: {
      Num n = to_num(v, "UNSQUAR OF");
      double x = n.as_f();
      if (x < 0.0) {
        throw RuntimeError("UNSQUAR OF: negative operand has no NUMBAR root");
      }
      return Value::numbar(std::sqrt(x));
    }
    case ast::UnOp::kFlip: {
      Num n = to_num(v, "FLIP OF");
      double x = n.as_f();
      if (x == 0.0) throw RuntimeError("FLIP OF: reciprocal of zero");
      return Value::numbar(1.0 / x);
    }
  }
  throw RuntimeError("internal: unhandled unary operator");
}

Value op_nary(ast::NaryOp op, std::span<const Value> operands) {
  switch (op) {
    case ast::NaryOp::kAllOf: {
      for (const Value& v : operands) {
        if (!v.to_troof()) return Value::troof(false);
      }
      return Value::troof(true);
    }
    case ast::NaryOp::kAnyOf: {
      for (const Value& v : operands) {
        if (v.to_troof()) return Value::troof(true);
      }
      return Value::troof(false);
    }
    case ast::NaryOp::kSmoosh: {
      std::string out;
      for (const Value& v : operands) out += v.to_yarn();
      return Value::yarn(std::move(out));
    }
  }
  throw RuntimeError("internal: unhandled variadic operator");
}

}  // namespace lol::rt

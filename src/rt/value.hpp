// The LOLCODE value model: NOOB, TROOF, NUMBR, NUMBAR, YARN, with the
// LOLCODE-1.2 cast matrix. Shared by the interpreter, the VM, and the
// C-codegen runtime so all backends agree on semantics by construction.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "ast/types.hpp"
#include "support/error.hpp"

namespace lol::rt {

/// A dynamically typed LOLCODE value.
///
/// Cast rules follow the LOLCODE-1.2 spec:
///   * NOOB implicitly casts only to TROOF (FAIL); implicit casts to any
///     other type are errors. Explicit casts (MAEK) yield zero values.
///   * TROOF: WIN <-> 1 / "WIN"; FAIL <-> 0 / "" is FAIL, etc.
///   * NUMBAR -> YARN truncates to two decimal places ("3.14").
///   * YARN -> NUMBR/NUMBAR parse the string and error when malformed.
class Value {
 public:
  /// Constructs NOOB.
  Value() = default;

  static Value noob() { return Value(); }
  static Value troof(bool b) { return Value(Payload(b)); }
  static Value numbr(std::int64_t v) { return Value(Payload(v)); }
  static Value numbar(double v) { return Value(Payload(v)); }
  static Value yarn(std::string s) { return Value(Payload(std::move(s))); }

  /// Zero value of a type: NOOB, FAIL, 0, 0.0 or "".
  static Value zero_of(ast::TypeKind t);

  [[nodiscard]] ast::TypeKind type() const;

  [[nodiscard]] bool is_noob() const {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_troof() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_numbr() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_numbar() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_yarn() const {
    return std::holds_alternative<std::string>(v_);
  }

  /// Mutable payload pointers, non-null exactly when the value holds
  /// that type. The JIT's inline arithmetic updates stack slots through
  /// these in place; any assignment to the Value invalidates them.
  [[nodiscard]] std::int64_t* numbr_ptr() {
    return std::get_if<std::int64_t>(&v_);
  }
  [[nodiscard]] double* numbar_ptr() { return std::get_if<double>(&v_); }

  /// Unchecked accessors (call only after the matching is_*()).
  [[nodiscard]] bool troof_raw() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t numbr_raw() const {
    return std::get<std::int64_t>(v_);
  }
  [[nodiscard]] double numbar_raw() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& yarn_raw() const {
    return std::get<std::string>(v_);
  }

  // -- casts -----------------------------------------------------------------

  /// Truthiness (implicit cast to TROOF; always succeeds).
  [[nodiscard]] bool to_troof() const;

  /// Cast to NUMBR. `explicit_cast` selects MAEK semantics (NOOB -> 0);
  /// implicit NOOB conversion throws. Malformed YARNs always throw.
  [[nodiscard]] std::int64_t to_numbr(bool explicit_cast = false) const;

  /// Cast to NUMBAR (same conventions as to_numbr).
  [[nodiscard]] double to_numbar(bool explicit_cast = false) const;

  /// Cast to YARN. Implicit NOOB conversion throws; explicit yields "".
  [[nodiscard]] std::string to_yarn(bool explicit_cast = false) const;

  /// Full cast to an arbitrary type (implements MAEK / IS NOW A).
  [[nodiscard]] Value cast_to(ast::TypeKind t, bool explicit_cast) const;

  /// BOTH SAEM equality: same type => value equality; NUMBR vs NUMBAR
  /// compare numerically; any other cross-type comparison is FAIL.
  [[nodiscard]] static bool saem(const Value& a, const Value& b);

  /// Debug rendering, e.g. `NUMBR:42`, used in error messages and tests.
  [[nodiscard]] std::string debug_str() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }

 private:
  using Payload =
      std::variant<std::monostate, bool, std::int64_t, double, std::string>;
  explicit Value(Payload p) : v_(std::move(p)) {}
  Payload v_;
};

}  // namespace lol::rt

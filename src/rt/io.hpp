// Per-PE IO plumbing for VISIBLE / INVISIBLE / GIMMEH.
//
// Backends never touch stdio directly; they write through an OutputSink
// and read through an InputSource. Tests capture per-PE output; the CLI
// tools stream to the real stdout/stderr (optionally tagging lines with
// the PE id, like `coprsh` output interleaves ranks).
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lol::rt {

/// Where VISIBLE/INVISIBLE text goes. Implementations must be safe for
/// concurrent calls from different PEs.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual void write(int pe, std::string_view text) = 0;
  virtual void write_err(int pe, std::string_view text) = 0;
};

/// Captures per-PE stdout/stderr into strings (the default for tests and
/// the embedding API).
class CaptureSink final : public OutputSink {
 public:
  explicit CaptureSink(int n_pes)
      : out_(static_cast<std::size_t>(n_pes)),
        err_(static_cast<std::size_t>(n_pes)) {}

  void write(int pe, std::string_view text) override {
    std::lock_guard<std::mutex> g(m_);
    out_[static_cast<std::size_t>(pe)] += text;
  }
  void write_err(int pe, std::string_view text) override {
    std::lock_guard<std::mutex> g(m_);
    err_[static_cast<std::size_t>(pe)] += text;
  }

  [[nodiscard]] const std::string& out(int pe) const {
    return out_[static_cast<std::size_t>(pe)];
  }
  [[nodiscard]] const std::string& err(int pe) const {
    return err_[static_cast<std::size_t>(pe)];
  }
  [[nodiscard]] std::vector<std::string> take_out() {
    return std::move(out_);
  }
  [[nodiscard]] std::vector<std::string> take_err() {
    return std::move(err_);
  }

 private:
  std::mutex m_;
  std::vector<std::string> out_;
  std::vector<std::string> err_;
};

/// Streams to the process stdout/stderr. With `tag_pe`, each buffered
/// line is prefixed `[peN] ` so interleaved SPMD output stays readable.
class StdioSink final : public OutputSink {
 public:
  explicit StdioSink(bool tag_pe = false) : tag_pe_(tag_pe) {}
  void write(int pe, std::string_view text) override;
  void write_err(int pe, std::string_view text) override;

 private:
  void emit(int pe, std::string_view text, bool err);
  std::mutex m_;
  bool tag_pe_;
  std::map<int, std::string> pending_out_;
  std::map<int, std::string> pending_err_;
};

/// Outcome of a bounded-wait input read: either done (a line, or EOF when
/// `line` is empty-nullopt) or timed out, in which case the caller should
/// check for abort and poll again.
struct TryRead {
  std::optional<std::string> line;
  bool timed_out = false;
};

/// Where GIMMEH reads from.
class InputSource {
 public:
  virtual ~InputSource() = default;
  /// Next line for PE `pe`, or nullopt at end of input.
  virtual std::optional<std::string> read_line(int pe) = 0;

  /// Bounded-wait variant of read_line. Backends read GIMMEH through
  /// this in a poll loop so shmem::Runtime::abort() (deadline, cancel)
  /// can interrupt a PE blocked on input. Sources that never block — the
  /// default — just read; sources backed by a live stream should wait at
  /// most `wait` and report a timeout instead of blocking forever.
  virtual TryRead try_read_line(int pe, std::chrono::milliseconds wait) {
    (void)wait;
    return {read_line(pe), false};
  }
};

/// Serves a fixed list of lines; every PE gets its own independent cursor
/// over the same list (SPMD: each PE runs the same program on the same
/// input unless the program branches on ME).
class VectorInput final : public InputSource {
 public:
  VectorInput(std::vector<std::string> lines, int n_pes)
      : lines_(std::move(lines)),
        cursor_(static_cast<std::size_t>(n_pes), 0) {}

  std::optional<std::string> read_line(int pe) override {
    std::lock_guard<std::mutex> g(m_);
    std::size_t& cur = cursor_[static_cast<std::size_t>(pe)];
    if (cur >= lines_.size()) return std::nullopt;
    return lines_[cur++];
  }

 private:
  std::mutex m_;
  std::vector<std::string> lines_;
  std::vector<std::size_t> cursor_;
};

/// Reads the real stdin (shared cursor; first PE to ask gets the line).
class StdinInput final : public InputSource {
 public:
  std::optional<std::string> read_line(int pe) override;

  /// Bounded wait via poll(2) on fd 0 (POSIX; blocking fallback
  /// elsewhere), so a deadline/abort can interrupt a GIMMEH that is
  /// waiting on input that never comes.
  TryRead try_read_line(int pe, std::chrono::milliseconds wait) override;

 private:
  std::mutex m_;
};

}  // namespace lol::rt

// Operator semantics shared by all execution backends.
//
// LOLCODE-1.2 math: integer math when both operands are NUMBRs, floating
// point when either is a NUMBAR; YARN operands are parsed as numbers
// (NUMBAR when they contain '.', NUMBR otherwise); TROOF and NOOB operands
// in math are errors. Boolean operators use truthiness and return TROOFs.
#pragma once

#include <span>

#include "ast/types.hpp"
#include "rt/value.hpp"

namespace lol::rt {

/// Applies a binary operator. Throws support::RuntimeError on type errors
/// and on QUOSHUNT/MOD by zero.
Value op_binary(ast::BinOp op, const Value& a, const Value& b);

/// Applies NOT / SQUAR OF / UNSQUAR OF / FLIP OF.
/// UNSQUAR OF of a negative number and FLIP OF zero are errors.
Value op_unary(ast::UnOp op, const Value& v);

/// Applies ALL OF / ANY OF / SMOOSH over already-evaluated operands.
Value op_nary(ast::NaryOp op, std::span<const Value> operands);

}  // namespace lol::rt

// The bundle of services one PE's execution backend runs against.
#pragma once

#include "rt/io.hpp"
#include "shmem/runtime.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lol::rt {

/// Everything a backend needs to execute one PE of a parallel LOLCODE
/// program: the shmem handle (PE id, symmetric heap, sync), the
/// deterministic per-PE RNG behind WHATEVR/WHATEVAR, IO, and the
/// cooperative step budget that kills runaway programs.
struct ExecContext {
  shmem::Pe* pe = nullptr;
  support::PeRng rng;
  OutputSink* out = nullptr;
  InputSource* in = nullptr;
  std::uint64_t max_steps = 0;   // 0 = unlimited
  std::uint64_t steps_left = 0;  // remaining budget when limited

  ExecContext(shmem::Pe& p, std::uint64_t seed, OutputSink& o, InputSource& i,
              std::uint64_t max_steps_budget = 0)
      : pe(&p),
        rng(seed, p.id()),
        out(&o),
        in(&i),
        max_steps(max_steps_budget),
        steps_left(max_steps_budget) {}

  /// Charges one execution step (a statement in the interpreter, an
  /// instruction in the VM). Throws support::StepLimitError once the
  /// budget is spent; a single compare on the unlimited path.
  void count_step() {
    if (max_steps != 0) {
      if (steps_left == 0) throw support::StepLimitError(max_steps);
      --steps_left;
    }
  }
};

}  // namespace lol::rt

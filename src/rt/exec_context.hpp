// The bundle of services one PE's execution backend runs against.
#pragma once

#include "rt/io.hpp"
#include "shmem/runtime.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lol::rt {

/// Everything a backend needs to execute one PE of a parallel LOLCODE
/// program: the shmem handle (PE id, symmetric heap, sync), the
/// deterministic per-PE RNG behind WHATEVR/WHATEVAR, IO, and the
/// cooperative step budget that kills runaway programs.
struct ExecContext {
  /// How many steps run between checks of the runtime's abort flag. The
  /// first step always checks, so a pre-run cancel dies immediately;
  /// afterwards the acquire load is amortized over the period.
  static constexpr std::uint64_t kAbortPollPeriod = 2048;

  /// How long one GIMMEH poll waits before re-checking for abort.
  static constexpr std::chrono::milliseconds kInputPollWait{10};

  shmem::Pe* pe = nullptr;
  support::PeRng rng;
  OutputSink* out = nullptr;
  InputSource* in = nullptr;
  std::uint64_t max_steps = 0;   // 0 = unlimited
  std::uint64_t steps_left = 0;  // remaining budget when limited
  std::uint64_t abort_countdown = 1;  // steps until the next abort check
  std::uint64_t steps_done = 0;  // retired steps, flushed to the PE profile
  /// Fault injection (replay/fault.hpp): kill this PE with
  /// support::PeKilledError when steps_done reaches this value. 0 = off.
  /// Set by the engine after construction, before the backend runs.
  std::uint64_t kill_at_step = 0;

  ExecContext(shmem::Pe& p, std::uint64_t seed, OutputSink& o, InputSource& i,
              std::uint64_t max_steps_budget = 0)
      : pe(&p),
        rng(seed, p.id()),
        out(&o),
        in(&i),
        max_steps(max_steps_budget),
        steps_left(max_steps_budget) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Flush retired-step count into the PE profile exactly once, at the
  /// end of the PE body (the profile outlives the context: the runtime
  /// aggregates it after the gang joins). Counting locally and flushing
  /// on destruction keeps count_step() free of indirection.
  ~ExecContext() {
    if (pe != nullptr) pe->profile().steps += steps_done;
  }

  /// Charges one execution step (a statement in the interpreter, an
  /// instruction in the VM). Throws support::StepLimitError once the
  /// budget is spent, and periodically polls the runtime abort flag so a
  /// wall-clock deadline or cancel kills a spinning PE even when the
  /// step budget is unlimited. The poll doubles as the executor's
  /// preemption point: under the fiber executor a compute-bound PE
  /// yields its carrier here, so sibling virtual PEs (and spin-waits on
  /// symmetric memory) keep making progress.
  void count_step() {
    if (max_steps != 0) {
      if (steps_left == 0) throw support::StepLimitError(max_steps);
      --steps_left;
    }
    ++steps_done;
    if (kill_at_step != 0 && steps_done >= kill_at_step) {
      throw support::PeKilledError(pe->id(), steps_done);
    }
    if (--abort_countdown == 0) {
      abort_countdown = kAbortPollPeriod;
      if (pe->runtime().aborted()) {
        throw support::RuntimeError("SPMD aborted mid-execution");
      }
      pe->runtime().preempt(pe->id());
    }
  }

  /// Abort-aware GIMMEH read: polls the input source with a bounded wait
  /// so Runtime::abort() interrupts a PE blocked on input. Sources that
  /// never block (stdin_lines) take the fast path on the first poll.
  /// Under a cooperative executor the poll is zero-length and the PE
  /// yields between polls instead of sleeping on its carrier thread.
  /// Each read is a recorded scheduling choice point: with a schedule
  /// hook installed, the interleaving of reads from a shared source
  /// follows the controlled token order.
  std::optional<std::string> read_line() {
    shmem::Runtime& rt = pe->runtime();
    rt.schedule_yield(pe->id());
    const bool ctrl = rt.schedule_hook() != nullptr;
    const bool coop = rt.cooperative_pes();
    const std::chrono::milliseconds wait =
        coop || ctrl ? std::chrono::milliseconds(0) : kInputPollWait;
    bool blocked = false;
    for (;;) {
      TryRead r = in->try_read_line(pe->id(), wait);
      if (!r.timed_out) return std::move(r.line);
      if (!blocked) {
        blocked = true;
        ++pe->profile().gimmeh_blocks;
      }
      if (rt.aborted()) {
        throw support::RuntimeError("SPMD aborted while blocked in GIMMEH");
      }
      if (ctrl) {
        // Stay runnable (the data comes from outside the gang; no
        // notify will ready a parked PE when it arrives).
        rt.schedule_yield(pe->id());
      } else if (coop) {
        rt.wait(pe->id(), rt.prepare_wait());
      }
    }
  }

  /// WHATEVR / WHATEVAR draws. Backends must draw through these (never
  /// through `rng` directly): each draw is counted into the PE profile
  /// for replay divergence checks and is a recorded scheduling choice
  /// point under a schedule hook.
  std::int64_t rng_numbr() {
    pe->runtime().schedule_yield(pe->id());
    ++pe->profile().rng_draws;
    return rng.next_numbr();
  }
  double rng_numbar() {
    pe->runtime().schedule_yield(pe->id());
    ++pe->profile().rng_draws;
    return rng.next_numbar();
  }
};

}  // namespace lol::rt

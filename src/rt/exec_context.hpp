// The bundle of services one PE's execution backend runs against.
#pragma once

#include "rt/io.hpp"
#include "shmem/runtime.hpp"
#include "support/rng.hpp"

namespace lol::rt {

/// Everything a backend needs to execute one PE of a parallel LOLCODE
/// program: the shmem handle (PE id, symmetric heap, sync), the
/// deterministic per-PE RNG behind WHATEVR/WHATEVAR, and IO.
struct ExecContext {
  shmem::Pe* pe = nullptr;
  support::PeRng rng;
  OutputSink* out = nullptr;
  InputSource* in = nullptr;

  ExecContext(shmem::Pe& p, std::uint64_t seed, OutputSink& o, InputSource& i)
      : pe(&p), rng(seed, p.id()), out(&o), in(&i) {}
};

}  // namespace lol::rt
